// Command automedd is the dataspace daemon: it serves the paper's
// pay-as-you-go intersection-schema workflow over HTTP/JSON so that
// clients can register sources, federate, intersect iteratively, and
// query any published global schema version while integration proceeds.
//
// Endpoints (all JSON):
//
//	POST /sources    register a data source (inline rows or a CSV dir)
//	POST /federate   build the federated schema (version 0)
//	POST /intersect  one integration iteration from a mappings table
//	POST /refine     ad-hoc single-schema refinement
//	GET  /schemas    every published global schema version
//	POST /query      IQL over any live version (explain, timeout_ms)
//	GET  /report     effort report (manual vs automatic steps)
//	POST /suggest    schema-matcher correspondence suggestions
//	GET  /sessions   live integration sessions
//	POST /sessions/{name}/snapshot   force a durable snapshot
//	POST /sessions/{name}/restore    reload a session from disk
//	GET  /healthz    liveness
//	GET  /metrics    query counts, latencies, cache hit rates
//
// With -data-dir the daemon is durable: every session snapshot lives
// in that directory as one JSON file, every mutating endpoint
// autosaves, and on startup every stored session is restored, so a
// restarted daemon serves every previously published schema version
// identically.
//
// Optionally preload sources with repeatable flags — CSV directories
// (-source name=dir), SQL backends (-sql-source
// name=driver:dialect:dsn; the driver must be compiled into the
// binary), and JSON/REST endpoints (-rest-source name=url); they are
// registered into the default session and federated at startup so the
// daemon is immediately queryable. Preloading is skipped when a
// restored "default" session already exists. Remote sources can also
// be registered at runtime through the sql/rest variants of POST
// /sources.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/dataspace/automed/internal/server"
	"github.com/dataspace/automed/internal/wrapper"
)

// sourceFlags collects repeatable name=value source flags.
type sourceFlags []string

func (s *sourceFlags) String() string { return strings.Join(*s, ",") }

func (s *sourceFlags) Set(v string) error {
	if !strings.Contains(v, "=") {
		return fmt.Errorf("want name=spec, got %q", v)
	}
	*s = append(*s, v)
	return nil
}

// parseSQLSpec splits a -sql-source value: name=driver:dialect:dsn.
// The DSN comes last so its own colons survive; an empty dialect
// segment selects the default (sqlite).
func parseSQLSpec(v string) (name string, cfg wrapper.SQLConfig, err error) {
	name, rest, _ := strings.Cut(v, "=")
	parts := strings.SplitN(rest, ":", 3)
	if name == "" || len(parts) != 3 || parts[0] == "" || parts[2] == "" {
		return "", wrapper.SQLConfig{}, fmt.Errorf("want name=driver:dialect:dsn, got %q", v)
	}
	return name, wrapper.SQLConfig{Driver: parts[0], Dialect: parts[1], DSN: parts[2]}, nil
}

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		planCache   = flag.Int("plan-cache", 512, "max cached parsed IQL plans (0 disables)")
		resultCache = flag.Int("result-cache", 4096, "max cached query results per session (0 disables)")
		cacheBytes  = flag.Int64("cache-bytes", 256<<20, "byte budget per cache layer per session: results, extent memo, source extents (0 = unbounded)")
		timeout     = flag.Duration("query-timeout", 30*time.Second, "default per-query evaluation deadline (0 = none)")
		maxSteps    = flag.Int("max-steps", 0, "IQL evaluation step bound per query (0 = unlimited)")
		dataDir     = flag.String("data-dir", "", "directory for durable session snapshots (empty = in-memory only)")
		preload     sourceFlags
		preloadSQL  sourceFlags
		preloadREST sourceFlags
	)
	flag.Var(&preload, "source", "preload a CSV source as name=dir into the default session (repeatable)")
	flag.Var(&preloadSQL, "sql-source",
		"preload a SQL source as name=driver:dialect:dsn (dialect sqlite or information_schema, empty = sqlite; the driver must be compiled into this binary; repeatable)")
	flag.Var(&preloadREST, "rest-source", "preload a JSON/REST source as name=url (collections discovered from the endpoint root; repeatable)")
	flag.Parse()

	srv := server.New(server.Config{
		PlanCacheSize:   *planCache,
		ResultCacheSize: *resultCache,
		CacheBytes:      *cacheBytes,
		QueryTimeout:    *timeout,
		MaxSteps:        *maxSteps,
	})
	if *dataDir != "" {
		if err := srv.OpenStore(*dataDir); err != nil {
			log.Fatalf("automedd: %v", err)
		}
		n, err := srv.RestoreSessions()
		if err != nil {
			log.Fatalf("automedd: restoring sessions from %s: %v", *dataDir, err)
		}
		log.Printf("automedd: restored %d session(s) from %s", n, *dataDir)
	}
	if err := preloadSources(srv, preload, preloadSQL, preloadREST); err != nil {
		log.Fatalf("automedd: %v", err)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("automedd: listening on %s", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("automedd: %v", err)
		}
	case <-ctx.Done():
		log.Printf("automedd: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			log.Printf("automedd: shutdown: %v", err)
		}
	}
}

// preloadSources wraps each preloaded CSV, SQL and REST source into
// the default session and federates so the daemon starts queryable.
func preloadSources(srv *server.Server, csvSpecs, sqlSpecs, restSpecs sourceFlags) error {
	total := len(csvSpecs) + len(sqlSpecs) + len(restSpecs)
	if total == 0 {
		return nil
	}
	sess, err := srv.Sessions().Get("default", true)
	if err != nil {
		return err
	}
	if sess.Federated() || len(sess.SourceNames()) > 0 {
		log.Printf("automedd: default session restored from data dir; skipping source preload")
		return nil
	}
	for _, spec := range csvSpecs {
		name, dir, _ := strings.Cut(spec, "=")
		w, err := wrapper.NewCSVDir(name, dir)
		if err != nil {
			return fmt.Errorf("preloading %s: %w", spec, err)
		}
		if err := sess.AddSource(w); err != nil {
			return err
		}
		log.Printf("automedd: preloaded source %s from %s", name, dir)
	}
	for _, spec := range sqlSpecs {
		name, cfg, err := parseSQLSpec(spec)
		if err != nil {
			return err
		}
		w, err := wrapper.NewSQL(name, cfg)
		if err != nil {
			return fmt.Errorf("preloading %s: %w", spec, err)
		}
		if err := sess.AddSource(w); err != nil {
			return err
		}
		log.Printf("automedd: preloaded SQL source %s (driver %s)", name, cfg.Driver)
	}
	for _, spec := range restSpecs {
		name, endpoint, _ := strings.Cut(spec, "=")
		w, err := wrapper.NewREST(name, wrapper.RESTConfig{Endpoint: endpoint})
		if err != nil {
			return fmt.Errorf("preloading %s: %w", spec, err)
		}
		if err := sess.AddSource(w); err != nil {
			return err
		}
		log.Printf("automedd: preloaded REST source %s from %s", name, endpoint)
	}
	if _, err := sess.Federate("F", false); err != nil {
		return err
	}
	log.Printf("automedd: federated %d source(s) as F (version 0)", total)
	if srv.Store() != nil {
		if _, err := srv.SnapshotSession(sess.Name()); err != nil {
			return fmt.Errorf("persisting preloaded session: %w", err)
		}
	}
	return nil
}
