// Command automedd is the dataspace daemon: it serves the paper's
// pay-as-you-go intersection-schema workflow over HTTP/JSON so that
// clients can register sources, federate, intersect iteratively, and
// query any published global schema version while integration proceeds.
//
// Endpoints (all JSON unless noted):
//
//	POST /sources    register a data source (inline rows or a CSV dir)
//	POST /federate   build the federated schema (version 0)
//	POST /intersect  one integration iteration from a mappings table
//	POST /refine     ad-hoc single-schema refinement
//	GET  /schemas    every published global schema version
//	POST /query      IQL over any live version (explain, timeout_ms)
//	GET  /report     effort report (manual vs automatic steps)
//	POST /suggest    schema-matcher correspondence suggestions
//	GET  /sessions   live integration sessions
//	POST /sessions/{name}/snapshot   force a durable snapshot
//	POST /sessions/{name}/restore    reload a session from disk
//	POST /sessions/{name}/invalidate drop cached extents and answers
//	GET  /healthz    liveness, breaker states, skipped sources
//	GET  /metrics    Prometheus text exposition (JSON via Accept/format)
//	GET  /debug/traces  recent query traces (requested + slow queries)
//
// With -data-dir the daemon is durable: every session snapshot lives
// in that directory as one JSON file, every mutating endpoint
// autosaves, and on startup every stored session is restored, so a
// restarted daemon serves every previously published schema version
// identically.
//
// Optionally preload sources with repeatable flags — CSV directories
// (-source name=dir), SQL backends (-sql-source
// name=driver:dialect:dsn; the driver must be compiled into the
// binary), and JSON/REST endpoints (-rest-source name=url); they are
// registered into the default session and federated at startup so the
// daemon is immediately queryable. Preloading is skipped when a
// restored "default" session already exists. Remote sources can also
// be registered at runtime through the sql/rest variants of POST
// /sources.
//
// Observability: logs are structured (-log-format text|json), every
// request carries an X-Request-ID, queries slower than -slow-query are
// traced into GET /debug/traces, and -debug-addr serves net/http/pprof
// on a separate listener.
//
// Under load the daemon admits at most -max-inflight requests at a
// time, parks the overflow in a bounded per-session fair queue
// (-max-queue) served deficit round-robin, and sheds the rest with
// 429 + Retry-After. On SIGTERM/SIGINT it drains gracefully within
// -drain-timeout: /healthz flips to 503 draining, in-flight requests
// finish, and every session is snapshotted before exit.
//
// Fault tolerance: every source fetch runs behind a per-source circuit
// breaker with a -source-timeout deadline budget; while a source is
// down, queries are answered from its last-known-good extent with a
// structured "degraded:" warning (disable the breakers with
// -breaker=false, or reject stale answers daemon-wide with
// -require-fresh). -min-federated-sources lets startup federation
// proceed with the reachable subset of sources. For chaos drills,
// -fault-source preloads a demo source wrapped in a deterministic
// fault injector (spec: comma-separated error-rate=0.3, latency=50ms,
// hang, flap-up=4, flap-down=2, amplify=8, seed=7).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/dataspace/automed/internal/query"
	"github.com/dataspace/automed/internal/rel"
	"github.com/dataspace/automed/internal/server"
	"github.com/dataspace/automed/internal/wrapper"
)

// sourceFlags collects repeatable name=value source flags.
type sourceFlags []string

func (s *sourceFlags) String() string { return strings.Join(*s, ",") }

func (s *sourceFlags) Set(v string) error {
	if !strings.Contains(v, "=") {
		return fmt.Errorf("want name=spec, got %q", v)
	}
	*s = append(*s, v)
	return nil
}

// parseSQLSpec splits a -sql-source value: name=driver:dialect:dsn.
// The DSN comes last so its own colons survive; an empty dialect
// segment selects the default (sqlite).
func parseSQLSpec(v string) (name string, cfg wrapper.SQLConfig, err error) {
	name, rest, _ := strings.Cut(v, "=")
	parts := strings.SplitN(rest, ":", 3)
	if name == "" || len(parts) != 3 || parts[0] == "" || parts[2] == "" {
		return "", wrapper.SQLConfig{}, fmt.Errorf("want name=driver:dialect:dsn, got %q", v)
	}
	return name, wrapper.SQLConfig{Driver: parts[0], Dialect: parts[1], DSN: parts[2]}, nil
}

// newLogger builds the daemon's structured logger.
func newLogger(format string) (*slog.Logger, error) {
	switch format {
	case "", "text":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	}
	return nil, fmt.Errorf("automedd: -log-format must be text or json, got %q", format)
}

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		planCache   = flag.Int("plan-cache", 512, "max cached parsed IQL plans (0 disables)")
		resultCache = flag.Int("result-cache", 4096, "max cached query results per session (0 disables)")
		cacheBytes  = flag.Int64("cache-bytes", 256<<20, "byte budget per cache layer per session: results, extent memo, source extents (0 = unbounded)")
		timeout     = flag.Duration("query-timeout", 30*time.Second, "default per-query evaluation deadline (0 = none)")
		maxSteps    = flag.Int("max-steps", 0, "IQL evaluation step bound per query (0 = unlimited)")
		evalPar     = flag.Int("eval-parallelism", 0, "worker count for data-parallel sharded comprehension evaluation (0 = GOMAXPROCS, 1 = serial)")
		pfWorkers   = flag.Int("prefetch-workers", 0, "concurrent extent-prefetch pool width per query (0 = default 8)")
		pfMaxTasks  = flag.Int("prefetch-max-tasks", 0, "max distinct source extents one query's prefetch may schedule (0 = default 64)")
		scanBuffer  = flag.Int("scan-buffer", 0, "streaming extent pipeline row window: extents above it stream through a bounded buffer instead of materialising (0 = default 4096, negative disables streaming)")
		fetchPage   = flag.Int("fetch-page-rows", 0, "LIMIT/OFFSET page size for SQL source fetches (0 = default 4096, negative disables paging)")
		dataDir     = flag.String("data-dir", "", "directory for durable session snapshots (empty = in-memory only)")
		logFormat   = flag.String("log-format", "text", "structured log format: text or json")
		slowQuery   = flag.Duration("slow-query", 0, "trace queries at or above this duration into /debug/traces (0 = only explicitly requested traces)")
		traceRing   = flag.Int("trace-ring", 256, "retained recent query traces served by /debug/traces")
		debugAddr   = flag.String("debug-addr", "", "serve net/http/pprof on this separate address (empty = disabled)")
		maxInflight = flag.Int("max-inflight", 256, "max concurrently executing queries/integration steps (0 = unlimited)")
		maxQueue    = flag.Int("max-queue", 1024, "max requests parked in the admission queue before 429s (0 = reject at the in-flight limit)")
		drainTime   = flag.Duration("drain-timeout", 15*time.Second, "grace period for in-flight requests on SIGTERM before exit")
		breakerOn   = flag.Bool("breaker", true, "per-source circuit breakers with stale-extent fallback")
		srcTimeout  = flag.Duration("source-timeout", 10*time.Second, "per-source fetch deadline budget within each query (0 = none)")
		breakerOpen = flag.Duration("breaker-open-for", 2*time.Second, "base interval an open breaker waits before probing the source again")
		reqFresh    = flag.Bool("require-fresh", false, "reject degraded (stale-fallback) answers with 503 instead of serving them with a warning")
		minFedSrcs  = flag.Int("min-federated-sources", 0, "federate over the reachable subset of sources when at least this many answer a probe (0 = require all)")
		probeEvery  = flag.Duration("probe-interval", 5*time.Second, "min interval between health-check-triggered background probes of open breakers and skipped sources")
		preload     sourceFlags
		preloadSQL  sourceFlags
		preloadREST sourceFlags
		faultSrcs   sourceFlags
	)
	flag.Var(&preload, "source", "preload a CSV source as name=dir into the default session (repeatable)")
	flag.Var(&preloadSQL, "sql-source",
		"preload a SQL source as name=driver:dialect:dsn (dialect sqlite, information_schema or postgres, empty = sqlite; the driver must be compiled into this binary; repeatable)")
	flag.Var(&preloadREST, "rest-source", "preload a JSON/REST source as name=url (collections discovered from the endpoint root; repeatable)")
	flag.Var(&faultSrcs, "fault-source",
		"preload a fault-injected demo source as name=spec for chaos drills (spec: comma-separated error-rate=0.3, latency=50ms, hang, flap-up=4, flap-down=2, amplify=8, seed=7; repeatable)")
	flag.Parse()

	logger, err := newLogger(*logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	slog.SetDefault(logger)

	srv := server.New(server.Config{
		PlanCacheSize:    *planCache,
		ResultCacheSize:  *resultCache,
		CacheBytes:       *cacheBytes,
		QueryTimeout:     *timeout,
		MaxSteps:         *maxSteps,
		EvalParallelism:  *evalPar,
		PrefetchWorkers:  *pfWorkers,
		PrefetchMaxTasks: *pfMaxTasks,
		ScanBuffer:       *scanBuffer,
		FetchPageRows:    *fetchPage,
		SlowQuery:        *slowQuery,
		TraceRingSize:    *traceRing,
		MaxInflight:      *maxInflight,
		MaxQueue:         *maxQueue,
		Breaker: query.BreakerConfig{
			Enabled:       *breakerOn,
			SourceTimeout: *srcTimeout,
			OpenFor:       *breakerOpen,
		},
		RequireFresh:        *reqFresh,
		MinFederatedSources: *minFedSrcs,
		ProbeInterval:       *probeEvery,
		Logger:              logger,
	})
	if *dataDir != "" {
		if err := srv.OpenStore(*dataDir); err != nil {
			fatal(logger, err)
		}
		n, err := srv.RestoreSessions()
		if err != nil {
			fatal(logger, fmt.Errorf("restoring sessions from %s: %w", *dataDir, err))
		}
		logger.Info("sessions restored", "count", n, "dir", *dataDir)
	}
	if err := preloadSources(srv, logger, *fetchPage, preload, preloadSQL, preloadREST, faultSrcs); err != nil {
		fatal(logger, err)
	}

	if *debugAddr != "" {
		go serveDebug(logger, *debugAddr)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(logger, err)
	}
	logger.Info("listening", "addr", ln.Addr().String())
	// ServeGraceful blocks until ctx is cancelled (SIGINT/SIGTERM), then
	// drains: /healthz goes unready, queued requests get 503s, in-flight
	// work finishes under -drain-timeout, and sessions flush to the
	// store before exit.
	if err := srv.ServeGraceful(ctx, ln, *drainTime); err != nil {
		fatal(logger, err)
	}
}

// fatal logs the error and exits non-zero.
func fatal(logger *slog.Logger, err error) {
	logger.Error("fatal", "error", err)
	os.Exit(1)
}

// serveDebug exposes net/http/pprof on its own mux and listener so the
// profiling surface never shares a port with the public API.
func serveDebug(logger *slog.Logger, addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	logger.Info("pprof listening", "addr", addr)
	srv := &http.Server{Addr: addr, Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("pprof server failed", "error", err)
	}
}

// parseFaultSpec splits a -fault-source value: name=k=v[,k=v...] with
// keys error-rate, latency, hang, flap-up, flap-down, amplify, seed.
// An empty spec ("name=" or just "name") injects nothing until POST
// /sources or a restart reconfigures it.
func parseFaultSpec(v string) (name string, cfg wrapper.FaultConfig, err error) {
	name, rest, _ := strings.Cut(v, "=")
	if name == "" {
		return "", cfg, fmt.Errorf("want name=k=v[,k=v...], got %q", v)
	}
	if rest == "" {
		return name, cfg, nil
	}
	for _, kv := range strings.Split(rest, ",") {
		k, val, _ := strings.Cut(kv, "=")
		var err error
		switch k {
		case "error-rate":
			cfg.ErrorRate, err = strconv.ParseFloat(val, 64)
		case "latency":
			cfg.Latency, err = time.ParseDuration(val)
		case "hang":
			cfg.Hang = true
		case "flap-up":
			cfg.FlapUp, err = strconv.Atoi(val)
		case "flap-down":
			cfg.FlapDown, err = strconv.Atoi(val)
		case "amplify":
			cfg.Amplify, err = strconv.Atoi(val)
		case "seed":
			cfg.Seed, err = strconv.ParseUint(val, 10, 64)
		default:
			err = fmt.Errorf("unknown key %q", k)
		}
		if err != nil {
			return "", wrapper.FaultConfig{}, fmt.Errorf("fault source %q: %s: %v", name, kv, err)
		}
	}
	return name, cfg, nil
}

// demoFaultSource builds the inline demo table a -fault-source wraps:
// enough rows to make degraded answers visibly non-empty.
func demoFaultSource(name string) (wrapper.Wrapper, error) {
	db := rel.NewDB(name)
	t, err := db.CreateTable("items", []rel.Column{
		{Name: "id", Type: rel.Int},
		{Name: "label", Type: rel.String},
	}, "id")
	if err != nil {
		return nil, err
	}
	for i := 1; i <= 8; i++ {
		if err := t.Insert(int64(i), fmt.Sprintf("item-%d", i)); err != nil {
			return nil, err
		}
	}
	return wrapper.NewRelational(name, db)
}

// preloadSources wraps each preloaded CSV, SQL, REST and fault-demo
// source into the default session and federates so the daemon starts
// queryable.
func preloadSources(srv *server.Server, logger *slog.Logger, fetchPageRows int, csvSpecs, sqlSpecs, restSpecs, faultSpecs sourceFlags) error {
	total := len(csvSpecs) + len(sqlSpecs) + len(restSpecs) + len(faultSpecs)
	if total == 0 {
		return nil
	}
	sess, err := srv.Sessions().Get("default", true)
	if err != nil {
		return err
	}
	if sess.Federated() || len(sess.SourceNames()) > 0 {
		logger.Info("default session restored from data dir; skipping source preload")
		return nil
	}
	for _, spec := range csvSpecs {
		name, dir, _ := strings.Cut(spec, "=")
		w, err := wrapper.NewCSVDir(name, dir)
		if err != nil {
			return fmt.Errorf("preloading %s: %w", spec, err)
		}
		if err := sess.AddSource(w); err != nil {
			return err
		}
		logger.Info("source preloaded", "source", name, "dir", dir)
	}
	for _, spec := range sqlSpecs {
		name, cfg, err := parseSQLSpec(spec)
		if err != nil {
			return err
		}
		cfg.FetchPageRows = fetchPageRows
		w, err := wrapper.NewSQL(name, cfg)
		if err != nil {
			return fmt.Errorf("preloading %s: %w", spec, err)
		}
		if err := sess.AddSource(w); err != nil {
			return err
		}
		logger.Info("SQL source preloaded", "source", name, "driver", cfg.Driver)
	}
	for _, spec := range restSpecs {
		name, endpoint, _ := strings.Cut(spec, "=")
		w, err := wrapper.NewREST(name, wrapper.RESTConfig{Endpoint: endpoint})
		if err != nil {
			return fmt.Errorf("preloading %s: %w", spec, err)
		}
		if err := sess.AddSource(w); err != nil {
			return err
		}
		logger.Info("REST source preloaded", "source", name, "endpoint", endpoint)
	}
	for _, spec := range faultSpecs {
		name, cfg, err := parseFaultSpec(spec)
		if err != nil {
			return err
		}
		inner, err := demoFaultSource(name)
		if err != nil {
			return fmt.Errorf("preloading %s: %w", spec, err)
		}
		w, err := wrapper.NewFault(inner, cfg)
		if err != nil {
			return fmt.Errorf("preloading %s: %w", spec, err)
		}
		if err := sess.AddSource(w); err != nil {
			return err
		}
		logger.Info("fault source preloaded", "source", name, "config", cfg)
	}
	fctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := sess.Federate(fctx, "F", false); err != nil {
		return err
	}
	if skipped := sess.Skipped(); len(skipped) > 0 {
		logger.Warn("federated without unreachable sources", "skipped", skipped)
	}
	logger.Info("sources federated", "count", total, "schema", "F", "version", 0)
	if srv.Store() != nil {
		if _, err := srv.SnapshotSession(sess.Name()); err != nil {
			return fmt.Errorf("persisting preloaded session: %w", err)
		}
	}
	return nil
}
