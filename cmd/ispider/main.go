// Command ispider reproduces the paper's case study (EDBT 2014, §3):
// the query-driven intersection-schema integration of the Pedro, gpmDB
// and PepSeeker proteomics databases, compared with the classical
// up-front iSpider integration.
//
// Experiments:
//
//	-experiment effort   effort comparison (E2): 26 vs 95 transformations
//	-experiment table1   run the 7 priority queries (E1, Table 1)
//	-experiment curve    pay-as-you-go curve (E3)
//	-experiment reverse  answer source queries from the global schema (BAV)
//	-experiment all      everything (default)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/dataspace/automed/internal/core"
	"github.com/dataspace/automed/internal/ispider"
	"github.com/dataspace/automed/internal/render"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "effort | table1 | curve | reverse | all")
		seed       = flag.Int64("seed", 1, "data generator seed")
		proteins   = flag.Int("proteins", 30, "proteins per source")
		searches   = flag.Int("searches", 3, "search runs per source")
		hits       = flag.Int("hits", 8, "protein hits per search")
		peptides   = flag.Int("peptides", 2, "peptide hits per protein hit")
		drop       = flag.Bool("drop", false, "drop redundant objects from rebuilt global schemas")
	)
	flag.Parse()

	cfg := ispider.Config{
		Seed: *seed, Proteins: *proteins, Searches: *searches,
		HitsPerSearch: *hits, PeptidesPerHit: *peptides,
	}
	run := func(name string, f func(ispider.Config, bool) error) {
		if *experiment != "all" && *experiment != name {
			return
		}
		if err := f(cfg, *drop); err != nil {
			fmt.Fprintf(os.Stderr, "ispider: %s: %v\n", name, err)
			os.Exit(1)
		}
	}
	run("effort", effort)
	run("table1", table1)
	run("curve", curve)
	run("reverse", reverse)
}

func header(title string) {
	fmt.Println()
	fmt.Println(strings.Repeat("=", 72))
	fmt.Println(title)
	fmt.Println(strings.Repeat("=", 72))
}

// effort reproduces E2: the paper's 26-vs-95 comparison.
func effort(cfg ispider.Config, drop bool) error {
	header("E2 — integration effort: intersection schemas vs classical iSpider")
	ig, err := ispider.RunIntersection(cfg, drop)
	if err != nil {
		return err
	}
	rep := ig.Report()
	fmt.Println("\nIntersection methodology (manual transformations per iteration):")
	fmt.Print(rep)

	cb, err := ispider.RunClassical(cfg)
	if err != nil {
		return err
	}
	fmt.Println("\nClassical methodology (non-trivial transformations per stage/source):")
	for _, line := range cb.EffortBreakdown() {
		fmt.Println("  " + line)
	}
	fmt.Printf("  TOTAL: %d\n", cb.TotalNonTrivial())

	fmt.Println("\npaper vs measured:")
	fmt.Printf("  intersection manual total: paper=26  measured=%d\n", rep.TotalManual())
	fmt.Printf("  per iteration:             paper=6,1,1,15,3  measured=%s\n", perIteration(rep))
	fmt.Printf("  classical non-trivial:     paper=95 (19+35+41)  measured=%d (%d+%d+%d)\n",
		cb.TotalNonTrivial(),
		cb.NonTrivialCount("GS1", "gpmDB"),
		cb.NonTrivialCount("GS1", "PepSeeker"),
		cb.NonTrivialCount("GS2", "PepSeeker"))
	return nil
}

func perIteration(rep core.Report) string {
	var parts []string
	for _, it := range rep.Iterations {
		if it.Kind == "intersection" || it.Kind == "refinement" {
			parts = append(parts, fmt.Sprint(it.Counts.Manual()))
		}
	}
	return strings.Join(parts, ",")
}

// table1 reproduces E1: the seven priority queries over the integrated
// global schema.
func table1(cfg ispider.Config, drop bool) error {
	header("E1 — Table 1: the seven priority queries")
	ig, err := ispider.RunIntersection(cfg, drop)
	if err != nil {
		return err
	}
	for _, q := range ispider.Table1Queries() {
		fmt.Printf("\n%s (%s; answerable after %s)\n", q.ID, q.Description, q.After)
		fmt.Printf("  %s\n", q.IQL)
		res, err := ig.Query(q.IQL)
		if err != nil {
			return fmt.Errorf("%s: %w", q.ID, err)
		}
		fmt.Printf("  -> %d result(s)", res.Value.Len())
		if n := res.Value.Len(); n > 0 && n <= 6 {
			fmt.Printf(": %s", res.Value)
		}
		fmt.Println()
		for _, w := range res.Warnings {
			fmt.Printf("  warning: %s\n", w)
		}
	}
	return nil
}

// curve reproduces E3: queries answerable against cumulative manual
// effort, for both methodologies.
func curve(cfg ispider.Config, drop bool) error {
	header("E3 — pay-as-you-go curve")
	pedro, gpmdb, pepseeker, err := ispider.Wrappers(cfg)
	if err != nil {
		return err
	}
	ig, err := core.New(pedro, gpmdb, pepseeker)
	if err != nil {
		return err
	}
	ig.SetAutoDrop(drop)
	if _, err := ig.Federate("F"); err != nil {
		return err
	}
	var points []render.CurvePoint
	answerable := func(stage string) []string {
		var out []string
		for _, q := range ispider.Table1Queries() {
			if ispider.AnswerableAfter(q, stage) {
				out = append(out, q.ID)
			}
		}
		return out
	}
	points = append(points, render.CurvePoint{
		Iteration: "F (federate)", CumulativeManual: 0, Answerable: answerable("F"),
	})
	cum := 0
	for _, step := range ispider.IntersectionPlan() {
		switch step.Kind {
		case "intersect":
			if _, err := ig.Intersect(step.Name, step.Mappings, step.Enables...); err != nil {
				return err
			}
		case "refine":
			if err := ig.Refine(step.Name, step.Refinement, step.Enables...); err != nil {
				return err
			}
		}
		cum = ig.Report().Totals().Manual()
		points = append(points, render.CurvePoint{
			Iteration: step.Name, CumulativeManual: cum, Answerable: answerable(step.Name),
		})
	}
	fmt.Println()
	fmt.Print(render.Curve("intersection methodology:", points))

	cb, err := ispider.RunClassical(cfg)
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Print(render.Curve("classical methodology (nothing answerable until complete):",
		[]render.CurvePoint{
			{Iteration: "GS1 (incomplete)", CumulativeManual: 54},
			{Iteration: "GS2 (incomplete)", CumulativeManual: 95},
			{Iteration: "GS3 (merge)", CumulativeManual: cb.TotalNonTrivial(),
				Answerable: []string{"Q1", "Q2", "Q3", "Q4", "Q5", "Q6", "Q7"}},
		}))
	fmt.Println("\nshape check: intersection answers Q1 after 6 manual steps and all 7")
	fmt.Println("queries after 26; classical answers nothing before all 95.")
	return nil
}

// reverse demonstrates the BAV bidirectionality: source-schema queries
// answered from the integrated resource.
func reverse(cfg ispider.Config, drop bool) error {
	header("BAV reverse direction — source queries answered from the global schema")
	ig, err := ispider.RunIntersection(cfg, drop)
	if err != nil {
		return err
	}
	rp, err := ig.ReverseProcessor()
	if err != nil {
		return err
	}
	for _, q := range []string{
		"count(<<protein>>)",
		"[x | {k, x} <- <<protein, accession_num>>; x = '" + ispider.SharedAccession + "']",
	} {
		v, err := rp.Query(q)
		if err != nil {
			return err
		}
		fmt.Printf("  Pedro-schema query %s -> %s\n", q, v)
	}
	if ws := rp.Warnings(); len(ws) > 0 {
		fmt.Printf("  (%d incompleteness warnings for contracted objects)\n", len(ws))
	}
	return nil
}
