// Command metricssmoke is the CI gate for the metrics surface: it
// boots the daemon's server in-process on a random port, drives a
// small federation and a query over HTTP, scrapes GET /metrics in both
// content negotiations, and fails on malformed Prometheus exposition
// or a JSON snapshot missing the expected fields. Exit status is the
// verdict; output is only diagnostic.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"github.com/dataspace/automed/internal/obs"
	"github.com/dataspace/automed/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "metricssmoke:", err)
		os.Exit(1)
	}
	fmt.Println("metricssmoke: ok")
}

func run() error {
	srv := server.New(server.DefaultConfig())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()

	// One inline source, federated, queried: enough traffic that every
	// metric family (query latency, per-source fetches, cache layers)
	// has real samples.
	if err := post(base+"/sources", map[string]any{
		"name": "Library",
		"tables": []map[string]any{{
			"name":    "books",
			"columns": []string{"isbn!pk", "title", "price:float"},
			"rows": [][]any{
				{"1", "Dataspaces", 30.0},
				{"2", "Schema Matching", 45.5},
			},
		}},
	}, http.StatusCreated); err != nil {
		return err
	}
	if err := post(base+"/federate", map[string]any{}, http.StatusCreated); err != nil {
		return err
	}
	for i := 0; i < 3; i++ {
		if err := post(base+"/query", map[string]any{"query": "count(<<library_books>>)"}, http.StatusOK); err != nil {
			return err
		}
	}

	// Prometheus exposition must parse and carry the core families.
	text, ct, err := get(base+"/metrics", "")
	if err != nil {
		return err
	}
	if !strings.HasPrefix(ct, "text/plain") {
		return fmt.Errorf("GET /metrics content type = %q, want text/plain exposition", ct)
	}
	if err := obs.ValidateExposition(text); err != nil {
		return fmt.Errorf("invalid Prometheus exposition: %w\n%s", err, text)
	}
	for _, want := range []string{
		"automed_queries_total 3",
		"automed_query_duration_seconds_bucket",
		`automed_source_fetches_total{source="Library",kind="relational"}`,
		`automed_cache_hits_total{layer="plan"}`,
	} {
		if !bytes.Contains(text, []byte(want)) {
			return fmt.Errorf("exposition lacks %q:\n%s", want, text)
		}
	}

	// Both JSON negotiations must serve the legacy snapshot shape.
	for _, u := range []struct{ url, accept string }{
		{base + "/metrics?format=json", ""},
		{base + "/metrics", "application/json"},
	} {
		body, ct, err := get(u.url, u.accept)
		if err != nil {
			return err
		}
		if !strings.HasPrefix(ct, "application/json") {
			return fmt.Errorf("GET %s content type = %q, want application/json", u.url, ct)
		}
		var m map[string]any
		if err := json.Unmarshal(body, &m); err != nil {
			return fmt.Errorf("GET %s: decoding JSON metrics: %w", u.url, err)
		}
		for _, field := range []string{"queries_total", "query_latency", "plan_cache", "sources"} {
			if _, ok := m[field]; !ok {
				return fmt.Errorf("GET %s: JSON metrics lack %q", u.url, field)
			}
		}
		if n, ok := m["queries_total"].(float64); !ok || n != 3 {
			return fmt.Errorf("GET %s: queries_total = %v, want 3", u.url, m["queries_total"])
		}
	}
	return nil
}

func post(url string, body any, want int) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != want {
		return fmt.Errorf("POST %s = %d, want %d (%s)", url, resp.StatusCode, want, data)
	}
	return nil
}

func get(url, accept string) ([]byte, string, error) {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return nil, "", err
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return nil, "", err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, "", fmt.Errorf("GET %s = %d (%s)", url, resp.StatusCode, body)
	}
	return body, resp.Header.Get("Content-Type"), nil
}
