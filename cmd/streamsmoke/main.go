// Command streamsmoke is the CI gate for the streaming extent
// pipeline's bounded-memory guarantee: it boots the daemon's server
// in-process, registers a sqlmem-backed SQL source holding over a
// million rows, runs a filtering aggregate over it through POST
// /query, and fails when the process's live heap grows by more than a
// small fixed ceiling — materialising the extent would cost hundreds
// of megabytes, a streamed scan a few. Exit status is the verdict;
// output is only diagnostic.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"time"

	"github.com/dataspace/automed/internal/rel"
	"github.com/dataspace/automed/internal/server"
	"github.com/dataspace/automed/internal/sqlmem"
)

const (
	// rows is comfortably above any plausible scan buffer, so a flat
	// heap can only mean the extent streamed.
	rows = 1_200_000
	// heapCeiling bounds the live-heap growth the queries may cause.
	// The 1.2M-row extent materialises to well over 150 MB of iql
	// values; a streamed scan keeps a few pages resident.
	heapCeiling = 64 << 20
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "streamsmoke:", err)
		os.Exit(1)
	}
	fmt.Println("streamsmoke: ok")
}

func run() error {
	// The "remote" database lives in this process (sqlmem stands in
	// for a DB server), so it is built before the heap baseline: its
	// rows are the backend's memory, not the query pipeline's.
	db := rel.NewDB("Big")
	items := db.MustCreateTable("items", []rel.Column{
		{Name: "id", Type: rel.Int},
		{Name: "val", Type: rel.Int},
	}, "id")
	for i := 0; i < rows; i++ {
		items.MustInsert(int64(i), int64(i%100))
	}
	const dsn = "streamsmoke-big"
	sqlmem.Register(dsn, db)

	srv := server.New(server.DefaultConfig())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()

	if err := post(base+"/sources", map[string]any{
		"name": "Big",
		"sql":  map[string]any{"driver": sqlmem.DriverName, "dsn": dsn},
	}, http.StatusCreated, nil); err != nil {
		return err
	}
	if err := post(base+"/federate", map[string]any{}, http.StatusCreated, nil); err != nil {
		return err
	}

	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	// A non-equality filter keeps the planner off the const-key index
	// path (which would materialise); the federated name is a bare
	// rename of the source object, which the stream resolver chases.
	// 12000 matches prove the scan actually visited every hundredth of
	// the 1.2M rows.
	const q = `count([k | {k, v} <- <<big_items, val>>; v < 1])`
	for i := 0; i < 2; i++ {
		var resp struct {
			Value any `json:"value"`
		}
		if err := post(base+"/query", map[string]any{"query": q}, http.StatusOK, &resp); err != nil {
			return err
		}
		n, ok := resp.Value.(float64)
		if !ok || int(n) != rows/100 {
			return fmt.Errorf("query %d: count = %v, want %d", i, resp.Value, rows/100)
		}
	}

	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	growth := int64(after.HeapAlloc) - int64(before.HeapAlloc)
	fmt.Printf("streamsmoke: %d rows scanned twice, live heap growth %.1f MB (ceiling %d MB)\n",
		rows, float64(growth)/(1<<20), heapCeiling>>20)
	if growth > heapCeiling {
		return fmt.Errorf("live heap grew %d bytes over a %d-row streamed scan (ceiling %d); the extent was likely materialised",
			growth, rows, int64(heapCeiling))
	}
	return nil
}

func post(url string, body any, want int, out any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != want {
		return fmt.Errorf("POST %s = %d, want %d (%s)", url, resp.StatusCode, want, data)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			return fmt.Errorf("POST %s: decoding response: %w", url, err)
		}
	}
	return nil
}
