// Command automed is the toolbox CLI for the intersection-schema
// integration library: it federates CSV data sources, runs IQL
// queries, prints matcher suggestions, executes integration specs and
// renders the repository.
//
// Usage:
//
//	automed demo                         run the built-in bookstore demo
//	automed query  -src name=dir … 'IQL' federate sources, run a query
//	automed match  -src a=dir -src b=dir suggest correspondences
//	automed schema -src name=dir         print a wrapped source schema
//	automed integrate -spec spec.json    run an integration spec
//	automed render                       print Fig. 1-4 style diagrams
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/dataspace/automed"
	"github.com/dataspace/automed/internal/render"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "demo":
		err = demo()
	case "query":
		err = queryCmd(args)
	case "match":
		err = matchCmd(args)
	case "schema":
		err = schemaCmd(args)
	case "integrate":
		err = integrateCmd(args)
	case "render":
		err = renderCmd()
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "automed: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "automed: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: automed <command> [flags]

commands:
  demo        run the built-in bookstore integration demo
  query       -src name=dir ... 'IQL'   federate CSV sources and query
  match       -src a=dir -src b=dir     schema matcher suggestions
  schema      -src name=dir             print the wrapped source schema
  integrate   -spec spec.json           run an integration specification
  render      print Figure 1-4 style topology diagrams`)
}

// srcFlags collects repeated -src name=dir flags.
type srcFlags []string

func (s *srcFlags) String() string     { return strings.Join(*s, ",") }
func (s *srcFlags) Set(v string) error { *s = append(*s, v); return nil }

func openSources(specs []string) ([]automed.Wrapper, error) {
	var out []automed.Wrapper
	for _, spec := range specs {
		name, dir, ok := strings.Cut(spec, "=")
		if !ok {
			return nil, fmt.Errorf("bad -src %q (want name=dir)", spec)
		}
		w, err := automed.OpenCSVDir(name, dir)
		if err != nil {
			return nil, err
		}
		out = append(out, w)
	}
	return out, nil
}

func queryCmd(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	var srcs srcFlags
	fs.Var(&srcs, "src", "data source as name=csvdir (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 || len(srcs) == 0 {
		return fmt.Errorf("usage: automed query -src name=dir [...] 'IQL'")
	}
	ws, err := openSources(srcs)
	if err != nil {
		return err
	}
	sys, err := automed.New(ws...)
	if err != nil {
		return err
	}
	if _, err := sys.Federate("F"); err != nil {
		return err
	}
	res, err := sys.Query(fs.Arg(0))
	if err != nil {
		return err
	}
	fmt.Println(res.Value)
	for _, w := range res.Warnings {
		fmt.Fprintln(os.Stderr, "warning:", w)
	}
	return nil
}

func matchCmd(args []string) error {
	fs := flag.NewFlagSet("match", flag.ExitOnError)
	var srcs srcFlags
	minScore := fs.Float64("min", 0.35, "minimum score")
	fs.Var(&srcs, "src", "data source as name=csvdir (exactly two)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(srcs) != 2 {
		return fmt.Errorf("usage: automed match -src a=dir -src b=dir")
	}
	ws, err := openSources(srcs)
	if err != nil {
		return err
	}
	sys, err := automed.New(ws...)
	if err != nil {
		return err
	}
	for _, c := range sys.Suggest(ws[0].SchemaName(), ws[1].SchemaName(), *minScore) {
		fmt.Println(c)
	}
	return nil
}

func schemaCmd(args []string) error {
	fs := flag.NewFlagSet("schema", flag.ExitOnError)
	var srcs srcFlags
	fs.Var(&srcs, "src", "data source as name=csvdir")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ws, err := openSources(srcs)
	if err != nil {
		return err
	}
	for _, w := range ws {
		fmt.Print(render.Schema(w.Schema()))
	}
	return nil
}

// Spec is the JSON integration specification for `automed integrate`.
type Spec struct {
	Sources []struct {
		Name string `json:"name"`
		Dir  string `json:"dir"`
	} `json:"sources"`
	Federation    string `json:"federation"`
	DropRedundant bool   `json:"dropRedundant"`
	Intersections []struct {
		Name     string            `json:"name"`
		Mappings []automed.Mapping `json:"mappings"`
	} `json:"intersections"`
	Queries []string `json:"queries"`
}

func integrateCmd(args []string) error {
	fs := flag.NewFlagSet("integrate", flag.ExitOnError)
	specPath := fs.String("spec", "", "path to integration spec JSON")
	repoOut := fs.String("repo-out", "", "write resulting repository JSON here")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *specPath == "" {
		return fmt.Errorf("usage: automed integrate -spec spec.json")
	}
	data, err := os.ReadFile(*specPath)
	if err != nil {
		return err
	}
	var spec Spec
	if err := json.Unmarshal(data, &spec); err != nil {
		return fmt.Errorf("parsing spec: %w", err)
	}
	var ws []automed.Wrapper
	for _, s := range spec.Sources {
		w, err := automed.OpenCSVDir(s.Name, s.Dir)
		if err != nil {
			return err
		}
		ws = append(ws, w)
	}
	sys, err := automed.New(ws...)
	if err != nil {
		return err
	}
	sys.SetAutoDrop(spec.DropRedundant)
	fed := spec.Federation
	if fed == "" {
		fed = "F"
	}
	if _, err := sys.Federate(fed); err != nil {
		return err
	}
	for _, in := range spec.Intersections {
		if _, err := sys.Intersect(in.Name, in.Mappings); err != nil {
			return err
		}
		fmt.Printf("created intersection %s\n", in.Name)
	}
	fmt.Print(sys.Report())
	for _, q := range spec.Queries {
		res, err := sys.Query(q)
		if err != nil {
			return fmt.Errorf("query %q: %w", q, err)
		}
		fmt.Printf("%s\n  -> %s\n", q, res.Value)
	}
	if *repoOut != "" {
		f, err := os.Create(*repoOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := sys.SaveRepo(f); err != nil {
			return err
		}
		fmt.Printf("repository written to %s\n", *repoOut)
	}
	return nil
}

func demo() error {
	lib, err := automed.NewSource("Library").
		Table("books", "id:int", "isbn", "title", "shelf").
		Insert("books", int64(1), "978-1", "Dataspaces", "A1").
		Insert("books", int64(2), "978-2", "Schema Matching", "A2").
		Insert("books", int64(3), "978-3", "Query Rewriting", "B1").
		Wrap()
	if err != nil {
		return err
	}
	shop, err := automed.NewSource("Shop").
		Table("items", "sku", "barcode", "name", "price:float").
		Insert("items", "S1", "978-2", "Schema Matching", 30.0).
		Insert("items", "S2", "978-4", "Data Integration", 40.0).
		Wrap()
	if err != nil {
		return err
	}
	sys, err := automed.New(lib, shop)
	if err != nil {
		return err
	}
	if _, err := sys.Federate("F"); err != nil {
		return err
	}
	fmt.Println("federated schema ready; querying before any integration:")
	res, err := sys.Query("count(<<library_books>>)")
	if err != nil {
		return err
	}
	fmt.Printf("  count(<<library_books>>) = %s\n", res.Value)

	if _, err := sys.Intersect("I1", []automed.Mapping{
		automed.Entity("<<UBook>>",
			automed.From("Library", "[{'LIB', k} | k <- <<books>>]"),
			automed.From("Shop", "[{'SHOP', k} | k <- <<items>>]"),
		),
		automed.Attribute("<<UBook, isbn>>",
			automed.From("Library", "[{'LIB', k, x} | {k, x} <- <<books, isbn>>]"),
			automed.From("Shop", "[{'SHOP', k, x} | {k, x} <- <<items, barcode>>]"),
		),
	}); err != nil {
		return err
	}
	fmt.Println("\nafter intersection I1:")
	res, err = sys.Query("[{s, k} | {s, k, x} <- <<UBook, isbn>>; x = '978-2']")
	if err != nil {
		return err
	}
	fmt.Printf("  owners of ISBN 978-2 = %s\n", res.Value)
	fmt.Println()
	fmt.Print(sys.Report())
	return nil
}

func renderCmd() error {
	fmt.Print(render.UnionCompatible([]string{"DS1", "DS2", "DS3"}, "Global"))
	fmt.Println()
	fmt.Print(render.IntersectionTopology("I", []string{"ES1", "ES2"}, []string{"ES3"}))
	fmt.Println()
	fmt.Print(render.GlobalSchema("G", "I", []string{"ES1", "ES2"}, []string{"ES3"}))
	return nil
}
