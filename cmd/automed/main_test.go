package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"github.com/dataspace/automed"
)

// writeDemoCSVs materialises two small CSV sources for CLI tests.
func writeDemoCSVs(t *testing.T) (libDir, shopDir string) {
	t.Helper()
	base := t.TempDir()
	libDir = filepath.Join(base, "library")
	shopDir = filepath.Join(base, "shop")
	lib := automed.NewSource("Library").
		Table("books", "id:int", "isbn", "title").
		Insert("books", int64(1), "978-1", "Dataspaces").
		Insert("books", int64(2), "978-2", "Schema Matching")
	if err := lib.ExportCSV(libDir); err != nil {
		t.Fatal(err)
	}
	shop := automed.NewSource("Shop").
		Table("items", "sku", "barcode", "name").
		Insert("items", "S1", "978-2", "Schema Matching")
	if err := shop.ExportCSV(shopDir); err != nil {
		t.Fatal(err)
	}
	return libDir, shopDir
}

func TestDemoRuns(t *testing.T) {
	if err := demo(); err != nil {
		t.Fatal(err)
	}
}

func TestRenderRuns(t *testing.T) {
	if err := renderCmd(); err != nil {
		t.Fatal(err)
	}
}

func TestQueryCmd(t *testing.T) {
	libDir, _ := writeDemoCSVs(t)
	err := queryCmd([]string{"-src", "Library=" + libDir, "count(<<library_books>>)"})
	if err != nil {
		t.Fatal(err)
	}
	// Missing args.
	if err := queryCmd([]string{}); err == nil {
		t.Error("query without sources succeeded")
	}
	if err := queryCmd([]string{"-src", "bad-spec", "count(<<x>>)"}); err == nil {
		t.Error("bad -src accepted")
	}
}

func TestMatchCmd(t *testing.T) {
	libDir, shopDir := writeDemoCSVs(t)
	if err := matchCmd([]string{"-src", "A=" + libDir, "-src", "B=" + shopDir}); err != nil {
		t.Fatal(err)
	}
	if err := matchCmd([]string{"-src", "A=" + libDir}); err == nil {
		t.Error("match with one source succeeded")
	}
}

func TestSchemaCmd(t *testing.T) {
	libDir, _ := writeDemoCSVs(t)
	if err := schemaCmd([]string{"-src", "Library=" + libDir}); err != nil {
		t.Fatal(err)
	}
}

func TestIntegrateCmdSpec(t *testing.T) {
	libDir, shopDir := writeDemoCSVs(t)
	spec := Spec{
		Federation:    "F",
		DropRedundant: true,
		Queries: []string{
			"count(<<UBook>>)",
			"[{s, k} | {s, k, x} <- <<UBook, isbn>>; x = '978-2']",
		},
	}
	spec.Sources = []struct {
		Name string `json:"name"`
		Dir  string `json:"dir"`
	}{
		{Name: "Library", Dir: libDir},
		{Name: "Shop", Dir: shopDir},
	}
	spec.Intersections = []struct {
		Name     string            `json:"name"`
		Mappings []automed.Mapping `json:"mappings"`
	}{
		{
			Name: "I1",
			Mappings: []automed.Mapping{
				automed.Entity("<<UBook>>",
					automed.From("Library", "[{'LIB', k} | k <- <<books>>]"),
					automed.From("Shop", "[{'SHOP', k} | k <- <<items>>]"),
				),
				automed.Attribute("<<UBook, isbn>>",
					automed.From("Library", "[{'LIB', k, x} | {k, x} <- <<books, isbn>>]"),
					automed.From("Shop", "[{'SHOP', k, x} | {k, x} <- <<items, barcode>>]"),
				),
			},
		},
	}
	data, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	specPath := filepath.Join(dir, "spec.json")
	if err := os.WriteFile(specPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	repoPath := filepath.Join(dir, "repo.json")
	if err := integrateCmd([]string{"-spec", specPath, "-repo-out", repoPath}); err != nil {
		t.Fatal(err)
	}
	// The repository was written and is non-trivial.
	info, err := os.Stat(repoPath)
	if err != nil || info.Size() == 0 {
		t.Fatalf("repo output missing: %v", err)
	}
	// Errors: missing spec, bad JSON, failing query.
	if err := integrateCmd([]string{}); err == nil {
		t.Error("integrate without spec succeeded")
	}
	badPath := filepath.Join(dir, "bad.json")
	os.WriteFile(badPath, []byte("{"), 0o644)
	if err := integrateCmd([]string{"-spec", badPath}); err == nil {
		t.Error("bad spec JSON accepted")
	}
}
