// Command chaossmoke is the CI gate for the fault-tolerance surface:
// it boots the daemon's server in-process on a random port, federates
// a healthy source with a fault-injected one, takes the faulty source
// hard-down after its extent cache is warm, and then asserts the
// degraded-operation contract end to end over HTTP — stale answers
// carry a degraded warning naming the source, strict requests are
// refused with 503, /healthz reports the open breaker, and the
// Prometheus exposition carries the breaker families. Exit status is
// the verdict; output is only diagnostic.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"github.com/dataspace/automed/internal/obs"
	"github.com/dataspace/automed/internal/query"
	"github.com/dataspace/automed/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "chaossmoke:", err)
		os.Exit(1)
	}
	fmt.Println("chaossmoke: ok")
}

func run() error {
	cfg := server.DefaultConfig()
	// Deterministic drill: open on the first failure, never auto-close,
	// and keep the background probe out of the picture.
	cfg.Breaker = query.BreakerConfig{
		Enabled:       true,
		Consecutive:   1,
		OpenFor:       time.Hour,
		SourceTimeout: 5 * time.Second,
	}
	cfg.ProbeInterval = time.Hour
	srv := server.New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()

	// Two federated sources: Steady stays healthy throughout; Flaky's
	// flap schedule serves exactly one healthy fetch (the cache warm-up)
	// and then fails every fetch after it.
	if err := post(base+"/sources", map[string]any{
		"name": "Steady",
		"tables": []map[string]any{{
			"name":    "books",
			"columns": []string{"isbn!pk", "title"},
			"rows":    [][]any{{"1", "Dataspaces"}, {"2", "Schema Matching"}},
		}},
	}, http.StatusCreated, nil); err != nil {
		return err
	}
	if err := post(base+"/sources", map[string]any{
		"name": "Flaky",
		"fault": map[string]any{
			"tables": []map[string]any{{
				"name":    "items",
				"columns": []string{"id:int", "label"},
				"rows":    [][]any{{0, "x"}, {1, "y"}, {2, "z"}},
			}},
			"config": map[string]any{"flap_up": 1, "flap_down": 1 << 20},
		},
	}, http.StatusCreated, nil); err != nil {
		return err
	}
	if err := post(base+"/federate", map[string]any{}, http.StatusCreated, nil); err != nil {
		return err
	}

	// Warm the Flaky extent through its single healthy slot, then force
	// the next query back to the now-failing source.
	var q map[string]any
	if err := post(base+"/query", map[string]any{"query": "count(<<flaky_items>>)"}, http.StatusOK, &q); err != nil {
		return err
	}
	if q["degraded"] == true {
		return fmt.Errorf("warm-up answer already degraded: %v", q)
	}
	if err := post(base+"/sessions/default/invalidate", nil, http.StatusOK, nil); err != nil {
		return err
	}

	// The source is hard-down: the answer must come from the stale
	// extent, marked degraded, with a warning naming the source.
	if err := post(base+"/query", map[string]any{"query": "count(<<flaky_items>>)"}, http.StatusOK, &q); err != nil {
		return err
	}
	if q["value"] != float64(3) || q["degraded"] != true {
		return fmt.Errorf("degraded answer = %v, want stale count 3 marked degraded", q)
	}
	named := false
	if warns, ok := q["warnings"].([]any); ok {
		for _, w := range warns {
			if s, _ := w.(string); query.IsDegraded(s) && strings.Contains(s, "Flaky") {
				named = true
			}
		}
	}
	if !named {
		return fmt.Errorf("no degraded warning naming Flaky: %v", q["warnings"])
	}

	// Degraded federation: the healthy neighbour still answers fresh.
	if err := post(base+"/query", map[string]any{"query": "count(<<steady_books>>)"}, http.StatusOK, &q); err != nil {
		return err
	}
	if q["value"] != float64(2) || q["degraded"] == true {
		return fmt.Errorf("healthy source answer = %v, want fresh count 2", q)
	}

	// Strict mode refuses the degraded answer.
	if err := post(base+"/query", map[string]any{
		"query": "count(<<flaky_items>>)", "require_fresh": true,
	}, http.StatusServiceUnavailable, nil); err != nil {
		return err
	}

	// /healthz reports the open breaker and an overall degraded status.
	body, _, err := get(base+"/healthz", "application/json")
	if err != nil {
		return err
	}
	var h map[string]any
	if err := json.Unmarshal(body, &h); err != nil {
		return fmt.Errorf("decoding /healthz: %w", err)
	}
	if h["status"] != "degraded" {
		return fmt.Errorf("healthz status = %v, want degraded", h["status"])
	}
	if !breakerOpen(h, "Flaky") {
		return fmt.Errorf("healthz does not report Flaky's breaker open: %s", body)
	}

	// The exposition stays well-formed and carries the breaker families.
	text, ct, err := get(base+"/metrics", "")
	if err != nil {
		return err
	}
	if !strings.HasPrefix(ct, "text/plain") {
		return fmt.Errorf("GET /metrics content type = %q, want text/plain exposition", ct)
	}
	if err := obs.ValidateExposition(text); err != nil {
		return fmt.Errorf("invalid Prometheus exposition: %w\n%s", err, text)
	}
	for _, want := range []string{
		`automed_source_breaker_open{session="default",source="Flaky"} 1`,
		`automed_source_breaker_opens_total{session="default",source="Flaky"} 1`,
		"automed_degraded_queries_total 2",
		`automed_source_fallbacks_total{session="default",source="Flaky"}`,
	} {
		if !bytes.Contains(text, []byte(want)) {
			return fmt.Errorf("exposition lacks %q:\n%s", want, text)
		}
	}
	return nil
}

// breakerOpen reports whether /healthz lists the named source with an
// open breaker in any session.
func breakerOpen(h map[string]any, source string) bool {
	sessions, _ := h["source_health"].([]any)
	for _, e := range sessions {
		sess, _ := e.(map[string]any)
		sources, _ := sess["sources"].([]any)
		for _, s := range sources {
			m, _ := s.(map[string]any)
			if m["source"] == source && m["state"] == "open" {
				return true
			}
		}
	}
	return false
}

func post(url string, body any, want int, out *map[string]any) error {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(buf)
	}
	resp, err := http.Post(url, "application/json", rd)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != want {
		return fmt.Errorf("POST %s = %d, want %d (%s)", url, resp.StatusCode, want, data)
	}
	if out != nil {
		// Reset before decoding: Unmarshal merges into an existing map,
		// which would leak omitempty fields from a previous response.
		*out = nil
		if err := json.Unmarshal(data, out); err != nil {
			return fmt.Errorf("POST %s: decoding response: %w", url, err)
		}
	}
	return nil
}

func get(url, accept string) ([]byte, string, error) {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return nil, "", err
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return nil, "", err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, "", fmt.Errorf("GET %s = %d (%s)", url, resp.StatusCode, body)
	}
	return body, resp.Header.Get("Content-Type"), nil
}
