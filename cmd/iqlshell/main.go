// Command iqlshell is an interactive IQL shell over federated CSV data
// sources. Lines are parsed and evaluated against the federation; shell
// commands start with ':'.
//
//	iqlshell -src library=testdata/library -src shop=testdata/shop
//	iql> count(<<library_books>>)
//	iql> :schemas
//	iql> :quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/dataspace/automed"
	"github.com/dataspace/automed/internal/iql"
	"github.com/dataspace/automed/internal/render"
)

type srcFlags []string

func (s *srcFlags) String() string     { return strings.Join(*s, ",") }
func (s *srcFlags) Set(v string) error { *s = append(*s, v); return nil }

func main() {
	var srcs srcFlags
	flag.Var(&srcs, "src", "data source as name=csvdir (repeatable)")
	flag.Parse()
	if len(srcs) == 0 {
		fmt.Fprintln(os.Stderr, "usage: iqlshell -src name=csvdir [...]")
		os.Exit(2)
	}
	var ws []automed.Wrapper
	for _, spec := range srcs {
		name, dir, ok := strings.Cut(spec, "=")
		if !ok {
			fmt.Fprintf(os.Stderr, "iqlshell: bad -src %q\n", spec)
			os.Exit(2)
		}
		w, err := automed.OpenCSVDir(name, dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "iqlshell: %v\n", err)
			os.Exit(1)
		}
		ws = append(ws, w)
	}
	sys, err := automed.New(ws...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "iqlshell: %v\n", err)
		os.Exit(1)
	}
	if _, err := sys.Federate("F"); err != nil {
		fmt.Fprintf(os.Stderr, "iqlshell: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("federated %d source(s); :help for commands\n", len(ws))

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("iql> ")
		if !sc.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "--") {
			continue
		}
		if strings.HasPrefix(line, ":") {
			if shellCommand(sys, line) {
				return
			}
			continue
		}
		res, err := sys.Query(line)
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		printValue(res.Value)
		for _, w := range res.Warnings {
			fmt.Println("warning:", w)
		}
	}
}

// shellCommand handles ':' commands; returns true to exit.
func shellCommand(sys *automed.System, line string) bool {
	cmd, arg, _ := strings.Cut(strings.TrimPrefix(line, ":"), " ")
	switch cmd {
	case "q", "quit", "exit":
		return true
	case "help":
		fmt.Println(`commands:
  :schemas            list global schema objects
  :extent <<scheme>>  show one object's extent
  :builtins           list IQL built-in functions
  :quit               exit`)
	case "schemas":
		fmt.Print(render.Schema(sys.Global()))
	case "extent":
		v, err := sys.Extent(strings.TrimSpace(arg))
		if err != nil {
			fmt.Println("error:", err)
			return false
		}
		printValue(v)
	case "builtins":
		fmt.Println(strings.Join(iql.Builtins(), " "))
	default:
		fmt.Printf("unknown command %q; :help\n", cmd)
	}
	return false
}

func printValue(v automed.Value) {
	if !v.IsCollection() {
		fmt.Println(v)
		return
	}
	sorted, err := iql.SortBag(v)
	if err != nil {
		fmt.Println(v)
		return
	}
	els, _ := sorted.Elements()
	const cap = 40
	for i, e := range els {
		if i == cap {
			fmt.Printf("  … %d more\n", len(els)-cap)
			break
		}
		fmt.Printf("  %s\n", e)
	}
	fmt.Printf("(%d element(s))\n", len(els))
}
