// Command loadgen drives the dataspace daemon with realistic traffic
// and reports what the admission-control machinery did about it: many
// concurrent sessions, zipf-skewed query popularity (a few hot
// sessions, a long cold tail), integration steps (/intersect, /refine)
// issued mid-flight while queries run, and an optional open-loop
// arrival stream on top of the closed-loop workers.
//
// Two modes:
//
//   - Self-serve (default): boots the server in-process on a random
//     port with the configured -max-inflight/-max-queue, so the whole
//     run is hermetic — this is what `make load-smoke` and
//     `make bench-load` use.
//   - Remote: -addr points at a running automedd; the server's own
//     limits apply.
//
// After the run it scrapes GET /metrics, fails on malformed Prometheus
// exposition or missing queue families, and writes a JSON report —
// client-observed p50/p95/p99, reject rate, throughput, and the
// server's queue counters — to -out (default stdout). `make bench-load`
// commits that report as BENCH_PR7.json.
//
// With -smoke the run doubles as a CI gate: it exits non-zero unless
// queries succeeded, the exposition parsed, and (when the configured
// limits force queuing) admission control visibly engaged.
//
// With -fault each session also carries a fault-injected source with a
// seeded error rate, flaky queries join the mix, and workers
// periodically invalidate their session's extent cache so queries keep
// hitting the failing source instead of its warm cache. The report
// then counts degraded (stale-fallback) answers, and -smoke
// additionally requires that some appeared — exercising the circuit
// breakers and stale-extent fallback under concurrency.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/dataspace/automed/internal/obs"
	"github.com/dataspace/automed/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

type config struct {
	addr        string
	sessions    int
	workers     int
	rate        float64
	duration    time.Duration
	zipfS       float64
	maxInflight int
	maxQueue    int
	mutateEvery int
	rows        int
	out         string
	smoke       bool
	fault       bool
	errorRate   float64
	invalEvery  int
}

// report is the committed output shape; it deliberately carries no
// timestamps so reruns differ only where the measurement differs.
type report struct {
	Config struct {
		Sessions    int     `json:"sessions"`
		Workers     int     `json:"workers"`
		RatePerSec  float64 `json:"open_loop_rate_per_sec"`
		DurationSec float64 `json:"duration_sec"`
		ZipfS       float64 `json:"zipf_s"`
		MaxInflight int     `json:"max_inflight"`
		MaxQueue    int     `json:"max_queue"`
	} `json:"config"`
	Totals struct {
		Requests    uint64 `json:"requests"`
		OK          uint64 `json:"ok"`
		Rejected429 uint64 `json:"rejected_429"`
		Dropped503  uint64 `json:"dropped_503"`
		Errors      uint64 `json:"errors"`
		Mutations   uint64 `json:"mutations"`
		Degraded    uint64 `json:"degraded"`
	} `json:"totals"`
	RejectRate    float64 `json:"reject_rate"`
	ThroughputRPS float64 `json:"throughput_rps"`
	LatencyMs     struct {
		Count uint64  `json:"count"`
		Mean  float64 `json:"mean"`
		Max   float64 `json:"max"`
		P50   float64 `json:"p50"`
		P95   float64 `json:"p95"`
		P99   float64 `json:"p99"`
	} `json:"latency_ms"`
	Queue json.RawMessage `json:"server_queue"`
}

func run() error {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", "", "target daemon base URL (empty = boot the server in-process)")
	flag.IntVar(&cfg.sessions, "sessions", 64, "concurrent integration sessions to drive")
	flag.IntVar(&cfg.workers, "workers", 32, "closed-loop workers (each sends its next request when the last returns)")
	flag.Float64Var(&cfg.rate, "rate", 0, "open-loop arrivals per second on top of the workers (0 = closed loop only)")
	flag.DurationVar(&cfg.duration, "duration", 10*time.Second, "measurement window")
	flag.Float64Var(&cfg.zipfS, "zipf-s", 1.2, "zipf skew of session popularity (>1; higher = hotter head)")
	flag.IntVar(&cfg.maxInflight, "max-inflight", 16, "self-serve server's admission limit")
	flag.IntVar(&cfg.maxQueue, "max-queue", 64, "self-serve server's queue bound")
	flag.IntVar(&cfg.mutateEvery, "mutate-every", 40, "every Nth worker request is an /intersect or /refine instead of a query (0 = queries only)")
	flag.IntVar(&cfg.rows, "rows", 32, "rows per table in each session's sources")
	flag.StringVar(&cfg.out, "out", "", "write the JSON report here (empty = stdout)")
	flag.BoolVar(&cfg.smoke, "smoke", false, "CI mode: assert queries succeeded and admission control engaged")
	flag.BoolVar(&cfg.fault, "fault", false, "add a fault-injected source per session and count degraded answers")
	flag.Float64Var(&cfg.errorRate, "fault-error-rate", 0.3, "seeded per-fetch failure probability of the fault sources (with -fault)")
	flag.IntVar(&cfg.invalEvery, "invalidate-every", 25, "every Nth worker request invalidates the session's extent cache (with -fault)")
	flag.Parse()

	base := cfg.addr
	if base == "" {
		scfg := server.DefaultConfig()
		scfg.MaxInflight = cfg.maxInflight
		scfg.MaxQueue = cfg.maxQueue
		srv := server.New(scfg)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		httpSrv := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}
		go httpSrv.Serve(ln)
		defer httpSrv.Close()
		base = "http://" + ln.Addr().String()
		fmt.Fprintf(os.Stderr, "loadgen: self-serve server on %s (max-inflight %d, max-queue %d)\n",
			base, cfg.maxInflight, cfg.maxQueue)
	}

	client := &http.Client{Timeout: 60 * time.Second}
	// Mutation names carry the pid so repeated runs against the same
	// daemon never collide with intersections from an earlier run.
	g := &generator{cfg: cfg, base: base, client: client, nonce: uint64(os.Getpid()),
		lat: obs.NewHistogram(latencyBoundsMs)}
	if err := g.setup(); err != nil {
		return err
	}
	g.drive()
	rep, err := g.report()
	if err != nil {
		return err
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if cfg.out == "" {
		os.Stdout.Write(buf)
	} else if err := os.WriteFile(cfg.out, buf, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr,
		"loadgen: %d requests, %d ok, %d rejected (429), %d dropped (503), %d errors, %d degraded; p50 %.2fms p99 %.2fms\n",
		rep.Totals.Requests, rep.Totals.OK, rep.Totals.Rejected429, rep.Totals.Dropped503,
		rep.Totals.Errors, rep.Totals.Degraded, rep.LatencyMs.P50, rep.LatencyMs.P99)
	if cfg.smoke {
		return g.assertSmoke(rep)
	}
	return nil
}

// latencyBoundsMs mirror the server's query-latency buckets so the
// client-side histogram quantiles are comparable.
var latencyBoundsMs = []float64{0.1, 0.5, 1, 5, 25, 100, 500, 2500, 10000}

type generator struct {
	cfg    config
	base   string
	client *http.Client

	lat       *obs.Histogram
	requests  atomic.Uint64
	ok        atomic.Uint64
	rejected  atomic.Uint64
	dropped   atomic.Uint64
	errors    atomic.Uint64
	mutations atomic.Uint64
	degraded  atomic.Uint64
	mutSeq    atomic.Uint64
	nonce     uint64
	queries   []string

	elapsed time.Duration
}

func (g *generator) sessionName(i int) string { return fmt.Sprintf("load-%03d", i) }

// setup registers every session's two inline sources and federates, so
// each session is queryable before the load starts. A 409 means the
// session survived an earlier loadgen run against the same daemon —
// it's already set up, so the run is repeatable without a restart.
func (g *generator) setup() error {
	for i := 0; i < g.cfg.sessions; i++ {
		sess := g.sessionName(i)
		lib := make([][]any, g.cfg.rows)
		shop := make([][]any, g.cfg.rows)
		for r := range lib {
			lib[r] = []any{r, fmt.Sprintf("978-%d-%d", i, r), fmt.Sprintf("Book %d", r)}
			shop[r] = []any{fmt.Sprintf("S%d", r), fmt.Sprintf("978-%d-%d", i, r), float64(r) + 0.5}
		}
		if err := g.post("/sources", map[string]any{
			"session": sess, "name": "Library",
			"tables": []map[string]any{{"name": "books", "columns": []string{"id:int", "isbn", "title"}, "rows": lib}},
		}, http.StatusCreated, http.StatusConflict); err != nil {
			return fmt.Errorf("setting up %s: %w", sess, err)
		}
		if err := g.post("/sources", map[string]any{
			"session": sess, "name": "Shop",
			"tables": []map[string]any{{"name": "items", "columns": []string{"sku", "barcode", "price:float"}, "rows": shop}},
		}, http.StatusCreated, http.StatusConflict); err != nil {
			return fmt.Errorf("setting up %s: %w", sess, err)
		}
		if g.cfg.fault {
			flaky := make([][]any, g.cfg.rows)
			for r := range flaky {
				flaky[r] = []any{r, fmt.Sprintf("part-%d", r)}
			}
			if err := g.post("/sources", map[string]any{
				"session": sess, "name": "Flaky",
				"fault": map[string]any{
					"tables": []map[string]any{{"name": "parts", "columns": []string{"id:int", "label"}, "rows": flaky}},
					// Per-session seeds keep the failure streams distinct
					// but reproducible run to run.
					"config": map[string]any{"error_rate": g.cfg.errorRate, "seed": i + 1},
				},
			}, http.StatusCreated, http.StatusConflict); err != nil {
				return fmt.Errorf("setting up %s: %w", sess, err)
			}
		}
		if err := g.post("/federate", map[string]any{"session": sess, "name": "F"}, http.StatusCreated, http.StatusConflict); err != nil {
			return fmt.Errorf("federating %s: %w", sess, err)
		}
	}
	g.queries = queryBodies
	if g.cfg.fault {
		g.queries = append(append([]string(nil), queryBodies...),
			"count(<<flaky_parts>>)",
			"count([x | {k, x} <- <<flaky_parts, label>>])",
		)
	}
	return nil
}

// queryBodies are the query mix, cheap to expensive.
var queryBodies = []string{
	"count(<<library_books>>)",
	"count(<<shop_items>>)",
	"count(<<library_books, title>>)",
	"max([x | {k, x} <- <<shop_items, price>>])",
	"count([{k1, k2} | {k1, x1} <- <<library_books, isbn>>; {k2, x2} <- <<shop_items, barcode>>; x1 = x2])",
}

// drive runs the closed-loop workers (plus the optional open-loop
// stream) for the configured duration.
func (g *generator) drive() {
	deadline := time.Now().Add(g.cfg.duration)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < g.cfg.workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			// Deterministic per-worker streams: the workload shape is
			// reproducible run to run; only the timing varies.
			rng := rand.New(rand.NewPCG(0x10ad, uint64(id)))
			zipf := rand.NewZipf(rng, g.cfg.zipfS, 1, uint64(g.cfg.sessions-1))
			for n := 0; time.Now().Before(deadline); n++ {
				sess := g.sessionName(int(zipf.Uint64()))
				if g.cfg.mutateEvery > 0 && n%g.cfg.mutateEvery == g.cfg.mutateEvery-1 {
					g.mutate(sess)
					continue
				}
				if g.cfg.fault && g.cfg.invalEvery > 0 && n%g.cfg.invalEvery == g.cfg.invalEvery-1 {
					g.invalidate(sess)
					continue
				}
				g.query(sess, g.queries[rng.IntN(len(g.queries))], rng.IntN(4) == 0)
			}
		}(w)
	}
	if g.cfg.rate > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(0x10ad, 0xffff))
			zipf := rand.NewZipf(rng, g.cfg.zipfS, 1, uint64(g.cfg.sessions-1))
			tick := time.NewTicker(time.Duration(float64(time.Second) / g.cfg.rate))
			defer tick.Stop()
			var open sync.WaitGroup
			for time.Now().Before(deadline) {
				<-tick.C
				sess := g.sessionName(int(zipf.Uint64()))
				q := g.queries[rng.IntN(len(g.queries))]
				open.Add(1)
				go func() { // open loop: do not wait for the previous arrival
					defer open.Done()
					g.query(sess, q, false)
				}()
			}
			open.Wait()
		}()
	}
	wg.Wait()
	g.elapsed = time.Since(start)
}

// query sends one POST /query and records the client-observed outcome,
// including whether the answer was degraded (served from a stale
// extent while its source was unreachable).
func (g *generator) query(sess, q string, noCache bool) {
	body := map[string]any{"session": sess, "query": q}
	if noCache {
		body["no_cache"] = true
	}
	start := time.Now()
	status, resp, err := g.doRead("/query", body)
	g.record(status, err, time.Since(start))
	if err == nil && status == http.StatusOK && bytes.Contains(resp, []byte(`"degraded":true`)) {
		g.degraded.Add(1)
	}
}

// invalidate drops one session's cached extents mid-flight, forcing
// subsequent queries back to the (possibly failing) sources.
func (g *generator) invalidate(sess string) {
	start := time.Now()
	status, err := g.do("/sessions/"+sess+"/invalidate", nil)
	g.record(status, err, time.Since(start))
}

// mutate issues one integration step mid-flight: an intersection with a
// unique target (even steps) or a refinement (odd), exactly the
// workload that races schema versioning against live queries.
func (g *generator) mutate(sess string) {
	n := g.mutSeq.Add(1)
	var path string
	var body map[string]any
	if n%2 == 0 {
		path = "/intersect"
		body = map[string]any{
			"session": sess,
			"name":    fmt.Sprintf("I%dx%d", g.nonce, n),
			"mappings": []map[string]any{{
				"target": fmt.Sprintf("<<UBook%dx%d>>", g.nonce, n),
				"forward": []map[string]any{
					{"source": "Library", "query": "[{'LIB', k} | k <- <<books>>]"},
					{"source": "Shop", "query": "[{'SHOP', k} | k <- <<items>>]"},
				},
			}},
		}
	} else {
		path = "/refine"
		body = map[string]any{
			"session": sess,
			"name":    fmt.Sprintf("R%dx%d", g.nonce, n),
			"mapping": map[string]any{
				"target": fmt.Sprintf("<<Title%dx%d>>", g.nonce, n),
				"forward": []map[string]any{
					{"source": "Library", "query": "[k | k <- <<books>>]"},
				},
			},
		}
	}
	start := time.Now()
	status, err := g.do(path, body)
	g.record(status, err, time.Since(start))
	if err == nil && status == http.StatusCreated {
		g.mutations.Add(1)
	}
}

// record folds one response into the counters; only accepted requests
// feed the latency histogram (rejections return in microseconds and
// would drag the quantiles down).
func (g *generator) record(status int, err error, d time.Duration) {
	g.requests.Add(1)
	switch {
	case err != nil:
		g.errors.Add(1)
	case status == http.StatusOK || status == http.StatusCreated:
		g.ok.Add(1)
		g.lat.Observe(d)
	case status == http.StatusTooManyRequests:
		g.rejected.Add(1)
	case status == http.StatusServiceUnavailable:
		g.dropped.Add(1)
	default:
		g.errors.Add(1)
	}
}

func (g *generator) report() (*report, error) {
	rep := &report{}
	rep.Config.Sessions = g.cfg.sessions
	rep.Config.Workers = g.cfg.workers
	rep.Config.RatePerSec = g.cfg.rate
	rep.Config.DurationSec = g.cfg.duration.Seconds()
	rep.Config.ZipfS = g.cfg.zipfS
	rep.Config.MaxInflight = g.cfg.maxInflight
	rep.Config.MaxQueue = g.cfg.maxQueue

	rep.Totals.Requests = g.requests.Load()
	rep.Totals.OK = g.ok.Load()
	rep.Totals.Rejected429 = g.rejected.Load()
	rep.Totals.Dropped503 = g.dropped.Load()
	rep.Totals.Errors = g.errors.Load()
	rep.Totals.Mutations = g.mutations.Load()
	rep.Totals.Degraded = g.degraded.Load()
	if rep.Totals.Requests > 0 {
		rep.RejectRate = float64(rep.Totals.Rejected429) / float64(rep.Totals.Requests)
	}
	if g.elapsed > 0 {
		rep.ThroughputRPS = float64(rep.Totals.OK) / g.elapsed.Seconds()
	}
	h := g.lat.Snapshot()
	rep.LatencyMs.Count = h.Count
	rep.LatencyMs.Mean = h.MeanMs()
	rep.LatencyMs.Max = h.MaxMs()
	rep.LatencyMs.P50 = h.Quantile(0.50)
	rep.LatencyMs.P95 = h.Quantile(0.95)
	rep.LatencyMs.P99 = h.Quantile(0.99)

	// The server's view: validate the Prometheus exposition and embed
	// the queue counters from the JSON snapshot.
	text, err := g.get("/metrics", "")
	if err != nil {
		return nil, err
	}
	if err := obs.ValidateExposition(text); err != nil {
		return nil, fmt.Errorf("invalid Prometheus exposition after load: %w", err)
	}
	for _, fam := range []string{
		"automed_queue_inflight", "automed_queue_depth",
		"automed_queue_admitted_total", "automed_queue_rejected_total",
		"automed_queue_wait_seconds_bucket",
	} {
		if !bytes.Contains(text, []byte(fam)) {
			return nil, fmt.Errorf("exposition lacks %s after load", fam)
		}
	}
	jsonBody, err := g.get("/metrics?format=json", "application/json")
	if err != nil {
		return nil, err
	}
	var snap struct {
		Queue json.RawMessage `json:"queue"`
	}
	if err := json.Unmarshal(jsonBody, &snap); err != nil {
		return nil, fmt.Errorf("decoding JSON metrics: %w", err)
	}
	rep.Queue = snap.Queue
	return rep, nil
}

// assertSmoke is the CI verdict: traffic flowed, nothing errored
// unexpectedly, and when the limits forced queuing the controller
// answered with 429s rather than unbounded buffering.
func (g *generator) assertSmoke(rep *report) error {
	if rep.Totals.OK == 0 {
		return fmt.Errorf("smoke: no request succeeded")
	}
	// Under fault injection errors are the point: a cold extent whose
	// fetch fails has no stale copy to fall back on and fails closed.
	if !g.cfg.fault && rep.Totals.Errors > 0 {
		return fmt.Errorf("smoke: %d unexpected errors", rep.Totals.Errors)
	}
	var q struct {
		Admitted uint64 `json:"admitted_total"`
	}
	if err := json.Unmarshal(rep.Queue, &q); err != nil {
		return fmt.Errorf("smoke: queue snapshot: %w", err)
	}
	if q.Admitted == 0 {
		return fmt.Errorf("smoke: admission control admitted nothing")
	}
	if g.cfg.fault && rep.Totals.Degraded == 0 {
		return fmt.Errorf("smoke: fault injection produced no degraded answers")
	}
	fmt.Fprintln(os.Stderr, "loadgen: smoke ok")
	return nil
}

// ---- HTTP plumbing ----

func (g *generator) post(path string, body any, want ...int) error {
	status, err := g.do(path, body)
	if err != nil {
		return err
	}
	for _, w := range want {
		if status == w {
			return nil
		}
	}
	return fmt.Errorf("POST %s = %d, want %v", path, status, want)
}

func (g *generator) do(path string, body any) (int, error) {
	status, _, err := g.doRead(path, body)
	return status, err
}

func (g *generator) doRead(path string, body any) (int, []byte, error) {
	buf, err := json.Marshal(body)
	if err != nil {
		return 0, nil, err
	}
	resp, err := g.client.Post(g.base+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, data, nil
}

func (g *generator) get(path, accept string) ([]byte, error) {
	req, err := http.NewRequest(http.MethodGet, g.base+path, nil)
	if err != nil {
		return nil, err
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s = %d (%s)", path, resp.StatusCode, firstLine(data))
	}
	return data, nil
}

func firstLine(b []byte) string {
	s := string(b)
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i]
	}
	return s
}
