// Command benchjson runs the repository's tier benchmarks with
// -benchmem and writes the parsed results (benchmark name → ns/op,
// B/op, allocs/op) to a JSON file, so each perf PR can commit a
// machine-readable baseline (e.g. BENCH_PR8.json) next to the prose
// benchstat table.
//
// With -compare old.json the new results are also diffed against a
// previously committed baseline: a delta table (ns/op, B/op,
// allocs/op, old→new, percent) is printed for every benchmark present
// in both files, plus the benchmarks only one side has.
//
// Usage:
//
//	go run ./cmd/benchjson [-out BENCH.json] [-compare OLD.json] [-bench regex] [-benchtime 1s] [-count 1] [pkg...]
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
)

// defaultBench selects the tier benchmarks: the serving-path
// benchmarks the perf acceptance gates on (including the serial vs
// sharded Table 1 pairs), the value-runtime microbenchmarks, and the
// REST discovery allocation benchmark guarding the per-object decode
// path.
const defaultBench = "BenchmarkIQLEval|BenchmarkTable1$|BenchmarkTable1Parallel|BenchmarkFederationScaling|BenchmarkServerQuery" +
	"|BenchmarkValueHash|BenchmarkDistinct$|BenchmarkMemberFilter|BenchmarkJoinIndexBuild|BenchmarkRESTDiscovery"

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"b_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// File is the written JSON document.
type File struct {
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	Bench      string   `json:"bench"`
	Benchtime  string   `json:"benchtime"`
	Count      int      `json:"count"`
	Benchmarks []Result `json:"benchmarks"`
}

// benchLine matches `BenchmarkX-8   123   456 ns/op   789 B/op   12 allocs/op`
// (the -benchmem fields are optional for benchmarks that disable them).
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op\s+(\d+) allocs/op)?`)

func main() {
	out := flag.String("out", "BENCH_PR8.json", "output JSON file")
	compare := flag.String("compare", "", "previous baseline JSON to diff the new results against")
	bench := flag.String("bench", defaultBench, "benchmark regex (go test -bench)")
	benchtime := flag.String("benchtime", "1s", "go test -benchtime")
	count := flag.Int("count", 1, "go test -count; multiple runs are averaged per benchmark")
	flag.Parse()
	pkgs := flag.Args()
	if len(pkgs) == 0 {
		pkgs = []string{"./..."}
	}

	args := append([]string{"test", "-run", "^$", "-bench", *bench,
		"-benchmem", "-benchtime", *benchtime, "-count", strconv.Itoa(*count)}, pkgs...)
	cmd := exec.Command("go", args...)
	var buf bytes.Buffer
	cmd.Stdout = io.MultiWriter(os.Stdout, &buf)
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: go test: %v\n", err)
		os.Exit(1)
	}

	results, err := parse(&buf)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results parsed")
		os.Exit(1)
	}
	doc := File{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Bench:      *bench,
		Benchtime:  *benchtime,
		Count:      *count,
		Benchmarks: results,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(results), *out)

	if *compare != "" {
		if err := printComparison(os.Stdout, *compare, results); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: compare: %v\n", err)
			os.Exit(1)
		}
	}
}

// printComparison diffs results against the baseline file at oldPath:
// one row per benchmark present in both, old→new with percent deltas
// (negative = faster/leaner), then the names only one side has.
func printComparison(w io.Writer, oldPath string, results []Result) error {
	data, err := os.ReadFile(oldPath)
	if err != nil {
		return err
	}
	var old File
	if err := json.Unmarshal(data, &old); err != nil {
		return fmt.Errorf("parsing %s: %w", oldPath, err)
	}
	prev := make(map[string]Result, len(old.Benchmarks))
	for _, r := range old.Benchmarks {
		prev[r.Name] = r
	}

	fmt.Fprintf(w, "\ncomparison vs %s (negative = improvement)\n", oldPath)
	fmt.Fprintf(w, "%-50s %14s %14s %8s %9s %9s\n",
		"benchmark", "old ns/op", "new ns/op", "Δns/op", "ΔB/op", "Δallocs")
	var onlyNew []string
	seen := make(map[string]bool, len(results))
	for _, r := range results {
		seen[r.Name] = true
		o, ok := prev[r.Name]
		if !ok {
			onlyNew = append(onlyNew, r.Name)
			continue
		}
		fmt.Fprintf(w, "%-50s %14.0f %14.0f %8s %9s %9s\n",
			r.Name, o.NsPerOp, r.NsPerOp,
			pct(o.NsPerOp, r.NsPerOp),
			pct(float64(o.BytesPerOp), float64(r.BytesPerOp)),
			pct(float64(o.AllocsPerOp), float64(r.AllocsPerOp)))
	}
	for _, r := range old.Benchmarks {
		if !seen[r.Name] {
			fmt.Fprintf(w, "%-50s only in %s\n", r.Name, oldPath)
		}
	}
	for _, name := range onlyNew {
		fmt.Fprintf(w, "%-50s new (no baseline)\n", name)
	}
	return nil
}

// pct renders the relative change from old to new, "n/a" when the
// baseline is zero.
func pct(old, new float64) string {
	if old == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", (new-old)/old*100)
}

// parse extracts benchmark lines, averaging repeated runs of the same
// benchmark (from -count > 1) into one entry, in first-seen order.
func parse(r io.Reader) ([]Result, error) {
	type acc struct {
		Result
		runs int64
	}
	var order []string
	accs := map[string]*acc{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		var bytesOp, allocsOp int64
		if m[4] != "" {
			bytesOp, _ = strconv.ParseInt(m[4], 10, 64)
			allocsOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		a, ok := accs[m[1]]
		if !ok {
			a = &acc{Result: Result{Name: m[1]}}
			accs[m[1]] = a
			order = append(order, m[1])
		}
		a.runs++
		a.Iterations += iters
		a.NsPerOp += ns
		a.BytesPerOp += bytesOp
		a.AllocsPerOp += allocsOp
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make([]Result, 0, len(order))
	for _, name := range order {
		a := accs[name]
		out = append(out, Result{
			Name:        name,
			Iterations:  a.Iterations / a.runs,
			NsPerOp:     a.NsPerOp / float64(a.runs),
			BytesPerOp:  a.BytesPerOp / a.runs,
			AllocsPerOp: a.AllocsPerOp / a.runs,
		})
	}
	return out, nil
}
