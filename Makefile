GO ?= go

.PHONY: ci fmt vet build test race bench bench-smoke run fuzz-seeds golden

# ci is the full local gate: formatting, static checks (go vet), build,
# tests under the race detector, the persistence-format guards (fuzz
# seed corpus + golden snapshot), and a one-iteration -benchmem pass
# over every benchmark so the bench harness can't silently rot.
ci: fmt vet build race fuzz-seeds golden bench-smoke

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt -l found unformatted files:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs the tier benchmarks at full fidelity and writes the parsed
# results (ns/op, B/op, allocs/op per benchmark) to BENCH_PR4.json, the
# committed perf baseline of the current PR.
bench:
	$(GO) run ./cmd/benchjson -out BENCH_PR4.json

# bench-smoke is the ci benchmark gate: one iteration of everything,
# with allocation accounting compiled in.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x -benchmem ./...

# fuzz-seeds runs every committed fuzz seed (malformed snapshot corpus)
# as plain tests — the CI-safe equivalent of a -fuzztime run.
fuzz-seeds:
	$(GO) test -run '^Fuzz' ./internal/repo

# golden checks the committed session snapshot still matches a fresh
# export byte for byte and still loads (format stability).
golden:
	$(GO) test -run 'TestGoldenSnapshot' ./internal/core

# run starts the dataspace daemon on :8080.
run:
	$(GO) run ./cmd/automedd -addr :8080
