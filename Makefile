GO ?= go

.PHONY: ci fmt vet build test race bench run

# ci is the full local gate: formatting, static checks, build, tests
# under the race detector, and a one-iteration pass over every
# benchmark so the bench harness stays compiling.
ci: fmt vet build race bench

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt -l found unformatted files:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# run starts the dataspace daemon on :8080.
run:
	$(GO) run ./cmd/automedd -addr :8080
