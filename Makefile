GO ?= go

.PHONY: ci fmt vet build test race bench bench-smoke metrics-smoke run fuzz-seeds golden test-wrappers

# ci is the full local gate: formatting, static checks (go vet), build,
# tests under the race detector, the wrapper conformance suite, the
# persistence-format guards (fuzz seed corpus + golden snapshots), a
# one-iteration -benchmem pass over every benchmark so the bench
# harness can't silently rot, and the metrics exposition smoke check.
ci: fmt vet build race test-wrappers fuzz-seeds golden bench-smoke metrics-smoke

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt -l found unformatted files:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs the tier benchmarks at full fidelity and writes the parsed
# results (ns/op, B/op, allocs/op per benchmark) to BENCH_PR4.json, the
# committed perf baseline of the current PR.
bench:
	$(GO) run ./cmd/benchjson -out BENCH_PR4.json

# bench-smoke is the ci benchmark gate: one iteration of everything,
# with allocation accounting compiled in.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x -benchmem ./...

# metrics-smoke boots the server in-process on a random port, drives a
# federation and queries over HTTP, and fails on malformed Prometheus
# exposition or a JSON metrics snapshot missing expected fields.
metrics-smoke:
	$(GO) run ./cmd/metricssmoke

# fuzz-seeds runs every committed fuzz seed (malformed repo snapshots,
# malformed REST payloads) as plain tests — the CI-safe equivalent of a
# -fuzztime run.
fuzz-seeds:
	$(GO) test -run '^Fuzz' ./internal/repo ./internal/wrapper

# golden checks the committed snapshots (full session, and the sql/rest
# wrapper kinds) still match a fresh export byte for byte and still
# load (format stability).
golden:
	$(GO) test -run 'TestGoldenSnapshot' ./internal/core

# test-wrappers runs the wrapper conformance suite — every backend
# (CSV, Static, XML, SQL via the in-process sqlmem driver, REST via
# httptest) against the full Wrapper contract — under the race
# detector. No network or external dependencies.
test-wrappers:
	$(GO) test -race ./internal/wrapper/... ./internal/sqlmem

# run starts the dataspace daemon on :8080.
run:
	$(GO) run ./cmd/automedd -addr :8080
