GO ?= go

.PHONY: ci fmt vet build test race bench bench-smoke bench-parallel bench-load metrics-smoke load-smoke chaos-smoke stream-smoke run fuzz-seeds golden test-wrappers

# ci is the full local gate: formatting, static checks (go vet), build,
# tests under the race detector, the wrapper conformance suite, the
# persistence-format guards (fuzz seed corpus + golden snapshots), a
# one-iteration -benchmem pass over every benchmark so the bench
# harness can't silently rot, the sharded-evaluation speedup gate, the
# metrics exposition smoke check, a short admission-control load
# smoke, the fault-tolerance chaos drill, and the streaming
# bounded-memory gate.
ci: fmt vet build race test-wrappers fuzz-seeds golden bench-smoke bench-parallel metrics-smoke load-smoke chaos-smoke stream-smoke

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt -l found unformatted files:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs the tier benchmarks at full fidelity, writes the parsed
# results (ns/op, B/op, allocs/op per benchmark) to BENCH_PR10.json —
# the committed perf baseline of the current PR — and prints the diff
# against the previous baseline.
bench:
	$(GO) run ./cmd/benchjson -out BENCH_PR10.json -compare BENCH_PR8.json

# bench-smoke is the ci benchmark gate: one iteration of everything,
# with allocation accounting compiled in.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x -benchmem ./...

# bench-parallel is the ci sharded-evaluation gate: on a machine with
# at least two cores, the sharded Table 1 suite must beat the serial
# path (the test skips itself on one core, where sharding degrades to
# the serial loop by design).
bench-parallel:
	$(GO) test -run 'TestParallelSpeedupSmoke' -count=1 -v .

# metrics-smoke boots the server in-process on a random port, drives a
# federation and queries over HTTP, and fails on malformed Prometheus
# exposition or a JSON metrics snapshot missing expected fields.
metrics-smoke:
	$(GO) run ./cmd/metricssmoke

# load-smoke is the ci admission-control gate: a short self-served load
# run (closed-loop workers over a small in-flight limit, zipf session
# popularity, mid-flight intersect/refine) that fails on request
# errors, malformed exposition, or a dead admission controller.
load-smoke:
	$(GO) run ./cmd/loadgen -smoke -sessions 4 -workers 8 -duration 2s \
		-max-inflight 4 -max-queue 8 -mutate-every 10

# chaos-smoke is the ci fault-tolerance gate: an in-process two-source
# federation where one source goes hard-down after its extent cache is
# warm. It fails unless queries keep answering from the stale extent
# with a degraded warning naming the source, strict (require-fresh)
# requests are refused with 503, /healthz reports the open circuit
# breaker, and the breaker metric families appear in the exposition.
chaos-smoke:
	$(GO) run ./cmd/chaossmoke

# stream-smoke is the ci bounded-memory gate for the streaming extent
# pipeline: a 1.2M-row sqlmem-backed SQL source queried twice through
# the in-process daemon must leave the post-GC live heap essentially
# flat (a materialised extent would cost hundreds of megabytes).
stream-smoke:
	$(GO) run ./cmd/streamsmoke

# bench-load regenerates BENCH_PR7.json, the committed load/overload
# baseline: many more closed-loop workers than admitted slots plus an
# open-loop arrival stream. The in-flight limit sits well below the
# worker count (and any plausible core count) so the run genuinely
# saturates: the report captures real 429s, bounded queue waits and
# tail latency under overload rather than an idle queue.
bench-load:
	$(GO) run ./cmd/loadgen -sessions 64 -workers 64 -duration 10s \
		-max-inflight 2 -max-queue 8 -rate 200 -mutate-every 40 \
		-out BENCH_PR7.json

# fuzz-seeds runs every committed fuzz seed (malformed repo snapshots,
# malformed REST payloads) as plain tests — the CI-safe equivalent of a
# -fuzztime run.
fuzz-seeds:
	$(GO) test -run '^Fuzz' ./internal/repo ./internal/wrapper

# golden checks the committed snapshots (full session, and the sql/rest
# wrapper kinds) still match a fresh export byte for byte and still
# load (format stability).
golden:
	$(GO) test -run 'TestGoldenSnapshot' ./internal/core

# test-wrappers runs the wrapper conformance suite — every backend
# (CSV, Static, XML, SQL via the in-process sqlmem driver, REST via
# httptest) against the full Wrapper contract — under the race
# detector. No network or external dependencies.
test-wrappers:
	$(GO) test -race ./internal/wrapper/... ./internal/sqlmem

# run starts the dataspace daemon on :8080.
run:
	$(GO) run ./cmd/automedd -addr :8080
