// Package automed is a Go implementation of the intersection-schema
// dataspace integration technique of Brownlow & Poulovassilis (EDBT
// 2014), built on a from-scratch reimplementation of the AutoMed
// heterogeneous data integration system: the HDM common data model, the
// IQL functional query language, bidirectional (BAV) schema
// transformation pathways, a GAV/LAV/BAV query processor, data source
// wrappers and a schema matcher.
//
// The entry point is the System: wrap data sources, federate them
// (immediate querying, zero integration effort), then iteratively
// assert semantic intersections between sources through mappings
// tables. After every iteration a new global schema is available and
// IQL queries run against it; concepts never integrated remain
// reachable in their federated (prefixed) form. This is the paper's
// pay-as-you-go workflow.
//
//	lib, _ := automed.OpenCSVDir("Library", "testdata/library")
//	shop, _ := automed.OpenCSVDir("Shop", "testdata/shop")
//	sys, _ := automed.New(lib, shop)
//	sys.Federate("F")
//	sys.Intersect("I1", []automed.Mapping{
//	    automed.Entity("<<UBook>>",
//	        automed.From("Library", "[{'LIB', k} | k <- <<books>>]"),
//	        automed.From("Shop", "[{'SHOP', k} | k <- <<items>>]"),
//	    ),
//	})
//	res, _ := sys.Query("count(<<UBook>>)")
package automed

import (
	"context"
	"io"

	"github.com/dataspace/automed/internal/core"
	"github.com/dataspace/automed/internal/hdm"
	"github.com/dataspace/automed/internal/iql"
	"github.com/dataspace/automed/internal/match"
	"github.com/dataspace/automed/internal/query"
	"github.com/dataspace/automed/internal/repo"
	"github.com/dataspace/automed/internal/wrapper"
)

// Re-exported workflow types. These are aliases so that values returned
// by the System interoperate with the underlying packages.
type (
	// Mapping is one row group of an intersection's mappings table.
	Mapping = core.Mapping
	// SourceQuery is a per-source forward derivation.
	SourceQuery = core.SourceQuery
	// ReverseQuery is an explicit reverse (delete-direction) mapping.
	ReverseQuery = core.ReverseQuery
	// Intersection describes a created intersection schema.
	Intersection = core.Intersection
	// Iteration is one recorded workflow step.
	Iteration = core.Iteration
	// Report summarises a session's iterations and effort.
	Report = core.Report
	// StepCounts tallies manual and automatic transformations.
	StepCounts = core.StepCounts
	// Result is a query answer plus incompleteness warnings.
	Result = core.Result
	// SchemaVersion pairs a published global schema with its version.
	SchemaVersion = core.SchemaVersion
	// Schema is a set of schema objects.
	Schema = hdm.Schema
	// Scheme identifies a schema object.
	Scheme = hdm.Scheme
	// Value is an IQL runtime value.
	Value = iql.Value
	// Wrapper exposes a data source as schema plus extents.
	Wrapper = wrapper.Wrapper
	// Correspondence is a schema-matcher suggestion.
	Correspondence = match.Correspondence
)

// Entity builds an entity (nodal) mapping.
func Entity(target string, forward ...SourceQuery) Mapping {
	return core.Entity(target, forward...)
}

// Attribute builds an attribute (link) mapping.
func Attribute(target string, forward ...SourceQuery) Mapping {
	return core.Attribute(target, forward...)
}

// From builds a forward derivation over the named source.
func From(source, iqlQuery string) SourceQuery { return core.From(source, iqlQuery) }

// Derived builds a forward derivation over already-integrated objects.
func Derived(iqlQuery string) SourceQuery { return core.Derived(iqlQuery) }

// ParseScheme parses "<<a, b>>" or "a, b".
func ParseScheme(s string) (Scheme, error) { return hdm.ParseScheme(s) }

// ParseIQL parses IQL source text (for validation and tooling).
func ParseIQL(src string) (iql.Expr, error) { return iql.Parse(src) }

// FormatIQL normalises IQL source text.
func FormatIQL(src string) (string, error) { return iql.FormatQuery(src) }

// System is the facade over an intersection-schema integration session.
type System struct {
	ig *core.Integrator
}

// New builds a system over wrapped data sources.
func New(sources ...Wrapper) (*System, error) {
	ig, err := core.New(sources...)
	if err != nil {
		return nil, err
	}
	return &System{ig: ig}, nil
}

// OpenCSVDir wraps a directory of typed-header CSV files as a source.
func OpenCSVDir(name, dir string) (Wrapper, error) {
	return wrapper.NewCSVDir(name, dir)
}

// OpenXML wraps an XML document as a source.
func OpenXML(name string, r io.Reader) (Wrapper, error) {
	return wrapper.NewXML(name, r)
}

// SQLConfig and RESTConfig configure the remote-backend wrappers.
type (
	SQLConfig  = wrapper.SQLConfig
	RESTConfig = wrapper.RESTConfig
)

// OpenSQL wraps a live relational database reached through
// database/sql: the schema is introspected from the backend's catalog
// and extents are streamed on demand. The configured driver must be
// compiled into the binary.
func OpenSQL(name string, cfg SQLConfig) (Wrapper, error) {
	return wrapper.NewSQL(name, cfg)
}

// OpenSQLContext is OpenSQL under a caller-supplied context: the
// catalog introspection aborts as soon as ctx is cancelled instead of
// running out the full introspection timeout.
func OpenSQLContext(ctx context.Context, name string, cfg SQLConfig) (Wrapper, error) {
	return wrapper.NewSQLContext(ctx, name, cfg)
}

// OpenREST wraps a JSON-over-HTTP endpoint serving arrays of flat
// records as a source; collections are discovered from the endpoint
// root unless declared.
func OpenREST(name string, cfg RESTConfig) (Wrapper, error) {
	return wrapper.NewREST(name, cfg)
}

// OpenRESTContext is OpenREST under a caller-supplied context: the
// collection-discovery and field-inference fetches abort as soon as
// ctx is cancelled instead of running out the full fetch timeout.
func OpenRESTContext(ctx context.Context, name string, cfg RESTConfig) (Wrapper, error) {
	return wrapper.NewRESTContext(ctx, name, cfg)
}

// SetAutoDrop controls redundant-object dropping in the automatically
// rebuilt global schemas (workflow step 5's optional election).
func (s *System) SetAutoDrop(drop bool) { s.ig.SetAutoDrop(drop) }

// Federate builds the federated schema — the first, zero-effort global
// schema (workflow step 2).
func (s *System) Federate(name string) (*Schema, error) { return s.ig.Federate(name) }

// Intersect creates an intersection schema from a mappings table
// (workflow steps 3-5) and rebuilds the global schema.
func (s *System) Intersect(name string, mappings []Mapping, enables ...string) (*Intersection, error) {
	return s.ig.Intersect(name, mappings, enables...)
}

// Refine applies an ad-hoc single-schema transformation (paper
// footnote 8).
func (s *System) Refine(name string, m Mapping, enables ...string) error {
	return s.ig.Refine(name, m, enables...)
}

// BuildGlobal explicitly rebuilds the global schema, optionally
// dropping redundant source objects.
func (s *System) BuildGlobal(dropRedundant bool) (*Schema, error) {
	return s.ig.BuildGlobal(dropRedundant)
}

// Query answers an IQL query over the current global schema (workflow
// step 6).
func (s *System) Query(iqlSrc string) (Result, error) { return s.ig.Query(iqlSrc) }

// QueryCtx is Query with per-request cancellation and timeout.
func (s *System) QueryCtx(ctx context.Context, iqlSrc string) (Result, error) {
	return s.ig.QueryCtx(ctx, iqlSrc)
}

// QueryAt answers an IQL query against a specific live global schema
// version (core.CurrentVersion for the latest).
func (s *System) QueryAt(ctx context.Context, version int, iqlSrc string) (Result, error) {
	return s.ig.QueryAt(ctx, version, iqlSrc)
}

// GlobalVersion returns the current global schema version (0 = the
// federated schema; -1 before Federate).
func (s *System) GlobalVersion() int { return s.ig.GlobalVersion() }

// Versions lists every published global schema version, oldest first.
func (s *System) Versions() []SchemaVersion { return s.ig.Versions() }

// Extent returns the extent of one global schema object.
func (s *System) Extent(scheme string) (Value, error) { return s.ig.Extent(scheme) }

// Global returns the current global schema.
func (s *System) Global() *Schema { return s.ig.Global() }

// Federated returns the federated schema.
func (s *System) Federated() *Schema { return s.ig.Federated() }

// Report summarises the session.
func (s *System) Report() Report { return s.ig.Report() }

// Intersections lists the intersections created so far.
func (s *System) Intersections() []*Intersection { return s.ig.Intersections() }

// Suggest runs the schema matcher between two of the system's sources
// and returns ranked correspondence suggestions to seed a mappings
// table (paper workflow step 4).
func (s *System) Suggest(sourceA, sourceB string, minScore float64) []Correspondence {
	wa, wb := s.sourceByName(sourceA), s.sourceByName(sourceB)
	if wa == nil || wb == nil {
		return nil
	}
	m := match.New(match.DefaultConfig())
	return m.Best(wa.Schema(), wb.Schema(),
		extentsOf(wa), extentsOf(wb), minScore)
}

func (s *System) sourceByName(name string) Wrapper {
	for _, w := range s.sources() {
		if w.SchemaName() == name {
			return w
		}
	}
	return nil
}

// sources reconstructs the wrapper list from the integrator.
func (s *System) sources() []Wrapper { return s.ig.Sources() }

func extentsOf(w Wrapper) match.ExtentSource {
	return extentFunc(func(parts []string) (iql.Value, error) { return w.Extent(parts) })
}

type extentFunc func(parts []string) (iql.Value, error)

func (f extentFunc) Extent(parts []string) (iql.Value, error) { return f(parts) }

// Repo exposes the underlying schemas & transformations repository.
func (s *System) Repo() *repo.Repository { return s.ig.Repo() }

// Processor exposes the underlying query processor.
func (s *System) Processor() *query.Processor { return s.ig.Processor() }

// ReverseProcessor materialises the global schema and answers
// source-schema queries from it via reversed pathways (the BAV/LAV
// direction).
func (s *System) ReverseProcessor() (*query.Processor, error) {
	return s.ig.ReverseProcessor()
}

// SaveRepo writes the repository (schemas and pathways) as JSON.
func (s *System) SaveRepo(w io.Writer) error { return s.ig.Repo().Save(w) }
