// Package model implements the Model Definitions Repository (MDR): the
// registry through which higher-level modelling languages (relational,
// CSV, XML, …) are defined in terms of the HDM, following Boyd et al.'s
// AutoMed repository design referenced by the paper.
//
// A ConstructDef states how a scheme of a given construct kind expands
// into HDM nodes, edges and constraints. The expansion enables schemas
// from heterogeneous languages to be compared and transformed in one
// common data model.
package model

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/dataspace/automed/internal/hdm"
)

// ConstructDef describes one construct of a modelling language.
type ConstructDef struct {
	// Model and Name identify the construct, e.g. ("sql", "table").
	Model string
	Name  string
	// Kind is the HDM classification of objects of this construct.
	Kind hdm.ObjectKind
	// Arity is the number of scheme parts an object of this construct
	// carries (e.g. 1 for a table <<t>>, 2 for a column <<t, c>>).
	Arity int
	// Expand produces the HDM fragment for an object; nil Expand
	// produces the default fragment for the construct kind.
	Expand func(sc hdm.Scheme, g *hdm.Graph) error
}

// Registry is a thread-safe collection of modelling-language
// definitions.
type Registry struct {
	mu   sync.RWMutex
	defs map[string]ConstructDef // key model + "\x00" + name
}

// NewRegistry returns a registry pre-populated with the built-in
// modelling languages: sql (table, column, pkey, fkey), csv (file,
// field) and xml (element, attribute, text, nest).
func NewRegistry() *Registry {
	r := &Registry{defs: make(map[string]ConstructDef)}
	r.mustDefine(ConstructDef{Model: "sql", Name: "table", Kind: hdm.Nodal, Arity: 1})
	r.mustDefine(ConstructDef{Model: "sql", Name: "column", Kind: hdm.Link, Arity: 2})
	r.mustDefine(ConstructDef{Model: "sql", Name: "pkey", Kind: hdm.ConstraintObj, Arity: 2})
	r.mustDefine(ConstructDef{Model: "sql", Name: "fkey", Kind: hdm.ConstraintObj, Arity: 3})
	r.mustDefine(ConstructDef{Model: "csv", Name: "file", Kind: hdm.Nodal, Arity: 1})
	r.mustDefine(ConstructDef{Model: "csv", Name: "field", Kind: hdm.Link, Arity: 2})
	r.mustDefine(ConstructDef{Model: "xml", Name: "element", Kind: hdm.Nodal, Arity: 1})
	r.mustDefine(ConstructDef{Model: "xml", Name: "attribute", Kind: hdm.Link, Arity: 2})
	r.mustDefine(ConstructDef{Model: "xml", Name: "text", Kind: hdm.Link, Arity: 1})
	r.mustDefine(ConstructDef{Model: "xml", Name: "nest", Kind: hdm.Link, Arity: 2})
	return r
}

func key(model, name string) string { return model + "\x00" + name }

// Define registers a construct definition.
func (r *Registry) Define(d ConstructDef) error {
	if d.Model == "" || d.Name == "" {
		return fmt.Errorf("model: construct needs model and name")
	}
	if d.Arity < 1 {
		return fmt.Errorf("model: construct %s/%s needs arity >= 1", d.Model, d.Name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	k := key(d.Model, d.Name)
	if _, dup := r.defs[k]; dup {
		return fmt.Errorf("model: construct %s/%s already defined", d.Model, d.Name)
	}
	r.defs[k] = d
	return nil
}

func (r *Registry) mustDefine(d ConstructDef) {
	if err := r.Define(d); err != nil {
		panic(err)
	}
}

// Lookup finds a construct definition.
func (r *Registry) Lookup(model, name string) (ConstructDef, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	d, ok := r.defs[key(model, name)]
	return d, ok
}

// Models returns the registered modelling-language names, sorted.
func (r *Registry) Models() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	seen := make(map[string]bool)
	var out []string
	for k := range r.defs {
		m := strings.SplitN(k, "\x00", 2)[0]
		if !seen[m] {
			seen[m] = true
			out = append(out, m)
		}
	}
	sort.Strings(out)
	return out
}

// Constructs returns the construct names of a model, sorted.
func (r *Registry) Constructs(model string) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []string
	for k, d := range r.defs {
		if strings.SplitN(k, "\x00", 2)[0] == model {
			out = append(out, d.Name)
		}
	}
	sort.Strings(out)
	return out
}

// ValidateObject checks that an object conforms to its construct
// definition (known construct, matching kind and arity).
func (r *Registry) ValidateObject(o *hdm.Object) error {
	if o.Model == "" || o.Construct == "" {
		return nil // untyped objects (e.g. intersection concepts) are allowed
	}
	d, ok := r.Lookup(o.Model, o.Construct)
	if !ok {
		return fmt.Errorf("model: unknown construct %s/%s for %s", o.Model, o.Construct, o.Scheme)
	}
	if o.Kind != d.Kind {
		return fmt.Errorf("model: %s should be %s, is %s", o.Scheme, d.Kind, o.Kind)
	}
	if o.Scheme.Arity() != d.Arity {
		return fmt.Errorf("model: %s should have arity %d, has %d", o.Scheme, d.Arity, o.Scheme.Arity())
	}
	return nil
}

// ValidateSchema validates every object of a schema against the
// registry.
func (r *Registry) ValidateSchema(s *hdm.Schema) error {
	for _, o := range s.Objects() {
		if err := r.ValidateObject(o); err != nil {
			return fmt.Errorf("model: schema %q: %w", s.Name(), err)
		}
	}
	return nil
}

// ExpandSchema produces the HDM hypergraph for a schema by expanding
// each object per its construct definition. Objects without a model are
// expanded as bare nodes (nodal) or edges from their parent (link).
func (r *Registry) ExpandSchema(s *hdm.Schema) (*hdm.Graph, error) {
	g := hdm.NewGraph()
	// Two passes: nodal objects first so links can reference them.
	for _, o := range s.Objects() {
		if o.Kind != hdm.Nodal {
			continue
		}
		if err := r.expandObject(o, g); err != nil {
			return nil, err
		}
	}
	for _, o := range s.Objects() {
		if o.Kind == hdm.Nodal {
			continue
		}
		if err := r.expandObject(o, g); err != nil {
			return nil, err
		}
	}
	return g, nil
}

func (r *Registry) expandObject(o *hdm.Object, g *hdm.Graph) error {
	if o.Model != "" && o.Construct != "" {
		if d, ok := r.Lookup(o.Model, o.Construct); ok && d.Expand != nil {
			return d.Expand(o.Scheme, g)
		}
	}
	return defaultExpand(o, g)
}

// defaultExpand implements the standard HDM encodings:
//   - nodal <<x>>           → node x
//   - link  <<x, y>>        → node x:y plus edge x--x:y
//   - constraint <<x, …>>   → constraint over x
func defaultExpand(o *hdm.Object, g *hdm.Graph) error {
	name := strings.Join(o.Scheme.Parts(), ":")
	switch o.Kind {
	case hdm.Nodal:
		return g.AddNode(name)
	case hdm.Link:
		parent := o.Scheme.First()
		if !g.HasNode(parent) {
			if err := g.AddNode(parent); err != nil {
				return err
			}
		}
		if !g.HasNode(name) {
			if err := g.AddNode(name); err != nil {
				return err
			}
		}
		return g.AddEdge("e:"+name, parent, name)
	case hdm.ConstraintObj:
		return g.AddConstraint("c:"+name, o.Scheme.String())
	}
	return fmt.Errorf("model: unknown object kind %v", o.Kind)
}
