package model

import (
	"testing"

	"github.com/dataspace/automed/internal/hdm"
)

func TestBuiltinConstructs(t *testing.T) {
	r := NewRegistry()
	models := r.Models()
	want := []string{"csv", "sql", "xml"}
	if len(models) != len(want) {
		t.Fatalf("Models = %v", models)
	}
	for i := range want {
		if models[i] != want[i] {
			t.Errorf("Models[%d] = %q, want %q", i, models[i], want[i])
		}
	}
	if cs := r.Constructs("sql"); len(cs) != 4 {
		t.Errorf("sql constructs = %v", cs)
	}
	d, ok := r.Lookup("sql", "column")
	if !ok || d.Kind != hdm.Link || d.Arity != 2 {
		t.Errorf("sql/column = %+v", d)
	}
	if _, ok := r.Lookup("sql", "bogus"); ok {
		t.Error("bogus construct found")
	}
}

func TestDefineValidation(t *testing.T) {
	r := NewRegistry()
	if err := r.Define(ConstructDef{Model: "", Name: "x", Arity: 1}); err == nil {
		t.Error("empty model accepted")
	}
	if err := r.Define(ConstructDef{Model: "m", Name: "x", Arity: 0}); err == nil {
		t.Error("zero arity accepted")
	}
	if err := r.Define(ConstructDef{Model: "sql", Name: "table", Arity: 1}); err == nil {
		t.Error("duplicate construct accepted")
	}
	if err := r.Define(ConstructDef{Model: "rdf", Name: "triple", Kind: hdm.Link, Arity: 3}); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Lookup("rdf", "triple"); !ok {
		t.Error("new construct not found")
	}
}

func TestValidateObject(t *testing.T) {
	r := NewRegistry()
	good := hdm.NewObject(hdm.MustScheme("<<t>>"), hdm.Nodal, "sql", "table")
	if err := r.ValidateObject(good); err != nil {
		t.Errorf("valid object rejected: %v", err)
	}
	// Wrong kind.
	bad := hdm.NewObject(hdm.MustScheme("<<t>>"), hdm.Link, "sql", "table")
	if err := r.ValidateObject(bad); err == nil {
		t.Error("wrong kind accepted")
	}
	// Wrong arity.
	bad2 := hdm.NewObject(hdm.MustScheme("<<t, c>>"), hdm.Nodal, "sql", "table")
	if err := r.ValidateObject(bad2); err == nil {
		t.Error("wrong arity accepted")
	}
	// Unknown construct.
	bad3 := hdm.NewObject(hdm.MustScheme("<<t>>"), hdm.Nodal, "sql", "view")
	if err := r.ValidateObject(bad3); err == nil {
		t.Error("unknown construct accepted")
	}
	// Untyped objects pass (intersection concepts).
	untyped := hdm.NewObject(hdm.MustScheme("<<UProtein>>"), hdm.Nodal, "", "")
	if err := r.ValidateObject(untyped); err != nil {
		t.Errorf("untyped object rejected: %v", err)
	}
}

func TestValidateSchema(t *testing.T) {
	r := NewRegistry()
	s := hdm.NewSchema("S")
	s.MustAdd(hdm.NewObject(hdm.MustScheme("<<t>>"), hdm.Nodal, "sql", "table"))
	s.MustAdd(hdm.NewObject(hdm.MustScheme("<<t, c>>"), hdm.Link, "sql", "column"))
	if err := r.ValidateSchema(s); err != nil {
		t.Errorf("valid schema rejected: %v", err)
	}
	s.MustAdd(hdm.NewObject(hdm.MustScheme("<<x>>"), hdm.Nodal, "sql", "nope"))
	if err := r.ValidateSchema(s); err == nil {
		t.Error("invalid schema accepted")
	}
}

func TestExpandSchema(t *testing.T) {
	r := NewRegistry()
	s := hdm.NewSchema("S")
	s.MustAdd(hdm.NewObject(hdm.MustScheme("<<protein>>"), hdm.Nodal, "sql", "table"))
	s.MustAdd(hdm.NewObject(hdm.MustScheme("<<protein, acc>>"), hdm.Link, "sql", "column"))
	s.MustAdd(hdm.NewObject(hdm.MustScheme("<<protein, acc, pk>>"), hdm.ConstraintObj, "", ""))
	g, err := r.ExpandSchema(s)
	if err != nil {
		t.Fatal(err)
	}
	// Table → node; column → value node + edge; constraint → constraint.
	if !g.HasNode("protein") {
		t.Error("table node missing")
	}
	if !g.HasNode("protein:acc") {
		t.Error("column value node missing")
	}
	if !g.HasEdge("e:protein:acc") {
		t.Error("column edge missing")
	}
	if !g.HasConstraint("c:protein:acc:pk") {
		t.Error("constraint missing")
	}
	n, e, c := g.Size()
	if n != 2 || e != 1 || c != 1 {
		t.Errorf("Size = %d %d %d", n, e, c)
	}
}

func TestExpandCustom(t *testing.T) {
	r := NewRegistry()
	called := false
	err := r.Define(ConstructDef{
		Model: "m", Name: "thing", Kind: hdm.Nodal, Arity: 1,
		Expand: func(sc hdm.Scheme, g *hdm.Graph) error {
			called = true
			return g.AddNode("custom:" + sc.First())
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := hdm.NewSchema("S")
	s.MustAdd(hdm.NewObject(hdm.MustScheme("<<z>>"), hdm.Nodal, "m", "thing"))
	g, err := r.ExpandSchema(s)
	if err != nil {
		t.Fatal(err)
	}
	if !called || !g.HasNode("custom:z") {
		t.Error("custom expansion not applied")
	}
}
