package repo

import (
	"bytes"
	"strings"
	"testing"

	"github.com/dataspace/automed/internal/hdm"
	"github.com/dataspace/automed/internal/iql"
	"github.com/dataspace/automed/internal/transform"
)

// fuzzSeedRepo builds a small but feature-complete repository (every
// step kind that Save emits) whose serialisation seeds the fuzzer with
// a structurally valid snapshot to mutate.
func fuzzSeedRepo() *Repository {
	r := New()
	a := hdm.NewSchema("A")
	a.MustAdd(hdm.NewObject(hdm.MustScheme("<<x>>"), hdm.Nodal, "sql", "table"))
	a.MustAdd(hdm.NewObject(hdm.MustScheme("<<x, c>>"), hdm.Link, "sql", "column"))
	b := hdm.NewSchema("B")
	b.MustAdd(hdm.NewObject(hdm.MustScheme("<<y>>"), hdm.Nodal, "", ""))
	if err := r.AddSchema(a); err != nil {
		panic(err)
	}
	if err := r.AddSchema(b); err != nil {
		panic(err)
	}
	p := transform.NewPathway("A", "B",
		transform.NewAdd(hdm.MustScheme("<<y>>"), iql.MustParse("[k | k <- <<x>>]"), hdm.Nodal, "", "").WithAuto(),
		transform.NewExtend(hdm.MustScheme("<<z>>"), iql.MustParse("Void"), iql.MustParse("Any"), hdm.Nodal, "", ""),
		transform.NewRename(hdm.MustScheme("<<x, c>>"), hdm.MustScheme("<<x, c2>>")),
		transform.NewDelete(hdm.MustScheme("<<x>>"), iql.MustParse("[k | k <- <<y>>]")),
		transform.NewContract(hdm.MustScheme("<<x, c2>>"), nil, nil),
	)
	if err := r.AddPathway(p, false); err != nil {
		panic(err)
	}
	return r
}

// FuzzRepoLoad asserts repo.Load never panics on malformed snapshots —
// it must either error or produce a repository that round-trips
// through Save again. The seed corpus covers the malformed-JSON
// classes a corrupted or hand-edited snapshot file exhibits.
func FuzzRepoLoad(f *testing.F) {
	var valid bytes.Buffer
	if err := fuzzSeedRepo().Save(&valid); err != nil {
		f.Fatal(err)
	}
	seeds := []string{
		valid.String(),
		"",
		"null",
		"{}",
		"[]",
		`{"version":1}`,
		`{"version":99,"schemas":[]}`,
		`{"version":1,"schemas":[{"name":"","objects":[{"scheme":"<<x>>","kind":"nodal"}]}]}`,
		`{"version":1,"schemas":[{"name":"A","objects":[{"scheme":"<<","kind":"nodal"}]}]}`,
		`{"version":1,"schemas":[{"name":"A","objects":[{"scheme":"<<x>>","kind":"wat"}]}]}`,
		`{"version":1,"schemas":[{"name":"A","objects":[{"scheme":"<<x>>","kind":"nodal"},{"scheme":"<<x>>","kind":"nodal"}]}]}`,
		`{"version":1,"schemas":[{"name":"A","objects":[]},{"name":"A","objects":[]}]}`,
		`{"version":1,"pathways":[{"source":"A","target":"B","steps":[]}]}`,
		`{"version":1,"schemas":[{"name":"A","objects":[]}],"pathways":[{"source":"A","target":"A","steps":[{"kind":"add","object":"<<y>>"}]}]}`,
		`{"version":1,"schemas":[{"name":"A","objects":[]}],"pathways":[{"source":"A","target":"A","steps":[{"kind":"warp","object":"<<y>>"}]}]}`,
		`{"version":1,"schemas":[{"name":"A","objects":[]}],"pathways":[{"source":"A","target":"A","steps":[{"kind":"add","object":"<<y>>","query":"[ | <-"}]}]}`,
		`{"version":1,"schemas":[{"name":"A","objects":[]}],"pathways":[{"source":"A","target":"A","steps":[{"kind":"rename","object":"<<y>>","to":"<<"}]}]}`,
		`{"version":1,"schemas":` + strings.Repeat("[", 1000) + strings.Repeat("]", 1000) + `}`,
		"\x00\x01\x02",
		`{"version":1e309}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything Load accepts must save again cleanly.
		var out bytes.Buffer
		if err := r.Save(&out); err != nil {
			t.Fatalf("loaded repository does not re-save: %v", err)
		}
		if _, err := Load(&out); err != nil {
			t.Fatalf("re-saved repository does not re-load: %v", err)
		}
	})
}
