package repo

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"github.com/dataspace/automed/internal/fsatomic"
	"github.com/dataspace/automed/internal/hdm"
	"github.com/dataspace/automed/internal/iql"
	"github.com/dataspace/automed/internal/transform"
)

// JSON persistence for the repository. Schemes serialise to their
// textual form and queries to IQL source, so saved repositories are
// human-readable and diffable.

type objectDTO struct {
	Scheme    string `json:"scheme"`
	Kind      string `json:"kind"`
	Model     string `json:"model,omitempty"`
	Construct string `json:"construct,omitempty"`
}

type schemaDTO struct {
	Name    string      `json:"name"`
	Objects []objectDTO `json:"objects"`
}

type stepDTO struct {
	Kind      string `json:"kind"`
	Object    string `json:"object"`
	Query     string `json:"query,omitempty"`
	To        string `json:"to,omitempty"`
	ObjKind   string `json:"objKind,omitempty"`
	Model     string `json:"model,omitempty"`
	Construct string `json:"construct,omitempty"`
	Auto      bool   `json:"auto,omitempty"`
}

type pathwayDTO struct {
	Source string    `json:"source"`
	Target string    `json:"target"`
	Steps  []stepDTO `json:"steps"`
}

type repoDTO struct {
	Version  int          `json:"version"`
	Schemas  []schemaDTO  `json:"schemas"`
	Pathways []pathwayDTO `json:"pathways"`
}

const persistVersion = 1

// Save writes the repository as JSON.
func (r *Repository) Save(w io.Writer) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	dto := repoDTO{Version: persistVersion}
	for _, name := range r.schemaNamesLocked() {
		s := r.schemas[name]
		sd := schemaDTO{Name: s.Name()}
		for _, o := range s.Objects() {
			sd.Objects = append(sd.Objects, objectDTO{
				Scheme:    o.Scheme.String(),
				Kind:      o.Kind.String(),
				Model:     o.Model,
				Construct: o.Construct,
			})
		}
		dto.Schemas = append(dto.Schemas, sd)
	}
	for _, p := range r.pathways {
		pd := pathwayDTO{Source: p.Source, Target: p.Target}
		for _, t := range p.Steps {
			sd := stepDTO{
				Kind:   t.Kind.String(),
				Object: t.Object.String(),
				Auto:   t.Auto,
			}
			if t.Query != nil {
				sd.Query = t.Query.String()
			}
			if !t.To.IsZero() {
				sd.To = t.To.String()
			}
			if t.Kind == transform.Add || t.Kind == transform.Extend {
				sd.ObjKind = t.ObjKind.String()
				sd.Model = t.Model
				sd.Construct = t.Construct
			}
			pd.Steps = append(pd.Steps, sd)
		}
		dto.Pathways = append(dto.Pathways, pd)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(dto)
}

func (r *Repository) schemaNamesLocked() []string {
	out := make([]string, 0, len(r.schemas))
	for n := range r.schemas {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Load reads a repository previously written by Save.
func Load(rd io.Reader) (*Repository, error) {
	var dto repoDTO
	dec := json.NewDecoder(rd)
	if err := dec.Decode(&dto); err != nil {
		return nil, fmt.Errorf("repo: decoding: %w", err)
	}
	if dto.Version != persistVersion {
		return nil, fmt.Errorf("repo: unsupported version %d", dto.Version)
	}
	r := New()
	for _, sd := range dto.Schemas {
		s := hdm.NewSchema(sd.Name)
		for _, od := range sd.Objects {
			sc, err := hdm.ParseScheme(od.Scheme)
			if err != nil {
				return nil, fmt.Errorf("repo: schema %q: %w", sd.Name, err)
			}
			kind, err := hdm.ParseObjectKind(od.Kind)
			if err != nil {
				return nil, fmt.Errorf("repo: schema %q: %w", sd.Name, err)
			}
			if err := s.Add(hdm.NewObject(sc, kind, od.Model, od.Construct)); err != nil {
				return nil, err
			}
		}
		if err := r.AddSchema(s); err != nil {
			return nil, err
		}
	}
	for _, pd := range dto.Pathways {
		p := transform.NewPathway(pd.Source, pd.Target)
		for i, sd := range pd.Steps {
			t, err := decodeStep(sd)
			if err != nil {
				return nil, fmt.Errorf("repo: pathway %s->%s step %d: %w", pd.Source, pd.Target, i+1, err)
			}
			p.Append(t)
		}
		if err := r.AddPathway(p, false); err != nil {
			return nil, err
		}
	}
	return r, nil
}

func decodeStep(sd stepDTO) (transform.Transformation, error) {
	var t transform.Transformation
	kind, err := transform.ParseKind(sd.Kind)
	if err != nil {
		return t, err
	}
	t.Kind = kind
	t.Object, err = hdm.ParseScheme(sd.Object)
	if err != nil {
		return t, err
	}
	if sd.Query != "" {
		t.Query, err = iql.Parse(sd.Query)
		if err != nil {
			return t, err
		}
	}
	if sd.To != "" {
		t.To, err = hdm.ParseScheme(sd.To)
		if err != nil {
			return t, err
		}
	}
	if sd.ObjKind != "" {
		t.ObjKind, err = hdm.ParseObjectKind(sd.ObjKind)
		if err != nil {
			return t, err
		}
	}
	t.Model = sd.Model
	t.Construct = sd.Construct
	t.Auto = sd.Auto
	return t, t.Validate()
}

// SaveFile writes the repository to a file path atomically (temp file
// + fsync + rename), so a crash mid-write can never truncate an
// existing snapshot.
func (r *Repository) SaveFile(path string) error {
	if err := fsatomic.WriteFile(path, r.Save); err != nil {
		return fmt.Errorf("repo: %w", err)
	}
	return nil
}

// LoadFile reads a repository from a file path.
func LoadFile(path string) (*Repository, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("repo: %w", err)
	}
	defer f.Close()
	return Load(f)
}
