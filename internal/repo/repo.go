// Package repo implements the Schemas & Transformations Repository
// (STR): the store of all source, intermediate and integrated schemas
// and the pathways between them (paper §2.1), together with the Model
// Definitions Repository it is paired with.
package repo

import (
	"fmt"
	"sort"
	"sync"

	"github.com/dataspace/automed/internal/hdm"
	"github.com/dataspace/automed/internal/model"
	"github.com/dataspace/automed/internal/transform"
)

// Repository stores schemas and pathways. It is safe for concurrent
// use.
type Repository struct {
	mu       sync.RWMutex
	schemas  map[string]*hdm.Schema
	pathways []*transform.Pathway
	models   *model.Registry
}

// New returns an empty repository with the built-in model registry.
func New() *Repository {
	return &Repository{
		schemas: make(map[string]*hdm.Schema),
		models:  model.NewRegistry(),
	}
}

// Models returns the repository's model definitions registry.
func (r *Repository) Models() *model.Registry { return r.models }

// AddSchema stores a schema; duplicate names are an error.
func (r *Repository) AddSchema(s *hdm.Schema) error {
	if s == nil {
		return fmt.Errorf("repo: nil schema")
	}
	if s.Name() == "" {
		return fmt.Errorf("repo: schema has no name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.schemas[s.Name()]; dup {
		return fmt.Errorf("repo: schema %q already stored", s.Name())
	}
	r.schemas[s.Name()] = s
	return nil
}

// ReplaceSchema stores a schema, overwriting any previous schema of the
// same name (used when a global schema is rebuilt each iteration).
func (r *Repository) ReplaceSchema(s *hdm.Schema) error {
	if s == nil || s.Name() == "" {
		return fmt.Errorf("repo: invalid schema")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.schemas[s.Name()] = s
	return nil
}

// RemoveSchema deletes a schema; pathways touching it are also removed.
func (r *Repository) RemoveSchema(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.schemas[name]; !ok {
		return fmt.Errorf("repo: no schema %q", name)
	}
	delete(r.schemas, name)
	kept := r.pathways[:0]
	for _, p := range r.pathways {
		if p.Source != name && p.Target != name {
			kept = append(kept, p)
		}
	}
	r.pathways = kept
	return nil
}

// Schema returns the named schema.
func (r *Repository) Schema(name string) (*hdm.Schema, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.schemas[name]
	return s, ok
}

// SchemaNames returns stored schema names, sorted.
func (r *Repository) SchemaNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.schemas))
	for n := range r.schemas {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// AddPathway stores a pathway. Both endpoint schemas must exist; when
// check is true, applying the pathway to the source must reproduce the
// stored target schema exactly.
func (r *Repository) AddPathway(p *transform.Pathway, check bool) error {
	if p == nil {
		return fmt.Errorf("repo: nil pathway")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	src, ok := r.schemas[p.Source]
	if !ok {
		return fmt.Errorf("repo: pathway source %q not stored", p.Source)
	}
	tgt, ok := r.schemas[p.Target]
	if !ok {
		return fmt.Errorf("repo: pathway target %q not stored", p.Target)
	}
	if check {
		derived, err := transform.ApplyPathway(src, p, false)
		if err != nil {
			return fmt.Errorf("repo: pathway %s->%s does not apply: %w", p.Source, p.Target, err)
		}
		if !hdm.Identical(derived, tgt) {
			da, db := hdm.Diff(derived, tgt)
			return fmt.Errorf("repo: pathway %s->%s yields wrong schema (derived-only: %v, stored-only: %v)",
				p.Source, p.Target, da, db)
		}
	}
	r.pathways = append(r.pathways, p)
	return nil
}

// Pathways returns all stored pathways.
func (r *Repository) Pathways() []*transform.Pathway {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]*transform.Pathway(nil), r.pathways...)
}

// PathwaysFrom returns pathways whose source is the named schema.
func (r *Repository) PathwaysFrom(name string) []*transform.Pathway {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []*transform.Pathway
	for _, p := range r.pathways {
		if p.Source == name {
			out = append(out, p)
		}
	}
	return out
}

// PathwaysInto returns pathways whose target is the named schema.
func (r *Repository) PathwaysInto(name string) []*transform.Pathway {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []*transform.Pathway
	for _, p := range r.pathways {
		if p.Target == name {
			out = append(out, p)
		}
	}
	return out
}

// FindPath searches for a pathway from one schema to another, composing
// stored pathways and their automatic reverses (BAV reversibility) via
// breadth-first search. The composed pathway is returned.
func (r *Repository) FindPath(from, to string) (*transform.Pathway, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if _, ok := r.schemas[from]; !ok {
		return nil, fmt.Errorf("repo: no schema %q", from)
	}
	if _, ok := r.schemas[to]; !ok {
		return nil, fmt.Errorf("repo: no schema %q", to)
	}
	if from == to {
		return transform.NewPathway(from, to), nil
	}
	type hop struct {
		prev *hop
		pw   *transform.Pathway // oriented from prev's schema
		at   string
	}
	visited := map[string]bool{from: true}
	queue := []*hop{{at: from}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, p := range r.pathways {
			var next string
			var oriented *transform.Pathway
			switch cur.at {
			case p.Source:
				next, oriented = p.Target, p
			case p.Target:
				next, oriented = p.Source, p.Reverse()
			default:
				continue
			}
			if visited[next] {
				continue
			}
			visited[next] = true
			h := &hop{prev: cur, pw: oriented, at: next}
			if next == to {
				// Rebuild the chain and concatenate.
				var chain []*transform.Pathway
				for x := h; x.pw != nil; x = x.prev {
					chain = append([]*transform.Pathway{x.pw}, chain...)
				}
				out := chain[0]
				for _, seg := range chain[1:] {
					var err error
					out, err = out.Concat(seg)
					if err != nil {
						return nil, err
					}
				}
				return out, nil
			}
			queue = append(queue, h)
		}
	}
	return nil, fmt.Errorf("repo: no pathway between %q and %q", from, to)
}

// Stats summarises the repository contents.
func (r *Repository) Stats() string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	steps := 0
	for _, p := range r.pathways {
		steps += p.Len()
	}
	return fmt.Sprintf("%d schemas, %d pathways, %d transformation steps",
		len(r.schemas), len(r.pathways), steps)
}
