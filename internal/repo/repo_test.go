package repo

import (
	"bytes"
	"os"
	"testing"

	"github.com/dataspace/automed/internal/hdm"
	"github.com/dataspace/automed/internal/iql"
	"github.com/dataspace/automed/internal/transform"
)

func schemaWith(name string, schemes ...string) *hdm.Schema {
	s := hdm.NewSchema(name)
	for _, sc := range schemes {
		s.MustAdd(hdm.NewObject(hdm.MustScheme(sc), hdm.Nodal, "sql", "table"))
	}
	return s
}

func TestAddSchema(t *testing.T) {
	r := New()
	if err := r.AddSchema(schemaWith("A", "<<x>>")); err != nil {
		t.Fatal(err)
	}
	if err := r.AddSchema(schemaWith("A")); err == nil {
		t.Error("duplicate schema accepted")
	}
	if err := r.AddSchema(nil); err == nil {
		t.Error("nil schema accepted")
	}
	if err := r.AddSchema(hdm.NewSchema("")); err == nil {
		t.Error("unnamed schema accepted")
	}
	if got := r.SchemaNames(); len(got) != 1 || got[0] != "A" {
		t.Errorf("SchemaNames = %v", got)
	}
	if _, ok := r.Schema("A"); !ok {
		t.Error("Schema lookup failed")
	}
}

func TestReplaceAndRemoveSchema(t *testing.T) {
	r := New()
	if err := r.AddSchema(schemaWith("A", "<<x>>")); err != nil {
		t.Fatal(err)
	}
	if err := r.ReplaceSchema(schemaWith("A", "<<y>>")); err != nil {
		t.Fatal(err)
	}
	s, _ := r.Schema("A")
	if !s.Has(hdm.MustScheme("<<y>>")) {
		t.Error("ReplaceSchema did not replace")
	}
	if err := r.RemoveSchema("A"); err != nil {
		t.Fatal(err)
	}
	if err := r.RemoveSchema("A"); err == nil {
		t.Error("double remove accepted")
	}
}

func pathwayAB() *transform.Pathway {
	return transform.NewPathway("A", "B",
		transform.NewAdd(hdm.MustScheme("<<y>>"), iql.MustParse("[k | k <- <<x>>]"), hdm.Nodal, "sql", "table"),
		transform.NewDelete(hdm.MustScheme("<<x>>"), iql.MustParse("[k | k <- <<y>>]")),
	)
}

func TestAddPathwayChecked(t *testing.T) {
	r := New()
	if err := r.AddSchema(schemaWith("A", "<<x>>")); err != nil {
		t.Fatal(err)
	}
	if err := r.AddSchema(schemaWith("B", "<<y>>")); err != nil {
		t.Fatal(err)
	}
	if err := r.AddPathway(pathwayAB(), true); err != nil {
		t.Fatalf("checked pathway rejected: %v", err)
	}
	// A pathway that does not reproduce the stored target fails check.
	bad := transform.NewPathway("A", "B",
		transform.NewAdd(hdm.MustScheme("<<z>>"), iql.MustParse("<<x>>"), hdm.Nodal, "sql", "table"))
	if err := r.AddPathway(bad, true); err == nil {
		t.Error("wrong pathway passed check")
	}
	// Pathways referencing unknown schemas fail.
	if err := r.AddPathway(transform.NewPathway("A", "Z"), false); err == nil {
		t.Error("pathway to unknown schema accepted")
	}
}

func TestRemoveSchemaDropsPathways(t *testing.T) {
	r := New()
	r.AddSchema(schemaWith("A", "<<x>>"))
	r.AddSchema(schemaWith("B", "<<y>>"))
	if err := r.AddPathway(pathwayAB(), false); err != nil {
		t.Fatal(err)
	}
	if err := r.RemoveSchema("B"); err != nil {
		t.Fatal(err)
	}
	if len(r.Pathways()) != 0 {
		t.Error("pathways not dropped with schema")
	}
}

func TestFindPathComposesAndReverses(t *testing.T) {
	r := New()
	r.AddSchema(schemaWith("A", "<<x>>"))
	r.AddSchema(schemaWith("B", "<<y>>"))
	r.AddSchema(schemaWith("C", "<<z>>"))
	if err := r.AddPathway(pathwayAB(), false); err != nil {
		t.Fatal(err)
	}
	bc := transform.NewPathway("B", "C",
		transform.NewAdd(hdm.MustScheme("<<z>>"), iql.MustParse("[k | k <- <<y>>]"), hdm.Nodal, "sql", "table"),
		transform.NewDelete(hdm.MustScheme("<<y>>"), iql.MustParse("[k | k <- <<z>>]")),
	)
	if err := r.AddPathway(bc, false); err != nil {
		t.Fatal(err)
	}
	// Forward composition A → C.
	p, err := r.FindPath("A", "C")
	if err != nil {
		t.Fatal(err)
	}
	if p.Source != "A" || p.Target != "C" || p.Len() != 4 {
		t.Errorf("FindPath A→C = %s", p)
	}
	// Reverse composition C → A uses automatic reversal.
	p, err = r.FindPath("C", "A")
	if err != nil {
		t.Fatal(err)
	}
	if p.Source != "C" || p.Target != "A" || p.Len() != 4 {
		t.Errorf("FindPath C→A = %s", p)
	}
	if p.Steps[0].Kind != transform.Add {
		t.Errorf("reversed first step = %s", p.Steps[0])
	}
	// Self path is empty.
	p, err = r.FindPath("A", "A")
	if err != nil || p.Len() != 0 {
		t.Errorf("self path = %v %v", p, err)
	}
	// Disconnected.
	r.AddSchema(schemaWith("Z", "<<q>>"))
	if _, err := r.FindPath("A", "Z"); err == nil {
		t.Error("path to disconnected schema found")
	}
	if _, err := r.FindPath("A", "missing"); err == nil {
		t.Error("path to unknown schema found")
	}
}

func TestPathwaysFromInto(t *testing.T) {
	r := New()
	r.AddSchema(schemaWith("A", "<<x>>"))
	r.AddSchema(schemaWith("B", "<<y>>"))
	if err := r.AddPathway(pathwayAB(), false); err != nil {
		t.Fatal(err)
	}
	if len(r.PathwaysFrom("A")) != 1 || len(r.PathwaysInto("B")) != 1 {
		t.Error("PathwaysFrom/Into wrong")
	}
	if len(r.PathwaysFrom("B")) != 0 {
		t.Error("PathwaysFrom(B) should be empty")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	r := New()
	r.AddSchema(schemaWith("A", "<<x>>"))
	r.AddSchema(schemaWith("B", "<<y>>"))
	link := hdm.NewSchema("L")
	link.MustAdd(hdm.NewObject(hdm.MustScheme("<<t, c>>"), hdm.Link, "sql", "column"))
	r.AddSchema(link)
	pw := transform.NewPathway("A", "B",
		transform.NewAdd(hdm.MustScheme("<<y>>"),
			iql.MustParse("[{'S', k} | k <- <<x>>]"), hdm.Nodal, "sql", "table"),
		transform.NewExtend(hdm.MustScheme("<<w>>"),
			&iql.Lit{Val: iql.Void()}, &iql.Lit{Val: iql.Any()}, hdm.Link, "", "").WithAuto(),
		transform.NewRename(hdm.MustScheme("<<x>>"), hdm.MustScheme("<<x2>>")),
		transform.NewID(hdm.MustScheme("<<y>>"), hdm.MustScheme("<<y>>")),
		transform.NewContract(hdm.MustScheme("<<x2>>"), nil, nil).WithAuto(),
	)
	if err := r.AddPathway(pw, false); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := r.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.SchemaNames()) != 3 {
		t.Errorf("schemas lost: %v", back.SchemaNames())
	}
	lb, _ := back.Schema("L")
	obj, _ := lb.Object(hdm.MustScheme("<<t, c>>"))
	if obj == nil || obj.Kind != hdm.Link || obj.Construct != "column" {
		t.Errorf("object metadata lost: %+v", obj)
	}
	ps := back.Pathways()
	if len(ps) != 1 || ps[0].Len() != 5 {
		t.Fatalf("pathways lost: %v", ps)
	}
	for i, s := range ps[0].Steps {
		if s.String() != pw.Steps[i].String() {
			t.Errorf("step %d: %q != %q", i, s.String(), pw.Steps[i].String())
		}
		if s.Auto != pw.Steps[i].Auto {
			t.Errorf("step %d auto flag lost", i)
		}
	}
	// Second round trip is stable.
	var buf2 bytes.Buffer
	if err := back.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Error("persistence not canonical across round trips")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not json"))); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Load(bytes.NewReader([]byte(`{"version": 99}`))); err == nil {
		t.Error("future version accepted")
	}
	if _, err := Load(bytes.NewReader([]byte(
		`{"version":1,"schemas":[{"name":"A","objects":[{"scheme":"<<>>","kind":"nodal"}]}]}`))); err == nil {
		t.Error("bad scheme accepted")
	}
}

func TestSaveLoadFile(t *testing.T) {
	r := New()
	r.AddSchema(schemaWith("A", "<<x>>"))
	path := t.TempDir() + "/repo.json"
	if err := r.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.SchemaNames()) != 1 {
		t.Error("file round trip failed")
	}
	if _, err := LoadFile(path + ".missing"); err == nil {
		t.Error("missing file accepted")
	}
}

// TestSaveFileAtomicOverwrite: overwriting an existing snapshot leaves
// no temp residue, and a failing save (unwritable directory) keeps the
// destination untouched.
func TestSaveFileAtomicOverwrite(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/repo.json"
	r := New()
	r.AddSchema(schemaWith("A", "<<x>>"))
	if err := r.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	r2 := New()
	r2.AddSchema(schemaWith("A", "<<x>>"))
	r2.AddSchema(schemaWith("B", "<<y>>"))
	if err := r2.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.SchemaNames()) != 2 {
		t.Errorf("overwrite lost data: %v", back.SchemaNames())
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("temp residue left in dir: %v", entries)
	}
	if err := r.SaveFile(dir + "/no/such/dir/repo.json"); err == nil {
		t.Error("save into missing directory succeeded")
	}
	if back, err = LoadFile(path); err != nil || len(back.SchemaNames()) != 2 {
		t.Error("failed save disturbed the existing snapshot")
	}
}

func TestStats(t *testing.T) {
	r := New()
	r.AddSchema(schemaWith("A", "<<x>>"))
	if got := r.Stats(); got != "1 schemas, 0 pathways, 0 transformation steps" {
		t.Errorf("Stats = %q", got)
	}
	if r.Models() == nil {
		t.Error("Models registry missing")
	}
}
