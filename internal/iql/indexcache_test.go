package iql

import "testing"

func cacheKeyFor(rows []Value, spec string) joinIndexKey {
	return joinIndexKey{data: &rows[0], n: len(rows), spec: spec}
}

func TestJoinIndexCacheByteBudget(t *testing.T) {
	mkRows := func(n int) []Value {
		rows := make([]Value, n)
		for i := range rows {
			rows[i] = Tuple(Int(int64(i)), Int(int64(i%5)))
		}
		return rows
	}
	mkIdx := func(rows []Value) *ValueIndex {
		ix := NewValueIndex(len(rows))
		for _, r := range rows {
			ix.Add(r.Items[1], r)
		}
		return ix
	}

	c := NewJoinIndexCache(8)
	a, b := mkRows(10), mkRows(10)
	c.put(cacheKeyFor(a, "1"), mkIdx(a), 1000)
	c.put(cacheKeyFor(b, "1"), mkIdx(b), 1000)
	if c.Len() != 2 || c.Bytes() != 2000 {
		t.Fatalf("len=%d bytes=%d, want 2/2000", c.Len(), c.Bytes())
	}
	if _, ok := c.get(cacheKeyFor(a, "1")); !ok {
		t.Fatal("entry a missing")
	}
	if _, ok := c.get(cacheKeyFor(a, "2")); ok {
		t.Fatal("spec is not part of the key")
	}

	// Shrinking the budget evicts down to it.
	c.SetMaxBytes(1500)
	if c.Len() != 1 || c.Bytes() > 1500 {
		t.Fatalf("after budget shrink: len=%d bytes=%d", c.Len(), c.Bytes())
	}

	// An index whose cost alone exceeds the budget is not cached.
	big := mkRows(10)
	c.put(cacheKeyFor(big, "1"), mkIdx(big), 5000)
	if _, ok := c.get(cacheKeyFor(big, "1")); ok {
		t.Fatal("oversize index was cached")
	}

	// Refreshing a key replaces its cost instead of double-counting.
	c.SetMaxBytes(0)
	rows := mkRows(10)
	c.put(cacheKeyFor(rows, "1"), mkIdx(rows), 100)
	c.put(cacheKeyFor(rows, "1"), mkIdx(rows), 300)
	want := c.Bytes()
	c.Purge()
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Fatalf("purge left len=%d bytes=%d", c.Len(), c.Bytes())
	}
	if want < 300 {
		t.Fatalf("refresh undercounted: %d", want)
	}
}

func TestJoinIndexCacheEntryCap(t *testing.T) {
	c := NewJoinIndexCache(2)
	keep := make([][]Value, 3)
	for i := range keep {
		keep[i] = []Value{Int(int64(i))}
		c.put(cacheKeyFor(keep[i], "0"), NewValueIndex(1), 1)
	}
	if c.Len() > 2 {
		t.Fatalf("cap exceeded: %d", c.Len())
	}
}
