package iql

import (
	"fmt"
	"strings"
)

// Comprehension evaluation with light query optimisation, in the spirit
// of the AutoMed query processor's optimisation phase (Jasper et al.).
// Two rewrites are applied, both strictly semantics-preserving:
//
//  1. Constant-source memoisation: a generator whose source expression
//     has no free variables (e.g. a scheme reference) is evaluated once
//     per comprehension invocation, not once per enclosing binding.
//
//  2. Equi-join indexing: a generator followed by consecutive filters
//     "v = e" (or "e = v"), where each v is bound by the generator's
//     pattern and each e depends only on variables bound by *earlier*
//     generators, is executed by probing a hash index on the composite
//     of the v components instead of scanning and filtering. Equality
//     uses the same canonical keys as the '=' operator, so results are
//     identical.
type compCtx struct {
	ev   *Evaluator
	comp *Comp

	constSrc []bool  // source has no free variables
	srcVal   []Value // memoised source value (valid when srcSet)
	srcSet   []bool

	// joins[i] lists the indexed equi-join conditions for generator i
	// (empty = plain scan); consumed[i] is how many following filter
	// qualifiers the index subsumes.
	joins    [][]joinCond
	consumed []int
	index    []map[string][]Value
}

// joinCond pairs the tuple component of the generator-bound variable
// (wholeElement for a bare-variable pattern) with the probe expression.
type joinCond struct {
	comp  int
	probe Expr
}

const wholeElement = -1

func newCompCtx(ev *Evaluator, c *Comp) *compCtx {
	n := len(c.Quals)
	ctx := &compCtx{
		ev:       ev,
		comp:     c,
		constSrc: make([]bool, n),
		srcVal:   make([]Value, n),
		srcSet:   make([]bool, n),
		joins:    make([][]joinCond, n),
		consumed: make([]int, n),
		index:    make([]map[string][]Value, n),
	}
	ctx.analyze()
	return ctx
}

// analyze marks constant sources and joinable generator/filter runs.
func (ctx *compCtx) analyze() {
	bound := map[string]bool{}
	for i, q := range ctx.comp.Quals {
		g, isGen := q.(*Generator)
		if !isGen {
			continue
		}
		ctx.constSrc[i] = len(FreeVars(g.Src)) == 0
		if ctx.constSrc[i] {
			for j := i + 1; j < len(ctx.comp.Quals); j++ {
				cond, ok := joinableFilter(g, ctx.comp.Quals[j], bound)
				if !ok {
					break
				}
				ctx.joins[i] = append(ctx.joins[i], cond)
				ctx.consumed[i]++
			}
		}
		bindPatternVars(g.Pat, bound)
	}
}

// joinableFilter recognises "v = e" / "e = v" following generator g,
// with v bound by g's pattern and e's free variables all bound before
// g.
func joinableFilter(g *Generator, next Qual, boundBefore map[string]bool) (joinCond, bool) {
	f, isFilter := next.(*Filter)
	if !isFilter {
		return joinCond{}, false
	}
	eq, isEq := f.Cond.(*Binary)
	if !isEq || eq.Op != "=" {
		return joinCond{}, false
	}
	// Which variables does the generator bind, and where?
	comp := func(name string) (int, bool) {
		if name == "_" {
			return 0, false
		}
		switch pat := g.Pat.(type) {
		case *VarPat:
			if pat.Name == name {
				return wholeElement, true
			}
		case *TuplePat:
			for i, pe := range pat.Elems {
				if vp, ok := pe.(*VarPat); ok && vp.Name == name {
					return i, true
				}
			}
		}
		return 0, false
	}
	try := func(varSide, exprSide Expr) (joinCond, bool) {
		v, isVar := varSide.(*Var)
		if !isVar {
			return joinCond{}, false
		}
		ci, ok := comp(v.Name)
		if !ok {
			return joinCond{}, false
		}
		for _, fv := range FreeVars(exprSide) {
			if !boundBefore[fv] {
				return joinCond{}, false
			}
		}
		return joinCond{comp: ci, probe: exprSide}, true
	}
	if c, ok := try(eq.L, eq.R); ok {
		return c, true
	}
	if c, ok := try(eq.R, eq.L); ok {
		return c, true
	}
	return joinCond{}, false
}

// source returns the generator's elements, memoised for constant
// sources.
func (ctx *compCtx) source(i int, g *Generator, env *Env) ([]Value, error) {
	if ctx.constSrc[i] && ctx.srcSet[i] {
		return ctx.srcVal[i].Elements()
	}
	v, err := ctx.ev.eval(g.Src, env)
	if err != nil {
		return nil, err
	}
	if _, err := v.Elements(); err != nil {
		return nil, fmt.Errorf("iql: generator source %s: %w", g.Src, err)
	}
	if ctx.constSrc[i] {
		ctx.srcVal[i] = v
		ctx.srcSet[i] = true
	}
	return v.Elements()
}

// compositeKey renders the composite index key of an element for
// generator i; ok=false when the element's shape cannot satisfy the
// pattern.
func (ctx *compCtx) compositeKey(i int, el Value) (string, bool) {
	var b strings.Builder
	for n, jc := range ctx.joins[i] {
		if n > 0 {
			b.WriteByte('\x00')
		}
		if jc.comp == wholeElement {
			b.WriteString(el.Key())
			continue
		}
		if el.Kind != KindTuple || jc.comp >= len(el.Items) {
			return "", false
		}
		b.WriteString(el.Items[jc.comp].Key())
	}
	return b.String(), true
}

// buildIndex hashes the generator's elements on the composite join key.
func (ctx *compCtx) buildIndex(i int, els []Value) map[string][]Value {
	if ctx.index[i] != nil {
		return ctx.index[i]
	}
	idx := make(map[string][]Value, len(els))
	for _, el := range els {
		key, ok := ctx.compositeKey(i, el)
		if !ok {
			continue // shape mismatch: pattern would not bind anyway
		}
		idx[key] = append(idx[key], el)
	}
	ctx.index[i] = idx
	return idx
}

// run evaluates qualifiers from position i under env, appending head
// values for complete bindings.
func (ctx *compCtx) run(i int, env *Env, out *[]Value) error {
	ev := ctx.ev
	if i == len(ctx.comp.Quals) {
		v, err := ev.eval(ctx.comp.Head, env)
		if err != nil {
			return err
		}
		*out = append(*out, v)
		return nil
	}
	switch q := ctx.comp.Quals[i].(type) {
	case *Filter:
		c, err := ev.eval(q.Cond, env)
		if err != nil {
			return err
		}
		if c.Kind != KindBool {
			return fmt.Errorf("iql: filter must be boolean, got %s (%s)", c.Kind, q.Cond)
		}
		if !c.B {
			return nil
		}
		return ctx.run(i+1, env, out)

	case *Generator:
		els, err := ctx.source(i, q, env)
		if err != nil {
			return err
		}
		next := i + 1
		if len(ctx.joins[i]) > 0 {
			// Indexed equi-join: probe instead of scan; the consumed
			// filters are subsumed by the index lookup.
			var probe strings.Builder
			for n, jc := range ctx.joins[i] {
				if n > 0 {
					probe.WriteByte('\x00')
				}
				v, err := ev.eval(jc.probe, env)
				if err != nil {
					return err
				}
				probe.WriteString(v.Key())
			}
			els = ctx.buildIndex(i, els)[probe.String()]
			next = i + 1 + ctx.consumed[i]
		}
		for _, el := range els {
			if err := ev.step(); err != nil {
				return err
			}
			child := env.Child()
			ok, err := bindPattern(q.Pat, el, child)
			if err != nil {
				return err
			}
			if !ok {
				continue // non-matching elements are skipped
			}
			if err := ctx.run(next, child, out); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("iql: unknown qualifier %T", ctx.comp.Quals[i])
}
