package iql

import (
	"fmt"
	"strconv"
)

// Comprehension evaluation with light query optimisation, in the spirit
// of the AutoMed query processor's optimisation phase (Jasper et al.).
// Two rewrites are applied, both strictly semantics-preserving:
//
//  1. Constant-source memoisation: a generator whose source expression
//     has no free variables (e.g. a scheme reference) is evaluated once
//     per comprehension invocation, not once per enclosing binding.
//
//  2. Equi-join indexing: a generator followed by consecutive filters
//     "v = e" (or "e = v"), where each v is bound by the generator's
//     pattern and each e depends only on variables bound by *earlier*
//     generators, is executed by probing a hash index on the composite
//     of the v components instead of scanning and filtering. The index
//     buckets by structural Hash and confirms with Equal — exactly the
//     '=' operator's semantics — so results are identical.
//
// The static analysis (which sources are constant, which filter runs
// are joinable) depends only on the AST, so it is computed once per
// *Comp node and cached on the Evaluator; nested comprehensions
// re-entered once per enclosing binding reuse their compCtx — including
// its qualifier-state slice and probe scratch buffer — instead of
// re-analysing and re-allocating every time.
type compCtx struct {
	ev   *Evaluator
	comp *Comp

	// quals holds per-qualifier state, static analysis and
	// per-invocation state together, in one allocation.
	quals []qualState

	// probeScratch holds the composite probe key components between a
	// probe's evaluation and its index lookup; Probe never retains the
	// key, so one buffer serves every probe of the invocation.
	probeScratch []Value

	// active guards the cached ctx against re-entrant use; a Comp node
	// cannot syntactically contain itself, so re-entry is impossible
	// today, but a fresh ctx is used if that ever changes.
	active bool
}

// qualState is one qualifier's analysis results and evaluation state.
type qualState struct {
	// Static analysis, computed once per Comp node.
	constSrc bool       // source has no free variables
	joins    []joinCond // indexed equi-join conditions (empty = scan)
	consumed int        // following filters subsumed by the index
	joinSpec string     // join-key component positions (index cache key)

	// Per-invocation state, cleared by reset().
	srcSet bool
	srcVal Value // memoised source value (valid when srcSet)
	index  *ValueIndex
}

// joinCond pairs the tuple component of the generator-bound variable
// (wholeElement for a bare-variable pattern) with the probe expression.
type joinCond struct {
	comp  int
	probe Expr
}

const wholeElement = -1

// compCtxFor returns the (cached) evaluation context for a Comp node,
// analysing it on first sight and resetting per-invocation state on
// reuse.
func (ev *Evaluator) compCtxFor(c *Comp) *compCtx {
	if ctx, ok := ev.plans[c]; ok && !ctx.active {
		ctx.reset()
		ctx.active = true
		return ctx
	}
	ctx := newCompCtx(ev, c)
	ctx.active = true
	if _, ok := ev.plans[c]; !ok {
		if ev.plans == nil {
			ev.plans = make(map[*Comp]*compCtx)
		}
		ev.plans[c] = ctx
	}
	return ctx
}

func newCompCtx(ev *Evaluator, c *Comp) *compCtx {
	ctx := &compCtx{
		ev:    ev,
		comp:  c,
		quals: make([]qualState, len(c.Quals)),
	}
	ctx.analyze()
	return ctx
}

// reset clears per-invocation state (memoised sources and join
// indexes), keeping the static analysis and the allocated slices.
func (ctx *compCtx) reset() {
	for i := range ctx.quals {
		ctx.quals[i].srcSet = false
		ctx.quals[i].srcVal = Value{}
		ctx.quals[i].index = nil
	}
}

// release returns the ctx to its plan cache slot.
func (ctx *compCtx) release() { ctx.active = false }

// analyze marks constant sources and joinable generator/filter runs.
func (ctx *compCtx) analyze() {
	bound := map[string]bool{}
	for i, q := range ctx.comp.Quals {
		g, isGen := q.(*Generator)
		if !isGen {
			continue
		}
		qs := &ctx.quals[i]
		qs.constSrc = len(FreeVars(g.Src)) == 0
		if qs.constSrc {
			for j := i + 1; j < len(ctx.comp.Quals); j++ {
				cond, ok := joinableFilter(g, ctx.comp.Quals[j], bound)
				if !ok {
					break
				}
				qs.joins = append(qs.joins, cond)
				qs.consumed++
			}
			if len(qs.joins) > 0 {
				var spec []byte
				for n, jc := range qs.joins {
					if n > 0 {
						spec = append(spec, ',')
					}
					spec = strconv.AppendInt(spec, int64(jc.comp), 10)
				}
				qs.joinSpec = string(spec)
			}
		}
		bindPatternVars(g.Pat, bound)
	}
}

// joinableFilter recognises "v = e" / "e = v" following generator g,
// with v bound by g's pattern and e's free variables all bound before
// g.
func joinableFilter(g *Generator, next Qual, boundBefore map[string]bool) (joinCond, bool) {
	f, isFilter := next.(*Filter)
	if !isFilter {
		return joinCond{}, false
	}
	eq, isEq := f.Cond.(*Binary)
	if !isEq || eq.Op != "=" {
		return joinCond{}, false
	}
	// Which variables does the generator bind, and where?
	comp := func(name string) (int, bool) {
		if name == "_" {
			return 0, false
		}
		switch pat := g.Pat.(type) {
		case *VarPat:
			if pat.Name == name {
				return wholeElement, true
			}
		case *TuplePat:
			for i, pe := range pat.Elems {
				if vp, ok := pe.(*VarPat); ok && vp.Name == name {
					return i, true
				}
			}
		}
		return 0, false
	}
	try := func(varSide, exprSide Expr) (joinCond, bool) {
		v, isVar := varSide.(*Var)
		if !isVar {
			return joinCond{}, false
		}
		ci, ok := comp(v.Name)
		if !ok {
			return joinCond{}, false
		}
		for _, fv := range FreeVars(exprSide) {
			if !boundBefore[fv] {
				return joinCond{}, false
			}
		}
		return joinCond{comp: ci, probe: exprSide}, true
	}
	if c, ok := try(eq.L, eq.R); ok {
		return c, true
	}
	if c, ok := try(eq.R, eq.L); ok {
		return c, true
	}
	return joinCond{}, false
}

// source returns the generator's elements, memoised for constant
// sources.
func (ctx *compCtx) source(i int, g *Generator, env *Env) ([]Value, error) {
	qs := &ctx.quals[i]
	if qs.constSrc && qs.srcSet {
		return qs.srcVal.Elements()
	}
	v, err := ctx.ev.eval(g.Src, env)
	if err != nil {
		return nil, err
	}
	if _, err := v.Elements(); err != nil {
		return nil, fmt.Errorf("iql: generator source %s: %w", g.Src, err)
	}
	if qs.constSrc {
		qs.srcVal = v
		qs.srcSet = true
	}
	return v.Elements()
}

// joinComponent extracts one composite-key component of an element;
// ok=false when the element's shape cannot satisfy the pattern.
func joinComponent(jc joinCond, el Value) (Value, bool) {
	if jc.comp == wholeElement {
		return el, true
	}
	if el.Kind != KindTuple || jc.comp >= len(el.Items) {
		return Value{}, false
	}
	return el.Items[jc.comp], true
}

// joinIndexCacheMin is the source size below which indexes are rebuilt
// rather than cached across evaluations (tiny builds are cheaper than
// occupying a cache slot).
const joinIndexCacheMin = 32

// buildIndex returns the hash index of the generator's elements on the
// composite join key, consulting the evaluator's cross-evaluation
// index cache for large memoised sources: the element array's identity
// plus the component spec fully determine the index, so an unchanged
// extent is indexed once, not once per evaluation.
func (ctx *compCtx) buildIndex(i int, els []Value) *ValueIndex {
	qs := &ctx.quals[i]
	if qs.index != nil {
		return qs.index
	}
	if c := ctx.ev.Indexes; c != nil && len(els) >= joinIndexCacheMin {
		key := joinIndexKey{data: &els[0], n: len(els), spec: qs.joinSpec}
		if idx, ok := c.get(key); ok {
			qs.index = idx
			return idx
		}
		idx := ctx.buildIndexRaw(i, els)
		// The index (and its identity key) keeps the extent rows alive,
		// so charge the cache their footprint plus index overhead.
		cost := int64(len(els)) * 48
		for _, el := range els {
			cost += el.Footprint()
		}
		c.put(key, idx, cost)
		return idx
	}
	return ctx.buildIndexRaw(i, els)
}

// buildIndexRaw hashes the generator's elements on the composite join
// key. A single-condition key is the component value itself;
// multi-condition keys are tuples whose Items slices are carved out of
// one shared backing array, so the build costs O(1) allocations beyond
// the index.
func (ctx *compCtx) buildIndexRaw(i int, els []Value) *ValueIndex {
	qs := &ctx.quals[i]
	jcs := qs.joins
	idx := NewValueIndex(len(els))
	var backing []Value
	if len(jcs) > 1 {
		backing = make([]Value, 0, len(jcs)*len(els))
	}
	for _, el := range els {
		var key Value
		if len(jcs) == 1 {
			k, ok := joinComponent(jcs[0], el)
			if !ok {
				continue // shape mismatch: pattern would not bind anyway
			}
			key = k
		} else {
			start := len(backing)
			ok := true
			for _, jc := range jcs {
				c, okc := joinComponent(jc, el)
				if !okc {
					ok = false
					break
				}
				backing = append(backing, c)
			}
			if !ok {
				backing = backing[:start]
				continue
			}
			key = Value{Kind: KindTuple, Items: backing[start:len(backing):len(backing)]}
		}
		idx.Add(key, el)
	}
	qs.index = idx
	return idx
}

// probeKey evaluates generator i's probe expressions into the shared
// scratch buffer and returns the composite probe key. The key aliases
// the scratch, which is safe because ValueIndex.Probe never retains it.
func (ctx *compCtx) probeKey(i int, env *Env) (Value, error) {
	jcs := ctx.quals[i].joins
	if cap(ctx.probeScratch) < len(jcs) {
		ctx.probeScratch = make([]Value, len(jcs))
	}
	scratch := ctx.probeScratch[:len(jcs)]
	for n, jc := range jcs {
		v, err := ctx.ev.eval(jc.probe, env)
		if err != nil {
			return Value{}, err
		}
		scratch[n] = v
	}
	if len(jcs) == 1 {
		return scratch[0], nil
	}
	return Value{Kind: KindTuple, Items: scratch}, nil
}

// outPrealloc caps how far a generator source's length is trusted as a
// size hint for the output slice.
const outPrealloc = 1024

// run evaluates qualifiers from position i under env, appending head
// values for complete bindings.
func (ctx *compCtx) run(i int, env *Env, out *[]Value) error {
	ev := ctx.ev
	if i == len(ctx.comp.Quals) {
		v, err := ev.eval(ctx.comp.Head, env)
		if err != nil {
			return err
		}
		*out = append(*out, v)
		return nil
	}
	switch q := ctx.comp.Quals[i].(type) {
	case *Filter:
		c, err := ev.eval(q.Cond, env)
		if err != nil {
			return err
		}
		if c.Kind != KindBool {
			return fmt.Errorf("iql: filter must be boolean, got %s (%s)", c.Kind, q.Cond)
		}
		if !c.B {
			return nil
		}
		return ctx.run(i+1, env, out)

	case *Generator:
		if rs, ok, err := ctx.stream(i, q); err != nil {
			return err
		} else if ok {
			return ctx.runStream(q, rs, i+1, env, out)
		}
		els, err := ctx.source(i, q, env)
		if err != nil {
			return err
		}
		next := i + 1
		var joinedFirst Value
		joined := false
		if len(ctx.quals[i].joins) > 0 {
			// Indexed equi-join: probe instead of scan; the consumed
			// filters are subsumed by the index lookup.
			idx := ctx.buildIndex(i, els)
			key, err := ctx.probeKey(i, env)
			if err != nil {
				return err
			}
			next = i + 1 + ctx.quals[i].consumed
			first, rest, ok := idx.Probe(key)
			if !ok {
				return nil
			}
			joinedFirst, joined = first, true
			els = rest
		}
		if !joined && ctx.shardable(len(els)) {
			// Large top-level scan: fan the elements across a worker
			// pool in contiguous shards, merged back in shard order
			// (see parallel.go). Results are byte-identical to the
			// serial loop below.
			return ctx.runSharded(q, els, next, env, out)
		}
		if cap(*out) == 0 && len(els) > 0 {
			// First growth: trust the generator's cardinality as a size
			// hint so comprehension outputs don't grow append-by-append.
			hint := len(els)
			if hint > outPrealloc {
				hint = outPrealloc
			}
			*out = make([]Value, 0, hint)
		}
		// One child scope serves every iteration: bindings are reset per
		// element, and nothing retains the scope once run returns (IQL
		// has no closures), so per-element scope allocation is avoided.
		child := env.Child()
		ev.genDepth++
		if joined {
			if err := ctx.runElement(q, joinedFirst, next, child, out); err != nil {
				ev.genDepth--
				return err
			}
		}
		for _, el := range els {
			if err := ctx.runElement(q, el, next, child, out); err != nil {
				ev.genDepth--
				return err
			}
		}
		ev.genDepth--
		return nil
	}
	return fmt.Errorf("iql: unknown qualifier %T", ctx.comp.Quals[i])
}

// stream decides whether generator i can pull its source as a
// RowStream instead of materialising it. Only a top-level
// (genDepth 0) scan of a bare scheme reference qualifies: joins need
// the whole extent for their index, memoised sources are already
// materialised, and nested generators re-run per enclosing binding,
// where re-streaming would multiply backend fetches. The extent
// provider has the final say via ExtentStream's ok result.
func (ctx *compCtx) stream(i int, g *Generator) (RowStream, bool, error) {
	ev := ctx.ev
	qs := &ctx.quals[i]
	if ev.genDepth != 0 || len(qs.joins) > 0 || qs.srcSet {
		return nil, false, nil
	}
	ref, ok := g.Src.(*SchemeRef)
	if !ok {
		return nil, false, nil
	}
	se, ok := ev.Ext.(StreamExtents)
	if !ok {
		return nil, false, nil
	}
	rs, ok, err := se.ExtentStream(ref.Parts)
	if err != nil || !ok {
		return nil, false, err
	}
	// The materialised path charges one step evaluating the scheme
	// reference; charge the same here so step budgets are path-
	// independent.
	if err := ev.step(); err != nil {
		rs.Close()
		return nil, false, err
	}
	return rs, true, nil
}

// runStream drives one streamed generator: rows are pulled, bound and
// evaluated exactly as the materialised loop in run does, so results
// are byte-identical; only the residency differs. Sharding never
// applies (the row count is unknown up front), and the stream is
// always closed, including on early error returns.
func (ctx *compCtx) runStream(q *Generator, rs RowStream, next int, env *Env, out *[]Value) (err error) {
	defer func() {
		if cerr := rs.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	ev := ctx.ev
	child := env.Child()
	ev.genDepth++
	defer func() { ev.genDepth-- }()
	for rs.Next() {
		if err := ctx.runElement(q, rs.Row(), next, child, out); err != nil {
			return err
		}
	}
	if serr := rs.Err(); serr != nil {
		return fmt.Errorf("iql: generator source %s: %w", q.Src, serr)
	}
	return nil
}

// runElement binds one generator element into the reused child scope
// and continues evaluation from qualifier next.
func (ctx *compCtx) runElement(q *Generator, el Value, next int, child *Env, out *[]Value) error {
	if err := ctx.ev.step(); err != nil {
		return err
	}
	child.resetBindings()
	ok, err := bindPattern(q.Pat, el, child)
	if err != nil {
		return err
	}
	if !ok {
		return nil // non-matching elements are skipped
	}
	return ctx.run(next, child, out)
}
