package iql

import "strings"

// Clone returns a deep copy of an expression tree.
func Clone(e Expr) Expr {
	return Rewrite(e, func(x Expr) (Expr, bool) { return nil, false })
}

// Rewrite walks an expression bottom-up applying f at every node. When f
// returns (replacement, true) the node is replaced wholesale (the
// replacement is not re-visited); otherwise the node is rebuilt from its
// rewritten children. The input tree is never mutated.
func Rewrite(e Expr, f func(Expr) (Expr, bool)) Expr {
	if e == nil {
		return nil
	}
	if r, ok := f(e); ok {
		return r
	}
	switch n := e.(type) {
	case *Lit:
		cp := *n
		return &cp
	case *Var:
		cp := *n
		return &cp
	case *SchemeRef:
		return &SchemeRef{Parts: append([]string(nil), n.Parts...)}
	case *TupleExpr:
		elems := make([]Expr, len(n.Elems))
		for i, x := range n.Elems {
			elems[i] = Rewrite(x, f)
		}
		return &TupleExpr{Elems: elems}
	case *BagExpr:
		elems := make([]Expr, len(n.Elems))
		for i, x := range n.Elems {
			elems[i] = Rewrite(x, f)
		}
		return &BagExpr{Elems: elems}
	case *Comp:
		quals := make([]Qual, len(n.Quals))
		for i, q := range n.Quals {
			switch qq := q.(type) {
			case *Generator:
				quals[i] = &Generator{Pat: clonePattern(qq.Pat), Src: Rewrite(qq.Src, f)}
			case *Filter:
				quals[i] = &Filter{Cond: Rewrite(qq.Cond, f)}
			}
		}
		return &Comp{Head: Rewrite(n.Head, f), Quals: quals}
	case *Binary:
		return &Binary{Op: n.Op, L: Rewrite(n.L, f), R: Rewrite(n.R, f)}
	case *Unary:
		return &Unary{Op: n.Op, X: Rewrite(n.X, f)}
	case *Call:
		args := make([]Expr, len(n.Args))
		for i, a := range n.Args {
			args[i] = Rewrite(a, f)
		}
		return &Call{Fn: n.Fn, Args: args}
	case *RangeExpr:
		return &RangeExpr{Lo: Rewrite(n.Lo, f), Hi: Rewrite(n.Hi, f)}
	case *IfExpr:
		return &IfExpr{Cond: Rewrite(n.Cond, f), Then: Rewrite(n.Then, f), Else: Rewrite(n.Else, f)}
	case *LetExpr:
		return &LetExpr{Name: n.Name, Val: Rewrite(n.Val, f), Body: Rewrite(n.Body, f)}
	}
	return e
}

func clonePattern(p Pattern) Pattern {
	switch pp := p.(type) {
	case *VarPat:
		cp := *pp
		return &cp
	case *LitPat:
		cp := *pp
		return &cp
	case *TuplePat:
		elems := make([]Pattern, len(pp.Elems))
		for i, e := range pp.Elems {
			elems[i] = clonePattern(e)
		}
		return &TuplePat{Elems: elems}
	}
	return p
}

// SubstituteSchemes replaces scheme references for which fn returns a
// replacement expression. The replacement is cloned so shared subtrees
// stay independent.
func SubstituteSchemes(e Expr, fn func(parts []string) (Expr, bool)) Expr {
	return Rewrite(e, func(x Expr) (Expr, bool) {
		ref, ok := x.(*SchemeRef)
		if !ok {
			return nil, false
		}
		repl, ok := fn(ref.Parts)
		if !ok {
			return nil, false
		}
		return Clone(repl), true
	})
}

// RenameSchemeRef rewrites every scheme reference equal to from into to.
// Part comparison is exact.
func RenameSchemeRef(e Expr, from, to []string) Expr {
	return SubstituteSchemes(e, func(parts []string) (Expr, bool) {
		if !partsEqual(parts, from) {
			return nil, false
		}
		return &SchemeRef{Parts: append([]string(nil), to...)}, true
	})
}

func partsEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// SchemeRefs collects every scheme reference in the expression, in
// left-to-right order (with duplicates).
func SchemeRefs(e Expr) [][]string {
	var out [][]string
	walk(e, func(x Expr) {
		if ref, ok := x.(*SchemeRef); ok {
			out = append(out, append([]string(nil), ref.Parts...))
		}
	})
	return out
}

// UniqueSchemeRefs collects distinct scheme references (by joined key),
// preserving first-seen order.
func UniqueSchemeRefs(e Expr) [][]string {
	seen := make(map[string]bool)
	var out [][]string
	for _, r := range SchemeRefs(e) {
		k := strings.Join(r, "|")
		if !seen[k] {
			seen[k] = true
			out = append(out, r)
		}
	}
	return out
}

// FreeVars returns the variable names that occur free in the expression
// (not bound by an enclosing generator pattern or let), in first-seen
// order.
func FreeVars(e Expr) []string {
	var out []string
	seen := make(map[string]bool)
	freeVars(e, map[string]bool{}, seen, &out)
	return out
}

func freeVars(e Expr, bound map[string]bool, seen map[string]bool, out *[]string) {
	switch n := e.(type) {
	case nil:
		return
	case *Var:
		if !bound[n.Name] && !seen[n.Name] {
			seen[n.Name] = true
			*out = append(*out, n.Name)
		}
	case *Lit, *SchemeRef:
	case *TupleExpr:
		for _, x := range n.Elems {
			freeVars(x, bound, seen, out)
		}
	case *BagExpr:
		for _, x := range n.Elems {
			freeVars(x, bound, seen, out)
		}
	case *Comp:
		inner := copyBound(bound)
		for _, q := range n.Quals {
			switch qq := q.(type) {
			case *Generator:
				freeVars(qq.Src, inner, seen, out)
				bindPatternVars(qq.Pat, inner)
			case *Filter:
				freeVars(qq.Cond, inner, seen, out)
			}
		}
		freeVars(n.Head, inner, seen, out)
	case *Binary:
		freeVars(n.L, bound, seen, out)
		freeVars(n.R, bound, seen, out)
	case *Unary:
		freeVars(n.X, bound, seen, out)
	case *Call:
		for _, a := range n.Args {
			freeVars(a, bound, seen, out)
		}
	case *RangeExpr:
		freeVars(n.Lo, bound, seen, out)
		freeVars(n.Hi, bound, seen, out)
	case *IfExpr:
		freeVars(n.Cond, bound, seen, out)
		freeVars(n.Then, bound, seen, out)
		freeVars(n.Else, bound, seen, out)
	case *LetExpr:
		freeVars(n.Val, bound, seen, out)
		inner := copyBound(bound)
		inner[n.Name] = true
		freeVars(n.Body, inner, seen, out)
	}
}

func copyBound(m map[string]bool) map[string]bool {
	c := make(map[string]bool, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

func bindPatternVars(p Pattern, bound map[string]bool) {
	switch pp := p.(type) {
	case *VarPat:
		if pp.Name != "_" {
			bound[pp.Name] = true
		}
	case *TuplePat:
		for _, e := range pp.Elems {
			bindPatternVars(e, bound)
		}
	}
}

// walk visits every expression node top-down.
func walk(e Expr, f func(Expr)) {
	if e == nil {
		return
	}
	f(e)
	switch n := e.(type) {
	case *TupleExpr:
		for _, x := range n.Elems {
			walk(x, f)
		}
	case *BagExpr:
		for _, x := range n.Elems {
			walk(x, f)
		}
	case *Comp:
		walk(n.Head, f)
		for _, q := range n.Quals {
			switch qq := q.(type) {
			case *Generator:
				walk(qq.Src, f)
			case *Filter:
				walk(qq.Cond, f)
			}
		}
	case *Binary:
		walk(n.L, f)
		walk(n.R, f)
	case *Unary:
		walk(n.X, f)
	case *Call:
		for _, a := range n.Args {
			walk(a, f)
		}
	case *RangeExpr:
		walk(n.Lo, f)
		walk(n.Hi, f)
	case *IfExpr:
		walk(n.Cond, f)
		walk(n.Then, f)
		walk(n.Else, f)
	case *LetExpr:
		walk(n.Val, f)
		walk(n.Body, f)
	}
}

// Equal reports whether two expressions are structurally identical.
func Equal(a, b Expr) bool {
	if a == nil || b == nil {
		return a == b
	}
	return a.String() == b.String()
}

// IsSimpleRef reports whether the expression is exactly one scheme
// reference, optionally wrapped in a single-generator identity
// comprehension. The Intersection Schema Tool auto-derives reverse
// (delete) queries for such "simple" forward mappings (paper §2.4).
func IsSimpleRef(e Expr) ([]string, bool) {
	switch n := e.(type) {
	case *SchemeRef:
		return n.Parts, true
	case *Comp:
		if len(n.Quals) != 1 {
			return nil, false
		}
		g, ok := n.Quals[0].(*Generator)
		if !ok {
			return nil, false
		}
		src, ok := g.Src.(*SchemeRef)
		if !ok {
			return nil, false
		}
		// Identity head: the head is exactly the pattern variable (or
		// tuple of pattern variables).
		vp, ok := g.Pat.(*VarPat)
		if ok {
			if hv, ok := n.Head.(*Var); ok && hv.Name == vp.Name {
				return src.Parts, true
			}
			return nil, false
		}
		tp, ok := g.Pat.(*TuplePat)
		if !ok {
			return nil, false
		}
		ht, ok := n.Head.(*TupleExpr)
		if !ok || len(ht.Elems) != len(tp.Elems) {
			return nil, false
		}
		for i, pe := range tp.Elems {
			pv, ok := pe.(*VarPat)
			if !ok {
				return nil, false
			}
			hv, ok := ht.Elems[i].(*Var)
			if !ok || hv.Name != pv.Name {
				return nil, false
			}
		}
		return src.Parts, true
	}
	return nil, false
}
