package iql

import (
	"sync"
	"sync/atomic"
	"time"
)

// Data-parallel sharded comprehension evaluation.
//
// A comprehension whose first generator scans a large extent is the
// hot loop of every Table-1-style query, and it is embarrassingly
// parallel: each element's qualifier tail (filters, joins, nested
// generators, the head) depends only on the element and the enclosing
// environment, never on its neighbours. The sharded path splits the
// generator's element slice into contiguous shards, evaluates each
// shard on a bounded worker pool, and concatenates the per-shard
// outputs in shard order — an order-preserving merge, so the resulting
// bag is byte-identical to the serial loop's (bag semantics are
// order-carrying in the representation even though equality is
// multiset).
//
// Isolation model (share-nothing where mutation happens, shared where
// immutable):
//
//   - Each worker runs its own Evaluator, so the per-*Comp plan cache
//     (Evaluator.plans), the compCtx qualifier state, the probe
//     scratch, and the reused child Env scope are all worker-private.
//     No locking on the per-element hot path.
//   - The enclosing Env chain is shared read-only: the evaluator that
//     owns it is parked in runSharded until the merge, and IQL has no
//     assignment, so workers only Lookup.
//   - Extents (the query processor's session) are NOT concurrency-
//     safe, so workers route every scheme-reference resolution through
//     one lockedExtents adapter. Extent calls are rare (constant
//     sources are fetched once per worker and memoised upstream), so
//     the lock is quiet.
//   - Join indexes are shared read-only through the evaluator's
//     JoinIndexCache, which is concurrency-safe; ValueIndex.Probe
//     never mutates the index. Workers that miss race to build
//     benignly (last insert wins, both indexes are correct).
//   - The StepBudget is atomic. When a step limit is enforced, every
//     worker takes from the shared budget exactly as the serial path
//     would, so one logical query keeps one budget. When the budget
//     is unlimited, workers count locally and flush once at exit, so
//     Used() is exact after Eval returns without a contended atomic
//     per element.
//
// Error semantics: evaluation fails with the error of the lowest-
// numbered errored shard. On success this is unobservable; when
// several elements would fail independently, serial evaluation
// surfaces the textually first one while the sharded path may surface
// a later shard's (shards scheduled after an error are skipped). Step
// budget and cancellation errors carry the same message either way.

// DefaultMinShardRows is the smallest generator scan the sharded path
// will split when Evaluator.MinShardRows is unset. Below roughly this
// size, shard handoff and worker spin-up cost more than the scan.
const DefaultMinShardRows = 64

// shardOversplit is how many shards each worker gets on average:
// oversplitting lets fast workers steal remaining shards from slow
// ones (skewed filter selectivity, nested-join fan-out) instead of
// idling at the merge barrier.
const shardOversplit = 4

// ShardStat records one sharded generator scan, for tracing and
// metrics.
type ShardStat struct {
	// Rows is the scanned generator's element count.
	Rows int
	// Shards and Workers describe the chosen plan.
	Shards  int
	Workers int
	// Wall is the end-to-end duration of the sharded scan, including
	// the merge.
	Wall time.Duration
	// ShardMax and ShardMin are the longest and shortest single-shard
	// processing times, exposing skew.
	ShardMax time.Duration
	ShardMin time.Duration
}

// EvalStats accumulates sharding telemetry across one evaluation; it
// is safe for concurrent use (nested evaluations spawned by extent
// unfolding may shard while an outer scan is sharded).
type EvalStats struct {
	mu      sync.Mutex
	sharded []ShardStat
}

// record appends one sharded-scan record.
func (st *EvalStats) record(s ShardStat) {
	if st == nil {
		return
	}
	st.mu.Lock()
	st.sharded = append(st.sharded, s)
	st.mu.Unlock()
}

// Sharded returns the recorded sharded scans in completion order.
func (st *EvalStats) Sharded() []ShardStat {
	if st == nil {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return append([]ShardStat(nil), st.sharded...)
}

// lockedExtents serialises extent resolution across the workers of one
// sharded scan: the underlying Extents (typically the query
// processor's evaluation session) mutates per-query state on every
// call and is not concurrency-safe.
type lockedExtents struct {
	mu  sync.Mutex
	ext Extents
}

func (l *lockedExtents) Extent(parts []string) (Value, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ext.Extent(parts)
}

// shardable reports whether the current generator scan qualifies for
// the sharded path: parallelism enabled, no enclosing generator loop
// on this evaluator (a nested comprehension re-entered per element
// must not spin up a pool per element), and enough rows for at least
// two minimum-size shards.
func (ctx *compCtx) shardable(rows int) bool {
	ev := ctx.ev
	if ev.Parallel <= 1 || ev.genDepth != 0 {
		return false
	}
	min := ev.MinShardRows
	if min <= 0 {
		min = DefaultMinShardRows
	}
	return rows >= 2*min
}

// shardPlan picks worker and shard counts for an n-row scan: at most
// parallel workers, shards of at least min rows, oversplit so the pool
// load-balances across skewed shards.
func shardPlan(n, parallel, min int) (workers, shards int) {
	maxShards := n / min
	workers = parallel
	if workers > maxShards {
		workers = maxShards
	}
	shards = workers * shardOversplit
	if shards > maxShards {
		shards = maxShards
	}
	return workers, shards
}

// shardBounds returns the half-open element range of shard s of n rows
// split into shards contiguous, balanced pieces.
func shardBounds(n, shards, s int) (lo, hi int) {
	return s * n / shards, (s + 1) * n / shards
}

// runSharded evaluates the qualifier tail from next for every element
// of els across a worker pool, appending head values to out in element
// order. It is called in place of the serial generator loop (see
// compCtx.run) and produces identical output.
func (ctx *compCtx) runSharded(g *Generator, els []Value, next int, env *Env, out *[]Value) error {
	ev := ctx.ev
	minRows := ev.MinShardRows
	if minRows <= 0 {
		minRows = DefaultMinShardRows
	}
	workers, shards := shardPlan(len(els), ev.Parallel, minRows)
	start := time.Now()

	// Budget wiring: enforce exactly when a limit is set, count
	// locally and flush when unlimited (see the package comment).
	var shared *StepBudget
	flushLocal := false
	switch {
	case ev.Budget != nil && ev.Budget.Max > 0:
		shared = ev.Budget
	case ev.Budget != nil:
		flushLocal = true
	case ev.MaxSteps > 0:
		// The serial path would bound ev.steps by MaxSteps; hand the
		// workers a budget pre-charged with the steps already spent so
		// the bound covers the whole evaluation, not each worker.
		shared = &StepBudget{Max: ev.MaxSteps}
		shared.addSteps(ev.steps)
	default:
		flushLocal = true
	}

	ext := ev.Ext
	if ext == nil {
		ext = NoExtents
	}
	locked := &lockedExtents{ext: ext}

	results := make([][]Value, shards)
	errs := make([]error, shards)
	shardDur := make([]time.Duration, shards)
	var nextShard atomic.Int64
	var localSteps atomic.Int64
	stop := make(chan struct{})
	var stopOnce sync.Once
	halt := func() { stopOnce.Do(func() { close(stop) }) }

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			wev := &Evaluator{
				Ext:     locked,
				Ctx:     ev.Ctx,
				Indexes: ev.Indexes,
				Budget:  shared,
				Stats:   ev.Stats,
			}
			// One compCtx serves all of this worker's shards: its
			// memoised constant sources and built join indexes carry
			// across shards, exactly as one serial invocation would.
			wctx := wev.compCtxFor(ctx.comp)
			defer wctx.release()
			child := env.Child()
			for {
				select {
				case <-stop:
					if flushLocal {
						localSteps.Add(int64(wev.steps))
					}
					return
				default:
				}
				s := int(nextShard.Add(1)) - 1
				if s >= shards {
					if flushLocal {
						localSteps.Add(int64(wev.steps))
					}
					return
				}
				lo, hi := shardBounds(len(els), shards, s)
				shardStart := time.Now()
				outSize := hi - lo
				if outSize > outPrealloc {
					outSize = outPrealloc
				}
				shardOut := make([]Value, 0, outSize)
				wev.genDepth++
				var err error
				for _, el := range els[lo:hi] {
					if err = wctx.runElement(g, el, next, child, &shardOut); err != nil {
						break
					}
				}
				wev.genDepth--
				shardDur[s] = time.Since(shardStart)
				if err != nil {
					errs[s] = err
					halt()
					if flushLocal {
						localSteps.Add(int64(wev.steps))
					}
					return
				}
				results[s] = shardOut
			}
		}()
	}
	wg.Wait()

	// Steps: flush the workers' local counts (unlimited budgets), or
	// fold the shared budget's tally back into the serial counter so a
	// following serial stretch continues the same count.
	if flushLocal {
		n := int(localSteps.Load())
		if ev.Budget != nil {
			ev.Budget.addSteps(n)
		} else {
			ev.steps += n
		}
	} else if ev.Budget == nil {
		ev.steps = shared.Used()
	}

	for s := 0; s < shards; s++ {
		if errs[s] != nil {
			return errs[s]
		}
	}

	total := 0
	for _, r := range results {
		total += len(r)
	}
	if cap(*out)-len(*out) < total {
		merged := make([]Value, len(*out), len(*out)+total)
		copy(merged, *out)
		*out = merged
	}
	for _, r := range results {
		*out = append(*out, r...)
	}

	if ev.Stats != nil {
		st := ShardStat{Rows: len(els), Shards: shards, Workers: workers, Wall: time.Since(start)}
		for s, d := range shardDur {
			if s == 0 || d > st.ShardMax {
				st.ShardMax = d
			}
			if s == 0 || d < st.ShardMin {
				st.ShardMin = d
			}
		}
		ev.Stats.record(st)
	}
	return nil
}
