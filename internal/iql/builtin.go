package iql

import (
	"fmt"
	"strings"
)

// Builtins lists the built-in function names understood by the
// evaluator, for shell help and validation.
func Builtins() []string {
	return []string{
		"abs", "avg", "contains", "count", "distinct", "endswith",
		"first", "flatten", "lower", "max", "member", "min", "sort",
		"startswith", "sum", "tofloat", "tostring", "upper",
	}
}

func (ev *Evaluator) evalCall(n *Call, env *Env) (Value, error) {
	args := make([]Value, len(n.Args))
	for i, a := range n.Args {
		v, err := ev.eval(a, env)
		if err != nil {
			return Value{}, err
		}
		args[i] = v
	}
	want := func(k int) error {
		if len(args) != k {
			return fmt.Errorf("iql: %s expects %d argument(s), got %d", n.Fn, k, len(args))
		}
		return nil
	}

	switch n.Fn {
	case "count":
		if err := want(1); err != nil {
			return Value{}, err
		}
		els, err := args[0].Elements()
		if err != nil {
			return Value{}, fmt.Errorf("iql: count: %w", err)
		}
		return Int(int64(len(els))), nil

	case "sum", "avg", "max", "min":
		if err := want(1); err != nil {
			return Value{}, err
		}
		return aggregate(n.Fn, args[0])

	case "distinct":
		if err := want(1); err != nil {
			return Value{}, err
		}
		return Distinct(args[0])

	case "sort":
		if err := want(1); err != nil {
			return Value{}, err
		}
		return SortBag(args[0])

	case "flatten":
		if err := want(1); err != nil {
			return Value{}, err
		}
		els, err := args[0].Elements()
		if err != nil {
			return Value{}, fmt.Errorf("iql: flatten: %w", err)
		}
		var out []Value
		for _, e := range els {
			sub, err := e.Elements()
			if err != nil {
				return Value{}, fmt.Errorf("iql: flatten: %w", err)
			}
			out = append(out, sub...)
		}
		return BagOf(out), nil

	case "first":
		if err := want(1); err != nil {
			return Value{}, err
		}
		els, err := args[0].Elements()
		if err != nil {
			return Value{}, fmt.Errorf("iql: first: %w", err)
		}
		if len(els) == 0 {
			return Null(), nil
		}
		return els[0], nil

	case "member":
		if err := want(2); err != nil {
			return Value{}, err
		}
		els, err := args[0].Elements()
		if err != nil {
			return Value{}, fmt.Errorf("iql: member: %w", err)
		}
		for _, e := range els {
			if e.Equal(args[1]) {
				return Bool(true), nil
			}
		}
		return Bool(false), nil

	case "contains", "startswith", "endswith":
		if err := want(2); err != nil {
			return Value{}, err
		}
		if args[0].Kind != KindString || args[1].Kind != KindString {
			return Value{}, fmt.Errorf("iql: %s expects strings", n.Fn)
		}
		switch n.Fn {
		case "contains":
			return Bool(strings.Contains(args[0].S, args[1].S)), nil
		case "startswith":
			return Bool(strings.HasPrefix(args[0].S, args[1].S)), nil
		default:
			return Bool(strings.HasSuffix(args[0].S, args[1].S)), nil
		}

	case "upper", "lower":
		if err := want(1); err != nil {
			return Value{}, err
		}
		if args[0].Kind != KindString {
			return Value{}, fmt.Errorf("iql: %s expects a string", n.Fn)
		}
		if n.Fn == "upper" {
			return Str(strings.ToUpper(args[0].S)), nil
		}
		return Str(strings.ToLower(args[0].S)), nil

	case "abs":
		if err := want(1); err != nil {
			return Value{}, err
		}
		switch args[0].Kind {
		case KindInt:
			if args[0].I < 0 {
				return Int(-args[0].I), nil
			}
			return args[0], nil
		case KindFloat:
			if args[0].F < 0 {
				return Float(-args[0].F), nil
			}
			return args[0], nil
		}
		return Value{}, fmt.Errorf("iql: abs expects a number")

	case "tostring":
		if err := want(1); err != nil {
			return Value{}, err
		}
		if args[0].Kind == KindString {
			return args[0], nil
		}
		return Str(args[0].String()), nil

	case "tofloat":
		if err := want(1); err != nil {
			return Value{}, err
		}
		switch args[0].Kind {
		case KindInt:
			return Float(float64(args[0].I)), nil
		case KindFloat:
			return args[0], nil
		}
		return Value{}, fmt.Errorf("iql: tofloat expects a number")
	}
	return Value{}, fmt.Errorf("iql: unknown function %q", n.Fn)
}

func aggregate(fn string, coll Value) (Value, error) {
	els, err := coll.Elements()
	if err != nil {
		return Value{}, fmt.Errorf("iql: %s: %w", fn, err)
	}
	if len(els) == 0 {
		if fn == "sum" {
			return Int(0), nil
		}
		return Null(), nil
	}
	allInt := true
	for _, e := range els {
		switch e.Kind {
		case KindInt:
		case KindFloat:
			allInt = false
		case KindString:
			// max/min over strings are permitted.
			if fn == "max" || fn == "min" {
				return aggregateStrings(fn, els)
			}
			return Value{}, fmt.Errorf("iql: %s over non-numeric element %s", fn, e.Kind)
		default:
			return Value{}, fmt.Errorf("iql: %s over non-numeric element %s", fn, e.Kind)
		}
	}
	switch fn {
	case "sum":
		if allInt {
			var s int64
			for _, e := range els {
				s += e.I
			}
			return Int(s), nil
		}
		var s float64
		for _, e := range els {
			s += e.AsFloat()
		}
		return Float(s), nil
	case "avg":
		var s float64
		for _, e := range els {
			s += e.AsFloat()
		}
		return Float(s / float64(len(els))), nil
	case "max", "min":
		best := els[0]
		for _, e := range els[1:] {
			c, err := e.Compare(best)
			if err != nil {
				return Value{}, fmt.Errorf("iql: %s: %w", fn, err)
			}
			if (fn == "max" && c > 0) || (fn == "min" && c < 0) {
				best = e
			}
		}
		return best, nil
	}
	return Value{}, fmt.Errorf("iql: unknown aggregate %q", fn)
}

func aggregateStrings(fn string, els []Value) (Value, error) {
	best := els[0]
	for _, e := range els[1:] {
		if e.Kind != KindString {
			return Value{}, fmt.Errorf("iql: %s over mixed string/non-string elements", fn)
		}
		c := strings.Compare(e.S, best.S)
		if (fn == "max" && c > 0) || (fn == "min" && c < 0) {
			best = e
		}
	}
	return best, nil
}
