package iql

// RowStream is a pull-based extent: Next advances to the next row and
// reports false at the end or on failure, Row returns the current row
// after a true Next, Err distinguishes exhaustion from failure, and
// Close releases whatever the producer holds (it is safe to call at
// any point, including mid-stream). The evaluator consumes a stream
// through a comprehension generator, so only the producer's buffering
// window is resident instead of the whole extent.
type RowStream interface {
	Next() bool
	Row() Value
	Err() error
	Close() error
}

// StreamExtents is the streaming extension of Extents: ExtentStream
// serves an extent as a RowStream when streaming the referenced object
// is both possible and worthwhile, signalled by ok. An ok=false return
// (with nil error) means the caller should materialise through
// Extents.Extent instead — sources below the spill threshold, cached
// extents, and non-streaming wrappers all take that path, keeping
// their existing semantics byte-identical.
type StreamExtents interface {
	Extents
	ExtentStream(parts []string) (rs RowStream, ok bool, err error)
}
