package iql

import (
	"encoding/json"
	"testing"
)

func TestValueJSONRoundTrip(t *testing.T) {
	vals := []Value{
		Null(),
		Bool(true),
		Bool(false),
		Int(0),
		Int(-7),
		Int(1<<62 + 12345), // beyond float64 precision
		Float(3.5),
		Str(""),
		Str("protein"),
		Void(),
		Any(),
		Tuple(Str("LIB"), Int(1)),
		Bag(),
		BagOf([]Value{
			Tuple(Str("LIB"), Int(1), Str("x")),
			Tuple(Str("SHOP"), Float(0.5)),
			Bag(Int(1), Int(1)),
		}),
	}
	for _, v := range vals {
		buf, err := json.Marshal(EncodeValue(v))
		if err != nil {
			t.Fatalf("marshal %s: %v", v, err)
		}
		var d ValueDTO
		if err := json.Unmarshal(buf, &d); err != nil {
			t.Fatalf("unmarshal %s: %v", v, err)
		}
		got, err := DecodeValue(d)
		if err != nil {
			t.Fatalf("decode %s: %v", v, err)
		}
		if !got.Equal(v) {
			t.Errorf("round trip of %s yielded %s", v, got)
		}
	}
}

func TestDecodeValueRejectsUnknownKind(t *testing.T) {
	if _, err := DecodeValue(ValueDTO{Kind: "blob"}); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := DecodeValue(ValueDTO{Kind: "bag", Items: []ValueDTO{{Kind: "wat"}}}); err == nil {
		t.Fatal("unknown nested kind accepted")
	}
	if _, err := DecodeValue(ValueDTO{}); err == nil {
		t.Fatal("empty kind accepted")
	}
}
