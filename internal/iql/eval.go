package iql

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"
)

// Extents supplies the extent (a bag) of a schema object referenced by
// scheme parts. Implementations include data-source wrappers and the
// query processor's virtual-schema resolver.
type Extents interface {
	Extent(parts []string) (Value, error)
}

// ExtentsFunc adapts a function to the Extents interface.
type ExtentsFunc func(parts []string) (Value, error)

// Extent implements Extents.
func (f ExtentsFunc) Extent(parts []string) (Value, error) { return f(parts) }

// NoExtents is an Extents that knows no schema objects; evaluating a
// SchemeRef against it fails.
var NoExtents Extents = ExtentsFunc(func(parts []string) (Value, error) {
	return Value{}, fmt.Errorf("iql: no extent source for <<%s>>", strings.Join(parts, ", "))
})

// Env is a lexically scoped variable environment. Scopes bind very few
// variables (a generator pattern's worth), so bindings live in parallel
// inline slices: Bind never allocates a map, Lookup is a short linear
// scan, and a scope can be reset and reused across the iterations of a
// generator without reallocating.
type Env struct {
	names  []string
	vals   []Value
	parent *Env
}

// NewEnv returns an empty top-level environment.
func NewEnv() *Env { return &Env{} }

// Child returns a new scope nested in e. Binding storage is allocated
// lazily on first Bind, keeping non-binding scopes cheap.
func (e *Env) Child() *Env { return &Env{parent: e} }

// Bind sets a variable in the current scope, overwriting an existing
// same-scope binding.
func (e *Env) Bind(name string, v Value) {
	for i, n := range e.names {
		if n == name {
			e.vals[i] = v
			return
		}
	}
	e.names = append(e.names, name)
	e.vals = append(e.vals, v)
}

// Lookup finds a variable in the current or any enclosing scope.
func (e *Env) Lookup(name string) (Value, bool) {
	for s := e; s != nil; s = s.parent {
		for i, n := range s.names {
			if n == name {
				return s.vals[i], true
			}
		}
	}
	return Value{}, false
}

// resetBindings drops the scope's bindings but keeps their storage, so
// the evaluator can reuse one child scope across all iterations of a
// generator instead of allocating a scope (and its bindings) per
// element.
func (e *Env) resetBindings() {
	e.names = e.names[:0]
	e.vals = e.vals[:0]
}

// StepBudget is an evaluation step counter shared by several
// Evaluators, so that one logical query keeps a single budget across
// every sub-evaluation it spawns (e.g. the query processor unfolding
// each view definition with its own Evaluator, or the sharded
// comprehension path fanning one evaluation across workers). The
// counter is atomic, so one budget may be shared across the workers of
// a parallel evaluation; one logical query still draws from a single
// pool.
type StepBudget struct {
	// Max bounds the total steps; 0 means unlimited.
	Max  int
	used atomic.Int64
}

// Used returns the steps consumed so far.
func (b *StepBudget) Used() int { return int(b.used.Load()) }

func (b *StepBudget) take() error {
	u := b.used.Add(1)
	if b.Max > 0 && u > int64(b.Max) {
		return fmt.Errorf("iql: evaluation exceeded %d steps", b.Max)
	}
	return nil
}

// addSteps charges n already-performed steps to the budget in one
// atomic update; the sharded evaluation path uses it to flush a
// worker's locally-counted steps when the budget is unlimited (exact
// per-step accounting would serialise workers on the shared counter
// for no enforcement benefit).
func (b *StepBudget) addSteps(n int) {
	if n > 0 {
		b.used.Add(int64(n))
	}
}

// Evaluator evaluates IQL expressions against an extent source. The
// zero-value MaxSteps disables the step limit.
type Evaluator struct {
	// Ext resolves scheme references. If nil, NoExtents is used.
	Ext Extents
	// MaxSteps bounds the number of evaluation steps as a defence
	// against runaway comprehensions; 0 means unlimited. Ignored when
	// Budget is set.
	MaxSteps int
	// Budget, when non-nil, is a step budget shared with other
	// evaluators of the same logical query; it takes precedence over
	// MaxSteps and is NOT reset by Eval.
	Budget *StepBudget
	// Ctx, when non-nil, is polled during evaluation so that long
	// evaluations honour per-request timeouts and cancellation.
	Ctx context.Context
	// Indexes, when non-nil, caches built hash-join indexes across
	// evaluations keyed by source-extent identity, so re-evaluating a
	// join over an unchanged (memoised) extent skips the index build.
	// Share one cache across evaluators over the same extent store.
	Indexes *JoinIndexCache
	// Parallel, when > 1, enables sharded evaluation of large
	// generator scans: the elements are split into contiguous shards
	// evaluated by up to Parallel workers and merged back in shard
	// order, so results are identical to serial evaluation. <= 1 keeps
	// every comprehension on the calling goroutine.
	Parallel int
	// MinShardRows is the smallest generator source that may be
	// sharded; 0 uses DefaultMinShardRows. Smaller scans stay serial:
	// worker handoff would cost more than it buys.
	MinShardRows int
	// Stats, when non-nil, collects sharding telemetry (one ShardStat
	// per sharded generator scan) for tracing and metrics.
	Stats *EvalStats

	steps int
	// genDepth counts the generator loops currently running on this
	// evaluator. Sharding is only attempted at depth zero: a
	// comprehension re-entered once per element of an enclosing
	// generator must not pay a worker-pool spin-up per element.
	genDepth int
	// plans caches per-Comp static analysis and reusable evaluation
	// state (see compCtxFor); keyed by AST node identity, so it stays
	// valid for as long as the expression trees it has seen do.
	plans map[*Comp]*compCtx
}

// NewEvaluator returns an evaluator over the given extent source, with
// a private join-index cache (extents are immutable, so reusing an
// index for an unchanged element array is always sound).
func NewEvaluator(ext Extents) *Evaluator {
	return &Evaluator{Ext: ext, Indexes: NewJoinIndexCache(0)}
}

// Eval evaluates an expression in an environment (nil for empty).
func (ev *Evaluator) Eval(e Expr, env *Env) (Value, error) {
	if env == nil {
		env = NewEnv()
	}
	ev.steps = 0
	if ev.Ctx != nil {
		if err := ev.Ctx.Err(); err != nil {
			return Value{}, fmt.Errorf("iql: evaluation cancelled: %w", err)
		}
	}
	return ev.eval(e, env)
}

// EvalString parses and evaluates IQL source text.
func (ev *Evaluator) EvalString(src string) (Value, error) {
	e, err := Parse(src)
	if err != nil {
		return Value{}, err
	}
	return ev.Eval(e, nil)
}

// Steps returns the evaluation steps charged by the most recent Eval,
// including steps run by sharded workers. When Budget is set, the
// budget's Used count is authoritative instead.
func (ev *Evaluator) Steps() int { return ev.steps }

// ctxCheckInterval is how many evaluation steps pass between context
// polls; a power of two so the check compiles to a mask.
const ctxCheckInterval = 1024

func (ev *Evaluator) step() error {
	ev.steps++
	if ev.Budget != nil {
		if err := ev.Budget.take(); err != nil {
			return err
		}
	} else if ev.MaxSteps > 0 && ev.steps > ev.MaxSteps {
		return fmt.Errorf("iql: evaluation exceeded %d steps", ev.MaxSteps)
	}
	if ev.Ctx != nil && ev.steps&(ctxCheckInterval-1) == 0 {
		if err := ev.Ctx.Err(); err != nil {
			return fmt.Errorf("iql: evaluation cancelled: %w", err)
		}
	}
	return nil
}

func (ev *Evaluator) eval(e Expr, env *Env) (Value, error) {
	if err := ev.step(); err != nil {
		return Value{}, err
	}
	switch n := e.(type) {
	case *Lit:
		return n.Val, nil

	case *Var:
		v, ok := env.Lookup(n.Name)
		if !ok {
			return Value{}, fmt.Errorf("iql: unbound variable %q", n.Name)
		}
		return v, nil

	case *SchemeRef:
		ext := ev.Ext
		if ext == nil {
			ext = NoExtents
		}
		return ext.Extent(n.Parts)

	case *TupleExpr:
		items := make([]Value, len(n.Elems))
		for i, x := range n.Elems {
			v, err := ev.eval(x, env)
			if err != nil {
				return Value{}, err
			}
			items[i] = v
		}
		return Tuple(items...), nil

	case *BagExpr:
		items := make([]Value, len(n.Elems))
		for i, x := range n.Elems {
			v, err := ev.eval(x, env)
			if err != nil {
				return Value{}, err
			}
			items[i] = v
		}
		return BagOf(items), nil

	case *Comp:
		return ev.evalComp(n, env)

	case *Binary:
		return ev.evalBinary(n, env)

	case *Unary:
		x, err := ev.eval(n.X, env)
		if err != nil {
			return Value{}, err
		}
		switch n.Op {
		case "-":
			switch x.Kind {
			case KindInt:
				return Int(-x.I), nil
			case KindFloat:
				return Float(-x.F), nil
			}
			return Value{}, fmt.Errorf("iql: unary '-' needs a number, got %s", x.Kind)
		case "not":
			if x.Kind != KindBool {
				return Value{}, fmt.Errorf("iql: 'not' needs a boolean, got %s", x.Kind)
			}
			return Bool(!x.B), nil
		}
		return Value{}, fmt.Errorf("iql: unknown unary operator %q", n.Op)

	case *Call:
		return ev.evalCall(n, env)

	case *RangeExpr:
		// Evaluating a Range yields its lower bound: the certain
		// answers. Void lowers evaluate to the empty bag.
		lo, err := ev.eval(n.Lo, env)
		if err != nil {
			return Value{}, err
		}
		if lo.Kind == KindVoid {
			return Bag(), nil
		}
		return lo, nil

	case *IfExpr:
		c, err := ev.eval(n.Cond, env)
		if err != nil {
			return Value{}, err
		}
		if c.Kind != KindBool {
			return Value{}, fmt.Errorf("iql: 'if' condition must be boolean, got %s", c.Kind)
		}
		if c.B {
			return ev.eval(n.Then, env)
		}
		return ev.eval(n.Else, env)

	case *LetExpr:
		v, err := ev.eval(n.Val, env)
		if err != nil {
			return Value{}, err
		}
		child := env.Child()
		child.Bind(n.Name, v)
		return ev.eval(n.Body, child)
	}
	return Value{}, fmt.Errorf("iql: cannot evaluate %T", e)
}

// evalComp evaluates a comprehension through a context that memoises
// constant generator sources and hash-indexes equi-join filters (see
// opt.go), keeping multi-generator joins near-linear. Contexts are
// cached per Comp node, so a nested comprehension re-entered once per
// enclosing binding pays its analysis and allocations once.
func (ev *Evaluator) evalComp(c *Comp, env *Env) (Value, error) {
	ctx := ev.compCtxFor(c)
	defer ctx.release()
	var out []Value
	if err := ctx.run(0, env, &out); err != nil {
		return Value{}, err
	}
	return BagOf(out), nil
}

// bindPattern attempts to bind a pattern to a value, reporting whether
// it matched. Arity mismatches on tuple patterns are a non-match rather
// than an error, so heterogeneous bags can be filtered by shape.
func bindPattern(p Pattern, v Value, env *Env) (bool, error) {
	switch pat := p.(type) {
	case *VarPat:
		if pat.Name != "_" {
			env.Bind(pat.Name, v)
		}
		return true, nil
	case *LitPat:
		return pat.Val.Equal(v), nil
	case *TuplePat:
		if v.Kind != KindTuple || len(v.Items) != len(pat.Elems) {
			return false, nil
		}
		for i, sub := range pat.Elems {
			ok, err := bindPattern(sub, v.Items[i], env)
			if err != nil || !ok {
				return ok, err
			}
		}
		return true, nil
	}
	return false, fmt.Errorf("iql: unknown pattern %T", p)
}

func (ev *Evaluator) evalBinary(n *Binary, env *Env) (Value, error) {
	// Short-circuit boolean operators.
	if n.Op == "and" || n.Op == "or" {
		l, err := ev.eval(n.L, env)
		if err != nil {
			return Value{}, err
		}
		if l.Kind != KindBool {
			return Value{}, fmt.Errorf("iql: %q needs booleans, got %s", n.Op, l.Kind)
		}
		if n.Op == "and" && !l.B {
			return Bool(false), nil
		}
		if n.Op == "or" && l.B {
			return Bool(true), nil
		}
		r, err := ev.eval(n.R, env)
		if err != nil {
			return Value{}, err
		}
		if r.Kind != KindBool {
			return Value{}, fmt.Errorf("iql: %q needs booleans, got %s", n.Op, r.Kind)
		}
		return r, nil
	}

	l, err := ev.eval(n.L, env)
	if err != nil {
		return Value{}, err
	}
	r, err := ev.eval(n.R, env)
	if err != nil {
		return Value{}, err
	}

	switch n.Op {
	case "=":
		return Bool(l.Equal(r)), nil
	case "<>":
		return Bool(!l.Equal(r)), nil
	case "<", "<=", ">", ">=":
		c, err := l.Compare(r)
		if err != nil {
			return Value{}, err
		}
		switch n.Op {
		case "<":
			return Bool(c < 0), nil
		case "<=":
			return Bool(c <= 0), nil
		case ">":
			return Bool(c > 0), nil
		default:
			return Bool(c >= 0), nil
		}
	case "++":
		return Union(l, r)
	case "+", "-", "*", "/":
		return arith(n.Op, l, r)
	}
	return Value{}, fmt.Errorf("iql: unknown operator %q", n.Op)
}

func arith(op string, l, r Value) (Value, error) {
	if op == "+" && l.Kind == KindString && r.Kind == KindString {
		return Str(l.S + r.S), nil
	}
	numeric := func(v Value) bool { return v.Kind == KindInt || v.Kind == KindFloat }
	if !numeric(l) || !numeric(r) {
		return Value{}, fmt.Errorf("iql: %q needs numbers, got %s and %s", op, l.Kind, r.Kind)
	}
	if l.Kind == KindInt && r.Kind == KindInt && op != "/" {
		switch op {
		case "+":
			return Int(l.I + r.I), nil
		case "-":
			return Int(l.I - r.I), nil
		case "*":
			return Int(l.I * r.I), nil
		}
	}
	a, b := l.AsFloat(), r.AsFloat()
	switch op {
	case "+":
		return Float(a + b), nil
	case "-":
		return Float(a - b), nil
	case "*":
		return Float(a * b), nil
	case "/":
		if b == 0 {
			return Value{}, fmt.Errorf("iql: division by zero")
		}
		if l.Kind == KindInt && r.Kind == KindInt && l.I%r.I == 0 {
			return Int(l.I / r.I), nil
		}
		return Float(a / b), nil
	}
	return Value{}, fmt.Errorf("iql: unknown arithmetic operator %q", op)
}
