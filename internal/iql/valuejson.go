package iql

import "fmt"

// ValueDTO is a JSON-encodable representation of a Value, used by the
// persistence layers (wrapper snapshots, session stores) to serialise
// extents losslessly: integers keep their full int64 precision instead
// of passing through float64, and Void/Any survive as tagged constants.
type ValueDTO struct {
	Kind  string     `json:"kind"`
	Bool  bool       `json:"bool,omitempty"`
	Int   int64      `json:"int,omitempty"`
	Float float64    `json:"float,omitempty"`
	Str   string     `json:"str,omitempty"`
	Items []ValueDTO `json:"items,omitempty"`
}

// EncodeValue converts a Value to its DTO form.
func EncodeValue(v Value) ValueDTO {
	d := ValueDTO{Kind: v.Kind.String()}
	switch v.Kind {
	case KindBool:
		d.Bool = v.B
	case KindInt:
		d.Int = v.I
	case KindFloat:
		d.Float = v.F
	case KindString:
		d.Str = v.S
	case KindTuple, KindBag:
		d.Items = make([]ValueDTO, len(v.Items))
		for i, it := range v.Items {
			d.Items[i] = EncodeValue(it)
		}
	}
	return d
}

// DecodeValue converts a DTO back to a Value. Unknown kinds are an
// error, never a panic, so malformed snapshots fail loading cleanly.
func DecodeValue(d ValueDTO) (Value, error) {
	switch d.Kind {
	case "null":
		return Null(), nil
	case "bool":
		return Bool(d.Bool), nil
	case "int":
		return Int(d.Int), nil
	case "float":
		return Float(d.Float), nil
	case "string":
		return Str(d.Str), nil
	case "tuple", "bag":
		items := make([]Value, len(d.Items))
		for i, it := range d.Items {
			v, err := DecodeValue(it)
			if err != nil {
				return Value{}, err
			}
			items[i] = v
		}
		if d.Kind == "tuple" {
			return Tuple(items...), nil
		}
		return BagOf(items), nil
	case "Void":
		return Void(), nil
	case "Any":
		return Any(), nil
	}
	return Value{}, fmt.Errorf("iql: unknown value kind %q", d.Kind)
}
