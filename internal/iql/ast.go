package iql

import (
	"strings"
)

// Expr is an IQL expression. Expressions are immutable once built; the
// rewriting helpers in subst.go return fresh trees.
type Expr interface {
	// String renders the expression in parseable IQL source syntax.
	String() string
	isExpr()
}

// Lit is a literal value (including the constants Void and Any).
type Lit struct {
	Val Value
}

// Var is a variable reference bound by a generator, let or function.
type Var struct {
	Name string
}

// SchemeRef references a schema object by scheme, e.g.
// <<protein, accession_num>>. Parts follow hdm.Scheme conventions but
// are kept as a plain slice to avoid a package dependency cycle.
type SchemeRef struct {
	Parts []string
}

// TupleExpr constructs a tuple {e1, …, en}.
type TupleExpr struct {
	Elems []Expr
}

// BagExpr constructs a literal bag [e1, …, en].
type BagExpr struct {
	Elems []Expr
}

// Comp is a comprehension [head | qual1; …; qualn].
type Comp struct {
	Head  Expr
	Quals []Qual
}

// Binary is a binary operation. Op is one of
// "+", "-", "*", "/", "++", "=", "<>", "<", "<=", ">", ">=", "and", "or".
type Binary struct {
	Op   string
	L, R Expr
}

// Unary is a unary operation; Op is "-" or "not".
type Unary struct {
	Op string
	X  Expr
}

// Call applies a built-in function, e.g. count, sum, distinct, member.
type Call struct {
	Fn   string
	Args []Expr
}

// RangeExpr is the query form "Range ql qu" accompanying extend and
// contract transformations: ql and qu bound the extent of the object
// from below and above. Evaluating a RangeExpr yields its lower bound
// (certain answers); the processor inspects bounds explicitly.
type RangeExpr struct {
	Lo, Hi Expr
}

// IfExpr is a conditional "if c then a else b".
type IfExpr struct {
	Cond, Then, Else Expr
}

// LetExpr binds a name: "let x = e1 in e2".
type LetExpr struct {
	Name string
	Val  Expr
	Body Expr
}

func (*Lit) isExpr()       {}
func (*Var) isExpr()       {}
func (*SchemeRef) isExpr() {}
func (*TupleExpr) isExpr() {}
func (*BagExpr) isExpr()   {}
func (*Comp) isExpr()      {}
func (*Binary) isExpr()    {}
func (*Unary) isExpr()     {}
func (*Call) isExpr()      {}
func (*RangeExpr) isExpr() {}
func (*IfExpr) isExpr()    {}
func (*LetExpr) isExpr()   {}

// Qual is a comprehension qualifier: a Generator or a Filter.
type Qual interface {
	String() string
	isQual()
}

// Generator binds a pattern to successive elements of a collection:
// "pattern <- source".
type Generator struct {
	Pat Pattern
	Src Expr
}

// Filter keeps only bindings satisfying a boolean condition.
type Filter struct {
	Cond Expr
}

func (*Generator) isQual() {}
func (*Filter) isQual()    {}

// Pattern is a generator binding pattern.
type Pattern interface {
	String() string
	isPattern()
}

// VarPat binds a variable; the name "_" is a wildcard.
type VarPat struct {
	Name string
}

// TuplePat destructures a tuple component-wise; arity must match.
type TuplePat struct {
	Elems []Pattern
}

// LitPat matches only elements equal to a literal value.
type LitPat struct {
	Val Value
}

func (*VarPat) isPattern()   {}
func (*TuplePat) isPattern() {}
func (*LitPat) isPattern()   {}

// ---- String rendering (parseable round trip) ----

func (e *Lit) String() string { return e.Val.String() }
func (e *Var) String() string { return e.Name }

func (e *SchemeRef) String() string {
	return "<<" + strings.Join(e.Parts, ", ") + ">>"
}

func (e *TupleExpr) String() string {
	parts := make([]string, len(e.Elems))
	for i, x := range e.Elems {
		parts[i] = x.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

func (e *BagExpr) String() string {
	parts := make([]string, len(e.Elems))
	for i, x := range e.Elems {
		parts[i] = x.String()
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

func (e *Comp) String() string {
	quals := make([]string, len(e.Quals))
	for i, q := range e.Quals {
		quals[i] = q.String()
	}
	return "[" + e.Head.String() + " | " + strings.Join(quals, "; ") + "]"
}

func (e *Binary) String() string {
	return "(" + e.L.String() + " " + e.Op + " " + e.R.String() + ")"
}

func (e *Unary) String() string {
	if e.Op == "not" {
		return "(not " + e.X.String() + ")"
	}
	return "(" + e.Op + e.X.String() + ")"
}

func (e *Call) String() string {
	args := make([]string, len(e.Args))
	for i, a := range e.Args {
		args[i] = a.String()
	}
	return e.Fn + "(" + strings.Join(args, ", ") + ")"
}

func (e *RangeExpr) String() string {
	return "Range " + atomString(e.Lo) + " " + atomString(e.Hi)
}

// atomString parenthesises non-atomic bound expressions so that
// "Range ql qu" re-parses unambiguously.
func atomString(e Expr) string {
	switch e.(type) {
	case *Lit, *Var, *SchemeRef, *TupleExpr, *BagExpr, *Comp, *Call:
		return e.String()
	default:
		return "(" + e.String() + ")"
	}
}

func (e *IfExpr) String() string {
	return "if " + e.Cond.String() + " then " + e.Then.String() + " else " + e.Else.String()
}

func (e *LetExpr) String() string {
	return "let " + e.Name + " = " + e.Val.String() + " in " + e.Body.String()
}

func (q *Generator) String() string { return q.Pat.String() + " <- " + q.Src.String() }
func (q *Filter) String() string    { return q.Cond.String() }

func (p *VarPat) String() string { return p.Name }

func (p *TuplePat) String() string {
	parts := make([]string, len(p.Elems))
	for i, e := range p.Elems {
		parts[i] = e.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

func (p *LitPat) String() string { return p.Val.String() }

// IsRange reports whether the expression is a Range query, optionally
// returning its bounds. Transformations whose query part is
// "Range Void Any" are the paper's "trivial" transformations.
func IsRange(e Expr) (lo, hi Expr, ok bool) {
	r, ok := e.(*RangeExpr)
	if !ok {
		return nil, nil, false
	}
	return r.Lo, r.Hi, true
}

// IsVoidAnyRange reports whether the expression is exactly
// "Range Void Any" — no information about the object's extent.
func IsVoidAnyRange(e Expr) bool {
	lo, hi, ok := IsRange(e)
	if !ok {
		return false
	}
	ll, ok1 := lo.(*Lit)
	hl, ok2 := hi.(*Lit)
	return ok1 && ok2 && ll.Val.Kind == KindVoid && hl.Val.Kind == KindAny
}

// VoidAnyRange constructs the trivial query "Range Void Any".
func VoidAnyRange() Expr {
	return &RangeExpr{Lo: &Lit{Val: Void()}, Hi: &Lit{Val: Any()}}
}

// Ref builds a SchemeRef expression from parts.
func Ref(parts ...string) Expr { return &SchemeRef{Parts: parts} }
