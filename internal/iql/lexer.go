package iql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind enumerates lexical token kinds.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokInt
	tokFloat
	tokString
	tokScheme // a full <<...>> scheme reference, Parts carried in tok.parts
	tokLParen
	tokRParen
	tokLBrack
	tokRBrack
	tokLBrace
	tokRBrace
	tokComma
	tokSemi
	tokBar
	tokArrow // <-
	tokOp    // operators: + - * / ++ = <> < <= > >=
)

type token struct {
	kind  tokKind
	text  string
	parts []string // for tokScheme
	pos   int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokScheme:
		return "<<" + strings.Join(t.parts, ", ") + ">>"
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// lexer tokenises IQL source text.
type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex scans the whole input, returning the token stream.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		l.toks = append(l.toks, t)
		if t.kind == tokEOF {
			return l.toks, nil
		}
	}
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) peekByteAt(off int) byte {
	if l.pos+off >= len(l.src) {
		return 0
	}
	return l.src[l.pos+off]
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		// Line comments: -- to end of line.
		if c == '-' && l.peekByteAt(1) == '-' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		return
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

func (l *lexer) next() (token, error) {
	l.skipSpace()
	start := l.pos
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: start}, nil
	}
	c := l.src[l.pos]

	switch {
	case c == '(':
		l.pos++
		return token{kind: tokLParen, text: "(", pos: start}, nil
	case c == ')':
		l.pos++
		return token{kind: tokRParen, text: ")", pos: start}, nil
	case c == '[':
		l.pos++
		return token{kind: tokLBrack, text: "[", pos: start}, nil
	case c == ']':
		l.pos++
		return token{kind: tokRBrack, text: "]", pos: start}, nil
	case c == '{':
		l.pos++
		return token{kind: tokLBrace, text: "{", pos: start}, nil
	case c == '}':
		l.pos++
		return token{kind: tokRBrace, text: "}", pos: start}, nil
	case c == ',':
		l.pos++
		return token{kind: tokComma, text: ",", pos: start}, nil
	case c == ';':
		l.pos++
		return token{kind: tokSemi, text: ";", pos: start}, nil
	case c == '|':
		l.pos++
		return token{kind: tokBar, text: "|", pos: start}, nil
	case c == '\'':
		return l.lexString()
	case c == '<':
		// Longest match first: "<<scheme>>", "<-", "<>", "<=", "<".
		if l.peekByteAt(1) == '<' {
			return l.lexScheme()
		}
		if l.peekByteAt(1) == '-' {
			l.pos += 2
			return token{kind: tokArrow, text: "<-", pos: start}, nil
		}
		if l.peekByteAt(1) == '>' {
			l.pos += 2
			return token{kind: tokOp, text: "<>", pos: start}, nil
		}
		if l.peekByteAt(1) == '=' {
			l.pos += 2
			return token{kind: tokOp, text: "<=", pos: start}, nil
		}
		l.pos++
		return token{kind: tokOp, text: "<", pos: start}, nil
	case c == '>':
		if l.peekByteAt(1) == '=' {
			l.pos += 2
			return token{kind: tokOp, text: ">=", pos: start}, nil
		}
		l.pos++
		return token{kind: tokOp, text: ">", pos: start}, nil
	case c == '=':
		l.pos++
		return token{kind: tokOp, text: "=", pos: start}, nil
	case c == '+':
		if l.peekByteAt(1) == '+' {
			l.pos += 2
			return token{kind: tokOp, text: "++", pos: start}, nil
		}
		l.pos++
		return token{kind: tokOp, text: "+", pos: start}, nil
	case c == '-':
		l.pos++
		return token{kind: tokOp, text: "-", pos: start}, nil
	case c == '*':
		l.pos++
		return token{kind: tokOp, text: "*", pos: start}, nil
	case c == '/':
		l.pos++
		return token{kind: tokOp, text: "/", pos: start}, nil
	case unicode.IsDigit(rune(c)):
		return l.lexNumber()
	case isIdentStart(c):
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		return token{kind: tokIdent, text: l.src[start:l.pos], pos: start}, nil
	}
	return token{}, fmt.Errorf("iql: unexpected character %q at offset %d", string(c), start)
}

func (l *lexer) lexString() (token, error) {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\\' {
			if next := l.peekByteAt(1); next == '\'' || next == '\\' {
				b.WriteByte(next)
				l.pos += 2
				continue
			}
		}
		if c == '\'' {
			l.pos++
			return token{kind: tokString, text: b.String(), pos: start}, nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return token{}, fmt.Errorf("iql: unterminated string starting at offset %d", start)
}

func (l *lexer) lexNumber() (token, error) {
	start := l.pos
	for l.pos < len(l.src) && unicode.IsDigit(rune(l.src[l.pos])) {
		l.pos++
	}
	isFloat := false
	if l.peekByte() == '.' && unicode.IsDigit(rune(l.peekByteAt(1))) {
		isFloat = true
		l.pos++
		for l.pos < len(l.src) && unicode.IsDigit(rune(l.src[l.pos])) {
			l.pos++
		}
	}
	if c := l.peekByte(); c == 'e' || c == 'E' {
		save := l.pos
		l.pos++
		if c := l.peekByte(); c == '+' || c == '-' {
			l.pos++
		}
		if unicode.IsDigit(rune(l.peekByte())) {
			isFloat = true
			for l.pos < len(l.src) && unicode.IsDigit(rune(l.src[l.pos])) {
				l.pos++
			}
		} else {
			l.pos = save
		}
	}
	kind := tokInt
	if isFloat {
		kind = tokFloat
	}
	return token{kind: kind, text: l.src[start:l.pos], pos: start}, nil
}

// lexScheme scans "<<part, part, …>>" collecting raw parts. Parts may be
// arbitrary text excluding ',' and '>', so schemes like
// <<protein, accession num>> (with an embedded space, as in the paper)
// lex correctly.
func (l *lexer) lexScheme() (token, error) {
	start := l.pos
	l.pos += 2 // consume <<
	var parts []string
	var cur strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch c {
		case ',':
			parts = append(parts, strings.TrimSpace(cur.String()))
			cur.Reset()
			l.pos++
		case '>':
			if l.peekByteAt(1) == '>' {
				parts = append(parts, strings.TrimSpace(cur.String()))
				l.pos += 2
				for i, p := range parts {
					if p == "" {
						return token{}, fmt.Errorf("iql: empty scheme part %d at offset %d", i, start)
					}
				}
				return token{kind: tokScheme, parts: parts, pos: start}, nil
			}
			return token{}, fmt.Errorf("iql: single '>' inside scheme at offset %d", l.pos)
		default:
			cur.WriteByte(c)
			l.pos++
		}
	}
	return token{}, fmt.Errorf("iql: unterminated scheme starting at offset %d", start)
}
