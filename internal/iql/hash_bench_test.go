package iql

import (
	"fmt"
	"testing"
)

// Allocation-focused microbenchmarks for the hash-based value runtime:
// the structural hash itself and the three consumers that used to build
// canonical key strings per value (distinct, member filtering, and the
// comprehension join index).

// benchRows builds n {int, int, string} tuples with key locality.
func benchRows(n int) []Value {
	rows := make([]Value, n)
	for i := range rows {
		rows[i] = Tuple(Int(int64(i)), Int(int64(i%17)), Str(fmt.Sprintf("row-%d", i%64)))
	}
	return rows
}

func BenchmarkValueHash(b *testing.B) {
	v := Tuple(Int(42), Str("accession"), Bag(Int(1), Float(2.5), Str("x")), Tuple(Bool(true), Int(-7)))
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= v.Hash()
	}
	_ = sink
}

func BenchmarkDistinct(b *testing.B) {
	bag := BagOf(benchRows(1000))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Distinct(bag); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMemberFilter(b *testing.B) {
	// member() as a comprehension filter: for each element of t, test
	// membership of its key component in a 100-element bag.
	rows := benchRows(300)
	members := make([]Value, 100)
	for i := range members {
		members[i] = Int(int64(i % 17))
	}
	ext := ExtentsFunc(func(parts []string) (Value, error) {
		switch parts[0] {
		case "t":
			return BagOf(rows), nil
		case "m":
			return BagOf(members), nil
		}
		return Value{}, fmt.Errorf("unknown %q", parts[0])
	})
	e := MustParse("count([k | {k, x, s} <- <<t>>; member(<<m>>, x)])")
	ev := NewEvaluator(ext)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.Eval(e, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJoinIndexBuild(b *testing.B) {
	rows := benchRows(1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx := NewValueIndex(len(rows))
		for _, r := range rows {
			idx.Add(r.Items[1], r)
		}
		if idx.Len() != 17 {
			b.Fatalf("index has %d keys", idx.Len())
		}
	}
}
