// Package iql implements IQL, the functional comprehension-based query
// language of the AutoMed system (Jasper et al.), as used by the paper
// "Intersection Schemas as a Dataspace Integration Technique" (EDBT 2014).
//
// IQL values are scalars (integers, floats, strings, booleans), tuples
// written {e1, …, en}, and bags (multisets) written [e1, …, en]. Queries
// are comprehensions [head | qual1; …; qualn] whose qualifiers are
// generators (pattern <- collection) and filters (boolean expressions).
// The distinguished constants Void and Any denote the empty collection
// and the unbounded collection, and Range ql qu pairs a lower and upper
// bound for extend/contract transformations.
package iql

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Kind discriminates Value representations.
type Kind uint8

// Value kinds.
const (
	KindNull Kind = iota // absent value (internal)
	KindBool
	KindInt
	KindFloat
	KindString
	KindTuple
	KindBag
	KindVoid // the constant Void: the empty collection / no information
	KindAny  // the constant Any: the unbounded collection
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindBool:
		return "bool"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindTuple:
		return "tuple"
	case KindBag:
		return "bag"
	case KindVoid:
		return "Void"
	case KindAny:
		return "Any"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Value is an IQL runtime value. The zero Value is the null value.
// Values are treated as immutable; Items must not be mutated after
// construction.
type Value struct {
	Kind  Kind
	B     bool
	I     int64
	F     float64
	S     string
	Items []Value // tuple components or bag elements
}

// Null returns the null value.
func Null() Value { return Value{} }

// Bool returns a boolean value.
func Bool(b bool) Value { return Value{Kind: KindBool, B: b} }

// Int returns an integer value.
func Int(i int64) Value { return Value{Kind: KindInt, I: i} }

// Float returns a floating-point value.
func Float(f float64) Value { return Value{Kind: KindFloat, F: f} }

// String_ returns a string value. (Named with a trailing underscore to
// avoid colliding with the conventional String method.)
func String_(s string) Value { return Value{Kind: KindString, S: s} }

// Str is shorthand for String_.
func Str(s string) Value { return String_(s) }

// Tuple returns a tuple value of the given components.
func Tuple(items ...Value) Value {
	return Value{Kind: KindTuple, Items: items}
}

// Bag returns a bag (multiset) of the given elements.
func Bag(items ...Value) Value {
	return Value{Kind: KindBag, Items: items}
}

// BagOf wraps an existing slice as a bag without copying.
func BagOf(items []Value) Value { return Value{Kind: KindBag, Items: items} }

// Void returns the Void constant (the empty collection).
func Void() Value { return Value{Kind: KindVoid} }

// Any returns the Any constant (the unbounded collection).
func Any() Value { return Value{Kind: KindAny} }

// IsNull reports whether v is the null value.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// valueOverhead approximates the in-memory size of one Value struct
// header (kind + scalar fields + string and slice headers on 64-bit).
const valueOverhead = 64

// Footprint estimates the value's in-memory size in bytes: the struct
// header plus string payloads, recursively over tuple components and
// bag elements. It is the cost measure used by the size-aware caches to
// enforce their byte budgets; an estimate is sufficient because budgets
// bound aggregate memory, not exact allocations.
func (v Value) Footprint() int64 {
	n := int64(valueOverhead + len(v.S))
	for _, it := range v.Items {
		n += it.Footprint()
	}
	return n
}

// IsCollection reports whether v can be enumerated: a bag or Void.
func (v Value) IsCollection() bool { return v.Kind == KindBag || v.Kind == KindVoid }

// Elements returns the elements of a bag; Void yields nil. It is an
// error to call Elements on a non-collection.
func (v Value) Elements() ([]Value, error) {
	switch v.Kind {
	case KindBag:
		return v.Items, nil
	case KindVoid:
		return nil, nil
	case KindAny:
		return nil, fmt.Errorf("iql: cannot enumerate Any")
	default:
		return nil, fmt.Errorf("iql: %s is not a collection", v.Kind)
	}
}

// Len returns the number of elements of a bag (0 for Void) or components
// of a tuple; -1 otherwise.
func (v Value) Len() int {
	switch v.Kind {
	case KindBag, KindTuple:
		return len(v.Items)
	case KindVoid:
		return 0
	default:
		return -1
	}
}

// Key returns a canonical encoding of the value such that two values are
// Equal iff their keys are identical. Bags are canonicalised by sorting
// element keys, so bags compare as multisets.
func (v Value) Key() string {
	var b strings.Builder
	v.writeKey(&b)
	return b.String()
}

func (v Value) writeKey(b *strings.Builder) {
	switch v.Kind {
	case KindNull:
		b.WriteString("N")
	case KindBool:
		if v.B {
			b.WriteString("b1")
		} else {
			b.WriteString("b0")
		}
	case KindInt:
		b.WriteString("i")
		b.WriteString(strconv.FormatInt(v.I, 10))
	case KindFloat:
		// Integral floats compare equal to ints of the same value so
		// that numeric joins behave as users expect.
		if v.F == math.Trunc(v.F) && !math.IsInf(v.F, 0) && math.Abs(v.F) < 1e15 {
			b.WriteString("i")
			b.WriteString(strconv.FormatInt(int64(v.F), 10))
			return
		}
		b.WriteString("f")
		b.WriteString(strconv.FormatFloat(v.F, 'g', -1, 64))
	case KindString:
		b.WriteString("s")
		b.WriteString(strconv.Itoa(len(v.S)))
		b.WriteString(":")
		b.WriteString(v.S)
	case KindTuple:
		b.WriteString("t(")
		for i, it := range v.Items {
			if i > 0 {
				b.WriteString(",")
			}
			it.writeKey(b)
		}
		b.WriteString(")")
	case KindBag:
		keys := make([]string, len(v.Items))
		for i, it := range v.Items {
			keys[i] = it.Key()
		}
		sort.Strings(keys)
		b.WriteString("B[")
		for i, k := range keys {
			if i > 0 {
				b.WriteString(",")
			}
			b.WriteString(k)
		}
		b.WriteString("]")
	case KindVoid:
		b.WriteString("V")
	case KindAny:
		b.WriteString("A")
	}
}

// Equal reports whether two values are equal; bags compare as multisets,
// and integral floats equal same-valued ints. Scalar and tuple
// comparisons take allocation-free fast paths; bags are compared as
// hash-bucketed multisets (see bagEqual) — no canonical key strings are
// built anywhere.
//
// NaN is never equal to anything, itself included, at every nesting
// depth. (The '=' operator always behaved this way for top-level
// scalars; elements inside bags historically compared via canonical
// key strings, which made NaN self-equal there only. Equality is now
// uniformly IEEE-like instead of depth-dependent.)
func (v Value) Equal(w Value) bool {
	switch {
	case v.Kind == KindInt && w.Kind == KindInt:
		return v.I == w.I
	case v.Kind == KindString && w.Kind == KindString:
		return v.S == w.S
	case v.Kind == KindBool && w.Kind == KindBool:
		return v.B == w.B
	case (v.Kind == KindInt || v.Kind == KindFloat) && (w.Kind == KindInt || w.Kind == KindFloat):
		return v.AsFloat() == w.AsFloat()
	case v.Kind == KindTuple && w.Kind == KindTuple:
		if len(v.Items) != len(w.Items) {
			return false
		}
		for i := range v.Items {
			if !v.Items[i].Equal(w.Items[i]) {
				return false
			}
		}
		return true
	}
	if v.Kind != w.Kind {
		// Cross-kind numeric equality was handled above; any other kind
		// mix can never be equal.
		return false
	}
	switch v.Kind {
	case KindBag:
		return bagEqual(v.Items, w.Items)
	case KindNull, KindVoid, KindAny:
		return true
	}
	return false
}

// Compare orders two scalar values. It returns an error for incomparable
// kinds. Numeric kinds compare numerically across int/float.
func (v Value) Compare(w Value) (int, error) {
	if (v.Kind == KindInt || v.Kind == KindFloat) && (w.Kind == KindInt || w.Kind == KindFloat) {
		a, b := v.AsFloat(), w.AsFloat()
		switch {
		case a < b:
			return -1, nil
		case a > b:
			return 1, nil
		default:
			return 0, nil
		}
	}
	if v.Kind == KindString && w.Kind == KindString {
		return strings.Compare(v.S, w.S), nil
	}
	if v.Kind == KindBool && w.Kind == KindBool {
		x, y := 0, 0
		if v.B {
			x = 1
		}
		if w.B {
			y = 1
		}
		return x - y, nil
	}
	return 0, fmt.Errorf("iql: cannot compare %s with %s", v.Kind, w.Kind)
}

// AsFloat converts a numeric value to float64 (0 otherwise).
func (v Value) AsFloat() float64 {
	switch v.Kind {
	case KindInt:
		return float64(v.I)
	case KindFloat:
		return v.F
	}
	return 0
}

// Union returns the bag union (additive multiset union, the AutoMed
// default) of two collections. Void acts as the identity.
func Union(a, b Value) (Value, error) {
	ae, err := a.Elements()
	if err != nil {
		return Value{}, err
	}
	be, err := b.Elements()
	if err != nil {
		return Value{}, err
	}
	out := make([]Value, 0, len(ae)+len(be))
	out = append(out, ae...)
	out = append(out, be...)
	return BagOf(out), nil
}

// Distinct returns a bag with duplicate elements removed, preserving
// first-occurrence order. Duplicates are detected through a hash-
// bucketed ValueSet, so no canonical key strings are built.
func Distinct(v Value) (Value, error) {
	els, err := v.Elements()
	if err != nil {
		return Value{}, err
	}
	seen := NewValueSet(len(els))
	out := make([]Value, 0, len(els))
	for _, e := range els {
		if seen.Add(e) {
			out = append(out, e)
		}
	}
	return BagOf(out), nil
}

// SortBag returns a bag with elements in canonical key order, for
// deterministic display. Each element's key is computed exactly once
// (decorate-sort-undecorate); the comparator never rebuilds keys, so a
// sort costs O(n) key constructions instead of O(n log n). The sort is
// stable, so elements whose keys tie (e.g. 5 and 5.0) keep their bag
// order.
func SortBag(v Value) (Value, error) {
	els, err := v.Elements()
	if err != nil {
		return Value{}, err
	}
	type decorated struct {
		key string
		val Value
	}
	dec := make([]decorated, len(els))
	for i, e := range els {
		dec[i] = decorated{key: e.Key(), val: e}
	}
	sort.SliceStable(dec, func(i, j int) bool { return dec[i].key < dec[j].key })
	out := make([]Value, len(els))
	for i, d := range dec {
		out[i] = d.val
	}
	return BagOf(out), nil
}

// stringEscaper escapes backslashes and quotes in string literals so
// that rendering is injective and re-parseable.
var stringEscaper = strings.NewReplacer(`\`, `\\`, `'`, `\'`)

// String renders the value in IQL source syntax (strings single-quoted,
// tuples braced, bags bracketed).
func (v Value) String() string {
	var b strings.Builder
	v.write(&b)
	return b.String()
}

func (v Value) write(b *strings.Builder) {
	switch v.Kind {
	case KindNull:
		b.WriteString("null")
	case KindBool:
		if v.B {
			b.WriteString("True")
		} else {
			b.WriteString("False")
		}
	case KindInt:
		b.WriteString(strconv.FormatInt(v.I, 10))
	case KindFloat:
		s := strconv.FormatFloat(v.F, 'g', -1, 64)
		b.WriteString(s)
		if !strings.ContainsAny(s, ".eE") {
			b.WriteString(".0")
		}
	case KindString:
		b.WriteByte('\'')
		b.WriteString(stringEscaper.Replace(v.S))
		b.WriteByte('\'')
	case KindTuple:
		b.WriteByte('{')
		for i, it := range v.Items {
			if i > 0 {
				b.WriteString(", ")
			}
			it.write(b)
		}
		b.WriteByte('}')
	case KindBag:
		b.WriteByte('[')
		for i, it := range v.Items {
			if i > 0 {
				b.WriteString(", ")
			}
			it.write(b)
		}
		b.WriteByte(']')
	case KindVoid:
		b.WriteString("Void")
	case KindAny:
		b.WriteString("Any")
	}
}
