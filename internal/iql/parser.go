package iql

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses IQL source text into an expression.
func Parse(src string) (Expr, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{src: src, toks: toks}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, p.errorf("trailing input %s", p.peek())
	}
	return e, nil
}

// MustParse is Parse that panics on error; for fixtures and tests.
func MustParse(src string) Expr {
	e, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return e
}

type parser struct {
	src  string
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) backup()     { p.pos-- }
func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("iql: parse error near offset %d: %s", p.peek().pos, fmt.Sprintf(format, args...))
}

func (p *parser) expect(kind tokKind, what string) (token, error) {
	t := p.next()
	if t.kind != kind {
		return token{}, fmt.Errorf("iql: parse error at offset %d: expected %s, found %s", t.pos, what, t)
	}
	return t, nil
}

// peekIdent reports whether the next token is the given keyword.
func (p *parser) peekIdent(kw string) bool {
	t := p.peek()
	return t.kind == tokIdent && t.text == kw
}

func (p *parser) acceptIdent(kw string) bool {
	if p.peekIdent(kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) acceptOp(op string) bool {
	t := p.peek()
	if t.kind == tokOp && t.text == op {
		p.pos++
		return true
	}
	return false
}

// parseExpr := 'Range' unary unary | 'if' … | 'let' … | orExpr
func (p *parser) parseExpr() (Expr, error) {
	if p.acceptIdent("Range") {
		lo, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		hi, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &RangeExpr{Lo: lo, Hi: hi}, nil
	}
	if p.acceptIdent("if") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if !p.acceptIdent("then") {
			return nil, p.errorf("expected 'then'")
		}
		then, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if !p.acceptIdent("else") {
			return nil, p.errorf("expected 'else'")
		}
		els, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &IfExpr{Cond: cond, Then: then, Else: els}, nil
	}
	if p.acceptIdent("let") {
		name, err := p.expect(tokIdent, "identifier")
		if err != nil {
			return nil, err
		}
		if !p.acceptOp("=") {
			return nil, p.errorf("expected '=' in let")
		}
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if !p.acceptIdent("in") {
			return nil, p.errorf("expected 'in' in let")
		}
		body, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &LetExpr{Name: name.text, Val: val, Body: body}, nil
	}
	return p.parseOr()
}

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptIdent("or") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "or", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.acceptIdent("and") {
		r, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "and", L: l, R: r}
	}
	return l, nil
}

var cmpOps = map[string]bool{"=": true, "<>": true, "<": true, "<=": true, ">": true, ">=": true}

func (p *parser) parseCmp() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.kind == tokOp && cmpOps[t.text] {
		p.pos++
		r, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &Binary{Op: t.text, L: l, R: r}, nil
	}
	return l, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	l, err := p.parseMult()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokOp && (t.text == "+" || t.text == "-" || t.text == "++") {
			p.pos++
			r, err := p.parseMult()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: t.text, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) parseMult() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokOp && (t.text == "*" || t.text == "/") {
			p.pos++
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: t.text, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) parseUnary() (Expr, error) {
	t := p.peek()
	if t.kind == tokOp && t.text == "-" {
		p.pos++
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "-", X: x}, nil
	}
	if p.acceptIdent("not") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "not", X: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.next()
	switch t.kind {
	case tokInt:
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("iql: bad integer %q: %w", t.text, err)
		}
		return &Lit{Val: Int(i)}, nil
	case tokFloat:
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, fmt.Errorf("iql: bad float %q: %w", t.text, err)
		}
		return &Lit{Val: Float(f)}, nil
	case tokString:
		return &Lit{Val: Str(t.text)}, nil
	case tokScheme:
		return &SchemeRef{Parts: t.parts}, nil
	case tokLParen:
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return e, nil
	case tokLBrace:
		return p.parseTupleRest()
	case tokLBrack:
		return p.parseBagOrComp()
	case tokIdent:
		switch t.text {
		case "True":
			return &Lit{Val: Bool(true)}, nil
		case "False":
			return &Lit{Val: Bool(false)}, nil
		case "Void":
			return &Lit{Val: Void()}, nil
		case "Any":
			return &Lit{Val: Any()}, nil
		case "null":
			return &Lit{Val: Null()}, nil
		}
		// Function call or plain variable.
		if p.peek().kind == tokLParen {
			p.pos++
			var args []Expr
			if p.peek().kind != tokRParen {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if p.peek().kind == tokComma {
						p.pos++
						continue
					}
					break
				}
			}
			if _, err := p.expect(tokRParen, "')'"); err != nil {
				return nil, err
			}
			return &Call{Fn: t.text, Args: args}, nil
		}
		return &Var{Name: t.text}, nil
	}
	p.backup()
	return nil, p.errorf("unexpected %s", t)
}

// parseTupleRest parses "{e1, …, en}" after the '{'.
func (p *parser) parseTupleRest() (Expr, error) {
	var elems []Expr
	if p.peek().kind != tokRBrace {
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			elems = append(elems, e)
			if p.peek().kind == tokComma {
				p.pos++
				continue
			}
			break
		}
	}
	if _, err := p.expect(tokRBrace, "'}'"); err != nil {
		return nil, err
	}
	return &TupleExpr{Elems: elems}, nil
}

// parseBagOrComp parses, after '[', either a literal bag "[e1, …]" or a
// comprehension "[head | quals]".
func (p *parser) parseBagOrComp() (Expr, error) {
	if p.peek().kind == tokRBrack {
		p.pos++
		return &BagExpr{}, nil
	}
	head, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	switch p.peek().kind {
	case tokBar:
		p.pos++
		quals, err := p.parseQuals()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRBrack, "']'"); err != nil {
			return nil, err
		}
		return &Comp{Head: head, Quals: quals}, nil
	case tokComma:
		elems := []Expr{head}
		for p.peek().kind == tokComma {
			p.pos++
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			elems = append(elems, e)
		}
		if _, err := p.expect(tokRBrack, "']'"); err != nil {
			return nil, err
		}
		return &BagExpr{Elems: elems}, nil
	case tokRBrack:
		p.pos++
		return &BagExpr{Elems: []Expr{head}}, nil
	}
	return nil, p.errorf("expected '|', ',' or ']' in bag")
}

func (p *parser) parseQuals() ([]Qual, error) {
	var quals []Qual
	for {
		q, err := p.parseQual()
		if err != nil {
			return nil, err
		}
		quals = append(quals, q)
		if p.peek().kind == tokSemi {
			p.pos++
			continue
		}
		return quals, nil
	}
}

// parseQual tries "pattern <- expr" first, backtracking to a filter
// expression if no arrow follows a pattern-shaped prefix.
func (p *parser) parseQual() (Qual, error) {
	save := p.pos
	if pat, err := p.parsePattern(); err == nil {
		if p.peek().kind == tokArrow {
			p.pos++
			src, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			return &Generator{Pat: pat, Src: src}, nil
		}
	}
	p.pos = save
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &Filter{Cond: cond}, nil
}

func (p *parser) parsePattern() (Pattern, error) {
	t := p.next()
	switch t.kind {
	case tokIdent:
		switch t.text {
		case "True":
			return &LitPat{Val: Bool(true)}, nil
		case "False":
			return &LitPat{Val: Bool(false)}, nil
		}
		return &VarPat{Name: t.text}, nil
	case tokInt:
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, err
		}
		return &LitPat{Val: Int(i)}, nil
	case tokFloat:
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, err
		}
		return &LitPat{Val: Float(f)}, nil
	case tokString:
		return &LitPat{Val: Str(t.text)}, nil
	case tokLBrace:
		var elems []Pattern
		if p.peek().kind != tokRBrace {
			for {
				e, err := p.parsePattern()
				if err != nil {
					return nil, err
				}
				elems = append(elems, e)
				if p.peek().kind == tokComma {
					p.pos++
					continue
				}
				break
			}
		}
		if _, err := p.expect(tokRBrace, "'}'"); err != nil {
			return nil, err
		}
		return &TuplePat{Elems: elems}, nil
	}
	p.backup()
	return nil, p.errorf("expected pattern, found %s", t)
}

// FormatQuery normalises IQL source by parsing and re-rendering it;
// useful for stable persistence and display.
func FormatQuery(src string) (string, error) {
	e, err := Parse(src)
	if err != nil {
		return "", err
	}
	return e.String(), nil
}

// ParseAll parses a ";"-free list of newline-separated queries, skipping
// blank lines and comment-only lines. Used by the IQL shell and specs.
func ParseAll(src string) ([]Expr, error) {
	var out []Expr
	for ln, line := range strings.Split(src, "\n") {
		s := strings.TrimSpace(line)
		if s == "" || strings.HasPrefix(s, "--") {
			continue
		}
		e, err := Parse(s)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", ln+1, err)
		}
		out = append(out, e)
	}
	return out, nil
}
