package iql

import "math"

// Structural hashing for IQL values. Hash is the constant-factor
// engine behind the value runtime: Distinct, bag equality, and the
// comprehension hash-join index all bucket values by their 64-bit
// structural hash and confirm candidates with Equal, instead of
// building canonical key strings per value (the old Key()-based hot
// path, which allocated on every probe).
//
// The invariant is the usual one: v.Equal(w) implies
// v.Hash() == w.Hash(). Equality of numbers is cross-kind (an integral
// float equals the same-valued int), so all numbers hash through their
// float64 image; bags compare as multisets, so bag element hashes are
// combined with a commutative fold.

// hashSeed is the fixed FNV-64a offset basis. Hashing is deliberately
// deterministic across processes: hashes never leave the process, but
// determinism keeps test failures reproducible.
const hashSeed uint64 = 14695981039346656037

// hashPrime is the FNV-64 prime, used for the string byte fold.
const hashPrime uint64 = 1099511628211

// Per-kind tag words, fed into the fold so that values of different
// structure (e.g. Void vs the empty bag, 1 vs "1") land in different
// hash families.
const (
	hashTagNull uint64 = 0x9e3779b97f4a7c15 + iota
	hashTagBool
	hashTagNum
	hashTagString
	hashTagTuple
	hashTagBag
	hashTagVoid
	hashTagAny
)

// hashMix finalises a word with the SplitMix64 mixer; it is the
// avalanche step between structural folds.
func hashMix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// hashWord folds one word into a running hash.
func hashWord(h, x uint64) uint64 { return hashMix(h ^ x) }

// Hash returns a 64-bit structural hash of the value, consistent with
// Equal: equal values (bags as multisets, integral floats equal to
// same-valued ints) hash identically. It allocates nothing.
func (v Value) Hash() uint64 { return v.hash(hashSeed) }

func (v Value) hash(h uint64) uint64 {
	switch v.Kind {
	case KindNull:
		return hashWord(h, hashTagNull)
	case KindBool:
		x := uint64(0)
		if v.B {
			x = 1
		}
		return hashWord(hashWord(h, hashTagBool), x)
	case KindInt, KindFloat:
		// All numbers hash through their float64 image because Equal
		// compares int and float cross-kind via AsFloat. Ints beyond
		// 2^53 collide with their float neighbours, which Equal then
		// resolves; -0.0 is normalised to 0.0 so it matches Int(0).
		f := v.AsFloat()
		if f == 0 {
			f = 0
		}
		return hashWord(hashWord(h, hashTagNum), math.Float64bits(f))
	case KindString:
		h = hashWord(h, hashTagString)
		for i := 0; i < len(v.S); i++ {
			h = (h ^ uint64(v.S[i])) * hashPrime
		}
		return hashWord(h, uint64(len(v.S)))
	case KindTuple:
		h = hashWord(h, hashTagTuple)
		for _, it := range v.Items {
			h = it.hash(h)
		}
		return hashWord(h, uint64(len(v.Items)))
	case KindBag:
		// Order-insensitive: each element is hashed from the fixed seed
		// and the (already mixed) element hashes are summed, so any
		// permutation of the same multiset folds to the same word.
		var sum uint64
		for _, it := range v.Items {
			sum += it.hash(hashSeed)
		}
		h = hashWord(h, hashTagBag)
		h = hashWord(h, uint64(len(v.Items)))
		return hashWord(h, sum)
	case KindVoid:
		return hashWord(h, hashTagVoid)
	case KindAny:
		return hashWord(h, hashTagAny)
	}
	return hashWord(h, uint64(v.Kind))
}

// ValueSet is a set of IQL values bucketed by structural hash and
// confirmed by Equal. It replaces the map[string]bool-of-canonical-keys
// idiom: membership tests allocate nothing, and the entries live in one
// flat slice chained through a scalar-valued map, so a set of n values
// costs O(1) allocations instead of O(n) bucket slices for the garbage
// collector to trace. The zero ValueSet is not ready to use; call
// NewValueSet. Not safe for concurrent use.
type ValueSet struct {
	slots   map[uint64]int32
	entries []setEntry
}

// setEntry is one distinct value; next chains entries whose hashes
// collide (-1 ends the chain).
type setEntry struct {
	val  Value
	next int32
}

// NewValueSet returns an empty set sized for about sizeHint elements.
func NewValueSet(sizeHint int) *ValueSet {
	if sizeHint < 0 {
		sizeHint = 0
	}
	return &ValueSet{
		slots:   make(map[uint64]int32, sizeHint),
		entries: make([]setEntry, 0, sizeHint),
	}
}

// Add inserts v and reports whether it was absent (true = newly added).
func (s *ValueSet) Add(v Value) bool {
	h := v.Hash()
	head, ok := s.slots[h]
	if ok {
		for i := head; i >= 0; i = s.entries[i].next {
			if s.entries[i].val.Equal(v) {
				return false
			}
		}
	} else {
		head = -1
	}
	s.entries = append(s.entries, setEntry{val: v, next: head})
	s.slots[h] = int32(len(s.entries) - 1)
	return true
}

// Contains reports whether an Equal value is in the set.
func (s *ValueSet) Contains(v Value) bool {
	head, ok := s.slots[v.Hash()]
	if !ok {
		return false
	}
	for i := head; i >= 0; i = s.entries[i].next {
		if s.entries[i].val.Equal(v) {
			return true
		}
	}
	return false
}

// Len returns the number of distinct values in the set.
func (s *ValueSet) Len() int { return len(s.entries) }

// indexEntry is one distinct key of a ValueIndex. The first row is
// stored inline — joins on near-unique keys (the common case) then
// build the whole index without one rows-slice allocation per key —
// and further rows spill into rest. next chains entries whose hashes
// collide (-1 ends the chain).
type indexEntry struct {
	key   Value
	first Value
	rest  []Value
	next  int32
}

// ValueIndex maps IQL values to the rows filed under them, bucketing by
// structural hash and confirming candidate keys with Equal — the
// hash-join index of the comprehension evaluator. Entries live in one
// flat slice chained through a scalar-valued map (cheap to build, cheap
// for the garbage collector to trace). Add retains key; Probe/Get only
// read it, so probe keys may live in reused scratch buffers. Not safe
// for concurrent use.
type ValueIndex struct {
	slots   map[uint64]int32
	entries []indexEntry
}

// NewValueIndex returns an empty index sized for about sizeHint rows.
func NewValueIndex(sizeHint int) *ValueIndex {
	if sizeHint < 0 {
		sizeHint = 0
	}
	return &ValueIndex{
		slots:   make(map[uint64]int32, sizeHint),
		entries: make([]indexEntry, 0, sizeHint),
	}
}

// Add files row under key. The index retains key, so it must not be
// mutated afterwards.
func (ix *ValueIndex) Add(key, row Value) {
	h := key.Hash()
	head, ok := ix.slots[h]
	if ok {
		for i := head; i >= 0; i = ix.entries[i].next {
			if ix.entries[i].key.Equal(key) {
				ix.entries[i].rest = append(ix.entries[i].rest, row)
				return
			}
		}
	} else {
		head = -1
	}
	ix.entries = append(ix.entries, indexEntry{key: key, first: row, next: head})
	ix.slots[h] = int32(len(ix.entries) - 1)
}

// Probe returns the rows filed under an Equal key without allocating:
// the first row inline and any further rows as a slice; ok reports
// whether the key is present. The key is only read, never retained.
func (ix *ValueIndex) Probe(key Value) (first Value, rest []Value, ok bool) {
	head, found := ix.slots[key.Hash()]
	if !found {
		return Value{}, nil, false
	}
	for i := head; i >= 0; i = ix.entries[i].next {
		if ix.entries[i].key.Equal(key) {
			return ix.entries[i].first, ix.entries[i].rest, true
		}
	}
	return Value{}, nil, false
}

// Get returns all rows filed under an Equal key (nil when absent). It
// allocates the combined slice; the evaluator hot path uses Probe.
func (ix *ValueIndex) Get(key Value) []Value {
	first, rest, ok := ix.Probe(key)
	if !ok {
		return nil
	}
	out := make([]Value, 0, 1+len(rest))
	out = append(out, first)
	return append(out, rest...)
}

// Len returns the number of distinct keys in the index.
func (ix *ValueIndex) Len() int { return len(ix.entries) }

// bagEqual reports multiset equality of two bags' element slices: every
// element of a must occur in b with the same multiplicity. It buckets
// a's elements by hash with counts, then consumes the counts with b's
// elements — no canonical strings, no sorting.
func bagEqual(a, b []Value) bool {
	if len(a) != len(b) {
		return false
	}
	if len(a) == 0 {
		return true
	}
	type slot struct {
		val   Value
		count int
	}
	buckets := make(map[uint64][]slot, len(a))
	for _, v := range a {
		h := v.Hash()
		bucket := buckets[h]
		found := false
		for i := range bucket {
			if bucket[i].val.Equal(v) {
				bucket[i].count++
				found = true
				break
			}
		}
		if !found {
			buckets[h] = append(bucket, slot{val: v, count: 1})
		}
	}
	for _, v := range b {
		h := v.Hash()
		bucket := buckets[h]
		found := false
		for i := range bucket {
			if bucket[i].val.Equal(v) {
				if bucket[i].count == 0 {
					return false
				}
				bucket[i].count--
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}
