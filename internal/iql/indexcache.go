package iql

import "sync"

// JoinIndexCache caches built hash-join indexes across evaluations.
//
// A join index is a pure function of the generator's source elements
// and the join-key component spec, so it can be keyed by the identity
// of the source's element array (extents are immutable and memoised by
// the query processor, which makes the identity stable for exactly as
// long as the extent version is live) plus the spec. One cache shared
// by every evaluator a processor spawns means a large source joined by
// many queries — or by the same query re-evaluated per request — is
// indexed once per extent version instead of once per evaluation.
//
// The keyed element pointer is retained by the cache, so an address can
// never be recycled for a different extent while its entry is live:
// identity collisions are impossible. Entries whose extents were
// invalidated simply go stale and are pushed out by the entry cap.
//
// The cache is safe for concurrent use; concurrent builders of the same
// index race benignly (last insert wins, both indexes are correct).
//
// Because an index (and its retained identity key) keeps the indexed
// extent alive, the cache participates in the system's memory budget:
// SetMaxBytes bounds the summed cost of cached indexes, evicting
// entries beyond it, so byte-budgeted deployments stay bounded even
// when the extent caches themselves have already evicted the source
// data.
type JoinIndexCache struct {
	mu       sync.Mutex
	max      int
	maxBytes int64
	bytes    int64
	entries  map[joinIndexKey]joinIndexEntry
}

// joinIndexEntry pairs a cached index with its approximate byte cost.
type joinIndexEntry struct {
	idx  *ValueIndex
	cost int64
}

// joinIndexKey identifies a source extent (by retained element-array
// identity and length) and a join-key component spec.
type joinIndexKey struct {
	data *Value
	n    int
	spec string
}

// defaultJoinIndexCap bounds a cache to roughly this many indexes; an
// index retains its rows, so the cap also bounds retained extents.
const defaultJoinIndexCap = 128

// NewJoinIndexCache returns a cache holding at most max indexes
// (<= 0 uses a default cap). The entry map is allocated on first
// insert, so an idle cache costs one struct.
func NewJoinIndexCache(max int) *JoinIndexCache {
	if max <= 0 {
		max = defaultJoinIndexCap
	}
	return &JoinIndexCache{max: max}
}

// SetMaxBytes bounds the summed cost of cached indexes (an index's
// cost approximates the footprint of the rows it retains), evicting
// entries while over budget; budget <= 0 removes the bound.
func (c *JoinIndexCache) SetMaxBytes(budget int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.maxBytes = budget
	c.evictLocked()
}

// get returns the cached index for the keyed extent and spec.
func (c *JoinIndexCache) get(key joinIndexKey) (*ValueIndex, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	en, ok := c.entries[key]
	return en.idx, ok
}

// put inserts a built index with its byte cost, evicting arbitrary
// entries while either bound is exceeded (entries are cheap to
// rebuild; map iteration order supplies the victims). An index whose
// cost alone exceeds the byte budget is not cached.
func (c *JoinIndexCache) put(key joinIndexKey, idx *ValueIndex, cost int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.maxBytes > 0 && cost > c.maxBytes {
		return
	}
	if c.entries == nil {
		c.entries = make(map[joinIndexKey]joinIndexEntry)
	}
	if old, ok := c.entries[key]; ok {
		c.bytes -= old.cost
	}
	c.entries[key] = joinIndexEntry{idx: idx, cost: cost}
	c.bytes += cost
	c.evictLocked()
}

// evictLocked drops arbitrary entries until the cache respects its
// entry cap and byte budget. Deleting while ranging is safe, and the
// arbitrary iteration order supplies the victims.
func (c *JoinIndexCache) evictLocked() {
	for k, en := range c.entries {
		if len(c.entries) <= c.max && (c.maxBytes <= 0 || c.bytes <= c.maxBytes) {
			break
		}
		delete(c.entries, k)
		c.bytes -= en.cost
	}
}

// Purge discards every cached index.
func (c *JoinIndexCache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = nil
	c.bytes = 0
}

// Len returns the number of cached indexes.
func (c *JoinIndexCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Bytes returns the summed cost of cached indexes.
func (c *JoinIndexCache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}
