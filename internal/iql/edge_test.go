package iql

import (
	"strings"
	"testing"
)

func TestLexerComments(t *testing.T) {
	v := mustEval(t, "1 + 2 -- trailing comment", NoExtents)
	if !v.Equal(Int(3)) {
		t.Errorf("comment handling broke eval: %s", v)
	}
	v = mustEval(t, "-- leading\n7", NoExtents)
	if !v.Equal(Int(7)) {
		t.Errorf("leading comment: %s", v)
	}
}

func TestStringEscapes(t *testing.T) {
	cases := map[string]string{
		`'plain'`:       "plain",
		`'don\'t'`:      "don't",
		`'back\\slash'`: `back\slash`,
		`'trail\\'`:     `trail\`,
		`'\\\''`:        `\'`,
	}
	for src, want := range cases {
		v := mustEval(t, src, NoExtents)
		if v.Kind != KindString || v.S != want {
			t.Errorf("%s = %q, want %q", src, v.S, want)
		}
		// And re-render round trips.
		back := mustEval(t, v.String(), NoExtents)
		if back.S != want {
			t.Errorf("re-render of %q = %q", want, back.S)
		}
	}
}

func TestSchemeWithSpacesLexes(t *testing.T) {
	// The paper writes <<protein, accession num>> with an embedded
	// space.
	e, err := Parse("[x | {k, x} <- <<protein, accession num>>]")
	if err != nil {
		t.Fatal(err)
	}
	refs := SchemeRefs(e)
	if len(refs) != 1 || refs[0][1] != "accession num" {
		t.Errorf("refs = %v", refs)
	}
}

func TestFloatLexing(t *testing.T) {
	cases := map[string]Value{
		"1.5":    Float(1.5),
		"2e3":    Float(2000),
		"2.5e-1": Float(0.25),
		"7":      Int(7),
	}
	for src, want := range cases {
		v := mustEval(t, src, NoExtents)
		if !v.Equal(want) {
			t.Errorf("%s = %s, want %s", src, v, want)
		}
	}
	// "2e" is an identifier error, not a float.
	if _, err := Parse("2e"); err == nil {
		t.Error("2e parsed")
	}
}

func TestParseAll(t *testing.T) {
	src := "1 + 1\n-- a comment\n\n[k | k <- <<t>>]\n"
	es, err := ParseAll(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(es) != 2 {
		t.Fatalf("ParseAll = %d exprs", len(es))
	}
	if _, err := ParseAll("ok\n[broken"); err == nil {
		t.Error("ParseAll accepted broken line")
	}
	if err != nil && !strings.Contains(err.Error(), "line") {
		t.Errorf("error lacks line number: %v", err)
	}
}

func TestNestedComprehensions(t *testing.T) {
	ext := testExtents()
	// A comprehension in the head of another.
	v := mustEval(t, "[{k, count([h | {h, p} <- <<hit, protein>>; p = k])} | k <- <<protein>>]", ext)
	want := Bag(
		Tuple(Int(1), Int(2)),
		Tuple(Int(2), Int(1)),
		Tuple(Int(3), Int(0)),
	)
	if !v.Equal(want) {
		t.Errorf("nested = %s, want %s", v, want)
	}
}

func TestLetAndIfInsideComprehension(t *testing.T) {
	ext := testExtents()
	v := mustEval(t,
		"[if k > 1 then 'big' else 'small' | k <- <<protein>>]", ext)
	if !v.Equal(Bag(Str("small"), Str("big"), Str("big"))) {
		t.Errorf("if in head = %s", v)
	}
	v = mustEval(t, "let n = 2 in [k | k <- <<protein>>; k >= n]", ext)
	if !v.Equal(Bag(Int(2), Int(3))) {
		t.Errorf("let around comp = %s", v)
	}
}

func TestGeneratorOverDependentSource(t *testing.T) {
	// The inner generator's source depends on the outer binding: the
	// optimiser must not memoise it.
	ext := testExtents()
	v := mustEval(t, "[x | k <- <<protein>>; x <- [k, k * 10]]", ext)
	want := Bag(Int(1), Int(10), Int(2), Int(20), Int(3), Int(30))
	if !v.Equal(want) {
		t.Errorf("dependent source = %s", v)
	}
}

func TestJoinOnLaterNonAdjacentFilter(t *testing.T) {
	// Equality filter separated from its generator by another filter:
	// first filter consumed by index, second evaluated normally.
	ext := testExtents()
	v := mustEval(t,
		"[h | {k, x} <- <<protein, acc>>; {h, p} <- <<hit, protein>>; p = k; h > 10]", ext)
	if !v.Equal(Bag(Int(11), Int(12))) {
		t.Errorf("join + residual filter = %s", v)
	}
}

func TestUnionOperatorWithVoid(t *testing.T) {
	v := mustEval(t, "Void ++ [1] ++ Void", NoExtents)
	if !v.Equal(Bag(Int(1))) {
		t.Errorf("Void union = %s", v)
	}
}

func TestAggregateEdgeCases(t *testing.T) {
	cases := map[string]Value{
		"sum([])":         Int(0),
		"count([])":       Int(0),
		"sum([1, 2.5])":   Float(3.5),
		"max(['a', 'b'])": Str("b"),
		"min(['a', 'b'])": Str("a"),
	}
	for src, want := range cases {
		v := mustEval(t, src, NoExtents)
		if !v.Equal(want) {
			t.Errorf("%s = %s, want %s", src, v, want)
		}
	}
	// avg/max/min of empty are null.
	for _, src := range []string{"avg([])", "max([])", "min([])"} {
		v := mustEval(t, src, NoExtents)
		if !v.IsNull() {
			t.Errorf("%s = %s, want null", src, v)
		}
	}
	// Mixed-kind aggregates error.
	ev := NewEvaluator(NoExtents)
	if _, err := ev.EvalString("sum(['a', 1])"); err == nil {
		t.Error("sum over mixed kinds succeeded")
	}
	if _, err := ev.EvalString("max(['a', 1])"); err == nil {
		t.Error("max over mixed kinds succeeded")
	}
}

func TestCompareEdgeCases(t *testing.T) {
	if _, err := Int(1).Compare(Str("a")); err == nil {
		t.Error("cross-kind Compare succeeded")
	}
	c, err := Int(1).Compare(Float(1.5))
	if err != nil || c >= 0 {
		t.Errorf("numeric cross Compare = %d %v", c, err)
	}
	c, err = Bool(false).Compare(Bool(true))
	if err != nil || c >= 0 {
		t.Errorf("bool Compare = %d %v", c, err)
	}
}
