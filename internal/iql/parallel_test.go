package iql

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"
)

// parallelExtents builds extents large enough to shard: n proteins
// with accession tuples and a hit relation joining back to proteins.
func parallelExtents(n int) Extents {
	prot := make([]Value, 0, n)
	acc := make([]Value, 0, n)
	hits := make([]Value, 0, n)
	for i := 0; i < n; i++ {
		prot = append(prot, Int(int64(i)))
		acc = append(acc, Tuple(Int(int64(i)), Str(fmt.Sprintf("P%d", i%7))))
		hits = append(hits, Tuple(Int(int64(i+1000)), Int(int64(i%n))))
	}
	return ExtentsFunc(func(parts []string) (Value, error) {
		switch strings.Join(parts, ",") {
		case "protein":
			return BagOf(prot), nil
		case "protein,acc":
			return BagOf(acc), nil
		case "hit,protein":
			return BagOf(hits), nil
		}
		return Value{}, fmt.Errorf("no extent %v", parts)
	})
}

// parallelQueries is the shard-sensitive suite: plain scans, filters,
// projections, equi-joins (index probe path), nested comprehensions,
// aggregates and distinct over sharded inner comps.
var parallelQueries = []string{
	"[k | k <- <<protein>>]",
	"[k | k <- <<protein>>; k > 100]",
	"[{k, k * 2} | k <- <<protein>>]",
	"[x | {k, x} <- <<protein, acc>>; x = 'P3']",
	"[{h, x} | {h, p} <- <<hit, protein>>; {k, x} <- <<protein, acc>>; p = k]",
	"count([k | k <- <<protein>>; k > 10])",
	"distinct([x | {k, x} <- <<protein, acc>>])",
	"[count([j | j <- <<protein>>; j < k]) | k <- <<protein>>; k < 70]",
	"sort([x | {k, x} <- <<protein, acc>>; k > 50])",
}

// TestParallelMatchesSerial asserts the sharded path returns byte-
// identical results (element order included) to serial evaluation.
func TestParallelMatchesSerial(t *testing.T) {
	ext := parallelExtents(500)
	for _, src := range parallelQueries {
		serial := NewEvaluator(ext)
		want, err := serial.EvalString(src)
		if err != nil {
			t.Fatalf("serial %q: %v", src, err)
		}
		for _, workers := range []int{2, 3, 8} {
			par := NewEvaluator(ext)
			par.Parallel = workers
			par.MinShardRows = 16 // force sharding on test-sized extents
			got, err := par.EvalString(src)
			if err != nil {
				t.Fatalf("parallel(%d) %q: %v", workers, src, err)
			}
			if got.String() != want.String() {
				t.Errorf("parallel(%d) %q diverged:\n  serial   %s\n  parallel %s",
					workers, src, want, got)
			}
		}
	}
}

// TestParallelStepAccounting asserts the sharded path charges exactly
// the serial step count, through both counters: Evaluator.Used after a
// plain run, and a shared StepBudget.
func TestParallelStepAccounting(t *testing.T) {
	ext := parallelExtents(300)
	for _, src := range parallelQueries {
		serial := NewEvaluator(ext)
		if _, err := serial.EvalString(src); err != nil {
			t.Fatalf("serial %q: %v", src, err)
		}
		wantSteps := serial.Steps()

		par := NewEvaluator(ext)
		par.Parallel = 4
		par.MinShardRows = 16
		if _, err := par.EvalString(src); err != nil {
			t.Fatalf("parallel %q: %v", src, err)
		}
		if got := par.Steps(); got != wantSteps {
			t.Errorf("%q: parallel used %d steps, serial %d", src, got, wantSteps)
		}

		budget := &StepBudget{}
		withBudget := NewEvaluator(ext)
		withBudget.Parallel = 4
		withBudget.MinShardRows = 16
		withBudget.Budget = budget
		if _, err := withBudget.EvalString(src); err != nil {
			t.Fatalf("budget parallel %q: %v", src, err)
		}
		if got := budget.Used(); got != wantSteps {
			t.Errorf("%q: shared budget used %d steps, serial %d", src, got, wantSteps)
		}
	}
}

// TestParallelStepLimit asserts a step bound trips in sharded mode
// with the same error text as serial, via MaxSteps and via a shared
// budget.
func TestParallelStepLimit(t *testing.T) {
	ext := parallelExtents(400)
	src := "[k | k <- <<protein>>]"

	serial := &Evaluator{Ext: ext, MaxSteps: 50}
	_, serialErr := serial.EvalString(src)
	if serialErr == nil {
		t.Fatal("serial under MaxSteps=50 succeeded, want step-limit error")
	}

	par := &Evaluator{Ext: ext, MaxSteps: 50, Parallel: 4, MinShardRows: 16}
	_, err := par.EvalString(src)
	if err == nil || err.Error() != serialErr.Error() {
		t.Fatalf("parallel MaxSteps error = %v, want %v", err, serialErr)
	}

	par = &Evaluator{Ext: ext, Budget: &StepBudget{Max: 50}, Parallel: 4, MinShardRows: 16}
	if _, err := par.EvalString(src); err == nil || !strings.Contains(err.Error(), "exceeded 50 steps") {
		t.Fatalf("parallel Budget error = %v, want step-limit error", err)
	}
}

// TestParallelCancelMidShard cancels evaluation while workers are mid-
// scan and asserts a prompt cancellation error and no leaked worker
// goroutines.
func TestParallelCancelMidShard(t *testing.T) {
	before := runtime.NumGoroutine()

	// A slow extent resolution inside the sharded loop gives the
	// cancellation a wide window: the nested comprehension re-resolves
	// <<protein>> per element through the locked extents.
	n := 0
	slow := ExtentsFunc(func(parts []string) (Value, error) {
		n++
		if n > 2 {
			time.Sleep(200 * time.Microsecond)
		}
		els := make([]Value, 400)
		for i := range els {
			els[i] = Int(int64(i))
		}
		return BagOf(els), nil
	})

	ctx, cancel := context.WithCancel(context.Background())
	ev := NewEvaluator(slow)
	ev.Ctx = ctx
	ev.Parallel = 4
	ev.MinShardRows = 16
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := ev.EvalString("[count([j | j <- <<protein>>; j < k]) | k <- <<protein>>]")
	if err == nil {
		// The query may legitimately finish before the cancel lands on
		// fast machines; only a hung or silent run is a failure.
		t.Skip("evaluation completed before cancellation landed")
	}
	if !strings.Contains(err.Error(), "cancel") {
		t.Fatalf("got %v, want cancellation error", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("cancellation took %v, want prompt exit", d)
	}

	assertNoGoroutineLeak(t, before)
}

// assertNoGoroutineLeak waits for the goroutine count to return to at
// most base (with headroom for runtime helpers), failing after 2s.
func assertNoGoroutineLeak(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	var now int
	for {
		now = runtime.NumGoroutine()
		if now <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("goroutine leak: %d before, %d after", base, now)
}

// TestParallelErrorPropagation asserts a mid-shard evaluation error
// surfaces and halts the pool.
func TestParallelErrorPropagation(t *testing.T) {
	before := runtime.NumGoroutine()
	ext := parallelExtents(400)
	ev := NewEvaluator(ext)
	ev.Parallel = 4
	ev.MinShardRows = 16
	// Adding an int to a string fails for every element.
	_, err := ev.EvalString("[k + 'x' | k <- <<protein>>]")
	if err == nil {
		t.Fatal("want type error from sharded evaluation")
	}
	assertNoGoroutineLeak(t, before)
}

// TestParallelSerialFallback asserts small scans and nested generator
// loops stay serial (no pool-per-element blowup).
func TestParallelSerialFallback(t *testing.T) {
	ev := NewEvaluator(parallelExtents(500))
	ev.Parallel = 4
	ev.MinShardRows = 16
	ev.Stats = &EvalStats{}
	// Outer scan shards; the nested comprehension runs inside worker
	// generator loops and must not shard again.
	if _, err := ev.EvalString("[count([j | j <- <<protein>>; j = k]) | k <- <<protein>>]"); err != nil {
		t.Fatal(err)
	}
	for _, st := range ev.Stats.Sharded() {
		if st.Rows != 500 {
			t.Errorf("sharded a %d-row scan; only the 500-row outer scan should shard", st.Rows)
		}
	}
	if len(ev.Stats.Sharded()) == 0 {
		t.Fatal("outer scan did not shard")
	}

	small := NewEvaluator(parallelExtents(10))
	small.Parallel = 4
	small.MinShardRows = 16
	small.Stats = &EvalStats{}
	if _, err := small.EvalString("[k | k <- <<protein>>]"); err != nil {
		t.Fatal(err)
	}
	if n := len(small.Stats.Sharded()); n != 0 {
		t.Errorf("10-row scan sharded %d times, want serial fallback", n)
	}
}

// TestShardBoundsPartition asserts shard bounds exactly tile [0, n).
func TestShardBoundsPartition(t *testing.T) {
	for _, n := range []int{1, 2, 64, 100, 1000, 12345} {
		for _, shards := range []int{1, 2, 3, 7, 16} {
			if shards > n {
				continue
			}
			prev := 0
			for s := 0; s < shards; s++ {
				lo, hi := shardBounds(n, shards, s)
				if lo != prev || hi < lo {
					t.Fatalf("shardBounds(%d, %d, %d) = [%d, %d), want lo %d", n, shards, s, lo, hi, prev)
				}
				prev = hi
			}
			if prev != n {
				t.Fatalf("shardBounds(%d, %d, ...) covered [0, %d), want [0, %d)", n, shards, prev, n)
			}
		}
	}
}

// TestShardPlan sanity-checks worker/shard selection.
func TestShardPlan(t *testing.T) {
	cases := []struct {
		n, parallel, min        int
		wantWorkers, wantShards int
	}{
		{1000, 8, 64, 8, 15},  // maxShards 15 caps the oversplit
		{128, 8, 64, 2, 2},    // two minimum shards, two workers
		{10000, 4, 64, 4, 16}, // full oversplit: 4 workers x 4
		{200, 2, 64, 2, 3},
	}
	for _, c := range cases {
		w, s := shardPlan(c.n, c.parallel, c.min)
		if w != c.wantWorkers || s != c.wantShards {
			t.Errorf("shardPlan(%d, %d, %d) = (%d, %d), want (%d, %d)",
				c.n, c.parallel, c.min, w, s, c.wantWorkers, c.wantShards)
		}
	}
}
