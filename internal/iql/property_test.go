package iql

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// genValue generates random IQL values of bounded depth.
func genValue(r *rand.Rand, depth int) Value {
	max := 7
	if depth <= 0 {
		max = 5
	}
	switch r.Intn(max) {
	case 0:
		return Int(int64(r.Intn(200) - 100))
	case 1:
		return Float(float64(r.Intn(1000)) / 16)
	case 2:
		return Str(randWord(r))
	case 3:
		return Bool(r.Intn(2) == 0)
	case 4:
		return Void()
	case 5:
		n := r.Intn(3)
		items := make([]Value, n)
		for i := range items {
			items[i] = genValue(r, depth-1)
		}
		return Tuple(items...)
	default:
		n := r.Intn(3)
		items := make([]Value, n)
		for i := range items {
			items[i] = genValue(r, depth-1)
		}
		return BagOf(items)
	}
}

func randWord(r *rand.Rand) string {
	const letters = "abcxyz_ '\\"
	n := r.Intn(8)
	b := make([]byte, n)
	for i := range b {
		b[i] = letters[r.Intn(len(letters))]
	}
	return string(b)
}

type genVal struct{ v Value }

func (genVal) Generate(r *rand.Rand, size int) reflect.Value {
	return reflect.ValueOf(genVal{v: genValue(r, 3)})
}

func TestValueEqualMatchesKeyProperty(t *testing.T) {
	f := func(a, b genVal) bool {
		return a.v.Equal(b.v) == (a.v.Key() == b.v.Key())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestValueEqualReflexiveSymmetricProperty(t *testing.T) {
	f := func(a, b genVal) bool {
		if !a.v.Equal(a.v) {
			return false
		}
		return a.v.Equal(b.v) == b.v.Equal(a.v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestBagUnionPropertiesProperty(t *testing.T) {
	mkBag := func(g genVal) Value {
		if g.v.Kind == KindBag || g.v.Kind == KindVoid {
			return g.v
		}
		return Bag(g.v)
	}
	commutative := func(a, b genVal) bool {
		x, y := mkBag(a), mkBag(b)
		u1, err1 := Union(x, y)
		u2, err2 := Union(y, x)
		if err1 != nil || err2 != nil {
			return false
		}
		return u1.Equal(u2)
	}
	if err := quick.Check(commutative, &quick.Config{MaxCount: 500}); err != nil {
		t.Errorf("commutativity: %v", err)
	}
	associative := func(a, b, c genVal) bool {
		x, y, z := mkBag(a), mkBag(b), mkBag(c)
		ab, _ := Union(x, y)
		abc1, _ := Union(ab, z)
		bc, _ := Union(y, z)
		abc2, _ := Union(x, bc)
		return abc1.Equal(abc2)
	}
	if err := quick.Check(associative, &quick.Config{MaxCount: 500}); err != nil {
		t.Errorf("associativity: %v", err)
	}
	identity := func(a genVal) bool {
		x := mkBag(a)
		u, err := Union(x, Void())
		if err != nil {
			return false
		}
		els, _ := x.Elements()
		return u.Equal(BagOf(els))
	}
	if err := quick.Check(identity, &quick.Config{MaxCount: 500}); err != nil {
		t.Errorf("identity: %v", err)
	}
	cardinality := func(a, b genVal) bool {
		x, y := mkBag(a), mkBag(b)
		u, _ := Union(x, y)
		ex, _ := x.Elements()
		ey, _ := y.Elements()
		return u.Len() == len(ex)+len(ey)
	}
	if err := quick.Check(cardinality, &quick.Config{MaxCount: 500}); err != nil {
		t.Errorf("cardinality: %v", err)
	}
}

func TestDistinctIdempotentProperty(t *testing.T) {
	f := func(a genVal) bool {
		v := a.v
		if v.Kind != KindBag && v.Kind != KindVoid {
			v = Bag(v)
		}
		d1, err := Distinct(v)
		if err != nil {
			return false
		}
		d2, err := Distinct(d1)
		if err != nil {
			return false
		}
		return d1.Equal(d2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestValueStringParsesBackProperty(t *testing.T) {
	f := func(a genVal) bool {
		if a.v.IsNull() || containsNull(a.v) {
			return true // null has no literal syntax inside collections
		}
		e, err := Parse(a.v.String())
		if err != nil {
			return false
		}
		ev := NewEvaluator(NoExtents)
		got, err := ev.Eval(e, nil)
		if err != nil {
			return false
		}
		// Void parses back as the Void constant which evaluates to
		// itself; an empty bag stays an empty bag.
		return got.Equal(a.v) || (a.v.Kind == KindVoid && got.Kind == KindVoid)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 800}); err != nil {
		t.Error(err)
	}
}

func containsNull(v Value) bool {
	if v.IsNull() {
		return true
	}
	for _, it := range v.Items {
		if containsNull(it) {
			return true
		}
	}
	return false
}

// TestOptimizerEquivalenceProperty checks that the hash-join optimiser
// produces exactly the same bags as naive nested-loop evaluation, over
// randomised join data and a family of join-shaped comprehensions.
func TestOptimizerEquivalenceProperty(t *testing.T) {
	queries := []string{
		"[{a, c} | {a, x} <- <<r>>; {c, y} <- <<s>>; y = x]",
		"[{a, c} | {a, x} <- <<r>>; {c, y} <- <<s>>; x = y; c > 0]",
		"[{a, b, c} | {a, x} <- <<r>>; {b, y} <- <<s>>; y = x; {c, z} <- <<r>>; z = y]",
		"[c | a <- <<k>>; {c, y} <- <<s>>; y = a]",
		"[{a, c} | {a, x} <- <<r>>; {c, x2} <- <<s>>; x2 = x; x2 > 1]",
	}
	// naiveEval evaluates without the optimiser by wrapping every
	// generator source in an identity comprehension dependent on an
	// outer variable? Simpler: compare against a reference
	// implementation built here.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		mk := func(n, keyRange int) Value {
			items := make([]Value, n)
			for i := range items {
				items[i] = Tuple(Int(int64(i)), Int(int64(r.Intn(keyRange))))
			}
			return BagOf(items)
		}
		rBag := mk(1+r.Intn(20), 5)
		sBag := mk(1+r.Intn(20), 5)
		kBag := func() Value {
			items := make([]Value, 1+r.Intn(10))
			for i := range items {
				items[i] = Int(int64(r.Intn(5)))
			}
			return BagOf(items)
		}()
		ext := ExtentsFunc(func(parts []string) (Value, error) {
			switch parts[0] {
			case "r":
				return rBag, nil
			case "s":
				return sBag, nil
			case "k":
				return kBag, nil
			}
			return Value{}, &unknownErr{parts[0]}
		})
		for _, q := range queries {
			e := MustParse(q)
			opt, err := NewEvaluator(ext).Eval(e, nil)
			if err != nil {
				return false
			}
			ref, err := referenceEval(e.(*Comp), ext)
			if err != nil {
				return false
			}
			if !opt.Equal(ref) {
				t.Logf("mismatch for %s: opt=%s ref=%s", q, opt, ref)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150, Values: func(vs []reflect.Value, r *rand.Rand) {
		vs[0] = reflect.ValueOf(r.Int63())
	}}); err != nil {
		t.Error(err)
	}
}

// referenceEval is a deliberately naive comprehension evaluator used as
// the oracle for optimiser equivalence.
func referenceEval(c *Comp, ext Extents) (Value, error) {
	ev := NewEvaluator(ext)
	var out []Value
	var rec func(i int, env *Env) error
	rec = func(i int, env *Env) error {
		if i == len(c.Quals) {
			v, err := ev.eval(c.Head, env)
			if err != nil {
				return err
			}
			out = append(out, v)
			return nil
		}
		switch q := c.Quals[i].(type) {
		case *Filter:
			v, err := ev.eval(q.Cond, env)
			if err != nil {
				return err
			}
			if v.Kind == KindBool && v.B {
				return rec(i+1, env)
			}
			return nil
		case *Generator:
			src, err := ev.eval(q.Src, env)
			if err != nil {
				return err
			}
			els, err := src.Elements()
			if err != nil {
				return err
			}
			for _, el := range els {
				child := env.Child()
				ok, err := bindPattern(q.Pat, el, child)
				if err != nil {
					return err
				}
				if !ok {
					continue
				}
				if err := rec(i+1, child); err != nil {
					return err
				}
			}
			return nil
		}
		return nil
	}
	if err := rec(0, NewEnv()); err != nil {
		return Value{}, err
	}
	return BagOf(out), nil
}
