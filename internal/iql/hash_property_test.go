package iql

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// Property tests for the hash-based value runtime: hash–equality
// consistency, and equivalence of the hash-bucketed Distinct / SortBag
// / member implementations with the old canonical-key-string reference
// implementations they replaced.

// permuteBags returns a deep copy of v with every bag's element order
// shuffled: a multiset-equal but structurally reordered value.
func permuteBags(r *rand.Rand, v Value) Value {
	if len(v.Items) == 0 {
		return v
	}
	items := make([]Value, len(v.Items))
	for i, it := range v.Items {
		items[i] = permuteBags(r, it)
	}
	if v.Kind == KindBag {
		r.Shuffle(len(items), func(i, j int) { items[i], items[j] = items[j], items[i] })
	}
	cp := v
	cp.Items = items
	return cp
}

func TestHashEqualityConsistencyProperty(t *testing.T) {
	// v.Equal(w) must imply v.Hash() == w.Hash(). Random pairs rarely
	// collide, so also check each value against a bag-permuted copy of
	// itself (multiset-equal by construction).
	f := func(a, b genVal, seed int64) bool {
		if a.v.Equal(b.v) && a.v.Hash() != b.v.Hash() {
			t.Logf("equal values hash apart: %s vs %s", a.v, b.v)
			return false
		}
		perm := permuteBags(rand.New(rand.NewSource(seed)), a.v)
		if !a.v.Equal(perm) {
			t.Logf("bag permutation broke equality: %s vs %s", a.v, perm)
			return false
		}
		if a.v.Hash() != perm.Hash() {
			t.Logf("bag permutation changed hash: %s", a.v)
			return false
		}
		// Determinism: hashing is a pure function.
		return a.v.Hash() == a.v.Hash()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestHashNumericCrossKindProperty(t *testing.T) {
	f := func(n int32) bool {
		i, fl := Int(int64(n)), Float(float64(n))
		return i.Equal(fl) && i.Hash() == fl.Hash()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
	if Int(0).Hash() != Float(negZero()).Hash() {
		t.Error("0 and -0.0 hash apart but compare equal")
	}
}

func negZero() float64 { z := 0.0; return -z }

// TestNaNNeverEqual pins the NaN policy: NaN compares unequal to
// everything, itself included, at every depth. The '=' operator always
// treated top-level NaN this way; the hash-based bag comparison made
// the behaviour uniform (canonical key strings used to render every
// NaN as "fNaN", so NaN was self-equal inside bags only).
func TestNaNNeverEqual(t *testing.T) {
	nan := Float(math.NaN())
	if nan.Equal(nan) {
		t.Error("NaN compares equal to itself")
	}
	if Bag(nan).Equal(Bag(nan)) {
		t.Error("bags of NaN compare equal")
	}
	if Tuple(nan).Equal(Tuple(nan)) {
		t.Error("tuples of NaN compare equal")
	}
	d, err := Distinct(Bag(nan, nan))
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 {
		t.Errorf("distinct deduplicated NaN: %s", d)
	}
}

// keyDistinct is the old canonical-key-string Distinct, kept as the
// reference implementation.
func keyDistinct(els []Value) []Value {
	seen := make(map[string]bool, len(els))
	out := make([]Value, 0, len(els))
	for _, e := range els {
		k := e.Key()
		if !seen[k] {
			seen[k] = true
			out = append(out, e)
		}
	}
	return out
}

// keyMember is the old canonical-key-string member scan.
func keyMember(els []Value, v Value) bool {
	k := v.Key()
	for _, e := range els {
		if e.Key() == k {
			return true
		}
	}
	return false
}

// asBag coerces a random value to a collection.
func asBag(g genVal) Value {
	if g.v.Kind == KindBag || g.v.Kind == KindVoid {
		return g.v
	}
	return Bag(g.v)
}

func TestDistinctMatchesKeyReferenceProperty(t *testing.T) {
	f := func(a genVal, dup genVal, seed int64) bool {
		bag := asBag(a)
		els, _ := bag.Elements()
		// Salt with duplicates so dedup actually fires.
		r := rand.New(rand.NewSource(seed))
		salted := append([]Value(nil), els...)
		for i := 0; i < 3 && len(els) > 0; i++ {
			salted = append(salted, permuteBags(r, els[r.Intn(len(els))]))
		}
		salted = append(salted, dup.v, dup.v)
		got, err := Distinct(BagOf(salted))
		if err != nil {
			return false
		}
		want := keyDistinct(salted)
		if len(got.Items) != len(want) {
			t.Logf("distinct: got %s want %s", got, BagOf(want))
			return false
		}
		for i := range want {
			if got.Items[i].String() != want[i].String() {
				t.Logf("distinct order: got %s want %s", got, BagOf(want))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1500}); err != nil {
		t.Error(err)
	}
}

func TestMemberMatchesKeyReferenceProperty(t *testing.T) {
	f := func(a genVal, probe genVal, hit bool) bool {
		bag := asBag(a)
		els, _ := bag.Elements()
		v := probe.v
		if hit && len(els) > 0 {
			v = els[len(els)/2] // force a present element half the time
		}
		got := false
		for _, e := range els {
			if e.Equal(v) {
				got = true
				break
			}
		}
		return got == keyMember(els, v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestSortBagMatchesKeyReferenceProperty(t *testing.T) {
	// SortBag must order by canonical key exactly as the reference
	// decorate-stable-sort does, byte for byte (ties keep bag order).
	f := func(a genVal, seed int64) bool {
		bag := asBag(a)
		els, _ := bag.Elements()
		r := rand.New(rand.NewSource(seed))
		salted := append([]Value(nil), els...)
		if len(els) > 0 {
			salted = append(salted, els[r.Intn(len(els))])
		}
		got, err := SortBag(BagOf(salted))
		if err != nil {
			return false
		}
		type kv struct {
			k string
			v Value
		}
		dec := make([]kv, len(salted))
		for i, e := range salted {
			dec[i] = kv{k: e.Key(), v: e}
		}
		sort.SliceStable(dec, func(i, j int) bool { return dec[i].k < dec[j].k })
		if len(got.Items) != len(dec) {
			return false
		}
		for i := range dec {
			if got.Items[i].String() != dec[i].v.String() {
				t.Logf("sort: got %s", got)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1500}); err != nil {
		t.Error(err)
	}
}

// TestValueSetMatchesEqual cross-checks ValueSet against quadratic
// Equal scans on random values.
func TestValueSetMatchesEqual(t *testing.T) {
	f := func(vals []genVal, probe genVal) bool {
		set := NewValueSet(len(vals))
		var kept []Value
		for _, g := range vals {
			inKept := false
			for _, k := range kept {
				if k.Equal(g.v) {
					inKept = true
					break
				}
			}
			if set.Add(g.v) == inKept {
				return false // Add must report the inverse of presence
			}
			if !inKept {
				kept = append(kept, g.v)
			}
		}
		if set.Len() != len(kept) {
			return false
		}
		want := false
		for _, k := range kept {
			if k.Equal(probe.v) {
				want = true
				break
			}
		}
		return set.Contains(probe.v) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 800}); err != nil {
		t.Error(err)
	}
}

// TestValueIndexMatchesEqual cross-checks ValueIndex probe results
// against linear Equal scans.
func TestValueIndexMatchesEqual(t *testing.T) {
	f := func(rows []genVal, probe genVal) bool {
		ix := NewValueIndex(len(rows))
		for i, g := range rows {
			ix.Add(g.v, Int(int64(i)))
		}
		var want []Value
		for i, g := range rows {
			if g.v.Equal(probe.v) {
				want = append(want, Int(int64(i)))
			}
		}
		got := ix.Get(probe.v)
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if !got[i].Equal(want[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 800}); err != nil {
		t.Error(err)
	}
}

// TestBagEqualMatchesKeyReferenceProperty cross-checks the multiset
// bag equality against the canonical-key reference (sorted key
// comparison), including on permuted copies.
func TestBagEqualMatchesKeyReferenceProperty(t *testing.T) {
	keyOf := func(v Value) string { return v.Key() }
	ref := func(a, b Value) bool {
		ae, _ := a.Elements()
		be, _ := b.Elements()
		if len(ae) != len(be) {
			return false
		}
		ka := make([]string, len(ae))
		kb := make([]string, len(be))
		for i := range ae {
			ka[i] = keyOf(ae[i])
		}
		for i := range be {
			kb[i] = keyOf(be[i])
		}
		sort.Strings(ka)
		sort.Strings(kb)
		return reflect.DeepEqual(ka, kb)
	}
	f := func(a, b genVal, seed int64) bool {
		x, y := asBag(a), asBag(b)
		if x.Kind != KindBag {
			x = Bag()
		}
		if y.Kind != KindBag {
			y = Bag()
		}
		if x.Equal(y) != ref(x, y) {
			t.Logf("bag equal mismatch: %s vs %s", x, y)
			return false
		}
		perm := permuteBags(rand.New(rand.NewSource(seed)), x)
		return x.Equal(perm)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1500}); err != nil {
		t.Error(err)
	}
}
