package iql

import (
	"strings"
	"testing"
)

func mustEval(t *testing.T, src string, ext Extents) Value {
	t.Helper()
	ev := NewEvaluator(ext)
	v, err := ev.EvalString(src)
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	return v
}

func TestParseRoundTrip(t *testing.T) {
	cases := []string{
		"42",
		"3.5",
		"'hello'",
		"True",
		"False",
		"Void",
		"Any",
		"x",
		"<<protein>>",
		"<<protein, accession_num>>",
		"{1, 2, 3}",
		"[1, 2, 3]",
		"[]",
		"[x | x <- <<protein>>]",
		"[{k, x} | {k, x} <- <<protein, accession_num>>; x = 'P1']",
		"[{'PEDRO', k} | k <- <<protein>>]",
		"(1 + 2)",
		"((1 + 2) * 3)",
		"(a ++ b)",
		"count(<<protein>>)",
		"distinct([1, 1, 2])",
		"Range Void Any",
		"Range [1, 2] Any",
		"if (x = 1) then 'one' else 'other'",
		"let y = 5 in (y + 1)",
		"(not True)",
		"(-x)",
		"[{k1, k2} | {k1, x} <- <<a, b>>; {k2, y} <- <<c, d>>; x = y]",
	}
	for _, src := range cases {
		e1, err := Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		s1 := e1.String()
		e2, err := Parse(s1)
		if err != nil {
			t.Fatalf("re-parse %q (from %q): %v", s1, src, err)
		}
		if s1 != e2.String() {
			t.Errorf("round trip unstable: %q -> %q -> %q", src, s1, e2.String())
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"[1, 2",
		"{1, 2",
		"<<a",
		"<<>>",
		"'unterminated",
		"1 +",
		"[x | ]",
		"if x then 1",
		"let x = 1",
		"count(",
		"1 2",
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestArithmetic(t *testing.T) {
	cases := map[string]Value{
		"1 + 2":                  Int(3),
		"7 - 2":                  Int(5),
		"3 * 4":                  Int(12),
		"8 / 2":                  Int(4),
		"7 / 2":                  Float(3.5),
		"1.5 + 1":                Float(2.5),
		"-3":                     Int(-3),
		"'a' + 'b'":              Str("ab"),
		"1 = 1":                  Bool(true),
		"1 = 2":                  Bool(false),
		"1 <> 2":                 Bool(true),
		"2 < 3":                  Bool(true),
		"3 <= 3":                 Bool(true),
		"4 > 5":                  Bool(false),
		"'abc' < 'abd'":          Bool(true),
		"True and False":         Bool(false),
		"True or False":          Bool(true),
		"not False":              Bool(true),
		"1 = 1.0":                Bool(true),
		"if 1 = 1 then 2 else 3": Int(2),
		"let x = 4 in x * x":     Int(16),
	}
	for src, want := range cases {
		got := mustEval(t, src, NoExtents)
		if !got.Equal(want) {
			t.Errorf("%q = %s, want %s", src, got, want)
		}
	}
}

func TestEvalErrors(t *testing.T) {
	cases := []string{
		"1 / 0",
		"x",
		"1 + 'a'",
		"'a' and True",
		"not 3",
		"[x | x <- 5]",
		"count(5)",
		"<<unknown>>",
		"nosuchfn(1)",
		"[x | x <- Any]",
		"1 < 'a'",
	}
	for _, src := range cases {
		ev := NewEvaluator(NoExtents)
		if _, err := ev.EvalString(src); err == nil {
			t.Errorf("eval %q succeeded, want error", src)
		}
	}
}

func testExtents() Extents {
	return ExtentsFunc(func(parts []string) (Value, error) {
		key := strings.Join(parts, "|")
		switch key {
		case "protein":
			return Bag(Int(1), Int(2), Int(3)), nil
		case "protein|acc":
			return Bag(
				Tuple(Int(1), Str("P1")),
				Tuple(Int(2), Str("P2")),
				Tuple(Int(3), Str("P1")),
			), nil
		case "hit|protein":
			return Bag(
				Tuple(Int(10), Int(1)),
				Tuple(Int(11), Int(2)),
				Tuple(Int(12), Int(1)),
			), nil
		}
		return Value{}, &unknownErr{key}
	})
}

type unknownErr struct{ key string }

func (e *unknownErr) Error() string { return "unknown extent " + e.key }

func TestComprehensions(t *testing.T) {
	ext := testExtents()
	cases := map[string]Value{
		"[k | k <- <<protein>>]":                            Bag(Int(1), Int(2), Int(3)),
		"[k | k <- <<protein>>; k > 1]":                     Bag(Int(2), Int(3)),
		"[{'S', k} | k <- <<protein>>; k = 2]":              Bag(Tuple(Str("S"), Int(2))),
		"[x | {k, x} <- <<protein, acc>>]":                  Bag(Str("P1"), Str("P2"), Str("P1")),
		"[k | {k, x} <- <<protein, acc>>; x = 'P1']":        Bag(Int(1), Int(3)),
		"count(<<protein>>)":                                Int(3),
		"count(distinct([x | {k, x} <- <<protein, acc>>]))": Int(2),
		"sum([k | k <- <<protein>>])":                       Int(6),
		"max([k | k <- <<protein>>])":                       Int(3),
		"min([k | k <- <<protein>>])":                       Int(1),
		"avg([k | k <- <<protein>>])":                       Float(2),
		"[k | k <- <<protein>>] ++ [9]":                     Bag(Int(1), Int(2), Int(3), Int(9)),
		"member([x | {k, x} <- <<protein, acc>>], 'P2')":    Bool(true),
		"member([x | {k, x} <- <<protein, acc>>], 'P9')":    Bool(false),
		// Join: hits for proteins with accession P1.
		"[h | {h, p} <- <<hit, protein>>; {k, x} <- <<protein, acc>>; p = k; x = 'P1']": Bag(Int(10), Int(12), Int(12)),
	}
	// Note on the join case: protein 1 has acc P1 and protein 3 has acc
	// P1; hit 12 references protein 1, so pairs (10,P1@1), (12,P1@1)
	// and nothing for protein 3 except... recompute below.
	for src, want := range cases {
		got := mustEval(t, src, ext)
		if src == "[h | {h, p} <- <<hit, protein>>; {k, x} <- <<protein, acc>>; p = k; x = 'P1']" {
			// hits: 10->1, 11->2, 12->1; acc: 1->P1, 2->P2, 3->P1.
			// matches: (10,1,P1), (12,1,P1). Bag of [10, 12].
			want = Bag(Int(10), Int(12))
		}
		if !got.Equal(want) {
			t.Errorf("%q = %s, want %s", src, got, want)
		}
	}
}

func TestPatternMatching(t *testing.T) {
	ext := ExtentsFunc(func(parts []string) (Value, error) {
		return Bag(
			Tuple(Str("a"), Int(1)),
			Int(7), // shape mismatch: skipped by tuple patterns
			Tuple(Str("b"), Int(2)),
			Tuple(Str("a"), Int(3), Int(9)), // arity mismatch: skipped
		), nil
	})
	got := mustEval(t, "[v | {s, v} <- <<mixed>>]", ext)
	want := Bag(Int(1), Int(2))
	if !got.Equal(want) {
		t.Errorf("got %s want %s", got, want)
	}
	// Literal pattern filters by equality.
	got = mustEval(t, "[v | {'a', v} <- <<mixed>>]", ext)
	want = Bag(Int(1))
	if !got.Equal(want) {
		t.Errorf("literal pattern: got %s want %s", got, want)
	}
	// Wildcards bind nothing.
	got = mustEval(t, "[v | {_, v} <- <<mixed>>]", ext)
	want = Bag(Int(1), Int(2))
	if !got.Equal(want) {
		t.Errorf("wildcard pattern: got %s want %s", got, want)
	}
}

func TestRangeAndVoid(t *testing.T) {
	// Evaluating Range yields its lower bound; Void acts as empty.
	got := mustEval(t, "Range Void Any", NoExtents)
	if got.Len() != 0 || got.Kind != KindBag {
		t.Errorf("Range Void Any = %s, want []", got)
	}
	got = mustEval(t, "Range [1, 2] Any", NoExtents)
	if !got.Equal(Bag(Int(1), Int(2))) {
		t.Errorf("Range [1,2] Any = %s", got)
	}
	if !IsVoidAnyRange(MustParse("Range Void Any")) {
		t.Error("IsVoidAnyRange(Range Void Any) = false")
	}
	if IsVoidAnyRange(MustParse("Range [1] Any")) {
		t.Error("IsVoidAnyRange(Range [1] Any) = true")
	}
}

func TestStringBuiltins(t *testing.T) {
	cases := map[string]Value{
		"contains('abcdef', 'cde')":    Bool(true),
		"contains('abcdef', 'xyz')":    Bool(false),
		"startswith('protein', 'pro')": Bool(true),
		"endswith('protein', 'ein')":   Bool(true),
		"upper('abc')":                 Str("ABC"),
		"lower('ABC')":                 Str("abc"),
		"abs(-4)":                      Int(4),
		"abs(-4.5)":                    Float(4.5),
		"tostring(12)":                 Str("12"),
		"tofloat(3)":                   Float(3),
		"first([7, 8])":                Int(7),
		"flatten([[1], [2, 3]])":       Bag(Int(1), Int(2), Int(3)),
		"sort([3, 1, 2])":              Bag(Int(1), Int(2), Int(3)),
	}
	for src, want := range cases {
		got := mustEval(t, src, NoExtents)
		if !got.Equal(want) {
			t.Errorf("%q = %s, want %s", src, got, want)
		}
	}
}

func TestMaxStepsGuard(t *testing.T) {
	ev := &Evaluator{Ext: testExtents(), MaxSteps: 5}
	_, err := ev.EvalString("[{a, b, c} | a <- <<protein>>; b <- <<protein>>; c <- <<protein>>]")
	if err == nil {
		t.Fatal("expected step-limit error")
	}
	if !strings.Contains(err.Error(), "steps") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestSubstitution(t *testing.T) {
	e := MustParse("[{k, x} | {k, x} <- <<protein, acc>>; k > 1]")
	sub := SubstituteSchemes(e, func(parts []string) (Expr, bool) {
		if strings.Join(parts, "|") == "protein|acc" {
			return MustParse("<<p2, acc2>>"), true
		}
		return nil, false
	})
	if !strings.Contains(sub.String(), "<<p2, acc2>>") {
		t.Errorf("substitution failed: %s", sub)
	}
	// Original untouched.
	if !strings.Contains(e.String(), "<<protein, acc>>") {
		t.Errorf("original mutated: %s", e)
	}

	refs := UniqueSchemeRefs(MustParse("<<a>> ++ [x | x <- <<a>>; member(<<b, c>>, x)]"))
	if len(refs) != 2 {
		t.Fatalf("UniqueSchemeRefs = %v, want 2 refs", refs)
	}
}

func TestIsSimpleRef(t *testing.T) {
	cases := map[string]bool{
		"<<protein>>":                           true,
		"[k | k <- <<protein>>]":                true,
		"[{k, x} | {k, x} <- <<protein, acc>>]": true,
		"[{x, k} | {k, x} <- <<protein, acc>>]": false,
		"[{'S', k} | k <- <<protein>>]":         false,
		"[k | k <- <<protein>>; k > 1]":         false,
		"1 + 2":                                 false,
	}
	for src, want := range cases {
		_, got := IsSimpleRef(MustParse(src))
		if got != want {
			t.Errorf("IsSimpleRef(%q) = %v, want %v", src, got, want)
		}
	}
}

func TestFreeVars(t *testing.T) {
	e := MustParse("[{k, v} | k <- <<t>>; v <- outer; k = bound]")
	fv := FreeVars(e)
	want := map[string]bool{"outer": true, "bound": true}
	if len(fv) != 2 || !want[fv[0]] || !want[fv[1]] {
		t.Errorf("FreeVars = %v, want outer and bound", fv)
	}
}

func TestValueKeySemantics(t *testing.T) {
	// Bags compare as multisets regardless of order.
	a := Bag(Int(1), Int(2), Int(2))
	b := Bag(Int(2), Int(1), Int(2))
	c := Bag(Int(1), Int(2))
	if !a.Equal(b) {
		t.Error("multiset equality failed")
	}
	if a.Equal(c) {
		t.Error("multiplicity ignored")
	}
	// Tuples are ordered.
	if Tuple(Int(1), Int(2)).Equal(Tuple(Int(2), Int(1))) {
		t.Error("tuple order ignored")
	}
	// Int/float cross equality.
	if !Int(2).Equal(Float(2.0)) {
		t.Error("2 != 2.0")
	}
	if Int(2).Equal(Float(2.5)) {
		t.Error("2 == 2.5")
	}
}
