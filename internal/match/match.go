// Package match implements the Schema Matching Tool (Rizopoulos): it
// suggests semantic correspondences between the objects of two schemas,
// combining name-based matchers (edit distance, trigram overlap, token
// similarity with a synonym table) with instance-based matchers (value
// overlap and type compatibility of sampled extents). The Intersection
// Schema Tool uses these suggestions to pre-populate its mappings table
// (paper §2.3, step 4).
package match

import (
	"fmt"
	"sort"
	"strings"

	"github.com/dataspace/automed/internal/hdm"
	"github.com/dataspace/automed/internal/iql"
)

// Correspondence is a suggested semantic match between two schema
// objects with a combined confidence score in [0, 1].
type Correspondence struct {
	Left, Right hdm.Scheme
	Score       float64
	// Evidence itemises the contributing matcher scores, for display.
	Evidence map[string]float64
}

// String renders "left ~ right (score)".
func (c Correspondence) String() string {
	return fmt.Sprintf("%s ~ %s (%.2f)", c.Left, c.Right, c.Score)
}

// Config tunes the matcher.
type Config struct {
	// NameWeight and InstanceWeight blend the two matcher families;
	// they are renormalised if they do not sum to 1. When no extents
	// are supplied, name evidence alone is used.
	NameWeight     float64
	InstanceWeight float64
	// Synonyms maps a token to equivalent tokens, applied
	// symmetrically, e.g. {"sequence": {"seq"}}.
	Synonyms map[string][]string
	// SampleSize bounds how many extent elements are compared; 0
	// means 200.
	SampleSize int
	// MinScore filters suggestions; default 0.
	MinScore float64
}

// DefaultConfig returns a configuration with equal weights and a small
// proteomics-flavoured synonym table matching the paper's case study
// vocabulary.
func DefaultConfig() Config {
	return Config{
		NameWeight:     0.5,
		InstanceWeight: 0.5,
		SampleSize:     200,
		Synonyms: map[string][]string{
			"sequence":  {"seq", "pepseq"},
			"accession": {"label", "acc"},
			"protein":   {"proseq", "prot"},
			"score":     {"hyperscore"},
			"expect":    {"probability", "expectation"},
			"search":    {"fileparameters"},
		},
	}
}

// Matcher computes correspondences.
type Matcher struct {
	cfg Config
	syn map[string]map[string]bool
}

// New builds a matcher from a configuration.
func New(cfg Config) *Matcher {
	if cfg.NameWeight <= 0 && cfg.InstanceWeight <= 0 {
		cfg.NameWeight, cfg.InstanceWeight = 0.5, 0.5
	}
	if cfg.SampleSize == 0 {
		cfg.SampleSize = 200
	}
	m := &Matcher{cfg: cfg, syn: make(map[string]map[string]bool)}
	for k, vs := range cfg.Synonyms {
		for _, v := range vs {
			m.addSyn(k, v)
			m.addSyn(v, k)
		}
	}
	return m
}

func (m *Matcher) addSyn(a, b string) {
	if m.syn[a] == nil {
		m.syn[a] = make(map[string]bool)
	}
	m.syn[a][b] = true
}

// ExtentSource supplies extents for instance-based matching; nil
// disables instance evidence.
type ExtentSource interface {
	Extent(parts []string) (iql.Value, error)
}

// Match suggests correspondences between objects of schemas a and b,
// comparing only objects of equal kind, ordered by descending score.
// extA and extB may be nil.
func (m *Matcher) Match(a, b *hdm.Schema, extA, extB ExtentSource) []Correspondence {
	var out []Correspondence
	for _, oa := range a.Objects() {
		for _, ob := range b.Objects() {
			if oa.Kind != ob.Kind {
				continue
			}
			c := m.score(oa, ob, extA, extB)
			if c.Score >= m.cfg.MinScore && c.Score > 0 {
				out = append(out, c)
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		if c := hdm.CompareSchemes(out[i].Left, out[j].Left); c != 0 {
			return c < 0
		}
		return hdm.CompareSchemes(out[i].Right, out[j].Right) < 0
	})
	return out
}

// Best returns, for each left object, the highest-scoring suggestion
// meeting minScore, at most one per left object.
func (m *Matcher) Best(a, b *hdm.Schema, extA, extB ExtentSource, minScore float64) []Correspondence {
	all := m.Match(a, b, extA, extB)
	seen := make(map[string]bool)
	var out []Correspondence
	for _, c := range all {
		k := c.Left.Key()
		if seen[k] || c.Score < minScore {
			continue
		}
		seen[k] = true
		out = append(out, c)
	}
	return out
}

func (m *Matcher) score(oa, ob *hdm.Object, extA, extB ExtentSource) Correspondence {
	ev := make(map[string]float64)
	nameScore := m.nameSimilarity(oa.Scheme, ob.Scheme)
	ev["name"] = nameScore

	instScore, hasInst := 0.0, false
	if extA != nil && extB != nil {
		va, errA := extA.Extent(oa.Scheme.Parts())
		vb, errB := extB.Extent(ob.Scheme.Parts())
		if errA == nil && errB == nil {
			s, ok := m.instanceSimilarity(va, vb)
			if ok {
				instScore, hasInst = s, true
				ev["instance"] = s
			}
		}
	}

	nw, iw := m.cfg.NameWeight, m.cfg.InstanceWeight
	var score float64
	if hasInst {
		score = (nw*nameScore + iw*instScore) / (nw + iw)
	} else {
		score = nameScore
	}
	return Correspondence{Left: oa.Scheme, Right: ob.Scheme, Score: score, Evidence: ev}
}

// nameSimilarity compares the final scheme parts (the most specific
// names) and blends trigram, edit-distance and token evidence.
func (m *Matcher) nameSimilarity(a, b hdm.Scheme) float64 {
	na, nb := normalise(a.Last()), normalise(b.Last())
	if na == nb {
		return 1
	}
	if m.synonymous(na, nb) {
		return 0.95
	}
	tri := trigramJaccard(na, nb)
	lev := 1 - float64(levenshtein(na, nb))/float64(maxInt(len(na), len(nb)))
	tok := m.tokenSimilarity(na, nb)
	s := 0.4*tri + 0.35*lev + 0.25*tok
	if s < 0 {
		s = 0
	}
	return s
}

func normalise(s string) string {
	s = strings.ToLower(s)
	s = strings.ReplaceAll(s, "-", "_")
	s = strings.ReplaceAll(s, " ", "_")
	return s
}

func (m *Matcher) synonymous(a, b string) bool {
	if m.syn[a][b] || m.syn[b][a] {
		return true
	}
	return false
}

// tokenSimilarity splits on underscores and camel humps and measures
// Jaccard overlap with synonym credit.
func (m *Matcher) tokenSimilarity(a, b string) float64 {
	ta, tb := tokens(a), tokens(b)
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	matched := 0
	used := make([]bool, len(tb))
	for _, x := range ta {
		for j, y := range tb {
			if used[j] {
				continue
			}
			if x == y || m.synonymous(x, y) {
				matched++
				used[j] = true
				break
			}
		}
	}
	return float64(2*matched) / float64(len(ta)+len(tb))
}

func tokens(s string) []string {
	var out []string
	for _, t := range strings.Split(s, "_") {
		if t != "" {
			out = append(out, t)
		}
	}
	return out
}

// trigramJaccard measures character-trigram overlap.
func trigramJaccard(a, b string) float64 {
	ga, gb := trigrams(a), trigrams(b)
	if len(ga) == 0 || len(gb) == 0 {
		return 0
	}
	inter := 0
	for g := range ga {
		if gb[g] {
			inter++
		}
	}
	union := len(ga) + len(gb) - inter
	return float64(inter) / float64(union)
}

func trigrams(s string) map[string]bool {
	padded := "  " + s + " "
	out := make(map[string]bool)
	for i := 0; i+3 <= len(padded); i++ {
		out[padded[i:i+3]] = true
	}
	return out
}

// levenshtein computes edit distance with two rows of DP state.
func levenshtein(a, b string) int {
	if a == b {
		return 0
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = minInt(minInt(cur[j-1]+1, prev[j]+1), prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// instanceSimilarity measures value overlap between two extents,
// comparing the value component of {key, value} pairs (or whole
// elements for nodal extents). Reports ok=false when either sample is
// empty.
func (m *Matcher) instanceSimilarity(a, b iql.Value) (float64, bool) {
	va, err := sampleValues(a, m.cfg.SampleSize)
	if err != nil || len(va) == 0 {
		return 0, false
	}
	vb, err := sampleValues(b, m.cfg.SampleSize)
	if err != nil || len(vb) == 0 {
		return 0, false
	}
	// Type compatibility gate.
	if kindSignature(va) != kindSignature(vb) {
		return 0, true
	}
	sa, sb := toSet(va), toSet(vb)
	inter := 0
	for k := range sa {
		if sb[k] {
			inter++
		}
	}
	union := len(sa) + len(sb) - inter
	if union == 0 {
		return 0, true
	}
	return float64(inter) / float64(union), true
}

// sampleValues extracts comparable values from an extent: for tuple
// elements the last component (the attribute value), otherwise the
// element itself.
func sampleValues(v iql.Value, n int) ([]iql.Value, error) {
	els, err := v.Elements()
	if err != nil {
		return nil, err
	}
	if len(els) > n {
		els = els[:n]
	}
	out := make([]iql.Value, 0, len(els))
	for _, e := range els {
		if e.Kind == iql.KindTuple && len(e.Items) > 0 {
			out = append(out, e.Items[len(e.Items)-1])
		} else {
			out = append(out, e)
		}
	}
	return out, nil
}

// kindSignature summarises the dominant scalar kind of a sample.
func kindSignature(vals []iql.Value) iql.Kind {
	counts := make(map[iql.Kind]int)
	for _, v := range vals {
		k := v.Kind
		if k == iql.KindFloat {
			k = iql.KindInt // numeric bucket
		}
		counts[k]++
	}
	best, bestN := iql.KindNull, -1
	for k, n := range counts {
		if n > bestN || (n == bestN && k < best) {
			best, bestN = k, n
		}
	}
	return best
}

func toSet(vals []iql.Value) map[string]bool {
	out := make(map[string]bool, len(vals))
	for _, v := range vals {
		out[v.Key()] = true
	}
	return out
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
