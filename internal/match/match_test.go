package match

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/dataspace/automed/internal/hdm"
	"github.com/dataspace/automed/internal/iql"
)

func schemaOf(name string, cols ...string) *hdm.Schema {
	s := hdm.NewSchema(name)
	s.MustAdd(hdm.NewObject(hdm.MustScheme("<<"+name+"_tbl>>"), hdm.Nodal, "sql", "table"))
	for _, c := range cols {
		s.MustAdd(hdm.NewObject(hdm.NewScheme(name+"_tbl", c), hdm.Link, "sql", "column"))
	}
	return s
}

func TestNameMatching(t *testing.T) {
	m := New(DefaultConfig())
	a := schemaOf("a", "accession_num", "description", "score")
	b := schemaOf("b", "accession", "descr", "hyperscore")
	out := m.Match(a, b, nil, nil)
	if len(out) == 0 {
		t.Fatal("no correspondences")
	}
	// Top match for accession_num should be accession.
	best := map[string]string{}
	for _, c := range out {
		if _, seen := best[c.Left.Key()]; !seen {
			best[c.Left.Key()] = c.Right.Last()
		}
	}
	if best["a_tbl|accession_num"] != "accession" {
		t.Errorf("best for accession_num = %q", best["a_tbl|accession_num"])
	}
	// The synonym table maps score ↔ hyperscore highly.
	found := false
	for _, c := range out {
		if c.Left.Last() == "score" && c.Right.Last() == "hyperscore" && c.Score > 0.9 {
			found = true
		}
	}
	if !found {
		t.Error("synonym match score/hyperscore not found")
	}
}

func TestIdenticalNamesScoreOne(t *testing.T) {
	m := New(DefaultConfig())
	a := schemaOf("x", "organism")
	b := schemaOf("y", "organism")
	out := m.Match(a, b, nil, nil)
	top := out[0]
	if top.Score != 1 || top.Left.Last() != "organism" {
		t.Errorf("identical names scored %v", top)
	}
}

func TestKindGate(t *testing.T) {
	m := New(DefaultConfig())
	a := hdm.NewSchema("a")
	a.MustAdd(hdm.NewObject(hdm.MustScheme("<<same>>"), hdm.Nodal, "", ""))
	b := hdm.NewSchema("b")
	b.MustAdd(hdm.NewObject(hdm.MustScheme("<<same, same>>"), hdm.Link, "", ""))
	if out := m.Match(a, b, nil, nil); len(out) != 0 {
		t.Errorf("cross-kind matches produced: %v", out)
	}
}

type fixedExtents map[string]iql.Value

func (f fixedExtents) Extent(parts []string) (iql.Value, error) {
	key := parts[len(parts)-1]
	if v, ok := f[key]; ok {
		return v, nil
	}
	return iql.Bag(), nil
}

func TestInstanceEvidence(t *testing.T) {
	m := New(Config{NameWeight: 0.2, InstanceWeight: 0.8, SampleSize: 50})
	a := schemaOf("a", "col_one")
	b := schemaOf("b", "totally_different")
	// Same value populations: instance evidence should lift the score
	// despite dissimilar names.
	vals := iql.Bag(
		iql.Tuple(iql.Int(1), iql.Str("x")),
		iql.Tuple(iql.Int(2), iql.Str("y")),
	)
	extA := fixedExtents{"col_one": vals}
	extB := fixedExtents{"totally_different": vals}
	withInst := m.Match(a, b, extA, extB)
	without := m.Match(a, b, nil, nil)
	var wi, wo float64
	for _, c := range withInst {
		if c.Left.Last() == "col_one" && c.Right.Last() == "totally_different" {
			wi = c.Score
		}
	}
	for _, c := range without {
		if c.Left.Last() == "col_one" && c.Right.Last() == "totally_different" {
			wo = c.Score
		}
	}
	if wi <= wo {
		t.Errorf("instance evidence did not lift score: with=%v without=%v", wi, wo)
	}
}

func TestTypeIncompatibilityZeroesInstanceScore(t *testing.T) {
	m := New(Config{NameWeight: 0.5, InstanceWeight: 0.5, SampleSize: 50})
	a := schemaOf("a", "v")
	b := schemaOf("b", "v")
	extA := fixedExtents{"v": iql.Bag(iql.Tuple(iql.Int(1), iql.Str("x")))}
	extB := fixedExtents{"v": iql.Bag(iql.Tuple(iql.Int(1), iql.Int(42)))}
	out := m.Match(a, b, extA, extB)
	for _, c := range out {
		if c.Left.Last() == "v" && c.Right.Last() == "v" {
			// name=1.0, instance=0 → blended 0.5.
			if c.Score > 0.55 {
				t.Errorf("type-incompatible columns scored %v", c.Score)
			}
		}
	}
}

func TestBestOnePerLeft(t *testing.T) {
	m := New(DefaultConfig())
	a := schemaOf("a", "sequence")
	b := schemaOf("b", "seq", "pepseq")
	best := m.Best(a, b, nil, nil, 0.2)
	count := 0
	for _, c := range best {
		if c.Left.Last() == "sequence" {
			count++
		}
	}
	if count != 1 {
		t.Errorf("Best returned %d matches for one left object", count)
	}
}

func TestScoreBoundsProperty(t *testing.T) {
	type pair struct{ A, B string }
	gen := func(r *rand.Rand) string {
		const letters = "abcdefgh_"
		n := 1 + r.Intn(10)
		b := make([]byte, n)
		for i := range b {
			b[i] = letters[r.Intn(len(letters))]
		}
		return string(b)
	}
	m := New(DefaultConfig())
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := schemaOf("a", gen(r))
		b := schemaOf("b", gen(r))
		for _, c := range m.Match(a, b, nil, nil) {
			if c.Score < 0 || c.Score > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Values: func(vs []reflect.Value, r *rand.Rand) {
		vs[0] = reflect.ValueOf(r.Int63())
	}}); err != nil {
		t.Error(err)
	}
}

func TestNameSimilaritySymmetryProperty(t *testing.T) {
	m := New(DefaultConfig())
	gen := func(r *rand.Rand) hdm.Scheme {
		const letters = "abcdef_"
		n := 1 + r.Intn(10)
		b := make([]byte, n)
		for i := range b {
			b[i] = letters[r.Intn(len(letters))]
		}
		return hdm.NewScheme("t", string(b))
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x, y := gen(r), gen(r)
		return m.nameSimilarity(x, y) == m.nameSimilarity(y, x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Values: func(vs []reflect.Value, r *rand.Rand) {
		vs[0] = reflect.ValueOf(r.Int63())
	}}); err != nil {
		t.Error(err)
	}
}

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"a", "", 1},
		{"kitten", "sitting", 3},
		{"protein", "protein", 0},
		{"seq", "pepseq", 3},
	}
	for _, c := range cases {
		if got := levenshtein(c.a, c.b); got != c.want {
			t.Errorf("levenshtein(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestMinScoreFilter(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MinScore = 0.99
	m := New(cfg)
	a := schemaOf("a", "abc")
	b := schemaOf("b", "xyz")
	if out := m.Match(a, b, nil, nil); len(out) != 0 {
		t.Errorf("below-threshold matches returned: %v", out)
	}
}
