package hdm

import "fmt"

// ObjectKind classifies a schema object at the HDM level. Nodal objects
// have self-standing extents (e.g. relational tables); Link objects
// associate a nodal object with values or other objects (e.g. relational
// columns); ConstraintObj objects restrict extents (e.g. keys).
type ObjectKind int

const (
	// Nodal objects correspond to HDM nodes.
	Nodal ObjectKind = iota
	// Link objects correspond to HDM edges.
	Link
	// ConstraintObj objects correspond to HDM constraints.
	ConstraintObj
)

// String returns the lower-case name of the kind.
func (k ObjectKind) String() string {
	switch k {
	case Nodal:
		return "nodal"
	case Link:
		return "link"
	case ConstraintObj:
		return "constraint"
	}
	return fmt.Sprintf("ObjectKind(%d)", int(k))
}

// ParseObjectKind converts the textual kind name back to an ObjectKind.
func ParseObjectKind(s string) (ObjectKind, error) {
	switch s {
	case "nodal":
		return Nodal, nil
	case "link":
		return Link, nil
	case "constraint":
		return ConstraintObj, nil
	}
	return 0, fmt.Errorf("hdm: unknown object kind %q", s)
}

// Object is a schema object: a scheme plus its classification in the
// modelling language it belongs to (as registered in the Model
// Definitions Repository).
type Object struct {
	// Scheme identifies the object within its schema.
	Scheme Scheme
	// Kind is the object's HDM-level classification.
	Kind ObjectKind
	// Model names the modelling language, e.g. "sql", "csv", "xml".
	Model string
	// Construct names the construct within the modelling language,
	// e.g. "table", "column", "element".
	Construct string
}

// NewObject builds an object.
func NewObject(scheme Scheme, kind ObjectKind, model, construct string) *Object {
	return &Object{Scheme: scheme, Kind: kind, Model: model, Construct: construct}
}

// Clone returns a copy of the object. Scheme values are immutable so a
// shallow copy suffices.
func (o *Object) Clone() *Object {
	cp := *o
	return &cp
}

// WithScheme returns a copy of the object carrying the given scheme;
// used by rename and federation prefixing.
func (o *Object) WithScheme(s Scheme) *Object {
	cp := *o
	cp.Scheme = s
	return &cp
}

// String renders the object as "construct <<scheme>>".
func (o *Object) String() string {
	if o.Construct == "" {
		return o.Scheme.String()
	}
	return o.Construct + " " + o.Scheme.String()
}
