package hdm

import (
	"fmt"
	"sort"
	"strings"
)

// Schema is an ordered set of schema objects, keyed by scheme. Schemas
// are not safe for concurrent mutation; the repository layer serialises
// access.
type Schema struct {
	name    string
	objects map[string]*Object
	order   []string
}

// NewSchema returns an empty schema with the given name.
func NewSchema(name string) *Schema {
	return &Schema{
		name:    name,
		objects: make(map[string]*Object),
	}
}

// Name returns the schema's name.
func (s *Schema) Name() string { return s.name }

// SetName renames the schema itself (not its objects).
func (s *Schema) SetName(name string) { s.name = name }

// Len returns the number of objects.
func (s *Schema) Len() int { return len(s.order) }

// Add inserts an object; it is an error if an object with the same
// scheme already exists.
func (s *Schema) Add(o *Object) error {
	if o == nil {
		return fmt.Errorf("hdm: nil object added to schema %q", s.name)
	}
	if err := o.Scheme.Validate(); err != nil {
		return fmt.Errorf("hdm: schema %q: %w", s.name, err)
	}
	k := o.Scheme.Key()
	if _, dup := s.objects[k]; dup {
		return fmt.Errorf("hdm: schema %q already contains %s", s.name, o.Scheme)
	}
	s.objects[k] = o
	s.order = append(s.order, k)
	return nil
}

// MustAdd is Add that panics on error; for fixtures and tests.
func (s *Schema) MustAdd(o *Object) {
	if err := s.Add(o); err != nil {
		panic(err)
	}
}

// Remove deletes the object with the given scheme; it is an error if the
// object is absent.
func (s *Schema) Remove(sc Scheme) error {
	k := sc.Key()
	if _, ok := s.objects[k]; !ok {
		return fmt.Errorf("hdm: schema %q does not contain %s", s.name, sc)
	}
	delete(s.objects, k)
	for i, ok := range s.order {
		if ok == k {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	return nil
}

// Rename changes the scheme of an existing object. The new scheme must
// not clash with another object.
func (s *Schema) Rename(from, to Scheme) error {
	fk := from.Key()
	o, ok := s.objects[fk]
	if !ok {
		return fmt.Errorf("hdm: schema %q does not contain %s", s.name, from)
	}
	if err := to.Validate(); err != nil {
		return err
	}
	tk := to.Key()
	if _, dup := s.objects[tk]; dup {
		return fmt.Errorf("hdm: schema %q already contains %s", s.name, to)
	}
	delete(s.objects, fk)
	s.objects[tk] = o.WithScheme(to)
	for i, k := range s.order {
		if k == fk {
			s.order[i] = tk
			break
		}
	}
	return nil
}

// Has reports whether an object with the given scheme exists.
func (s *Schema) Has(sc Scheme) bool {
	_, ok := s.objects[sc.Key()]
	return ok
}

// Object returns the object with exactly the given scheme.
func (s *Schema) Object(sc Scheme) (*Object, bool) {
	o, ok := s.objects[sc.Key()]
	return o, ok
}

// Objects returns the objects in insertion order.
func (s *Schema) Objects() []*Object {
	out := make([]*Object, 0, len(s.order))
	for _, k := range s.order {
		out = append(out, s.objects[k])
	}
	return out
}

// Schemes returns the schemes of all objects in insertion order.
func (s *Schema) Schemes() []Scheme {
	out := make([]Scheme, 0, len(s.order))
	for _, k := range s.order {
		out = append(out, s.objects[k].Scheme)
	}
	return out
}

// SortedSchemes returns the schemes in canonical lexicographic order,
// for deterministic reporting.
func (s *Schema) SortedSchemes() []Scheme {
	out := s.Schemes()
	sort.Slice(out, func(i, j int) bool { return CompareSchemes(out[i], out[j]) < 0 })
	return out
}

// Resolve finds the unique object whose scheme equals, or has as suffix,
// the given parts. Exact matches win; otherwise the match must be
// unambiguous. This implements the paper's convention that the modelling
// language and construct kind may be omitted from schemes.
func (s *Schema) Resolve(parts []string) (*Object, error) {
	ref := NewScheme(parts...)
	if o, ok := s.objects[ref.Key()]; ok {
		return o, nil
	}
	var found *Object
	for _, k := range s.order {
		o := s.objects[k]
		if ref.SuffixOf(o.Scheme) {
			if found != nil {
				return nil, fmt.Errorf("hdm: schema %q: %s is ambiguous (matches %s and %s)",
					s.name, ref, found.Scheme, o.Scheme)
			}
			found = o
		}
	}
	if found == nil {
		return nil, fmt.Errorf("hdm: schema %q has no object %s", s.name, ref)
	}
	return found, nil
}

// Clone returns a deep copy of the schema under a new name.
func (s *Schema) Clone(name string) *Schema {
	c := NewSchema(name)
	for _, k := range s.order {
		c.objects[k] = s.objects[k].Clone()
		c.order = append(c.order, k)
	}
	return c
}

// Identical reports whether two schemas contain exactly the same set of
// schemes (object identity for the purposes of the ident transformation;
// kinds and constructs must agree too).
func Identical(a, b *Schema) bool {
	if a.Len() != b.Len() {
		return false
	}
	for k, oa := range a.objects {
		ob, ok := b.objects[k]
		if !ok || oa.Kind != ob.Kind || oa.Construct != ob.Construct || oa.Model != ob.Model {
			return false
		}
	}
	return true
}

// Diff returns the schemes present only in a and only in b, each in
// canonical order.
func Diff(a, b *Schema) (onlyA, onlyB []Scheme) {
	for k, o := range a.objects {
		if _, ok := b.objects[k]; !ok {
			onlyA = append(onlyA, o.Scheme)
		}
	}
	for k, o := range b.objects {
		if _, ok := a.objects[k]; !ok {
			onlyB = append(onlyB, o.Scheme)
		}
	}
	sort.Slice(onlyA, func(i, j int) bool { return CompareSchemes(onlyA[i], onlyA[j]) < 0 })
	sort.Slice(onlyB, func(i, j int) bool { return CompareSchemes(onlyB[i], onlyB[j]) < 0 })
	return onlyA, onlyB
}

// String renders a short description: name and object count.
func (s *Schema) String() string {
	return fmt.Sprintf("schema %s (%d objects)", s.name, s.Len())
}

// Describe renders a multi-line listing of the schema's objects grouped
// by construct, for CLI display.
func (s *Schema) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "schema %s: %d objects\n", s.name, s.Len())
	for _, o := range s.Objects() {
		fmt.Fprintf(&b, "  %-10s %s\n", o.Construct, o.Scheme)
	}
	return b.String()
}
