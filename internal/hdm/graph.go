package hdm

import (
	"fmt"
	"sort"
	"strings"
)

// Node is an HDM node: a named set of values.
type Node struct {
	Name string
}

// Edge is an HDM edge: a named (possibly unnamed, Name "_") hyperedge
// linking two or more nodes and/or other edges, identified by name.
type Edge struct {
	Name string
	Ends []string
}

// Constraint is an HDM constraint: a boolean expression over nodes and
// edges, stored textually.
type Constraint struct {
	Name string
	Expr string
}

// Graph is an HDM hypergraph: the expansion of a schema into the common
// data model. It is produced by the model definitions in package model.
type Graph struct {
	nodes       map[string]Node
	edges       map[string]Edge
	constraints map[string]Constraint
}

// NewGraph returns an empty hypergraph.
func NewGraph() *Graph {
	return &Graph{
		nodes:       make(map[string]Node),
		edges:       make(map[string]Edge),
		constraints: make(map[string]Constraint),
	}
}

// AddNode inserts a node; duplicate names are an error.
func (g *Graph) AddNode(name string) error {
	if name == "" {
		return fmt.Errorf("hdm: empty node name")
	}
	if _, dup := g.nodes[name]; dup {
		return fmt.Errorf("hdm: duplicate node %q", name)
	}
	g.nodes[name] = Node{Name: name}
	return nil
}

// AddEdge inserts an edge. Every end must already exist as a node or
// edge.
func (g *Graph) AddEdge(name string, ends ...string) error {
	if len(ends) < 2 {
		return fmt.Errorf("hdm: edge %q needs at least two ends", name)
	}
	if _, dup := g.edges[name]; dup {
		return fmt.Errorf("hdm: duplicate edge %q", name)
	}
	for _, e := range ends {
		if !g.HasNode(e) && !g.HasEdge(e) {
			return fmt.Errorf("hdm: edge %q references unknown end %q", name, e)
		}
	}
	g.edges[name] = Edge{Name: name, Ends: append([]string(nil), ends...)}
	return nil
}

// AddConstraint inserts a constraint.
func (g *Graph) AddConstraint(name, expr string) error {
	if _, dup := g.constraints[name]; dup {
		return fmt.Errorf("hdm: duplicate constraint %q", name)
	}
	g.constraints[name] = Constraint{Name: name, Expr: expr}
	return nil
}

// RemoveNode deletes a node; it is an error if any edge still references
// it.
func (g *Graph) RemoveNode(name string) error {
	if _, ok := g.nodes[name]; !ok {
		return fmt.Errorf("hdm: no node %q", name)
	}
	for _, e := range g.edges {
		for _, end := range e.Ends {
			if end == name {
				return fmt.Errorf("hdm: node %q still referenced by edge %q", name, e.Name)
			}
		}
	}
	delete(g.nodes, name)
	return nil
}

// RemoveEdge deletes an edge; it is an error if another edge references
// it.
func (g *Graph) RemoveEdge(name string) error {
	if _, ok := g.edges[name]; !ok {
		return fmt.Errorf("hdm: no edge %q", name)
	}
	for _, e := range g.edges {
		if e.Name == name {
			continue
		}
		for _, end := range e.Ends {
			if end == name {
				return fmt.Errorf("hdm: edge %q still referenced by edge %q", name, e.Name)
			}
		}
	}
	delete(g.edges, name)
	return nil
}

// RemoveConstraint deletes a constraint.
func (g *Graph) RemoveConstraint(name string) error {
	if _, ok := g.constraints[name]; !ok {
		return fmt.Errorf("hdm: no constraint %q", name)
	}
	delete(g.constraints, name)
	return nil
}

// HasNode reports whether a node exists.
func (g *Graph) HasNode(name string) bool { _, ok := g.nodes[name]; return ok }

// HasEdge reports whether an edge exists.
func (g *Graph) HasEdge(name string) bool { _, ok := g.edges[name]; return ok }

// HasConstraint reports whether a constraint exists.
func (g *Graph) HasConstraint(name string) bool { _, ok := g.constraints[name]; return ok }

// Nodes returns node names in sorted order.
func (g *Graph) Nodes() []string {
	out := make([]string, 0, len(g.nodes))
	for n := range g.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Edges returns edges sorted by name.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, len(g.edges))
	for _, e := range g.edges {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Constraints returns constraints sorted by name.
func (g *Graph) Constraints() []Constraint {
	out := make([]Constraint, 0, len(g.constraints))
	for _, c := range g.constraints {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Size returns the counts of nodes, edges and constraints.
func (g *Graph) Size() (nodes, edges, constraints int) {
	return len(g.nodes), len(g.edges), len(g.constraints)
}

// String renders a compact multi-line description of the graph.
func (g *Graph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "hdm graph: %d nodes, %d edges, %d constraints\n",
		len(g.nodes), len(g.edges), len(g.constraints))
	for _, n := range g.Nodes() {
		fmt.Fprintf(&b, "  node %s\n", n)
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(&b, "  edge %s (%s)\n", e.Name, strings.Join(e.Ends, " -- "))
	}
	for _, c := range g.Constraints() {
		fmt.Fprintf(&b, "  constraint %s: %s\n", c.Name, c.Expr)
	}
	return b.String()
}
