package hdm

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestSchemeParsePrint(t *testing.T) {
	cases := map[string]string{
		"<<protein>>":                "<<protein>>",
		"<<protein, accession_num>>": "<<protein, accession_num>>",
		"protein, accession_num":     "<<protein, accession_num>>",
		"<<sql, table, protein>>":    "<<sql, table, protein>>",
		"<< spaced ,  parts >>":      "<<spaced, parts>>",
		"<<accession num>>":          "<<accession num>>", // embedded space, as in the paper
	}
	for in, want := range cases {
		sc, err := ParseScheme(in)
		if err != nil {
			t.Errorf("ParseScheme(%q): %v", in, err)
			continue
		}
		if sc.String() != want {
			t.Errorf("ParseScheme(%q).String() = %q, want %q", in, sc.String(), want)
		}
	}
}

func TestSchemeParseErrors(t *testing.T) {
	for _, in := range []string{"", "<<>>", "<<a", "<<a,>>", "<<,a>>", "<<a|b>>"} {
		if _, err := ParseScheme(in); err == nil {
			t.Errorf("ParseScheme(%q) succeeded, want error", in)
		}
	}
}

// schemePart generates a safe scheme part for property tests.
func schemePart(r *rand.Rand) string {
	const letters = "abcdefghijklmnopqrstuvwxyz_0123456789"
	n := 1 + r.Intn(12)
	b := make([]byte, n)
	for i := range b {
		b[i] = letters[r.Intn(len(letters))]
	}
	return string(b)
}

type genScheme struct{ parts []string }

func (genScheme) Generate(r *rand.Rand, size int) reflect.Value {
	n := 1 + r.Intn(4)
	parts := make([]string, n)
	for i := range parts {
		parts[i] = schemePart(r)
	}
	return reflect.ValueOf(genScheme{parts: parts})
}

func TestSchemeRoundTripProperty(t *testing.T) {
	f := func(g genScheme) bool {
		sc := NewScheme(g.parts...)
		rt, err := ParseScheme(sc.String())
		if err != nil {
			return false
		}
		return rt.Equal(sc) && rt.Key() == sc.Key()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSchemeKeyInjectiveProperty(t *testing.T) {
	f := func(a, b genScheme) bool {
		sa, sb := NewScheme(a.parts...), NewScheme(b.parts...)
		return (sa.Key() == sb.Key()) == sa.Equal(sb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSchemePrefixRoundTripProperty(t *testing.T) {
	f := func(g genScheme) bool {
		sc := NewScheme(g.parts...)
		p := sc.WithPrefix("pedro")
		return p.HasPrefix("pedro") && p.TrimPrefix("pedro").Equal(sc)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSchemeSuffixOf(t *testing.T) {
	full := MustScheme("<<sql, table, protein>>")
	cases := map[string]bool{
		"<<protein>>":                true,
		"<<table, protein>>":         true,
		"<<sql, table, protein>>":    true,
		"<<sql, table>>":             false,
		"<<other>>":                  false,
		"<<x, sql, table, protein>>": false,
	}
	for in, want := range cases {
		sc := MustScheme(in)
		if got := sc.SuffixOf(full); got != want {
			t.Errorf("%s.SuffixOf(%s) = %v, want %v", sc, full, got, want)
		}
	}
}

func TestSchemeHelpers(t *testing.T) {
	sc := MustScheme("<<protein, accession_num>>")
	if sc.Arity() != 2 || sc.First() != "protein" || sc.Last() != "accession_num" {
		t.Errorf("helpers broken: %v %v %v", sc.Arity(), sc.First(), sc.Last())
	}
	if !sc.Parent().Equal(MustScheme("<<protein>>")) {
		t.Errorf("Parent = %s", sc.Parent())
	}
	if !MustScheme("<<protein>>").Parent().IsZero() {
		t.Error("Parent of arity-1 scheme should be zero")
	}
	ext := MustScheme("<<protein>>").Extend("organism")
	if !ext.Equal(MustScheme("<<protein, organism>>")) {
		t.Errorf("Extend = %s", ext)
	}
	if CompareSchemes(MustScheme("<<a>>"), MustScheme("<<a, b>>")) >= 0 {
		t.Error("prefix should order before extension")
	}
	if CompareSchemes(MustScheme("<<b>>"), MustScheme("<<a>>")) <= 0 {
		t.Error("lexicographic order broken")
	}
}

func TestSchemaAddRemoveRename(t *testing.T) {
	s := NewSchema("S")
	obj := NewObject(MustScheme("<<t>>"), Nodal, "sql", "table")
	if err := s.Add(obj); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(obj.Clone()); err == nil {
		t.Error("duplicate Add succeeded")
	}
	if s.Len() != 1 || !s.Has(MustScheme("<<t>>")) {
		t.Fatal("Add failed")
	}
	if err := s.Rename(MustScheme("<<t>>"), MustScheme("<<u>>")); err != nil {
		t.Fatal(err)
	}
	if s.Has(MustScheme("<<t>>")) || !s.Has(MustScheme("<<u>>")) {
		t.Error("Rename failed")
	}
	if err := s.Rename(MustScheme("<<missing>>"), MustScheme("<<x>>")); err == nil {
		t.Error("Rename of missing object succeeded")
	}
	if err := s.Remove(MustScheme("<<u>>")); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove(MustScheme("<<u>>")); err == nil {
		t.Error("double Remove succeeded")
	}
	if s.Len() != 0 {
		t.Error("Remove failed")
	}
}

func TestSchemaRenameClash(t *testing.T) {
	s := NewSchema("S")
	s.MustAdd(NewObject(MustScheme("<<a>>"), Nodal, "", ""))
	s.MustAdd(NewObject(MustScheme("<<b>>"), Nodal, "", ""))
	if err := s.Rename(MustScheme("<<a>>"), MustScheme("<<b>>")); err == nil {
		t.Error("rename onto existing object succeeded")
	}
}

func TestSchemaResolve(t *testing.T) {
	s := NewSchema("S")
	s.MustAdd(NewObject(MustScheme("<<sql, table, protein>>"), Nodal, "sql", "table"))
	s.MustAdd(NewObject(MustScheme("<<sql, column, protein, acc>>"), Link, "sql", "column"))

	o, err := s.Resolve([]string{"protein"})
	if err != nil {
		t.Fatal(err)
	}
	if o.Scheme.Arity() != 3 {
		t.Errorf("resolved %s", o.Scheme)
	}
	o, err = s.Resolve([]string{"protein", "acc"})
	if err != nil {
		t.Fatal(err)
	}
	if o.Kind != Link {
		t.Errorf("resolved wrong object %s", o.Scheme)
	}
	if _, err := s.Resolve([]string{"nope"}); err == nil {
		t.Error("resolving missing object succeeded")
	}
	// Ambiguity.
	s.MustAdd(NewObject(MustScheme("<<xml, element, protein>>"), Nodal, "xml", "element"))
	if _, err := s.Resolve([]string{"protein"}); err == nil {
		t.Error("ambiguous resolution succeeded")
	}
	// Exact match beats ambiguity.
	if _, err := s.Resolve([]string{"sql", "table", "protein"}); err != nil {
		t.Errorf("exact resolution failed: %v", err)
	}
}

func TestSchemaCloneIndependence(t *testing.T) {
	s := NewSchema("S")
	s.MustAdd(NewObject(MustScheme("<<a>>"), Nodal, "", ""))
	c := s.Clone("C")
	c.MustAdd(NewObject(MustScheme("<<b>>"), Nodal, "", ""))
	if s.Len() != 1 || c.Len() != 2 {
		t.Error("clone not independent")
	}
	if c.Name() != "C" {
		t.Error("clone name wrong")
	}
}

func TestIdenticalAndDiff(t *testing.T) {
	a := NewSchema("A")
	b := NewSchema("B")
	a.MustAdd(NewObject(MustScheme("<<x>>"), Nodal, "sql", "table"))
	b.MustAdd(NewObject(MustScheme("<<x>>"), Nodal, "sql", "table"))
	if !Identical(a, b) {
		t.Error("identical schemas reported different")
	}
	// Same scheme, different construct: not identical.
	c := NewSchema("C")
	c.MustAdd(NewObject(MustScheme("<<x>>"), Nodal, "xml", "element"))
	if Identical(a, c) {
		t.Error("different constructs reported identical")
	}
	b.MustAdd(NewObject(MustScheme("<<y>>"), Nodal, "", ""))
	onlyA, onlyB := Diff(a, b)
	if len(onlyA) != 0 || len(onlyB) != 1 || !onlyB[0].Equal(MustScheme("<<y>>")) {
		t.Errorf("Diff = %v %v", onlyA, onlyB)
	}
}

func TestGraphOperations(t *testing.T) {
	g := NewGraph()
	if err := g.AddNode("a"); err != nil {
		t.Fatal(err)
	}
	if err := g.AddNode("a"); err == nil {
		t.Error("duplicate node succeeded")
	}
	if err := g.AddNode("b"); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge("e1", "a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge("e2", "a", "missing"); err == nil {
		t.Error("edge to missing node succeeded")
	}
	if err := g.AddEdge("e3", "a"); err == nil {
		t.Error("unary edge succeeded")
	}
	// Edges can reference edges (hypergraph).
	if err := g.AddEdge("e4", "e1", "b"); err != nil {
		t.Errorf("edge over edge failed: %v", err)
	}
	if err := g.AddConstraint("c1", "a subset b"); err != nil {
		t.Fatal(err)
	}
	// Referential removal protection.
	if err := g.RemoveNode("a"); err == nil {
		t.Error("removing referenced node succeeded")
	}
	if err := g.RemoveEdge("e1"); err == nil {
		t.Error("removing referenced edge succeeded")
	}
	if err := g.RemoveEdge("e4"); err != nil {
		t.Fatal(err)
	}
	if err := g.RemoveEdge("e1"); err != nil {
		t.Fatal(err)
	}
	if err := g.RemoveNode("a"); err != nil {
		t.Fatal(err)
	}
	n, e, c := g.Size()
	if n != 1 || e != 0 || c != 1 {
		t.Errorf("Size = %d %d %d", n, e, c)
	}
	if !strings.Contains(g.String(), "constraint c1") {
		t.Error("String missing constraint")
	}
}

func TestObjectKindRoundTrip(t *testing.T) {
	for _, k := range []ObjectKind{Nodal, Link, ConstraintObj} {
		rt, err := ParseObjectKind(k.String())
		if err != nil || rt != k {
			t.Errorf("kind %v round trip failed: %v %v", k, rt, err)
		}
	}
	if _, err := ParseObjectKind("bogus"); err == nil {
		t.Error("ParseObjectKind(bogus) succeeded")
	}
}
