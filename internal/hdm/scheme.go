// Package hdm implements the Hypergraph Data Model (HDM), the low-level
// common data model used by the AutoMed heterogeneous data integration
// system that this library reproduces.
//
// Every schema object is identified by a scheme: an ordered list of name
// parts written ⟨p1, p2, …, pn⟩ (rendered here as <<p1, p2, …, pn>>).
// For the relational modelling language a table t has scheme <<t>> and a
// column c of t has scheme <<t, c>>; fully qualified forms such as
// <<sql, table, t>> are also accepted and matched by suffix.
package hdm

import (
	"fmt"
	"strings"
)

// Scheme identifies a schema object by an ordered, non-empty list of
// name parts. The zero value is the empty (invalid) scheme. The
// canonical map key is computed once at construction: schemes are keyed
// far more often than they are built (every extent lookup, definition
// registration and cache probe keys its scheme), so Key never joins.
type Scheme struct {
	parts []string
	key   string
}

// mkScheme builds a scheme from owned parts, precomputing its key.
func mkScheme(parts []string) Scheme {
	return Scheme{parts: parts, key: strings.Join(parts, "|")}
}

// NewScheme builds a scheme from its parts. Parts are trimmed of
// surrounding whitespace; empty parts are rejected by Validate, not here,
// so that callers can construct then check.
func NewScheme(parts ...string) Scheme {
	cp := make([]string, len(parts))
	for i, p := range parts {
		cp[i] = strings.TrimSpace(p)
	}
	return mkScheme(cp)
}

// ParseScheme parses the textual form of a scheme. Both the bare form
// "a, b" and the delimited form "<<a, b>>" are accepted.
func ParseScheme(s string) (Scheme, error) {
	t := strings.TrimSpace(s)
	if strings.HasPrefix(t, "<<") {
		if !strings.HasSuffix(t, ">>") {
			return Scheme{}, fmt.Errorf("hdm: unterminated scheme %q", s)
		}
		t = t[2 : len(t)-2]
	}
	if strings.TrimSpace(t) == "" {
		return Scheme{}, fmt.Errorf("hdm: empty scheme %q", s)
	}
	raw := strings.Split(t, ",")
	sc := NewScheme(raw...)
	if err := sc.Validate(); err != nil {
		return Scheme{}, err
	}
	return sc, nil
}

// MustScheme is ParseScheme that panics on error; intended for
// package-level literals and tests.
func MustScheme(s string) Scheme {
	sc, err := ParseScheme(s)
	if err != nil {
		panic(err)
	}
	return sc
}

// Validate reports whether the scheme is well formed: at least one part,
// no empty parts, and no part containing the reserved characters
// ',', '|', '<' or '>'.
func (s Scheme) Validate() error {
	if len(s.parts) == 0 {
		return fmt.Errorf("hdm: scheme has no parts")
	}
	for i, p := range s.parts {
		if p == "" {
			return fmt.Errorf("hdm: scheme part %d is empty", i)
		}
		if strings.ContainsAny(p, ",|<>") {
			return fmt.Errorf("hdm: scheme part %q contains a reserved character", p)
		}
	}
	return nil
}

// IsZero reports whether the scheme is the zero (empty) scheme.
func (s Scheme) IsZero() bool { return len(s.parts) == 0 }

// Arity returns the number of parts.
func (s Scheme) Arity() int { return len(s.parts) }

// Part returns the i-th part.
func (s Scheme) Part(i int) string { return s.parts[i] }

// First returns the first part, or "" for the zero scheme.
func (s Scheme) First() string {
	if len(s.parts) == 0 {
		return ""
	}
	return s.parts[0]
}

// Last returns the final part, or "" for the zero scheme.
func (s Scheme) Last() string {
	if len(s.parts) == 0 {
		return ""
	}
	return s.parts[len(s.parts)-1]
}

// Parts returns a copy of the scheme's parts.
func (s Scheme) Parts() []string {
	cp := make([]string, len(s.parts))
	copy(cp, s.parts)
	return cp
}

// Key returns a canonical string usable as a map key. Distinct schemes
// have distinct keys because parts may not contain '|'. The key is
// precomputed at construction; only schemes built outside the package
// constructors fall back to joining.
func (s Scheme) Key() string {
	if s.key == "" && len(s.parts) > 0 {
		return strings.Join(s.parts, "|")
	}
	return s.key
}

// String renders the scheme in its delimited textual form, e.g.
// "<<protein, accession_num>>". ParseScheme(s.String()) == s.
func (s Scheme) String() string { return "<<" + strings.Join(s.parts, ", ") + ">>" }

// Equal reports whether two schemes have identical parts.
func (s Scheme) Equal(t Scheme) bool {
	if len(s.parts) != len(t.parts) {
		return false
	}
	for i := range s.parts {
		if s.parts[i] != t.parts[i] {
			return false
		}
	}
	return true
}

// WithPrefix returns a copy of the scheme whose first part carries the
// given provenance prefix, e.g. <<protein,acc>>.WithPrefix("pedro") is
// <<pedro_protein, acc>>. Federated schemas use this to disambiguate
// equally named objects from different sources (paper §2.2).
func (s Scheme) WithPrefix(prefix string) Scheme {
	if len(s.parts) == 0 || prefix == "" {
		return s
	}
	cp := s.Parts()
	cp[0] = prefix + "_" + cp[0]
	return mkScheme(cp)
}

// HasPrefix reports whether the first part carries the given provenance
// prefix (as applied by WithPrefix).
func (s Scheme) HasPrefix(prefix string) bool {
	return len(s.parts) > 0 && strings.HasPrefix(s.parts[0], prefix+"_")
}

// TrimPrefix removes the provenance prefix from the first part if
// present, returning the original scheme otherwise.
func (s Scheme) TrimPrefix(prefix string) Scheme {
	if !s.HasPrefix(prefix) {
		return s
	}
	cp := s.Parts()
	cp[0] = strings.TrimPrefix(cp[0], prefix+"_")
	return mkScheme(cp)
}

// Extend returns a new scheme with additional trailing parts, e.g.
// <<protein>>.Extend("organism") is <<protein, organism>>.
func (s Scheme) Extend(parts ...string) Scheme {
	cp := make([]string, 0, len(s.parts)+len(parts))
	cp = append(cp, s.parts...)
	for _, p := range parts {
		cp = append(cp, strings.TrimSpace(p))
	}
	return mkScheme(cp)
}

// Parent returns the scheme with the final part removed; the zero scheme
// if there is at most one part. For relational columns this is the table.
func (s Scheme) Parent() Scheme {
	if len(s.parts) <= 1 {
		return Scheme{}
	}
	return mkScheme(s.Parts()[:len(s.parts)-1])
}

// SuffixOf reports whether s is a (proper or improper) suffix of t. It is
// used to resolve user-written schemes that omit the modelling language
// and construct kind, e.g. <<protein>> against <<sql, table, protein>>.
func (s Scheme) SuffixOf(t Scheme) bool {
	if len(s.parts) > len(t.parts) {
		return false
	}
	off := len(t.parts) - len(s.parts)
	for i := range s.parts {
		if s.parts[i] != t.parts[off+i] {
			return false
		}
	}
	return true
}

// CompareSchemes orders schemes lexicographically by parts; usable with
// sort.Slice for deterministic listings.
func CompareSchemes(a, b Scheme) int {
	n := len(a.parts)
	if len(b.parts) < n {
		n = len(b.parts)
	}
	for i := 0; i < n; i++ {
		if a.parts[i] != b.parts[i] {
			if a.parts[i] < b.parts[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(a.parts) < len(b.parts):
		return -1
	case len(a.parts) > len(b.parts):
		return 1
	}
	return 0
}
