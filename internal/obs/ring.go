package obs

import "sync"

// Ring is a bounded ring of recent trace snapshots, serving GET
// /debug/traces: cheap to append, never grows, newest-first on read.
type Ring struct {
	mu   sync.Mutex
	buf  []TraceJSON
	next int
	full bool
}

// NewRing returns a ring holding up to n traces (minimum 1).
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	return &Ring{buf: make([]TraceJSON, n)}
}

// Add appends a trace, evicting the oldest when full.
func (r *Ring) Add(t TraceJSON) {
	r.mu.Lock()
	r.buf[r.next] = t
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

// Snapshot returns the retained traces, newest first.
func (r *Ring) Snapshot() []TraceJSON {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	if r.full {
		n = len(r.buf)
	}
	out := make([]TraceJSON, 0, n)
	for i := 0; i < n; i++ {
		idx := r.next - 1 - i
		if idx < 0 {
			idx += len(r.buf)
		}
		out = append(out, r.buf[idx])
	}
	return out
}

// Len reports how many traces are retained.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		return len(r.buf)
	}
	return r.next
}
