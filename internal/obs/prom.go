package obs

import (
	"bytes"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// PromWriter assembles Prometheus text exposition (version 0.0.4). The
// first sample of each metric family emits its # HELP and # TYPE
// header; callers therefore group a family's series together (the
// format requires it) by emitting them consecutively.
type PromWriter struct {
	buf      bytes.Buffer
	families map[string]bool
}

// NewPromWriter returns an empty writer.
func NewPromWriter() *PromWriter {
	return &PromWriter{families: make(map[string]bool)}
}

func (w *PromWriter) header(name, typ, help string) {
	if w.families[name] {
		return
	}
	w.families[name] = true
	fmt.Fprintf(&w.buf, "# HELP %s %s\n", name, help)
	fmt.Fprintf(&w.buf, "# TYPE %s %s\n", name, typ)
}

// formatValue renders a sample value losslessly.
func formatValue(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelString renders a label set; labels are name, value pairs.
func labelString(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func (w *PromWriter) sample(name, labels string, v float64) {
	w.buf.WriteString(name)
	w.buf.WriteString(labels)
	w.buf.WriteByte(' ')
	w.buf.WriteString(formatValue(v))
	w.buf.WriteByte('\n')
}

// Counter emits one counter sample; labels are name, value pairs.
func (w *PromWriter) Counter(name, help string, v float64, labels ...string) {
	w.header(name, "counter", help)
	w.sample(name, labelString(labels), v)
}

// Gauge emits one gauge sample.
func (w *PromWriter) Gauge(name, help string, v float64, labels ...string) {
	w.header(name, "gauge", help)
	w.sample(name, labelString(labels), v)
}

// Histogram emits one histogram series (cumulative le buckets in
// seconds, +Inf, _sum, _count) from a snapshot whose bounds are in
// milliseconds.
func (w *PromWriter) Histogram(name, help string, snap HistSnapshot, labels ...string) {
	w.header(name, "histogram", help)
	var cum uint64
	for i, bound := range snap.BoundsMs {
		cum += snap.Counts[i]
		le := append(append([]string(nil), labels...), "le", formatValue(bound/1000))
		w.sample(name+"_bucket", labelString(le), float64(cum))
	}
	if n := len(snap.BoundsMs); n < len(snap.Counts) {
		cum += snap.Counts[n]
	}
	inf := append(append([]string(nil), labels...), "le", "+Inf")
	w.sample(name+"_bucket", labelString(inf), float64(cum))
	w.sample(name+"_sum", labelString(labels), float64(snap.SumNs)/1e9)
	w.sample(name+"_count", labelString(labels), float64(cum))
}

// Bytes returns the exposition assembled so far.
func (w *PromWriter) Bytes() []byte { return w.buf.Bytes() }

// ---- Exposition validation ----

// promSample is one parsed sample line.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
	line   int
}

// ValidateExposition checks that data is well-formed Prometheus text
// exposition: every line parses, every sampled family has # HELP and
// # TYPE headers before its first sample, histogram series have
// monotone le buckets ending in +Inf with non-decreasing cumulative
// counts, and each histogram's _count equals its +Inf bucket. It is
// used by the exposition tests and the metrics-smoke CI gate.
func ValidateExposition(data []byte) error {
	if len(data) == 0 {
		return fmt.Errorf("exposition is empty")
	}
	if data[len(data)-1] != '\n' {
		return fmt.Errorf("exposition does not end in a newline")
	}
	help := make(map[string]bool)
	types := make(map[string]string)
	seen := make(map[string]bool) // duplicate-series guard: name + sorted labels
	var samples []promSample

	for i, line := range strings.Split(strings.TrimRight(string(data), "\n"), "\n") {
		ln := i + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				continue // free-form comment
			}
			name := fields[2]
			if !validMetricName(name) {
				return fmt.Errorf("line %d: invalid metric name %q", ln, name)
			}
			if fields[1] == "HELP" {
				if help[name] {
					return fmt.Errorf("line %d: duplicate HELP for %s", ln, name)
				}
				help[name] = true
				continue
			}
			if len(fields) < 4 {
				return fmt.Errorf("line %d: TYPE without a type", ln)
			}
			typ := fields[3]
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return fmt.Errorf("line %d: unknown type %q for %s", ln, typ, name)
			}
			if _, dup := types[name]; dup {
				return fmt.Errorf("line %d: duplicate TYPE for %s", ln, name)
			}
			types[name] = typ
			continue
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return fmt.Errorf("line %d: %w", ln, err)
		}
		s.line = ln
		fam, ok := familyOf(s.name, types)
		if !ok {
			return fmt.Errorf("line %d: sample %s has no # TYPE header", ln, s.name)
		}
		if !help[fam] {
			return fmt.Errorf("line %d: sample %s has no # HELP header", ln, s.name)
		}
		key := s.name + labelKey(s.labels, "")
		if seen[key] {
			return fmt.Errorf("line %d: duplicate series %s", ln, key)
		}
		seen[key] = true
		samples = append(samples, s)
	}
	return checkHistograms(samples, types)
}

// familyOf resolves a sample name to its typed family: histogram
// samples are name_bucket/_sum/_count of a histogram-typed base.
func familyOf(name string, types map[string]string) (string, bool) {
	if _, ok := types[name]; ok {
		return name, true
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base != name && types[base] == "histogram" {
			return base, true
		}
	}
	return "", false
}

// checkHistograms verifies each histogram series: le monotone and
// ending in +Inf, cumulative counts non-decreasing, _count == +Inf.
func checkHistograms(samples []promSample, types map[string]string) error {
	type series struct {
		les     []float64
		counts  []float64
		count   *float64
		hasSum  bool
		anyLine int
	}
	bySeries := make(map[string]*series)
	order := []string{}
	get := func(key string) *series {
		s := bySeries[key]
		if s == nil {
			s = &series{}
			bySeries[key] = s
			order = append(order, key)
		}
		return s
	}
	for _, s := range samples {
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(s.name, suffix)
			if base == s.name || types[base] != "histogram" {
				continue
			}
			key := base + labelKey(s.labels, "le")
			sr := get(key)
			sr.anyLine = s.line
			switch suffix {
			case "_bucket":
				leStr, ok := s.labels["le"]
				if !ok {
					return fmt.Errorf("line %d: histogram bucket %s lacks an le label", s.line, s.name)
				}
				le := math.Inf(1)
				if leStr != "+Inf" {
					v, err := strconv.ParseFloat(leStr, 64)
					if err != nil {
						return fmt.Errorf("line %d: bad le %q: %v", s.line, leStr, err)
					}
					le = v
				}
				sr.les = append(sr.les, le)
				sr.counts = append(sr.counts, s.value)
			case "_sum":
				sr.hasSum = true
			case "_count":
				v := s.value
				sr.count = &v
			}
		}
	}
	for _, key := range order {
		sr := bySeries[key]
		if len(sr.les) == 0 {
			return fmt.Errorf("histogram series %s has no buckets", key)
		}
		for i := 1; i < len(sr.les); i++ {
			if sr.les[i] <= sr.les[i-1] {
				return fmt.Errorf("histogram series %s: le buckets not strictly increasing (%v)", key, sr.les)
			}
			if sr.counts[i] < sr.counts[i-1] {
				return fmt.Errorf("histogram series %s: cumulative bucket counts decrease (%v)", key, sr.counts)
			}
		}
		if !math.IsInf(sr.les[len(sr.les)-1], 1) {
			return fmt.Errorf("histogram series %s: last bucket is not le=\"+Inf\"", key)
		}
		if sr.count == nil {
			return fmt.Errorf("histogram series %s lacks a _count sample", key)
		}
		if !sr.hasSum {
			return fmt.Errorf("histogram series %s lacks a _sum sample", key)
		}
		if inf := sr.counts[len(sr.counts)-1]; *sr.count != inf {
			return fmt.Errorf("histogram series %s: _count %v != +Inf bucket %v", key, *sr.count, inf)
		}
	}
	return nil
}

// labelKey canonicalises a label set (minus one excluded label) for
// series identity.
func labelKey(labels map[string]string, exclude string) string {
	if len(labels) == 0 {
		return "{}"
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != exclude {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString("=")
		b.WriteString(strconv.Quote(labels[k]))
	}
	b.WriteByte('}')
	return b.String()
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// parseSampleLine parses `name{label="value",...} value [timestamp]`.
func parseSampleLine(line string) (promSample, error) {
	s := promSample{labels: map[string]string{}}
	i := 0
	for i < len(line) && line[i] != '{' && line[i] != ' ' && line[i] != '\t' {
		i++
	}
	s.name = line[:i]
	if !validMetricName(s.name) {
		return s, fmt.Errorf("invalid metric name %q", s.name)
	}
	if i < len(line) && line[i] == '{' {
		i++
		for {
			for i < len(line) && (line[i] == ' ' || line[i] == ',') {
				i++
			}
			if i < len(line) && line[i] == '}' {
				i++
				break
			}
			j := i
			for j < len(line) && line[j] != '=' {
				j++
			}
			if j == len(line) {
				return s, fmt.Errorf("unterminated label set")
			}
			name := strings.TrimSpace(line[i:j])
			if !validMetricName(name) {
				return s, fmt.Errorf("invalid label name %q", name)
			}
			i = j + 1
			if i >= len(line) || line[i] != '"' {
				return s, fmt.Errorf("label %s: value is not quoted", name)
			}
			i++
			var val strings.Builder
			for {
				if i >= len(line) {
					return s, fmt.Errorf("label %s: unterminated value", name)
				}
				c := line[i]
				if c == '\\' {
					if i+1 >= len(line) {
						return s, fmt.Errorf("label %s: dangling escape", name)
					}
					switch line[i+1] {
					case '\\':
						val.WriteByte('\\')
					case '"':
						val.WriteByte('"')
					case 'n':
						val.WriteByte('\n')
					default:
						return s, fmt.Errorf("label %s: bad escape \\%c", name, line[i+1])
					}
					i += 2
					continue
				}
				if c == '"' {
					i++
					break
				}
				val.WriteByte(c)
				i++
			}
			if _, dup := s.labels[name]; dup {
				return s, fmt.Errorf("duplicate label %s", name)
			}
			s.labels[name] = val.String()
		}
	}
	rest := strings.Fields(line[i:])
	if len(rest) < 1 || len(rest) > 2 {
		return s, fmt.Errorf("want value (and optional timestamp), got %q", line[i:])
	}
	v, err := parsePromValue(rest[0])
	if err != nil {
		return s, fmt.Errorf("bad value %q: %v", rest[0], err)
	}
	s.value = v
	if len(rest) == 2 {
		if _, err := strconv.ParseInt(rest[1], 10, 64); err != nil {
			return s, fmt.Errorf("bad timestamp %q", rest[1])
		}
	}
	return s, nil
}

func parsePromValue(v string) (float64, error) {
	switch v {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(v, 64)
}
