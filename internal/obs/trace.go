// Package obs is the observability substrate of the dataspace daemon:
// request-scoped traces with per-stage spans, lock-free latency
// histograms, a per-source fetch-metrics registry, and a Prometheus
// text-exposition writer. It sits below every other internal package
// (it imports none of them), so the server, the query processor, and
// the wrappers can all record into it without import cycles.
//
// Everything is context-carried and nil-tolerant: code paths
// instrumented with spans and fetch stats cost nothing when no trace or
// registry rides the context, so the library remains usable (and fast)
// outside the daemon.
package obs

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Span stages recorded by the query pipeline. They are plain strings so
// callers can add stages without touching this package; the constants
// just keep the spelling consistent.
const (
	StageQueue       = "queue"
	StageParse       = "parse"
	StageResultCache = "result-cache"
	StagePrefetch    = "prefetch"
	StageExtent      = "extent"
	StageFetch       = "fetch"
	StageEval        = "eval"
	StageRender      = "render"
	StageBackoff     = "backoff"
	StageBreaker     = "breaker"
	StageFallback    = "fallback"
)

// Cache dispositions attached to spans.
const (
	CacheHit  = "hit"
	CacheMiss = "miss"
)

// Span is one timed stage of a traced request. Fields are written by
// the goroutine that owns the span, under the trace's lock, so
// concurrent spans (parallel prefetch fetches) and a concurrent
// snapshot are safe.
type Span struct {
	tr     *Trace
	id     int
	parent int
	stage  string
	name   string

	start time.Time

	// Guarded by tr.mu.
	detail  string
	durUs   int64
	ended   bool
	cache   string
	rows    int64
	bytes   int64
	retries int64
	errMsg  string
}

// SpanJSON is the serialised form of a span. StartUs is the offset from
// the trace start, so a span tree renders as a waterfall without clock
// arithmetic.
type SpanJSON struct {
	ID      int    `json:"id"`
	Parent  int    `json:"parent,omitempty"`
	Stage   string `json:"stage"`
	Name    string `json:"name,omitempty"`
	Detail  string `json:"detail,omitempty"`
	StartUs int64  `json:"start_us"`
	DurUs   int64  `json:"dur_us"`
	Cache   string `json:"cache,omitempty"`
	Rows    int64  `json:"rows,omitempty"`
	Bytes   int64  `json:"bytes,omitempty"`
	Retries int64  `json:"retries,omitempty"`
	Err     string `json:"error,omitempty"`
}

// Trace collects the spans of one request. Safe for concurrent use:
// parallel prefetch workers append spans while the owning request keeps
// evaluating.
type Trace struct {
	id      string
	session string
	query   string
	start   time.Time

	mu     sync.Mutex
	spans  []*Span
	nextID int
	durUs  int64
}

// TraceJSON is the serialised form of a trace, attached to traced query
// responses and served from the /debug/traces ring.
type TraceJSON struct {
	ID      string     `json:"id"`
	Session string     `json:"session,omitempty"`
	Query   string     `json:"query,omitempty"`
	Start   time.Time  `json:"start"`
	DurUs   int64      `json:"dur_us"`
	Spans   []SpanJSON `json:"spans"`
}

// NewTrace starts a trace. id is typically the request ID; session and
// query label the trace in the /debug/traces ring.
func NewTrace(id, session, query string) *Trace {
	return &Trace{id: id, session: session, query: query, start: time.Now()}
}

// Finish stamps the trace's total duration and returns its snapshot.
func (t *Trace) Finish(total time.Duration) TraceJSON {
	if t == nil {
		return TraceJSON{}
	}
	t.mu.Lock()
	t.durUs = total.Microseconds()
	t.mu.Unlock()
	return t.Snapshot()
}

// Snapshot serialises the trace. In-flight spans (abandoned prefetch
// workers outliving a cancelled request) report their duration so far.
func (t *Trace) Snapshot() TraceJSON {
	if t == nil {
		return TraceJSON{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := TraceJSON{
		ID:      t.id,
		Session: t.session,
		Query:   t.query,
		Start:   t.start,
		DurUs:   t.durUs,
		Spans:   make([]SpanJSON, len(t.spans)),
	}
	for i, s := range t.spans {
		sj := SpanJSON{
			ID:      s.id,
			Parent:  s.parent,
			Stage:   s.stage,
			Name:    s.name,
			Detail:  s.detail,
			StartUs: s.start.Sub(t.start).Microseconds(),
			DurUs:   s.durUs,
			Cache:   s.cache,
			Rows:    s.rows,
			Bytes:   s.bytes,
			Retries: s.retries,
			Err:     s.errMsg,
		}
		if !s.ended {
			sj.DurUs = time.Since(s.start).Microseconds()
		}
		out.Spans[i] = sj
	}
	return out
}

// ---- Context plumbing ----

type ctxKey int

const (
	traceKey ctxKey = iota
	spanKey
	sourcesKey
	fetchKey
)

// WithTrace attaches a trace to the context; spans started under the
// returned context record into it.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey, t)
}

// TraceFrom returns the context's trace, or nil.
func TraceFrom(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(traceKey).(*Trace)
	return t
}

// StartSpan opens a span under the context's trace (no-op, returning a
// nil span and the original context, when the context carries none).
// The returned context carries the new span as the parent of spans
// started under it.
func StartSpan(ctx context.Context, stage, name string) (*Span, context.Context) {
	t := TraceFrom(ctx)
	if t == nil {
		return nil, ctx
	}
	parent := 0
	if ps, _ := ctx.Value(spanKey).(*Span); ps != nil {
		parent = ps.id
	}
	t.mu.Lock()
	t.nextID++
	s := &Span{tr: t, id: t.nextID, parent: parent, stage: stage, name: name, start: time.Now()}
	t.spans = append(t.spans, s)
	t.mu.Unlock()
	return s, context.WithValue(ctx, spanKey, s)
}

// End closes the span, recording its duration and error (if any). Safe
// on a nil span and idempotent.
func (s *Span) End(err error) {
	if s == nil {
		return
	}
	d := time.Since(s.start)
	s.tr.mu.Lock()
	if !s.ended {
		s.ended = true
		s.durUs = d.Microseconds()
		if err != nil {
			s.errMsg = err.Error()
		}
	}
	s.tr.mu.Unlock()
}

// SetCache marks the span's cache disposition (CacheHit/CacheMiss).
func (s *Span) SetCache(disposition string) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.cache = disposition
	s.tr.mu.Unlock()
}

// SetDetail attaches free-form detail (e.g. the scheme fetched).
func (s *Span) SetDetail(d string) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.detail = d
	s.tr.mu.Unlock()
}

// SetRows records how many rows/elements the stage produced.
func (s *Span) SetRows(n int64) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.rows = n
	s.tr.mu.Unlock()
}

// SetBytes records how many bytes the stage moved.
func (s *Span) SetBytes(n int64) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.bytes = n
	s.tr.mu.Unlock()
}

// SetRetries records how many retries the stage needed.
func (s *Span) SetRetries(n int64) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.retries = n
	s.tr.mu.Unlock()
}

// ---- Per-fetch wrapper detail ----

// FetchStat accumulates detail only the wrapper knows about one fetch
// in flight: wire bytes and retry attempts. The query layer opens one
// per fetch with BeginFetch; wrappers report into it through the
// context with AddFetchBytes/AddFetchRetry.
type FetchStat struct {
	bytes   atomic.Int64
	retries atomic.Int64
}

// Bytes returns the wire bytes reported so far.
func (f *FetchStat) Bytes() int64 {
	if f == nil {
		return 0
	}
	return f.bytes.Load()
}

// Retries returns the retries reported so far.
func (f *FetchStat) Retries() int64 {
	if f == nil {
		return 0
	}
	return f.retries.Load()
}

// BeginFetch attaches a fresh FetchStat to the context for one wrapper
// fetch.
func BeginFetch(ctx context.Context) (context.Context, *FetchStat) {
	fs := &FetchStat{}
	return context.WithValue(ctx, fetchKey, fs), fs
}

func fetchStatFrom(ctx context.Context) *FetchStat {
	if ctx == nil {
		return nil
	}
	fs, _ := ctx.Value(fetchKey).(*FetchStat)
	return fs
}

// AddFetchBytes reports wire bytes for the fetch in flight (no-op
// outside an instrumented fetch).
func AddFetchBytes(ctx context.Context, n int64) {
	if fs := fetchStatFrom(ctx); fs != nil {
		fs.bytes.Add(n)
	}
}

// AddFetchRetry reports one retry for the fetch in flight.
func AddFetchRetry(ctx context.Context) {
	if fs := fetchStatFrom(ctx); fs != nil {
		fs.retries.Add(1)
	}
}
