package obs

import (
	"sort"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket latency histogram with atomic counters:
// Observe on the per-query hot path takes no lock. Bounds are upper
// bucket bounds in milliseconds; observations above the last bound land
// in an implicit overflow (+Inf) bucket.
type Histogram struct {
	boundsMs []float64
	buckets  []atomic.Uint64 // len(boundsMs)+1; last is +Inf
	sumNs    atomic.Int64
	maxNs    atomic.Int64
}

// NewHistogram builds a histogram over the given upper bounds
// (milliseconds, strictly increasing).
func NewHistogram(boundsMs []float64) *Histogram {
	return &Histogram{
		boundsMs: append([]float64(nil), boundsMs...),
		buckets:  make([]atomic.Uint64, len(boundsMs)+1),
	}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	ns := d.Nanoseconds()
	ms := float64(ns) / 1e6
	// First bound >= ms is the le bucket; beyond every bound, overflow.
	idx := sort.SearchFloat64s(h.boundsMs, ms)
	h.buckets[idx].Add(1)
	h.sumNs.Add(ns)
	for {
		cur := h.maxNs.Load()
		if ns <= cur || h.maxNs.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// HistSnapshot is a point-in-time copy of a histogram. Counts has one
// entry per bound plus the overflow bucket. Individual counters are
// loaded without a global lock, so a snapshot taken under concurrent
// observation may be momentarily torn between buckets and sum; each
// counter is itself exact.
type HistSnapshot struct {
	BoundsMs []float64
	Counts   []uint64
	Count    uint64
	SumNs    int64
	MaxNs    int64
}

// Snapshot copies the histogram's current state. Count is derived from
// the buckets so cumulative bucket values and the total always agree
// (the Prometheus +Inf invariant).
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		BoundsMs: h.boundsMs,
		Counts:   make([]uint64, len(h.buckets)),
		SumNs:    h.sumNs.Load(),
		MaxNs:    h.maxNs.Load(),
	}
	for i := range h.buckets {
		c := h.buckets[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	return s
}

// MeanMs returns the mean observation in milliseconds (0 when empty).
func (s HistSnapshot) MeanMs() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.SumNs) / float64(s.Count) / 1e6
}

// MaxMs returns the largest observation in milliseconds.
func (s HistSnapshot) MaxMs() float64 { return float64(s.MaxNs) / 1e6 }

// Quantile estimates the q-th quantile (0 < q <= 1) in milliseconds by
// linear interpolation within the bucket holding the target rank —
// the same estimate Prometheus's histogram_quantile computes. The
// overflow bucket is clamped to the observed maximum. Returns 0 when
// the histogram is empty.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i == len(s.BoundsMs) {
			// Overflow bucket: the true value is above the last bound;
			// the observed max is the tightest honest estimate.
			return s.MaxMs()
		}
		lo := 0.0
		if i > 0 {
			lo = s.BoundsMs[i-1]
		}
		hi := s.BoundsMs[i]
		if c == 0 {
			return hi
		}
		frac := (rank - float64(cum-c)) / float64(c)
		est := lo + (hi-lo)*frac
		if max := s.MaxMs(); max > 0 && est > max {
			est = max
		}
		return est
	}
	return s.MaxMs()
}
