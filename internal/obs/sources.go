package obs

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// FetchBoundsMs are the per-source fetch-latency histogram bounds:
// sub-millisecond for in-process sources, out to tens of seconds for
// slow federated backends.
var FetchBoundsMs = []float64{0.25, 1, 5, 25, 100, 500, 2500, 10000}

// sourceStats aggregates one (source, kind) pair's fetch metrics. All
// fields are atomic; Observe takes no lock on the fetch path.
type sourceStats struct {
	fetches atomic.Uint64
	errors  atomic.Uint64
	retries atomic.Uint64
	rows    atomic.Int64
	bytes   atomic.Int64
	lat     *Histogram
}

// Sources is the per-source fetch-metrics registry, keyed by source
// name and wrapper kind. The registry itself is read-mostly (one map
// insert per source ever); per-fetch recording is lock-free.
type Sources struct {
	mu sync.RWMutex
	m  map[[2]string]*sourceStats
}

// NewSources returns an empty registry.
func NewSources() *Sources {
	return &Sources{m: make(map[[2]string]*sourceStats)}
}

func (s *Sources) stats(source, kind string) *sourceStats {
	key := [2]string{source, kind}
	s.mu.RLock()
	st := s.m[key]
	s.mu.RUnlock()
	if st != nil {
		return st
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if st = s.m[key]; st == nil {
		st = &sourceStats{lat: NewHistogram(FetchBoundsMs)}
		s.m[key] = st
	}
	return st
}

// Observe records one wrapper fetch. Nil-safe so uninstrumented paths
// (library use without a registry in context) cost one nil check.
func (s *Sources) Observe(source, kind string, d time.Duration, rows, bytes, retries int64, err error) {
	if s == nil {
		return
	}
	st := s.stats(source, kind)
	st.fetches.Add(1)
	if err != nil {
		st.errors.Add(1)
	}
	if retries > 0 {
		st.retries.Add(uint64(retries))
	}
	st.rows.Add(rows)
	st.bytes.Add(bytes)
	st.lat.Observe(d)
}

// SourceSnapshot is a point-in-time copy of one source's fetch metrics.
type SourceSnapshot struct {
	Source  string
	Kind    string
	Fetches uint64
	Errors  uint64
	Retries uint64
	Rows    int64
	Bytes   int64
	Latency HistSnapshot
}

// Snapshot copies every source's metrics, sorted by source then kind.
func (s *Sources) Snapshot() []SourceSnapshot {
	if s == nil {
		return nil
	}
	s.mu.RLock()
	keys := make([][2]string, 0, len(s.m))
	for k := range s.m {
		keys = append(keys, k)
	}
	s.mu.RUnlock()
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	out := make([]SourceSnapshot, 0, len(keys))
	for _, k := range keys {
		s.mu.RLock()
		st := s.m[k]
		s.mu.RUnlock()
		if st == nil {
			continue
		}
		out = append(out, SourceSnapshot{
			Source:  k[0],
			Kind:    k[1],
			Fetches: st.fetches.Load(),
			Errors:  st.errors.Load(),
			Retries: st.retries.Load(),
			Rows:    st.rows.Load(),
			Bytes:   st.bytes.Load(),
			Latency: st.lat.Snapshot(),
		})
	}
	return out
}

// WithSources attaches the registry to a request context so the query
// layer's fetches record into it.
func WithSources(ctx context.Context, s *Sources) context.Context {
	return context.WithValue(ctx, sourcesKey, s)
}

// SourcesFrom returns the context's registry, or nil (Observe on nil is
// a no-op).
func SourcesFrom(ctx context.Context) *Sources {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(sourcesKey).(*Sources)
	return s
}
