package obs

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, ms := range []float64{0.5, 0.9, 5, 5, 50, 500} {
		h.Observe(time.Duration(ms * float64(time.Millisecond)))
	}
	s := h.Snapshot()
	if s.Count != 6 {
		t.Fatalf("count = %d, want 6", s.Count)
	}
	want := []uint64{2, 2, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if got := s.MaxMs(); got < 499 || got > 501 {
		t.Fatalf("max = %vms, want ~500", got)
	}
	// p50 rank 3 lands in the (1,10] bucket.
	if q := s.Quantile(0.5); q < 1 || q > 10 {
		t.Fatalf("p50 = %v, want within (1,10]", q)
	}
	// p99 lands in the overflow bucket and clamps to the observed max.
	if q, max := s.Quantile(0.99), s.MaxMs(); q != max {
		t.Fatalf("p99 = %v, want max %v", q, max)
	}
	if q := s.Quantile(0.5); HistSnapshot.Quantile(HistSnapshot{}, 0.5) != 0 && q == 0 {
		t.Fatalf("empty-snapshot quantile should be 0")
	}
}

func TestHistogramObserveConcurrent(t *testing.T) {
	h := NewHistogram([]float64{1, 10})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(5 * time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if s := h.Snapshot(); s.Count != 8000 || s.Counts[1] != 8000 {
		t.Fatalf("count = %d buckets = %v, want 8000 in bucket 1", s.Count, s.Counts)
	}
}

func TestTraceSpanTree(t *testing.T) {
	tr := NewTrace("req-1", "default", "<<books>>")
	ctx := WithTrace(context.Background(), tr)

	parent, pctx := StartSpan(ctx, StagePrefetch, "")
	child, _ := StartSpan(pctx, StageFetch, "Library")
	child.SetDetail("<<books>>")
	child.SetCache(CacheMiss)
	child.SetRows(3)
	child.SetBytes(42)
	child.End(nil)
	parent.End(nil)
	sib, _ := StartSpan(ctx, StageEval, "")
	sib.End(errors.New("boom"))

	tj := tr.Finish(time.Millisecond)
	if tj.ID != "req-1" || tj.Session != "default" || tj.Query != "<<books>>" {
		t.Fatalf("trace labels wrong: %+v", tj)
	}
	if len(tj.Spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(tj.Spans))
	}
	p, c, s := tj.Spans[0], tj.Spans[1], tj.Spans[2]
	if p.Parent != 0 || s.Parent != 0 {
		t.Fatalf("top-level spans should have parent 0: %+v %+v", p, s)
	}
	if c.Parent != p.ID {
		t.Fatalf("child parent = %d, want %d", c.Parent, p.ID)
	}
	if c.Cache != CacheHit && c.Cache != CacheMiss {
		t.Fatalf("child cache disposition missing: %+v", c)
	}
	if c.Rows != 3 || c.Bytes != 42 || c.Detail != "<<books>>" {
		t.Fatalf("child attrs wrong: %+v", c)
	}
	if s.Err != "boom" {
		t.Fatalf("error span not recorded: %+v", s)
	}
}

func TestStartSpanWithoutTraceIsNoop(t *testing.T) {
	sp, ctx := StartSpan(context.Background(), StageEval, "")
	if sp != nil {
		t.Fatalf("expected nil span without a trace")
	}
	// All recording methods must be nil-safe.
	sp.SetCache(CacheHit)
	sp.SetRows(1)
	sp.SetBytes(1)
	sp.SetRetries(1)
	sp.SetDetail("x")
	sp.End(nil)
	if ctx == nil {
		t.Fatalf("context must pass through")
	}
}

func TestFetchStat(t *testing.T) {
	ctx, fs := BeginFetch(context.Background())
	AddFetchBytes(ctx, 100)
	AddFetchBytes(ctx, 24)
	AddFetchRetry(ctx)
	if fs.Bytes() != 124 || fs.Retries() != 1 {
		t.Fatalf("bytes=%d retries=%d", fs.Bytes(), fs.Retries())
	}
	// No-fetch contexts swallow reports.
	AddFetchBytes(context.Background(), 1)
	AddFetchRetry(context.Background())
}

func TestSourcesRegistry(t *testing.T) {
	s := NewSources()
	s.Observe("Library", "sql", 5*time.Millisecond, 10, 200, 0, nil)
	s.Observe("Library", "sql", 7*time.Millisecond, 5, 100, 1, errors.New("x"))
	s.Observe("Shop", "rest", time.Millisecond, 1, 10, 0, nil)
	snaps := s.Snapshot()
	if len(snaps) != 2 {
		t.Fatalf("got %d sources, want 2", len(snaps))
	}
	lib := snaps[0]
	if lib.Source != "Library" || lib.Kind != "sql" {
		t.Fatalf("order wrong: %+v", snaps)
	}
	if lib.Fetches != 2 || lib.Errors != 1 || lib.Retries != 1 || lib.Rows != 15 || lib.Bytes != 300 {
		t.Fatalf("library stats wrong: %+v", lib)
	}
	if lib.Latency.Count != 2 {
		t.Fatalf("library latency count = %d", lib.Latency.Count)
	}
	// Nil registry (uninstrumented context) is a no-op.
	SourcesFrom(context.Background()).Observe("x", "y", 0, 0, 0, 0, nil)
}

func TestRing(t *testing.T) {
	r := NewRing(3)
	for i := 1; i <= 5; i++ {
		r.Add(TraceJSON{ID: fmt.Sprintf("t%d", i)})
	}
	got := r.Snapshot()
	if len(got) != 3 || got[0].ID != "t5" || got[2].ID != "t3" {
		t.Fatalf("ring snapshot = %+v, want t5,t4,t3", got)
	}
	if r.Len() != 3 {
		t.Fatalf("ring len = %d", r.Len())
	}
}

func TestPromWriterProducesValidExposition(t *testing.T) {
	w := NewPromWriter()
	w.Counter("app_requests_total", "Requests served.", 42)
	w.Gauge("app_sessions", "Live sessions.", 3)
	h := NewHistogram([]float64{1, 10, 100})
	h.Observe(2 * time.Millisecond)
	h.Observe(500 * time.Millisecond)
	w.Histogram("app_latency_seconds", "Latency.", h.Snapshot())
	w.Counter("app_fetches_total", "Fetches.", 7, "source", `we"ird\na me`, "kind", "sql")
	w.Counter("app_fetches_total", "Fetches.", 8, "source", "Shop", "kind", "rest")
	data := w.Bytes()
	if err := ValidateExposition(data); err != nil {
		t.Fatalf("invalid exposition: %v\n%s", err, data)
	}
	text := string(data)
	for _, want := range []string{
		"# HELP app_requests_total Requests served.",
		"# TYPE app_latency_seconds histogram",
		`app_latency_seconds_bucket{le="0.01"} 1`,
		`app_latency_seconds_bucket{le="+Inf"} 2`,
		"app_latency_seconds_count 2",
		`kind="rest"`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition lacks %q:\n%s", want, text)
		}
	}
	if n := strings.Count(text, "# TYPE app_fetches_total"); n != 1 {
		t.Fatalf("family header emitted %d times, want once", n)
	}
}

func TestValidateExpositionRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"no newline":     "# HELP a b\n# TYPE a counter\na 1",
		"no type":        "# HELP a b\na 1\n",
		"no help":        "# TYPE a counter\na 1\n",
		"bad value":      "# HELP a b\n# TYPE a counter\na pancake\n",
		"bad name":       "# HELP 0a b\n# TYPE 0a counter\n0a 1\n",
		"dup series":     "# HELP a b\n# TYPE a counter\na 1\na 2\n",
		"unquoted label": "# HELP a b\n# TYPE a counter\na{x=1} 1\n",
		"non-monotone le": "# HELP h x\n# TYPE h histogram\n" +
			`h_bucket{le="1"} 1` + "\n" + `h_bucket{le="0.5"} 2` + "\n" +
			`h_bucket{le="+Inf"} 2` + "\nh_sum 1\nh_count 2\n",
		"decreasing cumulative": "# HELP h x\n# TYPE h histogram\n" +
			`h_bucket{le="1"} 5` + "\n" + `h_bucket{le="2"} 3` + "\n" +
			`h_bucket{le="+Inf"} 5` + "\nh_sum 1\nh_count 5\n",
		"no inf bucket": "# HELP h x\n# TYPE h histogram\n" +
			`h_bucket{le="1"} 1` + "\nh_sum 1\nh_count 1\n",
		"count mismatch": "# HELP h x\n# TYPE h histogram\n" +
			`h_bucket{le="1"} 1` + "\n" + `h_bucket{le="+Inf"} 2` + "\nh_sum 1\nh_count 3\n",
		"missing sum": "# HELP h x\n# TYPE h histogram\n" +
			`h_bucket{le="+Inf"} 1` + "\nh_count 1\n",
	}
	for name, data := range cases {
		if err := ValidateExposition([]byte(data)); err == nil {
			t.Errorf("%s: expected a validation error", name)
		}
	}
}

func TestValidateExpositionAcceptsTimestampsAndComments(t *testing.T) {
	data := "# a free-form comment\n# HELP a b c d\n# TYPE a gauge\na{x=\"y\"} 1.5 1700000000000\n"
	if err := ValidateExposition([]byte(data)); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
}
