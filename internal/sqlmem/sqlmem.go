// Package sqlmem is an in-process database/sql driver backed by the
// rel in-memory engine. It exists so the SQL wrapper (and every test
// that needs a live database/sql backend) can run without cgo, network
// access, or external driver modules: a rel.DB is registered under a
// DSN, and database/sql connections to that DSN introspect and scan it
// through the standard driver interfaces.
//
// The driver is deliberately not a SQL engine. It understands exactly
// the statement shapes the wrapper's dialects emit — the sqlite_master
// / PRAGMA table_info introspection queries, their information_schema
// equivalents, and simple column projections — and rejects everything
// else. Registered databases are read-only through this driver.
//
// A per-DSN artificial latency (SetDelay) makes connections slow on
// demand, which is how tests exercise prefetch overlap and context
// cancellation against a "remote" SQL backend.
package sqlmem

import (
	"context"
	"database/sql"
	"database/sql/driver"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/dataspace/automed/internal/rel"
)

// DriverName is the name this package registers with database/sql.
const DriverName = "sqlmem"

func init() {
	sql.Register(DriverName, drv{})
}

var (
	mu      sync.Mutex
	sources = make(map[string]*entry)
)

type entry struct {
	db    *rel.DB
	delay time.Duration
	noPK  map[string]bool
}

// Register installs (or replaces) the database served for a DSN.
func Register(dsn string, db *rel.DB) {
	mu.Lock()
	defer mu.Unlock()
	sources[dsn] = &entry{db: db}
}

// SetDelay makes every query against the DSN block for d first
// (cancellable via the query context); it simulates a slow remote
// backend. Registering the DSN again resets the delay.
func SetDelay(dsn string, d time.Duration) {
	mu.Lock()
	defer mu.Unlock()
	if e, ok := sources[dsn]; ok {
		e.delay = d
	}
}

// SetNoPK makes the introspection queries report no primary key for
// the named tables, as catalogs do for keyless tables. The wrapper
// then falls back to keying on the first column, which (unlike a rel
// primary key) admits NULLs — how tests stage NULL-key rows.
// Registering the DSN again resets the set.
func SetNoPK(dsn string, tables ...string) {
	mu.Lock()
	defer mu.Unlock()
	e, ok := sources[dsn]
	if !ok {
		return
	}
	m := make(map[string]bool, len(tables))
	for _, t := range tables {
		m[t] = true
	}
	e.noPK = m
}

// Unregister removes a DSN; live connections start failing, which is
// how tests simulate a vanished backend.
func Unregister(dsn string) {
	mu.Lock()
	defer mu.Unlock()
	delete(sources, dsn)
}

func lookup(dsn string) (*rel.DB, time.Duration, map[string]bool, error) {
	mu.Lock()
	defer mu.Unlock()
	e, ok := sources[dsn]
	if !ok {
		return nil, 0, nil, fmt.Errorf("sqlmem: no database registered for DSN %q", dsn)
	}
	// e.noPK is replaced wholesale by SetNoPK, never mutated, so the
	// reference is safe to use outside the lock.
	return e.db, e.delay, e.noPK, nil
}

type drv struct{}

// Open implements driver.Driver. The DSN is resolved per query, so a
// database registered (or replaced) after sql.Open is still picked up.
func (drv) Open(dsn string) (driver.Conn, error) {
	if _, _, _, err := lookup(dsn); err != nil {
		return nil, err
	}
	return &conn{dsn: dsn}, nil
}

type conn struct{ dsn string }

func (c *conn) Prepare(q string) (driver.Stmt, error) { return &stmt{c: c, q: q}, nil }
func (c *conn) Close() error                          { return nil }
func (c *conn) Begin() (driver.Tx, error) {
	return nil, fmt.Errorf("sqlmem: transactions are not supported")
}

// QueryContext implements driver.QueryerContext, the path database/sql
// prefers; the artificial per-DSN delay is applied here under the
// caller's context so cancellation interrupts a "slow" backend.
func (c *conn) QueryContext(ctx context.Context, q string, args []driver.NamedValue) (driver.Rows, error) {
	vals := make([]driver.Value, len(args))
	for i, a := range args {
		vals[i] = a.Value
	}
	return c.query(ctx, q, vals)
}

type stmt struct {
	c *conn
	q string
}

func (s *stmt) Close() error  { return nil }
func (s *stmt) NumInput() int { return -1 }
func (s *stmt) Exec(args []driver.Value) (driver.Result, error) {
	return nil, fmt.Errorf("sqlmem: the driver is read-only")
}
func (s *stmt) Query(args []driver.Value) (driver.Rows, error) {
	return s.c.query(context.Background(), s.q, args)
}

func (c *conn) query(ctx context.Context, q string, args []driver.Value) (driver.Rows, error) {
	db, delay, noPK, err := lookup(c.dsn)
	if err != nil {
		return nil, err
	}
	if delay > 0 {
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return dispatch(db, q, args, noPK)
}

// normalize collapses runs of whitespace so statement matching is
// insensitive to the formatting of the emitting dialect.
func normalize(q string) string {
	return strings.Join(strings.Fields(strings.TrimSpace(q)), " ")
}

// The introspection statements the wrapper dialects emit, normalized.
// sqlmem hosts a single database per DSN, so the DATABASE() scoping of
// the information_schema dialect and the current_schema() scoping of
// the postgres dialect are trivially satisfied.
const (
	qSQLiteTables = `SELECT name FROM sqlite_master WHERE type = 'table' ORDER BY name`
	qInfoTables   = `SELECT table_name FROM information_schema.tables WHERE table_type = 'BASE TABLE' AND table_schema = DATABASE() ORDER BY table_name`
	qInfoColumns  = `SELECT column_name FROM information_schema.columns WHERE table_schema = DATABASE() AND table_name = ? ORDER BY ordinal_position`
	qInfoPK       = `SELECT kcu.column_name FROM information_schema.table_constraints tc JOIN information_schema.key_column_usage kcu ON kcu.constraint_name = tc.constraint_name AND kcu.table_schema = tc.table_schema AND kcu.table_name = tc.table_name WHERE tc.constraint_type = 'PRIMARY KEY' AND tc.table_schema = DATABASE() AND tc.table_name = ? ORDER BY kcu.ordinal_position`
	qPGTables     = `SELECT table_name FROM information_schema.tables WHERE table_type = 'BASE TABLE' AND table_schema = current_schema() ORDER BY table_name`
	qPGColumns    = `SELECT column_name FROM information_schema.columns WHERE table_schema = current_schema() AND table_name = $1 ORDER BY ordinal_position`
	qPGPK         = `SELECT kcu.column_name FROM information_schema.table_constraints tc JOIN information_schema.key_column_usage kcu ON kcu.constraint_name = tc.constraint_name AND kcu.table_schema = tc.table_schema AND kcu.table_name = tc.table_name WHERE tc.constraint_type = 'PRIMARY KEY' AND tc.table_schema = current_schema() AND tc.table_name = $1 ORDER BY kcu.ordinal_position`
)

func dispatch(db *rel.DB, rawQ string, args []driver.Value, noPK map[string]bool) (driver.Rows, error) {
	q := normalize(rawQ)
	switch q {
	case qSQLiteTables, qInfoTables, qPGTables:
		names := db.TableNames()
		sort.Strings(names)
		rows := make([][]driver.Value, len(names))
		for i, n := range names {
			rows[i] = []driver.Value{n}
		}
		return &memRows{cols: []string{"name"}, data: rows}, nil
	case qInfoColumns, qPGColumns:
		t, err := argTable(db, args)
		if err != nil {
			return nil, err
		}
		var rows [][]driver.Value
		for _, c := range t.Columns() {
			rows = append(rows, []driver.Value{c.Name})
		}
		return &memRows{cols: []string{"column_name"}, data: rows}, nil
	case qInfoPK, qPGPK:
		t, err := argTable(db, args)
		if err != nil {
			return nil, err
		}
		data := [][]driver.Value{{t.PrimaryKey()}}
		if noPK[t.Name()] {
			data = nil
		}
		return &memRows{cols: []string{"column_name"}, data: data}, nil
	}
	if name, ok := strings.CutPrefix(q, "PRAGMA table_info("); ok {
		name = strings.TrimSuffix(name, ")")
		t, ok := db.Table(unquoteIdent(name))
		if !ok {
			return nil, fmt.Errorf("sqlmem: no such table: %s", name)
		}
		var rows [][]driver.Value
		for i, c := range t.Columns() {
			pk := int64(0)
			if c.Name == t.PrimaryKey() && !noPK[t.Name()] {
				pk = 1
			}
			rows = append(rows, []driver.Value{
				int64(i), c.Name, sqliteTypeName(c.Type), int64(0), nil, pk,
			})
		}
		return &memRows{
			cols: []string{"cid", "name", "type", "notnull", "dflt_value", "pk"},
			data: rows,
		}, nil
	}
	return selectRows(db, q)
}

func argTable(db *rel.DB, args []driver.Value) (*rel.Table, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("sqlmem: want 1 argument, got %d", len(args))
	}
	name, ok := args[0].(string)
	if !ok {
		return nil, fmt.Errorf("sqlmem: table-name argument must be a string, got %T", args[0])
	}
	t, ok := db.Table(name)
	if !ok {
		return nil, fmt.Errorf("sqlmem: no such table: %s", name)
	}
	return t, nil
}

// selectRows serves `SELECT <idents> FROM <table>` projections with an
// optional trailing `LIMIT n OFFSET m`, the only data statements the
// wrapper emits. Identifiers may be double-quoted. The window is
// sliced off the table's row slice before any driver values are
// materialised, so a paged scan over a large table stays O(page), not
// O(table), per round trip.
func selectRows(db *rel.DB, q string) (driver.Rows, error) {
	rest, ok := strings.CutPrefix(q, "SELECT ")
	if !ok {
		return nil, fmt.Errorf("sqlmem: unsupported statement %q", q)
	}
	colPart, table, ok := strings.Cut(rest, " FROM ")
	if !ok {
		return nil, fmt.Errorf("sqlmem: unsupported statement %q", q)
	}
	limit, offset := -1, 0
	if name, clause, paged := strings.Cut(table, " "); paged {
		f := strings.Fields(clause)
		if len(f) != 4 || f[0] != "LIMIT" || f[2] != "OFFSET" {
			return nil, fmt.Errorf("sqlmem: unsupported statement %q", q)
		}
		var err error
		if limit, err = strconv.Atoi(f[1]); err != nil || limit < 0 {
			return nil, fmt.Errorf("sqlmem: unsupported statement %q", q)
		}
		if offset, err = strconv.Atoi(f[3]); err != nil || offset < 0 {
			return nil, fmt.Errorf("sqlmem: unsupported statement %q", q)
		}
		table = name
	}
	t, found := db.Table(unquoteIdent(table))
	if !found {
		return nil, fmt.Errorf("sqlmem: no such table: %s", table)
	}
	var cols []string
	for _, c := range strings.Split(colPart, ",") {
		cols = append(cols, unquoteIdent(strings.TrimSpace(c)))
	}
	idx := make([]int, len(cols))
	for i, c := range cols {
		j, ok := t.ColIndex(c)
		if !ok {
			return nil, fmt.Errorf("sqlmem: table %q has no column %q", t.Name(), c)
		}
		idx[i] = j
	}
	rows := t.Rows()
	if limit >= 0 {
		if offset > len(rows) {
			offset = len(rows)
		}
		rows = rows[offset:]
		if limit < len(rows) {
			rows = rows[:limit]
		}
	}
	data := make([][]driver.Value, len(rows))
	for rn, row := range rows {
		out := make([]driver.Value, len(idx))
		for i, j := range idx {
			out[i] = row[j] // rel cells are int64/float64/string/bool/nil: all driver.Values
		}
		data[rn] = out
	}
	return &memRows{cols: cols, data: data}, nil
}

func unquoteIdent(s string) string {
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		return strings.ReplaceAll(s[1:len(s)-1], `""`, `"`)
	}
	return s
}

func sqliteTypeName(t rel.Type) string {
	switch t {
	case rel.Int:
		return "INTEGER"
	case rel.Float:
		return "REAL"
	case rel.Bool:
		return "BOOLEAN"
	}
	return "TEXT"
}

// memRows streams a materialised result set.
type memRows struct {
	cols []string
	data [][]driver.Value
	i    int
}

func (r *memRows) Columns() []string { return r.cols }
func (r *memRows) Close() error      { return nil }
func (r *memRows) Next(dest []driver.Value) error {
	if r.i >= len(r.data) {
		return io.EOF
	}
	copy(dest, r.data[r.i])
	r.i++
	return nil
}
