package sqlmem

import (
	"context"
	"database/sql"
	"errors"
	"testing"
	"time"

	"github.com/dataspace/automed/internal/rel"
)

func testDB(t *testing.T) *rel.DB {
	t.Helper()
	db := rel.NewDB("T")
	tb := db.MustCreateTable("t", []rel.Column{
		{Name: "id", Type: rel.Int},
		{Name: "name", Type: rel.String},
		{Name: "score", Type: rel.Float},
	}, "id")
	tb.MustInsert(int64(1), "a", 1.5)
	tb.MustInsert(int64(2), nil, 2.5)
	return db
}

func TestDriverIntrospectionAndScan(t *testing.T) {
	Register("drv-test", testDB(t))
	db, err := sql.Open(DriverName, "drv-test")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	var name string
	if err := db.QueryRow(`SELECT name FROM sqlite_master WHERE type = 'table' ORDER BY name`).Scan(&name); err != nil {
		t.Fatal(err)
	}
	if name != "t" {
		t.Errorf("table name = %q", name)
	}

	// information_schema variant with a placeholder argument.
	rows, err := db.Query(`SELECT column_name FROM information_schema.columns WHERE table_schema = DATABASE() AND table_name = ? ORDER BY ordinal_position`, "t")
	if err != nil {
		t.Fatal(err)
	}
	var cols []string
	for rows.Next() {
		var c string
		if err := rows.Scan(&c); err != nil {
			t.Fatal(err)
		}
		cols = append(cols, c)
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if len(cols) != 3 || cols[0] != "id" || cols[2] != "score" {
		t.Errorf("columns = %v", cols)
	}

	// Projection with NULL and typed cells.
	var (
		id    int64
		nm    any
		score float64
	)
	r := db.QueryRow(`SELECT "id", "name", "score" FROM "t"`)
	if err := r.Scan(&id, &nm, &score); err != nil {
		t.Fatal(err)
	}
	if id != 1 || nm != "a" || score != 1.5 {
		t.Errorf("row = %v %v %v", id, nm, score)
	}
}

func TestDriverRejections(t *testing.T) {
	Register("drv-rej", testDB(t))
	db, err := sql.Open(DriverName, "drv-rej")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Query("DROP TABLE t"); err == nil {
		t.Error("arbitrary SQL accepted")
	}
	if _, err := db.Exec(`SELECT "id" FROM "t"`); err == nil {
		t.Error("Exec accepted on a read-only driver")
	}
	if _, err := sql.Open(DriverName, "never-registered"); err == nil {
		// sql.Open is lazy for most drivers but ours validates the DSN;
		// either way a query must fail.
		if _, err := db.Query(`SELECT "id" FROM "missing"`); err == nil {
			t.Error("unknown table accepted")
		}
	}
}

func TestDriverDelayAndCancellation(t *testing.T) {
	Register("drv-slow", testDB(t))
	SetDelay("drv-slow", 5*time.Second)
	db, err := sql.Open(DriverName, "drv-slow")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = db.QueryContext(ctx, `SELECT "id" FROM "t"`)
	if err == nil {
		t.Fatal("slow query beat its deadline")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("error = %v", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Error("cancellation did not interrupt the artificial delay")
	}
}
