// Package render draws ASCII diagrams of integration topologies,
// schemas and pathways — textual reproductions of the paper's Figures
// 1-4 — for the CLI tools and documentation.
package render

import (
	"fmt"
	"sort"
	"strings"

	"github.com/dataspace/automed/internal/hdm"
	"github.com/dataspace/automed/internal/transform"
)

// box draws a single-line box around a label.
func box(label string) []string {
	w := len(label) + 2
	return []string{
		"+" + strings.Repeat("-", w) + "+",
		"| " + label + " |",
		"+" + strings.Repeat("-", w) + "+",
	}
}

// row renders a horizontal row of boxes separated by gaps.
func row(labels []string, gap int) string {
	boxes := make([][]string, len(labels))
	for i, l := range labels {
		boxes[i] = box(l)
	}
	var b strings.Builder
	for line := 0; line < 3; line++ {
		for i, bx := range boxes {
			if i > 0 {
				b.WriteString(strings.Repeat(" ", gap))
			}
			b.WriteString(bx[line])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// UnionCompatible renders the Figure 1 topology: data source schemas
// transformed to union-compatible schemas, ident-linked, with one
// selected as the global schema.
func UnionCompatible(sources []string, global string) string {
	var b strings.Builder
	b.WriteString("Figure 1 — integration via union-compatible schemas\n\n")
	b.WriteString(row([]string{global}, 0))
	b.WriteString("      ^ improve/refine\n")
	us := make([]string, len(sources))
	for i, s := range sources {
		us[i] = "US:" + s
	}
	b.WriteString(row(us, 3))
	b.WriteString("  " + strings.Repeat("^        ", len(sources)) + "(ident between neighbours)\n")
	b.WriteString(row(sources, 3))
	b.WriteString("  wrapped data sources\n")
	return b.String()
}

// IntersectionTopology renders the Figure 2/3 topology: extensional
// schemas with pairwise pathways into an intersection schema, federated
// with the remaining sources.
func IntersectionTopology(intersection string, between []string, others []string) string {
	var b strings.Builder
	b.WriteString("Figure 2/3 — intersection schema within a federation\n\n")
	b.WriteString(row([]string{intersection}, 0))
	arrows := strings.Repeat(" ", 3) + strings.Join(repeatStr("^", len(between)), strings.Repeat(" ", 8))
	b.WriteString(arrows + "   add*/delete*/contract* + ident\n")
	b.WriteString(row(between, 3))
	if len(others) > 0 {
		b.WriteString("\nfederated alongside (no mappings yet):\n")
		b.WriteString(row(others, 3))
	}
	return b.String()
}

func repeatStr(s string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = s
	}
	return out
}

// GlobalSchema renders the Figure 4 composition
// G = I ∪ (ES1−I) ∪ (ES2−I) ∪ ES3 … ∪ ESn.
func GlobalSchema(global, intersection string, minus []string, others []string) string {
	var b strings.Builder
	b.WriteString("Figure 4 — global schema from intersection and extensional schemas\n\n")
	b.WriteString(row([]string{global}, 0))
	parts := []string{intersection}
	for _, m := range minus {
		parts = append(parts, m+" - "+intersection)
	}
	parts = append(parts, others...)
	b.WriteString("  = " + strings.Join(parts, "  U  ") + "\n\n")
	b.WriteString(row(parts, 2))
	return b.String()
}

// Schema renders a schema's objects grouped by their first scheme part
// (table-like grouping), sorted for stable output.
func Schema(s *hdm.Schema) string {
	groups := make(map[string][]hdm.Scheme)
	var order []string
	for _, sc := range s.SortedSchemes() {
		g := sc.First()
		if _, ok := groups[g]; !ok {
			order = append(order, g)
		}
		groups[g] = append(groups[g], sc)
	}
	sort.Strings(order)
	var b strings.Builder
	fmt.Fprintf(&b, "schema %s (%d objects)\n", s.Name(), s.Len())
	for _, g := range order {
		fmt.Fprintf(&b, "  %s\n", g)
		for _, sc := range groups[g] {
			if sc.Arity() == 1 {
				continue
			}
			fmt.Fprintf(&b, "    .%s\n", strings.Join(sc.Parts()[1:], "."))
		}
	}
	return b.String()
}

// Pathway renders a pathway with step numbers and a trailing summary of
// step kinds.
func Pathway(p *transform.Pathway) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s -> %s\n", p.Source, p.Target)
	for i, t := range p.Steps {
		fmt.Fprintf(&b, "%4d. %s\n", i+1, t)
	}
	counts := p.CountByKind()
	var kinds []string
	for _, k := range []transform.Kind{transform.Add, transform.Delete, transform.Extend,
		transform.Contract, transform.Rename, transform.ID} {
		if counts[k] > 0 {
			kinds = append(kinds, fmt.Sprintf("%s=%d", k, counts[k]))
		}
	}
	fmt.Fprintf(&b, "      (%s; manual=%d, non-trivial=%d)\n",
		strings.Join(kinds, " "), p.ManualCount(), p.NonTrivialCount())
	return b.String()
}

// Curve renders a pay-as-you-go curve: cumulative manual effort on the
// x-axis against queries answerable on the y-axis, as an ASCII step
// plot plus the underlying table.
func Curve(title string, points []CurvePoint) string {
	var b strings.Builder
	b.WriteString(title + "\n")
	b.WriteString(fmt.Sprintf("%-22s %16s %10s  %s\n", "iteration", "cum. manual", "queries", "answerable"))
	maxEffort := 1
	for _, p := range points {
		if p.CumulativeManual > maxEffort {
			maxEffort = p.CumulativeManual
		}
	}
	for _, p := range points {
		bar := strings.Repeat("#", p.CumulativeManual*40/maxEffort)
		b.WriteString(fmt.Sprintf("%-22s %16d %10d  %-28s |%s\n",
			p.Iteration, p.CumulativeManual, len(p.Answerable),
			strings.Join(p.Answerable, ","), bar))
	}
	return b.String()
}

// CurvePoint is one point of a pay-as-you-go curve.
type CurvePoint struct {
	Iteration        string
	CumulativeManual int
	Answerable       []string
}
