package render

import (
	"strings"
	"testing"

	"github.com/dataspace/automed/internal/hdm"
	"github.com/dataspace/automed/internal/iql"
	"github.com/dataspace/automed/internal/transform"
)

func TestUnionCompatible(t *testing.T) {
	out := UnionCompatible([]string{"DS1", "DS2"}, "G")
	for _, want := range []string{"G", "US:DS1", "US:DS2", "ident"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestIntersectionTopology(t *testing.T) {
	out := IntersectionTopology("I", []string{"ES1", "ES2"}, []string{"ES3"})
	for _, want := range []string{"| I |", "ES1", "ES3", "contract"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestGlobalSchema(t *testing.T) {
	out := GlobalSchema("G", "I", []string{"ES1"}, []string{"ES2"})
	if !strings.Contains(out, "ES1 - I") {
		t.Errorf("minus operand missing:\n%s", out)
	}
	if !strings.Contains(out, "U") {
		t.Errorf("union missing:\n%s", out)
	}
}

func TestSchemaRendering(t *testing.T) {
	s := hdm.NewSchema("S")
	s.MustAdd(hdm.NewObject(hdm.MustScheme("<<t>>"), hdm.Nodal, "sql", "table"))
	s.MustAdd(hdm.NewObject(hdm.MustScheme("<<t, a>>"), hdm.Link, "sql", "column"))
	out := Schema(s)
	if !strings.Contains(out, "t\n") || !strings.Contains(out, ".a") {
		t.Errorf("schema render:\n%s", out)
	}
}

func TestPathwayRendering(t *testing.T) {
	p := transform.NewPathway("A", "B",
		transform.NewAdd(hdm.MustScheme("<<u>>"), iql.MustParse("<<t>>"), hdm.Nodal, "", ""),
		transform.NewContract(hdm.MustScheme("<<t>>"), nil, nil).WithAuto(),
	)
	out := Pathway(p)
	for _, want := range []string{"A -> B", "1. add", "2. contract", "manual=1", "non-trivial=1"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestCurveRendering(t *testing.T) {
	out := Curve("title", []CurvePoint{
		{Iteration: "F", CumulativeManual: 0, Answerable: nil},
		{Iteration: "I1", CumulativeManual: 6, Answerable: []string{"Q1"}},
		{Iteration: "I5", CumulativeManual: 26, Answerable: []string{"Q1", "Q6"}},
	})
	if !strings.Contains(out, "I1") || !strings.Contains(out, "Q1,Q6") {
		t.Errorf("curve render:\n%s", out)
	}
	// Bars scale with effort.
	lines := strings.Split(out, "\n")
	var bar6, bar26 int
	for _, l := range lines {
		if strings.Contains(l, "I1") {
			bar6 = strings.Count(l, "#")
		}
		if strings.Contains(l, "I5") {
			bar26 = strings.Count(l, "#")
		}
	}
	if bar26 <= bar6 {
		t.Errorf("bars not monotone: %d vs %d", bar6, bar26)
	}
}
