// Package cache provides the unified cache substrate of the dataspace:
// a generic, size-aware, dependency-tagged store with LRU eviction.
//
// Every entry carries a cost in bytes and a set of scheme-key
// dependencies. The store enforces two independent bounds — a maximum
// entry count and a byte budget — by evicting least-recently-used
// entries, and supports selective invalidation: InvalidateDeps(keys...)
// evicts exactly the entries whose dependency set intersects the given
// scheme keys, which is how an integration iteration drops the derived
// state it touched while keeping every other warm answer live.
//
// GetOrCompute adds singleflight-style coalescing: concurrent misses of
// the same key share one computation instead of racing to recompute it
// (e.g. two queries unfolding onto the same source extent fetch it
// once).
//
// The store backs all cache layers of the system: the query processor's
// virtual-extent memo and source-extent cache, and the server's parsed
// IQL plan cache and per-session result cache.
package cache

import (
	"container/list"
	"fmt"
	"sync"
)

// Options tunes a Store.
type Options struct {
	// MaxEntries bounds the number of entries; <= 0 means unbounded.
	MaxEntries int
	// MaxBytes bounds the summed entry costs; <= 0 means unbounded.
	MaxBytes int64
	// Disabled turns the store off: every Get misses and Put is a
	// no-op (GetOrCompute still computes, without caching).
	Disabled bool
}

// Stats is a point-in-time snapshot of one store's counters.
type Stats struct {
	Len      int    `json:"len"`
	Capacity int    `json:"capacity"`
	Bytes    int64  `json:"bytes"`
	MaxBytes int64  `json:"max_bytes"`
	Hits     uint64 `json:"hits"`
	Misses   uint64 `json:"misses"`
	// Evictions counts entries dropped to honour MaxEntries/MaxBytes.
	Evictions uint64 `json:"evictions"`
	// Invalidations counts entries dropped by InvalidateDeps.
	Invalidations uint64 `json:"invalidations"`
	// Oversize counts inserts rejected because a single entry's cost
	// exceeded the whole byte budget.
	Oversize uint64 `json:"oversize"`
	Purges   uint64 `json:"purges"`
}

// HitRate returns hits / (hits + misses), or 0 before any lookup.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// entry is one cache slot.
type entry[V any] struct {
	key  string
	val  V
	cost int64
	deps []string
}

// flight is one in-progress GetOrCompute computation; waiters block on
// done and then read val/err (the close provides the happens-before).
type flight[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// Store is a bounded, mutex-guarded, dependency-tagged LRU cache. It is
// safe for concurrent use.
type Store[V any] struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64
	disabled   bool

	ll    *list.List
	items map[string]*list.Element
	// byDep indexes entry keys by dependency key, so InvalidateDeps is
	// proportional to the touched entries, not the cache size.
	byDep  map[string]map[string]struct{}
	flight map[string]*flight[V]
	bytes  int64

	// gen counts invalidation events (InvalidateDeps and Purge calls);
	// Generation/PutAt use it to reject values computed before an
	// invalidation that should have covered them.
	gen uint64

	hits          uint64
	misses        uint64
	evictions     uint64
	invalidations uint64
	oversize      uint64
	purges        uint64
}

// New returns an empty store.
func New[V any](opts Options) *Store[V] {
	return &Store[V]{
		maxEntries: opts.MaxEntries,
		maxBytes:   opts.MaxBytes,
		disabled:   opts.Disabled,
		ll:         list.New(),
		items:      make(map[string]*list.Element),
		byDep:      make(map[string]map[string]struct{}),
		flight:     make(map[string]*flight[V]),
	}
}

// Get returns the cached value and marks it most recently used.
func (c *Store[V]) Get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*entry[V]).val, true
	}
	c.misses++
	var zero V
	return zero, false
}

// Put inserts or refreshes a value with its byte cost and dependency
// keys, evicting least-recently-used entries while either bound is
// exceeded. An entry whose cost alone exceeds the byte budget is not
// cached.
func (c *Store[V]) Put(key string, val V, cost int64, deps []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.putLocked(key, val, cost, deps)
}

func (c *Store[V]) putLocked(key string, val V, cost int64, deps []string) {
	if c.disabled {
		return
	}
	if cost < 0 {
		cost = 0
	}
	if c.maxBytes > 0 && cost > c.maxBytes {
		c.oversize++
		// An oversize refresh must still drop the stale cached value.
		if el, ok := c.items[key]; ok {
			c.removeLocked(el)
		}
		return
	}
	if el, ok := c.items[key]; ok {
		// Refresh in place: re-index dependencies and re-count cost.
		en := el.Value.(*entry[V])
		c.unindexLocked(en)
		c.bytes -= en.cost
		en.val, en.cost, en.deps = val, cost, deps
		c.bytes += cost
		c.indexLocked(en)
		c.ll.MoveToFront(el)
	} else {
		en := &entry[V]{key: key, val: val, cost: cost, deps: deps}
		c.items[key] = c.ll.PushFront(en)
		c.bytes += cost
		c.indexLocked(en)
	}
	for (c.maxEntries > 0 && c.ll.Len() > c.maxEntries) ||
		(c.maxBytes > 0 && c.bytes > c.maxBytes) {
		oldest := c.ll.Back()
		if oldest == nil {
			break
		}
		c.removeLocked(oldest)
		c.evictions++
	}
}

// GetOrCompute returns the cached value for key, or computes it exactly
// once across concurrent callers: the first miss runs compute while
// later misses of the same key wait for and share its outcome
// (including errors; errors are never cached). compute returns the
// value and its byte cost. The hit result reports whether the value
// came from cache or a coalesced in-flight computation rather than this
// caller's own compute.
func (c *Store[V]) GetOrCompute(key string, deps []string, compute func() (V, int64, error)) (V, bool, error) {
	c.mu.Lock()
	if !c.disabled {
		if el, ok := c.items[key]; ok {
			c.ll.MoveToFront(el)
			c.hits++
			v := el.Value.(*entry[V]).val
			c.mu.Unlock()
			return v, true, nil
		}
	}
	if f, ok := c.flight[key]; ok {
		c.hits++ // coalesced: this caller pays no computation
		c.mu.Unlock()
		<-f.done
		return f.val, true, f.err
	}
	f := &flight[V]{done: make(chan struct{})}
	c.flight[key] = f
	c.misses++
	c.mu.Unlock()

	var (
		val  V
		cost int64
		err  error
	)
	completed := false
	defer func() {
		if completed {
			return
		}
		// compute panicked: unregister the flight and fail the waiters
		// instead of wedging every future lookup of this key, then let
		// the panic continue unwinding.
		f.err = fmt.Errorf("cache: computation for %q panicked", key)
		c.mu.Lock()
		delete(c.flight, key)
		c.mu.Unlock()
		close(f.done)
	}()
	val, cost, err = compute()
	completed = true

	c.mu.Lock()
	f.val, f.err = val, err
	delete(c.flight, key)
	if err == nil {
		c.putLocked(key, val, cost, deps)
	}
	c.mu.Unlock()
	close(f.done)
	return val, false, err
}

// Peek reports whether key is cached, without bumping its LRU position
// or the hit/miss counters. Prefetchers use it to decide what is worth
// warming; real lookups should use Get so the stats stay honest.
func (c *Store[V]) Peek(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.items[key]
	return ok
}

// Generation returns the store's invalidation-event counter. Snapshot
// it before computing a value and hand it to PutAt so that a value
// whose computation raced with an invalidation is never cached stale.
func (c *Store[V]) Generation() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gen
}

// PutAt is Put, but only if no InvalidateDeps or Purge happened since
// gen was observed via Generation; otherwise the value is discarded —
// it may have been computed from state the invalidation retired.
func (c *Store[V]) PutAt(gen uint64, key string, val V, cost int64, deps []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.gen != gen {
		return
	}
	c.putLocked(key, val, cost, deps)
}

// InvalidateDeps evicts every entry whose dependency set intersects
// keys and returns how many entries were dropped.
func (c *Store[V]) InvalidateDeps(keys ...string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gen++
	dropped := 0
	for _, k := range keys {
		for ek := range c.byDep[k] {
			if el, ok := c.items[ek]; ok {
				c.removeLocked(el)
				dropped++
			}
		}
	}
	c.invalidations += uint64(dropped)
	return dropped
}

// Purge discards every entry (counters are kept).
func (c *Store[V]) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gen++
	c.ll.Init()
	c.items = make(map[string]*list.Element)
	c.byDep = make(map[string]map[string]struct{})
	c.bytes = 0
	c.purges++
}

// SetMaxBytes adjusts the byte budget, evicting LRU entries if the new
// budget is already exceeded. budget <= 0 removes the bound.
func (c *Store[V]) SetMaxBytes(budget int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.maxBytes = budget
	for c.maxBytes > 0 && c.bytes > c.maxBytes {
		oldest := c.ll.Back()
		if oldest == nil {
			break
		}
		c.removeLocked(oldest)
		c.evictions++
	}
}

// Len returns the number of cached entries.
func (c *Store[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Bytes returns the summed cost of all cached entries.
func (c *Store[V]) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Stats snapshots the store's counters.
func (c *Store[V]) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Len:           c.ll.Len(),
		Capacity:      c.maxEntries,
		Bytes:         c.bytes,
		MaxBytes:      c.maxBytes,
		Hits:          c.hits,
		Misses:        c.misses,
		Evictions:     c.evictions,
		Invalidations: c.invalidations,
		Oversize:      c.oversize,
		Purges:        c.purges,
	}
}

func (c *Store[V]) removeLocked(el *list.Element) {
	en := el.Value.(*entry[V])
	c.ll.Remove(el)
	delete(c.items, en.key)
	c.bytes -= en.cost
	c.unindexLocked(en)
}

func (c *Store[V]) indexLocked(en *entry[V]) {
	for _, d := range en.deps {
		set := c.byDep[d]
		if set == nil {
			set = make(map[string]struct{})
			c.byDep[d] = set
		}
		set[en.key] = struct{}{}
	}
}

func (c *Store[V]) unindexLocked(en *entry[V]) {
	for _, d := range en.deps {
		if set := c.byDep[d]; set != nil {
			delete(set, en.key)
			if len(set) == 0 {
				delete(c.byDep, d)
			}
		}
	}
}

// Dedup returns the distinct keys in first-seen order. It is the
// shared key-set helper for building dependency sets.
func Dedup(keys []string) []string {
	seen := make(map[string]bool, len(keys))
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	return out
}
