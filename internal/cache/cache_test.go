package cache

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestEvictionOrder(t *testing.T) {
	c := New[int](Options{MaxEntries: 3})
	c.Put("a", 1, 1, nil)
	c.Put("b", 2, 1, nil)
	c.Put("c", 3, 1, nil)
	// Touch "a" so "b" becomes the eviction victim.
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %v, %v", v, ok)
	}
	c.Put("d", 4, 1, nil)
	if _, ok := c.Get("b"); ok {
		t.Fatal("least-recently-used entry b survived eviction")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("entry %q missing after eviction", k)
		}
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Len != 3 {
		t.Fatalf("stats = %+v, want 1 eviction, len 3", st)
	}
}

// TestByteBudgetEviction is the acceptance check for the size-aware
// store: inserting past the byte budget evicts LRU entries until the
// budget holds again, and the stats reflect both bytes and evictions.
func TestByteBudgetEviction(t *testing.T) {
	c := New[string](Options{MaxBytes: 100})
	c.Put("a", "A", 40, nil)
	c.Put("b", "B", 40, nil)
	if got := c.Bytes(); got != 80 {
		t.Fatalf("bytes = %d, want 80", got)
	}
	// 40+40+40 > 100: the LRU entry "a" must go.
	c.Put("c", "C", 40, nil)
	if _, ok := c.Get("a"); ok {
		t.Fatal("entry a survived byte-budget eviction")
	}
	if _, ok := c.Get("b"); !ok {
		t.Fatal("entry b wrongly evicted")
	}
	st := c.Stats()
	if st.Bytes != 80 || st.Evictions != 1 || st.Len != 2 || st.MaxBytes != 100 {
		t.Fatalf("stats = %+v, want bytes 80, 1 eviction, len 2, max 100", st)
	}
	// One huge insert evicts everything it can and still refuses to
	// cache the oversize entry itself.
	c.Put("huge", "H", 1000, nil)
	if _, ok := c.Get("huge"); ok {
		t.Fatal("oversize entry was cached")
	}
	if st := c.Stats(); st.Oversize != 1 {
		t.Fatalf("oversize = %d, want 1", st.Oversize)
	}
	// Refreshing an existing key to an oversize cost drops the stale
	// cached value rather than serving it forever.
	c.Put("b", "B2", 1000, nil)
	if _, ok := c.Get("b"); ok {
		t.Fatal("stale entry b survived an oversize refresh")
	}
}

func TestRefreshAdjustsBytes(t *testing.T) {
	c := New[int](Options{MaxBytes: 100})
	c.Put("a", 1, 30, []string{"x"})
	c.Put("a", 2, 50, []string{"y"})
	if got := c.Bytes(); got != 50 {
		t.Fatalf("bytes after refresh = %d, want 50", got)
	}
	if v, ok := c.Get("a"); !ok || v != 2 {
		t.Fatalf("Get(a) = %v, %v", v, ok)
	}
	// The old dependency must no longer reach the entry; the new must.
	if n := c.InvalidateDeps("x"); n != 0 {
		t.Fatalf("InvalidateDeps(x) dropped %d entries, want 0", n)
	}
	if n := c.InvalidateDeps("y"); n != 1 {
		t.Fatalf("InvalidateDeps(y) dropped %d entries, want 1", n)
	}
}

func TestInvalidateDeps(t *testing.T) {
	c := New[int](Options{})
	c.Put("e1", 1, 1, []string{"s1", "s2"})
	c.Put("e2", 2, 1, []string{"s2", "s3"})
	c.Put("e3", 3, 1, []string{"s4"})
	if n := c.InvalidateDeps("s2"); n != 2 {
		t.Fatalf("InvalidateDeps(s2) = %d, want 2", n)
	}
	if _, ok := c.Get("e1"); ok {
		t.Fatal("e1 survived invalidation of its dependency s2")
	}
	if _, ok := c.Get("e2"); ok {
		t.Fatal("e2 survived invalidation of its dependency s2")
	}
	if _, ok := c.Get("e3"); !ok {
		t.Fatal("e3 with disjoint dependencies was wrongly evicted")
	}
	st := c.Stats()
	if st.Invalidations != 2 {
		t.Fatalf("invalidations = %d, want 2", st.Invalidations)
	}
	// Invalidating an unknown key is a no-op.
	if n := c.InvalidateDeps("nope"); n != 0 {
		t.Fatalf("InvalidateDeps(nope) = %d, want 0", n)
	}
}

func TestGetOrComputeCoalesces(t *testing.T) {
	c := New[int](Options{})
	var computes atomic.Int64
	gate := make(chan struct{})
	const workers = 16
	var wg sync.WaitGroup
	results := make([]int, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := c.GetOrCompute("k", []string{"dep"}, func() (int, int64, error) {
				<-gate // hold the computation so every worker arrives
				computes.Add(1)
				return 42, 8, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}(i)
	}
	close(gate)
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times for concurrent misses, want 1", n)
	}
	for i, v := range results {
		if v != 42 {
			t.Fatalf("worker %d got %d, want 42", i, v)
		}
	}
	// The computed value is cached with its dependencies.
	if _, ok := c.Get("k"); !ok {
		t.Fatal("computed value was not cached")
	}
	if n := c.InvalidateDeps("dep"); n != 1 {
		t.Fatalf("InvalidateDeps(dep) = %d, want 1", n)
	}
}

func TestGetOrComputeErrorNotCached(t *testing.T) {
	c := New[int](Options{})
	calls := 0
	boom := fmt.Errorf("boom")
	for i := 0; i < 2; i++ {
		_, _, err := c.GetOrCompute("k", nil, func() (int, int64, error) {
			calls++
			return 0, 0, boom
		})
		if err != boom {
			t.Fatalf("err = %v, want boom", err)
		}
	}
	if calls != 2 {
		t.Fatalf("failed computation was cached: %d calls, want 2", calls)
	}
}

// TestGetOrComputePanicUnblocksWaiters: a panicking compute must not
// wedge the key — waiters receive an error, the panic propagates to the
// leader, and the key is computable again afterwards.
func TestGetOrComputePanicUnblocksWaiters(t *testing.T) {
	c := New[int](Options{})
	inFlight := make(chan struct{})
	release := make(chan struct{})
	leaderPanicked := make(chan bool, 1)
	waited := make(chan error, 1)

	go func() { // leader
		defer func() { leaderPanicked <- recover() != nil }()
		c.GetOrCompute("k", nil, func() (int, int64, error) {
			close(inFlight)
			<-release
			panic("boom")
		})
	}()
	<-inFlight
	hitsBefore := c.Stats().Hits
	go func() { // waiter: guaranteed to coalesce — the flight is live
		_, _, err := c.GetOrCompute("k", nil, func() (int, int64, error) {
			return 0, 0, nil
		})
		waited <- err
	}()
	// A waiter counts a coalesced hit before blocking; wait for it to
	// be parked behind the flight, then let the leader panic.
	for c.Stats().Hits == hitsBefore {
		runtime.Gosched()
	}
	close(release)

	if !<-leaderPanicked {
		t.Fatal("panic did not propagate to the leader")
	}
	if err := <-waited; err == nil {
		t.Fatal("waiter behind a panicked computation got no error")
	}
	v, _, err := c.GetOrCompute("k", nil, func() (int, int64, error) { return 5, 1, nil })
	if err != nil || v != 5 {
		t.Fatalf("key wedged after panic: %v, %v", v, err)
	}
}

// TestPutAtGenerationGuard: a value computed before an invalidation
// must not enter the cache afterwards.
func TestPutAtGenerationGuard(t *testing.T) {
	c := New[int](Options{})
	gen := c.Generation()
	c.InvalidateDeps("anything")
	c.PutAt(gen, "k", 1, 1, nil)
	if _, ok := c.Get("k"); ok {
		t.Fatal("stale value cached past an intervening invalidation")
	}
	c.PutAt(c.Generation(), "k", 2, 1, nil)
	if v, ok := c.Get("k"); !ok || v != 2 {
		t.Fatalf("current-generation PutAt rejected: %v, %v", v, ok)
	}
	gen = c.Generation()
	c.Purge()
	c.PutAt(gen, "k2", 3, 1, nil)
	if _, ok := c.Get("k2"); ok {
		t.Fatal("stale value cached past an intervening purge")
	}
}

func TestDisabled(t *testing.T) {
	c := New[int](Options{Disabled: true})
	c.Put("a", 1, 1, nil)
	if _, ok := c.Get("a"); ok {
		t.Fatal("disabled cache returned a value")
	}
	v, hit, err := c.GetOrCompute("a", nil, func() (int, int64, error) { return 7, 1, nil })
	if err != nil || hit || v != 7 {
		t.Fatalf("GetOrCompute on disabled cache = %v, %v, %v", v, hit, err)
	}
	if c.Len() != 0 {
		t.Fatalf("disabled cache holds %d entries", c.Len())
	}
}

func TestPurge(t *testing.T) {
	c := New[int](Options{MaxEntries: 8})
	for i := 0; i < 5; i++ {
		c.Put(fmt.Sprint(i), i, 10, []string{"d"})
	}
	c.Purge()
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Fatalf("len/bytes after purge = %d/%d", c.Len(), c.Bytes())
	}
	if _, ok := c.Get("3"); ok {
		t.Fatal("entry survived purge")
	}
	if st := c.Stats(); st.Purges != 1 {
		t.Fatalf("purges = %d, want 1", st.Purges)
	}
	// The dependency index was reset too: no phantom invalidations.
	if n := c.InvalidateDeps("d"); n != 0 {
		t.Fatalf("InvalidateDeps after purge = %d, want 0", n)
	}
}

func TestSetMaxBytesReEvicts(t *testing.T) {
	c := New[int](Options{})
	c.Put("a", 1, 60, nil)
	c.Put("b", 2, 60, nil)
	c.SetMaxBytes(100)
	if _, ok := c.Get("a"); ok {
		t.Fatal("LRU entry a survived budget shrink")
	}
	if _, ok := c.Get("b"); !ok {
		t.Fatal("entry b wrongly evicted on budget shrink")
	}
}

func TestHitRateAndCounters(t *testing.T) {
	c := New[int](Options{MaxEntries: 4})
	c.Put("a", 1, 1, nil)
	c.Get("a")
	c.Get("a")
	c.Get("miss")
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 2/1", st.Hits, st.Misses)
	}
	if got := st.HitRate(); got < 0.66 || got > 0.67 {
		t.Fatalf("hit rate = %v, want ~2/3", got)
	}
	if (Stats{}).HitRate() != 0 {
		t.Fatal("zero stats hit rate should be 0")
	}
}

func TestConcurrentMixedUse(t *testing.T) {
	c := New[int](Options{MaxEntries: 32, MaxBytes: 1 << 16})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprint(i % 40)
				switch i % 5 {
				case 0:
					c.Put(k, i, int64(i%64), []string{k, "shared"})
				case 1:
					c.Get(k)
				case 2:
					c.GetOrCompute(k, []string{k}, func() (int, int64, error) { return i, 8, nil })
				case 3:
					c.InvalidateDeps("shared")
				default:
					c.Stats()
				}
			}
		}(g)
	}
	wg.Wait()
}
