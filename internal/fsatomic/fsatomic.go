// Package fsatomic provides crash-safe file replacement for the
// persistence layers: content is written to a temporary file in the
// destination's directory, fsync'd, and renamed into place, so a crash
// mid-write never truncates or corrupts an existing file — the worst
// case is keeping the previous content. The directory entry itself is
// not fsync'd; an operating-system crash (as opposed to a process
// crash) may lose the very latest rename.
package fsatomic

import (
	"io"
	"os"
	"path/filepath"
)

// WriteFile atomically replaces path with the content produced by
// write. The temporary file is dot-prefixed (".<base>.tmp-*") so
// directory scanners can skip in-progress writes, and is removed on
// any failure.
func WriteFile(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	// CreateTemp makes the file 0600; restore the conventional
	// umask-style mode so replacing a snapshot doesn't silently revoke
	// other readers (backups, monitoring).
	err = f.Chmod(0o644)
	if err == nil {
		err = write(f)
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
