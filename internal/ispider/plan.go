package ispider

import (
	"fmt"

	"github.com/dataspace/automed/internal/core"
)

// PlanStep is one iteration of the query-driven intersection plan.
type PlanStep struct {
	// Name labels the iteration.
	Name string
	// Kind is "intersect" or "refine".
	Kind string
	// Mappings is the mappings table for an intersect step.
	Mappings []core.Mapping
	// Refinement is the single mapping of a refine step.
	Refinement core.Mapping
	// Enables lists the priority queries first answerable afterwards.
	Enables []string
	// ManualExpected is the paper's manual transformation count for
	// the step (6, 1, 1, 15, 3 — totalling 26).
	ManualExpected int
}

// IntersectionPlan returns the paper's five-iteration, query-driven
// integration plan (§3). The transformations are verbatim from the
// paper with two documented adjustments: the pepSeeker accession
// derivation is written with a literal pattern over <<UProtein>>
// (the paper's "k ← uprotein" elides the binding), and the
// peptideHit↔proteinHit join carries a source-tag equality so that
// db_search identifiers from different sources cannot collide.
func IntersectionPlan() []PlanStep {
	return []PlanStep{
		{
			Name: "I1", Kind: "intersect", Enables: []string{"Q1"},
			ManualExpected: 6,
			Mappings: []core.Mapping{
				core.Entity("<<UProtein>>",
					core.From("Pedro", "[{'PEDRO', k} | k <- <<protein>>]"),
					core.From("gpmDB", "[{'gpmDB', k} | k <- <<proseq>>]"),
					core.From("PepSeeker", "[{'pepSeeker', x} | {k, x} <- <<proteinhit, proteinid>>]"),
				),
				core.Attribute("<<UProtein, accession_num>>",
					core.From("Pedro", "[{'PEDRO', k, x} | {k, x} <- <<protein, accession_num>>]"),
					core.From("gpmDB", "[{'gpmDB', k, x} | {k, x} <- <<proseq, label>>]"),
					// pepSeeker protein identifiers are accession
					// strings, so the accession of a pepSeeker UProtein
					// is its own key (paper §3, query 1, 6th add).
					core.From("PepSeeker", "[{'pepSeeker', k, k} | {'pepSeeker', k} <- <<UProtein>>]"),
				),
			},
		},
		{
			Name: "R2", Kind: "refine", Enables: []string{"Q2"},
			ManualExpected: 1,
			Refinement: core.Attribute("<<UProtein, description>>",
				core.From("Pedro", "[{'PEDRO', k, x} | {k, x} <- <<protein, description>>]"),
			),
		},
		{
			Name: "R3", Kind: "refine", Enables: []string{"Q3"},
			ManualExpected: 1,
			Refinement: core.Attribute("<<UProtein, organism>>",
				core.From("Pedro", "[{'PEDRO', k, x} | {k, x} <- <<protein, organism>>]"),
			),
		},
		{
			Name: "I4", Kind: "intersect", Enables: []string{"Q4", "Q5"},
			ManualExpected: 15,
			Mappings: []core.Mapping{
				core.Attribute("<<UProteinHit, protein>>",
					core.From("Pedro", "[{'PEDRO', k, x} | {k, x} <- <<proteinhit, protein>>]"),
					core.From("gpmDB", "[{'gpmDB', k, x} | {k, x} <- <<protein, proseqid>>]"),
					core.From("PepSeeker", "[{'pepSeeker', k, x} | {k, x} <- <<proteinhit, proteinid>>]"),
				),
				core.Entity("<<UPeptideHit>>",
					core.From("Pedro", "[{'PEDRO', k} | k <- <<peptidehit>>]"),
					core.From("gpmDB", "[{'gpmDB', k} | k <- <<peptide>>]"),
					core.From("PepSeeker", "[{'pepSeeker', k} | k <- <<peptidehit>>]"),
				),
				core.Attribute("<<UPeptideHit, sequence>>",
					core.From("Pedro", "[{'PEDRO', k, x} | {k, x} <- <<peptidehit, sequence>>]"),
					core.From("gpmDB", "[{'gpmDB', k, x} | {k, x} <- <<peptide, seq>>]"),
					core.From("PepSeeker", "[{'pepSeeker', k, x} | {k, x} <- <<peptidehit, pepseq>>]"),
				),
				core.Attribute("<<UPeptideHit, score>>",
					core.From("Pedro", "[{'PEDRO', k, x} | {k, x} <- <<peptidehit, score>>]"),
					core.From("PepSeeker", "[{'pepSeeker', k, x} | {k, x} <- <<peptidehit, score>>]"),
				),
				core.Attribute("<<UProteinHit, dbsearch>>",
					core.From("Pedro", "[{'PEDRO', k, x} | {k, x} <- <<proteinhit, db_search>>]"),
					core.From("PepSeeker", "[{'pepSeeker', k, x} | {k, x} <- <<proteinhit, fileparameters>>]"),
				),
				core.Attribute("<<UPeptideHit, dbsearch>>",
					core.From("Pedro", "[{'PEDRO', k, x} | {k, x} <- <<peptidehit, db_search>>]"),
				),
				core.Entity("<<uPeptideHitToProteinHit_mm>>",
					core.Derived("[{s1, k1, k2} | {s1, k1, x} <- <<UPeptideHit, dbsearch>>; {s2, k2, y} <- <<UProteinHit, dbsearch>>; s1 = s2; x = y]"),
				),
			},
		},
		{
			Name: "I5", Kind: "intersect", Enables: []string{"Q6", "Q7"},
			ManualExpected: 3,
			Mappings: []core.Mapping{
				core.Attribute("<<UPeptideHit, probability>>",
					core.From("Pedro", "[{'PEDRO', k, x} | {k, x} <- <<peptidehit, probability>>]"),
					core.From("gpmDB", "[{'gpmDB', k, x} | {k, x} <- <<peptide, expect>>]"),
					core.From("PepSeeker", "[{'pepSeeker', k, x} | {k, x} <- <<peptidehit, expect>>]"),
				),
			},
		},
	}
}

// PlanManualTotal returns the paper's expected manual transformation
// count across the plan: 6+1+1+15+3 = 26.
func PlanManualTotal() int {
	total := 0
	for _, s := range IntersectionPlan() {
		total += s.ManualExpected
	}
	return total
}

// RunIntersection executes the full intersection-based integration over
// freshly generated sources: federate, then replay the plan, rebuilding
// the global schema (with redundancy dropping per dropRedundant) after
// each iteration.
func RunIntersection(cfg Config, dropRedundant bool) (*core.Integrator, error) {
	pedro, gpmdb, pepseeker, err := Wrappers(cfg)
	if err != nil {
		return nil, err
	}
	ig, err := core.New(pedro, gpmdb, pepseeker)
	if err != nil {
		return nil, err
	}
	ig.SetAutoDrop(dropRedundant)
	if _, err := ig.Federate("F"); err != nil {
		return nil, err
	}
	if err := ReplayPlan(ig, IntersectionPlan()); err != nil {
		return nil, err
	}
	return ig, nil
}

// ReplayPlan executes plan steps against an already-federated
// integrator, verifying each step's manual count against the paper.
func ReplayPlan(ig *core.Integrator, plan []PlanStep) error {
	for _, step := range plan {
		before := ig.Report().Totals().Manual()
		switch step.Kind {
		case "intersect":
			if _, err := ig.Intersect(step.Name, step.Mappings, step.Enables...); err != nil {
				return fmt.Errorf("ispider: step %s: %w", step.Name, err)
			}
		case "refine":
			if err := ig.Refine(step.Name, step.Refinement, step.Enables...); err != nil {
				return fmt.Errorf("ispider: step %s: %w", step.Name, err)
			}
		default:
			return fmt.Errorf("ispider: step %s: unknown kind %q", step.Name, step.Kind)
		}
		manual := ig.Report().Totals().Manual() - before
		if manual != step.ManualExpected {
			return fmt.Errorf("ispider: step %s produced %d manual transformations, paper says %d",
				step.Name, manual, step.ManualExpected)
		}
	}
	return nil
}
