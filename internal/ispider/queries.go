package ispider

// CaseQuery is one of the case study's seven priority queries (paper
// §3, Table 1), expressed in IQL over the integrated global schema.
type CaseQuery struct {
	// ID is the paper's query number, "Q1" … "Q7".
	ID string
	// Description paraphrases the paper's query statement.
	Description string
	// IQL is the query text over the global schema.
	IQL string
	// After names the plan iteration after which the query is first
	// answerable ("F" = already answerable over the bare federation).
	After string
}

// Table1Queries returns the seven priority queries. Q7 needs no
// integrated concepts at all — ion information lives only in PepSeeker,
// so it runs over the federated remainder, which is the paper's point
// about pay-as-you-go reachability of un-integrated data.
func Table1Queries() []CaseQuery {
	return []CaseQuery{
		{
			ID:          "Q1",
			Description: "all protein identifications for a given protein accession number",
			After:       "I1",
			IQL:         "[{s, k} | {s, k, x} <- <<UProtein, accession_num>>; x = '" + SharedAccession + "']",
		},
		{
			ID:          "Q2",
			Description: "all protein identifications for a given group of proteins",
			After:       "R2",
			IQL:         "[{s, k, d} | {s, k, d} <- <<UProtein, description>>; contains(d, '" + GroupKeyword + "')]",
		},
		{
			ID:          "Q3",
			Description: "all protein identifications for a given organism",
			After:       "R3",
			IQL:         "[{s, k} | {s, k, o} <- <<UProtein, organism>>; o = '" + SharedOrganism + "']",
		},
		{
			ID:          "Q4",
			Description: "all protein identifications given a certain peptide, and their related amino acid information",
			After:       "I4",
			IQL: "{" +
				"[{s, k2} | {s, k1, sq} <- <<UPeptideHit, sequence>>; sq = '" + SharedPeptide + "'; " +
				"{s2, k1b, k2} <- <<uPeptideHitToProteinHit_mm>>; s2 = s; k1b = k1], " +
				"[{pid, t, pos} | {k, sq2} <- <<gpmdb_peptide, seq>>; sq2 = '" + SharedPeptide + "'; " +
				"{ak, pid} <- <<gpmdb_aa, peptideid>>; pid = k; " +
				"{ak2, t} <- <<gpmdb_aa, aatype>>; ak2 = ak; " +
				"{ak3, pos} <- <<gpmdb_aa, at_position>>; ak3 = ak]" +
				"}",
		},
		{
			ID:          "Q5",
			Description: "all identifications of a given protein given a certain peptide",
			After:       "I4",
			IQL: "[{s, k2} | {s, k1, sq} <- <<UPeptideHit, sequence>>; sq = '" + SharedPeptide + "'; " +
				"{s2, k1b, k2} <- <<uPeptideHitToProteinHit_mm>>; s2 = s; k1b = k1; " +
				"{s3, k2b, pr} <- <<UProteinHit, protein>>; s3 = s; k2b = k2; " +
				"{s4, p, acc} <- <<UProtein, accession_num>>; s4 = s; p = pr; acc = '" + SharedAccession + "']",
		},
		{
			ID:          "Q6",
			Description: "all peptide-related information for a given protein identification",
			After:       "I5",
			IQL: "[{k1, sq, pb} | {s, k1, k2} <- <<uPeptideHitToProteinHit_mm>>; s = 'PEDRO'; k2 = 5000; " +
				"{s2, k1b, sq} <- <<UPeptideHit, sequence>>; s2 = s; k1b = k1; " +
				"{s3, k1c, pb} <- <<UPeptideHit, probability>>; s3 = s; k1c = k1]",
		},
		{
			ID:          "Q7",
			Description: "all ion related information",
			After:       "F",
			IQL: "[{pk, t, mz, i} | {k, pk} <- <<pepseeker_iontable, peptidehitid>>; " +
				"{k2, t} <- <<pepseeker_iontable, iontype>>; k2 = k; " +
				"{k3, mz} <- <<pepseeker_iontable, mz>>; k3 = k; " +
				"{k4, i} <- <<pepseeker_iontable, intensity>>; k4 = k]",
		},
	}
}

// QueryByID returns the named case query.
func QueryByID(id string) (CaseQuery, bool) {
	for _, q := range Table1Queries() {
		if q.ID == id {
			return q, true
		}
	}
	return CaseQuery{}, false
}

// iterationIndex orders plan iterations for answerability checks; "F"
// (the federation) precedes all plan steps.
func iterationIndex(name string) int {
	if name == "F" {
		return 0
	}
	for i, s := range IntersectionPlan() {
		if s.Name == name {
			return i + 1
		}
	}
	return -1
}

// AnswerableAfter reports whether query q is answerable once iteration
// it (by name, "F" for federation-only) has completed.
func AnswerableAfter(q CaseQuery, it string) bool {
	qi, ii := iterationIndex(q.After), iterationIndex(it)
	if qi < 0 || ii < 0 {
		return false
	}
	return qi <= ii
}
