package ispider

import (
	"fmt"

	"github.com/dataspace/automed/internal/classical"
)

// Classical reconstruction of the original iSpider integration (paper
// §3): three successive global schema versions. GS1 is identical to
// the Pedro schema (identity derivations, uncounted); gpmDB maps 19
// concepts into GS1 and PepSeeker 35. GS2 adds the gpmDB-only concepts
// (adopted verbatim from gpmDB, uncounted) with 41 further non-trivial
// derivations from PepSeeker. GS3 adds the PepSeeker-only concepts,
// requiring no further non-trivial transformations. Totals: 19+35+41 =
// 95, the paper's classical-effort figure.
//
// The paper reports only these counts and the staging (the full
// listings live in Appendix E of Wang's thesis, not in the paper), so
// the individual derivations below are reconstructions over the
// synthetic schemas, shaped to the published accounting.

// tblq derives an entity concept from a source table.
func tblq(t string) string { return fmt.Sprintf("[k | k <- <<%s>>]", t) }

// colq derives an attribute concept from a source column.
func colq(t, c string) string {
	return fmt.Sprintf("[{k, x} | {k, x} <- <<%s, %s>>]", t, c)
}

// gpmDBToGS1 lists the 19 counted gpmDB → GS1 derivations.
func gpmDBToGS1() map[string]string {
	return map[string]string{
		"<<protein>>":                    tblq("proseq"),
		"<<protein, accession_num>>":     colq("proseq", "label"),
		"<<protein, description>>":       colq("proseq", "description"),
		"<<protein, sequence>>":          colq("proseq", "seq"),
		"<<protein, organism>>":          colq("proseq", "taxon"),
		"<<proteinhit>>":                 tblq("protein"),
		"<<proteinhit, protein>>":        colq("protein", "proseqid"),
		"<<proteinhit, score>>":          colq("protein", "expect"),
		"<<proteinhit, db_search>>":      colq("protein", "pathid"),
		"<<db_search>>":                  tblq("path"),
		"<<db_search, id_date>>":         colq("path", "run_date"),
		"<<db_search, parameters_file>>": colq("path", "file"),
		"<<peptidehit>>":                 tblq("peptide"),
		"<<peptidehit, sequence>>":       colq("peptide", "seq"),
		"<<peptidehit, probability>>":    colq("peptide", "expect"),
		"<<peptidehit, score>>":          colq("peptide", "hyperscore"),
		"<<peptidehit, charge>>":         colq("peptide", "z"),
		"<<peptidehit, db_search>>":      colq("peptide", "pathid"),
		"<<peptidehit, retention_time>>": colq("peptide", "rt"),
	}
}

// pepSeekerToGS1 lists the 35 counted PepSeeker → GS1 derivations.
func pepSeekerToGS1() map[string]string {
	return map[string]string{
		"<<protein>>":                tblq("protein"),
		"<<protein, accession_num>>": "[{k, k} | k <- <<protein>>]",
		"<<protein, description>>":   colq("protein", "description"),
		"<<protein, mass>>":          colq("protein", "mass"),
		"<<protein, pi>>":            colq("protein", "pi"),
		"<<protein, sequence>>":      colq("protein", "sequence"),

		"<<proteinhit>>":                       tblq("proteinhit"),
		"<<proteinhit, protein>>":              colq("proteinhit", "proteinid"),
		"<<proteinhit, db_search>>":            colq("proteinhit", "fileparameters"),
		"<<proteinhit, score>>":                colq("proteinhit", "protscore"),
		"<<proteinhit, expectation>>":          colq("proteinhit", "protexpect"),
		"<<proteinhit, all_peptides_matched>>": "[{k, x > 0} | {k, x} <- <<proteinhit, matchedpeptides>>]",

		"<<db_search>>":                         tblq("fileparameters"),
		"<<db_search, username>>":               colq("fileparameters", "username"),
		"<<db_search, id_date>>":                colq("fileparameters", "searchdate"),
		"<<db_search, database>>":               colq("fileparameters", "database"),
		"<<db_search, database_version>>":       colq("fileparameters", "dbversion"),
		"<<db_search, parameters_file>>":        colq("fileparameters", "filename"),
		"<<db_search, program>>":                colq("fileparameters", "searchengine"),
		"<<db_search, taxonomy>>":               colq("fileparameters", "taxonomy"),
		"<<db_search, n_terminal_aa>>":          colq("fileparameters", "nterm"),
		"<<db_search, c_terminal_aa>>":          colq("fileparameters", "cterm"),
		"<<db_search, fixed_modifications>>":    colq("fileparameters", "fixedmods"),
		"<<db_search, variable_modifications>>": colq("fileparameters", "varmods"),
		"<<db_search, peptide_tolerance>>":      colq("fileparameters", "peptol"),
		"<<db_search, ms_ms_tolerance>>":        colq("fileparameters", "msmstol"),

		"<<peptidehit>>":                 tblq("peptidehit"),
		"<<peptidehit, sequence>>":       colq("peptidehit", "pepseq"),
		"<<peptidehit, score>>":          colq("peptidehit", "score"),
		"<<peptidehit, probability>>":    colq("peptidehit", "expect"),
		"<<peptidehit, charge>>":         colq("peptidehit", "charge"),
		"<<peptidehit, retention_time>>": colq("peptidehit", "rtime"),
		"<<peptidehit, mr_expt>>":        colq("peptidehit", "mrexpt"),
		"<<peptidehit, mr_calc>>":        colq("peptidehit", "mrcalc"),
		"<<peptidehit, db_search>>": "[{k, f} | {k, ph} <- <<peptidehit, proteinhitid>>; " +
			"{ph2, f} <- <<proteinhit, fileparameters>>; ph2 = ph]",
	}
}

// gs2Concepts lists GS2's gpmDB-only concepts: scheme → (gpmDB
// derivation or identity, PepSeeker derivation). The gpmDB side is
// uncounted (verbatim adoption per the paper's accounting); the
// PepSeeker side is the stage's 41 counted transformations.
type gs2Concept struct {
	object      string
	gpmIdentity bool   // same-named object in gpmDB
	gpmQuery    string // rename-style derivation when not identity
	pepQuery    string // counted PepSeeker derivation ("" = unsupported)
}

func gs2Plan() []gs2Concept {
	return []gs2Concept{
		{object: "<<spectrum>>", gpmIdentity: true, pepQuery: tblq("spectrumdata")},
		{object: "<<spectrum, pathid>>", gpmIdentity: true, pepQuery: colq("spectrumdata", "fileparametersid")},
		{object: "<<spectrum, precursor_mz>>", gpmIdentity: true, pepQuery: colq("spectrumdata", "precursormz")},
		{object: "<<spectrum, z>>", gpmIdentity: true, pepQuery: colq("spectrumdata", "charge")},
		{object: "<<spectrum, rt>>", gpmIdentity: true, pepQuery: colq("spectrumdata", "retentiontime")},
		{object: "<<spectrum, total_intensity>>", gpmIdentity: true, pepQuery: colq("spectrumdata", "totalintensity")},
		{object: "<<spectrum, scan_num>>", gpmIdentity: true, pepQuery: colq("spectrumdata", "scannumber")},
		{object: "<<spectrum, basepeak_mz>>", gpmIdentity: true, pepQuery: colq("spectrumdata", "basepeakmz")},
		{object: "<<spectrum, basepeak_intensity>>", gpmIdentity: true, pepQuery: colq("spectrumdata", "basepeakintensity")},

		{object: "<<peak>>", gpmIdentity: true, pepQuery: tblq("peakdata")},
		{object: "<<peak, spectrumid>>", gpmIdentity: true, pepQuery: colq("peakdata", "spectrumdataid")},
		{object: "<<peak, mz>>", gpmIdentity: true, pepQuery: colq("peakdata", "mz")},
		{object: "<<peak, intensity>>", gpmIdentity: true, pepQuery: colq("peakdata", "intensity")},

		{object: "<<mod>>", gpmIdentity: true, pepQuery: tblq("modification")},
		{object: "<<mod, peptideid>>", gpmIdentity: true, pepQuery: colq("modification", "peptidehitid")},
		{object: "<<mod, at_position>>", gpmIdentity: true, pepQuery: colq("modification", "position")},
		{object: "<<mod, residue>>", gpmIdentity: true, pepQuery: colq("modification", "residue")},
		{object: "<<mod, delta_mass>>", gpmIdentity: true, pepQuery: colq("modification", "deltamass")},
		{object: "<<mod, variable>>", gpmIdentity: true, pepQuery: colq("modification", "isvariable")},
		{object: "<<mod, modname>>", gpmIdentity: true, pepQuery: colq("modification", "modname")},

		{object: "<<aa>>", gpmIdentity: true, pepQuery: tblq("aminoacid")},
		{object: "<<aa, peptideid>>", gpmIdentity: true, pepQuery: colq("aminoacid", "peptidehitid")},
		{object: "<<aa, aatype>>", gpmIdentity: true, pepQuery: colq("aminoacid", "aatype")},
		{object: "<<aa, at_position>>", gpmIdentity: true, pepQuery: colq("aminoacid", "position")},
		{object: "<<aa, modified>>", gpmIdentity: true, pepQuery: colq("aminoacid", "ismodified")},

		{object: "<<ion>>", gpmIdentity: true, pepQuery: tblq("iontable")},
		{object: "<<ion, peptideid>>", gpmIdentity: true, pepQuery: colq("iontable", "peptidehitid")},
		{object: "<<ion, iontype>>", gpmIdentity: true, pepQuery: colq("iontable", "iontype")},
		{object: "<<ion, mz>>", gpmIdentity: true, pepQuery: colq("iontable", "mz")},
		{object: "<<ion, intensity>>", gpmIdentity: true, pepQuery: colq("iontable", "intensity")},
		{object: "<<ion, position>>", gpmIdentity: true, pepQuery: colq("iontable", "position")},
		{object: "<<ion, ioncharge>>", gpmIdentity: true, pepQuery: colq("iontable", "ioncharge")},

		{object: "<<param>>", gpmIdentity: true, pepQuery: tblq("searchparam")},
		{object: "<<param, pathid>>", gpmIdentity: true, pepQuery: colq("searchparam", "fileparametersid")},
		{object: "<<param, pname>>", gpmIdentity: true, pepQuery: colq("searchparam", "paramname")},
		{object: "<<param, pvalue>>", gpmIdentity: true, pepQuery: colq("searchparam", "paramvalue")},

		{object: "<<peptidehit, start>>", gpmQuery: colq("peptide", "start"), pepQuery: colq("peptidehit", "start")},
		{object: "<<peptidehit, end>>", gpmQuery: colq("peptide", "end"), pepQuery: colq("peptidehit", "end")},
		{object: "<<peptidehit, delta>>", gpmQuery: colq("peptide", "delta"), pepQuery: colq("peptidehit", "delta")},
		{object: "<<peptidehit, missed_cleavages>>", gpmQuery: colq("peptide", "missed_cleavages"), pepQuery: colq("peptidehit", "misscleave")},
		{object: "<<proteinhit, hitrank>>", gpmQuery: colq("protein", "hitrank"), pepQuery: colq("proteinhit", "hitnumber")},

		// gpmDB-only concepts with no PepSeeker support: trivial
		// Range Void Any extends elsewhere, nothing counted.
		{object: "<<histogram>>", gpmIdentity: true},
		{object: "<<histogram, pathid>>", gpmIdentity: true},
		{object: "<<histogram, htype>>", gpmIdentity: true},
		{object: "<<histogram, hvalues>>", gpmIdentity: true},
		{object: "<<proteinhit, uid>>", gpmQuery: colq("protein", "uid")},
	}
}

// gs3Concepts lists GS3's PepSeeker-only concepts (adopted verbatim).
func gs3Concepts() []string {
	return []string{
		"<<masses>>", "<<masses, fileparametersid>>", "<<masses, aaletter>>",
		"<<masses, monoisotopic>>", "<<masses, average>>",
		"<<querydata>>", "<<querydata, fileparametersid>>",
		"<<querydata, querynumber>>", "<<querydata, huntscore>>",
	}
}

// ClassicalStages assembles the three-stage classical plan over the
// synthetic Pedro schema objects.
func ClassicalStages(cfg Config) ([]classical.Stage, error) {
	pedro := BuildPedro(cfg)
	gpm := gpmDBToGS1()
	pep := pepSeekerToGS1()

	var gs1 []classical.Concept
	for _, t := range pedro.Tables() {
		schemes := []string{fmt.Sprintf("<<%s>>", t.Name())}
		for _, c := range t.Columns() {
			schemes = append(schemes, fmt.Sprintf("<<%s, %s>>", t.Name(), c.Name))
		}
		for _, sc := range schemes {
			concept := classical.Concept{Object: sc, Identity: "Pedro"}
			if q, ok := gpm[sc]; ok {
				concept.Mapped = append(concept.Mapped,
					classical.MappedFrom{Source: "gpmDB", Query: q, Counted: true})
				delete(gpm, sc)
			}
			if q, ok := pep[sc]; ok {
				concept.Mapped = append(concept.Mapped,
					classical.MappedFrom{Source: "PepSeeker", Query: q, Counted: true})
				delete(pep, sc)
			}
			gs1 = append(gs1, concept)
		}
	}
	if len(gpm) != 0 || len(pep) != 0 {
		return nil, fmt.Errorf("ispider: unplaced GS1 derivations: gpmDB %v, PepSeeker %v", keys(gpm), keys(pep))
	}

	var gs2 []classical.Concept
	for _, c := range gs2Plan() {
		concept := classical.Concept{Object: c.object}
		if c.gpmIdentity {
			concept.Identity = "gpmDB"
		} else if c.gpmQuery != "" {
			concept.Mapped = append(concept.Mapped,
				classical.MappedFrom{Source: "gpmDB", Query: c.gpmQuery, Counted: false})
		}
		if c.pepQuery != "" {
			concept.Mapped = append(concept.Mapped,
				classical.MappedFrom{Source: "PepSeeker", Query: c.pepQuery, Counted: true})
		}
		gs2 = append(gs2, concept)
	}

	var gs3 []classical.Concept
	for _, sc := range gs3Concepts() {
		gs3 = append(gs3, classical.Concept{Object: sc, Identity: "PepSeeker"})
	}

	return []classical.Stage{
		{Name: "GS1", Concepts: gs1},
		{Name: "GS2", Concepts: gs2},
		{Name: "GS3", Concepts: gs3},
	}, nil
}

func keys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// RunClassical executes the full classical integration over freshly
// generated sources, returning the merged builder. Expected effort:
// gpmDB→GS1 19, PepSeeker→GS1 35, PepSeeker→GS2 41, total 95.
func RunClassical(cfg Config) (*classical.Builder, error) {
	pedro, gpmdb, pepseeker, err := Wrappers(cfg)
	if err != nil {
		return nil, err
	}
	b, err := classical.New(pedro, gpmdb, pepseeker)
	if err != nil {
		return nil, err
	}
	stages, err := ClassicalStages(cfg)
	if err != nil {
		return nil, err
	}
	for _, s := range stages {
		if err := b.AddStage(s); err != nil {
			return nil, err
		}
	}
	if _, err := b.Merge("GS"); err != nil {
		return nil, err
	}
	return b, nil
}

// ClassicalExpected returns the paper's per-pair counts.
func ClassicalExpected() map[string]int {
	return map[string]int{
		"GS1/gpmDB":     19,
		"GS1/PepSeeker": 35,
		"GS2/PepSeeker": 41,
	}
}
