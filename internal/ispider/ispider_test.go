package ispider

import (
	"strings"
	"testing"

	"github.com/dataspace/automed/internal/classical"
	"github.com/dataspace/automed/internal/core"
	"github.com/dataspace/automed/internal/iql"
)

func TestDatabasesBuildAndValidate(t *testing.T) {
	cfg := DefaultConfig()
	for _, db := range []interface {
		Validate() error
		Name() string
	}{BuildPedro(cfg), BuildGpmDB(cfg), BuildPepSeeker(cfg)} {
		if err := db.Validate(); err != nil {
			t.Errorf("%s: foreign keys invalid: %v", db.Name(), err)
		}
	}
}

func TestSchemaObjectCounts(t *testing.T) {
	pedro, gpmdb, pepseeker, err := Wrappers(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := pedro.Schema().Len(); got != 53 {
		t.Errorf("Pedro schema has %d objects, want 53", got)
	}
	if got := gpmdb.Schema().Len(); got != 78 {
		t.Errorf("gpmDB schema has %d objects, want 78", got)
	}
	if got := pepseeker.Schema().Len(); got != 96 {
		t.Errorf("PepSeeker schema has %d objects, want 96", got)
	}
}

func TestDataIsDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	a := BuildPedro(cfg)
	b := BuildPedro(cfg)
	ta, _ := a.Table("protein")
	tb, _ := b.Table("protein")
	if ta.Len() != tb.Len() {
		t.Fatalf("non-deterministic row counts: %d vs %d", ta.Len(), tb.Len())
	}
	va, _ := ta.Value(int64(1000), "description")
	vb, _ := tb.Value(int64(1000), "description")
	if va != vb {
		t.Errorf("non-deterministic data: %v vs %v", va, vb)
	}
}

func TestSharedWorkloadConstantsPresent(t *testing.T) {
	cfg := DefaultConfig()
	pedro := BuildPedro(cfg)
	gpm := BuildGpmDB(cfg)
	pep := BuildPepSeeker(cfg)

	find := func(rows [][]any, col int, want any) bool {
		for _, r := range rows {
			if r[col] == want {
				return true
			}
		}
		return false
	}
	pt, _ := pedro.Table("protein")
	if !find(pt.Rows(), 1, SharedAccession) {
		t.Error("Pedro missing shared accession")
	}
	gt, _ := gpm.Table("proseq")
	if !find(gt.Rows(), 1, SharedAccession) {
		t.Error("gpmDB missing shared accession")
	}
	pepProtein, _ := pep.Table("protein")
	if _, ok := pepProtein.Lookup(SharedAccession); !ok {
		t.Error("PepSeeker missing shared accession")
	}
	ph, _ := pedro.Table("peptidehit")
	if !find(ph.Rows(), 1, SharedPeptide) {
		t.Error("Pedro missing shared peptide")
	}
	gp, _ := gpm.Table("peptide")
	if !find(gp.Rows(), 2, SharedPeptide) {
		t.Error("gpmDB missing shared peptide")
	}
	pp, _ := pep.Table("peptidehit")
	if !find(pp.Rows(), 2, SharedPeptide) {
		t.Error("PepSeeker missing shared peptide")
	}
}

func TestIntersectionPlanManualCounts(t *testing.T) {
	// The paper's per-iteration manual transformation counts:
	// 6 + 1 + 1 + 15 + 3 = 26.
	want := []int{6, 1, 1, 15, 3}
	plan := IntersectionPlan()
	if len(plan) != len(want) {
		t.Fatalf("plan has %d steps, want %d", len(plan), len(want))
	}
	for i, step := range plan {
		if step.ManualExpected != want[i] {
			t.Errorf("step %s expects %d, want %d", step.Name, step.ManualExpected, want[i])
		}
	}
	if PlanManualTotal() != 26 {
		t.Errorf("plan total = %d, want 26", PlanManualTotal())
	}
}

func TestRunIntersectionMatchesPaperEffort(t *testing.T) {
	ig, err := RunIntersection(DefaultConfig(), false)
	if err != nil {
		t.Fatal(err)
	}
	rep := ig.Report()
	if got := rep.TotalManual(); got != 26 {
		t.Fatalf("measured manual transformations = %d, paper says 26\n%s", got, rep)
	}
	// Per-iteration counts match 6, 1, 1, 15, 3.
	var manuals []int
	for _, it := range rep.Iterations {
		if it.Kind == "intersection" || it.Kind == "refinement" {
			manuals = append(manuals, it.Counts.Manual())
		}
	}
	want := []int{6, 1, 1, 15, 3}
	if len(manuals) != len(want) {
		t.Fatalf("iterations = %v", manuals)
	}
	for i := range want {
		if manuals[i] != want[i] {
			t.Errorf("iteration %d manual = %d, want %d", i+1, manuals[i], want[i])
		}
	}
}

func TestTable1AllQueriesAnswerableWithResults(t *testing.T) {
	ig, err := RunIntersection(DefaultConfig(), false)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range Table1Queries() {
		res, err := ig.Query(q.IQL)
		if err != nil {
			t.Errorf("%s failed: %v", q.ID, err)
			continue
		}
		n := res.Value.Len()
		if q.ID == "Q4" {
			// Q4 returns a tuple of two bags.
			if res.Value.Len() != 2 {
				t.Errorf("Q4 returned %s, want a 2-tuple", res.Value)
				continue
			}
			if res.Value.Items[0].Len() == 0 || res.Value.Items[1].Len() == 0 {
				t.Errorf("Q4 sub-results empty: %s", res.Value)
			}
			continue
		}
		if n <= 0 {
			t.Errorf("%s returned no results", q.ID)
		}
	}
}

func TestQ1FindsAllThreeSources(t *testing.T) {
	ig, err := RunIntersection(DefaultConfig(), false)
	if err != nil {
		t.Fatal(err)
	}
	q, _ := QueryByID("Q1")
	res, err := ig.Query(q.IQL)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, item := range res.Value.Items {
		if item.Kind == iql.KindTuple && len(item.Items) == 2 {
			seen[item.Items[0].S] = true
		}
	}
	for _, src := range []string{"PEDRO", "gpmDB", "pepSeeker"} {
		if !seen[src] {
			t.Errorf("Q1 missing identification from %s (got %v)", src, res.Value)
		}
	}
}

func TestPayAsYouGoAnswerability(t *testing.T) {
	// Queries become answerable exactly at the iteration the paper
	// assigns them to: replay the plan step by step and probe each
	// query before and after.
	pedro, gpmdb, pepseeker, err := Wrappers(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ig, err := core.New(pedro, gpmdb, pepseeker)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ig.Federate("F"); err != nil {
		t.Fatal(err)
	}
	probe := func(stage string) {
		for _, q := range Table1Queries() {
			_, err := ig.Query(q.IQL)
			want := AnswerableAfter(q, stage)
			if want && err != nil {
				t.Errorf("after %s: %s should be answerable: %v", stage, q.ID, err)
			}
			if !want && err == nil {
				t.Errorf("after %s: %s should NOT yet be answerable", stage, q.ID)
			}
		}
	}
	probe("F")
	for _, step := range IntersectionPlan() {
		switch step.Kind {
		case "intersect":
			if _, err := ig.Intersect(step.Name, step.Mappings, step.Enables...); err != nil {
				t.Fatalf("step %s: %v", step.Name, err)
			}
		case "refine":
			if err := ig.Refine(step.Name, step.Refinement, step.Enables...); err != nil {
				t.Fatalf("step %s: %v", step.Name, err)
			}
		}
		probe(step.Name)
	}
}

func TestClassicalMatchesPaperEffort(t *testing.T) {
	b, err := RunClassical(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for pair, want := range ClassicalExpected() {
		parts := strings.SplitN(pair, "/", 2)
		if got := b.NonTrivialCount(parts[0], parts[1]); got != want {
			t.Errorf("%s = %d, want %d", pair, got, want)
		}
	}
	if got := b.TotalNonTrivial(); got != 95 {
		t.Errorf("classical total = %d, paper says 95", got)
	}
}

func TestClassicalNoServicesBeforeMerge(t *testing.T) {
	pedro, gpmdb, pepseeker, err := Wrappers(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := classical.New(pedro, gpmdb, pepseeker)
	if err != nil {
		t.Fatal(err)
	}
	stages, err := ClassicalStages(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range stages {
		if err := b.AddStage(s); err != nil {
			t.Fatal(err)
		}
	}
	// All stages defined but not merged: still no data services.
	if _, err := b.Query("count(<<protein>>)"); err == nil {
		t.Fatal("classical query before Merge succeeded; up-front cost not modelled")
	}
}

func TestClassicalAnswersSameQueriesAfterMerge(t *testing.T) {
	b, err := RunClassical(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Equivalent of Q1 over the classical global schema (Pedro-shaped):
	v, err := b.Query("[k | {k, x} <- <<protein, accession_num>>; x = '" + SharedAccession + "']")
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() < 3 {
		t.Errorf("classical Q1 = %s, want at least one hit per source", v)
	}
	// GS2-stage concept: ion information from both gpmDB and PepSeeker.
	v, err = b.Query("count(<<ion>>)")
	if err != nil {
		t.Fatal(err)
	}
	if v.I <= 0 {
		t.Errorf("classical ion count = %s", v)
	}
	// GS3-stage concept, PepSeeker only.
	v, err = b.Query("count(<<masses>>)")
	if err != nil {
		t.Fatal(err)
	}
	if v.I <= 0 {
		t.Errorf("classical masses count = %s", v)
	}
}

func TestEffortComparisonShape(t *testing.T) {
	// The paper's headline: 26 versus 95, i.e. the intersection
	// methodology needs well under half the manual steps, and answers
	// query 1 after just 6 of them while the classical integration
	// answers nothing before all 95.
	ig, err := RunIntersection(DefaultConfig(), false)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := RunClassical(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	inter := ig.Report().TotalManual()
	class := cb.TotalNonTrivial()
	if inter != 26 || class != 95 {
		t.Fatalf("effort = %d vs %d, want 26 vs 95", inter, class)
	}
	if !(inter < class) {
		t.Error("intersection approach should win")
	}
	cum := ig.Report().CumulativeManual()
	if cum[len(cum)-1] != 26 {
		t.Errorf("cumulative = %v", cum)
	}
}
