// Package ispider reconstructs the paper's case study (§2.4, §3): the
// iSpider proteomics integration of the Pedro, gpmDB and PepSeeker
// databases. It provides synthetic but structurally faithful versions
// of the three source databases (every table and column named by the
// paper's 26 intersection transformations, plus the wider schemas the
// classical 95-transformation reconstruction needs), the intersection
// plan driven by the 7 priority queries, the classical staged plan
// (GS1/GS2/GS3), and the Table 1 query set.
//
// Substitution note (see DESIGN.md): the real Pedro/gpmDB/PepSeeker
// instances are not redistributable; the experiments measure
// integration effort and query answerability, which depend on schema
// shape and population overlap, both of which the generator reproduces
// (seeded, deterministic).
package ispider

import (
	"fmt"
	"math/rand"

	"github.com/dataspace/automed/internal/rel"
	"github.com/dataspace/automed/internal/wrapper"
)

// Config sizes the synthetic instance populations.
type Config struct {
	// Seed drives all randomness; equal seeds give identical data.
	Seed int64
	// Proteins is the number of proteins per source.
	Proteins int
	// Searches is the number of search runs (db_search / path /
	// fileparameters rows) per source.
	Searches int
	// HitsPerSearch is the number of protein hits per search.
	HitsPerSearch int
	// PeptidesPerHit is the number of peptide hits per protein hit.
	PeptidesPerHit int
}

// DefaultConfig returns the configuration used by the tests: small
// enough for fast runs, large enough for every query to have answers.
func DefaultConfig() Config {
	return Config{Seed: 1, Proteins: 30, Searches: 3, HitsPerSearch: 8, PeptidesPerHit: 2}
}

// BenchConfig returns the larger configuration used by the benchmark
// harness.
func BenchConfig() Config {
	return Config{Seed: 1, Proteins: 120, Searches: 5, HitsPerSearch: 20, PeptidesPerHit: 3}
}

// Shared workload constants: every source contains the designated
// accession, peptide sequence, organism and description keyword, so the
// seven priority queries have non-empty cross-source answers.
const (
	// SharedAccession is present in all three sources (Q1, Q5).
	SharedAccession = "P00042"
	// SharedPeptide is a peptide sequence identified in all sources
	// (Q4, Q5).
	SharedPeptide = "AQDLLVGK"
	// SharedOrganism tags a subset of proteins (Q3).
	SharedOrganism = "Homo sapiens"
	// GroupKeyword appears in a subset of descriptions (Q2).
	GroupKeyword = "kinase"
)

var organisms = []string{SharedOrganism, "Mus musculus", "Saccharomyces cerevisiae", "Escherichia coli"}

var descWords = []string{"putative", GroupKeyword, "membrane", "transport", "binding", "receptor", "ribosomal"}

const aminoAcids = "ACDEFGHIKLMNPQRSTVWY"

// accession renders the i-th accession of the shared universe.
func accession(i int) string { return fmt.Sprintf("P%05d", i) }

// peptideSeq draws a random peptide sequence.
func peptideSeq(rng *rand.Rand) string {
	n := 6 + rng.Intn(8)
	b := make([]byte, n)
	for i := range b {
		b[i] = aminoAcids[rng.Intn(len(aminoAcids))]
	}
	return string(b)
}

// description draws a random protein description; roughly one in three
// mentions the group keyword.
func description(rng *rand.Rand) string {
	w1 := descWords[rng.Intn(len(descWords))]
	w2 := descWords[rng.Intn(len(descWords))]
	return w1 + " " + w2 + " protein"
}

// sharedPool builds the peptide-sequence pool; index 0 is the shared
// peptide.
func sharedPool(rng *rand.Rand, n int) []string {
	pool := make([]string, n)
	pool[0] = SharedPeptide
	for i := 1; i < n; i++ {
		pool[i] = peptideSeq(rng)
	}
	return pool
}

// accessionWindow returns the accession indices a source draws from:
// overlapping windows over a universe sized cfg.Proteins*2 such that
// the ranges [0,1.2P), [0.6P,1.8P) and [P,2P) pairwise overlap, with
// SharedAccession (index 42 mod universe) forced into every source.
func accessionWindow(cfg Config, lo, hi float64) (int, int) {
	universe := cfg.Proteins * 2
	return int(lo * float64(universe) / 2), int(hi * float64(universe) / 2)
}

// BuildPedro constructs the synthetic Pedro database: the data capture
// model's core protein/search/hit tables with the column set used by
// both integration plans.
func BuildPedro(cfg Config) *rel.DB {
	rng := rand.New(rand.NewSource(cfg.Seed))
	pool := sharedPool(rng, 24)
	db := rel.NewDB("Pedro")

	protein := db.MustCreateTable("protein", []rel.Column{
		{Name: "protein_id", Type: rel.Int},
		{Name: "accession_num", Type: rel.String},
		{Name: "description", Type: rel.String},
		{Name: "organism", Type: rel.String},
		{Name: "gene_name", Type: rel.String},
		{Name: "sequence", Type: rel.String},
		{Name: "mass", Type: rel.Float},
		{Name: "pi", Type: rel.Float},
		{Name: "orf_number", Type: rel.Int},
	}, "protein_id")
	dbSearch := db.MustCreateTable("db_search", []rel.Column{
		{Name: "db_search_id", Type: rel.Int},
		{Name: "username", Type: rel.String},
		{Name: "id_date", Type: rel.String},
		{Name: "database", Type: rel.String},
		{Name: "database_version", Type: rel.String},
		{Name: "parameters_file", Type: rel.String},
		{Name: "program", Type: rel.String},
		{Name: "taxonomy", Type: rel.String},
		{Name: "n_terminal_aa", Type: rel.String},
		{Name: "c_terminal_aa", Type: rel.String},
		{Name: "fixed_modifications", Type: rel.String},
		{Name: "variable_modifications", Type: rel.String},
		{Name: "peptide_tolerance", Type: rel.Float},
		{Name: "ms_ms_tolerance", Type: rel.Float},
	}, "db_search_id")
	proteinHit := db.MustCreateTable("proteinhit", []rel.Column{
		{Name: "proteinhit_id", Type: rel.Int},
		{Name: "protein", Type: rel.Int},
		{Name: "db_search", Type: rel.Int},
		{Name: "score", Type: rel.Float},
		{Name: "expectation", Type: rel.Float},
		{Name: "all_peptides_matched", Type: rel.Bool},
	}, "proteinhit_id")
	peptideHit := db.MustCreateTable("peptidehit", []rel.Column{
		{Name: "peptidehit_id", Type: rel.Int},
		{Name: "sequence", Type: rel.String},
		{Name: "score", Type: rel.Float},
		{Name: "probability", Type: rel.Float},
		{Name: "db_search", Type: rel.Int},
		{Name: "information", Type: rel.String},
		{Name: "charge", Type: rel.Int},
		{Name: "retention_time", Type: rel.Float},
		{Name: "mr_expt", Type: rel.Float},
		{Name: "mr_calc", Type: rel.Float},
	}, "peptidehit_id")
	experiment := db.MustCreateTable("experiment", []rel.Column{
		{Name: "experiment_id", Type: rel.Int},
		{Name: "title", Type: rel.String},
		{Name: "hypothesis", Type: rel.String},
		{Name: "exp_date", Type: rel.String},
	}, "experiment_id")
	sample := db.MustCreateTable("sample", []rel.Column{
		{Name: "sample_id", Type: rel.Int},
		{Name: "experiment", Type: rel.Int},
		{Name: "sample_description", Type: rel.String},
		{Name: "sample_organism", Type: rel.String},
	}, "sample_id")

	// Proteins: window [0, 1.2P) of the accession universe, plus the
	// shared accession.
	lo, hi := accessionWindow(cfg, 0, 1.2)
	accs := []string{SharedAccession}
	for i := lo; i < hi && len(accs) < cfg.Proteins; i++ {
		if a := accession(i); a != SharedAccession {
			accs = append(accs, a)
		}
	}
	for i, acc := range accs {
		org := organisms[rng.Intn(len(organisms))]
		if i%5 == 0 {
			org = SharedOrganism
		}
		protein.MustInsert(int64(1000+i), acc, description(rng), org,
			fmt.Sprintf("GENE%d", i), peptideSeq(rng)+peptideSeq(rng),
			20000+rng.Float64()*40000, 4+rng.Float64()*6, int64(rng.Intn(3)))
	}
	for j := 0; j < cfg.Searches; j++ {
		dbSearch.MustInsert(int64(100+j), fmt.Sprintf("user%d", j),
			fmt.Sprintf("2013-0%d-01", j+1), "SwissProt", "2013_0"+fmt.Sprint(j+1),
			fmt.Sprintf("params%d.xml", j), "SEQUEST", SharedOrganism,
			"R", "K", "Carbamidomethyl (C)", "Oxidation (M)",
			0.5+rng.Float64(), 0.2+rng.Float64())
	}
	hit := 0
	pep := 0
	for j := 0; j < cfg.Searches; j++ {
		for h := 0; h < cfg.HitsPerSearch; h++ {
			pid := int64(1000 + (hit % len(accs)))
			proteinHit.MustInsert(int64(5000+hit), pid, int64(100+j),
				10+rng.Float64()*90, rng.Float64(), hit%2 == 0)
			for p := 0; p < cfg.PeptidesPerHit; p++ {
				seq := pool[pep%len(pool)]
				peptideHit.MustInsert(int64(8000+pep), seq,
					5+rng.Float64()*50, rng.Float64(), int64(100+j),
					"ms/ms", int64(1+rng.Intn(3)), rng.Float64()*90,
					800+rng.Float64()*2000, 800+rng.Float64()*2000)
				pep++
			}
			hit++
		}
	}
	for e := 0; e < 2; e++ {
		experiment.MustInsert(int64(10+e), fmt.Sprintf("experiment %d", e),
			"differential expression", "2013-01-15")
		sample.MustInsert(int64(20+e), int64(10+e), "cell lysate", SharedOrganism)
	}
	mustFK(db, "proteinhit", "protein", "protein")
	mustFK(db, "proteinhit", "db_search", "db_search")
	mustFK(db, "peptidehit", "db_search", "db_search")
	mustFK(db, "sample", "experiment", "experiment")
	return db
}

// BuildGpmDB constructs the synthetic gpmDB database (X!Tandem result
// warehouse flavour): proseq/protein/path/peptide plus the
// spectrum-level tables the classical GS2 stage integrates.
func BuildGpmDB(cfg Config) *rel.DB {
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	pool := sharedPool(rand.New(rand.NewSource(cfg.Seed)), 24)
	db := rel.NewDB("gpmDB")

	proseq := db.MustCreateTable("proseq", []rel.Column{
		{Name: "proseqid", Type: rel.Int},
		{Name: "label", Type: rel.String},
		{Name: "description", Type: rel.String},
		{Name: "seq", Type: rel.String},
		{Name: "taxon", Type: rel.String},
	}, "proseqid")
	protein := db.MustCreateTable("protein", []rel.Column{
		{Name: "proteinid", Type: rel.Int},
		{Name: "proseqid", Type: rel.Int},
		{Name: "expect", Type: rel.Float},
		{Name: "pathid", Type: rel.Int},
		{Name: "uid", Type: rel.String},
		{Name: "hitrank", Type: rel.Int},
	}, "proteinid")
	path := db.MustCreateTable("path", []rel.Column{
		{Name: "pathid", Type: rel.Int},
		{Name: "file", Type: rel.String},
		{Name: "run_date", Type: rel.String},
		{Name: "title", Type: rel.String},
	}, "pathid")
	peptide := db.MustCreateTable("peptide", []rel.Column{
		{Name: "peptideid", Type: rel.Int},
		{Name: "proteinid", Type: rel.Int},
		{Name: "seq", Type: rel.String},
		{Name: "expect", Type: rel.Float},
		{Name: "hyperscore", Type: rel.Float},
		{Name: "z", Type: rel.Int},
		{Name: "start", Type: rel.Int},
		{Name: "end", Type: rel.Int},
		{Name: "pathid", Type: rel.Int},
		{Name: "rt", Type: rel.Float},
		{Name: "delta", Type: rel.Float},
		{Name: "missed_cleavages", Type: rel.Int},
	}, "peptideid")
	aa := db.MustCreateTable("aa", []rel.Column{
		{Name: "aaid", Type: rel.Int},
		{Name: "peptideid", Type: rel.Int},
		{Name: "aatype", Type: rel.String},
		{Name: "at_position", Type: rel.Int},
		{Name: "modified", Type: rel.Bool},
	}, "aaid")
	spectrum := db.MustCreateTable("spectrum", []rel.Column{
		{Name: "spectrumid", Type: rel.Int},
		{Name: "pathid", Type: rel.Int},
		{Name: "precursor_mz", Type: rel.Float},
		{Name: "z", Type: rel.Int},
		{Name: "rt", Type: rel.Float},
		{Name: "total_intensity", Type: rel.Float},
		{Name: "scan_num", Type: rel.Int},
		{Name: "basepeak_mz", Type: rel.Float},
		{Name: "basepeak_intensity", Type: rel.Float},
	}, "spectrumid")
	peak := db.MustCreateTable("peak", []rel.Column{
		{Name: "peakid", Type: rel.Int},
		{Name: "spectrumid", Type: rel.Int},
		{Name: "mz", Type: rel.Float},
		{Name: "intensity", Type: rel.Float},
	}, "peakid")
	mod := db.MustCreateTable("mod", []rel.Column{
		{Name: "modid", Type: rel.Int},
		{Name: "peptideid", Type: rel.Int},
		{Name: "at_position", Type: rel.Int},
		{Name: "residue", Type: rel.String},
		{Name: "delta_mass", Type: rel.Float},
		{Name: "variable", Type: rel.Bool},
		{Name: "modname", Type: rel.String},
	}, "modid")
	histogram := db.MustCreateTable("histogram", []rel.Column{
		{Name: "histid", Type: rel.Int},
		{Name: "pathid", Type: rel.Int},
		{Name: "htype", Type: rel.String},
		{Name: "hvalues", Type: rel.String},
	}, "histid")
	param := db.MustCreateTable("param", []rel.Column{
		{Name: "paramid", Type: rel.Int},
		{Name: "pathid", Type: rel.Int},
		{Name: "pname", Type: rel.String},
		{Name: "pvalue", Type: rel.String},
	}, "paramid")
	ion := db.MustCreateTable("ion", []rel.Column{
		{Name: "ionid", Type: rel.Int},
		{Name: "peptideid", Type: rel.Int},
		{Name: "iontype", Type: rel.String},
		{Name: "mz", Type: rel.Float},
		{Name: "intensity", Type: rel.Float},
		{Name: "position", Type: rel.Int},
		{Name: "ioncharge", Type: rel.Int},
	}, "ionid")

	// Proteins: window [0.6P, 1.8P), plus the shared accession.
	lo, hi := accessionWindow(cfg, 0.6, 1.8)
	accs := []string{SharedAccession}
	for i := lo; i < hi && len(accs) < cfg.Proteins; i++ {
		if a := accession(i); a != SharedAccession {
			accs = append(accs, a)
		}
	}
	for i, acc := range accs {
		taxon := organisms[rng.Intn(len(organisms))]
		if i%4 == 0 {
			taxon = SharedOrganism
		}
		proseq.MustInsert(int64(2000+i), acc, description(rng),
			peptideSeq(rng)+peptideSeq(rng), taxon)
	}
	for j := 0; j < cfg.Searches; j++ {
		path.MustInsert(int64(300+j), fmt.Sprintf("run%d.xml", j),
			fmt.Sprintf("2013-0%d-10", j+1), fmt.Sprintf("gpm run %d", j))
		histogram.MustInsert(int64(900+j), int64(300+j), "expect", "0.1,0.3,0.4")
		param.MustInsert(int64(950+j), int64(300+j), "cleavage", "trypsin")
	}
	hit, pep, aan, ionN, specN, peakN, modN := 0, 0, 0, 0, 0, 0, 0
	for j := 0; j < cfg.Searches; j++ {
		for h := 0; h < cfg.HitsPerSearch; h++ {
			proseqID := int64(2000 + (hit % len(accs)))
			protein.MustInsert(int64(2500+hit), proseqID, rng.Float64(),
				int64(300+j), fmt.Sprintf("uid-%d", hit), int64(1+hit%5))
			for p := 0; p < cfg.PeptidesPerHit; p++ {
				seq := pool[(pep*2)%len(pool)]
				pepID := int64(4000 + pep)
				peptide.MustInsert(pepID, int64(2500+hit), seq, rng.Float64(),
					10+rng.Float64()*40, int64(1+rng.Intn(3)),
					int64(1+rng.Intn(50)), int64(60+rng.Intn(50)),
					int64(300+j), rng.Float64()*90, rng.Float64(),
					int64(rng.Intn(2)))
				for a := 0; a < 2; a++ {
					aa.MustInsert(int64(10000+aan), pepID,
						string(aminoAcids[rng.Intn(len(aminoAcids))]),
						int64(a+1), rng.Intn(4) == 0)
					aan++
				}
				ion.MustInsert(int64(20000+ionN), pepID, "b",
					200+rng.Float64()*800, rng.Float64()*1e5, int64(1+ionN%6), int64(1))
				ionN++
				mod.MustInsert(int64(30000+modN), pepID, int64(1+rng.Intn(6)),
					"M", 15.995, true, "Oxidation")
				modN++
				pep++
			}
			hit++
		}
		for s := 0; s < 3; s++ {
			specID := int64(40000 + specN)
			spectrum.MustInsert(specID, int64(300+j), 400+rng.Float64()*800,
				int64(2), rng.Float64()*90, rng.Float64()*1e6, int64(specN+1),
				400+rng.Float64()*400, rng.Float64()*1e5)
			for q := 0; q < 2; q++ {
				peak.MustInsert(int64(50000+peakN), specID,
					100+rng.Float64()*1200, rng.Float64()*1e4)
				peakN++
			}
			specN++
		}
	}
	mustFK(db, "protein", "proseqid", "proseq")
	mustFK(db, "protein", "pathid", "path")
	mustFK(db, "peptide", "proteinid", "protein")
	mustFK(db, "peptide", "pathid", "path")
	mustFK(db, "aa", "peptideid", "peptide")
	mustFK(db, "ion", "peptideid", "peptide")
	mustFK(db, "mod", "peptideid", "peptide")
	mustFK(db, "spectrum", "pathid", "path")
	mustFK(db, "peak", "spectrumid", "spectrum")
	return db
}

// BuildPepSeeker constructs the synthetic PepSeeker database
// (Mascot-result flavour). Protein identifiers are accession strings,
// which is why the paper derives <<UProtein, accession_num>> for
// pepSeeker from the UProtein keys themselves.
func BuildPepSeeker(cfg Config) *rel.DB {
	rng := rand.New(rand.NewSource(cfg.Seed + 2))
	pool := sharedPool(rand.New(rand.NewSource(cfg.Seed)), 24)
	db := rel.NewDB("PepSeeker")

	protein := db.MustCreateTable("protein", []rel.Column{
		{Name: "proteinid", Type: rel.String},
		{Name: "description", Type: rel.String},
		{Name: "mass", Type: rel.Float},
		{Name: "pi", Type: rel.Float},
		{Name: "sequence", Type: rel.String},
	}, "proteinid")
	proteinHit := db.MustCreateTable("proteinhit", []rel.Column{
		{Name: "proteinhitid", Type: rel.Int},
		{Name: "proteinid", Type: rel.String},
		{Name: "fileparameters", Type: rel.Int},
		{Name: "hitnumber", Type: rel.Int},
		{Name: "protscore", Type: rel.Float},
		{Name: "protexpect", Type: rel.Float},
		{Name: "matchedpeptides", Type: rel.Int},
	}, "proteinhitid")
	peptideHit := db.MustCreateTable("peptidehit", []rel.Column{
		{Name: "peptidehitid", Type: rel.Int},
		{Name: "proteinhitid", Type: rel.Int},
		{Name: "pepseq", Type: rel.String},
		{Name: "score", Type: rel.Float},
		{Name: "expect", Type: rel.Float},
		{Name: "charge", Type: rel.Int},
		{Name: "mrexpt", Type: rel.Float},
		{Name: "mrcalc", Type: rel.Float},
		{Name: "delta", Type: rel.Float},
		{Name: "misscleave", Type: rel.Int},
		{Name: "start", Type: rel.Int},
		{Name: "end", Type: rel.Int},
		{Name: "rtime", Type: rel.Float},
	}, "peptidehitid")
	fileParameters := db.MustCreateTable("fileparameters", []rel.Column{
		{Name: "fileparametersid", Type: rel.Int},
		{Name: "filename", Type: rel.String},
		{Name: "searchdate", Type: rel.String},
		{Name: "database", Type: rel.String},
		{Name: "dbversion", Type: rel.String},
		{Name: "username", Type: rel.String},
		{Name: "taxonomy", Type: rel.String},
		{Name: "searchengine", Type: rel.String},
		{Name: "nterm", Type: rel.String},
		{Name: "cterm", Type: rel.String},
		{Name: "fixedmods", Type: rel.String},
		{Name: "varmods", Type: rel.String},
		{Name: "peptol", Type: rel.Float},
		{Name: "msmstol", Type: rel.Float},
	}, "fileparametersid")
	ionTable := db.MustCreateTable("iontable", []rel.Column{
		{Name: "iontableid", Type: rel.Int},
		{Name: "peptidehitid", Type: rel.Int},
		{Name: "iontype", Type: rel.String},
		{Name: "mz", Type: rel.Float},
		{Name: "intensity", Type: rel.Float},
		{Name: "position", Type: rel.Int},
		{Name: "ioncharge", Type: rel.Int},
	}, "iontableid")
	spectrumData := db.MustCreateTable("spectrumdata", []rel.Column{
		{Name: "spectrumdataid", Type: rel.Int},
		{Name: "fileparametersid", Type: rel.Int},
		{Name: "precursormz", Type: rel.Float},
		{Name: "charge", Type: rel.Int},
		{Name: "retentiontime", Type: rel.Float},
		{Name: "totalintensity", Type: rel.Float},
		{Name: "scannumber", Type: rel.Int},
		{Name: "basepeakmz", Type: rel.Float},
		{Name: "basepeakintensity", Type: rel.Float},
	}, "spectrumdataid")
	peakData := db.MustCreateTable("peakdata", []rel.Column{
		{Name: "peakdataid", Type: rel.Int},
		{Name: "spectrumdataid", Type: rel.Int},
		{Name: "mz", Type: rel.Float},
		{Name: "intensity", Type: rel.Float},
	}, "peakdataid")
	modification := db.MustCreateTable("modification", []rel.Column{
		{Name: "modificationid", Type: rel.Int},
		{Name: "peptidehitid", Type: rel.Int},
		{Name: "position", Type: rel.Int},
		{Name: "residue", Type: rel.String},
		{Name: "deltamass", Type: rel.Float},
		{Name: "isvariable", Type: rel.Bool},
		{Name: "modname", Type: rel.String},
	}, "modificationid")
	aminoAcid := db.MustCreateTable("aminoacid", []rel.Column{
		{Name: "aminoacidid", Type: rel.Int},
		{Name: "peptidehitid", Type: rel.Int},
		{Name: "aatype", Type: rel.String},
		{Name: "position", Type: rel.Int},
		{Name: "ismodified", Type: rel.Bool},
	}, "aminoacidid")
	searchParam := db.MustCreateTable("searchparam", []rel.Column{
		{Name: "searchparamid", Type: rel.Int},
		{Name: "fileparametersid", Type: rel.Int},
		{Name: "paramname", Type: rel.String},
		{Name: "paramvalue", Type: rel.String},
	}, "searchparamid")
	masses := db.MustCreateTable("masses", []rel.Column{
		{Name: "massesid", Type: rel.Int},
		{Name: "fileparametersid", Type: rel.Int},
		{Name: "aaletter", Type: rel.String},
		{Name: "monoisotopic", Type: rel.Float},
		{Name: "average", Type: rel.Float},
	}, "massesid")
	queryData := db.MustCreateTable("querydata", []rel.Column{
		{Name: "querydataid", Type: rel.Int},
		{Name: "fileparametersid", Type: rel.Int},
		{Name: "querynumber", Type: rel.Int},
		{Name: "huntscore", Type: rel.Float},
	}, "querydataid")

	// Proteins: window [P, 2P), plus the shared accession.
	lo, hi := accessionWindow(cfg, 1.0, 2.0)
	accs := []string{SharedAccession}
	for i := lo; i < hi && len(accs) < cfg.Proteins; i++ {
		if a := accession(i); a != SharedAccession {
			accs = append(accs, a)
		}
	}
	for _, acc := range accs {
		protein.MustInsert(acc, description(rng), 20000+rng.Float64()*40000,
			4+rng.Float64()*6, peptideSeq(rng)+peptideSeq(rng))
	}
	for j := 0; j < cfg.Searches; j++ {
		fpID := int64(500 + j)
		fileParameters.MustInsert(fpID, fmt.Sprintf("mascot%d.dat", j),
			fmt.Sprintf("2013-0%d-20", j+1), "NCBInr", "20130"+fmt.Sprint(j+1),
			fmt.Sprintf("analyst%d", j), SharedOrganism, "Mascot",
			"R", "K", "Carbamidomethyl (C)", "Oxidation (M)",
			0.3+rng.Float64(), 0.1+rng.Float64())
		searchParam.MustInsert(int64(550+j), fpID, "enzyme", "trypsin")
		masses.MustInsert(int64(600+j), fpID, "G", 57.02146, 57.0519)
		queryData.MustInsert(int64(650+j), fpID, int64(j+1), rng.Float64()*100)
		for s := 0; s < 3; s++ {
			sdID := int64(660+j*10) + int64(s)
			spectrumData.MustInsert(sdID, fpID, 400+rng.Float64()*800,
				int64(2), rng.Float64()*90, rng.Float64()*1e6,
				int64(s+1), 400+rng.Float64()*400, rng.Float64()*1e5)
			peakData.MustInsert(int64(700+j*10)+int64(s), sdID,
				100+rng.Float64()*1200, rng.Float64()*1e4)
		}
	}
	hit, pep, ionN, modN, aaN := 0, 0, 0, 0, 0
	for j := 0; j < cfg.Searches; j++ {
		for h := 0; h < cfg.HitsPerSearch; h++ {
			acc := accs[hit%len(accs)]
			phID := int64(6000 + hit)
			proteinHit.MustInsert(phID, acc, int64(500+j), int64(h+1),
				20+rng.Float64()*80, rng.Float64(), int64(1+rng.Intn(9)))
			for p := 0; p < cfg.PeptidesPerHit; p++ {
				seq := pool[(pep*3)%len(pool)]
				phitID := int64(7000 + pep)
				peptideHit.MustInsert(phitID, phID, seq, 10+rng.Float64()*60,
					rng.Float64(), int64(1+rng.Intn(3)),
					800+rng.Float64()*2000, 800+rng.Float64()*2000,
					rng.Float64(), int64(rng.Intn(2)),
					int64(1+rng.Intn(50)), int64(60+rng.Intn(50)),
					rng.Float64()*90)
				for i := 0; i < 3; i++ {
					ionTable.MustInsert(int64(9000+ionN), phitID,
						[]string{"b", "y", "a"}[i], 200+rng.Float64()*900,
						rng.Float64()*1e5, int64(i+1), int64(1))
					ionN++
				}
				modification.MustInsert(int64(12000+modN), phitID,
					int64(1+rng.Intn(6)), "C", 57.02146, false, "Carbamidomethyl")
				modN++
				aminoAcid.MustInsert(int64(15000+aaN), phitID,
					string(aminoAcids[rng.Intn(len(aminoAcids))]),
					int64(1+aaN%8), rng.Intn(5) == 0)
				aaN++
				pep++
			}
			hit++
		}
	}
	mustFK(db, "proteinhit", "proteinid", "protein")
	mustFK(db, "proteinhit", "fileparameters", "fileparameters")
	mustFK(db, "peptidehit", "proteinhitid", "proteinhit")
	mustFK(db, "iontable", "peptidehitid", "peptidehit")
	mustFK(db, "spectrumdata", "fileparametersid", "fileparameters")
	mustFK(db, "peakdata", "spectrumdataid", "spectrumdata")
	mustFK(db, "modification", "peptidehitid", "peptidehit")
	mustFK(db, "aminoacid", "peptidehitid", "peptidehit")
	mustFK(db, "searchparam", "fileparametersid", "fileparameters")
	mustFK(db, "masses", "fileparametersid", "fileparameters")
	mustFK(db, "querydata", "fileparametersid", "fileparameters")
	return db
}

func mustFK(db *rel.DB, table, col, ref string) {
	if err := db.AddForeignKey(table, col, ref); err != nil {
		panic(err)
	}
}

// Wrappers builds the three sources and wraps them, ready for an
// integrator.
func Wrappers(cfg Config) (pedro, gpmdb, pepseeker *wrapper.Relational, err error) {
	pedro, err = wrapper.NewRelational("Pedro", BuildPedro(cfg))
	if err != nil {
		return nil, nil, nil, err
	}
	gpmdb, err = wrapper.NewRelational("gpmDB", BuildGpmDB(cfg))
	if err != nil {
		return nil, nil, nil, err
	}
	pepseeker, err = wrapper.NewRelational("PepSeeker", BuildPepSeeker(cfg))
	if err != nil {
		return nil, nil, nil, err
	}
	return pedro, gpmdb, pepseeker, nil
}
