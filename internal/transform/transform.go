// Package transform implements AutoMed's primitive bidirectional schema
// transformations (the Both-As-View / BAV approach of McBrien &
// Poulovassilis) and the pathways composed from them, as required by the
// intersection-schema technique of Brownlow & Poulovassilis (EDBT 2014).
//
// The six primitives are add, delete, extend, contract, rename and id.
// add/delete carry an IQL query giving the extent of the new/removed
// object in terms of the rest of the schema; extend/contract carry a
// "Range ql qu" query bounding an extent that cannot be derived
// precisely; rename changes an object's scheme; id asserts that two
// objects in syntactically identical schemas are the same. The ident
// operation at whole-schema level expands into a sequence of id steps.
//
// Pathways are automatically reversible: add ↔ delete, extend ↔
// contract, rename and id reverse their arguments (paper §2.1).
package transform

import (
	"fmt"
	"strings"

	"github.com/dataspace/automed/internal/hdm"
	"github.com/dataspace/automed/internal/iql"
)

// Kind enumerates the primitive transformation kinds.
type Kind int

// The primitive transformation kinds.
const (
	Add Kind = iota
	Delete
	Extend
	Contract
	Rename
	ID
)

// String names the kind as it appears in pathway listings.
func (k Kind) String() string {
	switch k {
	case Add:
		return "add"
	case Delete:
		return "delete"
	case Extend:
		return "extend"
	case Contract:
		return "contract"
	case Rename:
		return "rename"
	case ID:
		return "id"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// ParseKind converts the textual kind name back to a Kind.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "add":
		return Add, nil
	case "delete":
		return Delete, nil
	case "extend":
		return Extend, nil
	case "contract":
		return Contract, nil
	case "rename":
		return Rename, nil
	case "id":
		return ID, nil
	}
	return 0, fmt.Errorf("transform: unknown kind %q", s)
}

// Transformation is a single primitive step.
type Transformation struct {
	// Kind is the primitive applied.
	Kind Kind
	// Object is the scheme of the object being added, deleted,
	// extended, contracted or renamed; for id it is the object in the
	// first schema.
	Object hdm.Scheme
	// Query is the IQL query accompanying add/delete (a view
	// definition) or extend/contract (a Range of bounds). Nil for
	// rename and id.
	Query iql.Expr
	// To is the new scheme for rename, or the counterpart object for
	// id.
	To hdm.Scheme
	// ObjKind, Model and Construct describe the object created by an
	// add or extend step (metadata for the new schema object).
	ObjKind   hdm.ObjectKind
	Model     string
	Construct string
	// Auto marks transformations generated automatically by the
	// Intersection Schema Tool rather than written by the integrator;
	// the paper's effort metric counts only manual steps.
	Auto bool
}

// NewAdd builds an add step creating object sc with extent query q.
func NewAdd(sc hdm.Scheme, q iql.Expr, kind hdm.ObjectKind, model, construct string) Transformation {
	return Transformation{Kind: Add, Object: sc, Query: q, ObjKind: kind, Model: model, Construct: construct}
}

// NewDelete builds a delete step removing object sc, whose extent is
// recoverable via query q over the remaining objects.
func NewDelete(sc hdm.Scheme, q iql.Expr) Transformation {
	return Transformation{Kind: Delete, Object: sc, Query: q}
}

// NewExtend builds an extend step creating object sc with extent known
// only within bounds lo..hi.
func NewExtend(sc hdm.Scheme, lo, hi iql.Expr, kind hdm.ObjectKind, model, construct string) Transformation {
	return Transformation{
		Kind: Extend, Object: sc, Query: &iql.RangeExpr{Lo: lo, Hi: hi},
		ObjKind: kind, Model: model, Construct: construct,
	}
}

// NewContract builds a contract step removing object sc whose extent is
// not precisely derivable; bounds default to Range Void Any when lo and
// hi are nil.
func NewContract(sc hdm.Scheme, lo, hi iql.Expr) Transformation {
	if lo == nil {
		lo = &iql.Lit{Val: iql.Void()}
	}
	if hi == nil {
		hi = &iql.Lit{Val: iql.Any()}
	}
	return Transformation{Kind: Contract, Object: sc, Query: &iql.RangeExpr{Lo: lo, Hi: hi}}
}

// NewRename builds a rename step.
func NewRename(from, to hdm.Scheme) Transformation {
	return Transformation{Kind: Rename, Object: from, To: to}
}

// NewID builds an id step asserting that object a in one schema and b in
// a syntactically identical schema are the same object.
func NewID(a, b hdm.Scheme) Transformation {
	return Transformation{Kind: ID, Object: a, To: b}
}

// WithAuto returns a copy marked as tool-generated.
func (t Transformation) WithAuto() Transformation {
	t.Auto = true
	return t
}

// WithMeta returns a copy carrying the object's construct metadata.
// Delete and contract steps should carry the metadata of the object
// they remove so that the automatically derived reverse pathway (whose
// add/extend steps recreate the object) restores it faithfully.
func (t Transformation) WithMeta(kind hdm.ObjectKind, model, construct string) Transformation {
	t.ObjKind = kind
	t.Model = model
	t.Construct = construct
	return t
}

// Reverse returns the inverse primitive per the BAV reversibility rules:
// add ↔ delete (same arguments), extend ↔ contract (same arguments),
// rename and id with arguments swapped. Auto marking is preserved.
func (t Transformation) Reverse() Transformation {
	r := t
	switch t.Kind {
	case Add:
		r.Kind = Delete
	case Delete:
		r.Kind = Add
	case Extend:
		r.Kind = Contract
	case Contract:
		r.Kind = Extend
	case Rename, ID:
		r.Object, r.To = t.To, t.Object
	}
	return r
}

// NonTrivial reports whether the step is "non-trivial" in the paper's
// sense: its query part is not Range Void Any. Rename and id steps are
// counted trivial.
func (t Transformation) NonTrivial() bool {
	switch t.Kind {
	case Rename, ID:
		return false
	}
	if t.Query == nil {
		return false
	}
	return !iql.IsVoidAnyRange(t.Query)
}

// Manual reports whether the step was written by the integrator.
func (t Transformation) Manual() bool { return !t.Auto }

// String renders the step as it would appear in a pathway listing, e.g.
// "add <<UProtein>> [{'PEDRO', k} | k <- <<protein>>]".
func (t Transformation) String() string {
	var b strings.Builder
	b.WriteString(t.Kind.String())
	b.WriteString(" ")
	b.WriteString(t.Object.String())
	switch t.Kind {
	case Rename, ID:
		b.WriteString(" ")
		b.WriteString(t.To.String())
	default:
		if t.Query != nil {
			b.WriteString(" ")
			b.WriteString(t.Query.String())
		}
	}
	if t.Auto {
		b.WriteString("  -- auto")
	}
	return b.String()
}

// Validate checks internal consistency of the step itself (not against
// any schema): schemes well formed, queries present where required.
func (t Transformation) Validate() error {
	if err := t.Object.Validate(); err != nil {
		return fmt.Errorf("transform: %s: %w", t.Kind, err)
	}
	switch t.Kind {
	case Add, Delete:
		if t.Query == nil {
			return fmt.Errorf("transform: %s %s requires a query", t.Kind, t.Object)
		}
	case Extend, Contract:
		if t.Query == nil {
			return fmt.Errorf("transform: %s %s requires a Range query", t.Kind, t.Object)
		}
		if _, _, ok := iql.IsRange(t.Query); !ok {
			return fmt.Errorf("transform: %s %s query must be a Range, got %s", t.Kind, t.Object, t.Query)
		}
	case Rename, ID:
		if err := t.To.Validate(); err != nil {
			return fmt.Errorf("transform: %s: target: %w", t.Kind, err)
		}
	}
	return nil
}
