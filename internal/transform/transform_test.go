package transform

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"github.com/dataspace/automed/internal/hdm"
	"github.com/dataspace/automed/internal/iql"
)

func sc(s string) hdm.Scheme { return hdm.MustScheme(s) }

func simpleSchema() *hdm.Schema {
	s := hdm.NewSchema("S")
	s.MustAdd(hdm.NewObject(sc("<<t>>"), hdm.Nodal, "sql", "table"))
	s.MustAdd(hdm.NewObject(sc("<<t, a>>"), hdm.Link, "sql", "column"))
	s.MustAdd(hdm.NewObject(sc("<<t, b>>"), hdm.Link, "sql", "column"))
	return s
}

func TestReverseRules(t *testing.T) {
	q := iql.MustParse("[k | k <- <<t>>]")
	cases := []struct {
		in   Transformation
		want Kind
	}{
		{NewAdd(sc("<<x>>"), q, hdm.Nodal, "", ""), Delete},
		{NewDelete(sc("<<x>>"), q), Add},
		{NewExtend(sc("<<x>>"), &iql.Lit{Val: iql.Void()}, &iql.Lit{Val: iql.Any()}, hdm.Nodal, "", ""), Contract},
		{NewContract(sc("<<x>>"), nil, nil), Extend},
	}
	for _, c := range cases {
		got := c.in.Reverse()
		if got.Kind != c.want {
			t.Errorf("%s reversed to %s, want %s", c.in.Kind, got.Kind, c.want)
		}
		// Arguments preserved.
		if !got.Object.Equal(c.in.Object) {
			t.Errorf("%s reversal changed object", c.in.Kind)
		}
	}
	// rename and id swap arguments.
	r := NewRename(sc("<<a>>"), sc("<<b>>")).Reverse()
	if !r.Object.Equal(sc("<<b>>")) || !r.To.Equal(sc("<<a>>")) {
		t.Errorf("rename reversal = %s", r)
	}
	id := NewID(sc("<<a>>"), sc("<<b>>")).Reverse()
	if !id.Object.Equal(sc("<<b>>")) || !id.To.Equal(sc("<<a>>")) {
		t.Errorf("id reversal = %s", id)
	}
}

// genStep generates random well-formed transformations for property
// tests.
type genStep struct{ t Transformation }

func (genStep) Generate(r *rand.Rand, size int) reflect.Value {
	names := []string{"<<a>>", "<<b>>", "<<c, d>>", "<<e, f>>"}
	obj := sc(names[r.Intn(len(names))])
	to := sc(names[r.Intn(len(names))])
	q := iql.MustParse("[k | k <- <<src>>]")
	var tr Transformation
	switch r.Intn(6) {
	case 0:
		tr = NewAdd(obj, q, hdm.Nodal, "sql", "table")
	case 1:
		tr = NewDelete(obj, q)
	case 2:
		tr = NewExtend(obj, &iql.Lit{Val: iql.Void()}, &iql.Lit{Val: iql.Any()}, hdm.Link, "", "")
	case 3:
		tr = NewContract(obj, nil, nil)
	case 4:
		tr = NewRename(obj, to)
	default:
		tr = NewID(obj, to)
	}
	if r.Intn(2) == 0 {
		tr = tr.WithAuto()
	}
	return reflect.ValueOf(genStep{t: tr})
}

func TestReverseIsInvolutionProperty(t *testing.T) {
	f := func(g genStep) bool {
		rr := g.t.Reverse().Reverse()
		return rr.String() == g.t.String() && rr.Auto == g.t.Auto
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestPathwayReverseIsInvolutionProperty(t *testing.T) {
	f := func(steps []genStep) bool {
		p := NewPathway("A", "B")
		for _, s := range steps {
			p.Append(s.t)
		}
		rr := p.Reverse().Reverse()
		if rr.Source != p.Source || rr.Target != p.Target || rr.Len() != p.Len() {
			return false
		}
		for i := range p.Steps {
			if rr.Steps[i].String() != p.Steps[i].String() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestApplyAddDeleteRoundTrip(t *testing.T) {
	s := simpleSchema()
	add := NewAdd(sc("<<u>>"), iql.MustParse("[k | k <- <<t>>]"), hdm.Nodal, "", "")
	if err := Apply(s, add, true); err != nil {
		t.Fatal(err)
	}
	if !s.Has(sc("<<u>>")) {
		t.Fatal("add did not create object")
	}
	// Applying the reverse (a delete) restores the schema.
	if err := Apply(s, add.Reverse(), true); err != nil {
		t.Fatal(err)
	}
	if s.Has(sc("<<u>>")) {
		t.Fatal("delete did not remove object")
	}
}

func TestApplyPathwayThenReverseRestoresSchema(t *testing.T) {
	src := simpleSchema()
	p := NewPathway("S", "T",
		NewAdd(sc("<<u>>"), iql.MustParse("[k | k <- <<t>>]"), hdm.Nodal, "", ""),
		NewAdd(sc("<<u, a>>"), iql.MustParse("[{k, x} | {k, x} <- <<t, a>>]"), hdm.Link, "", ""),
		NewDelete(sc("<<t, a>>"), iql.MustParse("[{k, x} | {k, x} <- <<u, a>>]")).
			WithMeta(hdm.Link, "sql", "column"),
		NewContract(sc("<<t, b>>"), nil, nil).WithMeta(hdm.Link, "sql", "column"),
	)
	mid, err := ApplyPathway(src, p, true)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ApplyPathway(mid, p.Reverse(), false)
	if err != nil {
		t.Fatal(err)
	}
	back.SetName(src.Name())
	if !hdm.Identical(src, back) {
		a, b := hdm.Diff(src, back)
		t.Fatalf("round trip lost objects: src-only %v, back-only %v", a, b)
	}
}

func TestApplyErrors(t *testing.T) {
	s := simpleSchema()
	// Add of existing object.
	if err := Apply(s, NewAdd(sc("<<t>>"), iql.MustParse("<<t>>"), hdm.Nodal, "", ""), false); err == nil {
		t.Error("add of existing object succeeded")
	}
	// Delete of missing object.
	if err := Apply(s, NewDelete(sc("<<zz>>"), iql.MustParse("<<t>>")), false); err == nil {
		t.Error("delete of missing object succeeded")
	}
	// Strict add referencing unknown object.
	if err := Apply(s, NewAdd(sc("<<v>>"), iql.MustParse("[k | k <- <<nope>>]"), hdm.Nodal, "", ""), true); err == nil {
		t.Error("strict add with dangling reference succeeded")
	}
	// Rename clash.
	if err := Apply(s, NewRename(sc("<<t, a>>"), sc("<<t, b>>")), false); err == nil {
		t.Error("rename onto existing object succeeded")
	}
	// Extend must carry a Range.
	bad := Transformation{Kind: Extend, Object: sc("<<w>>"), Query: iql.MustParse("[1]")}
	if err := Apply(s, bad, false); err == nil {
		t.Error("extend without Range succeeded")
	}
}

func TestNonTrivial(t *testing.T) {
	if NewContract(sc("<<x>>"), nil, nil).NonTrivial() {
		t.Error("Range Void Any contract counted non-trivial")
	}
	if !NewAdd(sc("<<x>>"), iql.MustParse("[k | k <- <<t>>]"), hdm.Nodal, "", "").NonTrivial() {
		t.Error("add with real query counted trivial")
	}
	if NewRename(sc("<<a>>"), sc("<<b>>")).NonTrivial() {
		t.Error("rename counted non-trivial")
	}
	ext := NewExtend(sc("<<x>>"), iql.MustParse("[1]"), &iql.Lit{Val: iql.Any()}, hdm.Nodal, "", "")
	if !ext.NonTrivial() {
		t.Error("extend with informative lower bound counted trivial")
	}
}

func TestPathwayCounts(t *testing.T) {
	p := NewPathway("A", "B",
		NewAdd(sc("<<x>>"), iql.MustParse("<<t>>"), hdm.Nodal, "", ""),
		NewAdd(sc("<<y>>"), iql.MustParse("<<t>>"), hdm.Nodal, "", "").WithAuto(),
		NewContract(sc("<<z>>"), nil, nil).WithAuto(),
	)
	if p.ManualCount() != 1 {
		t.Errorf("ManualCount = %d", p.ManualCount())
	}
	if p.NonTrivialCount() != 2 {
		t.Errorf("NonTrivialCount = %d", p.NonTrivialCount())
	}
	if p.CountByKind()[Add] != 2 || p.CountByKind()[Contract] != 1 {
		t.Errorf("CountByKind = %v", p.CountByKind())
	}
}

func TestConcat(t *testing.T) {
	p1 := NewPathway("A", "B", NewContract(sc("<<x>>"), nil, nil))
	p2 := NewPathway("B", "C", NewContract(sc("<<y>>"), nil, nil))
	p3, err := p1.Concat(p2)
	if err != nil {
		t.Fatal(err)
	}
	if p3.Source != "A" || p3.Target != "C" || p3.Len() != 2 {
		t.Errorf("Concat = %s", p3)
	}
	if _, err := p2.Concat(p1); err == nil {
		t.Error("mismatched Concat succeeded")
	}
}

func TestIdentSteps(t *testing.T) {
	a := simpleSchema()
	b := a.Clone("S2")
	steps, err := IdentSteps(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != a.Len() {
		t.Errorf("IdentSteps produced %d steps, want %d", len(steps), a.Len())
	}
	for _, s := range steps {
		if s.Kind != ID || !s.Auto {
			t.Errorf("unexpected step %s", s)
		}
	}
	b.MustAdd(hdm.NewObject(sc("<<extra>>"), hdm.Nodal, "", ""))
	if _, err := IdentSteps(a, b); err == nil {
		t.Error("ident between non-identical schemas succeeded")
	}
}

func TestIntersectionFormValidation(t *testing.T) {
	q := iql.MustParse("[k | k <- <<t>>]")
	good := NewPathway("S", "I",
		NewAdd(sc("<<u>>"), q, hdm.Nodal, "", ""),
		NewExtend(sc("<<v>>"), &iql.Lit{Val: iql.Void()}, &iql.Lit{Val: iql.Any()}, hdm.Nodal, "", ""),
		NewDelete(sc("<<t>>"), q),
		NewContract(sc("<<t, a>>"), nil, nil),
		NewID(sc("<<u>>"), sc("<<u>>")),
	)
	if err := good.IsIntersectionForm(); err != nil {
		t.Errorf("canonical pathway rejected: %v", err)
	}
	// Add after contract violates the form.
	bad := NewPathway("S", "I",
		NewContract(sc("<<t, a>>"), nil, nil),
		NewAdd(sc("<<u>>"), q, hdm.Nodal, "", ""),
	)
	if err := bad.IsIntersectionForm(); err == nil {
		t.Error("add after contract accepted")
	}
	// Rename never allowed.
	bad2 := NewPathway("S", "I", NewRename(sc("<<a>>"), sc("<<b>>")))
	if err := bad2.IsIntersectionForm(); err == nil {
		t.Error("rename accepted in intersection pathway")
	}
	// Informative extend not allowed (only Range Void Any placeholders).
	bad3 := NewPathway("S", "I",
		NewExtend(sc("<<v>>"), iql.MustParse("[1]"), &iql.Lit{Val: iql.Any()}, hdm.Nodal, "", ""))
	if err := bad3.IsIntersectionForm(); err == nil {
		t.Error("informative extend accepted")
	}
}

func TestMinusPathway(t *testing.T) {
	q := iql.MustParse("[k | k <- <<t>>]")
	esToI := NewPathway("ES", "I",
		NewAdd(sc("<<u>>"), q, hdm.Nodal, "", ""),
		NewDelete(sc("<<t>>"), q),
		NewDelete(sc("<<t, a>>"), q),
		NewContract(sc("<<t, b>>"), nil, nil),
	)
	mp, err := MinusPathway(esToI, "ES-minus-I")
	if err != nil {
		t.Fatal(err)
	}
	// The minus pathway contracts exactly the deleted objects, so what
	// remains is the contracted remainder — the paper's operational
	// rule for the − operator.
	if mp.Len() != 2 {
		t.Fatalf("minus pathway has %d steps: %s", mp.Len(), mp)
	}
	for _, s := range mp.Steps {
		if s.Kind != Contract {
			t.Errorf("unexpected step %s", s)
		}
	}
	// Applying it to the source leaves only <<t, b>>.
	src := simpleSchema()
	out, err := ApplyPathway(src, mp, false)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 || !out.Has(sc("<<t, b>>")) {
		t.Errorf("ES − I = %v", out.Schemes())
	}
}

func TestTransformationString(t *testing.T) {
	tr := NewAdd(sc("<<UProtein>>"), iql.MustParse("[{'PEDRO', k} | k <- <<protein>>]"), hdm.Nodal, "", "")
	s := tr.String()
	if !strings.HasPrefix(s, "add <<UProtein>> [") {
		t.Errorf("String = %q", s)
	}
	if !strings.Contains(NewContract(sc("<<x>>"), nil, nil).WithAuto().String(), "-- auto") {
		t.Error("auto marker missing")
	}
}

func TestParseKindRoundTrip(t *testing.T) {
	for _, k := range []Kind{Add, Delete, Extend, Contract, Rename, ID} {
		rt, err := ParseKind(k.String())
		if err != nil || rt != k {
			t.Errorf("kind %v round trip failed", k)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Error("ParseKind(bogus) succeeded")
	}
}
