package transform

import (
	"fmt"
	"strings"

	"github.com/dataspace/automed/internal/hdm"
	"github.com/dataspace/automed/internal/iql"
)

// Pathway is a sequence of primitive transformations from a source
// schema to a target schema, denoted S1 → S2 in the paper. Pathways are
// stored in the Schemas & Transformations Repository and are
// automatically reversible.
type Pathway struct {
	// Source and Target name the endpoint schemas.
	Source, Target string
	// Steps are applied in order to transform Source into Target.
	Steps []Transformation
}

// NewPathway builds a pathway between named schemas.
func NewPathway(source, target string, steps ...Transformation) *Pathway {
	return &Pathway{Source: source, Target: target, Steps: steps}
}

// Append adds steps to the pathway.
func (p *Pathway) Append(steps ...Transformation) { p.Steps = append(p.Steps, steps...) }

// Len returns the number of steps.
func (p *Pathway) Len() int { return len(p.Steps) }

// Reverse returns the automatically derived pathway Target → Source:
// steps in reverse order, each primitive inverted (paper §2.1).
func (p *Pathway) Reverse() *Pathway {
	rev := &Pathway{Source: p.Target, Target: p.Source, Steps: make([]Transformation, len(p.Steps))}
	for i, t := range p.Steps {
		rev.Steps[len(p.Steps)-1-i] = t.Reverse()
	}
	return rev
}

// Concat joins this pathway with another whose source is this pathway's
// target, yielding Source → q.Target.
func (p *Pathway) Concat(q *Pathway) (*Pathway, error) {
	if p.Target != q.Source {
		return nil, fmt.Errorf("transform: cannot concatenate %s→%s with %s→%s",
			p.Source, p.Target, q.Source, q.Target)
	}
	steps := make([]Transformation, 0, len(p.Steps)+len(q.Steps))
	steps = append(steps, p.Steps...)
	steps = append(steps, q.Steps...)
	return &Pathway{Source: p.Source, Target: q.Target, Steps: steps}, nil
}

// ManualCount returns the number of integrator-written steps.
func (p *Pathway) ManualCount() int {
	n := 0
	for _, t := range p.Steps {
		if t.Manual() {
			n++
		}
	}
	return n
}

// NonTrivialCount returns the number of steps whose query part is not
// Range Void Any — the paper's effort metric for the classical approach.
func (p *Pathway) NonTrivialCount() int {
	n := 0
	for _, t := range p.Steps {
		if t.NonTrivial() {
			n++
		}
	}
	return n
}

// CountByKind tallies steps per primitive kind.
func (p *Pathway) CountByKind() map[Kind]int {
	m := make(map[Kind]int)
	for _, t := range p.Steps {
		m[t.Kind]++
	}
	return m
}

// String renders the pathway header and steps, one per line.
func (p *Pathway) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "pathway %s -> %s (%d steps)\n", p.Source, p.Target, len(p.Steps))
	for _, t := range p.Steps {
		fmt.Fprintf(&b, "  %s\n", t)
	}
	return b.String()
}

// Apply executes a single step against a schema, mutating it. The
// query's scheme references are checked for resolvability when strict
// is true.
func Apply(s *hdm.Schema, t Transformation, strict bool) error {
	if err := t.Validate(); err != nil {
		return err
	}
	switch t.Kind {
	case Add, Extend:
		if s.Has(t.Object) {
			return fmt.Errorf("transform: %s: schema %q already has %s", t.Kind, s.Name(), t.Object)
		}
		if strict && t.Kind == Add {
			if err := checkRefs(s, t.Query); err != nil {
				return fmt.Errorf("transform: add %s: %w", t.Object, err)
			}
		}
		return s.Add(hdm.NewObject(t.Object, t.ObjKind, t.Model, t.Construct))
	case Delete, Contract:
		if !s.Has(t.Object) {
			return fmt.Errorf("transform: %s: schema %q has no %s", t.Kind, s.Name(), t.Object)
		}
		if err := s.Remove(t.Object); err != nil {
			return err
		}
		if strict && t.Kind == Delete {
			// The recovery query must be expressible over what remains.
			if err := checkRefs(s, t.Query); err != nil {
				return fmt.Errorf("transform: delete %s: %w", t.Object, err)
			}
		}
		return nil
	case Rename:
		return s.Rename(t.Object, t.To)
	case ID:
		// id relates objects across two schemas; within a single
		// schema application it requires the object to exist.
		if !s.Has(t.Object) && !s.Has(t.To) {
			return fmt.Errorf("transform: id: schema %q has neither %s nor %s", s.Name(), t.Object, t.To)
		}
		return nil
	}
	return fmt.Errorf("transform: unknown kind %v", t.Kind)
}

// checkRefs verifies that every scheme reference in q resolves in s.
func checkRefs(s *hdm.Schema, q iql.Expr) error {
	if q == nil {
		return nil
	}
	for _, parts := range iql.UniqueSchemeRefs(q) {
		if _, err := s.Resolve(parts); err != nil {
			return err
		}
	}
	return nil
}

// ApplyPathway applies every step of p to a clone of src named after the
// pathway target, returning the resulting schema.
func ApplyPathway(src *hdm.Schema, p *Pathway, strict bool) (*hdm.Schema, error) {
	out := src.Clone(p.Target)
	for i, t := range p.Steps {
		if err := Apply(out, t, strict); err != nil {
			return nil, fmt.Errorf("transform: step %d of %s->%s: %w", i+1, p.Source, p.Target, err)
		}
	}
	return out, nil
}

// IdentSteps expands the ident operation between two syntactically
// identical schemas into the sequence of id steps id(S:c, S':c) for
// every object c (paper §2.1). The schemas must be identical.
func IdentSteps(a, b *hdm.Schema) ([]Transformation, error) {
	if !hdm.Identical(a, b) {
		da, db := hdm.Diff(a, b)
		return nil, fmt.Errorf("transform: ident requires identical schemas %q and %q (only in %s: %v; only in %s: %v)",
			a.Name(), b.Name(), a.Name(), da, b.Name(), db)
	}
	var steps []Transformation
	for _, sc := range a.SortedSchemes() {
		steps = append(steps, NewID(sc, sc).WithAuto())
	}
	return steps, nil
}

// IsIntersectionForm checks the canonical normal form required of a
// pathway from an extensional schema to an intersection schema (paper
// §2.2): a sequence of add and delete steps followed by a sequence of
// contract steps, optionally followed by id steps. Extend steps with
// Range Void Any bounds are admitted in the first phase: they are the
// tool-generated placeholders for intersection objects that this
// particular source does not contribute to, needed by the k-ary
// generalisation the paper's case study uses (three sources) and its
// future-work section proposes.
func (p *Pathway) IsIntersectionForm() error {
	const (
		phaseAddDel = iota
		phaseContract
		phaseID
	)
	phase := phaseAddDel
	for i, t := range p.Steps {
		switch t.Kind {
		case Add, Delete:
			if phase != phaseAddDel {
				return fmt.Errorf("transform: step %d: %s after contract/id phase", i+1, t.Kind)
			}
		case Extend:
			if phase != phaseAddDel {
				return fmt.Errorf("transform: step %d: extend after contract/id phase", i+1)
			}
			if !iql.IsVoidAnyRange(t.Query) {
				return fmt.Errorf("transform: step %d: only Range Void Any extends allowed in intersection pathway", i+1)
			}
		case Contract:
			if phase == phaseID {
				return fmt.Errorf("transform: step %d: contract after id phase", i+1)
			}
			phase = phaseContract
		case ID:
			phase = phaseID
		case Rename:
			return fmt.Errorf("transform: step %d: rename not allowed in intersection pathway", i+1)
		}
	}
	return nil
}

// MinusPathway derives the pathway ES → (ES − I) from a pathway ES → I
// in intersection normal form, per the paper's operational rule: ES − I
// retains only those objects of ES removed by a *contract* step in
// ES → I; so the derived pathway contracts every object that was
// *deleted* (i.e. semantically mapped into I).
func MinusPathway(esToI *Pathway, minusName string) (*Pathway, error) {
	if err := esToI.IsIntersectionForm(); err != nil {
		return nil, err
	}
	out := NewPathway(esToI.Source, minusName)
	for _, t := range esToI.Steps {
		if t.Kind == Delete {
			out.Append(NewContract(t.Object, nil, nil).WithAuto())
		}
	}
	return out, nil
}
