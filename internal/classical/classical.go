// Package classical implements the baseline the paper compares against:
// classical "up-front" data integration via union-compatible schemas
// (paper §2.1, Fig. 1), as used by the original iSpider project. Each
// data source schema DSi is transformed into a union-compatible schema
// USi containing every global concept; the USi are merged by injecting
// ident transformations; and one of them becomes the global schema. No
// data service can run until the whole integration is in place.
//
// Effort is measured the way the paper measures it: the number of
// *non-trivial* transformations — steps whose query part is not
// Range Void Any — excluding identity derivations (a concept adopted
// verbatim from the source that contributes it, e.g. all of GS1 from
// Pedro).
package classical

import (
	"fmt"
	"sort"

	"github.com/dataspace/automed/internal/hdm"
	"github.com/dataspace/automed/internal/iql"
	"github.com/dataspace/automed/internal/query"
	"github.com/dataspace/automed/internal/repo"
	"github.com/dataspace/automed/internal/transform"
	"github.com/dataspace/automed/internal/wrapper"
)

// MappedFrom is one source derivation of a global concept.
type MappedFrom struct {
	// Source names the data source schema.
	Source string
	// Query is the IQL derivation over the source, in the source's
	// scope.
	Query string
	// Counted marks the derivation as part of the paper's non-trivial
	// effort tally. The paper's accounting counts cross-schema
	// mappings (gpmDB→GS1, PepSeeker→GS1, PepSeeker→GS2) but not the
	// verbatim adoption of a stage's own concepts.
	Counted bool
}

// Concept is one global schema object in a staged classical
// integration.
type Concept struct {
	// Object is the concept's scheme text, e.g. "<<protein, organism>>".
	Object string
	// Identity optionally names the source that contributes the
	// concept verbatim (same-named object, identity derivation).
	Identity string
	// Mapped lists non-identity derivations from other sources.
	Mapped []MappedFrom
}

// Stage is one version of the global schema (GS1, GS2, …): the concepts
// it adds on top of the previous stage.
type Stage struct {
	Name     string
	Concepts []Concept
}

// Builder drives a staged classical integration.
type Builder struct {
	repo    *repo.Repository
	proc    *query.Processor
	sources []wrapper.Wrapper
	stages  []Stage
	global  *hdm.Schema
	// perSource tallies counted non-trivial transformations per
	// (stage, source).
	perSource map[string]map[string]int
	// pathways accumulates the cumulative DSi → USi pathway per source.
	pathways map[string]*transform.Pathway
	// identity records, per source, the source objects adopted
	// verbatim as global concepts (deleted with an identity reverse at
	// Merge; everything else contracts).
	identity map[string]map[string]bool
	merged   bool
}

// New builds a classical integrator over wrapped sources.
func New(sources ...wrapper.Wrapper) (*Builder, error) {
	if len(sources) == 0 {
		return nil, fmt.Errorf("classical: at least one source required")
	}
	b := &Builder{
		repo:      repo.New(),
		proc:      query.New(),
		sources:   sources,
		perSource: make(map[string]map[string]int),
		pathways:  make(map[string]*transform.Pathway),
		identity:  make(map[string]map[string]bool),
	}
	for _, w := range sources {
		if err := b.proc.AddSource(w); err != nil {
			return nil, err
		}
		if err := b.repo.AddSchema(w.Schema()); err != nil {
			return nil, err
		}
		b.pathways[w.SchemaName()] = transform.NewPathway(w.SchemaName(), "US:"+w.SchemaName())
	}
	return b, nil
}

// Repo exposes the schemas & transformations repository.
func (b *Builder) Repo() *repo.Repository { return b.repo }

// Processor exposes the query processor.
func (b *Builder) Processor() *query.Processor { return b.proc }

// AddStage appends a stage, extending every source's union pathway with
// the stage's concepts: an identity add for the contributing source, a
// mapped add per listed derivation, and a trivial Range Void Any extend
// for sources that do not support the concept.
func (b *Builder) AddStage(s Stage) error {
	if b.merged {
		return fmt.Errorf("classical: cannot add stage %q after Merge", s.Name)
	}
	if s.Name == "" {
		return fmt.Errorf("classical: stage needs a name")
	}
	if b.perSource[s.Name] != nil {
		return fmt.Errorf("classical: duplicate stage %q", s.Name)
	}
	b.perSource[s.Name] = make(map[string]int)
	for _, c := range s.Concepts {
		sc, err := hdm.ParseScheme(c.Object)
		if err != nil {
			return fmt.Errorf("classical: stage %q: %w", s.Name, err)
		}
		kind := hdm.Link
		if sc.Arity() == 1 {
			kind = hdm.Nodal
		}
		covered := make(map[string]bool)
		if c.Identity != "" {
			w := b.source(c.Identity)
			if w == nil {
				return fmt.Errorf("classical: stage %q: unknown identity source %q", s.Name, c.Identity)
			}
			obj, err := w.Schema().Resolve(sc.Parts())
			if err != nil {
				return fmt.Errorf("classical: stage %q: identity for %s: %w", s.Name, sc, err)
			}
			// Identity adoption: add with the source object itself as
			// the derivation. Counted as trivial effort per the paper.
			b.pathways[c.Identity].Append(
				transform.NewAdd(sc, iql.Ref(obj.Scheme.Parts()...), kind, "", "").WithAuto())
			if b.identity[c.Identity] == nil {
				b.identity[c.Identity] = make(map[string]bool)
			}
			b.identity[c.Identity][obj.Scheme.Key()] = true
			covered[c.Identity] = true
		}
		for _, m := range c.Mapped {
			w := b.source(m.Source)
			if w == nil {
				return fmt.Errorf("classical: stage %q: unknown source %q", s.Name, m.Source)
			}
			q, err := iql.Parse(m.Query)
			if err != nil {
				return fmt.Errorf("classical: stage %q: derivation of %s from %s: %w",
					s.Name, sc, m.Source, err)
			}
			b.pathways[m.Source].Append(transform.NewAdd(sc, q, kind, "", ""))
			if m.Counted {
				b.perSource[s.Name][m.Source]++
			}
			covered[m.Source] = true
		}
		for _, w := range b.sources {
			if covered[w.SchemaName()] {
				continue
			}
			b.pathways[w.SchemaName()].Append(transform.NewExtend(
				sc, &iql.Lit{Val: iql.Void()}, &iql.Lit{Val: iql.Any()}, kind, "", "").WithAuto())
		}
	}
	b.stages = append(b.stages, s)
	return nil
}

func (b *Builder) source(name string) wrapper.Wrapper {
	for _, w := range b.sources {
		if w.SchemaName() == name {
			return w
		}
	}
	return nil
}

// Merge completes the integration (Fig. 1): each source's pathway is
// closed with contract steps for its remaining local objects so the
// union-compatible schemas become identical; ident transformations are
// injected pairwise; and the first US is adopted as the global schema
// under the given name. Only after Merge can queries run — the paper's
// point about up-front cost.
func (b *Builder) Merge(globalName string) (*hdm.Schema, error) {
	if b.merged {
		return nil, fmt.Errorf("classical: already merged")
	}
	if len(b.stages) == 0 {
		return nil, fmt.Errorf("classical: no stages defined")
	}
	// The global object set: every concept of every stage.
	g := hdm.NewSchema(globalName)
	for _, s := range b.stages {
		for _, c := range s.Concepts {
			sc, err := hdm.ParseScheme(c.Object)
			if err != nil {
				return nil, err
			}
			kind := hdm.Link
			if sc.Arity() == 1 {
				kind = hdm.Nodal
			}
			if !g.Has(sc) {
				if err := g.Add(hdm.NewObject(sc, kind, "", "")); err != nil {
					return nil, err
				}
			}
		}
	}
	// Close each pathway with contracts and derive its US schema.
	var usNames []string
	for _, w := range b.sources {
		name := w.SchemaName()
		pw := b.pathways[name]
		for _, o := range w.Schema().Objects() {
			if b.identity[name] != nil && b.identity[name][o.Scheme.Key()] {
				// Adopted verbatim: the source object is consumed by
				// its identity add; delete it with the identity
				// reverse.
				pw.Append(transform.NewDelete(o.Scheme, iql.Ref(o.Scheme.Parts()...)).WithAuto().
					WithMeta(o.Kind, o.Model, o.Construct))
				continue
			}
			pw.Append(transform.NewContract(o.Scheme, nil, nil).WithAuto().
				WithMeta(o.Kind, o.Model, o.Construct))
		}
		us := g.Clone("US:" + name)
		if err := b.repo.AddSchema(us); err != nil {
			return nil, err
		}
		if err := b.repo.AddPathway(pw, false); err != nil {
			return nil, err
		}
		if err := b.proc.RegisterPathway(pw, name); err != nil {
			return nil, err
		}
		usNames = append(usNames, us.Name())
	}
	// Verify union-compatibility and inject idents.
	for i := 0; i+1 < len(usNames); i++ {
		a, _ := b.repo.Schema(usNames[i])
		c, _ := b.repo.Schema(usNames[i+1])
		steps, err := transform.IdentSteps(a, c)
		if err != nil {
			return nil, fmt.Errorf("classical: schemas not union-compatible: %w", err)
		}
		if err := b.repo.AddPathway(transform.NewPathway(usNames[i], usNames[i+1], steps...), false); err != nil {
			return nil, err
		}
	}
	if err := b.repo.AddSchema(g); err != nil {
		return nil, err
	}
	b.global = g
	b.merged = true
	return g, nil
}

// Global returns the merged global schema (nil before Merge).
func (b *Builder) Global() *hdm.Schema { return b.global }

// Query answers an IQL query over the merged global schema. It is an
// error to query before Merge — classical integration offers no
// services until complete.
func (b *Builder) Query(src string) (iql.Value, error) {
	if !b.merged {
		return iql.Value{}, fmt.Errorf("classical: integration incomplete: no data services before Merge")
	}
	e, err := iql.Parse(src)
	if err != nil {
		return iql.Value{}, err
	}
	var resolveErr error
	canon := iql.SubstituteSchemes(e, func(parts []string) (iql.Expr, bool) {
		obj, err := b.global.Resolve(parts)
		if err != nil {
			if resolveErr == nil {
				resolveErr = err
			}
			return nil, false
		}
		return iql.Ref(obj.Scheme.Parts()...), true
	})
	if resolveErr != nil {
		return iql.Value{}, fmt.Errorf("classical: %w", resolveErr)
	}
	return b.proc.Eval(canon)
}

// NonTrivialCount returns the counted non-trivial transformations for
// one stage and source.
func (b *Builder) NonTrivialCount(stage, source string) int {
	if m := b.perSource[stage]; m != nil {
		return m[source]
	}
	return 0
}

// TotalNonTrivial sums counted non-trivial transformations across all
// stages and sources — the paper's classical-effort headline (95 for
// iSpider).
func (b *Builder) TotalNonTrivial() int {
	total := 0
	for _, m := range b.perSource {
		for _, n := range m {
			total += n
		}
	}
	return total
}

// EffortBreakdown renders "stage/source → count" lines, sorted.
func (b *Builder) EffortBreakdown() []string {
	var out []string
	for stage, m := range b.perSource {
		for src, n := range m {
			if n > 0 {
				out = append(out, fmt.Sprintf("%s from %s: %d", stage, src, n))
			}
		}
	}
	sort.Strings(out)
	return out
}

// Stages returns the stage names in order.
func (b *Builder) Stages() []string {
	out := make([]string, len(b.stages))
	for i, s := range b.stages {
		out[i] = s.Name
	}
	return out
}
