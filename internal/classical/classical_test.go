package classical

import (
	"strings"
	"testing"

	"github.com/dataspace/automed/internal/iql"
	"github.com/dataspace/automed/internal/rel"
	"github.com/dataspace/automed/internal/wrapper"
)

func twoSources(t *testing.T) (wrapper.Wrapper, wrapper.Wrapper) {
	t.Helper()
	a := rel.NewDB("A")
	ta := a.MustCreateTable("books", []rel.Column{
		{Name: "id", Type: rel.Int}, {Name: "isbn", Type: rel.String},
	}, "id")
	ta.MustInsert(int64(1), "978-1")
	ta.MustInsert(int64(2), "978-2")
	b := rel.NewDB("B")
	tb := b.MustCreateTable("items", []rel.Column{
		{Name: "sku", Type: rel.String}, {Name: "barcode", Type: rel.String},
	}, "sku")
	tb.MustInsert("S1", "978-2")
	wa, err := wrapper.NewRelational("A", a)
	if err != nil {
		t.Fatal(err)
	}
	wb, err := wrapper.NewRelational("B", b)
	if err != nil {
		t.Fatal(err)
	}
	return wa, wb
}

func stageGS1() Stage {
	return Stage{Name: "GS1", Concepts: []Concept{
		{Object: "<<books>>", Identity: "A", Mapped: []MappedFrom{
			{Source: "B", Query: "[k | k <- <<items>>]", Counted: true},
		}},
		{Object: "<<books, isbn>>", Identity: "A", Mapped: []MappedFrom{
			{Source: "B", Query: "[{k, x} | {k, x} <- <<items, barcode>>]", Counted: true},
		}},
	}}
}

func TestNoServicesBeforeMerge(t *testing.T) {
	wa, wb := twoSources(t)
	b, err := New(wa, wb)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.AddStage(stageGS1()); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Query("count(<<books>>)"); err == nil {
		t.Fatal("query before Merge succeeded")
	}
}

func TestMergeAndQuery(t *testing.T) {
	wa, wb := twoSources(t)
	b, err := New(wa, wb)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.AddStage(stageGS1()); err != nil {
		t.Fatal(err)
	}
	g, err := b.Merge("GS")
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 2 {
		t.Errorf("global objects = %d", g.Len())
	}
	// Bag union across identity + mapped derivations: 2 + 1 books.
	v, err := b.Query("count(<<books>>)")
	if err != nil {
		t.Fatal(err)
	}
	if !v.Equal(iql.Int(3)) {
		t.Errorf("count = %s", v)
	}
	v, err = b.Query("[k | {k, x} <- <<books, isbn>>; x = '978-2']")
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != 2 {
		t.Errorf("isbn 978-2 = %s", v)
	}
	// Unknown object fails.
	if _, err := b.Query("count(<<items>>)"); err == nil {
		t.Error("query over source-local object succeeded on global schema")
	}
	// Double merge fails.
	if _, err := b.Merge("GS2"); err == nil {
		t.Error("double Merge succeeded")
	}
	// Stage after merge fails.
	if err := b.AddStage(Stage{Name: "late"}); err == nil {
		t.Error("stage after Merge accepted")
	}
}

func TestCounting(t *testing.T) {
	wa, wb := twoSources(t)
	b, _ := New(wa, wb)
	st := stageGS1()
	// Add an uncounted derivation.
	st.Concepts = append(st.Concepts, Concept{
		Object: "<<books, source_note>>",
		Mapped: []MappedFrom{{Source: "B", Query: "[{k, k} | k <- <<items>>]", Counted: false}},
	})
	if err := b.AddStage(st); err != nil {
		t.Fatal(err)
	}
	if got := b.NonTrivialCount("GS1", "B"); got != 2 {
		t.Errorf("NonTrivialCount = %d, want 2", got)
	}
	if got := b.NonTrivialCount("GS1", "A"); got != 0 {
		t.Errorf("identity source counted: %d", got)
	}
	if b.TotalNonTrivial() != 2 {
		t.Errorf("total = %d", b.TotalNonTrivial())
	}
	lines := b.EffortBreakdown()
	if len(lines) != 1 || !strings.Contains(lines[0], "GS1 from B: 2") {
		t.Errorf("breakdown = %v", lines)
	}
}

func TestStageValidation(t *testing.T) {
	wa, wb := twoSources(t)
	b, _ := New(wa, wb)
	if err := b.AddStage(Stage{Name: ""}); err == nil {
		t.Error("unnamed stage accepted")
	}
	if err := b.AddStage(Stage{Name: "S", Concepts: []Concept{{Object: "<<>>"}}}); err == nil {
		t.Error("bad concept scheme accepted")
	}
	if err := b.AddStage(Stage{Name: "S2", Concepts: []Concept{
		{Object: "<<x>>", Identity: "Nope"},
	}}); err == nil {
		t.Error("unknown identity source accepted")
	}
	if err := b.AddStage(Stage{Name: "S3", Concepts: []Concept{
		{Object: "<<x>>", Mapped: []MappedFrom{{Source: "B", Query: "[bad"}}},
	}}); err == nil {
		t.Error("bad derivation query accepted")
	}
	if err := b.AddStage(stageGS1()); err != nil {
		t.Fatal(err)
	}
	if err := b.AddStage(stageGS1()); err == nil {
		t.Error("duplicate stage accepted")
	}
}

func TestMultiStage(t *testing.T) {
	wa, wb := twoSources(t)
	b, _ := New(wa, wb)
	if err := b.AddStage(stageGS1()); err != nil {
		t.Fatal(err)
	}
	// GS2 adds a B-only concept.
	if err := b.AddStage(Stage{Name: "GS2", Concepts: []Concept{
		{Object: "<<items, barcode>>", Identity: "B"},
	}}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Merge("GS"); err != nil {
		t.Fatal(err)
	}
	if got := b.Stages(); len(got) != 2 || got[1] != "GS2" {
		t.Errorf("Stages = %v", got)
	}
	v, err := b.Query("count(<<items, barcode>>)")
	if err != nil {
		t.Fatal(err)
	}
	if !v.Equal(iql.Int(1)) {
		t.Errorf("GS2 concept count = %s", v)
	}
}

func TestMergeRequiresStages(t *testing.T) {
	wa, wb := twoSources(t)
	b, _ := New(wa, wb)
	if _, err := b.Merge("GS"); err == nil {
		t.Error("Merge with no stages succeeded")
	}
}
