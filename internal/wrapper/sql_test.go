package wrapper_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/dataspace/automed/internal/hdm"
	"github.com/dataspace/automed/internal/iql"
	"github.com/dataspace/automed/internal/sqlmem"
	"github.com/dataspace/automed/internal/wrapper"
)

var sqlTestDSN atomic.Int64

func newSQLFixture(t *testing.T, dialect string) (*wrapper.SQL, string) {
	t.Helper()
	dsn := fmt.Sprintf("sqltest-%d", sqlTestDSN.Add(1))
	sqlmem.Register(dsn, conformanceDB())
	w, err := wrapper.NewSQL("S", wrapper.SQLConfig{
		Driver:  sqlmem.DriverName,
		DSN:     dsn,
		Dialect: dialect,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w, dsn
}

func TestSQLIntrospection(t *testing.T) {
	for _, dialect := range []string{wrapper.DialectSQLite, wrapper.DialectInformationSchema} {
		t.Run(dialect, func(t *testing.T) {
			w, _ := newSQLFixture(t, dialect)
			// 2 tables + 4 + 2 columns.
			if w.Schema().Len() != 8 {
				t.Errorf("schema objects = %d, want 8:\n%s", w.Schema().Len(), w.Schema().Describe())
			}
			obj, err := w.Schema().Resolve([]string{"books", "title"})
			if err != nil {
				t.Fatal(err)
			}
			if obj.Kind != hdm.Link || obj.Model != "sql" || obj.Construct != "column" {
				t.Errorf("column object = %+v", obj)
			}
		})
	}
}

func TestSQLExtents(t *testing.T) {
	w, _ := newSQLFixture(t, wrapper.DialectSQLite)
	// Table extent: bag of primary keys, int64-exact.
	v, err := w.Extent([]string{"books"})
	if err != nil {
		t.Fatal(err)
	}
	want := iql.Bag(iql.Int(1), iql.Int(2), iql.Int(1<<60+7))
	if !v.Equal(want) {
		t.Errorf("books extent = %s, want %s", v, want)
	}
	// Column extent: {key, value} pairs, NULLs absent.
	v, err = w.Extent([]string{"books", "title"})
	if err != nil {
		t.Fatal(err)
	}
	want = iql.Bag(
		iql.Tuple(iql.Int(1), iql.Str("Dataspaces")),
		iql.Tuple(iql.Int(1<<60+7), iql.Str("Precision")),
	)
	if !v.Equal(want) {
		t.Errorf("title extent = %s, want %s", v, want)
	}
	// Bool and float columns map losslessly.
	v, err = w.Extent([]string{"books", "instock"})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Equal(iql.Bag(iql.Tuple(iql.Int(1), iql.Bool(true)), iql.Tuple(iql.Int(2), iql.Bool(false)))) {
		t.Errorf("instock extent = %s", v)
	}
}

func TestSQLContextCancellationMidQuery(t *testing.T) {
	w, dsn := newSQLFixture(t, wrapper.DialectSQLite)
	sqlmem.SetDelay(dsn, 5*time.Second)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := w.ExtentContext(ctx, []string{"books"})
	if err == nil {
		t.Fatal("fetch against a slow backend ignored its deadline")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("error = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("cancellation took %v; the fetch was not interrupted", elapsed)
	}
}

func TestSQLOfflineRestoreServesFallback(t *testing.T) {
	w, dsn := newSQLFixture(t, wrapper.DialectSQLite)
	snap, err := w.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a restored daemon whose backend is gone.
	sqlmem.Unregister(dsn)
	restored, err := wrapper.Restore(snap)
	if err != nil {
		t.Fatal(err)
	}
	v, err := restored.Extent([]string{"books", "title"})
	if err != nil {
		t.Fatalf("fallback extent: %v", err)
	}
	if v.Len() != 2 {
		t.Errorf("fallback title extent = %s", v)
	}
	// The original wrapper has no fallback: losing the backend is an
	// error for it, not silent staleness.
	if _, err := w.Extent([]string{"books", "title"}); err == nil {
		t.Error("live wrapper with a vanished backend succeeded")
	}
}

func TestSQLConstructionErrors(t *testing.T) {
	if _, err := wrapper.NewSQL("", wrapper.SQLConfig{Driver: "x", DSN: "y"}); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := wrapper.NewSQL("S", wrapper.SQLConfig{Driver: sqlmem.DriverName}); err == nil {
		t.Error("missing DSN accepted")
	}
	if _, err := wrapper.NewSQL("S", wrapper.SQLConfig{Driver: sqlmem.DriverName, DSN: "x", Dialect: "oracle"}); err == nil {
		t.Error("unknown dialect accepted")
	}
	if _, err := wrapper.NewSQL("S", wrapper.SQLConfig{Driver: sqlmem.DriverName, DSN: "never-registered"}); err == nil {
		t.Error("unregistered DSN accepted")
	}
}

func TestRestoreUnknownKindNamesKinds(t *testing.T) {
	_, err := wrapper.Restore(&wrapper.Snapshot{Kind: "alien", Name: "x"})
	if err == nil {
		t.Fatal("unknown kind accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, `"alien"`) {
		t.Errorf("error %q does not name the offending kind", msg)
	}
	for _, kind := range wrapper.RestoreKinds() {
		if !strings.Contains(msg, kind) {
			t.Errorf("error %q does not list registered kind %q", msg, kind)
		}
	}
	if want := "fault, relational, rest, sql, static"; strings.Join(wrapper.RestoreKinds(), ", ") != want {
		t.Errorf("RestoreKinds() = %v, want %s", wrapper.RestoreKinds(), want)
	}
}
