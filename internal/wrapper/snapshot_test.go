package wrapper

import (
	"bytes"
	"encoding/json"
	"testing"

	"github.com/dataspace/automed/internal/hdm"
	"github.com/dataspace/automed/internal/iql"
	"github.com/dataspace/automed/internal/rel"
)

func snapshotDB(t *testing.T) *rel.DB {
	t.Helper()
	db := rel.NewDB("Lib")
	books := db.MustCreateTable("books", []rel.Column{
		{Name: "id", Type: rel.Int},
		{Name: "title", Type: rel.String},
		{Name: "price", Type: rel.Float},
		{Name: "instock", Type: rel.Bool},
	}, "")
	books.MustInsert(int64(1), "Dataspaces", 10.5, true)
	books.MustInsert(int64(2), "AutoMed", 0.0, false)
	books.MustInsert(int64(1<<60+7), nil, nil, nil)
	loans := db.MustCreateTable("loans", []rel.Column{
		{Name: "loan", Type: rel.String},
		{Name: "book", Type: rel.Int},
	}, "")
	loans.MustInsert("L1", int64(1))
	if err := db.AddForeignKey("loans", "book", "books"); err != nil {
		t.Fatal(err)
	}
	return db
}

// TestRelationalSnapshotRoundTrip checks schema, keys, rows and foreign
// keys survive Snapshot → JSON → Restore, including int64 cells beyond
// float64 precision (the store decodes with UseNumber).
func TestRelationalSnapshotRoundTrip(t *testing.T) {
	w, err := NewRelational("Lib", snapshotDB(t))
	if err != nil {
		t.Fatal(err)
	}
	snap, err := w.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	buf, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var decoded Snapshot
	dec := json.NewDecoder(bytes.NewReader(buf))
	dec.UseNumber()
	if err := dec.Decode(&decoded); err != nil {
		t.Fatal(err)
	}
	got, err := Restore(&decoded)
	if err != nil {
		t.Fatal(err)
	}
	if got.SchemaName() != "Lib" {
		t.Fatalf("SchemaName = %q", got.SchemaName())
	}
	if !hdm.Identical(got.Schema(), w.Schema()) {
		t.Fatalf("schemas differ: %s vs %s", got.Schema().Describe(), w.Schema().Describe())
	}
	for _, parts := range [][]string{{"books"}, {"books", "title"}, {"books", "price"}, {"books", "instock"}, {"loans", "book"}} {
		want, err := w.Extent(parts)
		if err != nil {
			t.Fatal(err)
		}
		have, err := got.Extent(parts)
		if err != nil {
			t.Fatal(err)
		}
		if !have.Equal(want) {
			t.Errorf("extent of %v = %s, want %s", parts, have, want)
		}
	}
	rw := got.(*Relational)
	lt, _ := rw.DB().Table("loans")
	if fks := lt.ForeignKeys(); len(fks) != 1 || fks[0].Column != "book" || fks[0].RefTable != "books" {
		t.Errorf("foreign keys not restored: %v", fks)
	}
}

// TestRelationalSnapshotPlainDecode checks a snapshot decoded without
// UseNumber (cells as float64) still restores when values are integral.
func TestRelationalSnapshotPlainDecode(t *testing.T) {
	db := rel.NewDB("S")
	tb := db.MustCreateTable("t", []rel.Column{{Name: "id", Type: rel.Int}}, "")
	tb.MustInsert(int64(42))
	w, err := NewRelational("S", db)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := w.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	buf, _ := json.Marshal(snap)
	var decoded Snapshot
	if err := json.Unmarshal(buf, &decoded); err != nil {
		t.Fatal(err)
	}
	if _, err := Restore(&decoded); err != nil {
		t.Fatalf("plain-decoded snapshot did not restore: %v", err)
	}
}

func TestStaticSnapshotRoundTrip(t *testing.T) {
	st := NewStatic("Mat")
	if err := st.Add(hdm.MustScheme("<<p>>"), hdm.Nodal, "sql", "table",
		iql.Bag(iql.Int(1), iql.Int(2))); err != nil {
		t.Fatal(err)
	}
	if err := st.Add(hdm.MustScheme("<<p, name>>"), hdm.Link, "sql", "column",
		iql.Bag(iql.Tuple(iql.Int(1), iql.Str("a")))); err != nil {
		t.Fatal(err)
	}
	snap, err := st.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	buf, _ := json.Marshal(snap)
	var decoded Snapshot
	if err := json.Unmarshal(buf, &decoded); err != nil {
		t.Fatal(err)
	}
	got, err := Restore(&decoded)
	if err != nil {
		t.Fatal(err)
	}
	if !hdm.Identical(got.Schema(), st.Schema()) {
		t.Fatal("static schema not restored")
	}
	want, _ := st.Extent([]string{"p", "name"})
	have, err := got.Extent([]string{"p", "name"})
	if err != nil {
		t.Fatal(err)
	}
	if !have.Equal(want) {
		t.Errorf("static extent = %s, want %s", have, want)
	}
}

func TestRestoreRejectsCorruptSnapshots(t *testing.T) {
	cases := []*Snapshot{
		nil,
		{Kind: "relational"},
		{Kind: "alien", Name: "x"},
		{Kind: "relational", Name: "x", Tables: []TableSnapshot{{Name: "t", Columns: []string{"noType"}}}},
		{Kind: "relational", Name: "x", Tables: []TableSnapshot{{Name: "t", Columns: []string{"c:int"}, Rows: [][]any{{"notInt"}}}}},
		{Kind: "relational", Name: "x", Tables: []TableSnapshot{{Name: "t", Columns: []string{"c:int"}, Rows: [][]any{{1.0, 2.0}}}}},
		{Kind: "static", Name: "x", Objects: []ObjectSnapshot{{Scheme: "<<", Kind: "nodal"}}},
		{Kind: "static", Name: "x", Objects: []ObjectSnapshot{{Scheme: "<<a>>", Kind: "banana"}}},
		{Kind: "static", Name: "x", Objects: []ObjectSnapshot{{Scheme: "<<a>>", Kind: "nodal", Extent: iql.ValueDTO{Kind: "?"}}}},
	}
	for i, snap := range cases {
		if _, err := Restore(snap); err == nil {
			t.Errorf("case %d: corrupt snapshot accepted", i)
		}
	}
}
