package wrapper_test

import (
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/dataspace/automed/internal/iql"
	"github.com/dataspace/automed/internal/wrapper"
)

func TestRESTDiscovery(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/":
			fmt.Fprint(w, `{"books": [{"id": 1, "title": "A"}], "loans": [{"ref": "L1"}]}`)
		case "/books":
			fmt.Fprint(w, `[{"id": 1, "title": "A"}]`)
		case "/loans":
			fmt.Fprint(w, `[{"ref": "L1"}]`)
		default:
			http.NotFound(w, r)
		}
	}))
	defer srv.Close()
	w, err := wrapper.NewREST("R", wrapper.RESTConfig{Endpoint: srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	// books: nodal + id + title; loans: nodal + ref (key inferred as
	// the only field since "id" is absent).
	if w.Schema().Len() != 5 {
		t.Errorf("discovered schema has %d objects:\n%s", w.Schema().Len(), w.Schema().Describe())
	}
	v, err := w.Extent([]string{"loans"})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Equal(iql.Bag(iql.Str("L1"))) {
		t.Errorf("loans extent = %s", v)
	}
}

func TestRESTPathNormalization(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v2/stock" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, `[{"id": 1}]`)
	}))
	defer srv.Close()
	// A declared path without a leading slash still resolves against
	// the endpoint instead of mangling the URL.
	w, err := wrapper.NewREST("R", wrapper.RESTConfig{
		Endpoint:    srv.URL,
		Collections: []wrapper.RESTCollection{{Name: "stock", Path: "v2/stock", Fields: []string{"id"}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	v, err := w.Extent([]string{"stock"})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Equal(iql.Bag(iql.Int(1))) {
		t.Errorf("extent = %s", v)
	}
}

func TestRESTRetryOnceOn5xx(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			http.Error(w, "flaky", http.StatusBadGateway)
			return
		}
		fmt.Fprint(w, `[{"id": 1}]`)
	}))
	defer srv.Close()
	w, err := wrapper.NewREST("R", wrapper.RESTConfig{
		Endpoint:    srv.URL,
		Collections: []wrapper.RESTCollection{{Name: "books", Fields: []string{"id"}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	v, err := w.Extent([]string{"books"})
	if err != nil {
		t.Fatalf("one 502 defeated the retry: %v", err)
	}
	if !v.Equal(iql.Bag(iql.Int(1))) {
		t.Errorf("extent = %s", v)
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("backend saw %d requests, want 2 (original + one retry)", got)
	}
}

func TestRESTNoRetryOn4xxAndRetryBound(t *testing.T) {
	var calls atomic.Int32
	status := http.StatusNotFound
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "nope", status)
	}))
	defer srv.Close()
	w, err := wrapper.NewREST("R", wrapper.RESTConfig{
		Endpoint:    srv.URL,
		Collections: []wrapper.RESTCollection{{Name: "books", Fields: []string{"id"}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Extent([]string{"books"}); err == nil {
		t.Fatal("404 fetch succeeded")
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("a 404 was retried: %d requests", got)
	}
	// Persistent 5xx: exactly one retry, then failure.
	calls.Store(0)
	status = http.StatusInternalServerError
	if _, err := w.Extent([]string{"books"}); err == nil {
		t.Fatal("persistent 500 fetch succeeded")
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("persistent 500 saw %d requests, want 2", got)
	}
}

func TestRESTResponseBudget(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, `[{"id": 1, "blob": %q}]`, strings.Repeat("x", 4096))
	}))
	defer srv.Close()
	w, err := wrapper.NewREST("R", wrapper.RESTConfig{
		Endpoint:    srv.URL,
		MaxBytes:    512,
		Collections: []wrapper.RESTCollection{{Name: "books", Fields: []string{"blob", "id"}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = w.Extent([]string{"books"})
	if err == nil || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("oversized response error = %v, want a budget violation", err)
	}
}

func TestRESTTimeout(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(2 * time.Second)
	}))
	defer srv.Close()
	w, err := wrapper.NewREST("R", wrapper.RESTConfig{
		Endpoint:    srv.URL,
		Timeout:     50 * time.Millisecond,
		Collections: []wrapper.RESTCollection{{Name: "books", Fields: []string{"id"}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := w.Extent([]string{"books"}); err == nil {
		t.Fatal("slow endpoint did not time out")
	}
	// Two attempts of 50ms each, far below the handler's sleep.
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("timeout fetch took %v", elapsed)
	}
}

func TestRESTMalformedPayloads(t *testing.T) {
	payload := ""
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, payload)
	}))
	defer srv.Close()
	w, err := wrapper.NewREST("R", wrapper.RESTConfig{
		Endpoint:    srv.URL,
		Collections: []wrapper.RESTCollection{{Name: "books", Fields: []string{"id", "meta"}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{
		`{"not": "an array"}`,
		`[1, 2, 3]`,
		`[{"id": 1}] trailing`,
		`[{"id": {"nested": true}}]`,
		`[{"id": 1e400}]`,
		`[null]`,
		`[{"id": 1}`,
	} {
		payload = bad
		if _, err := w.Extent([]string{"books"}); err == nil {
			t.Errorf("payload %q decoded without error", bad)
		}
	}
	// Wrong-typed fields are fine as long as they are scalars: the
	// common data model is dynamically typed.
	payload = `[{"id": "k1", "meta": false}]`
	v, err := w.Extent([]string{"books", "meta"})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Equal(iql.Bag(iql.Tuple(iql.Str("k1"), iql.Bool(false)))) {
		t.Errorf("meta extent = %s", v)
	}
	// A record without the declared key fails the extent.
	payload = `[{"meta": true}]`
	if _, err := w.Extent([]string{"books"}); err == nil {
		t.Error("record without its key field was accepted")
	}
}

func TestRESTRestoreFallsBackWhenEndpointDies(t *testing.T) {
	srv := restBackend(t)
	w, err := wrapper.NewREST("R", wrapper.RESTConfig{
		Endpoint:    srv.URL,
		Collections: []wrapper.RESTCollection{{Name: "books", Fields: []string{"id", "title"}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := w.Extent([]string{"books", "title"})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := w.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
	restored, err := wrapper.Restore(snap)
	if err != nil {
		t.Fatal(err)
	}
	got, err := restored.Extent([]string{"books", "title"})
	if err != nil {
		t.Fatalf("restored wrapper with dead endpoint: %v", err)
	}
	if !got.Equal(want) {
		t.Errorf("fallback extent = %s, want %s", got, want)
	}
	// The original wrapper has no fallback; the outage surfaces.
	if _, err := w.Extent([]string{"books", "title"}); err == nil {
		t.Error("live wrapper with a dead endpoint succeeded")
	}
}

// TestRESTRetryBacksOff asserts the retry waits before re-sending: a
// zero-delay re-GET against an already-struggling endpoint is a retry
// storm in miniature.
func TestRESTRetryBacksOff(t *testing.T) {
	var calls atomic.Int32
	var gap atomic.Int64 // ns between the two requests
	var first atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch calls.Add(1) {
		case 1:
			first.Store(time.Now().UnixNano())
			http.Error(w, "overloaded", http.StatusServiceUnavailable)
		default:
			gap.Store(time.Now().UnixNano() - first.Load())
			fmt.Fprint(w, `[{"id": 1}]`)
		}
	}))
	defer srv.Close()
	w, err := wrapper.NewREST("R", wrapper.RESTConfig{
		Endpoint:     srv.URL,
		Collections:  []wrapper.RESTCollection{{Name: "books", Fields: []string{"id"}}},
		RetryBackoff: 80 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Extent([]string{"books"}); err != nil {
		t.Fatalf("retry failed: %v", err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("backend saw %d requests, want 2", got)
	}
	// Jitter spans [0.5, 1.5) of the base delay; anything under half is
	// a missing backoff.
	if g := time.Duration(gap.Load()); g < 40*time.Millisecond {
		t.Errorf("retry re-sent after %v, want >= 40ms of backoff", g)
	}
}

// TestRESTRetryHonors429RetryAfter asserts a 429 is retried (unlike
// other 4xx) and that the server's Retry-After sets the wait, capped at
// the fetch timeout so a hostile header cannot park the client.
func TestRESTRetryHonors429RetryAfter(t *testing.T) {
	var calls atomic.Int32
	var gap atomic.Int64
	var first atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch calls.Add(1) {
		case 1:
			first.Store(time.Now().UnixNano())
			w.Header().Set("Retry-After", "30") // capped at Timeout below
			http.Error(w, "slow down", http.StatusTooManyRequests)
		default:
			gap.Store(time.Now().UnixNano() - first.Load())
			fmt.Fprint(w, `[{"id": 1}]`)
		}
	}))
	defer srv.Close()
	w, err := wrapper.NewREST("R", wrapper.RESTConfig{
		Endpoint:    srv.URL,
		Collections: []wrapper.RESTCollection{{Name: "books", Fields: []string{"id"}}},
		Timeout:     300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Extent([]string{"books"}); err != nil {
		t.Fatalf("429 defeated the retry: %v", err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("backend saw %d requests, want 2 (429 + honored retry)", got)
	}
	g := time.Duration(gap.Load())
	if g < 250*time.Millisecond {
		t.Errorf("retry after %v ignored Retry-After (want ~300ms cap)", g)
	}
	if g > 5*time.Second {
		t.Errorf("retry after %v was not capped at the fetch timeout", g)
	}
}

// TestRESTErrorResponsesReuseConnection counts TCP connections across
// repeated failing fetches: getBody drains error bodies before closing,
// so the keep-alive connection goes back in the pool instead of being
// redialled for every attempt.
func TestRESTErrorResponsesReuseConnection(t *testing.T) {
	var conns, calls atomic.Int32
	srv := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error": "not found", "detail": "`+strings.Repeat("x", 512)+`"}`, http.StatusNotFound)
	}))
	srv.Config.ConnState = func(_ net.Conn, state http.ConnState) {
		if state == http.StateNew {
			conns.Add(1)
		}
	}
	srv.Start()
	defer srv.Close()

	w, err := wrapper.NewREST("R", wrapper.RESTConfig{
		Endpoint:    srv.URL,
		Collections: []wrapper.RESTCollection{{Name: "books", Fields: []string{"id"}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := w.Extent([]string{"books"}); err == nil {
			t.Fatal("404 fetch succeeded")
		}
	}
	if got := calls.Load(); got != 4 {
		t.Fatalf("server saw %d requests, want 4", got)
	}
	if got := conns.Load(); got != 1 {
		t.Errorf("4 failing fetches used %d connections, want 1 (error bodies not drained?)", got)
	}
}
