// Package wrapper implements AutoMed-style data source wrappers: each
// wrapper extracts metadata from a data source to produce a data source
// schema in the common data model, and serves the extents of that
// schema's objects to the query processor (paper §2.1, Fig. 1, step 1).
//
// Extent conventions follow the paper's IQL examples: the extent of a
// relational table <<t>> is the bag of its primary-key values, and the
// extent of a column <<t, c>> is the bag of {key, value} pairs.
package wrapper

import (
	"fmt"

	"github.com/dataspace/automed/internal/hdm"
	"github.com/dataspace/automed/internal/iql"
	"github.com/dataspace/automed/internal/rel"
)

// Wrapper exposes a data source as a schema plus extents.
type Wrapper interface {
	// SchemaName returns the name of the data source schema.
	SchemaName() string
	// Schema returns the data source schema.
	Schema() *hdm.Schema
	// Extent returns the extent of the object referenced by parts,
	// resolved against the wrapper's schema (suffix matching allowed).
	Extent(parts []string) (iql.Value, error)
}

// Relational wraps an in-memory relational database.
type Relational struct {
	name   string
	db     *rel.DB
	schema *hdm.Schema
}

// NewRelational builds a wrapper and its data source schema: one
// <<sql, table, t>>-style object per table (stored with the short
// scheme <<t>>) and one <<t, c>> object per column. Primary-key and
// foreign-key constraints become constraint objects.
func NewRelational(name string, db *rel.DB) (*Relational, error) {
	if db == nil {
		return nil, fmt.Errorf("wrapper: nil database")
	}
	s := hdm.NewSchema(name)
	for _, t := range db.Tables() {
		if err := s.Add(hdm.NewObject(hdm.NewScheme(t.Name()), hdm.Nodal, "sql", "table")); err != nil {
			return nil, err
		}
		for _, c := range t.Columns() {
			sc := hdm.NewScheme(t.Name(), c.Name)
			if err := s.Add(hdm.NewObject(sc, hdm.Link, "sql", "column")); err != nil {
				return nil, err
			}
		}
	}
	return &Relational{name: name, db: db, schema: s}, nil
}

// SchemaName implements Wrapper.
func (w *Relational) SchemaName() string { return w.name }

// Kind labels the wrapper flavour in metrics and traces.
func (w *Relational) Kind() string { return "relational" }

// Schema implements Wrapper.
func (w *Relational) Schema() *hdm.Schema { return w.schema }

// DB exposes the wrapped database (for direct verification in tests).
func (w *Relational) DB() *rel.DB { return w.db }

// Extent implements Wrapper.
func (w *Relational) Extent(parts []string) (iql.Value, error) {
	obj, err := w.schema.Resolve(parts)
	if err != nil {
		return iql.Value{}, err
	}
	sc := obj.Scheme
	switch sc.Arity() {
	case 1:
		t, ok := w.db.Table(sc.Part(0))
		if !ok {
			return iql.Value{}, fmt.Errorf("wrapper: %s: no table %q", w.name, sc.Part(0))
		}
		keys := t.Keys()
		items := make([]iql.Value, len(keys))
		for i, k := range keys {
			items[i] = CellValue(k)
		}
		return iql.BagOf(items), nil
	case 2:
		t, ok := w.db.Table(sc.Part(0))
		if !ok {
			return iql.Value{}, fmt.Errorf("wrapper: %s: no table %q", w.name, sc.Part(0))
		}
		pairs, err := t.ColumnPairs(sc.Part(1))
		if err != nil {
			return iql.Value{}, fmt.Errorf("wrapper: %s: %w", w.name, err)
		}
		items := make([]iql.Value, len(pairs))
		for i, p := range pairs {
			items[i] = iql.Tuple(CellValue(p[0]), CellValue(p[1]))
		}
		return iql.BagOf(items), nil
	}
	return iql.Value{}, fmt.Errorf("wrapper: %s: unsupported scheme %s", w.name, sc)
}

// CellValue converts a relational cell (int64, float64, string, bool or
// nil) to an IQL value.
func CellValue(v any) iql.Value {
	switch x := v.(type) {
	case nil:
		return iql.Null()
	case string:
		return iql.Str(x)
	case int64:
		return iql.Int(x)
	case float64:
		return iql.Float(x)
	case bool:
		return iql.Bool(x)
	}
	return iql.Str(fmt.Sprintf("%v", v))
}

// NewCSVDir loads a directory of typed-header CSV files (see package
// rel) and wraps it as a relational source named name.
func NewCSVDir(name, dir string) (*Relational, error) {
	db, err := rel.LoadCSVDir(name, dir)
	if err != nil {
		return nil, err
	}
	return NewRelational(name, db)
}

// Static is a wrapper over fixed extents, useful for tests and for
// sources already materialised elsewhere.
type Static struct {
	name    string
	schema  *hdm.Schema
	extents map[string]iql.Value
}

// NewStatic builds a static wrapper. Extents are keyed by scheme key.
func NewStatic(name string) *Static {
	return &Static{
		name:    name,
		schema:  hdm.NewSchema(name),
		extents: make(map[string]iql.Value),
	}
}

// Add registers an object and its extent.
func (w *Static) Add(sc hdm.Scheme, kind hdm.ObjectKind, model, construct string, extent iql.Value) error {
	if err := w.schema.Add(hdm.NewObject(sc, kind, model, construct)); err != nil {
		return err
	}
	w.extents[sc.Key()] = extent
	return nil
}

// SchemaName implements Wrapper.
func (w *Static) SchemaName() string { return w.name }

// Kind labels the wrapper flavour in metrics and traces.
func (w *Static) Kind() string { return "static" }

// Schema implements Wrapper.
func (w *Static) Schema() *hdm.Schema { return w.schema }

// Extent implements Wrapper.
func (w *Static) Extent(parts []string) (iql.Value, error) {
	obj, err := w.schema.Resolve(parts)
	if err != nil {
		return iql.Value{}, err
	}
	v, ok := w.extents[obj.Scheme.Key()]
	if !ok {
		return iql.Value{}, fmt.Errorf("wrapper: %s: no extent for %s", w.name, obj.Scheme)
	}
	return v, nil
}
