package wrapper

import (
	"context"
	"fmt"

	"github.com/dataspace/automed/internal/iql"
)

// Scanner streams one object's extent row by row. It is the pull-based
// alternative to Wrapper.Extent: callers drive the iteration, so only a
// bounded window of the extent is resident at a time, which is what
// lets one daemon host million-row remote tables with flat memory.
//
// The protocol follows database/sql.Rows: Next advances to the next row
// (fetching more data from the backend as needed) and reports false at
// the end of the extent or on error; Row returns the current row after
// a true Next; Err distinguishes exhaustion from failure after Next
// returns false; Close releases backend resources and is safe to call
// at any point, including mid-stream. Next observes ctx, so a cancelled
// request abandons the remaining pages instead of draining them.
//
// A Scanner is single-use and not safe for concurrent use.
type Scanner interface {
	Next(ctx context.Context) bool
	Row() iql.Value
	Err() error
	Close() error
}

// ScanSourcer is the streaming extension of a wrapper: ExtentScanner
// returns a Scanner over the extent of the object referenced by parts.
// Every wrapper in this package implements it; wrappers over remote
// backends (SQL, REST) stream pages from the wire, while local wrappers
// adapt their materialised extents. The scanner yields exactly the rows
// Extent would return, in the same order — the conformance suite
// enforces this byte-for-byte.
type ScanSourcer interface {
	ExtentScanner(ctx context.Context, parts []string) (Scanner, error)
}

// sliceScanner adapts a materialised extent to the Scanner interface.
type sliceScanner struct {
	items  []iql.Value
	i      int
	cur    iql.Value
	err    error
	closed bool
}

// NewSliceScanner returns a Scanner over an already-materialised row
// slice. Local wrappers (relational, static, XML) use it to satisfy
// ScanSourcer; it is also the degraded path of remote wrappers serving
// snapshot-fallback extents.
func NewSliceScanner(items []iql.Value) Scanner {
	return &sliceScanner{items: items}
}

func (s *sliceScanner) Next(ctx context.Context) bool {
	if s.closed || s.err != nil || s.i >= len(s.items) {
		return false
	}
	if err := ctx.Err(); err != nil {
		s.err = err
		return false
	}
	s.cur = s.items[s.i]
	s.i++
	return true
}

func (s *sliceScanner) Row() iql.Value { return s.cur }
func (s *sliceScanner) Err() error     { return s.err }
func (s *sliceScanner) Close() error {
	s.closed = true
	s.items = nil
	return nil
}

// materialisedScanner serves a wrapper's extent through the Scanner
// interface by fetching it whole first. It is how wrappers whose
// backends cannot page (in-memory tables, parsed documents) satisfy
// ScanSourcer.
func materialisedScanner(w Wrapper, ctx context.Context, parts []string) (Scanner, error) {
	var v iql.Value
	var err error
	if cw, ok := w.(interface {
		ExtentContext(ctx context.Context, parts []string) (iql.Value, error)
	}); ok {
		v, err = cw.ExtentContext(ctx, parts)
	} else {
		v, err = w.Extent(parts)
	}
	if err != nil {
		return nil, err
	}
	els, err := v.Elements()
	if err != nil {
		return nil, fmt.Errorf("wrapper: %s: extent of <<%s>> is not a collection: %w",
			w.SchemaName(), joinParts(parts), err)
	}
	return NewSliceScanner(els), nil
}

func joinParts(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += ", "
		}
		out += p
	}
	return out
}

// ExtentScanner implements ScanSourcer over the in-memory database.
func (w *Relational) ExtentScanner(ctx context.Context, parts []string) (Scanner, error) {
	return materialisedScanner(w, ctx, parts)
}

// ExtentScanner implements ScanSourcer over the fixed extents.
func (w *Static) ExtentScanner(ctx context.Context, parts []string) (Scanner, error) {
	return materialisedScanner(w, ctx, parts)
}
