package wrapper_test

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"github.com/dataspace/automed/internal/hdm"
	"github.com/dataspace/automed/internal/iql"
	"github.com/dataspace/automed/internal/rel"
	"github.com/dataspace/automed/internal/sqlmem"
	"github.com/dataspace/automed/internal/wrapper"
	"github.com/dataspace/automed/internal/wrapper/wrappertest"
)

// conformanceDB is the fixture every relational-shaped factory shares:
// two tables, every cell type, NULLs, and an int64 beyond float64
// precision (the snapshot round-trip must keep it exact).
func conformanceDB() *rel.DB {
	db := rel.NewDB("S")
	books := db.MustCreateTable("books", []rel.Column{
		{Name: "id", Type: rel.Int},
		{Name: "title", Type: rel.String},
		{Name: "price", Type: rel.Float},
		{Name: "instock", Type: rel.Bool},
	}, "id")
	books.MustInsert(int64(1), "Dataspaces", 10.5, true)
	books.MustInsert(int64(2), nil, 20.0, false)
	books.MustInsert(int64(1<<60+7), "Precision", nil, nil)
	loans := db.MustCreateTable("loans", []rel.Column{
		{Name: "loan", Type: rel.String},
		{Name: "book", Type: rel.Int},
	}, "loan")
	loans.MustInsert("L1", int64(1))
	loans.MustInsert("L2", nil)
	return db
}

func TestWrapperConformanceCSV(t *testing.T) {
	wrappertest.Run(t, func(t *testing.T) wrapper.Wrapper {
		dir := t.TempDir()
		if err := rel.WriteCSVDir(conformanceDB(), dir); err != nil {
			t.Fatal(err)
		}
		w, err := wrapper.NewCSVDir("S", dir)
		if err != nil {
			t.Fatal(err)
		}
		return w
	})
}

func TestWrapperConformanceStatic(t *testing.T) {
	wrappertest.Run(t, func(t *testing.T) wrapper.Wrapper {
		st := wrapper.NewStatic("G")
		if err := st.Add(hdm.MustScheme("<<UBook>>"), hdm.Nodal, "sql", "table",
			iql.Bag(iql.Int(1), iql.Int(2))); err != nil {
			t.Fatal(err)
		}
		if err := st.Add(hdm.MustScheme("<<UBook, title>>"), hdm.Link, "sql", "column",
			iql.Bag(iql.Tuple(iql.Int(1), iql.Str("a")), iql.Tuple(iql.Int(2), iql.Str("b")))); err != nil {
			t.Fatal(err)
		}
		return st
	})
}

const conformanceXML = `
<library>
  <book isbn="978-1"><title>Dataspaces</title><author>Franklin</author></book>
  <book isbn="978-2"><title>Schema Matching</title></book>
</library>`

func TestWrapperConformanceXML(t *testing.T) {
	wrappertest.Run(t, func(t *testing.T) wrapper.Wrapper {
		w, err := wrapper.NewXML("X", strings.NewReader(conformanceXML))
		if err != nil {
			t.Fatal(err)
		}
		return w
	})
}

var conformanceDSN atomic.Int64

func TestWrapperConformanceSQL(t *testing.T) {
	for _, dialect := range []string{wrapper.DialectSQLite, wrapper.DialectInformationSchema, wrapper.DialectPostgres} {
		t.Run(dialect, func(t *testing.T) {
			// One DSN per dialect run: the suite's factories must agree on
			// the backing database but stay isolated from other tests.
			dsn := fmt.Sprintf("conformance-%d", conformanceDSN.Add(1))
			sqlmem.Register(dsn, conformanceDB())
			wrappertest.Run(t, func(t *testing.T) wrapper.Wrapper {
				w, err := wrapper.NewSQL("S", wrapper.SQLConfig{
					Driver:  sqlmem.DriverName,
					DSN:     dsn,
					Dialect: dialect,
				})
				if err != nil {
					t.Fatal(err)
				}
				return w
			})
		})
	}
}

// TestWrapperConformanceSQLPaged runs the suite with a page size
// smaller than every table, so extents and scans cross LIMIT/OFFSET
// page boundaries (including a NULL-bearing row mid-page).
func TestWrapperConformanceSQLPaged(t *testing.T) {
	dsn := fmt.Sprintf("conformance-%d", conformanceDSN.Add(1))
	sqlmem.Register(dsn, conformanceDB())
	wrappertest.Run(t, func(t *testing.T) wrapper.Wrapper {
		w, err := wrapper.NewSQL("S", wrapper.SQLConfig{
			Driver:        sqlmem.DriverName,
			DSN:           dsn,
			FetchPageRows: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		return w
	})
}

// TestWrapperConformanceSQLNullKeys covers tables without a declared
// primary key whose fallback key column contains NULLs: a table's
// extent is the bag of its key values, NULL is not a key, so rows with
// NULL keys are absent from both arities — through Extent and through
// the scanner alike (the suite's ScannerMatchesExtent enforces the
// latter).
func TestWrapperConformanceSQLNullKeys(t *testing.T) {
	db := rel.NewDB("N")
	m := db.MustCreateTable("m", []rel.Column{
		{Name: "a", Type: rel.Int},
		{Name: "b", Type: rel.String},
	}, "b")
	m.MustInsert(nil, "x")
	m.MustInsert(int64(1), "y")
	m.MustInsert(int64(2), "z")
	dsn := fmt.Sprintf("conformance-%d", conformanceDSN.Add(1))
	sqlmem.Register(dsn, db)
	// Hide the declared key from introspection: the wrapper falls back
	// to the first column, "a", which holds a NULL.
	sqlmem.SetNoPK(dsn, "m")
	factory := func(t *testing.T) wrapper.Wrapper {
		w, err := wrapper.NewSQL("N", wrapper.SQLConfig{
			Driver:        sqlmem.DriverName,
			DSN:           dsn,
			FetchPageRows: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	wrappertest.Run(t, factory)

	w := factory(t)
	nodal, err := w.Extent([]string{"m"})
	if err != nil {
		t.Fatal(err)
	}
	if want := iql.Bag(iql.Int(1), iql.Int(2)); !nodal.Equal(want) {
		t.Errorf("<<m>> = %s, want %s (NULL key skipped)", nodal, want)
	}
	link, err := w.Extent([]string{"m", "b"})
	if err != nil {
		t.Fatal(err)
	}
	want := iql.Bag(
		iql.Tuple(iql.Int(1), iql.Str("y")),
		iql.Tuple(iql.Int(2), iql.Str("z")),
	)
	if !link.Equal(want) {
		t.Errorf("<<m, b>> = %s, want %s (NULL-keyed row skipped in both arities)", link, want)
	}
}

// restBackend serves a fixed two-collection JSON API for the
// conformance suite, httptest-hosted so fetches go over real HTTP.
func restBackend(t *testing.T) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /books", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `[
			{"id": 1, "title": "Dataspaces", "price": 10.5, "instock": true},
			{"id": 2, "price": 20, "instock": false},
			{"id": 1152921504606846983, "title": "Precision"}
		]`)
	})
	mux.HandleFunc("GET /loans", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `[{"id": "L1", "book": 1}, {"id": "L2"}]`)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func TestWrapperConformanceREST(t *testing.T) {
	srv := restBackend(t)
	wrappertest.Run(t, func(t *testing.T) wrapper.Wrapper {
		w, err := wrapper.NewREST("R", wrapper.RESTConfig{
			Endpoint: srv.URL,
			Collections: []wrapper.RESTCollection{
				{Name: "books", Fields: []string{"id", "instock", "price", "title"}},
				{Name: "loans", Fields: []string{"book", "id"}},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return w
	})
}

// pagedRESTBackend serves the same records as restBackend but one per
// response, chained with Link rel="next" headers (relative targets, so
// resolution against the final request URL is exercised too).
func pagedRESTBackend(t *testing.T) *httptest.Server {
	t.Helper()
	pages := map[string][]string{
		"books": {
			`[{"id": 1, "title": "Dataspaces", "price": 10.5, "instock": true}]`,
			`[{"id": 2, "price": 20, "instock": false}]`,
			`[{"id": 1152921504606846983, "title": "Precision"}]`,
		},
		"loans": {
			`[{"id": "L1", "book": 1}]`,
			`[{"id": "L2"}]`,
		},
	}
	mux := http.NewServeMux()
	for name, ps := range pages {
		mux.HandleFunc("GET /"+name, func(w http.ResponseWriter, r *http.Request) {
			page := 0
			if q := r.URL.Query().Get("page"); q != "" {
				fmt.Sscanf(q, "%d", &page)
			}
			if page >= len(ps) {
				http.NotFound(w, r)
				return
			}
			if page < len(ps)-1 {
				w.Header().Set("Link", fmt.Sprintf(`</%s?page=%d>; rel="next"`, name, page+1))
			}
			fmt.Fprint(w, ps[page])
		})
	}
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// TestWrapperConformanceRESTPaginated runs the suite against a backend
// that splits every collection across Link-chained pages: extents and
// scans must be byte-identical to the single-page serving.
func TestWrapperConformanceRESTPaginated(t *testing.T) {
	srv := pagedRESTBackend(t)
	factory := func(t *testing.T) wrapper.Wrapper {
		w, err := wrapper.NewREST("R", wrapper.RESTConfig{
			Endpoint: srv.URL,
			Collections: []wrapper.RESTCollection{
				{Name: "books", Fields: []string{"id", "instock", "price", "title"}},
				{Name: "loans", Fields: []string{"book", "id"}},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	wrappertest.Run(t, factory)

	// Paginated and single-page servings must agree byte for byte.
	flat := restBackend(t)
	wf, err := wrapper.NewREST("R", wrapper.RESTConfig{
		Endpoint: flat.URL,
		Collections: []wrapper.RESTCollection{
			{Name: "books", Fields: []string{"id", "instock", "price", "title"}},
			{Name: "loans", Fields: []string{"book", "id"}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	wp := factory(t)
	for _, o := range wf.Schema().Objects() {
		want, err := wf.Extent(o.Scheme.Parts())
		if err != nil {
			t.Fatal(err)
		}
		got, err := wp.Extent(o.Scheme.Parts())
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Errorf("paginated extent of %s = %s, want %s", o.Scheme, got, want)
		}
	}
}

// BenchmarkRESTDiscovery guards the discovery path's allocation
// profile: decoding each collection's raw JSON must not copy the body
// (bytes.NewReader over the RawMessage, not a string round trip).
func BenchmarkRESTDiscovery(b *testing.B) {
	var records strings.Builder
	records.WriteString(`{"items": [`)
	for i := 0; i < 500; i++ {
		if i > 0 {
			records.WriteString(",")
		}
		fmt.Fprintf(&records, `{"id": %d, "v": "value-%d"}`, i, i)
	}
	records.WriteString(`]}`)
	body := records.String()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, body)
	}))
	defer srv.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wrapper.NewREST("R", wrapper.RESTConfig{Endpoint: srv.URL}); err != nil {
			b.Fatal(err)
		}
	}
}
