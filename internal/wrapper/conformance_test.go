package wrapper_test

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"github.com/dataspace/automed/internal/hdm"
	"github.com/dataspace/automed/internal/iql"
	"github.com/dataspace/automed/internal/rel"
	"github.com/dataspace/automed/internal/sqlmem"
	"github.com/dataspace/automed/internal/wrapper"
	"github.com/dataspace/automed/internal/wrapper/wrappertest"
)

// conformanceDB is the fixture every relational-shaped factory shares:
// two tables, every cell type, NULLs, and an int64 beyond float64
// precision (the snapshot round-trip must keep it exact).
func conformanceDB() *rel.DB {
	db := rel.NewDB("S")
	books := db.MustCreateTable("books", []rel.Column{
		{Name: "id", Type: rel.Int},
		{Name: "title", Type: rel.String},
		{Name: "price", Type: rel.Float},
		{Name: "instock", Type: rel.Bool},
	}, "id")
	books.MustInsert(int64(1), "Dataspaces", 10.5, true)
	books.MustInsert(int64(2), nil, 20.0, false)
	books.MustInsert(int64(1<<60+7), "Precision", nil, nil)
	loans := db.MustCreateTable("loans", []rel.Column{
		{Name: "loan", Type: rel.String},
		{Name: "book", Type: rel.Int},
	}, "loan")
	loans.MustInsert("L1", int64(1))
	loans.MustInsert("L2", nil)
	return db
}

func TestWrapperConformanceCSV(t *testing.T) {
	wrappertest.Run(t, func(t *testing.T) wrapper.Wrapper {
		dir := t.TempDir()
		if err := rel.WriteCSVDir(conformanceDB(), dir); err != nil {
			t.Fatal(err)
		}
		w, err := wrapper.NewCSVDir("S", dir)
		if err != nil {
			t.Fatal(err)
		}
		return w
	})
}

func TestWrapperConformanceStatic(t *testing.T) {
	wrappertest.Run(t, func(t *testing.T) wrapper.Wrapper {
		st := wrapper.NewStatic("G")
		if err := st.Add(hdm.MustScheme("<<UBook>>"), hdm.Nodal, "sql", "table",
			iql.Bag(iql.Int(1), iql.Int(2))); err != nil {
			t.Fatal(err)
		}
		if err := st.Add(hdm.MustScheme("<<UBook, title>>"), hdm.Link, "sql", "column",
			iql.Bag(iql.Tuple(iql.Int(1), iql.Str("a")), iql.Tuple(iql.Int(2), iql.Str("b")))); err != nil {
			t.Fatal(err)
		}
		return st
	})
}

const conformanceXML = `
<library>
  <book isbn="978-1"><title>Dataspaces</title><author>Franklin</author></book>
  <book isbn="978-2"><title>Schema Matching</title></book>
</library>`

func TestWrapperConformanceXML(t *testing.T) {
	wrappertest.Run(t, func(t *testing.T) wrapper.Wrapper {
		w, err := wrapper.NewXML("X", strings.NewReader(conformanceXML))
		if err != nil {
			t.Fatal(err)
		}
		return w
	})
}

var conformanceDSN atomic.Int64

func TestWrapperConformanceSQL(t *testing.T) {
	for _, dialect := range []string{wrapper.DialectSQLite, wrapper.DialectInformationSchema} {
		t.Run(dialect, func(t *testing.T) {
			// One DSN per dialect run: the suite's factories must agree on
			// the backing database but stay isolated from other tests.
			dsn := fmt.Sprintf("conformance-%d", conformanceDSN.Add(1))
			sqlmem.Register(dsn, conformanceDB())
			wrappertest.Run(t, func(t *testing.T) wrapper.Wrapper {
				w, err := wrapper.NewSQL("S", wrapper.SQLConfig{
					Driver:  sqlmem.DriverName,
					DSN:     dsn,
					Dialect: dialect,
				})
				if err != nil {
					t.Fatal(err)
				}
				return w
			})
		})
	}
}

// restBackend serves a fixed two-collection JSON API for the
// conformance suite, httptest-hosted so fetches go over real HTTP.
func restBackend(t *testing.T) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /books", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `[
			{"id": 1, "title": "Dataspaces", "price": 10.5, "instock": true},
			{"id": 2, "price": 20, "instock": false},
			{"id": 1152921504606846983, "title": "Precision"}
		]`)
	})
	mux.HandleFunc("GET /loans", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `[{"id": "L1", "book": 1}, {"id": "L2"}]`)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func TestWrapperConformanceREST(t *testing.T) {
	srv := restBackend(t)
	wrappertest.Run(t, func(t *testing.T) wrapper.Wrapper {
		w, err := wrapper.NewREST("R", wrapper.RESTConfig{
			Endpoint: srv.URL,
			Collections: []wrapper.RESTCollection{
				{Name: "books", Fields: []string{"id", "instock", "price", "title"}},
				{Name: "loans", Fields: []string{"book", "id"}},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return w
	})
}
