package wrapper

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	neturl "net/url"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/dataspace/automed/internal/hdm"
	"github.com/dataspace/automed/internal/iql"
	"github.com/dataspace/automed/internal/obs"
)

// RESTCollection declares one collection served by a JSON/REST source.
type RESTCollection struct {
	// Name is the collection (and nodal object) name.
	Name string
	// Key names the field holding each record's identifier; defaults
	// to "id".
	Key string
	// Path is the endpoint-relative path serving the collection as a
	// JSON array of flat objects; defaults to "/<name>".
	Path string
	// Fields lists the record fields to expose as <<c, f>> link
	// objects. Empty means infer them from one fetch at construction.
	Fields []string
}

// RESTConfig configures a JSON/REST data source.
type RESTConfig struct {
	// Endpoint is the base URL; collection paths are appended to it.
	Endpoint string
	// Collections declares the served collections. Empty means
	// discover them from a GET of the endpoint itself, which must
	// return a JSON object mapping collection names to arrays of flat
	// objects.
	Collections []RESTCollection
	// Timeout bounds each HTTP fetch (default 10s).
	Timeout time.Duration
	// MaxBytes bounds each response body (default 8 MiB); larger
	// responses fail the fetch rather than exhaust memory.
	MaxBytes int64
	// RetryBackoff is the base delay before the single retry (default
	// 100ms, jittered ±50%). A 429 or 503 carrying a Retry-After header
	// overrides it, capped at Timeout. Not persisted in snapshots.
	RetryBackoff time.Duration
	// Client optionally overrides the HTTP client (tests inject
	// in-memory transports; production setups add auth or pooling).
	Client *http.Client
}

const (
	defaultRESTTimeout  = 10 * time.Second
	defaultRESTMaxBytes = 8 << 20
	defaultRESTBackoff  = 100 * time.Millisecond
)

// restColl is the resolved shape of one collection.
type restColl struct {
	name   string
	key    string
	path   string
	fields []string
}

// REST wraps a JSON-over-HTTP data source: each collection becomes a
// nodal <<c>> object whose extent is the bag of record keys, and each
// field a link <<c, f>> object of {key, value} pairs — the same
// conventions as the relational wrappers, so REST participants join
// integrations symmetrically. Every extent fetch is one GET of the
// collection's endpoint with a timeout, a single retry on transport
// errors and 5xx responses, and a response-size budget. A wrapper
// restored from a snapshot additionally carries the snapshot's
// materialised extents and degrades to them when the endpoint is
// unreachable.
type REST struct {
	name     string
	cfg      RESTConfig
	client   *http.Client
	schema   *hdm.Schema
	colls    map[string]restColl
	order    []string
	fallback map[string]iql.Value // scheme key → materialised extent
}

// NewREST builds a REST wrapper, fetching the endpoint as needed to
// discover collections or infer undeclared fields.
func NewREST(name string, cfg RESTConfig) (*REST, error) {
	return NewRESTContext(context.Background(), name, cfg)
}

// NewRESTContext is NewREST under a caller-supplied context: the
// discovery and field-inference fetches abort as soon as ctx is
// cancelled, so a server handler building a wrapper against a dead
// endpoint stops when its client disconnects instead of pinning the
// request for the full wrapper timeout.
func NewRESTContext(ctx context.Context, name string, cfg RESTConfig) (*REST, error) {
	if name == "" {
		return nil, fmt.Errorf("wrapper: rest: source name is required")
	}
	if cfg.Endpoint == "" {
		return nil, fmt.Errorf("wrapper: rest: source %q: endpoint is required", name)
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = defaultRESTTimeout
	}
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = defaultRESTMaxBytes
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = defaultRESTBackoff
	}
	w := &REST{name: name, cfg: cfg, client: cfg.Client, colls: make(map[string]restColl)}
	if w.client == nil {
		w.client = &http.Client{}
	}
	ctx, cancel := context.WithTimeout(ctx, cfg.Timeout)
	defer cancel()
	var colls []restColl
	var err error
	if len(cfg.Collections) == 0 {
		colls, err = w.discover(ctx)
	} else {
		colls, err = w.declared(ctx, cfg.Collections)
	}
	if err != nil {
		return nil, err
	}
	if err := w.buildSchema(colls); err != nil {
		return nil, err
	}
	return w, nil
}

// declared resolves explicitly declared collections, fetching once to
// infer the fields of any collection that does not declare them.
func (w *REST) declared(ctx context.Context, specs []RESTCollection) ([]restColl, error) {
	out := make([]restColl, 0, len(specs))
	for _, spec := range specs {
		if spec.Name == "" {
			return nil, fmt.Errorf("wrapper: rest: source %q: collection name is required", w.name)
		}
		c := restColl{name: spec.Name, key: spec.Key, path: normalizePath(spec.Path, spec.Name), fields: append([]string(nil), spec.Fields...)}
		if c.key == "" {
			c.key = "id"
		}
		if len(c.fields) == 0 {
			rows, err := w.fetchRows(ctx, c)
			if err != nil {
				return nil, fmt.Errorf("wrapper: rest: source %q: inferring fields of %q: %w", w.name, c.name, err)
			}
			c.fields = inferFields(rows)
		}
		if !contains(c.fields, c.key) {
			c.fields = append(c.fields, c.key)
			sort.Strings(c.fields)
		}
		out = append(out, c)
	}
	return out, nil
}

// discover lists collections from a GET of the endpoint root, which
// must return an object mapping collection names to arrays of flat
// records; keys default to "id" when present, else the first field.
func (w *REST) discover(ctx context.Context) ([]restColl, error) {
	body, err := w.get(ctx, "")
	if err != nil {
		return nil, fmt.Errorf("wrapper: rest: source %q: discovering collections: %w", w.name, err)
	}
	var root map[string]json.RawMessage
	if err := decodeStrict(body, w.cfg.MaxBytes, &root); err != nil {
		return nil, fmt.Errorf("wrapper: rest: source %q: discovering collections: endpoint root is not a JSON object: %w", w.name, err)
	}
	names := make([]string, 0, len(root))
	for n := range root {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]restColl, 0, len(names))
	for _, n := range names {
		rows, err := decodeRESTRows(bytes.NewReader(root[n]), w.cfg.MaxBytes)
		if err != nil {
			return nil, fmt.Errorf("wrapper: rest: source %q: collection %q: %w", w.name, n, err)
		}
		fields := inferFields(rows)
		key := "id"
		if !contains(fields, key) {
			if len(fields) == 0 {
				return nil, fmt.Errorf("wrapper: rest: source %q: collection %q has no records to infer a key from", w.name, n)
			}
			key = fields[0]
		}
		out = append(out, restColl{name: n, key: key, path: "/" + n, fields: fields})
	}
	return out, nil
}

// normalizePath resolves a collection's endpoint-relative path: empty
// means "/<name>", and a declared path always gets its leading slash.
func normalizePath(path, name string) string {
	if path == "" {
		path = name
	}
	if !strings.HasPrefix(path, "/") {
		path = "/" + path
	}
	return path
}

func inferFields(rows []map[string]iql.Value) []string {
	seen := make(map[string]bool)
	for _, r := range rows {
		for f := range r {
			seen[f] = true
		}
	}
	out := make([]string, 0, len(seen))
	for f := range seen {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

func (w *REST) buildSchema(colls []restColl) error {
	s := hdm.NewSchema(w.name)
	for _, c := range colls {
		if err := s.Add(hdm.NewObject(hdm.NewScheme(c.name), hdm.Nodal, "rest", "collection")); err != nil {
			return fmt.Errorf("wrapper: rest: source %q: %w", w.name, err)
		}
		for _, f := range c.fields {
			if err := s.Add(hdm.NewObject(hdm.NewScheme(c.name, f), hdm.Link, "rest", "field")); err != nil {
				return fmt.Errorf("wrapper: rest: source %q: %w", w.name, err)
			}
		}
		w.colls[c.name] = c
		w.order = append(w.order, c.name)
	}
	w.schema = s
	return nil
}

// SchemaName implements Wrapper.
func (w *REST) SchemaName() string { return w.name }

// Schema implements Wrapper.
func (w *REST) Schema() *hdm.Schema { return w.schema }

// Kind labels the wrapper flavour in metrics and traces.
func (w *REST) Kind() string { return "rest" }

// Config returns the wrapper's endpoint configuration.
func (w *REST) Config() RESTConfig { return w.cfg }

// Extent implements Wrapper.
func (w *REST) Extent(parts []string) (iql.Value, error) {
	return w.ExtentContext(context.Background(), parts)
}

// ExtentContext is Extent under a caller-supplied context: the fetch
// aborts as soon as ctx is cancelled (the per-wrapper Timeout still
// applies on top). Restored wrappers fall back to their materialised
// snapshot extents when the live fetch fails.
func (w *REST) ExtentContext(ctx context.Context, parts []string) (iql.Value, error) {
	obj, err := w.schema.Resolve(parts)
	if err != nil {
		return iql.Value{}, err
	}
	sc := obj.Scheme
	c, ok := w.colls[sc.Part(0)]
	if !ok {
		return iql.Value{}, fmt.Errorf("wrapper: rest: source %q: no collection %q", w.name, sc.Part(0))
	}
	rows, err := w.fetchRows(ctx, c)
	if err != nil {
		if fb, ok := w.fallback[sc.Key()]; ok && ctx.Err() == nil {
			return fb, nil
		}
		return iql.Value{}, fmt.Errorf("wrapper: rest: source %q: fetching %s: %w", w.name, sc, err)
	}
	return extentFromRows(sc, c, rows)
}

// extentFromRows projects fetched records onto one object's extent.
func extentFromRows(sc hdm.Scheme, c restColl, rows []map[string]iql.Value) (iql.Value, error) {
	if sc.Arity() > 2 {
		return iql.Value{}, fmt.Errorf("wrapper: rest: unsupported scheme %s", sc)
	}
	items := make([]iql.Value, 0, len(rows))
	for i, r := range rows {
		item, ok, err := rowItem(sc, c, r, i)
		if err != nil {
			return iql.Value{}, err
		}
		if ok {
			items = append(items, item)
		}
	}
	return iql.BagOf(items), nil
}

// rowItem projects one fetched record onto an extent item; i is the
// record's position within the collection, used in error messages. A
// false return (arity 2 only) means the record has no value for the
// field: absent/null fields are absent from the extent, like
// relational NULLs. The materialised and scanner paths share this
// projection, so scanner rows are byte-identical to extent rows.
func rowItem(sc hdm.Scheme, c restColl, r map[string]iql.Value, i int) (iql.Value, bool, error) {
	k, ok := r[c.key]
	if !ok || k.IsNull() {
		return iql.Value{}, false, fmt.Errorf("wrapper: rest: collection %q record %d has no key field %q", c.name, i, c.key)
	}
	if sc.Arity() == 1 {
		return k, true, nil
	}
	v, ok := r[sc.Part(1)]
	if !ok || v.IsNull() {
		return iql.Value{}, false, nil
	}
	return iql.Tuple(k, v), true, nil
}

// restMaxPages bounds how many pages one extent fetch follows; a
// pagination chain this long is a misbehaving (or cyclic) endpoint.
const restMaxPages = 10000

// collURL resolves a collection's absolute first-page URL.
func (w *REST) collURL(c restColl) string {
	return strings.TrimSuffix(w.cfg.Endpoint, "/") + c.path
}

// fetchRows GETs a collection and decodes it, following rel="next"
// Link headers page by page until the chain ends, so the materialised
// extent is the concatenation of exactly the pages a scanner would
// stream. Unpaginated endpoints (no Link header) cost one GET, as
// before.
func (w *REST) fetchRows(ctx context.Context, c restColl) ([]map[string]iql.Value, error) {
	url := w.collURL(c)
	rows, next, err := w.fetchPage(ctx, url, c.path)
	if err != nil {
		return nil, err
	}
	for pages := 1; next != ""; pages++ {
		if pages >= restMaxPages {
			return nil, fmt.Errorf("GET %s: pagination exceeds %d pages", w.collURL(c), restMaxPages)
		}
		if next == url {
			return nil, fmt.Errorf("GET %s: next link points at itself", url)
		}
		url = next
		var more []map[string]iql.Value
		more, next, err = w.fetchPage(ctx, url, url)
		if err != nil {
			return nil, err
		}
		rows = append(rows, more...)
	}
	return rows, nil
}

// StreamingScans reports that ExtentScanner pages records from the
// wire rather than adapting a materialised extent.
func (w *REST) StreamingScans() bool { return true }

// ExtentScanner implements ScanSourcer: it follows the collection's
// pagination chain page by page, holding one decoded page at a time.
// Endpoints that don't paginate stream their single response, which
// still spares the caller the materialised extent copy.
func (w *REST) ExtentScanner(ctx context.Context, parts []string) (Scanner, error) {
	obj, err := w.schema.Resolve(parts)
	if err != nil {
		return nil, err
	}
	sc := obj.Scheme
	c, ok := w.colls[sc.Part(0)]
	if !ok {
		return nil, fmt.Errorf("wrapper: rest: source %q: no collection %q", w.name, sc.Part(0))
	}
	return &restScanner{w: w, sc: sc, c: c, next: w.collURL(c), detail: c.path}, nil
}

// restScanner pages one collection's extent through its pagination
// chain. Each page is one bounded GET (with the wrapper's usual retry
// policy); between pages no connection is held.
type restScanner struct {
	w      *REST
	sc     hdm.Scheme
	c      restColl
	next   string // next page URL; "" once the chain ends
	detail string // trace-span label for the next fetch
	prev   string // last fetched URL, for the self-link guard
	pages  int

	buf    []iql.Value
	i      int
	rec    int // absolute record index across pages, for error parity
	cur    iql.Value
	err    error
	closed bool
}

func (s *restScanner) Next(ctx context.Context) bool {
	if s.closed || s.err != nil {
		return false
	}
	for s.i >= len(s.buf) {
		if s.next == "" {
			return false
		}
		if err := ctx.Err(); err != nil {
			s.err = err
			return false
		}
		// NULL-field skipping can empty a page, so keep following the
		// chain until rows arrive or it ends.
		if err := s.fetchNext(ctx); err != nil {
			s.err = err
			return false
		}
	}
	s.cur = s.buf[s.i]
	s.i++
	return true
}

// fetchNext fetches the next page of the chain and projects its
// records, replacing the buffer.
func (s *restScanner) fetchNext(ctx context.Context) error {
	if s.pages >= restMaxPages {
		return fmt.Errorf("wrapper: rest: source %q: fetching %s: GET %s: pagination exceeds %d pages",
			s.w.name, s.sc, s.w.collURL(s.c), restMaxPages)
	}
	if s.next == s.prev {
		return fmt.Errorf("wrapper: rest: source %q: fetching %s: GET %s: next link points at itself",
			s.w.name, s.sc, s.prev)
	}
	url := s.next
	rows, next, err := s.w.fetchPage(ctx, url, s.detail)
	if err != nil {
		return fmt.Errorf("wrapper: rest: source %q: fetching %s: %w", s.w.name, s.sc, err)
	}
	s.prev, s.next, s.detail = url, next, next
	s.pages++
	items := make([]iql.Value, 0, len(rows))
	for _, r := range rows {
		item, ok, err := rowItem(s.sc, s.c, r, s.rec)
		if err != nil {
			return err
		}
		s.rec++
		if ok {
			items = append(items, item)
		}
	}
	s.buf, s.i = items, 0
	return nil
}

func (s *restScanner) Row() iql.Value { return s.cur }
func (s *restScanner) Err() error     { return s.err }

func (s *restScanner) Close() error {
	s.closed = true
	s.buf = nil
	return nil
}

// fetchPage GETs one page and decodes it, retrying exactly once on
// transport errors, 5xx responses and 429s — after a backoff, so a
// fleet of concurrent fetches against a struggling endpoint does not
// immediately re-send every failed request. Other 4xx responses fail
// immediately: retrying a rejected request cannot help. next is the
// URL of the following page per the response's Link header, empty on
// the last page.
func (w *REST) fetchPage(ctx context.Context, url, detail string) (rows []map[string]iql.Value, next string, err error) {
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, "", err
		}
		if attempt > 0 {
			if err := w.backoff(ctx, lastErr); err != nil {
				return nil, "", fmt.Errorf("after failed fetch: %w", err)
			}
			obs.AddFetchRetry(ctx)
		}
		data, next, err := w.getPage(ctx, url, detail)
		if err != nil {
			lastErr = err
			var re *restStatusError
			if errors.As(err, &re) && re.code < 500 && re.code != http.StatusTooManyRequests {
				return nil, "", err
			}
			continue
		}
		rows, err := decodeRESTRows(bytes.NewReader(data), w.cfg.MaxBytes)
		if err != nil {
			return nil, "", err // a malformed payload is not transient; don't re-download it
		}
		return rows, next, nil
	}
	return nil, "", fmt.Errorf("after retry: %w", lastErr)
}

// backoff sleeps before a retry: the server's Retry-After when the
// failure carried one (capped at the fetch timeout), otherwise the
// configured base delay jittered to ±50% so concurrent retries spread
// out. Cancelling ctx cuts the wait short. The wait is recorded as a
// backoff span on the context's trace.
func (w *REST) backoff(ctx context.Context, cause error) error {
	d := w.cfg.RetryBackoff
	if d <= 0 {
		d = defaultRESTBackoff
	}
	// Jitter in [0.5d, 1.5d): synchronized clients that failed together
	// must not retry together.
	d = d/2 + time.Duration(rand.Int64N(int64(d)))
	var re *restStatusError
	if errors.As(cause, &re) && re.retryAfter > 0 {
		d = re.retryAfter
		if w.cfg.Timeout > 0 && d > w.cfg.Timeout {
			d = w.cfg.Timeout
		}
	}
	sp, _ := obs.StartSpan(ctx, obs.StageBackoff, d.String())
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		sp.End(ctx.Err())
		return ctx.Err()
	case <-t.C:
		sp.End(nil)
		return nil
	}
}

// restStatusError reports a non-2xx response; retryAfter carries the
// parsed Retry-After header of a 429/503, zero when absent.
type restStatusError struct {
	code       int
	url        string
	retryAfter time.Duration
}

func (e *restStatusError) Error() string {
	return fmt.Sprintf("GET %s: unexpected status %d", e.url, e.code)
}

// parseRetryAfter reads a Retry-After header: delay-seconds or an
// HTTP-date. Zero when absent or malformed.
func parseRetryAfter(h string) time.Duration {
	if h == "" {
		return 0
	}
	if secs, err := strconv.Atoi(h); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(h); err == nil {
		if d := time.Until(t); d > 0 {
			return d
		}
	}
	return 0
}

// get performs one bounded GET of an endpoint-relative path and
// returns the response body reader (already within the byte budget).
// The caller owns decoding; pagination headers are ignored.
func (w *REST) get(ctx context.Context, path string) (io.Reader, error) {
	data, _, err := w.getPage(ctx, strings.TrimSuffix(w.cfg.Endpoint, "/")+path, path)
	if err != nil {
		return nil, err
	}
	return bytes.NewReader(data), nil
}

// getPage performs one bounded GET of an absolute URL, returning the
// body and the next-page URL from the response's Link header (empty
// when there is none). detail labels the fetch's trace span.
func (w *REST) getPage(ctx context.Context, url, detail string) ([]byte, string, error) {
	sp, ctx := obs.StartSpan(ctx, "http", detail)
	ctx, cancel := context.WithTimeout(ctx, w.cfg.Timeout)
	defer cancel()
	data, next, err := w.getBody(ctx, url)
	obs.AddFetchBytes(ctx, int64(len(data)))
	sp.SetBytes(int64(len(data)))
	sp.End(err)
	if err != nil {
		return nil, "", err
	}
	return data, next, nil
}

// restDrainBudget bounds how much of an unwanted response body getBody
// drains before closing: enough to let typical error and oversize
// remainders finish so the keep-alive connection is reused, small
// enough that a huge body is abandoned (closing then resets the
// connection, which is the right trade).
const restDrainBudget = 256 << 10

func (w *REST) getBody(ctx context.Context, url string) ([]byte, string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, "", err
	}
	req.Header.Set("Accept", "application/json")
	resp, err := w.client.Do(req)
	if err != nil {
		return nil, "", err
	}
	// Every exit drains the rest of the body (bounded) before closing:
	// a connection closed with unread data cannot go back in the
	// keep-alive pool, and the retry path immediately redials it.
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, restDrainBudget))
		resp.Body.Close()
	}()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return nil, "", &restStatusError{
			code:       resp.StatusCode,
			url:        url,
			retryAfter: parseRetryAfter(resp.Header.Get("Retry-After")),
		}
	}
	// Read fully inside the request deadline; the +1 detects overflow.
	data, err := io.ReadAll(io.LimitReader(resp.Body, w.cfg.MaxBytes+1))
	if err != nil {
		return nil, "", err
	}
	if int64(len(data)) > w.cfg.MaxBytes {
		return nil, "", fmt.Errorf("GET %s: response exceeds the %d-byte budget", url, w.cfg.MaxBytes)
	}
	// resp.Request is the final request after redirects, so relative
	// next links resolve against where the page actually came from.
	return data, parseNextLink(resp.Header.Get("Link"), resp.Request.URL), nil
}

// parseNextLink extracts the rel="next" target from a Link header (RFC
// 8288), resolved against the fetched page's URL since targets may be
// relative. Empty when the header carries no next relation.
func parseNextLink(h string, base *neturl.URL) string {
	for _, part := range strings.Split(h, ",") {
		segs := strings.Split(part, ";")
		target := strings.TrimSpace(segs[0])
		if !strings.HasPrefix(target, "<") || !strings.HasSuffix(target, ">") {
			continue
		}
		isNext := false
		for _, p := range segs[1:] {
			k, v, ok := strings.Cut(strings.TrimSpace(p), "=")
			if !ok || !strings.EqualFold(strings.TrimSpace(k), "rel") {
				continue
			}
			// rel is a space-separated relation list, optionally quoted.
			for _, r := range strings.Fields(strings.Trim(strings.TrimSpace(v), `"`)) {
				if strings.EqualFold(r, "next") {
					isNext = true
				}
			}
		}
		if !isNext {
			continue
		}
		u, err := neturl.Parse(strings.TrimSuffix(strings.TrimPrefix(target, "<"), ">"))
		if err != nil {
			continue
		}
		if base != nil {
			u = base.ResolveReference(u)
		}
		return u.String()
	}
	return ""
}

// Ping probes the endpoint with one bounded GET of the first
// collection, reporting reachability without decoding the payload. It
// is the federation-time liveness probe (query.Pinger).
func (w *REST) Ping(ctx context.Context) error {
	path := ""
	if len(w.order) > 0 {
		path = w.colls[w.order[0]].path
	}
	_, err := w.get(ctx, path)
	return err
}

// FallbackExtent serves the snapshot-materialised extent of one object,
// if this wrapper carries one (restored wrappers do). It implements the
// processor's stale-fallback extension (query.FallbackSourcer).
func (w *REST) FallbackExtent(parts []string) (iql.Value, bool) {
	obj, err := w.schema.Resolve(parts)
	if err != nil {
		return iql.Value{}, false
	}
	v, ok := w.fallback[obj.Scheme.Key()]
	return v, ok
}

// decodeStrict decodes exactly one JSON document within the byte
// budget, rejecting trailing garbage. The budget counts raw bytes
// consumed from r — the same accounting as getBody — so a document of
// maxBytes decodes and one of maxBytes+1 fails on every path.
func decodeStrict(r io.Reader, maxBytes int64, v any) error {
	// The reader is allowed one sentinel byte past the budget: the
	// Decoder buffers ahead, so a mid-read error could reject documents
	// that fit. Overflow is instead checked on consumed bytes after the
	// fact — json.Decoder defers read errors it has buffered past, so
	// the error return alone cannot be relied on.
	br := &budgetReader{r: r, left: maxBytes + 1, max: maxBytes}
	dec := json.NewDecoder(br)
	dec.UseNumber()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if br.overflowed() {
		return fmt.Errorf("response exceeds the %d-byte budget", maxBytes)
	}
	if dec.More() {
		return fmt.Errorf("trailing data after JSON document")
	}
	if br.overflowed() {
		return fmt.Errorf("response exceeds the %d-byte budget", maxBytes)
	}
	return nil
}

// budgetReader fails reads that would exceed the byte budget.
type budgetReader struct {
	r    io.Reader
	left int64
	max  int64
}

// overflowed reports whether more than max bytes were consumed (the
// reader was seeded with one extra sentinel byte).
func (b *budgetReader) overflowed() bool { return b.left <= 0 }

func (b *budgetReader) Read(p []byte) (int, error) {
	if b.left <= 0 {
		return 0, fmt.Errorf("response exceeds the %d-byte budget", b.max)
	}
	if int64(len(p)) > b.left {
		p = p[:b.left]
	}
	n, err := b.r.Read(p)
	b.left -= int64(n)
	return n, err
}

// decodeRESTRows decodes a JSON array of flat objects into records of
// scalar IQL values. It is the extent decoder of the REST wrapper and
// is deliberately strict: non-array documents, non-object elements,
// nested field values, numbers that fit neither int64 nor float64, and
// trailing garbage are all errors — never panics — so malformed remote
// payloads fail the fetch cleanly.
func decodeRESTRows(r io.Reader, maxBytes int64) ([]map[string]iql.Value, error) {
	var raw []map[string]any
	if err := decodeStrict(r, maxBytes, &raw); err != nil {
		return nil, err
	}
	rows := make([]map[string]iql.Value, 0, len(raw))
	for i, obj := range raw {
		if obj == nil {
			return nil, fmt.Errorf("record %d is null, not an object", i)
		}
		row := make(map[string]iql.Value, len(obj))
		for f, v := range obj {
			val, err := scalarValue(v)
			if err != nil {
				return nil, fmt.Errorf("record %d field %q: %w", i, f, err)
			}
			row[f] = val
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// scalarValue maps one decoded JSON field value onto an IQL scalar.
// Integral numbers keep full int64 precision (the decoder uses
// json.Number); everything else numeric must fit a float64.
func scalarValue(v any) (iql.Value, error) {
	switch x := v.(type) {
	case nil:
		return iql.Null(), nil
	case bool:
		return iql.Bool(x), nil
	case string:
		return iql.Str(x), nil
	case json.Number:
		if i, err := x.Int64(); err == nil {
			return iql.Int(i), nil
		}
		f, err := x.Float64()
		if err != nil {
			return iql.Value{}, fmt.Errorf("number %q fits neither int64 nor float64", x.String())
		}
		return iql.Float(f), nil
	}
	return iql.Value{}, fmt.Errorf("unsupported JSON value of type %T (records must be flat)", v)
}
