package wrapper_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"github.com/dataspace/automed/internal/wrapper"
	"github.com/dataspace/automed/internal/wrapper/wrappertest"
)

func newBenignFault(t *testing.T) *wrapper.Fault {
	t.Helper()
	inner, err := wrapper.NewRelational("S", conformanceDB())
	if err != nil {
		t.Fatal(err)
	}
	w, err := wrapper.NewFault(inner, wrapper.FaultConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestWrapperConformanceFault runs the wrapper contract suite against a
// fault wrapper with nothing injected: it must be a transparent proxy.
func TestWrapperConformanceFault(t *testing.T) {
	wrappertest.Run(t, func(t *testing.T) wrapper.Wrapper {
		return newBenignFault(t)
	})
}

func TestFaultErrorRateDeterministic(t *testing.T) {
	run := func() []bool {
		w := newBenignFault(t)
		w.Set(wrapper.FaultConfig{ErrorRate: 0.5, Seed: 42})
		out := make([]bool, 40)
		for i := range out {
			_, err := w.Extent([]string{"books"})
			out[i] = err == nil
		}
		return out
	}
	a, b := run(), run()
	oks, fails := 0, 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fetch %d differed across identically-seeded runs", i)
		}
		if a[i] {
			oks++
		} else {
			fails++
		}
	}
	if oks == 0 || fails == 0 {
		t.Fatalf("error-rate 0.5 over %d fetches produced %d successes, %d failures", len(a), oks, fails)
	}
}

func TestFaultFlapSchedule(t *testing.T) {
	w := newBenignFault(t)
	w.Set(wrapper.FaultConfig{FlapUp: 2, FlapDown: 3})
	want := []bool{true, true, false, false, false, true, true, false, false, false}
	for i, wantOK := range want {
		_, err := w.Extent([]string{"books"})
		if (err == nil) != wantOK {
			t.Fatalf("fetch %d: ok=%v, want %v (flap 2 up / 3 down)", i, err == nil, wantOK)
		}
	}
}

func TestFaultHangHonoursContext(t *testing.T) {
	w := newBenignFault(t)
	w.Set(wrapper.FaultConfig{Hang: true})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := w.ExtentContext(ctx, []string{"books"}); err == nil {
		t.Fatal("hanging fetch returned without error")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("hang ignored its context for %v", elapsed)
	}
}

func TestFaultLatencyAndAmplify(t *testing.T) {
	w := newBenignFault(t)
	base, err := w.Extent([]string{"books"})
	if err != nil {
		t.Fatal(err)
	}
	const delay = 40 * time.Millisecond
	w.Set(wrapper.FaultConfig{Latency: delay, Amplify: 3})
	start := time.Now()
	v, err := w.Extent([]string{"books"})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < delay {
		t.Errorf("fetch took %v, want >= %v of injected latency", elapsed, delay)
	}
	if v.Len() != 3*base.Len() {
		t.Errorf("amplified extent has %d items, want %d", v.Len(), 3*base.Len())
	}
	if cfg := w.Config(); cfg.LatencyMs != delay.Milliseconds() {
		t.Errorf("LatencyMs = %d, want %d", cfg.LatencyMs, delay.Milliseconds())
	}
}

func TestFaultPingFollowsSchedule(t *testing.T) {
	w := newBenignFault(t)
	w.Set(wrapper.FaultConfig{FlapUp: 1, FlapDown: 1})
	if err := w.Ping(context.Background()); err != nil {
		t.Fatalf("first ping (up slot): %v", err)
	}
	if err := w.Ping(context.Background()); err == nil {
		t.Fatal("second ping (down slot) succeeded")
	}
}

func TestFaultSnapshotRoundTrip(t *testing.T) {
	w := newBenignFault(t)
	w.Set(wrapper.FaultConfig{ErrorRate: 0.25, Seed: 7, FlapUp: 3, FlapDown: 1})
	snap, err := w.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Kind != "fault" {
		t.Fatalf("snapshot kind = %q, want fault", snap.Kind)
	}
	restored, err := wrapper.Restore(snap)
	if err != nil {
		t.Fatal(err)
	}
	rf, ok := restored.(*wrapper.Fault)
	if !ok {
		t.Fatalf("restored wrapper is %T, want *wrapper.Fault", restored)
	}
	if got, want := rf.Config(), w.Config(); got != want {
		t.Errorf("restored config = %+v, want %+v", got, want)
	}
	if rf.Kind() != "fault" || rf.Inner().SchemaName() != "S" {
		t.Errorf("restored wrapper: kind=%s inner=%s", rf.Kind(), rf.Inner().SchemaName())
	}
}

func TestFaultFallbackDelegates(t *testing.T) {
	// The relational inner wrapper has no fallback; a Fault over it must
	// report none rather than invent one.
	w := newBenignFault(t)
	if _, ok := w.FallbackExtent([]string{"books"}); ok {
		t.Fatal("fault wrapper invented a fallback extent")
	}
}

func TestFaultInjectedErrorNamesSource(t *testing.T) {
	w := newBenignFault(t)
	w.Set(wrapper.FaultConfig{ErrorRate: 1})
	_, err := w.Extent([]string{"books"})
	if err == nil || !strings.Contains(err.Error(), `"S"`) || !strings.Contains(err.Error(), "injected") {
		t.Fatalf("injected error = %v, want it to name the source", err)
	}
}
