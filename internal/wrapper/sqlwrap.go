package wrapper

import (
	"context"
	"database/sql"
	"fmt"
	"sort"
	"time"

	"github.com/dataspace/automed/internal/hdm"
	"github.com/dataspace/automed/internal/iql"
	"github.com/dataspace/automed/internal/obs"
)

// SQLConfig configures a SQL-over-the-wire data source.
type SQLConfig struct {
	// Driver is the database/sql driver name; the hosting binary must
	// import (and thereby register) the driver itself.
	Driver string
	// DSN is the driver-specific connection string.
	DSN string
	// Dialect selects the schema-introspection strategy: "sqlite"
	// (sqlite_master + PRAGMA table_info, the default) or
	// "information_schema" (standard information_schema views with ?
	// placeholders).
	Dialect string
	// Timeout bounds every introspection query and extent fetch; it
	// combines with (never extends) the caller's context. Defaults to
	// 30s.
	Timeout time.Duration
	// FetchPageRows bounds how many rows each paged scanner SELECT
	// fetches per round trip (LIMIT/OFFSET). 0 uses
	// DefaultFetchPageRows; negative disables paging, so scanners
	// degrade to one unbounded SELECT adapted to the Scanner interface.
	// Materialised Extent fetches are never paged.
	FetchPageRows int
}

const defaultSQLTimeout = 30 * time.Second

// DefaultFetchPageRows is the scanner page size when
// SQLConfig.FetchPageRows is unset.
const DefaultFetchPageRows = 4096

// sqlTable is the introspected shape of one table.
type sqlTable struct {
	name string
	pk   string
	cols []string
}

// SQL wraps a live relational database reached through database/sql:
// the schema is introspected from the catalog at construction, and
// extents are streamed from the backend on every fetch, so the wrapper
// always reflects the current contents. A wrapper restored from a
// snapshot additionally carries the snapshot's materialised extents
// and degrades to them when the backend is unreachable.
type SQL struct {
	name     string
	cfg      SQLConfig
	db       *sql.DB // nil when restored without a usable driver
	schema   *hdm.Schema
	tables   map[string]sqlTable
	fallback map[string]iql.Value // scheme key → materialised extent
}

// NewSQL opens the configured database, introspects its tables and
// columns through the dialect, and exposes them exactly like the
// in-memory relational wrapper: nodal <<t>> objects whose extent is
// the bag of primary-key values, link <<t, c>> objects whose extent is
// the bag of {key, value} pairs.
func NewSQL(name string, cfg SQLConfig) (*SQL, error) {
	return NewSQLContext(context.Background(), name, cfg)
}

// NewSQLContext is NewSQL under a caller-supplied context: the
// introspection queries abort as soon as ctx is cancelled, so a server
// handler opening a source against an unreachable database stops when
// its client disconnects instead of pinning the request for the full
// introspection timeout.
func NewSQLContext(ctx context.Context, name string, cfg SQLConfig) (*SQL, error) {
	if name == "" {
		return nil, fmt.Errorf("wrapper: sql: source name is required")
	}
	if cfg.Driver == "" || cfg.DSN == "" {
		return nil, fmt.Errorf("wrapper: sql: source %q: driver and dsn are required", name)
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = defaultSQLTimeout
	}
	d, err := sqlDialectFor(cfg.Dialect)
	if err != nil {
		return nil, fmt.Errorf("wrapper: sql: source %q: %w", name, err)
	}
	cfg.Dialect = d.name()
	db, err := sql.Open(cfg.Driver, cfg.DSN)
	if err != nil {
		return nil, fmt.Errorf("wrapper: sql: source %q: %w", name, err)
	}
	ctx, cancel := context.WithTimeout(ctx, cfg.Timeout)
	defer cancel()
	tables, err := d.tables(ctx, db)
	if err != nil {
		db.Close()
		return nil, fmt.Errorf("wrapper: sql: source %q: introspecting schema: %w", name, err)
	}
	w := &SQL{name: name, cfg: cfg, db: db}
	if err := w.buildSchema(tables); err != nil {
		db.Close()
		return nil, err
	}
	return w, nil
}

// buildSchema installs the introspected tables as HDM objects, using
// the same scheme conventions as the in-memory relational wrapper.
func (w *SQL) buildSchema(tables []sqlTable) error {
	s := hdm.NewSchema(w.name)
	byName := make(map[string]sqlTable, len(tables))
	for _, t := range tables {
		if t.name == "" || len(t.cols) == 0 {
			return fmt.Errorf("wrapper: sql: source %q: introspected table %q has no columns", w.name, t.name)
		}
		if t.pk == "" {
			t.pk = t.cols[0]
		}
		if !contains(t.cols, t.pk) {
			return fmt.Errorf("wrapper: sql: source %q table %q: primary key %q is not a column",
				w.name, t.name, t.pk)
		}
		if err := s.Add(hdm.NewObject(hdm.NewScheme(t.name), hdm.Nodal, "sql", "table")); err != nil {
			return fmt.Errorf("wrapper: sql: source %q: %w", w.name, err)
		}
		for _, c := range t.cols {
			if err := s.Add(hdm.NewObject(hdm.NewScheme(t.name, c), hdm.Link, "sql", "column")); err != nil {
				return fmt.Errorf("wrapper: sql: source %q: %w", w.name, err)
			}
		}
		byName[t.name] = t
	}
	w.schema = s
	w.tables = byName
	return nil
}

func contains(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}

// SchemaName implements Wrapper.
func (w *SQL) SchemaName() string { return w.name }

// Schema implements Wrapper.
func (w *SQL) Schema() *hdm.Schema { return w.schema }

// Config returns the wrapper's connection configuration.
func (w *SQL) Config() SQLConfig { return w.cfg }

// Kind labels the wrapper flavour in metrics and traces.
func (w *SQL) Kind() string { return "sql" }

// Offline reports whether the wrapper lost its live connection and is
// serving only the snapshot's materialised extents (possible only for
// restored wrappers whose driver is absent from the binary).
func (w *SQL) Offline() bool { return w.db == nil }

// Ping probes the backend connection, reporting reachability without
// fetching data. It is the federation-time liveness probe
// (query.Pinger). An offline wrapper reports unreachable.
func (w *SQL) Ping(ctx context.Context) error {
	if w.db == nil {
		return fmt.Errorf("wrapper: sql: source %q is offline", w.name)
	}
	ctx, cancel := context.WithTimeout(ctx, w.cfg.Timeout)
	defer cancel()
	return w.db.PingContext(ctx)
}

// FallbackExtent serves the snapshot-materialised extent of one object,
// if this wrapper carries one (restored wrappers do). It implements the
// processor's stale-fallback extension (query.FallbackSourcer).
func (w *SQL) FallbackExtent(parts []string) (iql.Value, bool) {
	obj, err := w.schema.Resolve(parts)
	if err != nil {
		return iql.Value{}, false
	}
	v, ok := w.fallback[obj.Scheme.Key()]
	return v, ok
}

// Extent implements Wrapper.
func (w *SQL) Extent(parts []string) (iql.Value, error) {
	return w.ExtentContext(context.Background(), parts)
}

// ExtentContext is Extent under a caller-supplied context: the fetch is
// abandoned as soon as ctx is cancelled (the per-wrapper Timeout still
// applies on top). Restored wrappers fall back to their materialised
// snapshot extents when the live fetch fails.
func (w *SQL) ExtentContext(ctx context.Context, parts []string) (iql.Value, error) {
	obj, err := w.schema.Resolve(parts)
	if err != nil {
		return iql.Value{}, err
	}
	sc := obj.Scheme
	if w.db == nil {
		if v, ok := w.fallback[sc.Key()]; ok {
			return v, nil
		}
		return iql.Value{}, fmt.Errorf("wrapper: sql: source %q is offline and has no materialised extent for %s", w.name, sc)
	}
	v, err := w.fetch(ctx, sc)
	if err != nil {
		if fb, ok := w.fallback[sc.Key()]; ok && ctx.Err() == nil {
			return fb, nil
		}
		return iql.Value{}, err
	}
	return v, nil
}

// pageRows resolves the configured scanner page size: 0 means
// DefaultFetchPageRows, negative disables paging. The config itself is
// never normalised, so snapshots round-trip the user's setting.
func (w *SQL) pageRows() int {
	switch {
	case w.cfg.FetchPageRows > 0:
		return w.cfg.FetchPageRows
	case w.cfg.FetchPageRows < 0:
		return 0
	}
	return DefaultFetchPageRows
}

// StreamingScans reports whether ExtentScanner pages rows incrementally
// from the backend rather than adapting a materialised extent. The
// query pipeline streams only such sources — local wrappers gain
// nothing from the streaming path and would lose parallel sharding.
func (w *SQL) StreamingScans() bool { return w.db != nil && w.pageRows() > 0 }

// ExtentScanner implements ScanSourcer: it pages the extent SELECT
// through LIMIT/OFFSET so only one page of rows is resident at a time.
// Offline wrappers (and paging disabled via FetchPageRows < 0) degrade
// to scanning the materialised extent.
func (w *SQL) ExtentScanner(ctx context.Context, parts []string) (Scanner, error) {
	if !w.StreamingScans() {
		return materialisedScanner(w, ctx, parts)
	}
	obj, err := w.schema.Resolve(parts)
	if err != nil {
		return nil, err
	}
	stmt, err := w.extentStmt(obj.Scheme)
	if err != nil {
		return nil, err
	}
	return &sqlScanner{w: w, sc: obj.Scheme, stmt: stmt, pageRows: w.pageRows()}, nil
}

// sqlScanner pages one extent SELECT through LIMIT/OFFSET. Each page
// is one bounded round trip under the wrapper's Timeout; between pages
// no backend resources are held. Paging carries no ORDER BY, matching
// the unordered SELECT of the materialised path — backends whose
// unordered scans are stable across statements (sqlmem, single-writer
// SQLite) therefore yield byte-identical rows; concurrently mutated
// backends can tear across page boundaries just as two materialised
// fetches can differ.
type sqlScanner struct {
	w        *SQL
	sc       hdm.Scheme
	stmt     string
	pageRows int

	offset int         // raw rows consumed so far (NULL-skipped rows included)
	buf    []iql.Value // current page, NULL rows already dropped
	i      int
	cur    iql.Value
	err    error
	done   bool // backend returned a short page: no more rows
	closed bool
}

func (s *sqlScanner) Next(ctx context.Context) bool {
	if s.closed || s.err != nil {
		return false
	}
	for s.i >= len(s.buf) {
		if s.done {
			return false
		}
		if err := ctx.Err(); err != nil {
			s.err = err
			return false
		}
		// NULL skipping can empty a page, so keep fetching until rows
		// arrive or the backend reports a short (final) page.
		if err := s.fetchPage(ctx); err != nil {
			s.err = err
			return false
		}
	}
	s.cur = s.buf[s.i]
	s.i++
	return true
}

// fetchPage runs one LIMIT/OFFSET round trip, replacing the buffer.
func (s *sqlScanner) fetchPage(ctx context.Context) error {
	stmt := fmt.Sprintf("%s LIMIT %d OFFSET %d", s.stmt, s.pageRows, s.offset)
	ctx, cancel := context.WithTimeout(ctx, s.w.cfg.Timeout)
	defer cancel()
	sp, ctx := obs.StartSpan(ctx, "sql", stmt)
	items, scanned, err := s.w.selectItems(ctx, stmt, s.sc)
	sp.End(err)
	if err != nil {
		return err
	}
	s.offset += scanned
	s.buf, s.i = items, 0
	if scanned < s.pageRows {
		s.done = true
	}
	return nil
}

func (s *sqlScanner) Row() iql.Value { return s.cur }
func (s *sqlScanner) Err() error     { return s.err }

func (s *sqlScanner) Close() error {
	s.closed = true
	s.buf = nil
	return nil
}

// extentStmt builds the SELECT serving one object's extent (without
// any paging clause).
func (w *SQL) extentStmt(sc hdm.Scheme) (string, error) {
	t, ok := w.tables[sc.Part(0)]
	if !ok {
		return "", fmt.Errorf("wrapper: sql: source %q: no table %q", w.name, sc.Part(0))
	}
	switch sc.Arity() {
	case 1:
		return fmt.Sprintf("SELECT %s FROM %s", quoteIdent(t.pk), quoteIdent(t.name)), nil
	case 2:
		if !contains(t.cols, sc.Part(1)) {
			return "", fmt.Errorf("wrapper: sql: source %q table %q: no column %q", w.name, t.name, sc.Part(1))
		}
		return fmt.Sprintf("SELECT %s, %s FROM %s", quoteIdent(t.pk), quoteIdent(sc.Part(1)), quoteIdent(t.name)), nil
	}
	return "", fmt.Errorf("wrapper: sql: source %q: unsupported scheme %s", w.name, sc)
}

// fetch streams one object's extent from the backend.
func (w *SQL) fetch(ctx context.Context, sc hdm.Scheme) (iql.Value, error) {
	stmt, err := w.extentStmt(sc)
	if err != nil {
		return iql.Value{}, err
	}
	ctx, cancel := context.WithTimeout(ctx, w.cfg.Timeout)
	defer cancel()
	sp, ctx := obs.StartSpan(ctx, "sql", stmt)
	v, err := w.query(ctx, stmt, sc)
	sp.End(err)
	return v, err
}

// query runs one extent SELECT and scans its rows.
func (w *SQL) query(ctx context.Context, stmt string, sc hdm.Scheme) (iql.Value, error) {
	items, _, err := w.selectItems(ctx, stmt, sc)
	if err != nil {
		return iql.Value{}, err
	}
	return iql.BagOf(items), nil
}

// selectItems runs one SELECT and maps its rows onto extent items
// through sqlRow; scanned is the raw row count before NULL skipping,
// which paged fetches use to detect the final page.
func (w *SQL) selectItems(ctx context.Context, stmt string, sc hdm.Scheme) (items []iql.Value, scanned int, err error) {
	rows, err := w.db.QueryContext(ctx, stmt)
	if err != nil {
		return nil, 0, fmt.Errorf("wrapper: sql: source %q: fetching %s: %w", w.name, sc, err)
	}
	defer rows.Close()
	pair := sc.Arity() == 2
	for rows.Next() {
		scanned++
		var key, val any
		if pair {
			err = rows.Scan(&key, &val)
		} else {
			err = rows.Scan(&key)
		}
		if err != nil {
			return nil, scanned, fmt.Errorf("wrapper: sql: source %q: scanning %s: %w", w.name, sc, err)
		}
		if item, ok := sqlRow(pair, key, val); ok {
			items = append(items, item)
		}
	}
	if err := rows.Err(); err != nil {
		return nil, scanned, fmt.Errorf("wrapper: sql: source %q: streaming %s: %w", w.name, sc, err)
	}
	return items, scanned, nil
}

// sqlRow maps one scanned row onto an extent item. Rows with NULL keys
// are absent from both arities (a table's extent is the bag of its
// key values, and NULL is not a key), and NULL values are absent from
// column extents — both matching the relational wrapper, which never
// yields them. The materialised and scanner paths share this mapping,
// so scanner rows are byte-identical to extent rows.
func sqlRow(pair bool, key, val any) (iql.Value, bool) {
	if key == nil {
		return iql.Value{}, false
	}
	if !pair {
		return sqlCell(key), true
	}
	if val == nil {
		return iql.Value{}, false
	}
	return iql.Tuple(sqlCell(key), sqlCell(val)), true
}

// sqlCell maps a scanned database cell to an IQL value without losing
// precision: int64 and float64 stay exact, []byte columns become
// strings, timestamps render as RFC 3339.
func sqlCell(v any) iql.Value {
	switch x := v.(type) {
	case nil:
		return iql.Null()
	case int64:
		return iql.Int(x)
	case float64:
		return iql.Float(x)
	case bool:
		return iql.Bool(x)
	case string:
		return iql.Str(x)
	case []byte:
		return iql.Str(string(x))
	case time.Time:
		return iql.Str(x.Format(time.RFC3339Nano))
	}
	return iql.Str(fmt.Sprintf("%v", v))
}

func quoteIdent(s string) string {
	out := make([]byte, 0, len(s)+2)
	out = append(out, '"')
	for i := 0; i < len(s); i++ {
		if s[i] == '"' {
			out = append(out, '"')
		}
		out = append(out, s[i])
	}
	return string(append(out, '"'))
}

// sortedTables returns the wrapper's table metadata in schema order.
func (w *SQL) sortedTables() []sqlTable {
	names := make([]string, 0, len(w.tables))
	for n := range w.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]sqlTable, 0, len(names))
	for _, n := range names {
		out = append(out, w.tables[n])
	}
	return out
}

// ---- Introspection dialects ----

// sqlDialect lists a database's tables (name, primary key, ordered
// columns) through catalog queries.
type sqlDialect interface {
	name() string
	tables(ctx context.Context, db *sql.DB) ([]sqlTable, error)
}

// DialectSQLite, DialectInformationSchema and DialectPostgres are the
// supported values of SQLConfig.Dialect.
const (
	DialectSQLite            = "sqlite"
	DialectInformationSchema = "information_schema"
	DialectPostgres          = "postgres"
)

func sqlDialectFor(name string) (sqlDialect, error) {
	switch name {
	case "", DialectSQLite:
		return sqliteDialect{}, nil
	case DialectInformationSchema:
		return infoSchemaDialect{}, nil
	case DialectPostgres:
		return postgresDialect{}, nil
	}
	return nil, fmt.Errorf("unknown dialect %q (want %s, %s or %s)",
		name, DialectSQLite, DialectInformationSchema, DialectPostgres)
}

// sqliteDialect introspects through sqlite_master and PRAGMA
// table_info, as SQLite (and this module's sqlmem test driver) serve.
type sqliteDialect struct{}

func (sqliteDialect) name() string { return DialectSQLite }

func (sqliteDialect) tables(ctx context.Context, db *sql.DB) ([]sqlTable, error) {
	names, err := stringColumn(ctx, db, `SELECT name FROM sqlite_master WHERE type = 'table' ORDER BY name`)
	if err != nil {
		return nil, err
	}
	out := make([]sqlTable, 0, len(names))
	for _, n := range names {
		rows, err := db.QueryContext(ctx, fmt.Sprintf("PRAGMA table_info(%s)", quoteIdent(n)))
		if err != nil {
			return nil, fmt.Errorf("table %q: %w", n, err)
		}
		t := sqlTable{name: n}
		for rows.Next() {
			var (
				cid, notnull, pk int64
				col, typ         string
				dflt             any
			)
			if err := rows.Scan(&cid, &col, &typ, &notnull, &dflt, &pk); err != nil {
				rows.Close()
				return nil, fmt.Errorf("table %q: %w", n, err)
			}
			t.cols = append(t.cols, col)
			if pk > 0 && t.pk == "" {
				t.pk = col
			}
		}
		if err := rows.Close(); err != nil {
			return nil, fmt.Errorf("table %q: %w", n, err)
		}
		if err := rows.Err(); err != nil {
			return nil, fmt.Errorf("table %q: %w", n, err)
		}
		out = append(out, t)
	}
	return out, nil
}

// infoSchemaDialect introspects through the standard
// information_schema views with ? placeholders (MySQL-compatible; see
// postgresDialect for the $1-placeholder variant). Every query is
// scoped to the connected database — DATABASE() on MySQL — so
// same-named tables in other databases on the server don't bleed in,
// and the primary-key join matches key_column_usage rows on table as
// well as constraint name (on MySQL every table's primary key is
// named "PRIMARY", so joining on constraint_name alone would match
// every table's key columns).
type infoSchemaDialect struct{}

func (infoSchemaDialect) name() string { return DialectInformationSchema }

func (infoSchemaDialect) tables(ctx context.Context, db *sql.DB) ([]sqlTable, error) {
	return infoSchemaTables(ctx, db,
		`SELECT table_name FROM information_schema.tables WHERE table_type = 'BASE TABLE' AND table_schema = DATABASE() ORDER BY table_name`,
		`SELECT column_name FROM information_schema.columns WHERE table_schema = DATABASE() AND table_name = ? ORDER BY ordinal_position`,
		`SELECT kcu.column_name FROM information_schema.table_constraints tc
		 JOIN information_schema.key_column_usage kcu
		   ON kcu.constraint_name = tc.constraint_name
		  AND kcu.table_schema = tc.table_schema
		  AND kcu.table_name = tc.table_name
		 WHERE tc.constraint_type = 'PRIMARY KEY' AND tc.table_schema = DATABASE() AND tc.table_name = ?
		 ORDER BY kcu.ordinal_position`)
}

// postgresDialect is the information_schema strategy with PostgreSQL's
// $1 ordinal placeholders and current_schema() scoping (PostgreSQL
// scopes namespaces per schema within one database, where MySQL scopes
// per database).
type postgresDialect struct{}

func (postgresDialect) name() string { return DialectPostgres }

func (postgresDialect) tables(ctx context.Context, db *sql.DB) ([]sqlTable, error) {
	return infoSchemaTables(ctx, db,
		`SELECT table_name FROM information_schema.tables WHERE table_type = 'BASE TABLE' AND table_schema = current_schema() ORDER BY table_name`,
		`SELECT column_name FROM information_schema.columns WHERE table_schema = current_schema() AND table_name = $1 ORDER BY ordinal_position`,
		`SELECT kcu.column_name FROM information_schema.table_constraints tc
		 JOIN information_schema.key_column_usage kcu
		   ON kcu.constraint_name = tc.constraint_name
		  AND kcu.table_schema = tc.table_schema
		  AND kcu.table_name = tc.table_name
		 WHERE tc.constraint_type = 'PRIMARY KEY' AND tc.table_schema = current_schema() AND tc.table_name = $1
		 ORDER BY kcu.ordinal_position`)
}

// infoSchemaTables introspects through the standard information_schema
// views, parameterised by the dialect-specific query text (placeholder
// style and schema-scoping function differ across backends).
func infoSchemaTables(ctx context.Context, db *sql.DB, tablesQ, colsQ, pkQ string) ([]sqlTable, error) {
	names, err := stringColumn(ctx, db, tablesQ)
	if err != nil {
		return nil, err
	}
	out := make([]sqlTable, 0, len(names))
	for _, n := range names {
		cols, err := stringColumn(ctx, db, colsQ, n)
		if err != nil {
			return nil, fmt.Errorf("table %q: %w", n, err)
		}
		pks, err := stringColumn(ctx, db, pkQ, n)
		if err != nil {
			return nil, fmt.Errorf("table %q: %w", n, err)
		}
		t := sqlTable{name: n, cols: cols}
		if len(pks) > 0 {
			t.pk = pks[0]
		}
		out = append(out, t)
	}
	return out, nil
}

// stringColumn runs a query expected to yield one string column.
func stringColumn(ctx context.Context, db *sql.DB, q string, args ...any) ([]string, error) {
	rows, err := db.QueryContext(ctx, q, args...)
	if err != nil {
		return nil, err
	}
	defer rows.Close()
	var out []string
	for rows.Next() {
		var s string
		if err := rows.Scan(&s); err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, rows.Err()
}
