package wrapper

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sync"
	"time"

	"github.com/dataspace/automed/internal/hdm"
	"github.com/dataspace/automed/internal/iql"
)

// FaultConfig shapes the failures a Fault wrapper injects. The zero
// value injects nothing: the wrapper is then a transparent proxy.
type FaultConfig struct {
	// ErrorRate fails each fetch with this probability (0..1), drawn
	// from the wrapper's seeded deterministic stream.
	ErrorRate float64 `json:"error_rate,omitempty"`
	// Latency delays every fetch (before any injected failure),
	// honouring context cancellation during the wait.
	Latency time.Duration `json:"-"`
	// LatencyMs is Latency's serialised form.
	LatencyMs int64 `json:"latency_ms,omitempty"`
	// Hang blocks every fetch until its context is cancelled — the
	// stuck-backend scenario deadline budgets exist for.
	Hang bool `json:"hang,omitempty"`
	// FlapUp/FlapDown schedule deterministic availability flapping by
	// fetch count: the wrapper serves FlapUp fetches healthily, fails
	// the next FlapDown, and repeats. Both must be set for flapping.
	FlapUp   int `json:"flap_up,omitempty"`
	FlapDown int `json:"flap_down,omitempty"`
	// Amplify repeats each extent's elements this many times — the
	// budget-overflow-body scenario for response-size limits (1 or 0 =
	// unchanged).
	Amplify int `json:"amplify,omitempty"`
	// Seed seeds the error-rate stream (0 = 1), so a given
	// configuration misbehaves identically on every run.
	Seed uint64 `json:"seed,omitempty"`
}

// Fault wraps another wrapper and injects deterministic faults around
// its extent fetches: seeded random errors, fixed latency,
// hang-until-cancelled, counter-based availability flapping, and
// amplified (budget-overflow) bodies. It exists to exercise the
// daemon's fault-tolerance paths — circuit breakers, stale fallback,
// degraded federation — in tests, the chaos-smoke gate, and live
// chaos drills via POST /sources. The configuration can be flipped at
// runtime with Set.
type Fault struct {
	inner Wrapper

	mu    sync.Mutex
	cfg   FaultConfig
	rng   *rand.Rand
	calls int
}

// NewFault wraps inner with fault injection.
func NewFault(inner Wrapper, cfg FaultConfig) (*Fault, error) {
	if inner == nil {
		return nil, fmt.Errorf("wrapper: fault: nil inner wrapper")
	}
	w := &Fault{inner: inner}
	w.Set(cfg)
	return w, nil
}

// Set replaces the fault configuration (and reseeds the error stream),
// taking effect on the next fetch.
func (w *Fault) Set(cfg FaultConfig) {
	if cfg.LatencyMs > 0 && cfg.Latency == 0 {
		cfg.Latency = time.Duration(cfg.LatencyMs) * time.Millisecond
	}
	cfg.LatencyMs = cfg.Latency.Milliseconds()
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	w.mu.Lock()
	w.cfg = cfg
	w.rng = rand.New(rand.NewPCG(cfg.Seed, 0xfa017))
	w.calls = 0
	w.mu.Unlock()
}

// Config returns the current fault configuration.
func (w *Fault) Config() FaultConfig {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.cfg
}

// SchemaName implements Wrapper, delegating to the inner source.
func (w *Fault) SchemaName() string { return w.inner.SchemaName() }

// Schema implements Wrapper, delegating to the inner source.
func (w *Fault) Schema() *hdm.Schema { return w.inner.Schema() }

// Kind labels the wrapper flavour in metrics and traces.
func (w *Fault) Kind() string { return "fault" }

// Inner exposes the wrapped source.
func (w *Fault) Inner() Wrapper { return w.inner }

// decide consumes one fetch slot: it snapshots the latency/hang
// settings and rolls the flap schedule and error stream. Centralising
// the draw keeps concurrent fetches deterministic in aggregate (the
// stream is consumed under the lock).
func (w *Fault) decide() (cfg FaultConfig, fail bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	cfg = w.cfg
	n := w.calls
	w.calls++
	if cfg.FlapUp > 0 && cfg.FlapDown > 0 {
		if n%(cfg.FlapUp+cfg.FlapDown) >= cfg.FlapUp {
			return cfg, true
		}
	}
	if cfg.ErrorRate > 0 && w.rng.Float64() < cfg.ErrorRate {
		return cfg, true
	}
	return cfg, false
}

// Extent implements Wrapper.
func (w *Fault) Extent(parts []string) (iql.Value, error) {
	return w.ExtentContext(context.Background(), parts)
}

// ExtentContext injects the configured faults around the inner fetch.
func (w *Fault) ExtentContext(ctx context.Context, parts []string) (iql.Value, error) {
	if err := ctx.Err(); err != nil {
		return iql.Value{}, err
	}
	cfg, fail := w.decide()
	if cfg.Hang {
		<-ctx.Done()
		return iql.Value{}, ctx.Err()
	}
	if cfg.Latency > 0 {
		t := time.NewTimer(cfg.Latency)
		select {
		case <-ctx.Done():
			t.Stop()
			return iql.Value{}, ctx.Err()
		case <-t.C:
		}
	}
	if fail {
		return iql.Value{}, fmt.Errorf("wrapper: fault: source %q: injected failure", w.SchemaName())
	}
	v, err := w.innerExtent(ctx, parts)
	if err != nil {
		return iql.Value{}, err
	}
	if cfg.Amplify > 1 && v.Kind == iql.KindBag {
		items := make([]iql.Value, 0, len(v.Items)*cfg.Amplify)
		for i := 0; i < cfg.Amplify; i++ {
			items = append(items, v.Items...)
		}
		v = iql.BagOf(items)
	}
	return v, nil
}

// innerExtent routes to the inner wrapper's context-aware path when it
// has one.
func (w *Fault) innerExtent(ctx context.Context, parts []string) (iql.Value, error) {
	if cw, ok := w.inner.(interface {
		ExtentContext(ctx context.Context, parts []string) (iql.Value, error)
	}); ok {
		return cw.ExtentContext(ctx, parts)
	}
	return w.inner.Extent(parts)
}

// Ping reports the wrapper's current injected availability by
// consuming one fetch slot, so federation-time probes see the same
// flap schedule queries do (query.Pinger).
func (w *Fault) Ping(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	cfg, fail := w.decide()
	if cfg.Hang {
		<-ctx.Done()
		return ctx.Err()
	}
	if fail {
		return fmt.Errorf("wrapper: fault: source %q: injected failure", w.SchemaName())
	}
	return nil
}

// FallbackExtent delegates to the inner wrapper's fallback, if any
// (query.FallbackSourcer).
func (w *Fault) FallbackExtent(parts []string) (iql.Value, bool) {
	if fb, ok := w.inner.(interface {
		FallbackExtent(parts []string) (iql.Value, bool)
	}); ok {
		return fb.FallbackExtent(parts)
	}
	return iql.Value{}, false
}

// Snapshot implements Snapshotter when the inner wrapper does: the
// fault configuration plus the inner snapshot, so chaos setups survive
// daemon restarts.
func (w *Fault) Snapshot() (*Snapshot, error) {
	sn, ok := w.inner.(Snapshotter)
	if !ok {
		return nil, fmt.Errorf("wrapper: fault: inner source %q (%T) does not support snapshotting",
			w.inner.SchemaName(), w.inner)
	}
	innerSnap, err := sn.Snapshot()
	if err != nil {
		return nil, err
	}
	return &Snapshot{Kind: "fault", Name: w.SchemaName(), Fault: &FaultSnapshot{
		Config: w.Config(),
		Inner:  innerSnap,
	}}, nil
}

// restoreFault rebuilds a Fault wrapper around its restored inner
// source.
func restoreFault(snap *Snapshot) (Wrapper, error) {
	f := snap.Fault
	if f == nil {
		return nil, fmt.Errorf("wrapper: source %q: fault snapshot has no fault payload", snap.Name)
	}
	inner, err := Restore(f.Inner)
	if err != nil {
		return nil, fmt.Errorf("wrapper: source %q: restoring faulted inner source: %w", snap.Name, err)
	}
	return NewFault(inner, f.Config)
}
