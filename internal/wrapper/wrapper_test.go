package wrapper

import (
	"strings"
	"testing"

	"github.com/dataspace/automed/internal/hdm"
	"github.com/dataspace/automed/internal/iql"
	"github.com/dataspace/automed/internal/rel"
)

func sampleDB(t *testing.T) *rel.DB {
	t.Helper()
	db := rel.NewDB("S")
	tbl := db.MustCreateTable("protein", []rel.Column{
		{Name: "id", Type: rel.Int},
		{Name: "acc", Type: rel.String},
		{Name: "mass", Type: rel.Float},
	}, "id")
	tbl.MustInsert(int64(1), "P1", 10.5)
	tbl.MustInsert(int64(2), "P2", 20.5)
	tbl.MustInsert(int64(3), nil, 30.5)
	return db
}

func TestRelationalSchema(t *testing.T) {
	w, err := NewRelational("S", sampleDB(t))
	if err != nil {
		t.Fatal(err)
	}
	if w.SchemaName() != "S" {
		t.Errorf("name = %q", w.SchemaName())
	}
	// 1 table + 3 columns.
	if w.Schema().Len() != 4 {
		t.Errorf("schema objects = %d", w.Schema().Len())
	}
	obj, err := w.Schema().Resolve([]string{"protein", "acc"})
	if err != nil {
		t.Fatal(err)
	}
	if obj.Kind != hdm.Link || obj.Construct != "column" {
		t.Errorf("column object = %+v", obj)
	}
}

func TestRelationalExtents(t *testing.T) {
	w, err := NewRelational("S", sampleDB(t))
	if err != nil {
		t.Fatal(err)
	}
	// Table extent: bag of keys.
	v, err := w.Extent([]string{"protein"})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Equal(iql.Bag(iql.Int(1), iql.Int(2), iql.Int(3))) {
		t.Errorf("table extent = %s", v)
	}
	// Column extent: {key, value} pairs, nils omitted.
	v, err = w.Extent([]string{"protein", "acc"})
	if err != nil {
		t.Fatal(err)
	}
	want := iql.Bag(
		iql.Tuple(iql.Int(1), iql.Str("P1")),
		iql.Tuple(iql.Int(2), iql.Str("P2")),
	)
	if !v.Equal(want) {
		t.Errorf("column extent = %s, want %s", v, want)
	}
	// Unknown object.
	if _, err := w.Extent([]string{"nope"}); err == nil {
		t.Error("extent of missing object succeeded")
	}
}

func TestCellValue(t *testing.T) {
	cases := []struct {
		in   any
		want iql.Value
	}{
		{nil, iql.Null()},
		{"s", iql.Str("s")},
		{int64(3), iql.Int(3)},
		{2.5, iql.Float(2.5)},
		{true, iql.Bool(true)},
	}
	for _, c := range cases {
		if got := CellValue(c.in); !got.Equal(c.want) && !(got.IsNull() && c.want.IsNull()) {
			t.Errorf("CellValue(%v) = %s, want %s", c.in, got, c.want)
		}
	}
}

func TestCSVDirWrapper(t *testing.T) {
	dir := t.TempDir()
	if err := rel.WriteCSVDir(sampleDB(t), dir); err != nil {
		t.Fatal(err)
	}
	w, err := NewCSVDir("S", dir)
	if err != nil {
		t.Fatal(err)
	}
	v, err := w.Extent([]string{"protein"})
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != 3 {
		t.Errorf("extent = %s", v)
	}
}

func TestStaticWrapper(t *testing.T) {
	w := NewStatic("G")
	sc := hdm.MustScheme("<<UBook>>")
	if err := w.Add(sc, hdm.Nodal, "", "", iql.Bag(iql.Int(1))); err != nil {
		t.Fatal(err)
	}
	if err := w.Add(sc, hdm.Nodal, "", "", iql.Bag()); err == nil {
		t.Error("duplicate Add succeeded")
	}
	v, err := w.Extent([]string{"UBook"})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Equal(iql.Bag(iql.Int(1))) {
		t.Errorf("extent = %s", v)
	}
	if _, err := w.Extent([]string{"missing"}); err == nil {
		t.Error("extent of missing object succeeded")
	}
}

const sampleXML = `
<library>
  <book isbn="978-1" year="2005">
    <title>Dataspaces</title>
    <author>Franklin</author>
    <author>Halevy</author>
  </book>
  <book isbn="978-2">
    <title>Schema Matching</title>
  </book>
</library>`

func TestXMLWrapper(t *testing.T) {
	w, err := NewXML("X", strings.NewReader(sampleXML))
	if err != nil {
		t.Fatal(err)
	}
	// Element extents.
	v, err := w.Extent([]string{"book"})
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != 2 {
		t.Errorf("book extent = %s", v)
	}
	v, err = w.Extent([]string{"author"})
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != 2 {
		t.Errorf("author extent = %s", v)
	}
	// Attribute extent: {id, value} pairs.
	v, err = w.Extent([]string{"book", "@isbn"})
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != 2 {
		t.Errorf("@isbn extent = %s", v)
	}
	// Text extent.
	v, err = w.Extent([]string{"title", "text"})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range v.Items {
		if e.Items[1].S == "Dataspaces" {
			found = true
		}
	}
	if !found {
		t.Errorf("title text extent = %s", v)
	}
	// Nesting: author → book parent ids.
	v, err = w.Extent([]string{"author", "book"})
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != 2 {
		t.Errorf("nest extent = %s", v)
	}
}

func TestXMLQueryThroughIQL(t *testing.T) {
	w, err := NewXML("X", strings.NewReader(sampleXML))
	if err != nil {
		t.Fatal(err)
	}
	ev := iql.NewEvaluator(iql.ExtentsFunc(w.Extent))
	// Titles of books published with an isbn attribute starting 978.
	v, err := ev.EvalString(
		"[t | {tid, t} <- <<title, text>>; {tid2, b} <- <<title, book>>; tid2 = tid; {b2, i} <- <<book, @isbn>>; b2 = b; startswith(i, '978')]")
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != 2 {
		t.Errorf("xml join = %s", v)
	}
}

func TestXMLMalformed(t *testing.T) {
	if _, err := NewXML("X", strings.NewReader("<a><b></a>")); err == nil {
		t.Error("malformed XML accepted")
	}
}
