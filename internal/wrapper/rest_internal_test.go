package wrapper

import (
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestDecodeStrictBudgetBoundary pins the byte-budget boundary: a
// document of exactly maxBytes decodes, one byte more fails — the same
// accounting as getBody's body budget, so the two paths can never
// disagree about a payload at the limit.
func TestDecodeStrictBudgetBoundary(t *testing.T) {
	const budget = 64
	within := budgetDoc(budget)
	over := budgetDoc(budget + 1)
	if len(within) != budget || len(over) != budget+1 {
		t.Fatalf("bad fixtures: %d and %d bytes", len(within), len(over))
	}

	var v any
	if err := decodeStrict(strings.NewReader(within), budget, &v); err != nil {
		t.Errorf("document of exactly %d bytes rejected: %v", budget, err)
	}
	err := decodeStrict(strings.NewReader(over), budget, &v)
	if err == nil {
		t.Fatalf("document of %d bytes decoded despite a %d-byte budget", budget+1, budget)
	}
	if !strings.Contains(err.Error(), "budget") {
		t.Errorf("overflow error does not name the budget: %v", err)
	}

	// The row decoder inherits the same boundary.
	if _, err := decodeRESTRows(strings.NewReader(within), budget); err != nil {
		t.Errorf("decodeRESTRows rejected a document at the budget: %v", err)
	}
	if _, err := decodeRESTRows(strings.NewReader(over), budget); err == nil {
		t.Error("decodeRESTRows accepted a document one byte over the budget")
	}
}

func TestParseRetryAfter(t *testing.T) {
	cases := []struct {
		in   string
		want time.Duration
	}{
		{"", 0},
		{"7", 7 * time.Second},
		{"0", 0},
		{"-3", 0},
		{"soon", 0},
		{time.Now().Add(-time.Hour).UTC().Format(time.RFC1123), 0}, // past dates mean "now"
	}
	for _, c := range cases {
		if got := parseRetryAfter(c.in); got != c.want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	// An HTTP-date a minute out parses to roughly that delay.
	future := time.Now().Add(time.Minute).UTC().Format(http.TimeFormat)
	if got := parseRetryAfter(future); got < 50*time.Second || got > time.Minute {
		t.Errorf("parseRetryAfter(%q) = %v, want ~1m", future, got)
	}
}
