// Package wrappertest is the executable contract of the
// wrapper.Wrapper interface: Run drives any wrapper through the full
// set of behaviours the query processor, the prefetch pool, and the
// persistence layer rely on. Every backend — in-memory or remote —
// runs the same suite, so a new wrapper starts from a passing contract
// instead of folklore.
//
// The asserted contract:
//
//   - the wrapper names a schema and serves an extent, without error,
//     for every object the schema declares; extents are bags, and link
//     objects yield bags of {key, value} pairs;
//   - extents are deterministic: repeated fetches of the same object
//     are equal;
//   - unknown objects produce errors, never panics;
//   - Extent is safe for concurrent use (the prefetch pool fetches in
//     parallel) — run the suite under -race;
//   - context-aware wrappers (wrapper.ContextWrapper) honour an
//     already-cancelled context;
//   - serialisable wrappers (wrapper.Snapshotter) survive a snapshot →
//     JSON → restore round trip with an identical schema, byte-
//     identical extents, and a byte-identical re-snapshot;
//   - scanning wrappers (wrapper.ScanSourcer) serve every extent
//     through a scanner byte-identically to Extent, in the same order
//     on every scan (page boundaries must not perturb it), and release
//     their resources on mid-stream cancellation.
package wrappertest

import (
	"bytes"
	"context"
	"encoding/json"
	"sync"
	"testing"

	"github.com/dataspace/automed/internal/hdm"
	"github.com/dataspace/automed/internal/iql"
	"github.com/dataspace/automed/internal/wrapper"
)

// Factory builds a fresh wrapper for one subtest. Factories are called
// several times per Run, so each call must yield an independent but
// identically-populated wrapper.
type Factory func(t *testing.T) wrapper.Wrapper

// ContextWrapper is the context-aware fetch extension some wrappers
// implement (mirrors query.ContextSourcer without importing it, to
// keep the dependency arrow pointing wrapper ← query).
type ContextWrapper interface {
	ExtentContext(ctx context.Context, parts []string) (iql.Value, error)
}

// Run executes the wrapper conformance suite against factory.
func Run(t *testing.T, factory Factory) {
	t.Run("SchemaAgreement", func(t *testing.T) { testSchemaAgreement(t, factory(t)) })
	t.Run("DeterministicExtents", func(t *testing.T) { testDeterministic(t, factory(t)) })
	t.Run("UnknownObject", func(t *testing.T) { testUnknownObject(t, factory(t)) })
	t.Run("ConcurrentExtent", func(t *testing.T) { testConcurrent(t, factory(t)) })
	t.Run("ContextCancellation", func(t *testing.T) { testContextCancellation(t, factory(t)) })
	t.Run("SnapshotRestore", func(t *testing.T) { testSnapshotRestore(t, factory(t)) })
	t.Run("ScannerMatchesExtent", func(t *testing.T) { testScannerMatchesExtent(t, factory(t)) })
	t.Run("ScannerDeterminism", func(t *testing.T) { testScannerDeterminism(t, factory(t)) })
	t.Run("ScannerCancellation", func(t *testing.T) { testScannerCancellation(t, factory(t)) })
}

// testSchemaAgreement checks the schema and the extent server agree:
// every declared object is fetchable and shaped by its kind.
func testSchemaAgreement(t *testing.T, w wrapper.Wrapper) {
	if w.SchemaName() == "" {
		t.Error("SchemaName() is empty")
	}
	schema := w.Schema()
	if schema == nil {
		t.Fatal("Schema() returned nil")
	}
	if schema.Name() != w.SchemaName() {
		t.Errorf("schema is named %q, wrapper %q", schema.Name(), w.SchemaName())
	}
	if schema.Len() == 0 {
		t.Fatal("schema declares no objects; the suite needs a populated source")
	}
	for _, o := range schema.Objects() {
		v, err := w.Extent(o.Scheme.Parts())
		if err != nil {
			t.Errorf("Extent(%s): %v", o.Scheme, err)
			continue
		}
		if v.Kind != iql.KindBag {
			t.Errorf("Extent(%s) is %s, want a bag", o.Scheme, v.Kind)
			continue
		}
		if o.Kind == hdm.Link {
			for _, it := range v.Items {
				if it.Kind != iql.KindTuple || len(it.Items) != 2 {
					t.Errorf("Extent(%s) element %s is not a {key, value} pair", o.Scheme, it)
					break
				}
			}
		}
	}
}

// testDeterministic checks repeated fetches agree, object by object.
func testDeterministic(t *testing.T, w wrapper.Wrapper) {
	for _, o := range w.Schema().Objects() {
		first, err := w.Extent(o.Scheme.Parts())
		if err != nil {
			t.Fatalf("Extent(%s): %v", o.Scheme, err)
		}
		second, err := w.Extent(o.Scheme.Parts())
		if err != nil {
			t.Fatalf("second Extent(%s): %v", o.Scheme, err)
		}
		if !first.Equal(second) {
			t.Errorf("Extent(%s) is not deterministic: %s then %s", o.Scheme, first, second)
		}
	}
}

// testUnknownObject checks resolution failures are errors, not panics.
func testUnknownObject(t *testing.T, w wrapper.Wrapper) {
	if _, err := w.Extent([]string{"no-such-object-d41d8cd9"}); err == nil {
		t.Error("Extent of an unknown object succeeded")
	}
	// An empty reference is a degenerate scheme; it may resolve (the
	// empty scheme is a suffix of everything) or error, but never panic.
	func() {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("Extent(nil) panicked: %v", r)
			}
		}()
		_, _ = w.Extent(nil)
	}()
}

// testConcurrent hammers every object from several goroutines and
// compares against a serial baseline; meaningful under -race.
func testConcurrent(t *testing.T, w wrapper.Wrapper) {
	objs := w.Schema().Objects()
	baseline := make([]iql.Value, len(objs))
	for i, o := range objs {
		v, err := w.Extent(o.Scheme.Parts())
		if err != nil {
			t.Fatalf("Extent(%s): %v", o.Scheme, err)
		}
		baseline[i] = v
	}
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, o := range objs {
				v, err := w.Extent(o.Scheme.Parts())
				if err != nil {
					errs <- err
					return
				}
				if !v.Equal(baseline[i]) {
					errs <- &mismatchError{scheme: o.Scheme}
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("concurrent Extent: %v", err)
	}
}

type mismatchError struct{ scheme hdm.Scheme }

func (e *mismatchError) Error() string {
	return "extent of " + e.scheme.String() + " diverged from the serial baseline"
}

// testContextCancellation checks context-aware wrappers refuse an
// already-cancelled context; wrappers without the extension skip.
func testContextCancellation(t *testing.T, w wrapper.Wrapper) {
	cw, ok := w.(ContextWrapper)
	if !ok {
		t.Skipf("%T does not implement ExtentContext", w)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, o := range w.Schema().Objects() {
		if _, err := cw.ExtentContext(ctx, o.Scheme.Parts()); err == nil {
			t.Errorf("ExtentContext(%s) with a cancelled context succeeded", o.Scheme)
		}
		break // one object suffices
	}
}

// drainScanner collects every row of a fresh scanner for one object.
func drainScanner(t *testing.T, ss wrapper.ScanSourcer, sc hdm.Scheme) []iql.Value {
	t.Helper()
	ctx := context.Background()
	scn, err := ss.ExtentScanner(ctx, sc.Parts())
	if err != nil {
		t.Fatalf("ExtentScanner(%s): %v", sc, err)
	}
	var rows []iql.Value
	for scn.Next(ctx) {
		rows = append(rows, scn.Row())
	}
	if err := scn.Err(); err != nil {
		t.Fatalf("scanner over %s failed: %v", sc, err)
	}
	if err := scn.Close(); err != nil {
		t.Errorf("Close after scanning %s: %v", sc, err)
	}
	return rows
}

// testScannerMatchesExtent checks the scanner protocol serves every
// object byte-identically to the materialised Extent; wrappers without
// the extension skip.
func testScannerMatchesExtent(t *testing.T, w wrapper.Wrapper) {
	ss, ok := w.(wrapper.ScanSourcer)
	if !ok {
		t.Skipf("%T does not implement ExtentScanner", w)
	}
	for _, o := range w.Schema().Objects() {
		want, err := w.Extent(o.Scheme.Parts())
		if err != nil {
			t.Fatalf("Extent(%s): %v", o.Scheme, err)
		}
		got := iql.BagOf(drainScanner(t, ss, o.Scheme))
		wantJSON, err := json.Marshal(iql.EncodeValue(want))
		if err != nil {
			t.Fatal(err)
		}
		gotJSON, err := json.Marshal(iql.EncodeValue(got))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wantJSON, gotJSON) {
			t.Errorf("scanned extent of %s is not byte-identical to Extent:\n%s\nvs\n%s", o.Scheme, gotJSON, wantJSON)
		}
	}
	// A scanner over an unknown object must fail (at open or on first
	// advance), never panic.
	if scn, err := ss.ExtentScanner(context.Background(), []string{"no-such-object-d41d8cd9"}); err == nil {
		if scn.Next(context.Background()) {
			t.Error("scanner over an unknown object produced a row")
		}
		if scn.Err() == nil {
			t.Error("scanner over an unknown object reported no error")
		}
		_ = scn.Close()
	}
}

// testScannerDeterminism checks two independent scans of the same
// object yield the same rows in the same order — page boundaries and
// refetches must not perturb the sequence.
func testScannerDeterminism(t *testing.T, w wrapper.Wrapper) {
	ss, ok := w.(wrapper.ScanSourcer)
	if !ok {
		t.Skipf("%T does not implement ExtentScanner", w)
	}
	for _, o := range w.Schema().Objects() {
		first := drainScanner(t, ss, o.Scheme)
		second := drainScanner(t, ss, o.Scheme)
		if len(first) != len(second) {
			t.Errorf("scans of %s disagree on length: %d then %d", o.Scheme, len(first), len(second))
			continue
		}
		for i := range first {
			if !first[i].Equal(second[i]) {
				t.Errorf("scans of %s diverge at row %d: %s then %s", o.Scheme, i, first[i], second[i])
				break
			}
		}
	}
}

// testScannerCancellation checks cancellation stops a scan promptly
// and that Close mid-stream releases the scanner cleanly.
func testScannerCancellation(t *testing.T, w wrapper.Wrapper) {
	ss, ok := w.(wrapper.ScanSourcer)
	if !ok {
		t.Skipf("%T does not implement ExtentScanner", w)
	}
	objs := w.Schema().Objects()
	sc := objs[0].Scheme

	// A context cancelled before the first advance: the scanner either
	// refuses to open or stops before producing a page.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if scn, err := ss.ExtentScanner(ctx, sc.Parts()); err == nil {
		if scn.Next(ctx) {
			t.Error("Next succeeded under an already-cancelled context")
		}
		if scn.Err() == nil {
			t.Error("Err() is nil after a cancelled scan")
		}
		if err := scn.Close(); err != nil {
			t.Errorf("Close after cancellation: %v", err)
		}
	}

	// Close mid-stream (after at most one row) must succeed and make
	// further advances return false.
	lctx := context.Background()
	scn, err := ss.ExtentScanner(lctx, sc.Parts())
	if err != nil {
		t.Fatalf("ExtentScanner(%s): %v", sc, err)
	}
	scn.Next(lctx)
	if err := scn.Close(); err != nil {
		t.Errorf("mid-stream Close: %v", err)
	}
	if scn.Next(lctx) {
		t.Error("Next succeeded after Close")
	}
	if err := scn.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

// testSnapshotRestore checks the full persistence contract; wrappers
// without a Snapshot hook skip.
func testSnapshotRestore(t *testing.T, w wrapper.Wrapper) {
	sn, ok := w.(wrapper.Snapshotter)
	if !ok {
		t.Skipf("%T does not implement Snapshotter", w)
	}
	snap, err := sn.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	firstJSON, err := json.Marshal(snap)
	if err != nil {
		t.Fatalf("marshalling snapshot: %v", err)
	}
	// Restore through the store's load path: UseNumber keeps int64
	// cells exact.
	dec := json.NewDecoder(bytes.NewReader(firstJSON))
	dec.UseNumber()
	var decoded wrapper.Snapshot
	if err := dec.Decode(&decoded); err != nil {
		t.Fatalf("decoding snapshot: %v", err)
	}
	restored, err := wrapper.Restore(&decoded)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if restored.SchemaName() != w.SchemaName() {
		t.Errorf("restored SchemaName = %q, want %q", restored.SchemaName(), w.SchemaName())
	}
	if !hdm.Identical(restored.Schema(), w.Schema()) {
		t.Fatalf("restored schema differs:\n%s\nvs\n%s", restored.Schema().Describe(), w.Schema().Describe())
	}
	for _, o := range w.Schema().Objects() {
		want, err := w.Extent(o.Scheme.Parts())
		if err != nil {
			t.Fatalf("Extent(%s): %v", o.Scheme, err)
		}
		got, err := restored.Extent(o.Scheme.Parts())
		if err != nil {
			t.Fatalf("restored Extent(%s): %v", o.Scheme, err)
		}
		// Byte-identical, not just Equal: the serialised form is what
		// downstream stores compare and cache.
		wantJSON, err := json.Marshal(iql.EncodeValue(want))
		if err != nil {
			t.Fatal(err)
		}
		gotJSON, err := json.Marshal(iql.EncodeValue(got))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wantJSON, gotJSON) {
			t.Errorf("restored extent of %s is not byte-identical:\n%s\nvs\n%s", o.Scheme, gotJSON, wantJSON)
		}
	}
	// Re-snapshotting the restored wrapper must reproduce the snapshot
	// byte for byte: restore loses nothing the format records.
	rsn, ok := restored.(wrapper.Snapshotter)
	if !ok {
		t.Fatalf("restored wrapper %T lost its Snapshot hook", restored)
	}
	again, err := rsn.Snapshot()
	if err != nil {
		t.Fatalf("re-snapshot: %v", err)
	}
	secondJSON, err := json.Marshal(again)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(firstJSON, secondJSON) {
		t.Errorf("Snapshot(Restore(Snapshot(w))) differs:\n%s\nvs\n%s", secondJSON, firstJSON)
	}
}
