package wrapper

import (
	"context"
	"encoding/xml"
	"fmt"
	"io"
	"strings"

	"github.com/dataspace/automed/internal/hdm"
	"github.com/dataspace/automed/internal/iql"
)

// XML wraps an XML document as a data source: each distinct element
// name becomes a nodal object <<e>> whose extent is the bag of node
// identifiers (document-order paths); each attribute becomes a link
// object <<e, @a>> of {id, value} pairs; element text content becomes
// <<e, text>>; and parent-child nesting becomes <<child, parent>> pairs
// of {childID, parentID}. This demonstrates the common-data-model claim
// of the paper: heterogeneous languages integrate through one HDM.
type XML struct {
	name    string
	schema  *hdm.Schema
	extents map[string][]iql.Value
}

type xmlNode struct {
	name     string
	id       string
	parentID string
	attrs    []xml.Attr
	text     string
}

// NewXML parses an XML document from r and wraps it under the given
// source name.
func NewXML(name string, r io.Reader) (*XML, error) {
	dec := xml.NewDecoder(r)
	var nodes []xmlNode
	type frame struct {
		node  int // index into nodes
		count map[string]int
	}
	var stack []frame
	rootCount := map[string]int{}
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("wrapper: xml: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			var parentID string
			var counts map[string]int
			if len(stack) == 0 {
				counts = rootCount
			} else {
				p := &stack[len(stack)-1]
				parentID = nodes[p.node].id
				counts = p.count
			}
			counts[t.Name.Local]++
			id := t.Name.Local + fmt.Sprintf("#%d", counts[t.Name.Local])
			if parentID != "" {
				id = parentID + "/" + id
			}
			nodes = append(nodes, xmlNode{
				name:     t.Name.Local,
				id:       id,
				parentID: parentID,
				attrs:    append([]xml.Attr(nil), t.Attr...),
			})
			stack = append(stack, frame{node: len(nodes) - 1, count: map[string]int{}})
		case xml.EndElement:
			stack = stack[:len(stack)-1]
		case xml.CharData:
			if len(stack) > 0 {
				s := strings.TrimSpace(string(t))
				if s != "" {
					n := &nodes[stack[len(stack)-1].node]
					if n.text != "" {
						n.text += " "
					}
					n.text += s
				}
			}
		}
	}

	w := &XML{name: name, schema: hdm.NewSchema(name), extents: make(map[string][]iql.Value)}
	addObj := func(sc hdm.Scheme, kind hdm.ObjectKind, construct string) error {
		if w.schema.Has(sc) {
			return nil
		}
		return w.schema.Add(hdm.NewObject(sc, kind, "xml", construct))
	}
	for _, n := range nodes {
		esc := hdm.NewScheme(n.name)
		if err := addObj(esc, hdm.Nodal, "element"); err != nil {
			return nil, err
		}
		w.extents[esc.Key()] = append(w.extents[esc.Key()], iql.Str(n.id))
		for _, a := range n.attrs {
			asc := hdm.NewScheme(n.name, "@"+a.Name.Local)
			if err := addObj(asc, hdm.Link, "attribute"); err != nil {
				return nil, err
			}
			w.extents[asc.Key()] = append(w.extents[asc.Key()],
				iql.Tuple(iql.Str(n.id), iql.Str(a.Value)))
		}
		if n.text != "" {
			tsc := hdm.NewScheme(n.name, "text")
			if err := addObj(tsc, hdm.Link, "text"); err != nil {
				return nil, err
			}
			w.extents[tsc.Key()] = append(w.extents[tsc.Key()],
				iql.Tuple(iql.Str(n.id), iql.Str(n.text)))
		}
		if n.parentID != "" {
			parentName := nodeName(n.parentID)
			nsc := hdm.NewScheme(n.name, parentName)
			if err := addObj(nsc, hdm.Link, "nest"); err != nil {
				return nil, err
			}
			w.extents[nsc.Key()] = append(w.extents[nsc.Key()],
				iql.Tuple(iql.Str(n.id), iql.Str(n.parentID)))
		}
	}
	return w, nil
}

// nodeName extracts the element name from a node id such as
// "a#1/b#2" → "b".
func nodeName(id string) string {
	last := id
	if i := strings.LastIndex(id, "/"); i >= 0 {
		last = id[i+1:]
	}
	if j := strings.LastIndex(last, "#"); j >= 0 {
		last = last[:j]
	}
	return last
}

// SchemaName implements Wrapper.
func (w *XML) SchemaName() string { return w.name }

// Kind labels the wrapper flavour in metrics and traces.
func (w *XML) Kind() string { return "xml" }

// Schema implements Wrapper.
func (w *XML) Schema() *hdm.Schema { return w.schema }

// Extent implements Wrapper.
func (w *XML) Extent(parts []string) (iql.Value, error) {
	obj, err := w.schema.Resolve(parts)
	if err != nil {
		return iql.Value{}, err
	}
	return iql.BagOf(append([]iql.Value(nil), w.extents[obj.Scheme.Key()]...)), nil
}

// ExtentScanner implements ScanSourcer over the parsed document.
func (w *XML) ExtentScanner(ctx context.Context, parts []string) (Scanner, error) {
	return materialisedScanner(w, ctx, parts)
}
