package wrapper

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/dataspace/automed/internal/iql"
)

// FuzzRESTDecode asserts the REST extent decoder never panics on
// arbitrary payloads — malformed JSON, wrong-typed or nested fields,
// numbers beyond int64 and float64, NaN/Infinity tokens, truncation,
// trailing garbage — and that whatever it accepts is made of valid
// scalar values that survive the persistence codec. The committed seed
// corpus lives in testdata/restdecode; `make fuzz-seeds` replays it as
// plain tests in CI.
func FuzzRESTDecode(f *testing.F) {
	dir := filepath.Join("testdata", "restdecode")
	entries, err := os.ReadDir(dir)
	if err != nil {
		f.Fatalf("reading seed corpus: %v", err)
	}
	if len(entries) == 0 {
		f.Fatal("empty seed corpus")
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	// A few adversarial shapes beyond what fits a readable file.
	f.Add([]byte(strings.Repeat(`[{"a":`, 200) + strings.Repeat("}]", 200)))
	f.Add([]byte("\x00\xff\xfe"))
	f.Add([]byte(`[{"id": 1e-9999}]`))

	f.Fuzz(func(t *testing.T, data []byte) {
		rows, err := decodeRESTRows(strings.NewReader(string(data)), 1<<20)
		if err != nil {
			return
		}
		// Accepted rows must hold only scalar values that round-trip
		// through the snapshot codec.
		for i, r := range rows {
			for field, v := range r {
				switch v.Kind {
				case iql.KindNull, iql.KindBool, iql.KindInt, iql.KindFloat, iql.KindString:
				default:
					t.Fatalf("record %d field %q decoded to non-scalar kind %s", i, field, v.Kind)
				}
				if _, err := iql.DecodeValue(iql.EncodeValue(v)); err != nil {
					t.Fatalf("record %d field %q does not survive the value codec: %v", i, field, err)
				}
			}
		}
	})
}

// FuzzRESTDecodeBudget pins the byte budget: the decoder must reject
// any document longer than the budget rather than buffer it — with no
// off-by-one at the boundary, so the decode budget agrees byte for
// byte with the HTTP body budget enforced by getBody.
func FuzzRESTDecodeBudget(f *testing.F) {
	const budget = 128
	f.Add([]byte(`[{"id": 1, "pad": "` + strings.Repeat("x", 256) + `"}]`))
	// Boundary seeds: exactly at the budget (must decode) and one byte
	// over (must fail) — the off-by-one regression case.
	f.Add([]byte(budgetDoc(budget)))
	f.Add([]byte(budgetDoc(budget + 1)))
	f.Fuzz(func(t *testing.T, data []byte) {
		rows, err := decodeRESTRows(strings.NewReader(string(data)), budget)
		// Trailing whitespace may fall outside what decoding had to
		// read; everything else counts against the budget.
		if doc := len(strings.TrimSpace(string(data))); doc > budget && err == nil && len(rows) > 0 {
			t.Fatalf("%d-byte document decoded despite a %d-byte budget", doc, budget)
		}
	})
}

// budgetDoc builds a valid one-record JSON array document of exactly n
// bytes (n must leave room for the fixed syntax).
func budgetDoc(n int) string {
	const frame = `[{"id":"` + `"}]`
	return `[{"id":"` + strings.Repeat("x", n-len(frame)) + `"}]`
}
