package wrapper

import (
	"database/sql"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strings"
	"time"

	"github.com/dataspace/automed/internal/hdm"
	"github.com/dataspace/automed/internal/iql"
	"github.com/dataspace/automed/internal/rel"
)

// Snapshotter is the serialisation hook for wrappers: implementations
// can capture their full state (schema and data) as a Snapshot that
// Restore turns back into an equivalent in-memory wrapper. Wrappers
// over external systems need not implement it; sessions containing such
// sources cannot be persisted and report a clear error instead.
type Snapshotter interface {
	Snapshot() (*Snapshot, error)
}

// Snapshot is the JSON form of a serialisable wrapper. Exactly one of
// the kind-specific payloads is populated, selected by Kind.
type Snapshot struct {
	// Kind is "relational", "static", "sql", "rest" or "fault".
	Kind string `json:"kind"`
	// Name is the data source schema name.
	Name string `json:"name"`
	// Tables is the relational payload: every table with its rows, so
	// snapshots of CSV-loaded sources are self-contained.
	Tables []TableSnapshot `json:"tables,omitempty"`
	// Objects is the static payload: schema objects with their extents.
	Objects []ObjectSnapshot `json:"objects,omitempty"`
	// SQL is the SQL-backend payload: connection configuration plus
	// the introspected schema and materialised fallback extents.
	SQL *SQLSnapshot `json:"sql,omitempty"`
	// REST is the JSON/REST payload: endpoint configuration plus the
	// collection schema and materialised fallback extents.
	REST *RESTSnapshot `json:"rest,omitempty"`
	// Fault is the fault-injection payload: the injected-fault
	// configuration plus the wrapped source's own snapshot.
	Fault *FaultSnapshot `json:"fault,omitempty"`
}

// FaultSnapshot is the durable form of a fault-injection wrapper.
type FaultSnapshot struct {
	Config FaultConfig `json:"config"`
	Inner  *Snapshot   `json:"inner"`
}

// TableSnapshot serialises one relational table.
type TableSnapshot struct {
	Name string `json:"name"`
	// Columns are "name:type" specs, as in CSV headers and the server's
	// inline table API.
	Columns     []string     `json:"columns"`
	PrimaryKey  string       `json:"primary_key"`
	ForeignKeys []FKSnapshot `json:"foreign_keys,omitempty"`
	Rows        [][]any      `json:"rows"`
}

// FKSnapshot serialises a foreign-key declaration.
type FKSnapshot struct {
	Column   string `json:"column"`
	RefTable string `json:"ref_table"`
}

// ObjectSnapshot serialises one static-wrapper object and its extent.
type ObjectSnapshot struct {
	Scheme    string       `json:"scheme"`
	Kind      string       `json:"kind"`
	Model     string       `json:"model,omitempty"`
	Construct string       `json:"construct,omitempty"`
	Extent    iql.ValueDTO `json:"extent"`
}

// ExtentSnapshot pairs a scheme with its materialised extent; the
// remote-backend snapshot kinds use it for their fallback extents (the
// schema itself is rebuilt from their table/collection metadata).
type ExtentSnapshot struct {
	Scheme string       `json:"scheme"`
	Extent iql.ValueDTO `json:"extent"`
}

// SQLSnapshot is the durable form of a SQL wrapper: enough connection
// configuration to reattach to the live backend, the introspected
// table shapes to rebuild the schema without touching it, and the
// extents materialised at snapshot time as an offline fallback.
type SQLSnapshot struct {
	Driver    string             `json:"driver"`
	DSN       string             `json:"dsn"`
	Dialect   string             `json:"dialect,omitempty"`
	TimeoutMs int64              `json:"timeout_ms,omitempty"`
	PageRows  int                `json:"page_rows,omitempty"`
	Tables    []SQLTableSnapshot `json:"tables"`
	Extents   []ExtentSnapshot   `json:"extents,omitempty"`
}

// SQLTableSnapshot is one introspected table shape.
type SQLTableSnapshot struct {
	Name       string   `json:"name"`
	PrimaryKey string   `json:"primary_key"`
	Columns    []string `json:"columns"`
}

// RESTSnapshot is the durable form of a REST wrapper: the endpoint
// configuration, the resolved collection shapes, and the extents
// materialised at snapshot time as an offline fallback.
type RESTSnapshot struct {
	Endpoint    string                   `json:"endpoint"`
	TimeoutMs   int64                    `json:"timeout_ms,omitempty"`
	MaxBytes    int64                    `json:"max_bytes,omitempty"`
	Collections []RESTCollectionSnapshot `json:"collections"`
	Extents     []ExtentSnapshot         `json:"extents,omitempty"`
}

// RESTCollectionSnapshot is one resolved collection shape.
type RESTCollectionSnapshot struct {
	Name   string   `json:"name"`
	Key    string   `json:"key"`
	Path   string   `json:"path"`
	Fields []string `json:"fields"`
}

// Snapshot implements Snapshotter for relational sources: tables in
// creation order, rows in insertion order.
func (w *Relational) Snapshot() (*Snapshot, error) {
	snap := &Snapshot{Kind: "relational", Name: w.name}
	for _, t := range w.db.Tables() {
		ts := TableSnapshot{Name: t.Name(), PrimaryKey: t.PrimaryKey()}
		for _, c := range t.Columns() {
			ts.Columns = append(ts.Columns, c.Name+":"+c.Type.String())
		}
		for _, fk := range t.ForeignKeys() {
			ts.ForeignKeys = append(ts.ForeignKeys, FKSnapshot{Column: fk.Column, RefTable: fk.RefTable})
		}
		ts.Rows = make([][]any, t.Len())
		for i, row := range t.Rows() {
			ts.Rows[i] = append([]any(nil), row...)
		}
		snap.Tables = append(snap.Tables, ts)
	}
	return snap, nil
}

// Snapshot implements Snapshotter for static sources, in schema object
// order.
func (w *Static) Snapshot() (*Snapshot, error) {
	snap := &Snapshot{Kind: "static", Name: w.name}
	for _, o := range w.schema.Objects() {
		ext, ok := w.extents[o.Scheme.Key()]
		if !ok {
			return nil, fmt.Errorf("wrapper: %s: no extent for %s", w.name, o.Scheme)
		}
		snap.Objects = append(snap.Objects, ObjectSnapshot{
			Scheme:    o.Scheme.String(),
			Kind:      o.Kind.String(),
			Model:     o.Model,
			Construct: o.Construct,
			Extent:    iql.EncodeValue(ext),
		})
	}
	return snap, nil
}

// Snapshot implements Snapshotter for XML sources. XML wrappers hold
// fully materialised extents, so they serialise as the "static" kind:
// the restored wrapper serves identical extents without reparsing the
// document.
func (w *XML) Snapshot() (*Snapshot, error) {
	snap := &Snapshot{Kind: "static", Name: w.name}
	for _, o := range w.schema.Objects() {
		snap.Objects = append(snap.Objects, ObjectSnapshot{
			Scheme:    o.Scheme.String(),
			Kind:      o.Kind.String(),
			Model:     o.Model,
			Construct: o.Construct,
			Extent:    iql.EncodeValue(iql.BagOf(append([]iql.Value(nil), w.extents[o.Scheme.Key()]...))),
		})
	}
	return snap, nil
}

// Snapshot implements Snapshotter for SQL sources: the connection
// configuration plus the introspected schema, with every extent
// materialised through the live backend as the restore-time fallback
// (an already-offline wrapper re-emits its existing fallback, so
// snapshots stay stable across backend outages).
func (w *SQL) Snapshot() (*Snapshot, error) {
	sqlSnap := &SQLSnapshot{
		Driver:    w.cfg.Driver,
		DSN:       w.cfg.DSN,
		Dialect:   w.cfg.Dialect,
		TimeoutMs: w.cfg.Timeout.Milliseconds(),
		PageRows:  w.cfg.FetchPageRows,
	}
	for _, t := range w.sortedTables() {
		sqlSnap.Tables = append(sqlSnap.Tables, SQLTableSnapshot{
			Name:       t.name,
			PrimaryKey: t.pk,
			Columns:    append([]string(nil), t.cols...),
		})
	}
	for _, o := range w.schema.Objects() {
		ext, err := w.Extent(o.Scheme.Parts())
		if err != nil {
			return nil, fmt.Errorf("wrapper: sql: source %q: materialising %s: %w", w.name, o.Scheme, err)
		}
		sqlSnap.Extents = append(sqlSnap.Extents, ExtentSnapshot{
			Scheme: o.Scheme.String(),
			Extent: iql.EncodeValue(ext),
		})
	}
	return &Snapshot{Kind: "sql", Name: w.name, SQL: sqlSnap}, nil
}

// Snapshot implements Snapshotter for REST sources, mirroring the SQL
// strategy: endpoint configuration, collection shapes, and live-
// materialised fallback extents (or the existing fallback when the
// endpoint is unreachable).
func (w *REST) Snapshot() (*Snapshot, error) {
	restSnap := &RESTSnapshot{
		Endpoint:  w.cfg.Endpoint,
		TimeoutMs: w.cfg.Timeout.Milliseconds(),
		MaxBytes:  w.cfg.MaxBytes,
	}
	for _, n := range w.order {
		c := w.colls[n]
		restSnap.Collections = append(restSnap.Collections, RESTCollectionSnapshot{
			Name:   c.name,
			Key:    c.key,
			Path:   c.path,
			Fields: append([]string(nil), c.fields...),
		})
	}
	for _, o := range w.schema.Objects() {
		ext, err := w.Extent(o.Scheme.Parts())
		if err != nil {
			return nil, fmt.Errorf("wrapper: rest: source %q: materialising %s: %w", w.name, o.Scheme, err)
		}
		restSnap.Extents = append(restSnap.Extents, ExtentSnapshot{
			Scheme: o.Scheme.String(),
			Extent: iql.EncodeValue(ext),
		})
	}
	return &Snapshot{Kind: "rest", Name: w.name, REST: restSnap}, nil
}

// SnapshotAll snapshots a slice of wrappers, failing with the name of
// the first source that does not implement Snapshotter.
func SnapshotAll(ws []Wrapper) ([]*Snapshot, error) {
	out := make([]*Snapshot, 0, len(ws))
	for _, w := range ws {
		sn, ok := w.(Snapshotter)
		if !ok {
			return nil, fmt.Errorf("wrapper: source %q (%T) does not support snapshotting", w.SchemaName(), w)
		}
		snap, err := sn.Snapshot()
		if err != nil {
			return nil, fmt.Errorf("wrapper: snapshotting source %q: %w", w.SchemaName(), err)
		}
		out = append(out, snap)
	}
	return out, nil
}

// restorers maps each snapshot kind to its restore function; the keys
// double as the authoritative list of supported kinds for error
// reporting.
var restorers = map[string]func(*Snapshot) (Wrapper, error){
	"relational": restoreRelational,
	"static":     restoreStatic,
	"sql":        restoreSQL,
	"rest":       restoreREST,
}

// The fault kind registers in init: restoreFault recursively calls
// Restore for the wrapped source, which a map-literal entry would turn
// into an initialization cycle.
func init() { restorers["fault"] = restoreFault }

// RestoreKinds returns the snapshot kinds Restore understands, sorted.
func RestoreKinds() []string {
	kinds := make([]string, 0, len(restorers))
	for k := range restorers {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	return kinds
}

// Restore rebuilds a wrapper from its snapshot. It is the inverse of
// Snapshot for every supported kind and validates as it goes, so a
// corrupted snapshot yields an error, never a panic.
func Restore(snap *Snapshot) (Wrapper, error) {
	if snap == nil {
		return nil, fmt.Errorf("wrapper: nil snapshot")
	}
	if snap.Name == "" {
		return nil, fmt.Errorf("wrapper: snapshot has no source name")
	}
	fn, ok := restorers[snap.Kind]
	if !ok {
		return nil, fmt.Errorf("wrapper: unknown snapshot kind %q (registered kinds: %s)",
			snap.Kind, strings.Join(RestoreKinds(), ", "))
	}
	return fn(snap)
}

func restoreRelational(snap *Snapshot) (Wrapper, error) {
	db := rel.NewDB(snap.Name)
	for _, ts := range snap.Tables {
		cols := make([]rel.Column, len(ts.Columns))
		for i, spec := range ts.Columns {
			name, tyName, ok := strings.Cut(spec, ":")
			if !ok {
				return nil, fmt.Errorf("wrapper: source %q table %q: column spec %q is not name:type",
					snap.Name, ts.Name, spec)
			}
			ty, err := rel.ParseType(tyName)
			if err != nil {
				return nil, fmt.Errorf("wrapper: source %q table %q: %w", snap.Name, ts.Name, err)
			}
			cols[i] = rel.Column{Name: name, Type: ty}
		}
		t, err := db.CreateTable(ts.Name, cols, ts.PrimaryKey)
		if err != nil {
			return nil, fmt.Errorf("wrapper: source %q: %w", snap.Name, err)
		}
		for rn, row := range ts.Rows {
			if len(row) != len(cols) {
				return nil, fmt.Errorf("wrapper: source %q table %q row %d: %d cells for %d columns",
					snap.Name, ts.Name, rn, len(row), len(cols))
			}
			vals := make([]any, len(row))
			for i, cell := range row {
				v, err := decodeCell(cell, cols[i].Type)
				if err != nil {
					return nil, fmt.Errorf("wrapper: source %q table %q row %d column %q: %w",
						snap.Name, ts.Name, rn, cols[i].Name, err)
				}
				vals[i] = v
			}
			if err := t.Insert(vals...); err != nil {
				return nil, fmt.Errorf("wrapper: source %q table %q row %d: %w", snap.Name, ts.Name, rn, err)
			}
		}
	}
	// Foreign keys after all tables exist, since they may point forward.
	for _, ts := range snap.Tables {
		for _, fk := range ts.ForeignKeys {
			if err := db.AddForeignKey(ts.Name, fk.Column, fk.RefTable); err != nil {
				return nil, fmt.Errorf("wrapper: source %q: %w", snap.Name, err)
			}
		}
	}
	return NewRelational(snap.Name, db)
}

// decodeCell maps a JSON-decoded row cell back to the relational cell
// type. Snapshots decoded with json.Decoder.UseNumber keep int64 cells
// exact; plain decoding delivers float64, accepted when integral.
func decodeCell(cell any, ty rel.Type) (any, error) {
	if cell == nil {
		return nil, nil
	}
	switch ty {
	case rel.Int:
		switch x := cell.(type) {
		case json.Number:
			return x.Int64()
		case float64:
			if x != math.Trunc(x) {
				return nil, fmt.Errorf("expected integer, got %v", x)
			}
			return int64(x), nil
		case int64:
			return x, nil
		}
		return nil, fmt.Errorf("expected number, got %T", cell)
	case rel.Float:
		switch x := cell.(type) {
		case json.Number:
			return x.Float64()
		case float64:
			return x, nil
		case int64:
			return float64(x), nil
		}
		return nil, fmt.Errorf("expected number, got %T", cell)
	case rel.Bool:
		b, ok := cell.(bool)
		if !ok {
			return nil, fmt.Errorf("expected boolean, got %T", cell)
		}
		return b, nil
	default:
		s, ok := cell.(string)
		if !ok {
			return nil, fmt.Errorf("expected string, got %T", cell)
		}
		return s, nil
	}
}

// decodeFallback rebuilds a fallback extent map, validating every
// scheme against the restored schema.
func decodeFallback(sourceName string, schema *hdm.Schema, exts []ExtentSnapshot) (map[string]iql.Value, error) {
	out := make(map[string]iql.Value, len(exts))
	for _, es := range exts {
		sc, err := hdm.ParseScheme(es.Scheme)
		if err != nil {
			return nil, fmt.Errorf("wrapper: source %q: %w", sourceName, err)
		}
		if !schema.Has(sc) {
			return nil, fmt.Errorf("wrapper: source %q: snapshot extent for %s, which the schema lacks", sourceName, sc)
		}
		v, err := iql.DecodeValue(es.Extent)
		if err != nil {
			return nil, fmt.Errorf("wrapper: source %q extent %s: %w", sourceName, sc, err)
		}
		out[sc.Key()] = v
	}
	return out, nil
}

// restoreSQL rebuilds a SQL wrapper without touching the backend: the
// schema comes from the snapshot's table metadata and connections stay
// lazy, so restore succeeds even while the database is down. If the
// driver is not compiled into this binary the wrapper starts offline
// and serves the snapshot's materialised extents.
func restoreSQL(snap *Snapshot) (Wrapper, error) {
	s := snap.SQL
	if s == nil {
		return nil, fmt.Errorf("wrapper: source %q: sql snapshot has no sql payload", snap.Name)
	}
	if s.Driver == "" || s.DSN == "" {
		return nil, fmt.Errorf("wrapper: source %q: sql snapshot needs driver and dsn", snap.Name)
	}
	if _, err := sqlDialectFor(s.Dialect); err != nil {
		return nil, fmt.Errorf("wrapper: source %q: %w", snap.Name, err)
	}
	cfg := SQLConfig{Driver: s.Driver, DSN: s.DSN, Dialect: s.Dialect, Timeout: time.Duration(s.TimeoutMs) * time.Millisecond, FetchPageRows: s.PageRows}
	if cfg.Timeout <= 0 {
		cfg.Timeout = defaultSQLTimeout
	}
	w := &SQL{name: snap.Name, cfg: cfg}
	tables := make([]sqlTable, 0, len(s.Tables))
	for _, ts := range s.Tables {
		tables = append(tables, sqlTable{name: ts.Name, pk: ts.PrimaryKey, cols: append([]string(nil), ts.Columns...)})
	}
	if err := w.buildSchema(tables); err != nil {
		return nil, err
	}
	fb, err := decodeFallback(snap.Name, w.schema, s.Extents)
	if err != nil {
		return nil, err
	}
	w.fallback = fb
	// sql.Open fails only for unregistered drivers; that leaves the
	// wrapper in offline (fallback-only) mode rather than failing the
	// whole session restore.
	if db, err := sql.Open(cfg.Driver, cfg.DSN); err == nil {
		w.db = db
	}
	return w, nil
}

// restoreREST rebuilds a REST wrapper without touching the endpoint:
// the schema comes from the snapshot's collection metadata, live
// fetches resume lazily, and the snapshot's materialised extents serve
// as the fallback while the endpoint is unreachable.
func restoreREST(snap *Snapshot) (Wrapper, error) {
	r := snap.REST
	if r == nil {
		return nil, fmt.Errorf("wrapper: source %q: rest snapshot has no rest payload", snap.Name)
	}
	if r.Endpoint == "" {
		return nil, fmt.Errorf("wrapper: source %q: rest snapshot needs an endpoint", snap.Name)
	}
	cfg := RESTConfig{Endpoint: r.Endpoint, Timeout: time.Duration(r.TimeoutMs) * time.Millisecond, MaxBytes: r.MaxBytes}
	if cfg.Timeout <= 0 {
		cfg.Timeout = defaultRESTTimeout
	}
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = defaultRESTMaxBytes
	}
	w := &REST{name: snap.Name, cfg: cfg, client: &http.Client{}, colls: make(map[string]restColl)}
	colls := make([]restColl, 0, len(r.Collections))
	for _, cs := range r.Collections {
		if cs.Name == "" || cs.Key == "" {
			return nil, fmt.Errorf("wrapper: source %q: rest snapshot collection needs name and key", snap.Name)
		}
		colls = append(colls, restColl{name: cs.Name, key: cs.Key, path: normalizePath(cs.Path, cs.Name), fields: append([]string(nil), cs.Fields...)})
	}
	if err := w.buildSchema(colls); err != nil {
		return nil, err
	}
	fb, err := decodeFallback(snap.Name, w.schema, r.Extents)
	if err != nil {
		return nil, err
	}
	w.fallback = fb
	return w, nil
}

func restoreStatic(snap *Snapshot) (Wrapper, error) {
	st := NewStatic(snap.Name)
	for _, os := range snap.Objects {
		sc, err := hdm.ParseScheme(os.Scheme)
		if err != nil {
			return nil, fmt.Errorf("wrapper: source %q: %w", snap.Name, err)
		}
		kind, err := hdm.ParseObjectKind(os.Kind)
		if err != nil {
			return nil, fmt.Errorf("wrapper: source %q object %s: %w", snap.Name, sc, err)
		}
		ext, err := iql.DecodeValue(os.Extent)
		if err != nil {
			return nil, fmt.Errorf("wrapper: source %q object %s: %w", snap.Name, sc, err)
		}
		if err := st.Add(sc, kind, os.Model, os.Construct, ext); err != nil {
			return nil, fmt.Errorf("wrapper: source %q: %w", snap.Name, err)
		}
	}
	return st, nil
}
