package wrapper

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"

	"github.com/dataspace/automed/internal/hdm"
	"github.com/dataspace/automed/internal/iql"
	"github.com/dataspace/automed/internal/rel"
)

// Snapshotter is the serialisation hook for wrappers: implementations
// can capture their full state (schema and data) as a Snapshot that
// Restore turns back into an equivalent in-memory wrapper. Wrappers
// over external systems need not implement it; sessions containing such
// sources cannot be persisted and report a clear error instead.
type Snapshotter interface {
	Snapshot() (*Snapshot, error)
}

// Snapshot is the JSON form of a serialisable wrapper. Exactly one of
// the kind-specific payloads is populated, selected by Kind.
type Snapshot struct {
	// Kind is "relational" or "static".
	Kind string `json:"kind"`
	// Name is the data source schema name.
	Name string `json:"name"`
	// Tables is the relational payload: every table with its rows, so
	// snapshots of CSV-loaded sources are self-contained.
	Tables []TableSnapshot `json:"tables,omitempty"`
	// Objects is the static payload: schema objects with their extents.
	Objects []ObjectSnapshot `json:"objects,omitempty"`
}

// TableSnapshot serialises one relational table.
type TableSnapshot struct {
	Name string `json:"name"`
	// Columns are "name:type" specs, as in CSV headers and the server's
	// inline table API.
	Columns     []string     `json:"columns"`
	PrimaryKey  string       `json:"primary_key"`
	ForeignKeys []FKSnapshot `json:"foreign_keys,omitempty"`
	Rows        [][]any      `json:"rows"`
}

// FKSnapshot serialises a foreign-key declaration.
type FKSnapshot struct {
	Column   string `json:"column"`
	RefTable string `json:"ref_table"`
}

// ObjectSnapshot serialises one static-wrapper object and its extent.
type ObjectSnapshot struct {
	Scheme    string       `json:"scheme"`
	Kind      string       `json:"kind"`
	Model     string       `json:"model,omitempty"`
	Construct string       `json:"construct,omitempty"`
	Extent    iql.ValueDTO `json:"extent"`
}

// Snapshot implements Snapshotter for relational sources: tables in
// creation order, rows in insertion order.
func (w *Relational) Snapshot() (*Snapshot, error) {
	snap := &Snapshot{Kind: "relational", Name: w.name}
	for _, t := range w.db.Tables() {
		ts := TableSnapshot{Name: t.Name(), PrimaryKey: t.PrimaryKey()}
		for _, c := range t.Columns() {
			ts.Columns = append(ts.Columns, c.Name+":"+c.Type.String())
		}
		for _, fk := range t.ForeignKeys() {
			ts.ForeignKeys = append(ts.ForeignKeys, FKSnapshot{Column: fk.Column, RefTable: fk.RefTable})
		}
		ts.Rows = make([][]any, t.Len())
		for i, row := range t.Rows() {
			ts.Rows[i] = append([]any(nil), row...)
		}
		snap.Tables = append(snap.Tables, ts)
	}
	return snap, nil
}

// Snapshot implements Snapshotter for static sources, in schema object
// order.
func (w *Static) Snapshot() (*Snapshot, error) {
	snap := &Snapshot{Kind: "static", Name: w.name}
	for _, o := range w.schema.Objects() {
		ext, ok := w.extents[o.Scheme.Key()]
		if !ok {
			return nil, fmt.Errorf("wrapper: %s: no extent for %s", w.name, o.Scheme)
		}
		snap.Objects = append(snap.Objects, ObjectSnapshot{
			Scheme:    o.Scheme.String(),
			Kind:      o.Kind.String(),
			Model:     o.Model,
			Construct: o.Construct,
			Extent:    iql.EncodeValue(ext),
		})
	}
	return snap, nil
}

// SnapshotAll snapshots a slice of wrappers, failing with the name of
// the first source that does not implement Snapshotter.
func SnapshotAll(ws []Wrapper) ([]*Snapshot, error) {
	out := make([]*Snapshot, 0, len(ws))
	for _, w := range ws {
		sn, ok := w.(Snapshotter)
		if !ok {
			return nil, fmt.Errorf("wrapper: source %q (%T) does not support snapshotting", w.SchemaName(), w)
		}
		snap, err := sn.Snapshot()
		if err != nil {
			return nil, fmt.Errorf("wrapper: snapshotting source %q: %w", w.SchemaName(), err)
		}
		out = append(out, snap)
	}
	return out, nil
}

// Restore rebuilds a wrapper from its snapshot. It is the inverse of
// Snapshot for both supported kinds and validates as it goes, so a
// corrupted snapshot yields an error, never a panic.
func Restore(snap *Snapshot) (Wrapper, error) {
	if snap == nil {
		return nil, fmt.Errorf("wrapper: nil snapshot")
	}
	if snap.Name == "" {
		return nil, fmt.Errorf("wrapper: snapshot has no source name")
	}
	switch snap.Kind {
	case "relational":
		return restoreRelational(snap)
	case "static":
		return restoreStatic(snap)
	}
	return nil, fmt.Errorf("wrapper: unknown snapshot kind %q", snap.Kind)
}

func restoreRelational(snap *Snapshot) (Wrapper, error) {
	db := rel.NewDB(snap.Name)
	for _, ts := range snap.Tables {
		cols := make([]rel.Column, len(ts.Columns))
		for i, spec := range ts.Columns {
			name, tyName, ok := strings.Cut(spec, ":")
			if !ok {
				return nil, fmt.Errorf("wrapper: source %q table %q: column spec %q is not name:type",
					snap.Name, ts.Name, spec)
			}
			ty, err := rel.ParseType(tyName)
			if err != nil {
				return nil, fmt.Errorf("wrapper: source %q table %q: %w", snap.Name, ts.Name, err)
			}
			cols[i] = rel.Column{Name: name, Type: ty}
		}
		t, err := db.CreateTable(ts.Name, cols, ts.PrimaryKey)
		if err != nil {
			return nil, fmt.Errorf("wrapper: source %q: %w", snap.Name, err)
		}
		for rn, row := range ts.Rows {
			if len(row) != len(cols) {
				return nil, fmt.Errorf("wrapper: source %q table %q row %d: %d cells for %d columns",
					snap.Name, ts.Name, rn, len(row), len(cols))
			}
			vals := make([]any, len(row))
			for i, cell := range row {
				v, err := decodeCell(cell, cols[i].Type)
				if err != nil {
					return nil, fmt.Errorf("wrapper: source %q table %q row %d column %q: %w",
						snap.Name, ts.Name, rn, cols[i].Name, err)
				}
				vals[i] = v
			}
			if err := t.Insert(vals...); err != nil {
				return nil, fmt.Errorf("wrapper: source %q table %q row %d: %w", snap.Name, ts.Name, rn, err)
			}
		}
	}
	// Foreign keys after all tables exist, since they may point forward.
	for _, ts := range snap.Tables {
		for _, fk := range ts.ForeignKeys {
			if err := db.AddForeignKey(ts.Name, fk.Column, fk.RefTable); err != nil {
				return nil, fmt.Errorf("wrapper: source %q: %w", snap.Name, err)
			}
		}
	}
	return NewRelational(snap.Name, db)
}

// decodeCell maps a JSON-decoded row cell back to the relational cell
// type. Snapshots decoded with json.Decoder.UseNumber keep int64 cells
// exact; plain decoding delivers float64, accepted when integral.
func decodeCell(cell any, ty rel.Type) (any, error) {
	if cell == nil {
		return nil, nil
	}
	switch ty {
	case rel.Int:
		switch x := cell.(type) {
		case json.Number:
			return x.Int64()
		case float64:
			if x != math.Trunc(x) {
				return nil, fmt.Errorf("expected integer, got %v", x)
			}
			return int64(x), nil
		case int64:
			return x, nil
		}
		return nil, fmt.Errorf("expected number, got %T", cell)
	case rel.Float:
		switch x := cell.(type) {
		case json.Number:
			return x.Float64()
		case float64:
			return x, nil
		case int64:
			return float64(x), nil
		}
		return nil, fmt.Errorf("expected number, got %T", cell)
	case rel.Bool:
		b, ok := cell.(bool)
		if !ok {
			return nil, fmt.Errorf("expected boolean, got %T", cell)
		}
		return b, nil
	default:
		s, ok := cell.(string)
		if !ok {
			return nil, fmt.Errorf("expected string, got %T", cell)
		}
		return s, nil
	}
}

func restoreStatic(snap *Snapshot) (Wrapper, error) {
	st := NewStatic(snap.Name)
	for _, os := range snap.Objects {
		sc, err := hdm.ParseScheme(os.Scheme)
		if err != nil {
			return nil, fmt.Errorf("wrapper: source %q: %w", snap.Name, err)
		}
		kind, err := hdm.ParseObjectKind(os.Kind)
		if err != nil {
			return nil, fmt.Errorf("wrapper: source %q object %s: %w", snap.Name, sc, err)
		}
		ext, err := iql.DecodeValue(os.Extent)
		if err != nil {
			return nil, fmt.Errorf("wrapper: source %q object %s: %w", snap.Name, sc, err)
		}
		if err := st.Add(sc, kind, os.Model, os.Construct, ext); err != nil {
			return nil, fmt.Errorf("wrapper: source %q: %w", snap.Name, err)
		}
	}
	return st, nil
}
