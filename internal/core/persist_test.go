package core

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/dataspace/automed/internal/hdm"
	"github.com/dataspace/automed/internal/iql"
	"github.com/dataspace/automed/internal/wrapper"
)

var updateGolden = flag.Bool("update", false, "rewrite golden snapshot files")

// multiIterationIntegrator drives a deterministic multi-iteration
// session exercising every snapshotted feature: two intersections (the
// second with a non-contributing source, so extends and warnings
// appear), a derived concept, a refinement, auto-derived deletes, and
// a static source alongside the relational ones.
func multiIterationIntegrator(t *testing.T) *Integrator {
	t.Helper()
	wl, err := wrapper.NewRelational("Library", libraryDB(t))
	if err != nil {
		t.Fatal(err)
	}
	ws, err := wrapper.NewRelational("Shop", shopDB(t))
	if err != nil {
		t.Fatal(err)
	}
	st := wrapper.NewStatic("Curated")
	if err := st.Add(hdm.MustScheme("<<picks>>"), hdm.Nodal, "sql", "table",
		iql.Bag(iql.Str("978-2"), iql.Str("978-9"))); err != nil {
		t.Fatal(err)
	}
	ig, err := New(wl, ws, st)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ig.Federate("F"); err != nil {
		t.Fatal(err)
	}
	if _, err := ig.Intersect("I1", bookMappings(), "Q1", "Q2"); err != nil {
		t.Fatal(err)
	}
	if err := ig.Refine("shelves", Attribute("<<UBook, shelf>>",
		From("Library", "[{'LIB', k, x} | {k, x} <- <<books, shelf>>]")), "Q3"); err != nil {
		t.Fatal(err)
	}
	// I2: Shop alone contributes prices, so Library's image extends
	// <<UPriced, price>> with Range Void Any — the warning-raising path.
	// UExpensive is a derived concept over the integrated namespace.
	if _, err := ig.Intersect("I2", []Mapping{
		Entity("<<UPriced>>",
			From("Library", "[{'LIB', k} | k <- <<books>>]"),
			From("Shop", "[{'SHOP', k} | k <- <<items>>]"),
		),
		Attribute("<<UPriced, price>>",
			From("Shop", "[{'SHOP', k, x} | {k, x} <- <<items, price>>]"),
		),
		Mapping{Target: "<<UExpensive>>", Forward: []SourceQuery{
			Derived("[k | {k, x} <- <<UPriced, price>>; x > 35.0]"),
		}},
	}, "Q4"); err != nil {
		t.Fatal(err)
	}
	return ig
}

// exportJSON marshals a snapshot with stable indentation.
func exportJSON(t *testing.T, ig *Integrator) []byte {
	t.Helper()
	snap, err := ig.Export()
	if err != nil {
		t.Fatal(err)
	}
	buf, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(buf, '\n')
}

// decodeSnapshot is the load path the server store uses: UseNumber
// keeps int64 row cells exact.
func decodeSnapshot(t *testing.T, data []byte) *Snapshot {
	t.Helper()
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	var snap Snapshot
	if err := dec.Decode(&snap); err != nil {
		t.Fatal(err)
	}
	return &snap
}

// queriesForVersions answers a fixed query workload against every
// published version, returning rendered values plus warnings, to
// compare integrators behaviourally.
func versionedAnswers(t *testing.T, ig *Integrator) map[string][]string {
	t.Helper()
	workload := map[int][]string{
		0: {"count(<<library_books>>)", "count(<<curated_picks>>)", "[x | {k, x} <- <<shop_items, price>>]"},
		1: {"count(<<UBook>>)", "[x | {k, x} <- <<UBook, isbn>>]"},
		2: {"count(<<UBook, shelf>>)"},
		3: {"count(<<UPriced>>)", "[x | {k, x} <- <<UPriced, price>>]", "count(<<UExpensive>>)"},
	}
	out := make(map[string][]string)
	for _, sv := range ig.Versions() {
		for _, q := range workload[sv.Version] {
			res, err := ig.QueryAt(context.Background(), sv.Version, q)
			if err != nil {
				t.Fatalf("version %d query %q: %v", sv.Version, q, err)
			}
			sorted := res.Value
			if s, err := iql.SortBag(res.Value); err == nil {
				sorted = s
			}
			key := "v" + res.Schema + "|" + q
			out[key] = append([]string{sorted.String()}, res.Warnings...)
		}
	}
	return out
}

// TestExportImportRoundTrip is the deep-equality guard: exporting,
// JSON-encoding, importing and re-exporting must reproduce the
// snapshot byte for byte, and the restored integrator must answer the
// whole versioned workload (values and warnings) identically and keep
// accepting iterations.
func TestExportImportRoundTrip(t *testing.T) {
	ig := multiIterationIntegrator(t)
	first := exportJSON(t, ig)

	restored, err := Import(decodeSnapshot(t, first))
	if err != nil {
		t.Fatal(err)
	}
	second := exportJSON(t, restored)
	if !bytes.Equal(first, second) {
		t.Fatalf("Export(Import(Export(x))) differs from Export(x):\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}

	if got, want := versionedAnswers(t, restored), versionedAnswers(t, ig); !reflect.DeepEqual(got, want) {
		t.Fatalf("restored answers differ:\ngot  %v\nwant %v", got, want)
	}
	if got, want := restored.Report(), ig.Report(); !reflect.DeepEqual(got, want) {
		t.Fatalf("restored report differs:\ngot  %+v\nwant %+v", got, want)
	}
	if got, want := restored.GlobalVersion(), ig.GlobalVersion(); got != want {
		t.Fatalf("restored version = %d, want %d", got, want)
	}

	// Integration continues on the restored session.
	if err := restored.Refine("post-restore", Attribute("<<UBook, price2>>",
		From("Shop", "[{'SHOP', k, x} | {k, x} <- <<items, price>>]")), "Q9"); err != nil {
		t.Fatal(err)
	}
	if got := restored.GlobalVersion(); got != ig.GlobalVersion()+1 {
		t.Fatalf("post-restore iteration published version %d, want %d", got, ig.GlobalVersion()+1)
	}
	res, err := restored.Query("count(<<UBook, price2>>)")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Value.Equal(iql.Int(2)) {
		t.Fatalf("post-restore query = %s, want 2", res.Value)
	}
}

// TestGoldenSnapshot is the format-stability guard: the committed
// golden file must match a fresh export byte for byte (regenerate
// deliberately with -update when the format version is bumped), and —
// independently of today's export — the golden file must keep loading
// and answering queries.
func TestGoldenSnapshot(t *testing.T) {
	golden := filepath.Join("testdata", "golden_session.json")
	got := exportJSON(t, multiIterationIntegrator(t))
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("export differs from %s — the snapshot format changed; bump core.SnapshotFormat and regenerate with -update", golden)
	}

	ig, err := Import(decodeSnapshot(t, want))
	if err != nil {
		t.Fatalf("golden file no longer loads: %v", err)
	}
	res, err := ig.Query("count(<<UBook>>)")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Value.Equal(iql.Int(5)) {
		t.Fatalf("golden session count(<<UBook>>) = %s, want 5", res.Value)
	}
	res, err = ig.QueryAt(context.Background(), 3, "[x | {k, x} <- <<UPriced, price>>]")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Warnings) == 0 {
		t.Fatal("golden session lost its incompleteness warnings")
	}
}

// TestImportRejectsCorruptSnapshots checks malformed snapshots error
// out instead of panicking or silently half-loading.
func TestImportRejectsCorruptSnapshots(t *testing.T) {
	good, err := multiIterationIntegrator(t).Export()
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(f func(*Snapshot)) *Snapshot {
		// Deep-copy through JSON so mutations don't alias.
		buf, err := json.Marshal(good)
		if err != nil {
			t.Fatal(err)
		}
		var snap Snapshot
		if err := json.Unmarshal(buf, &snap); err != nil {
			t.Fatal(err)
		}
		f(&snap)
		return &snap
	}
	cases := map[string]*Snapshot{
		"nil":        nil,
		"bad format": mutate(func(s *Snapshot) { s.Format = 99 }),
		"no sources": mutate(func(s *Snapshot) { s.Sources = nil }),
		"bad repo": mutate(func(s *Snapshot) {
			s.Repo = json.RawMessage(`{"version":1,"schemas":[{"name":"X","objects":[{"scheme":"<<","kind":"nodal"}]}]}`)
		}),
		"missing fed":    mutate(func(s *Snapshot) { s.FedName = "Elsewhere" }),
		"bad definition": mutate(func(s *Snapshot) { s.Definitions[0].Query = "[ <-" }),
		"bad def object": mutate(func(s *Snapshot) { s.Definitions[0].Object = "<<" }),
		"missing version schema": mutate(func(s *Snapshot) {
			s.Versions[1].Schema = "GS99"
		}),
		"missing intersection schema": mutate(func(s *Snapshot) {
			s.Intersections[0].Name = "I9"
		}),
		"bad derived kind": mutate(func(s *Snapshot) {
			s.Derived[0].Kind = "banana"
		}),
	}
	for name, snap := range cases {
		if _, err := Import(snap); err == nil {
			t.Errorf("%s: corrupt snapshot imported without error", name)
		}
	}
}
