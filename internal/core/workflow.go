package core

import (
	"context"
	"fmt"
	"sort"

	"github.com/dataspace/automed/internal/hdm"
	"github.com/dataspace/automed/internal/iql"
	"github.com/dataspace/automed/internal/query"
	"github.com/dataspace/automed/internal/transform"
	"github.com/dataspace/automed/internal/wrapper"
)

// Refine performs the paper's footnote-8 operation: an ad-hoc
// transformation of a single schema as part of the iterative
// integration (e.g. adding <<UProtein, description>> from Pedro alone
// to answer query 2). Each forward entry is a manual add; derived
// entries (empty Source) range over the integrated namespace.
func (ig *Integrator) Refine(name string, m Mapping, enables ...string) error {
	ig.mu.Lock()
	defer ig.mu.Unlock()
	if ig.fed == nil {
		return fmt.Errorf("core: call Federate before Refine")
	}
	tsc, kind, err := parseTarget(m.Target)
	if err != nil {
		return err
	}
	if len(m.Forward) == 0 {
		return fmt.Errorf("core: refinement %q has no forward queries", name)
	}
	var counts StepCounts
	for _, f := range m.Forward {
		e, err := iql.Parse(f.Query)
		if err != nil {
			return fmt.Errorf("core: refinement %q: %w", name, err)
		}
		if f.Source != "" && !ig.hasSource(f.Source) {
			return fmt.Errorf("core: refinement %q: unknown source %q", name, f.Source)
		}
		ig.proc.Define(tsc, e, "refine:"+name, f.Source)
		counts.ManualAdds++
	}
	// The refinement's touch-set is its single target; each Define
	// above already evicted the cached extents depending on it, so
	// every other warm answer stays live across the new version.
	ig.derivedObjs = append(ig.derivedObjs, objMeta{scheme: tsc, kind: kind})
	if _, err := ig.rebuildGlobal(ig.autoDrop); err != nil {
		return err
	}
	ig.iterations = append(ig.iterations, Iteration{
		Name: name, Kind: "refinement", Counts: counts,
		Enables: enables, GlobalSchema: ig.globalName(),
	})
	return nil
}

// BuildGlobal performs workflow step 5: a new global schema version
//
//	G = I1 ∪ … ∪ Im ∪ (ES1 − ⋃I) ∪ … ∪ (ESn − ⋃I)
//
// combining every intersection schema (and refinement/derived concepts)
// with the federated remainder of each source. When dropRedundant is
// true, source objects removed by a delete step in some ES → I pathway
// — whose extents are subsumed by intersection objects — are dropped
// (the paper's − operator); otherwise the full federated schema is
// retained alongside the intersections.
func (ig *Integrator) BuildGlobal(dropRedundant bool) (*hdm.Schema, error) {
	ig.mu.Lock()
	defer ig.mu.Unlock()
	g, err := ig.rebuildGlobal(dropRedundant)
	if err != nil {
		return nil, err
	}
	ig.iterations = append(ig.iterations, Iteration{
		Name: g.Name(), Kind: "global",
		Counts:       StepCounts{},
		GlobalSchema: g.Name(),
	})
	return g, nil
}

// rebuildGlobal constructs and installs the next global schema version
// without recording a workflow iteration.
func (ig *Integrator) rebuildGlobal(dropRedundant bool) (*hdm.Schema, error) {
	if ig.fed == nil {
		return nil, fmt.Errorf("core: call Federate before BuildGlobal")
	}
	ig.globalVersion++
	name := fmt.Sprintf("GS%d", ig.globalVersion)
	g := hdm.NewSchema(name)

	// Intersection objects first.
	for _, in := range ig.intersections {
		for _, tsc := range in.Targets {
			if g.Has(tsc) {
				continue
			}
			obj, _ := in.Schema.Object(tsc)
			if obj == nil {
				obj = hdm.NewObject(tsc, hdm.Nodal, "", "")
			}
			if err := g.Add(obj.Clone()); err != nil {
				return nil, err
			}
		}
	}
	// Refinement and derived concepts.
	for _, om := range ig.derivedObjs {
		if g.Has(om.scheme) {
			continue
		}
		if err := g.Add(hdm.NewObject(om.scheme, om.kind, "", "")); err != nil {
			return nil, err
		}
	}

	// Redundant source objects: deleted (semantically mapped) in some
	// intersection pathway.
	redundant := make(map[string]map[string]bool) // source → scheme key
	if dropRedundant {
		for _, in := range ig.intersections {
			for src, objs := range in.DeletedBySource {
				if redundant[src] == nil {
					redundant[src] = make(map[string]bool)
				}
				for _, sc := range objs {
					redundant[src][sc.Key()] = true
				}
			}
		}
	}

	// Federated remainder per source.
	for _, w := range ig.sources {
		src := w.SchemaName()
		pfx := ig.prefix[src]
		for _, o := range w.Schema().Objects() {
			if redundant[src] != nil && redundant[src][o.Scheme.Key()] {
				continue
			}
			fsc := o.Scheme.WithPrefix(pfx)
			if err := g.Add(o.WithScheme(fsc)); err != nil {
				return nil, err
			}
		}
	}

	if err := ig.repo.AddSchema(g); err != nil {
		return nil, err
	}
	// Derived minus-pathways ES → (ES − I), per the paper's
	// operational rule, recorded for BAV bookkeeping.
	if dropRedundant {
		for _, in := range ig.intersections {
			for src, pw := range in.PathwayBySource {
				mp, err := transform.MinusPathway(pw, name+":"+ig.prefix[src]+"-minus")
				if err != nil {
					return nil, err
				}
				if err := ig.addPathway(mp); err != nil {
					return nil, err
				}
			}
		}
	}

	ig.global = g
	ig.versions = append(ig.versions, SchemaVersion{Version: ig.globalVersion, Schema: g})
	return g, nil
}

// Result carries a query answer plus any incompleteness warnings
// produced while unfolding extents, and identifies the global schema
// version it was answered against.
type Result struct {
	Value    iql.Value
	Warnings []string
	// Deps lists the distinct scheme keys (source and virtual) the
	// evaluation touched, sorted — the dependency closure a cached
	// copy of this result must be invalidated under.
	Deps []string
	// Version is the global schema version the query was resolved
	// against (0 = federated schema).
	Version int
	// Schema names that global schema version.
	Schema string
}

// CurrentVersion selects the latest global schema version in QueryAt.
const CurrentVersion = -1

// Query answers an IQL query over the current global schema (workflow
// step 6). Every scheme reference must resolve (exactly or by suffix)
// in the current global schema — objects dropped as redundant are no
// longer queryable, exactly as in the paper's tool — and is canonical-
// ised before evaluation.
func (ig *Integrator) Query(src string) (Result, error) {
	return ig.QueryAt(context.Background(), CurrentVersion, src)
}

// QueryCtx is Query with per-request cancellation and timeout.
func (ig *Integrator) QueryCtx(ctx context.Context, src string) (Result, error) {
	return ig.QueryAt(ctx, CurrentVersion, src)
}

// QueryAt answers an IQL query against a specific live global schema
// version (CurrentVersion for the latest). Older versions expose
// exactly the objects they were published with, so clients can keep
// querying a pinned schema while integration advances.
func (ig *Integrator) QueryAt(ctx context.Context, version int, src string) (Result, error) {
	e, err := iql.Parse(src)
	if err != nil {
		return Result{}, err
	}
	return ig.QueryExprAt(ctx, version, e)
}

// QueryExpr is Query over a parsed expression.
func (ig *Integrator) QueryExpr(e iql.Expr) (Result, error) {
	return ig.QueryExprAt(context.Background(), CurrentVersion, e)
}

// QueryExprAt is QueryAt over a parsed expression. The read lock is
// held for the whole evaluation, so concurrent integration steps can
// never expose a half-built global schema to the query.
func (ig *Integrator) QueryExprAt(ctx context.Context, version int, e iql.Expr) (Result, error) {
	ig.mu.RLock()
	defer ig.mu.RUnlock()
	if ig.global == nil {
		return Result{}, fmt.Errorf("core: no global schema; call Federate first")
	}
	target, ver := ig.global, ig.globalVersion
	if version != CurrentVersion {
		s, ok := ig.schemaAtLocked(version)
		if !ok {
			return Result{}, fmt.Errorf("core: no global schema version %d (have 0..%d)", version, ig.globalVersion)
		}
		target, ver = s, version
	}
	var resolveErr error
	canon := iql.SubstituteSchemes(e, func(parts []string) (iql.Expr, bool) {
		obj, err := target.Resolve(parts)
		if err != nil {
			if resolveErr == nil {
				resolveErr = fmt.Errorf("core: query over %s: %w", target.Name(), err)
			}
			return nil, false
		}
		return iql.Ref(obj.Scheme.Parts()...), true
	})
	if resolveErr != nil {
		return Result{}, resolveErr
	}
	v, warns, deps, err := ig.proc.EvalContext(ctx, canon)
	if err != nil {
		return Result{}, err
	}
	return Result{Value: v, Warnings: warns, Deps: deps, Version: ver, Schema: target.Name()}, nil
}

// Extent returns the extent of one global schema object.
func (ig *Integrator) Extent(scheme string) (iql.Value, error) {
	sc, err := hdm.ParseScheme(scheme)
	if err != nil {
		return iql.Value{}, err
	}
	ig.mu.RLock()
	defer ig.mu.RUnlock()
	if ig.global == nil {
		return iql.Value{}, fmt.Errorf("core: no global schema; call Federate first")
	}
	obj, err := ig.global.Resolve(sc.Parts())
	if err != nil {
		return iql.Value{}, err
	}
	return ig.proc.Extent(obj.Scheme.Parts())
}

// Report summarises the session's iterations and effort counts.
func (ig *Integrator) Report() Report {
	ig.mu.RLock()
	defer ig.mu.RUnlock()
	return Report{Iterations: append([]Iteration(nil), ig.iterations...)}
}

// RedundantObjects lists, per source, the objects made redundant by the
// intersections created so far (candidates for the − operator), sorted.
func (ig *Integrator) RedundantObjects() map[string][]hdm.Scheme {
	ig.mu.RLock()
	defer ig.mu.RUnlock()
	out := make(map[string][]hdm.Scheme)
	for _, in := range ig.intersections {
		for src, objs := range in.DeletedBySource {
			out[src] = append(out[src], objs...)
		}
	}
	for src := range out {
		sort.Slice(out[src], func(i, j int) bool {
			return hdm.CompareSchemes(out[src][i], out[src][j]) < 0
		})
	}
	return out
}

// ReverseProcessor demonstrates the BAV bidirectionality the technique
// rests on: it materialises the current global schema and returns a new
// query processor in which each intersection pathway is registered
// *reversed* (I → ES), so that queries phrased against an original
// data source schema are answered from the integrated resource. Source
// objects that were only contracted come back as extends with unknown
// extents (Range Void Any), surfacing as warnings rather than answers.
func (ig *Integrator) ReverseProcessor() (*query.Processor, error) {
	ig.mu.RLock()
	defer ig.mu.RUnlock()
	if ig.global == nil {
		return nil, fmt.Errorf("core: no global schema")
	}
	mat, err := ig.proc.Materialize(ig.global)
	if err != nil {
		return nil, err
	}
	st := wrapper.NewStatic(ig.global.Name())
	for _, o := range ig.global.Objects() {
		if err := st.Add(o.Scheme, o.Kind, o.Model, o.Construct, mat[o.Scheme.Key()]); err != nil {
			return nil, err
		}
	}
	rp := query.New()
	if err := rp.AddSource(st); err != nil {
		return nil, err
	}
	for _, in := range ig.intersections {
		for _, pw := range in.PathwayBySource {
			if err := rp.RegisterPathway(pw.Reverse(), ""); err != nil {
				return nil, err
			}
		}
	}
	return rp, nil
}
