package core

import (
	"context"
	"fmt"
	"testing"

	"github.com/dataspace/automed/internal/iql"
)

// The property behind selective cache invalidation: after any workflow
// iteration, an integrator that evicts only the touched schemes must
// answer every probe — every object of every published schema version,
// values and warnings — byte-identically to a reference integrator that
// purges all cached work, while demonstrably keeping untouched memoised
// extents live.

// probe is one observed answer: the canonically sorted value rendering
// plus the warnings, both deterministic.
type probe struct {
	value string
	warns []string
}

// probeAll queries the extent of every object of every published
// version, returning answers keyed by "version/scheme".
func probeAll(t *testing.T, ig *Integrator) map[string]probe {
	t.Helper()
	out := make(map[string]probe)
	for _, sv := range ig.Versions() {
		for _, o := range sv.Schema.Objects() {
			q := o.Scheme.String()
			res, err := ig.QueryAt(context.Background(), sv.Version, q)
			if err != nil {
				t.Fatalf("version %d: probing %s: %v", sv.Version, q, err)
			}
			sorted, err := iql.SortBag(res.Value)
			if err != nil {
				sorted = res.Value
			}
			out[fmt.Sprintf("%d/%s", sv.Version, q)] = probe{
				value: sorted.String(),
				warns: res.Warnings,
			}
		}
	}
	return out
}

func diffProbes(t *testing.T, step string, sel, ref map[string]probe) {
	t.Helper()
	if len(sel) != len(ref) {
		t.Fatalf("after %s: selective answered %d probes, reference %d", step, len(sel), len(ref))
	}
	for k, sp := range sel {
		rp, ok := ref[k]
		if !ok {
			t.Fatalf("after %s: reference lacks probe %s", step, k)
		}
		if sp.value != rp.value {
			t.Errorf("after %s: %s diverged:\n selective: %s\n reference: %s", step, k, sp.value, rp.value)
		}
		if len(sp.warns) != len(rp.warns) {
			t.Errorf("after %s: %s warnings diverged: %v vs %v", step, k, sp.warns, rp.warns)
			continue
		}
		for i := range sp.warns {
			if sp.warns[i] != rp.warns[i] {
				t.Errorf("after %s: %s warning %d diverged: %q vs %q", step, k, i, sp.warns[i], rp.warns[i])
			}
		}
	}
}

// invalidationPlan is the workflow the equivalence test steps through;
// it covers intersect (multi-source and single-source), refine of a new
// object, refine adding a derivation to an existing object, and an
// auto-extend (Range Void Any) target so warning replay is exercised.
func invalidationPlan() []struct {
	name string
	run  func(*Integrator) error
} {
	i1 := append(bookMappings(),
		// Library-only attribute inside a two-source intersection: the
		// Shop pathway receives an auto extend Range Void Any, so
		// queries over it raise (and must replay) warnings.
		Attribute("<<UBook, shelf>>",
			From("Library", "[{'LIB', k, x} | {k, x} <- <<books, shelf>>]")),
	)
	return []struct {
		name string
		run  func(*Integrator) error
	}{
		{"federate", func(ig *Integrator) error {
			_, err := ig.Federate("F")
			return err
		}},
		{"I1", func(ig *Integrator) error {
			_, err := ig.Intersect("I1", i1)
			return err
		}},
		{"refine-prices", func(ig *Integrator) error {
			return ig.Refine("prices", Attribute("<<UBook, price>>",
				From("Shop", "[{'SHOP', k, x} | {k, x} <- <<items, price>>]")))
		}},
		{"refine-title2", func(ig *Integrator) error {
			// A second derivation for an already-integrated object:
			// its cached extent is stale and must be recomputed.
			return ig.Refine("title2", Attribute("<<UBook, title>>",
				From("Library", "[{'LIB2', k, x} | {k, x} <- <<books, title>>]")))
		}},
		{"I2", func(ig *Integrator) error {
			_, err := ig.Intersect("I2", []Mapping{
				Entity("<<UScan>>",
					From("Archive", "[{'ARC', k} | k <- <<scans>>]")),
				Attribute("<<UScan, format>>",
					From("Archive", "[{'ARC', k, x} | {k, x} <- <<scans, format>>]")),
			})
			return err
		}},
	}
}

func TestSelectiveInvalidationEquivalence(t *testing.T) {
	sel := newIntegrator(t) // selective invalidation (the normal path)
	ref := newIntegrator(t) // reference: full purge after every step

	for _, step := range invalidationPlan() {
		if err := step.run(sel); err != nil {
			t.Fatalf("%s (selective): %v", step.name, err)
		}
		if err := step.run(ref); err != nil {
			t.Fatalf("%s (reference): %v", step.name, err)
		}
		// The reference integrator recomputes everything from scratch.
		ref.Processor().InvalidateCache()
		// Probe twice: the first pass answers partly from caches warmed
		// by earlier steps (the selective path under test), the second
		// entirely from caches warmed by the first.
		diffProbes(t, step.name, probeAll(t, sel), probeAll(t, ref))
		diffProbes(t, step.name+" (warm)", probeAll(t, sel), probeAll(t, ref))
	}
}

// TestIterationKeepsUntouchedExtentsWarm pins the survival half of the
// contract at the processor level: after an iteration, a memoised
// extent for an untouched scheme is served from cache, while the
// touched scheme's stale entry is gone and recomputed.
func TestIterationKeepsUntouchedExtentsWarm(t *testing.T) {
	ig := newIntegrator(t)
	if _, err := ig.Federate("F"); err != nil {
		t.Fatal(err)
	}
	if _, err := ig.Intersect("I1", bookMappings()); err != nil {
		t.Fatal(err)
	}
	warm := func(q string) Result {
		t.Helper()
		res, err := ig.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	warm("<<UBook, isbn>>")
	before := warm("<<UBook, title>>")

	// An iteration touching only <<UBook, title>>.
	if err := ig.Refine("title2", Attribute("<<UBook, title>>",
		From("Library", "[{'LIB2', k, x} | {k, x} <- <<books, title>>]"))); err != nil {
		t.Fatal(err)
	}

	memo0, _ := ig.Processor().CacheStats()
	isbn := warm("<<UBook, isbn>>") // untouched: must be a memo hit
	memo1, _ := ig.Processor().CacheStats()
	if memo1.Hits != memo0.Hits+1 || memo1.Misses != memo0.Misses {
		t.Fatalf("untouched scheme not served from cache: hits %d->%d misses %d->%d",
			memo0.Hits, memo1.Hits, memo0.Misses, memo1.Misses)
	}
	if isbn.Value.Len() != 5 {
		t.Fatalf("isbn extent = %s", isbn.Value)
	}

	after := warm("<<UBook, title>>") // touched: must be recomputed
	memo2, _ := ig.Processor().CacheStats()
	if memo2.Misses != memo1.Misses+1 {
		t.Fatalf("touched scheme served stale from cache: misses %d->%d", memo1.Misses, memo2.Misses)
	}
	// The recomputation reflects the new derivation: three more titles.
	if after.Value.Len() != before.Value.Len()+3 {
		t.Fatalf("title extent %d -> %d elements, want +3 from the new derivation",
			before.Value.Len(), after.Value.Len())
	}
}
