package core

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"

	"github.com/dataspace/automed/internal/cache"
	"github.com/dataspace/automed/internal/hdm"
	"github.com/dataspace/automed/internal/iql"
	"github.com/dataspace/automed/internal/query"
	"github.com/dataspace/automed/internal/repo"
	"github.com/dataspace/automed/internal/transform"
	"github.com/dataspace/automed/internal/wrapper"
)

// Intersection records one intersection schema: its per-source pathways
// (in the paper's canonical add/delete/contract normal form), the ident
// steps linking the union-compatible images, and the resulting schema.
type Intersection struct {
	// Name is the intersection schema's name, e.g. "I1".
	Name string
	// Sources lists the contributing extensional schemas.
	Sources []string
	// Targets are the intersection schema objects (including
	// tool-generated parent entities).
	Targets []hdm.Scheme
	// Derived are global-level concepts defined over already
	// integrated objects rather than a single source.
	Derived []hdm.Scheme
	// PathwayBySource maps each contributing source to its pathway
	// ES_src → I_src.
	PathwayBySource map[string]*transform.Pathway
	// Schema is the intersection schema I.
	Schema *hdm.Schema
	// DeletedBySource records, per source, the source objects removed
	// by delete (not contract) steps: these become redundant in the
	// global schema (the − operator's operands).
	DeletedBySource map[string][]hdm.Scheme
	// Touched lists the distinct scheme keys whose derivations this
	// iteration added or changed (targets, tool-generated parents and
	// derived concepts) — the touch-set that selective cache
	// invalidation evicts by. It is transient workflow state, not part
	// of the durable snapshot.
	Touched []string
	// Counts tallies the steps generated for this intersection.
	Counts StepCounts
}

// SchemaVersion pairs a global schema with its version number: version
// 0 is the federated schema, and every Intersect/Refine/BuildGlobal
// publishes the next version. All versions stay live for querying.
type SchemaVersion struct {
	Version int
	Schema  *hdm.Schema
}

// Integrator drives the intersection-schema workflow over a set of
// wrapped data sources. Create one with New, call Federate, then any
// sequence of Intersect/Refine/BuildGlobal, querying at any point.
//
// An Integrator is safe for concurrent use: integration steps take the
// write lock, queries take the read lock for their whole evaluation, so
// in-flight queries never observe a half-built global schema and a new
// iteration waits for running queries to drain.
type Integrator struct {
	mu      sync.RWMutex
	repo    *repo.Repository
	proc    *query.Processor
	sources []wrapper.Wrapper
	prefix  map[string]string // source schema name → federation prefix

	fedName       string
	fed           *hdm.Schema
	intersections []*Intersection
	derivedObjs   []objMeta // refinement + derived concepts, global-level
	global        *hdm.Schema
	globalVersion int
	versions      []SchemaVersion
	iterations    []Iteration
	autoDrop      bool
	// skipped lists sources FederateReachable left out of the federated
	// schema because they were down at federation time; Backfill folds
	// them in once they answer a probe. Transient workflow state, not
	// part of the durable snapshot: a restored session re-federates from
	// its full source list.
	skipped []string
}

// SetAutoDrop controls whether the global schemas automatically rebuilt
// after each intersection/refinement drop redundant source objects
// (workflow step 5's optional election). Default false.
func (ig *Integrator) SetAutoDrop(drop bool) {
	ig.mu.Lock()
	defer ig.mu.Unlock()
	ig.autoDrop = drop
}

type objMeta struct {
	scheme hdm.Scheme
	kind   hdm.ObjectKind
}

// New builds an integrator over the given wrapped sources.
func New(sources ...wrapper.Wrapper) (*Integrator, error) {
	if len(sources) == 0 {
		return nil, fmt.Errorf("core: at least one source required")
	}
	ig := &Integrator{
		repo:   repo.New(),
		proc:   query.New(),
		prefix: make(map[string]string),
	}
	for _, w := range sources {
		if err := ig.proc.AddSource(w); err != nil {
			return nil, err
		}
		if err := ig.repo.AddSchema(w.Schema()); err != nil {
			return nil, err
		}
		ig.sources = append(ig.sources, w)
		ig.prefix[w.SchemaName()] = sanitizePrefix(w.SchemaName())
	}
	return ig, nil
}

// sanitizePrefix lower-cases a schema name and maps non-alphanumerics
// to underscores, yielding the federation prefix.
func sanitizePrefix(name string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(name) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// Repo exposes the underlying schemas & transformations repository.
func (ig *Integrator) Repo() *repo.Repository { return ig.repo }

// Processor exposes the underlying query processor.
func (ig *Integrator) Processor() *query.Processor { return ig.proc }

// Sources lists the wrapped sources in registration order.
func (ig *Integrator) Sources() []wrapper.Wrapper {
	return append([]wrapper.Wrapper(nil), ig.sources...)
}

// SourceNames lists the wrapped sources in registration order.
func (ig *Integrator) SourceNames() []string {
	out := make([]string, len(ig.sources))
	for i, w := range ig.sources {
		out[i] = w.SchemaName()
	}
	return out
}

// Prefix returns the federation prefix of a source schema.
func (ig *Integrator) Prefix(source string) string { return ig.prefix[source] }

// fedSection is one source's federated contribution: prefixed objects,
// rename pathway, derivation batch.
type fedSection struct {
	objs []*hdm.Object
	pw   *transform.Pathway
	defs []query.ObjectDef
}

// fedSections builds each listed source's federated section. Each
// section depends only on that source's schema, so sections build
// concurrently; callers merge them in registration order, keeping the
// federated schema, pathway list and derivation order identical to a
// serial build.
func (ig *Integrator) fedSections(name string, sources []wrapper.Wrapper) []fedSection {
	sections := make([]fedSection, len(sources))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i, w := range sources {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, w wrapper.Wrapper) {
			defer wg.Done()
			defer func() { <-sem }()
			src := w.SchemaName()
			pfx := ig.prefix[src]
			sec := fedSection{pw: transform.NewPathway(src, name)}
			for _, o := range w.Schema().Objects() {
				fsc := o.Scheme.WithPrefix(pfx)
				sec.objs = append(sec.objs, o.WithScheme(fsc))
				sec.pw.Append(transform.NewRename(o.Scheme, fsc).WithAuto())
				// The prefixed name is defined by the unprefixed
				// object, scoped to its source.
				sec.defs = append(sec.defs, query.ObjectDef{
					Scheme: fsc, Query: iql.Ref(o.Scheme.Parts()...),
					Via: "federate:" + src, Scope: src,
				})
			}
			sections[i] = sec
		}(i, w)
	}
	wg.Wait()
	return sections
}

// mergeFedSections folds sections into the federated schema in order,
// registering derivations as one batch and storing each rename
// pathway. It returns how many objects (auto renames) were added.
func (ig *Integrator) mergeFedSections(fed *hdm.Schema, sections []fedSection) (int, error) {
	var pathways []*transform.Pathway
	var defs []query.ObjectDef
	added := 0
	for _, sec := range sections {
		for _, o := range sec.objs {
			if err := fed.Add(o); err != nil {
				return 0, fmt.Errorf("core: federate: %w", err)
			}
			added++
		}
		pathways = append(pathways, sec.pw)
		defs = append(defs, sec.defs...)
	}
	// One batch registration: a single lock acquisition and a single
	// selective invalidation instead of one sweep per object.
	ig.proc.DefineAll(defs)
	for _, pw := range pathways {
		if err := ig.addPathway(pw); err != nil {
			return 0, err
		}
	}
	return added, nil
}

// Federate builds the federated schema F = S1 ∪ … ∪ Sn: every source
// object under its provenance prefix, with no schema or data
// transformation (workflow step 2). F serves as the first version of
// the global schema, so data services run immediately.
func (ig *Integrator) Federate(name string) (*hdm.Schema, error) {
	ig.mu.Lock()
	defer ig.mu.Unlock()
	return ig.federateLocked(name, ig.sources, nil)
}

// FederateReachable is Federate restricted to the sources that answer
// a liveness probe: sources implementing query.Pinger are probed under
// ctx, unreachable ones are skipped (recorded for Backfill) rather
// than failing federation, and sources without a Ping are assumed
// reachable. Federation fails if fewer than min sources remain
// (min <= 0 means at least one). The skipped source names are
// returned alongside the schema.
func (ig *Integrator) FederateReachable(ctx context.Context, name string, min int) (*hdm.Schema, []string, error) {
	ig.mu.Lock()
	defer ig.mu.Unlock()
	if min <= 0 {
		min = 1
	}
	var reachable []wrapper.Wrapper
	var skipped []string
	for _, w := range ig.sources {
		if p, ok := w.(query.Pinger); ok {
			if err := p.Ping(ctx); err != nil {
				skipped = append(skipped, w.SchemaName())
				continue
			}
		}
		reachable = append(reachable, w)
	}
	if len(reachable) < min {
		return nil, nil, fmt.Errorf("core: federate: only %d of %d sources reachable (need %d); down: %s",
			len(reachable), len(ig.sources), min, strings.Join(skipped, ", "))
	}
	fed, err := ig.federateLocked(name, reachable, skipped)
	if err != nil {
		return nil, nil, err
	}
	return fed, append([]string(nil), skipped...), nil
}

// federateLocked federates over the given source subset. Caller holds
// the write lock.
func (ig *Integrator) federateLocked(name string, sources []wrapper.Wrapper, skipped []string) (*hdm.Schema, error) {
	if ig.fed != nil {
		return nil, fmt.Errorf("core: already federated as %q", ig.fedName)
	}
	if name == "" {
		name = "F"
	}
	fed := hdm.NewSchema(name)
	var counts StepCounts
	sections := ig.fedSections(name, sources)
	if err := ig.repo.AddSchema(fed); err != nil {
		return nil, err
	}
	added, err := ig.mergeFedSections(fed, sections)
	if err != nil {
		return nil, err
	}
	counts.AutoRenames = added
	ig.fedName = name
	ig.fed = fed
	ig.global = fed
	ig.skipped = append([]string(nil), skipped...)
	ig.versions = append(ig.versions, SchemaVersion{Version: 0, Schema: fed})
	ig.iterations = append(ig.iterations, Iteration{
		Name: name, Kind: "federate", Counts: counts, GlobalSchema: name,
	})
	return fed, nil
}

// Skipped lists the sources left out of the federated schema by
// FederateReachable and not yet backfilled, in registration order.
func (ig *Integrator) Skipped() []string {
	ig.mu.RLock()
	defer ig.mu.RUnlock()
	return append([]string(nil), ig.skipped...)
}

// Backfill retries every skipped source: each that now answers its
// probe is folded into the federated schema exactly as Federate would
// have (prefixed objects, rename pathway, scoped derivations), and
// removed from the skipped set. It returns the names of the sources
// recovered. Intersect is unaffected: intersections register only over
// the sources their mappings name.
func (ig *Integrator) Backfill(ctx context.Context) ([]string, error) {
	ig.mu.Lock()
	defer ig.mu.Unlock()
	if ig.fed == nil || len(ig.skipped) == 0 {
		return nil, nil
	}
	var recovered []string
	var still []string
	for _, name := range ig.skipped {
		var w wrapper.Wrapper
		for _, s := range ig.sources {
			if s.SchemaName() == name {
				w = s
				break
			}
		}
		if w == nil {
			continue // source vanished; nothing to backfill
		}
		if p, ok := w.(query.Pinger); ok {
			if err := p.Ping(ctx); err != nil {
				still = append(still, name)
				continue
			}
		}
		sections := ig.fedSections(ig.fedName, []wrapper.Wrapper{w})
		if _, err := ig.mergeFedSections(ig.fed, sections); err != nil {
			return recovered, fmt.Errorf("core: backfilling source %q: %w", name, err)
		}
		recovered = append(recovered, name)
	}
	ig.skipped = still
	return recovered, nil
}

// addPathway stores a pathway without endpoint re-derivation checks
// (endpoint schemas may be federated namespaces).
func (ig *Integrator) addPathway(pw *transform.Pathway) error {
	if _, ok := ig.repo.Schema(pw.Source); !ok {
		if err := ig.repo.AddSchema(hdm.NewSchema(pw.Source)); err != nil {
			return err
		}
	}
	if _, ok := ig.repo.Schema(pw.Target); !ok {
		if err := ig.repo.AddSchema(hdm.NewSchema(pw.Target)); err != nil {
			return err
		}
	}
	return ig.repo.AddPathway(pw, false)
}

// Federated returns the federated schema (nil before Federate).
func (ig *Integrator) Federated() *hdm.Schema {
	ig.mu.RLock()
	defer ig.mu.RUnlock()
	return ig.fed
}

// Global returns the current global schema: the federated schema until
// the first BuildGlobal, then the latest built version.
func (ig *Integrator) Global() *hdm.Schema {
	ig.mu.RLock()
	defer ig.mu.RUnlock()
	return ig.global
}

// GlobalVersion returns the current global schema's version number:
// 0 for the federated schema, incremented by every rebuild. It is -1
// before Federate.
func (ig *Integrator) GlobalVersion() int {
	ig.mu.RLock()
	defer ig.mu.RUnlock()
	if ig.global == nil {
		return -1
	}
	return ig.globalVersion
}

// Versions lists every published global schema version, oldest first.
// All versions remain queryable via QueryAt.
func (ig *Integrator) Versions() []SchemaVersion {
	ig.mu.RLock()
	defer ig.mu.RUnlock()
	return append([]SchemaVersion(nil), ig.versions...)
}

// SchemaAt returns the global schema published as the given version.
func (ig *Integrator) SchemaAt(version int) (*hdm.Schema, bool) {
	ig.mu.RLock()
	defer ig.mu.RUnlock()
	return ig.schemaAtLocked(version)
}

func (ig *Integrator) schemaAtLocked(version int) (*hdm.Schema, bool) {
	for _, sv := range ig.versions {
		if sv.Version == version {
			return sv.Schema, true
		}
	}
	return nil, false
}

// Intersections returns the intersections created so far.
func (ig *Integrator) Intersections() []*Intersection {
	ig.mu.RLock()
	defer ig.mu.RUnlock()
	return append([]*Intersection(nil), ig.intersections...)
}

// Intersect performs workflow steps 3-5: creates the intersection
// schema named name from the mappings table, generating per-source
// pathways in the canonical normal form (manual adds; auto extends for
// non-contributing sources; auto deletes derived from simple forward
// queries, or manual deletes from explicit ReverseQuery entries;
// Range Void Any contracts for everything unmapped; ident steps between
// the union-compatible images). The paper defines intersections between
// pairs of schemas and lists k-ary intersections as future work; this
// implementation supports any k ≥ 1 and the case study uses k = 3.
// The enables list names workload queries first answerable after this
// iteration.
func (ig *Integrator) Intersect(name string, mappings []Mapping, enables ...string) (*Intersection, error) {
	ig.mu.Lock()
	defer ig.mu.Unlock()
	if ig.fed == nil {
		return nil, fmt.Errorf("core: call Federate before Intersect")
	}
	if name == "" {
		name = fmt.Sprintf("I%d", len(ig.intersections)+1)
	}
	if len(mappings) == 0 {
		return nil, fmt.Errorf("core: intersection %q has no mappings", name)
	}

	in := &Intersection{
		Name:            name,
		PathwayBySource: make(map[string]*transform.Pathway),
		DeletedBySource: make(map[string][]hdm.Scheme),
	}

	var fwds []parsedFwd
	targetSet := make(map[string]hdm.ObjectKind)
	var targetOrder []hdm.Scheme
	sourceSet := make(map[string]bool)
	derivedOnly := make(map[string]bool)

	for _, m := range mappings {
		tsc, kind, err := parseTarget(m.Target)
		if err != nil {
			return nil, err
		}
		if len(m.Forward) == 0 {
			return nil, fmt.Errorf("core: mapping for %s has no forward queries", tsc)
		}
		sourced := false
		for _, f := range m.Forward {
			e, err := iql.Parse(f.Query)
			if err != nil {
				return nil, fmt.Errorf("core: forward query for %s: %w", tsc, err)
			}
			pf := parsedFwd{target: tsc, kind: kind, source: f.Source, expr: e}
			if f.Source != "" {
				sourced = true
				if !ig.hasSource(f.Source) {
					return nil, fmt.Errorf("core: unknown source %q in mapping for %s", f.Source, tsc)
				}
				sourceSet[f.Source] = true
				if obj, rev, ok := deriveReverse(e, tsc); ok {
					pf.consume, pf.reverse = obj, rev
				}
			}
			fwds = append(fwds, pf)
		}
		if _, seen := targetSet[tsc.Key()]; !seen {
			if sourced {
				// Union-compatible image member.
				targetSet[tsc.Key()] = kind
				targetOrder = append(targetOrder, tsc)
			} else {
				// Derived concepts are global-level: they are not part
				// of the union-compatible images.
				derivedOnly[tsc.Key()] = true
			}
		}
	}

	// Tool-generated parent entities: attributes whose parent entity is
	// neither a target of this intersection nor already integrated.
	// The explicit-target snapshot keeps planning independent of the
	// order parents are discovered in.
	explicit := make(map[string]bool, len(targetSet))
	for k := range targetSet {
		explicit[k] = true
	}
	autoParents, err := ig.planAutoParents(fwds, explicit, targetSet, &targetOrder)
	if err != nil {
		return nil, fmt.Errorf("core: intersection %q: %w", name, err)
	}
	fwds = append(fwds, autoParents...)

	// Explicit reverse queries, indexed source → object key.
	explicitRev := make(map[string]iql.Expr)
	for _, m := range mappings {
		for _, r := range m.Reverse {
			osc, err := hdm.ParseScheme(r.Object)
			if err != nil {
				return nil, fmt.Errorf("core: reverse mapping object: %w", err)
			}
			e, err := iql.Parse(r.Query)
			if err != nil {
				return nil, fmt.Errorf("core: reverse query for %s: %w", osc, err)
			}
			explicitRev[r.Source+"\x00"+osc.Key()] = e
		}
	}

	// Contributing sources, in registration order.
	var contributing []string
	for _, w := range ig.sources {
		if sourceSet[w.SchemaName()] {
			contributing = append(contributing, w.SchemaName())
		}
	}
	if len(contributing) == 0 {
		return nil, fmt.Errorf("core: intersection %q has no source-backed mappings", name)
	}
	in.Sources = contributing

	// The intersection schema I: all targets.
	iSchema := hdm.NewSchema(name)
	for _, tsc := range targetOrder {
		if err := iSchema.Add(hdm.NewObject(tsc, targetSet[tsc.Key()], "", "")); err != nil {
			return nil, err
		}
	}
	in.Schema = iSchema
	in.Targets = append([]hdm.Scheme(nil), targetOrder...)

	// Build one pathway per contributing source: ES_src → I_src.
	for _, src := range contributing {
		imageName := name + "~" + ig.prefix[src]
		pw := transform.NewPathway(src, imageName)
		deleted := make(map[string]bool)

		// Phase 1: adds (manual), auto parent adds, and extends for
		// targets this source does not contribute to.
		contributed := make(map[string]bool)
		for _, f := range fwds {
			if f.source != src {
				continue
			}
			t := transform.NewAdd(f.target, f.expr, f.kind, "", "")
			if f.auto() {
				t = t.WithAuto()
				in.Counts.AutoAdds++
			} else {
				in.Counts.ManualAdds++
			}
			pw.Append(t)
			contributed[f.target.Key()] = true
		}
		for _, tsc := range targetOrder {
			if contributed[tsc.Key()] {
				continue
			}
			pw.Append(transform.NewExtend(tsc, &iql.Lit{Val: iql.Void()}, &iql.Lit{Val: iql.Any()},
				targetSet[tsc.Key()], "", "").WithAuto())
			in.Counts.AutoExtends++
		}

		// Phase 2: deletes — explicit reverse queries first (manual),
		// then tool-derived reverses for simple forward mappings.
		srcSchema := ig.sourceSchema(src)
		for _, f := range fwds {
			if f.source != src || f.consume == nil {
				continue
			}
			obj, err := srcSchema.Resolve(f.consume)
			if err != nil {
				return nil, fmt.Errorf("core: intersection %q: forward query for %s consumes %v: %w",
					name, f.target, f.consume, err)
			}
			key := obj.Scheme.Key()
			if deleted[key] {
				continue
			}
			if rev, ok := explicitRev[src+"\x00"+key]; ok {
				pw.Append(transform.NewDelete(obj.Scheme, rev).
					WithMeta(obj.Kind, obj.Model, obj.Construct))
				in.Counts.ManualDeletes++
			} else {
				pw.Append(transform.NewDelete(obj.Scheme, f.reverse).WithAuto().
					WithMeta(obj.Kind, obj.Model, obj.Construct))
				in.Counts.AutoDeletes++
			}
			deleted[key] = true
			in.DeletedBySource[src] = append(in.DeletedBySource[src], obj.Scheme)
		}
		// Explicit reverse queries for objects not auto-consumed.
		for _, m := range mappings {
			for _, r := range m.Reverse {
				if r.Source != src {
					continue
				}
				osc, _ := hdm.ParseScheme(r.Object)
				obj, err := srcSchema.Resolve(osc.Parts())
				if err != nil {
					return nil, fmt.Errorf("core: intersection %q: reverse mapping: %w", name, err)
				}
				if deleted[obj.Scheme.Key()] {
					continue
				}
				pw.Append(transform.NewDelete(obj.Scheme, explicitRev[src+"\x00"+obj.Scheme.Key()]).
					WithMeta(obj.Kind, obj.Model, obj.Construct))
				in.Counts.ManualDeletes++
				deleted[obj.Scheme.Key()] = true
				in.DeletedBySource[src] = append(in.DeletedBySource[src], obj.Scheme)
			}
		}

		// Phase 3: contract everything else of the source schema.
		for _, o := range srcSchema.Objects() {
			if deleted[o.Scheme.Key()] {
				continue
			}
			pw.Append(transform.NewContract(o.Scheme, nil, nil).WithAuto().
				WithMeta(o.Kind, o.Model, o.Construct))
			in.Counts.AutoContracts++
		}

		if err := pw.IsIntersectionForm(); err != nil {
			return nil, fmt.Errorf("core: intersection %q: %w", name, err)
		}
		in.PathwayBySource[src] = pw
		if err := ig.repo.AddSchema(iSchema.Clone(imageName)); err != nil {
			return nil, err
		}
		if err := ig.addPathway(pw); err != nil {
			return nil, err
		}
		if err := ig.proc.RegisterPathway(pw, src); err != nil {
			return nil, err
		}
	}

	// Ident steps between consecutive union-compatible images, and the
	// designation of the first image as the intersection schema I.
	if err := ig.repo.AddSchema(iSchema); err != nil {
		return nil, err
	}
	images := make([]string, len(contributing))
	for i, src := range contributing {
		images[i] = name + "~" + ig.prefix[src]
	}
	for i := 0; i+1 < len(images); i++ {
		a, _ := ig.repo.Schema(images[i])
		b, _ := ig.repo.Schema(images[i+1])
		steps, err := transform.IdentSteps(a, b)
		if err != nil {
			return nil, fmt.Errorf("core: intersection %q: %w", name, err)
		}
		idp := transform.NewPathway(images[i], images[i+1], steps...)
		if err := ig.addPathway(idp); err != nil {
			return nil, err
		}
		in.Counts.AutoIDs += len(steps)
	}
	if len(images) > 0 {
		first, _ := ig.repo.Schema(images[0])
		steps, err := transform.IdentSteps(first, iSchema)
		if err != nil {
			return nil, err
		}
		if err := ig.addPathway(transform.NewPathway(images[0], name, steps...)); err != nil {
			return nil, err
		}
	}

	// Derived concepts (empty Source): defined over the integrated
	// namespace, registered unscoped; they join the global schema but
	// not the union-compatible images.
	derivedSeen := make(map[string]bool)
	for _, f := range fwds {
		if f.source != "" {
			continue
		}
		ig.proc.Define(f.target, f.expr, name+":derived", "")
		in.Counts.ManualAdds++
		if derivedOnly[f.target.Key()] && !derivedSeen[f.target.Key()] {
			derivedSeen[f.target.Key()] = true
			in.Derived = append(in.Derived, f.target)
			ig.derivedObjs = append(ig.derivedObjs, objMeta{scheme: f.target, kind: f.kind})
		}
	}

	// The iteration's touch-set: every object this intersection gave a
	// new derivation. RegisterPathway/Define invalidate per call; this
	// union is recorded for the serving layer's result caches and
	// re-applied here so one iteration is one invalidation event.
	var touched []string
	for _, tsc := range in.Targets {
		touched = append(touched, tsc.Key())
	}
	for _, f := range fwds {
		if f.source == "" {
			touched = append(touched, f.target.Key())
		}
	}
	in.Touched = cache.Dedup(touched)
	ig.proc.InvalidateSchemes(in.Touched...)

	ig.intersections = append(ig.intersections, in)
	// Workflow step 5: the tool automatically creates a new global
	// schema from the intersection and the extensional schemas.
	if _, err := ig.rebuildGlobal(ig.autoDrop); err != nil {
		return nil, err
	}
	ig.iterations = append(ig.iterations, Iteration{
		Name: name, Kind: "intersection", Counts: in.Counts,
		Enables: enables, GlobalSchema: ig.globalName(),
	})
	return in, nil
}

// parsedFwd is one parsed forward mapping entry; isAuto marks
// tool-generated entries (parent entities).
type parsedFwd struct {
	target  hdm.Scheme
	kind    hdm.ObjectKind
	source  string
	expr    iql.Expr
	reverse iql.Expr // auto-derived reverse, if invertible
	consume []string // source object consumed (when invertible)
	isAuto  bool
}

func (f parsedFwd) auto() bool { return f.isAuto }

// planAutoParents reproduces the Intersection Schema Tool behaviour of
// creating missing parent entities implied by attribute mappings: the
// paper's iteration 4 adds <<UProteinHit, protein>> etc. without ever
// adding <<UProteinHit>>, so the tool derives the entity from each
// source's first simple attribute query (counted automatic, keeping the
// paper's manual count intact).
func (ig *Integrator) planAutoParents(fwds []parsedFwd, explicit map[string]bool, targetSet map[string]hdm.ObjectKind, targetOrder *[]hdm.Scheme) ([]parsedFwd, error) {
	var out []parsedFwd
	// Parent key → source → derivation already planned?
	planned := make(map[string]map[string]bool)
	for _, f := range fwds {
		if f.source == "" || f.target.Arity() < 2 {
			continue
		}
		parent := hdm.NewScheme(f.target.First())
		pk := parent.Key()
		if explicit[pk] {
			continue // entity mapped explicitly
		}
		if ig.proc.HasDefinition(parent) {
			continue // integrated in an earlier iteration
		}
		if planned[pk] == nil {
			planned[pk] = make(map[string]bool)
		}
		if planned[pk][f.source] {
			continue
		}
		pq, ok := deriveParent(f.expr)
		if !ok {
			continue // only simple attribute shapes imply a parent derivation
		}
		planned[pk][f.source] = true
		if _, seen := targetSet[pk]; !seen {
			targetSet[pk] = hdm.Nodal
			*targetOrder = append(*targetOrder, parent)
		}
		out = append(out, parsedFwd{
			target: parent, kind: hdm.Nodal, source: f.source, expr: pq, isAuto: true,
		})
	}
	// Every parent that ended up as a target must have at least one
	// derivation, else queries over it cannot be answered.
	for pk, srcs := range planned {
		if len(srcs) == 0 {
			return nil, fmt.Errorf("no derivation found for implied parent entity %s; add an explicit entity mapping", pk)
		}
	}
	return out, nil
}

func (ig *Integrator) hasSource(name string) bool {
	for _, w := range ig.sources {
		if w.SchemaName() == name {
			return true
		}
	}
	return false
}

func (ig *Integrator) sourceSchema(name string) *hdm.Schema {
	for _, w := range ig.sources {
		if w.SchemaName() == name {
			return w.Schema()
		}
	}
	return nil
}

func (ig *Integrator) globalName() string {
	if ig.global != nil {
		return ig.global.Name()
	}
	return ""
}
