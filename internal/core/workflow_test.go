package core

import (
	"fmt"
	"strings"
	"testing"

	"github.com/dataspace/automed/internal/hdm"
	"github.com/dataspace/automed/internal/iql"
	"github.com/dataspace/automed/internal/transform"
)

func TestExplicitReverseQueryCountsManual(t *testing.T) {
	ig := newIntegrator(t)
	if _, err := ig.Federate("F"); err != nil {
		t.Fatal(err)
	}
	// A complex (non-invertible) forward query with a user-supplied
	// reverse: the delete is manual per the paper (user input needed).
	in, err := ig.Intersect("I1", []Mapping{
		{
			Target: "<<UBook>>",
			Forward: []SourceQuery{
				From("Library", "[{'LIB', k} | k <- <<books>>; k > 0]"),
			},
			Reverse: []ReverseQuery{
				{Source: "Library", Object: "<<books>>",
					Query: "[k | {'LIB', k} <- <<UBook>>]"},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if in.Counts.ManualAdds != 1 || in.Counts.ManualDeletes != 1 {
		t.Errorf("counts = %+v", in.Counts)
	}
	// The delete makes books redundant.
	if len(in.DeletedBySource["Library"]) != 1 {
		t.Errorf("deleted = %v", in.DeletedBySource)
	}
	// And the explicit reverse actually works.
	if _, err := ig.BuildGlobal(true); err != nil {
		t.Fatal(err)
	}
	rp, err := ig.ReverseProcessor()
	if err != nil {
		t.Fatal(err)
	}
	v, err := rp.Query("count(<<books>>)")
	if err != nil {
		t.Fatal(err)
	}
	if !v.Equal(iql.Int(3)) {
		t.Errorf("reverse books = %s", v)
	}
}

func TestGLAVStyleJoinMapping(t *testing.T) {
	// BAV subsumes GLAV: a forward query may join several source
	// objects (complex add). No delete is derivable, so the consumed
	// objects contract and remain in the global schema.
	ig := newIntegrator(t)
	if _, err := ig.Federate("F"); err != nil {
		t.Fatal(err)
	}
	in, err := ig.Intersect("I1", []Mapping{
		{
			Target: "<<UBookShelf>>",
			Forward: []SourceQuery{
				From("Library",
					"[{'LIB', k, i, sh} | {k, i} <- <<books, isbn>>; {k2, sh} <- <<books, shelf>>; k2 = k]"),
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if in.Counts.ManualAdds != 1 || in.Counts.AutoDeletes != 0 {
		t.Errorf("counts = %+v", in.Counts)
	}
	res, err := ig.Query("count(<<UBookShelf>>)")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Value.Equal(iql.Int(3)) {
		t.Errorf("count = %s", res.Value)
	}
	// Nothing deleted, so with drop the source objects all survive.
	g, err := ig.BuildGlobal(true)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Has(hdm.NewScheme("library_books", "isbn")) {
		t.Error("contracted-only object was dropped")
	}
}

func TestAutoDropRebuildsDropping(t *testing.T) {
	ig := newIntegrator(t)
	ig.SetAutoDrop(true)
	if _, err := ig.Federate("F"); err != nil {
		t.Fatal(err)
	}
	if _, err := ig.Intersect("I1", bookMappings()); err != nil {
		t.Fatal(err)
	}
	// The automatically rebuilt global schema already dropped the
	// mapped source objects.
	if ig.Global().Has(hdm.NewScheme("library_books")) {
		t.Error("autoDrop did not drop redundant objects")
	}
	if _, err := ig.Query("count(<<library_books>>)"); err == nil {
		t.Error("query over dropped object succeeded")
	}
}

func TestRedundantObjectsListing(t *testing.T) {
	ig := newIntegrator(t)
	if _, err := ig.Federate("F"); err != nil {
		t.Fatal(err)
	}
	if _, err := ig.Intersect("I1", bookMappings()); err != nil {
		t.Fatal(err)
	}
	red := ig.RedundantObjects()
	if len(red["Library"]) != 3 || len(red["Shop"]) != 3 {
		t.Errorf("redundant = %v", red)
	}
}

func TestPrefixAndSourceNames(t *testing.T) {
	ig := newIntegrator(t)
	if got := ig.Prefix("Library"); got != "library" {
		t.Errorf("Prefix = %q", got)
	}
	names := ig.SourceNames()
	if len(names) != 3 || names[0] != "Library" {
		t.Errorf("SourceNames = %v", names)
	}
	if len(ig.Sources()) != 3 {
		t.Error("Sources wrong")
	}
	if sanitizePrefix("My DB-2") != "my_db_2" {
		t.Errorf("sanitizePrefix = %q", sanitizePrefix("My DB-2"))
	}
}

func TestQueryErrors(t *testing.T) {
	ig := newIntegrator(t)
	if _, err := ig.Query("count(<<x>>)"); err == nil {
		t.Error("query before federate succeeded")
	}
	if _, err := ig.Federate("F"); err != nil {
		t.Fatal(err)
	}
	if _, err := ig.Query("[bad"); err == nil {
		t.Error("bad IQL accepted")
	}
	if _, err := ig.Query("count(<<no_such_object>>)"); err == nil {
		t.Error("unknown object accepted")
	}
	if _, err := ig.Extent("<<bogus scheme"); err == nil {
		t.Error("bad scheme accepted by Extent")
	}
}

func TestRefineErrors(t *testing.T) {
	ig := newIntegrator(t)
	m := Mapping{Target: "<<U, d>>", Forward: []SourceQuery{From("Library", "<<books>>")}}
	if err := ig.Refine("r", m); err == nil {
		t.Error("refine before federate succeeded")
	}
	if _, err := ig.Federate("F"); err != nil {
		t.Fatal(err)
	}
	if err := ig.Refine("r", Mapping{Target: "<<U, d>>"}); err == nil {
		t.Error("refine without forwards succeeded")
	}
	if err := ig.Refine("r", Mapping{Target: "<<U, d>>",
		Forward: []SourceQuery{From("Nope", "<<books>>")}}); err == nil {
		t.Error("refine with unknown source succeeded")
	}
	if err := ig.Refine("r", Mapping{Target: "<<U, d>>",
		Forward: []SourceQuery{From("Library", "[bad")}}); err == nil {
		t.Error("refine with bad IQL succeeded")
	}
}

func TestReportRendering(t *testing.T) {
	ig := newIntegrator(t)
	if _, err := ig.Federate("F"); err != nil {
		t.Fatal(err)
	}
	if _, err := ig.Intersect("I1", bookMappings(), "Q1"); err != nil {
		t.Fatal(err)
	}
	rep := ig.Report()
	s := rep.String()
	for _, want := range []string{"federate", "intersection", "Q1", "TOTAL"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
	if cum := rep.CumulativeManual(); cum[len(cum)-1] != rep.TotalManual() {
		t.Errorf("cumulative inconsistent: %v vs %d", cum, rep.TotalManual())
	}
	counts := rep.Totals()
	if !strings.Contains(counts.String(), "manual=6") {
		t.Errorf("counts string = %s", counts)
	}
}

func TestRepoRecordsPathwaysAndSchemas(t *testing.T) {
	ig := newIntegrator(t)
	if _, err := ig.Federate("F"); err != nil {
		t.Fatal(err)
	}
	in, err := ig.Intersect("I1", bookMappings())
	if err != nil {
		t.Fatal(err)
	}
	r := ig.Repo()
	// Intersection schema and per-source images stored.
	if _, ok := r.Schema("I1"); !ok {
		t.Error("intersection schema not stored")
	}
	for _, src := range in.Sources {
		img := "I1~" + ig.Prefix(src)
		if _, ok := r.Schema(img); !ok {
			t.Errorf("image schema %s not stored", img)
		}
	}
	// Pathways findable: Library → I1 via image + ident.
	p, err := r.FindPath("Library", "I1")
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() == 0 {
		t.Error("empty pathway Library→I1")
	}
	// Applying the found pathway reproduces the intersection objects.
	src, _ := r.Schema("Library")
	derived, err := transform.ApplyPathway(src, p, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range in.Targets {
		if !derived.Has(sc) {
			t.Errorf("derived schema missing %s", sc)
		}
	}
}

func TestManyIterationsGlobalVersioning(t *testing.T) {
	ig := newIntegrator(t)
	if _, err := ig.Federate("F"); err != nil {
		t.Fatal(err)
	}
	if _, err := ig.Intersect("I1", bookMappings()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := ig.Refine(fmt.Sprintf("r%d", i), Mapping{
			Target: fmt.Sprintf("<<UBook, extra%d>>", i),
			Forward: []SourceQuery{
				From("Library", "[{'LIB', k, x} | {k, x} <- <<books, shelf>>]"),
			},
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Each iteration produced a fresh global version; all stored.
	name := ig.Global().Name()
	if name != "GS4" {
		t.Errorf("global version = %q, want GS4", name)
	}
	for _, v := range []string{"GS1", "GS2", "GS3", "GS4"} {
		if _, ok := ig.Repo().Schema(v); !ok {
			t.Errorf("version %s not stored", v)
		}
	}
}

func TestSourceErrorPropagates(t *testing.T) {
	// A wrapper whose extents fail mid-query surfaces the error.
	bad := &failingWrapper{name: "Bad"}
	ig, err := New(bad)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ig.Federate("F"); err != nil {
		t.Fatal(err)
	}
	if _, err := ig.Query("count(<<bad_t>>)"); err == nil ||
		!strings.Contains(err.Error(), "synthetic failure") {
		t.Errorf("wrapper failure not propagated: %v", err)
	}
}

type failingWrapper struct{ name string }

func (w *failingWrapper) SchemaName() string { return w.name }
func (w *failingWrapper) Schema() *hdm.Schema {
	s := hdm.NewSchema(w.name)
	s.MustAdd(hdm.NewObject(hdm.MustScheme("<<t>>"), hdm.Nodal, "", ""))
	return s
}
func (w *failingWrapper) Extent(parts []string) (iql.Value, error) {
	return iql.Value{}, fmt.Errorf("synthetic failure reading %v", parts)
}
