package core

import (
	"context"
	"testing"

	"github.com/dataspace/automed/internal/iql"
	"github.com/dataspace/automed/internal/wrapper"
)

// faultedShop wraps the Shop source in a fault wrapper so tests can
// take it down (probes fail) and heal it again.
func faultedShop(t *testing.T, cfg wrapper.FaultConfig) *wrapper.Fault {
	t.Helper()
	ws, err := wrapper.NewRelational("Shop", shopDB(t))
	if err != nil {
		t.Fatal(err)
	}
	fw, err := wrapper.NewFault(ws, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return fw
}

func TestFederateReachableSkipsDownSource(t *testing.T) {
	wl, err := wrapper.NewRelational("Library", libraryDB(t))
	if err != nil {
		t.Fatal(err)
	}
	down := faultedShop(t, wrapper.FaultConfig{ErrorRate: 1})
	ig, err := New(wl, down)
	if err != nil {
		t.Fatal(err)
	}

	fed, skipped, err := ig.FederateReachable(context.Background(), "F", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 1 || skipped[0] != "Shop" {
		t.Fatalf("skipped = %v, want [Shop]", skipped)
	}
	if got := ig.Skipped(); len(got) != 1 || got[0] != "Shop" {
		t.Fatalf("Skipped() = %v, want [Shop]", got)
	}
	// The reachable source federated; the skipped one is absent.
	if _, err := fed.Resolve([]string{"library_books"}); err != nil {
		t.Errorf("library_books missing from degraded federation: %v", err)
	}
	if _, err := fed.Resolve([]string{"shop_items"}); err == nil {
		t.Error("shop_items present despite Shop being unreachable")
	}
	res, err := ig.Query("count(<<library_books>>)")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Value.Equal(iql.Int(3)) {
		t.Errorf("count over reachable subset = %s, want 3", res.Value)
	}
}

func TestFederateReachableEnforcesMinimum(t *testing.T) {
	wl, err := wrapper.NewRelational("Library", libraryDB(t))
	if err != nil {
		t.Fatal(err)
	}
	down := faultedShop(t, wrapper.FaultConfig{ErrorRate: 1})
	ig, err := New(wl, down)
	if err != nil {
		t.Fatal(err)
	}
	// One of two sources is down; demanding both reachable must fail
	// and leave the integrator un-federated.
	if _, _, err := ig.FederateReachable(context.Background(), "F", 2); err == nil {
		t.Fatal("FederateReachable(min=2) succeeded with a source down")
	}
	if ig.Federated() != nil {
		t.Fatal("failed federation left a federated schema behind")
	}
}

func TestBackfillRecoversHealedSource(t *testing.T) {
	wl, err := wrapper.NewRelational("Library", libraryDB(t))
	if err != nil {
		t.Fatal(err)
	}
	down := faultedShop(t, wrapper.FaultConfig{ErrorRate: 1})
	ig, err := New(wl, down)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ig.FederateReachable(context.Background(), "F", 1); err != nil {
		t.Fatal(err)
	}

	// While the source is still down, backfill is a no-op.
	recovered, err := ig.Backfill(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 0 {
		t.Fatalf("backfill recovered %v with the source still down", recovered)
	}

	// Heal it: backfill folds the source into the federation exactly
	// as Federate would have.
	down.Set(wrapper.FaultConfig{})
	recovered, err = ig.Backfill(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 1 || recovered[0] != "Shop" {
		t.Fatalf("backfill recovered %v, want [Shop]", recovered)
	}
	if got := ig.Skipped(); len(got) != 0 {
		t.Fatalf("Skipped() = %v after backfill, want empty", got)
	}
	res, err := ig.Query("count(<<shop_items>>)")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Value.Equal(iql.Int(2)) {
		t.Errorf("count(<<shop_items>>) after backfill = %s, want 2", res.Value)
	}
}
