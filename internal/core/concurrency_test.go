package core

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"github.com/dataspace/automed/internal/rel"
	"github.com/dataspace/automed/internal/wrapper"
)

func concurrencySources(t testing.TB) []wrapper.Wrapper {
	t.Helper()
	lib := rel.NewDB("Library")
	lt := lib.MustCreateTable("books", []rel.Column{
		{Name: "id", Type: rel.Int}, {Name: "isbn", Type: rel.String}, {Name: "title", Type: rel.String},
	}, "id")
	for i := 0; i < 50; i++ {
		lt.MustInsert(int64(i), fmt.Sprintf("978-%d", i), fmt.Sprintf("Book %d", i))
	}
	shop := rel.NewDB("Shop")
	st := shop.MustCreateTable("items", []rel.Column{
		{Name: "sku", Type: rel.String}, {Name: "barcode", Type: rel.String}, {Name: "price", Type: rel.Float},
	}, "sku")
	for i := 0; i < 50; i++ {
		st.MustInsert(fmt.Sprintf("S%d", i), fmt.Sprintf("978-%d", i), float64(i)+0.5)
	}
	wl, err := wrapper.NewRelational("Library", lib)
	if err != nil {
		t.Fatal(err)
	}
	ws, err := wrapper.NewRelational("Shop", shop)
	if err != nil {
		t.Fatal(err)
	}
	return []wrapper.Wrapper{wl, ws}
}

// TestConcurrentQueryDuringIntegration runs a stream of queries (over
// both the current and pinned schema versions) while intersections and
// refinements publish new global schema versions. Under -race this
// verifies the integrator's locking discipline: queries never observe a
// half-built global schema and per-query warnings do not cross-talk.
func TestConcurrentQueryDuringIntegration(t *testing.T) {
	ig, err := New(concurrencySources(t)...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ig.Federate("F"); err != nil {
		t.Fatal(err)
	}

	const readers = 8
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			ctx := context.Background()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// The federated names exist in every version.
				res, err := ig.QueryCtx(ctx, "count(<<library_books>>)")
				if err != nil {
					errs <- fmt.Errorf("reader %d: %v", r, err)
					return
				}
				if res.Value.I != 50 {
					errs <- fmt.Errorf("reader %d: count = %v", r, res.Value)
					return
				}
				// Pinned queries against version 0 must keep working as
				// integration advances.
				if _, err := ig.QueryAt(ctx, 0, "count(<<shop_items>>)"); err != nil {
					errs <- fmt.Errorf("reader %d pinned: %v", r, err)
					return
				}
			}
		}(r)
	}

	if _, err := ig.Intersect("I1", []Mapping{
		Entity("<<UBook>>",
			From("Library", "[{'LIB', k} | k <- <<books>>]"),
			From("Shop", "[{'SHOP', k} | k <- <<items>>]"),
		),
		Attribute("<<UBook, isbn>>",
			From("Library", "[{'LIB', k, x} | {k, x} <- <<books, isbn>>]"),
			From("Shop", "[{'SHOP', k, x} | {k, x} <- <<items, barcode>>]"),
		),
	}); err != nil {
		t.Fatal(err)
	}
	if err := ig.Refine("titles", Mapping{
		Target:  "<<UBook, title>>",
		Forward: []SourceQuery{From("Library", "[{'LIB', k, x} | {k, x} <- <<books, title>>]")},
	}); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	if got := ig.GlobalVersion(); got != 2 {
		t.Fatalf("GlobalVersion = %d, want 2", got)
	}
	if n := len(ig.Versions()); n != 3 {
		t.Fatalf("len(Versions) = %d, want 3", n)
	}
	res, err := ig.Query("count(<<UBook>>)")
	if err != nil {
		t.Fatal(err)
	}
	if res.Value.I != 100 {
		t.Fatalf("count(<<UBook>>) = %v, want 100", res.Value)
	}
	// <<UBook>> did not exist in version 0.
	if _, err := ig.QueryAt(context.Background(), 0, "count(<<UBook>>)"); err == nil {
		t.Fatal("version-0 query for <<UBook>> unexpectedly succeeded")
	}
}

// TestQueryCancellation verifies per-request contexts abort evaluation.
func TestQueryCancellation(t *testing.T) {
	ig, err := New(concurrencySources(t)...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ig.Federate("F"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ig.QueryCtx(ctx, "count(<<library_books>>)"); err == nil {
		t.Fatal("cancelled query unexpectedly succeeded")
	}
}

// TestWarningsPerQuery verifies that warnings are scoped to the query
// that raised them: a query over a fully-derived object must not report
// another query's incompleteness warnings.
func TestWarningsPerQuery(t *testing.T) {
	ig, err := New(concurrencySources(t)...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ig.Federate("F"); err != nil {
		t.Fatal(err)
	}
	// Only Library contributes UIsbn: Shop's image is extended with
	// Range Void Any, so querying it warns.
	if _, err := ig.Intersect("I1", []Mapping{
		Entity("<<UBook>>",
			From("Library", "[{'LIB', k} | k <- <<books>>]"),
			From("Shop", "[{'SHOP', k} | k <- <<items>>]"),
		),
		Entity("<<UIsbn>>", From("Library", "[x | {k, x} <- <<books, isbn>>]")),
	}); err != nil {
		t.Fatal(err)
	}
	warm, err := ig.Query("count(<<UIsbn>>)")
	if err != nil {
		t.Fatal(err)
	}
	if len(warm.Warnings) == 0 {
		t.Fatal("query over extended object produced no warnings")
	}
	clean, err := ig.Query("count(<<UBook>>)")
	if err != nil {
		t.Fatal(err)
	}
	if len(clean.Warnings) != 0 {
		t.Fatalf("unrelated query inherited warnings: %v", clean.Warnings)
	}
	// A repeat of the warning query is served from the extent memo
	// cache; the warnings must be replayed, not silently dropped.
	again, err := ig.Query("count(<<UIsbn>>)")
	if err != nil {
		t.Fatal(err)
	}
	if len(again.Warnings) != len(warm.Warnings) {
		t.Fatalf("cache-hit query lost warnings: got %v, want %v", again.Warnings, warm.Warnings)
	}
}
