// Package core implements the paper's primary contribution: the
// intersection-schema technique for incremental, pay-as-you-go
// dataspace integration (Brownlow & Poulovassilis, EDBT 2014, §2.2-2.3).
//
// An Integrator drives the workflow: federate the source schemas
// (prefixed union, no integration effort), then iteratively assert
// semantic intersections between extensional schemas via mappings
// tables, fold each intersection into a new global schema — optionally
// dropping objects made redundant — and answer IQL queries at every
// step.
package core

import (
	"fmt"

	"github.com/dataspace/automed/internal/hdm"
	"github.com/dataspace/automed/internal/iql"
)

// SourceQuery is one row of the mappings table's "forward" direction: an
// IQL query over the named extensional schema deriving (part of) the
// extent of an intersection-schema object. An empty Source marks a
// derived concept whose query ranges over previously integrated
// (intersection/global) objects — e.g. the paper's
// uPeptideHitToProteinHit_mm join.
type SourceQuery struct {
	// Source names the extensional (data source) schema; empty for
	// derived concepts.
	Source string
	// Query is IQL source text, written exactly as in the paper: with
	// unqualified scheme references that resolve against Source's
	// schema first.
	Query string
}

// ReverseQuery is a user-specified reverse (delete-direction) mapping
// for a source object that the tool cannot invert automatically.
type ReverseQuery struct {
	// Source names the extensional schema owning Object.
	Source string
	// Object is the source object's scheme text, e.g. "<<protein>>".
	Object string
	// Query is IQL text over the intersection schema recovering
	// Object's extent.
	Query string
}

// Mapping is one row group of the Intersection Schema Tool's mappings
// table: a target object of the intersection schema plus its forward
// queries (one per contributing source) and optional explicit reverse
// queries (paper Fig. 5).
type Mapping struct {
	// Target is the intersection-schema object's scheme text, e.g.
	// "<<UProtein, accession_num>>".
	Target string
	// Forward lists the per-source derivations.
	Forward []SourceQuery
	// Reverse lists user-specified reverse queries; the tool derives
	// reverse queries automatically for simple forward mappings and
	// defaults to Range Void Any (contract) otherwise.
	Reverse []ReverseQuery
}

// Entity is a convenience constructor for an entity (nodal) mapping.
func Entity(target string, forward ...SourceQuery) Mapping {
	return Mapping{Target: target, Forward: forward}
}

// Attribute is a convenience constructor for an attribute (link)
// mapping.
func Attribute(target string, forward ...SourceQuery) Mapping {
	return Mapping{Target: target, Forward: forward}
}

// From builds a SourceQuery.
func From(source, q string) SourceQuery { return SourceQuery{Source: source, Query: q} }

// Derived builds a SourceQuery over already-integrated objects.
func Derived(q string) SourceQuery { return SourceQuery{Query: q} }

// TargetScheme parses the mapping's target object scheme. The serving
// layer uses it to compute a refinement's touch-set for selective
// result-cache invalidation.
func (m Mapping) TargetScheme() (hdm.Scheme, error) {
	sc, _, err := parseTarget(m.Target)
	return sc, err
}

// parseTarget parses and classifies a mapping target: arity-1 schemes
// are entities (nodal), deeper schemes attributes (links).
func parseTarget(target string) (hdm.Scheme, hdm.ObjectKind, error) {
	sc, err := hdm.ParseScheme(target)
	if err != nil {
		return hdm.Scheme{}, 0, fmt.Errorf("core: mapping target: %w", err)
	}
	if sc.Arity() == 1 {
		return sc, hdm.Nodal, nil
	}
	return sc, hdm.Link, nil
}

// deriveReverse attempts to invert a simple forward mapping
//
//	[{'TAG', v1, …, vn} | pat <- <<c…>>]
//
// (with pat binding exactly v1…vn in order) into the delete-direction
// query
//
//	[v1 | {'TAG', v1} <- <<T>>]            (n = 1)
//	[{v1, …, vn} | {'TAG', v1, …, vn} <- <<T>>]   (n > 1)
//
// recovering the source object c's extent from the intersection object
// T. It reports the consumed source object and the reverse query, or
// ok=false when the forward query is not of the invertible shape (the
// user must then supply a ReverseQuery or the object is contracted).
func deriveReverse(fwd iql.Expr, target hdm.Scheme) (srcObject []string, rev iql.Expr, ok bool) {
	comp, isComp := fwd.(*iql.Comp)
	if !isComp || len(comp.Quals) != 1 {
		return nil, nil, false
	}
	gen, isGen := comp.Quals[0].(*iql.Generator)
	if !isGen {
		return nil, nil, false
	}
	src, isRef := gen.Src.(*iql.SchemeRef)
	if !isRef {
		return nil, nil, false
	}
	head, isTuple := comp.Head.(*iql.TupleExpr)
	if !isTuple || len(head.Elems) < 2 {
		return nil, nil, false
	}
	tagLit, isLit := head.Elems[0].(*iql.Lit)
	if !isLit || tagLit.Val.Kind != iql.KindString {
		return nil, nil, false
	}
	var headVars []string
	for _, e := range head.Elems[1:] {
		v, isVar := e.(*iql.Var)
		if !isVar {
			return nil, nil, false
		}
		headVars = append(headVars, v.Name)
	}
	// The pattern must bind exactly the head variables, in order.
	var patVars []string
	switch pat := gen.Pat.(type) {
	case *iql.VarPat:
		patVars = []string{pat.Name}
	case *iql.TuplePat:
		for _, pe := range pat.Elems {
			vp, isVP := pe.(*iql.VarPat)
			if !isVP {
				return nil, nil, false
			}
			patVars = append(patVars, vp.Name)
		}
	default:
		return nil, nil, false
	}
	if len(patVars) != len(headVars) {
		return nil, nil, false
	}
	for i := range patVars {
		if patVars[i] != headVars[i] || patVars[i] == "_" {
			return nil, nil, false
		}
	}

	// Build the reverse query.
	revPat := &iql.TuplePat{Elems: []iql.Pattern{&iql.LitPat{Val: tagLit.Val}}}
	for _, v := range headVars {
		revPat.Elems = append(revPat.Elems, &iql.VarPat{Name: v})
	}
	var revHead iql.Expr
	if len(headVars) == 1 {
		revHead = &iql.Var{Name: headVars[0]}
	} else {
		tup := &iql.TupleExpr{}
		for _, v := range headVars {
			tup.Elems = append(tup.Elems, &iql.Var{Name: v})
		}
		revHead = tup
	}
	rev = &iql.Comp{
		Head: revHead,
		Quals: []iql.Qual{&iql.Generator{
			Pat: revPat,
			Src: &iql.SchemeRef{Parts: target.Parts()},
		}},
	}
	return src.Parts, rev, true
}

// deriveParent builds the tool-generated entity derivation for a parent
// entity P from a simple attribute forward query
//
//	[{'TAG', k, x} | {k, x} <- <<t, c>>]  →  [{'TAG', k} | {k, x} <- <<t, c>>]
//
// i.e. the same qualifiers with the value component dropped from the
// head. Reports ok=false for non-simple shapes.
func deriveParent(fwd iql.Expr) (iql.Expr, bool) {
	comp, isComp := fwd.(*iql.Comp)
	if !isComp {
		return nil, false
	}
	head, isTuple := comp.Head.(*iql.TupleExpr)
	if !isTuple || len(head.Elems) < 3 {
		return nil, false
	}
	if lit, isLit := head.Elems[0].(*iql.Lit); !isLit || lit.Val.Kind != iql.KindString {
		return nil, false
	}
	clone := iql.Clone(fwd).(*iql.Comp)
	ch := clone.Head.(*iql.TupleExpr)
	ch.Elems = ch.Elems[:2] // keep {tag, key}
	return clone, true
}
