package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"

	"github.com/dataspace/automed/internal/hdm"
	"github.com/dataspace/automed/internal/iql"
	"github.com/dataspace/automed/internal/query"
	"github.com/dataspace/automed/internal/repo"
	"github.com/dataspace/automed/internal/transform"
	"github.com/dataspace/automed/internal/wrapper"
)

// Snapshot is the durable form of a whole integration session: the
// wrapped sources (schema and data), the schemas & transformations
// repository, every view definition held by the query processor, and
// the integrator's workflow bookkeeping — intersections, refinements,
// every published global schema version, and the effort report. A
// snapshot restored with Import answers every QueryAt identically to
// the integrator it was exported from, and integration can continue
// from where it stopped.
//
// The encoding is deliberately textual (schemes and IQL queries in
// their source form, reusing the repo JSON format) so snapshots are
// human-readable, diffable, and stable across releases; SnapshotFormat
// guards incompatible changes.
type Snapshot struct {
	Format        int                  `json:"format"`
	AutoDrop      bool                 `json:"auto_drop,omitempty"`
	FedName       string               `json:"federated_schema,omitempty"`
	GlobalVersion int                  `json:"global_version"`
	Sources       []*wrapper.Snapshot  `json:"sources"`
	Repo          json.RawMessage      `json:"repo"`
	Definitions   []DerivationSnapshot `json:"definitions,omitempty"`
	Intersections []IntersectionSnap   `json:"intersections,omitempty"`
	Derived       []ObjectSnap         `json:"derived,omitempty"`
	Versions      []VersionSnap        `json:"versions,omitempty"`
	Iterations    []Iteration          `json:"iterations,omitempty"`
}

// SnapshotFormat is the current snapshot format version.
const SnapshotFormat = 1

// DerivationSnapshot is one view definition of the query processor:
// the virtual object, its defining IQL query, and the unfolding
// metadata (lower-bound flag, provenance, resolution scope).
type DerivationSnapshot struct {
	Object string `json:"object"`
	Query  string `json:"query"`
	Lower  bool   `json:"lower,omitempty"`
	Via    string `json:"via,omitempty"`
	Scope  string `json:"scope,omitempty"`
}

// IntersectionSnap records one intersection's bookkeeping. Its schema
// and per-source pathways live in the repo snapshot and are re-linked
// by name on import.
type IntersectionSnap struct {
	Name            string              `json:"name"`
	Sources         []string            `json:"sources"`
	Targets         []string            `json:"targets"`
	Derived         []string            `json:"derived,omitempty"`
	DeletedBySource map[string][]string `json:"deleted_by_source,omitempty"`
	Counts          StepCounts          `json:"counts"`
}

// ObjectSnap is a scheme plus its object kind.
type ObjectSnap struct {
	Scheme string `json:"scheme"`
	Kind   string `json:"kind"`
}

// VersionSnap names the schema published as one global version.
type VersionSnap struct {
	Version int    `json:"version"`
	Schema  string `json:"schema"`
}

// Export captures the integrator's full state. Every source must be
// serialisable (implement wrapper.Snapshotter); sessions over live
// external systems cannot be exported and report which source blocks.
func (ig *Integrator) Export() (*Snapshot, error) {
	ig.mu.RLock()
	defer ig.mu.RUnlock()

	snap := &Snapshot{
		Format:        SnapshotFormat,
		AutoDrop:      ig.autoDrop,
		FedName:       ig.fedName,
		GlobalVersion: ig.globalVersion,
	}
	sources, err := wrapper.SnapshotAll(ig.sources)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	snap.Sources = sources

	var buf bytes.Buffer
	if err := ig.repo.Save(&buf); err != nil {
		return nil, fmt.Errorf("core: snapshotting repository: %w", err)
	}
	snap.Repo = json.RawMessage(bytes.TrimSpace(buf.Bytes()))

	for _, od := range ig.proc.AllDerivations() {
		obj := hdm.NewScheme(strings.Split(od.Key, "|")...).String()
		for _, d := range od.Derivs {
			snap.Definitions = append(snap.Definitions, DerivationSnapshot{
				Object: obj,
				Query:  d.Query.String(),
				Lower:  d.Lower,
				Via:    d.Via,
				Scope:  d.Scope,
			})
		}
	}

	for _, in := range ig.intersections {
		is := IntersectionSnap{
			Name:    in.Name,
			Sources: append([]string(nil), in.Sources...),
			Counts:  in.Counts,
		}
		for _, t := range in.Targets {
			is.Targets = append(is.Targets, t.String())
		}
		for _, d := range in.Derived {
			is.Derived = append(is.Derived, d.String())
		}
		if len(in.DeletedBySource) > 0 {
			is.DeletedBySource = make(map[string][]string, len(in.DeletedBySource))
			for src, objs := range in.DeletedBySource {
				for _, sc := range objs {
					is.DeletedBySource[src] = append(is.DeletedBySource[src], sc.String())
				}
			}
		}
		snap.Intersections = append(snap.Intersections, is)
	}

	for _, om := range ig.derivedObjs {
		snap.Derived = append(snap.Derived, ObjectSnap{Scheme: om.scheme.String(), Kind: om.kind.String()})
	}
	for _, sv := range ig.versions {
		snap.Versions = append(snap.Versions, VersionSnap{Version: sv.Version, Schema: sv.Schema.Name()})
	}
	snap.Iterations = append(snap.Iterations, ig.iterations...)
	return snap, nil
}

// Import rebuilds an integrator from a snapshot. The restored
// integrator serves every published schema version exactly as the
// exporting one did, and accepts further Intersect/Refine iterations.
func Import(snap *Snapshot) (*Integrator, error) {
	if snap == nil {
		return nil, fmt.Errorf("core: nil snapshot")
	}
	if snap.Format != SnapshotFormat {
		return nil, fmt.Errorf("core: unsupported snapshot format %d (want %d)", snap.Format, SnapshotFormat)
	}
	if len(snap.Sources) == 0 {
		return nil, fmt.Errorf("core: snapshot has no sources")
	}

	r, err := repo.Load(bytes.NewReader(snap.Repo))
	if err != nil {
		return nil, fmt.Errorf("core: restoring repository: %w", err)
	}
	ig := &Integrator{
		repo:     r,
		proc:     query.New(),
		prefix:   make(map[string]string),
		autoDrop: snap.AutoDrop,
	}
	for _, ws := range snap.Sources {
		w, err := wrapper.Restore(ws)
		if err != nil {
			return nil, fmt.Errorf("core: restoring source: %w", err)
		}
		if err := ig.proc.AddSource(w); err != nil {
			return nil, err
		}
		ig.sources = append(ig.sources, w)
		ig.prefix[w.SchemaName()] = sanitizePrefix(w.SchemaName())
	}

	ig.fedName = snap.FedName
	if snap.FedName != "" {
		fed, ok := r.Schema(snap.FedName)
		if !ok {
			return nil, fmt.Errorf("core: snapshot names federated schema %q but the repository lacks it", snap.FedName)
		}
		ig.fed = fed
	}
	ig.globalVersion = snap.GlobalVersion
	for _, vs := range snap.Versions {
		s, ok := r.Schema(vs.Schema)
		if !ok {
			return nil, fmt.Errorf("core: snapshot version %d names schema %q but the repository lacks it", vs.Version, vs.Schema)
		}
		ig.versions = append(ig.versions, SchemaVersion{Version: vs.Version, Schema: s})
	}
	if n := len(ig.versions); n > 0 {
		ig.global = ig.versions[n-1].Schema
	}

	for _, ds := range snap.Definitions {
		sc, err := hdm.ParseScheme(ds.Object)
		if err != nil {
			return nil, fmt.Errorf("core: restoring definition: %w", err)
		}
		q, err := iql.Parse(ds.Query)
		if err != nil {
			return nil, fmt.Errorf("core: restoring definition of %s: %w", sc, err)
		}
		ig.proc.DefineDerivation(sc, query.Derivation{Query: q, Lower: ds.Lower, Via: ds.Via, Scope: ds.Scope})
	}

	for _, is := range snap.Intersections {
		in := &Intersection{
			Name:            is.Name,
			Sources:         append([]string(nil), is.Sources...),
			Counts:          is.Counts,
			PathwayBySource: make(map[string]*transform.Pathway),
			DeletedBySource: make(map[string][]hdm.Scheme),
		}
		sch, ok := r.Schema(is.Name)
		if !ok {
			return nil, fmt.Errorf("core: snapshot intersection %q has no schema in the repository", is.Name)
		}
		in.Schema = sch
		for _, t := range is.Targets {
			sc, err := hdm.ParseScheme(t)
			if err != nil {
				return nil, fmt.Errorf("core: restoring intersection %q: %w", is.Name, err)
			}
			in.Targets = append(in.Targets, sc)
		}
		for _, d := range is.Derived {
			sc, err := hdm.ParseScheme(d)
			if err != nil {
				return nil, fmt.Errorf("core: restoring intersection %q: %w", is.Name, err)
			}
			in.Derived = append(in.Derived, sc)
		}
		for src, objs := range is.DeletedBySource {
			for _, o := range objs {
				sc, err := hdm.ParseScheme(o)
				if err != nil {
					return nil, fmt.Errorf("core: restoring intersection %q: %w", is.Name, err)
				}
				in.DeletedBySource[src] = append(in.DeletedBySource[src], sc)
			}
		}
		for _, src := range is.Sources {
			image := is.Name + "~" + ig.prefix[src]
			pw := findPathway(r, src, image)
			if pw == nil {
				return nil, fmt.Errorf("core: snapshot intersection %q lacks the pathway %s -> %s", is.Name, src, image)
			}
			in.PathwayBySource[src] = pw
		}
		ig.intersections = append(ig.intersections, in)
	}

	for _, os := range snap.Derived {
		sc, err := hdm.ParseScheme(os.Scheme)
		if err != nil {
			return nil, fmt.Errorf("core: restoring derived object: %w", err)
		}
		kind, err := hdm.ParseObjectKind(os.Kind)
		if err != nil {
			return nil, fmt.Errorf("core: restoring derived object %s: %w", sc, err)
		}
		ig.derivedObjs = append(ig.derivedObjs, objMeta{scheme: sc, kind: kind})
	}
	ig.iterations = append(ig.iterations, snap.Iterations...)
	return ig, nil
}

// findPathway locates a stored pathway by its exact endpoints.
func findPathway(r *repo.Repository, source, target string) *transform.Pathway {
	for _, p := range r.PathwaysFrom(source) {
		if p.Target == target {
			return p
		}
	}
	return nil
}
