package core

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/dataspace/automed/internal/rel"
	"github.com/dataspace/automed/internal/sqlmem"
	"github.com/dataspace/automed/internal/wrapper"
)

// The golden files guard the snapshot wire format of the remote
// wrapper kinds introduced after core.SnapshotFormat 1 shipped: any
// accidental field rename, reordering, or encoding change of the "sql"
// and "rest" payloads shows up as a byte diff here. Regenerate
// deliberately with -update.

func goldenSQLWrapper(t *testing.T) *wrapper.SQL {
	t.Helper()
	db := rel.NewDB("GoldenSQL")
	books := db.MustCreateTable("books", []rel.Column{
		{Name: "id", Type: rel.Int},
		{Name: "title", Type: rel.String},
		{Name: "price", Type: rel.Float},
	}, "id")
	books.MustInsert(int64(1), "Dataspaces", 10.5)
	books.MustInsert(int64(1<<60+7), nil, nil)
	sqlmem.Register("golden-sql", db)
	w, err := wrapper.NewSQL("GoldenSQL", wrapper.SQLConfig{
		Driver:  sqlmem.DriverName,
		DSN:     "golden-sql",
		Dialect: wrapper.DialectSQLite,
		Timeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// goldenTransport serves a fixed payload in-memory, keeping the REST
// golden bytes free of ephemeral ports.
type goldenTransport struct{}

func (goldenTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	body := `[{"id": 1, "title": "Dataspaces", "price": 10.5}, {"id": 1152921504606846983}]`
	return &http.Response{
		StatusCode: http.StatusOK,
		Body:       io.NopCloser(strings.NewReader(body)),
		Header:     make(http.Header),
		Request:    r,
	}, nil
}

func goldenRESTWrapper(t *testing.T) *wrapper.REST {
	t.Helper()
	w, err := wrapper.NewREST("GoldenREST", wrapper.RESTConfig{
		// Port 9 (discard) refuses connections instantly, so the
		// restored wrapper's fallback path is exercised without DNS or
		// timeout stalls.
		Endpoint:    "http://127.0.0.1:9/api",
		Timeout:     5 * time.Second,
		MaxBytes:    1 << 20,
		Collections: []wrapper.RESTCollection{{Name: "books", Fields: []string{"id", "price", "title"}}},
		Client:      &http.Client{Transport: goldenTransport{}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func checkWrapperGolden(t *testing.T, snap *wrapper.Snapshot, file string) {
	t.Helper()
	got, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	golden := filepath.Join("testdata", file)
	if *updateGolden {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("snapshot differs from %s — the %s wrapper snapshot format drifted:\n%s", golden, snap.Kind, got)
	}
	// Independently of today's encoder: the committed bytes must keep
	// restoring, and a re-snapshot of the restored wrapper must
	// reproduce them (the format loses nothing).
	dec := json.NewDecoder(bytes.NewReader(want))
	dec.UseNumber()
	var decoded wrapper.Snapshot
	if err := dec.Decode(&decoded); err != nil {
		t.Fatalf("golden file no longer decodes: %v", err)
	}
	restored, err := wrapper.Restore(&decoded)
	if err != nil {
		t.Fatalf("golden file no longer restores: %v", err)
	}
	again, err := restored.(wrapper.Snapshotter).Snapshot()
	if err != nil {
		t.Fatalf("re-snapshotting the restored wrapper: %v", err)
	}
	roundTripped, err := json.MarshalIndent(again, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(append(roundTripped, '\n'), want) {
		t.Errorf("Snapshot(Restore(golden)) differs from the golden bytes:\n%s", roundTripped)
	}
}

func TestGoldenSnapshotSQLKind(t *testing.T) {
	w := goldenSQLWrapper(t)
	snap, err := w.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	checkWrapperGolden(t, snap, "golden_wrapper_sql.json")
}

func TestGoldenSnapshotRESTKind(t *testing.T) {
	w := goldenRESTWrapper(t)
	snap, err := w.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	checkWrapperGolden(t, snap, "golden_wrapper_rest.json")
}
