package core

import (
	"testing"

	"github.com/dataspace/automed/internal/iql"
	"github.com/dataspace/automed/internal/rel"
	"github.com/dataspace/automed/internal/wrapper"
)

// TestDropInvariance: answers to queries over integrated objects are
// identical whether or not redundant source objects are dropped — the
// − operator only removes objects whose extents the intersection
// subsumes (paper §2.2).
func TestDropInvariance(t *testing.T) {
	queries := []string{
		"count(<<UBook>>)",
		"sort([{s, k, x} | {s, k, x} <- <<UBook, isbn>>])",
		"sort([{s, k} | {s, k, x} <- <<UBook, title>>; contains(x, 'Matching')])",
	}
	answers := func(drop bool) []iql.Value {
		ig := newIntegrator(t)
		ig.SetAutoDrop(drop)
		if _, err := ig.Federate("F"); err != nil {
			t.Fatal(err)
		}
		if _, err := ig.Intersect("I1", bookMappings()); err != nil {
			t.Fatal(err)
		}
		var out []iql.Value
		for _, q := range queries {
			res, err := ig.Query(q)
			if err != nil {
				t.Fatalf("drop=%v %q: %v", drop, q, err)
			}
			out = append(out, res.Value)
		}
		return out
	}
	kept := answers(false)
	dropped := answers(true)
	for i := range queries {
		if !kept[i].Equal(dropped[i]) {
			t.Errorf("%q differs under drop: %s vs %s", queries[i], kept[i], dropped[i])
		}
	}
}

// TestGlobalExtentIsUnionOfSourceDerivations: the bag-union semantics —
// an integrated object's extent equals the concatenation of evaluating
// each source's forward query directly against its wrapper.
func TestGlobalExtentIsUnionOfSourceDerivations(t *testing.T) {
	ig := newIntegrator(t)
	if _, err := ig.Federate("F"); err != nil {
		t.Fatal(err)
	}
	if _, err := ig.Intersect("I1", bookMappings()); err != nil {
		t.Fatal(err)
	}
	got, err := ig.Extent("<<UBook, isbn>>")
	if err != nil {
		t.Fatal(err)
	}
	// Recompute independently, straight off the wrappers.
	var manual []iql.Value
	for _, w := range ig.Sources() {
		var q string
		switch w.SchemaName() {
		case "Library":
			q = "[{'LIB', k, x} | {k, x} <- <<books, isbn>>]"
		case "Shop":
			q = "[{'SHOP', k, x} | {k, x} <- <<items, barcode>>]"
		default:
			continue
		}
		ev := iql.NewEvaluator(iql.ExtentsFunc(w.Extent))
		v, err := ev.EvalString(q)
		if err != nil {
			t.Fatal(err)
		}
		manual = append(manual, v.Items...)
	}
	if !got.Equal(iql.BagOf(manual)) {
		t.Errorf("union semantics violated: %s vs %s", got, iql.BagOf(manual))
	}
}

// TestKAryIntersection exercises the k=3 generalisation (the paper's
// future work, needed by its own case study) directly at the core API:
// one intersection over three sources, with one source not contributing
// to one attribute (auto extend placeholder).
func TestKAryIntersection(t *testing.T) {
	third := rel.NewDB("Depot")
	tbl := third.MustCreateTable("stock", []rel.Column{
		{Name: "code", Type: rel.String},
		{Name: "ean", Type: rel.String},
	}, "code")
	tbl.MustInsert("D1", "978-1")
	tbl.MustInsert("D2", "978-9")
	wd, err := wrapper.NewRelational("Depot", third)
	if err != nil {
		t.Fatal(err)
	}
	wl, _ := wrapper.NewRelational("Library", libraryDB(t))
	ws, _ := wrapper.NewRelational("Shop", shopDB(t))
	ig, err := New(wl, ws, wd)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ig.Federate("F"); err != nil {
		t.Fatal(err)
	}
	in, err := ig.Intersect("I1", []Mapping{
		Entity("<<UBook>>",
			From("Library", "[{'LIB', k} | k <- <<books>>]"),
			From("Shop", "[{'SHOP', k} | k <- <<items>>]"),
			From("Depot", "[{'DEPOT', k} | k <- <<stock>>]"),
		),
		Attribute("<<UBook, isbn>>",
			From("Library", "[{'LIB', k, x} | {k, x} <- <<books, isbn>>]"),
			From("Shop", "[{'SHOP', k, x} | {k, x} <- <<items, barcode>>]"),
			From("Depot", "[{'DEPOT', k, x} | {k, x} <- <<stock, ean>>]"),
		),
		// Only two of the three sources support titles.
		Attribute("<<UBook, title>>",
			From("Library", "[{'LIB', k, x} | {k, x} <- <<books, title>>]"),
			From("Shop", "[{'SHOP', k, x} | {k, x} <- <<items, name>>]"),
		),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(in.Sources) != 3 {
		t.Fatalf("sources = %v", in.Sources)
	}
	// Depot's pathway carries an extend placeholder for title.
	var extends int
	for _, st := range in.PathwayBySource["Depot"].Steps {
		if st.Kind.String() == "extend" {
			extends++
		}
	}
	if extends != 1 {
		t.Errorf("Depot extends = %d, want 1", extends)
	}
	// All three images are union-compatible (same object set), so the
	// idents were injected pairwise: 2 pairs × 3 objects.
	if in.Counts.AutoIDs != 6 {
		t.Errorf("AutoIDs = %d, want 6", in.Counts.AutoIDs)
	}
	// Three-way union.
	res, err := ig.Query("count(<<UBook>>)")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Value.Equal(iql.Int(7)) { // 3 + 2 + 2
		t.Errorf("count = %s", res.Value)
	}
	// The shared ISBN appears from two sources.
	res, err = ig.Query("[s | {s, k, x} <- <<UBook, isbn>>; x = '978-1']")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Value.Equal(iql.Bag(iql.Str("LIB"), iql.Str("DEPOT"))) {
		t.Errorf("978-1 owners = %s", res.Value)
	}
}
