package core

import (
	"strings"
	"testing"

	"github.com/dataspace/automed/internal/hdm"
	"github.com/dataspace/automed/internal/iql"
	"github.com/dataspace/automed/internal/rel"
	"github.com/dataspace/automed/internal/transform"
	"github.com/dataspace/automed/internal/wrapper"
)

// Toy scenario: two book catalogues with overlapping content plus a
// third source left un-integrated, mirroring Figs. 2-4 of the paper.

func libraryDB(t *testing.T) *rel.DB {
	t.Helper()
	db := rel.NewDB("Library")
	books := db.MustCreateTable("books", []rel.Column{
		{Name: "id", Type: rel.Int},
		{Name: "isbn", Type: rel.String},
		{Name: "title", Type: rel.String},
		{Name: "shelf", Type: rel.String},
	}, "id")
	books.MustInsert(int64(1), "978-1", "Dataspaces", "A1")
	books.MustInsert(int64(2), "978-2", "Schema Matching", "A2")
	books.MustInsert(int64(3), "978-3", "Query Rewriting", "B1")
	return db
}

func shopDB(t *testing.T) *rel.DB {
	t.Helper()
	db := rel.NewDB("Shop")
	items := db.MustCreateTable("items", []rel.Column{
		{Name: "sku", Type: rel.String},
		{Name: "barcode", Type: rel.String},
		{Name: "name", Type: rel.String},
		{Name: "price", Type: rel.Float},
	}, "sku")
	items.MustInsert("S1", "978-2", "Schema Matching", 30.0)
	items.MustInsert("S2", "978-4", "Data Integration", 40.0)
	return db
}

func archiveDB(t *testing.T) *rel.DB {
	t.Helper()
	db := rel.NewDB("Archive")
	scans := db.MustCreateTable("scans", []rel.Column{
		{Name: "scan_id", Type: rel.Int},
		{Name: "format", Type: rel.String},
	}, "scan_id")
	scans.MustInsert(int64(100), "pdf")
	return db
}

func newIntegrator(t *testing.T) *Integrator {
	t.Helper()
	wl, err := wrapper.NewRelational("Library", libraryDB(t))
	if err != nil {
		t.Fatal(err)
	}
	ws, err := wrapper.NewRelational("Shop", shopDB(t))
	if err != nil {
		t.Fatal(err)
	}
	wa, err := wrapper.NewRelational("Archive", archiveDB(t))
	if err != nil {
		t.Fatal(err)
	}
	ig, err := New(wl, ws, wa)
	if err != nil {
		t.Fatal(err)
	}
	return ig
}

func bookMappings() []Mapping {
	return []Mapping{
		Entity("<<UBook>>",
			From("Library", "[{'LIB', k} | k <- <<books>>]"),
			From("Shop", "[{'SHOP', k} | k <- <<items>>]"),
		),
		Attribute("<<UBook, isbn>>",
			From("Library", "[{'LIB', k, x} | {k, x} <- <<books, isbn>>]"),
			From("Shop", "[{'SHOP', k, x} | {k, x} <- <<items, barcode>>]"),
		),
		Attribute("<<UBook, title>>",
			From("Library", "[{'LIB', k, x} | {k, x} <- <<books, title>>]"),
			From("Shop", "[{'SHOP', k, x} | {k, x} <- <<items, name>>]"),
		),
	}
}

func TestFederateExposesPrefixedObjects(t *testing.T) {
	ig := newIntegrator(t)
	fed, err := ig.Federate("F")
	if err != nil {
		t.Fatal(err)
	}
	// 3 sources: (1 table + 4 cols) + (1 + 4) + (1 + 2) = 13 objects.
	if fed.Len() != 13 {
		t.Fatalf("federated schema has %d objects, want 13", fed.Len())
	}
	for _, want := range []string{"library_books", "shop_items", "archive_scans"} {
		if !fed.Has(hdm.NewScheme(want)) {
			t.Errorf("federated schema missing <<%s>>", want)
		}
	}
	// Data services immediately available over the federation.
	res, err := ig.Query("count(<<library_books>>)")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Value.Equal(iql.Int(3)) {
		t.Errorf("count(library_books) = %s, want 3", res.Value)
	}
	// Column extents reachable with suffix resolution.
	res, err = ig.Query("[x | {k, x} <- <<shop_items, price>>]")
	if err != nil {
		t.Fatal(err)
	}
	if res.Value.Len() != 2 {
		t.Errorf("price extent = %s", res.Value)
	}
}

func TestFederateTwiceFails(t *testing.T) {
	ig := newIntegrator(t)
	if _, err := ig.Federate("F"); err != nil {
		t.Fatal(err)
	}
	if _, err := ig.Federate("F2"); err == nil {
		t.Fatal("second Federate succeeded, want error")
	}
}

func TestIntersectBagUnionSemantics(t *testing.T) {
	ig := newIntegrator(t)
	if _, err := ig.Federate("F"); err != nil {
		t.Fatal(err)
	}
	in, err := ig.Intersect("I1", bookMappings(), "Q1")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(in.Sources); got != 2 {
		t.Fatalf("intersection sources = %v", in.Sources)
	}
	// UBook = 3 library + 2 shop = 5 (bag union, duplicates kept).
	res, err := ig.Query("count(<<UBook>>)")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Value.Equal(iql.Int(5)) {
		t.Errorf("count(UBook) = %s, want 5", res.Value)
	}
	// The overlapping ISBN appears twice, once per source.
	res, err = ig.Query("[{s, k} | {s, k, x} <- <<UBook, isbn>>; x = '978-2']")
	if err != nil {
		t.Fatal(err)
	}
	want := iql.Bag(
		iql.Tuple(iql.Str("LIB"), iql.Int(2)),
		iql.Tuple(iql.Str("SHOP"), iql.Str("S1")),
	)
	if !res.Value.Equal(want) {
		t.Errorf("isbn 978-2 owners = %s, want %s", res.Value, want)
	}
}

func TestIntersectionPathwayNormalForm(t *testing.T) {
	ig := newIntegrator(t)
	if _, err := ig.Federate("F"); err != nil {
		t.Fatal(err)
	}
	in, err := ig.Intersect("I1", bookMappings())
	if err != nil {
		t.Fatal(err)
	}
	for src, pw := range in.PathwayBySource {
		if err := pw.IsIntersectionForm(); err != nil {
			t.Errorf("pathway for %s not in normal form: %v", src, err)
		}
		// Applying the pathway to the source schema must yield exactly
		// the intersection schema's objects.
		srcSchema := ig.sourceSchema(src)
		derived, err := applyForTest(srcSchema, pw)
		if err != nil {
			t.Fatalf("applying pathway for %s: %v", src, err)
		}
		if derived.Len() != in.Schema.Len() {
			t.Errorf("pathway for %s yields %d objects, intersection has %d",
				src, derived.Len(), in.Schema.Len())
		}
		for _, sc := range in.Targets {
			if !derived.Has(sc) {
				t.Errorf("pathway for %s missing target %s", src, sc)
			}
		}
	}
	// Effort: 6 manual adds (3 mappings × 2 sources), each source
	// deletes its mapped table+2 columns, contracts the remainder.
	if in.Counts.ManualAdds != 6 {
		t.Errorf("ManualAdds = %d, want 6", in.Counts.ManualAdds)
	}
	if in.Counts.AutoDeletes != 6 { // books,isbn,title + items,barcode,name
		t.Errorf("AutoDeletes = %d, want 6", in.Counts.AutoDeletes)
	}
	// Library: 5 objects − 3 deleted = 2 contracts; Shop: 5 − 3 = 2.
	if in.Counts.AutoContracts != 4 {
		t.Errorf("AutoContracts = %d, want 4", in.Counts.AutoContracts)
	}
	// Ident between the two images: one id per intersection object.
	if in.Counts.AutoIDs != 3 {
		t.Errorf("AutoIDs = %d, want 3", in.Counts.AutoIDs)
	}
}

func TestGlobalSchemaWithRedundancyDrop(t *testing.T) {
	ig := newIntegrator(t)
	if _, err := ig.Federate("F"); err != nil {
		t.Fatal(err)
	}
	if _, err := ig.Intersect("I1", bookMappings()); err != nil {
		t.Fatal(err)
	}
	g, err := ig.BuildGlobal(true)
	if err != nil {
		t.Fatal(err)
	}
	// G = 3 intersection objects + (13 federated − 6 redundant) = 10.
	if g.Len() != 10 {
		t.Fatalf("global schema has %d objects, want 10:\n%s", g.Len(), g.Describe())
	}
	// Redundant objects are gone...
	if g.Has(hdm.NewScheme("library_books")) {
		t.Error("library_books should have been dropped as redundant")
	}
	// ...but non-mapped ones stay.
	for _, keep := range []string{"library_books_shelf", "shop_items_price", "archive_scans"} {
		_ = keep
	}
	if !g.Has(hdm.NewScheme("library_books", "shelf")) {
		t.Error("library_books.shelf should remain")
	}
	if !g.Has(hdm.NewScheme("shop_items", "price")) {
		t.Error("shop_items.price should remain")
	}
	if !g.Has(hdm.NewScheme("archive_scans")) {
		t.Error("archive_scans should remain")
	}
	// Queries over dropped objects now fail...
	if _, err := ig.Query("count(<<library_books>>)"); err == nil {
		t.Error("query over dropped object succeeded")
	}
	// ...while the intersection subsumes their extents.
	res, err := ig.Query("count(<<UBook>>)")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Value.Equal(iql.Int(5)) {
		t.Errorf("count(UBook) = %s, want 5", res.Value)
	}
	// Un-dropped source data still reachable through the federation
	// remainder, joined with intersection data.
	res, err = ig.Query("[x | {s, k, ttl} <- <<UBook, title>>; s = 'LIB'; {k2, x} <- <<library_books, shelf>>; k = k2]")
	if err != nil {
		t.Fatal(err)
	}
	if res.Value.Len() != 3 {
		t.Errorf("shelf join = %s, want 3 shelves", res.Value)
	}
}

func TestGlobalSchemaWithoutDropKeepsEverything(t *testing.T) {
	ig := newIntegrator(t)
	if _, err := ig.Federate("F"); err != nil {
		t.Fatal(err)
	}
	if _, err := ig.Intersect("I1", bookMappings()); err != nil {
		t.Fatal(err)
	}
	g, err := ig.BuildGlobal(false)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 16 { // 3 + 13
		t.Fatalf("global schema has %d objects, want 16", g.Len())
	}
	res, err := ig.Query("count(<<library_books>>)")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Value.Equal(iql.Int(3)) {
		t.Errorf("count(library_books) = %s, want 3", res.Value)
	}
}

func TestRefineAddsConceptFromSingleSource(t *testing.T) {
	ig := newIntegrator(t)
	if _, err := ig.Federate("F"); err != nil {
		t.Fatal(err)
	}
	if _, err := ig.Intersect("I1", bookMappings()); err != nil {
		t.Fatal(err)
	}
	err := ig.Refine("add-price", Mapping{
		Target:  "<<UBook, price>>",
		Forward: []SourceQuery{From("Shop", "[{'SHOP', k, x} | {k, x} <- <<items, price>>]")},
	}, "Q2")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ig.BuildGlobal(true); err != nil {
		t.Fatal(err)
	}
	res, err := ig.Query("[x | {s, k, x} <- <<UBook, price>>]")
	if err != nil {
		t.Fatal(err)
	}
	if res.Value.Len() != 2 {
		t.Errorf("UBook.price = %s", res.Value)
	}
	rep := ig.Report()
	found := false
	for _, it := range rep.Iterations {
		if it.Kind == "refinement" && it.Counts.ManualAdds == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("refinement iteration not recorded: %+v", rep.Iterations)
	}
}

func TestDerivedConcept(t *testing.T) {
	ig := newIntegrator(t)
	if _, err := ig.Federate("F"); err != nil {
		t.Fatal(err)
	}
	mappings := append(bookMappings(), Mapping{
		Target: "<<UBookPair>>",
		Forward: []SourceQuery{Derived(
			"[{k1, k2} | {s1, k1, x} <- <<UBook, isbn>>; {s2, k2, y} <- <<UBook, isbn>>; x = y; s1 = 'LIB'; s2 = 'SHOP']",
		)},
	})
	in, err := ig.Intersect("I1", mappings)
	if err != nil {
		t.Fatal(err)
	}
	if len(in.Derived) != 1 {
		t.Fatalf("derived concepts = %v", in.Derived)
	}
	// The derived join finds the one overlapping book.
	res, err := ig.Query("count(<<UBookPair>>)")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Value.Equal(iql.Int(1)) {
		t.Errorf("count(UBookPair) = %s, want 1", res.Value)
	}
	// Derived concepts are global-level: not part of the
	// union-compatible images.
	for src, pw := range in.PathwayBySource {
		for _, st := range pw.Steps {
			if st.Object.Equal(hdm.NewScheme("UBookPair")) {
				t.Errorf("derived concept leaked into pathway for %s", src)
			}
		}
	}
}

func TestAutoParentEntity(t *testing.T) {
	ig := newIntegrator(t)
	if _, err := ig.Federate("F"); err != nil {
		t.Fatal(err)
	}
	// Map only attributes; the tool must create <<UBook>> itself.
	mappings := []Mapping{
		Attribute("<<UBook, isbn>>",
			From("Library", "[{'LIB', k, x} | {k, x} <- <<books, isbn>>]"),
			From("Shop", "[{'SHOP', k, x} | {k, x} <- <<items, barcode>>]"),
		),
	}
	in, err := ig.Intersect("I1", mappings)
	if err != nil {
		t.Fatal(err)
	}
	if in.Counts.ManualAdds != 2 {
		t.Errorf("ManualAdds = %d, want 2 (parents are automatic)", in.Counts.ManualAdds)
	}
	if in.Counts.AutoAdds != 2 {
		t.Errorf("AutoAdds = %d, want 2", in.Counts.AutoAdds)
	}
	res, err := ig.Query("count(<<UBook>>)")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Value.Equal(iql.Int(5)) {
		t.Errorf("count(UBook) = %s, want 5", res.Value)
	}
}

func TestReverseProcessorAnswersSourceQueries(t *testing.T) {
	ig := newIntegrator(t)
	if _, err := ig.Federate("F"); err != nil {
		t.Fatal(err)
	}
	if _, err := ig.Intersect("I1", bookMappings()); err != nil {
		t.Fatal(err)
	}
	if _, err := ig.BuildGlobal(true); err != nil {
		t.Fatal(err)
	}
	rp, err := ig.ReverseProcessor()
	if err != nil {
		t.Fatal(err)
	}
	// The original Library <<books>> extent is recoverable from the
	// global schema via the reversed pathway (LAV direction).
	v, err := rp.Query("[k | k <- <<books>>]")
	if err != nil {
		t.Fatal(err)
	}
	if !v.Equal(iql.Bag(iql.Int(1), iql.Int(2), iql.Int(3))) {
		t.Errorf("reverse books = %s", v)
	}
	// Column extents too.
	v, err = rp.Query("[{k, x} | {k, x} <- <<books, isbn>>]")
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != 3 {
		t.Errorf("reverse books.isbn = %s", v)
	}
	// A contracted object has no information: empty with a warning.
	v, err = rp.Query("[{k, x} | {k, x} <- <<books, shelf>>]")
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != 0 {
		t.Errorf("reverse books.shelf = %s, want empty", v)
	}
	warned := false
	for _, w := range rp.Warnings() {
		if strings.Contains(w, "books, shelf") {
			warned = true
		}
	}
	if !warned {
		t.Errorf("no incompleteness warning for contracted object; warnings: %v", rp.Warnings())
	}
}

func TestIntersectErrors(t *testing.T) {
	ig := newIntegrator(t)
	// Before federation.
	if _, err := ig.Intersect("I1", bookMappings()); err == nil {
		t.Error("Intersect before Federate succeeded")
	}
	if _, err := ig.Federate("F"); err != nil {
		t.Fatal(err)
	}
	// No mappings.
	if _, err := ig.Intersect("I1", nil); err == nil {
		t.Error("empty mappings succeeded")
	}
	// Unknown source.
	_, err := ig.Intersect("I1", []Mapping{
		Entity("<<U>>", From("NoSuch", "[k | k <- <<books>>]")),
	})
	if err == nil {
		t.Error("unknown source succeeded")
	}
	// Bad IQL.
	_, err = ig.Intersect("I1", []Mapping{
		Entity("<<U>>", From("Library", "[k | <-")),
	})
	if err == nil {
		t.Error("bad IQL succeeded")
	}
	// Bad target scheme.
	_, err = ig.Intersect("I1", []Mapping{
		Entity("<<>>", From("Library", "[k | k <- <<books>>]")),
	})
	if err == nil {
		t.Error("bad target succeeded")
	}
}

// applyForTest applies a pathway to a schema clone.
func applyForTest(src *hdm.Schema, pw *transform.Pathway) (*hdm.Schema, error) {
	return transform.ApplyPathway(src, pw, false)
}
