package rel

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"
)

func sampleTable(t *testing.T) *Table {
	t.Helper()
	tbl, err := NewTable("protein", []Column{
		{Name: "id", Type: Int},
		{Name: "acc", Type: String},
		{Name: "mass", Type: Float},
		{Name: "reviewed", Type: Bool},
	}, "id")
	if err != nil {
		t.Fatal(err)
	}
	tbl.MustInsert(int64(1), "P1", 100.5, true)
	tbl.MustInsert(int64(2), "P2", 200.0, false)
	tbl.MustInsert(int64(3), "P1", 300.25, true)
	return tbl
}

func TestTableBasics(t *testing.T) {
	tbl := sampleTable(t)
	if tbl.Len() != 3 {
		t.Fatalf("Len = %d", tbl.Len())
	}
	if tbl.PrimaryKey() != "id" {
		t.Errorf("pk = %q", tbl.PrimaryKey())
	}
	row, ok := tbl.Lookup(int64(2))
	if !ok || row[1] != "P2" {
		t.Errorf("Lookup = %v %v", row, ok)
	}
	v, err := tbl.Value(int64(3), "mass")
	if err != nil || v != 300.25 {
		t.Errorf("Value = %v %v", v, err)
	}
	if _, err := tbl.Value(int64(9), "mass"); err == nil {
		t.Error("Value of missing row succeeded")
	}
	if _, err := tbl.Value(int64(1), "nope"); err == nil {
		t.Error("Value of missing column succeeded")
	}
	keys := tbl.Keys()
	if len(keys) != 3 || keys[0] != int64(1) {
		t.Errorf("Keys = %v", keys)
	}
}

func TestTableErrors(t *testing.T) {
	if _, err := NewTable("", []Column{{Name: "a"}}, ""); err == nil {
		t.Error("empty table name accepted")
	}
	if _, err := NewTable("t", nil, ""); err == nil {
		t.Error("no columns accepted")
	}
	if _, err := NewTable("t", []Column{{Name: "a"}, {Name: "a"}}, ""); err == nil {
		t.Error("duplicate column accepted")
	}
	if _, err := NewTable("t", []Column{{Name: "a"}}, "zz"); err == nil {
		t.Error("bogus pk accepted")
	}
	tbl := sampleTable(t)
	if err := tbl.Insert(int64(1), "dup", 0.0, false); err == nil {
		t.Error("duplicate pk accepted")
	}
	if err := tbl.Insert(int64(9), "x", 1.0); err == nil {
		t.Error("short row accepted")
	}
	if err := tbl.Insert("str", "x", 1.0, false); err == nil {
		t.Error("wrongly typed pk accepted")
	}
	if err := tbl.Insert(nil, "x", 1.0, false); err == nil {
		t.Error("nil pk accepted")
	}
	if err := tbl.Insert(int64(9), "x", "notfloat", false); err == nil {
		t.Error("wrongly typed cell accepted")
	}
}

func TestNullableCells(t *testing.T) {
	tbl := sampleTable(t)
	if err := tbl.Insert(int64(4), nil, nil, nil); err != nil {
		t.Fatalf("nil non-key cells rejected: %v", err)
	}
	pairs, err := tbl.ColumnPairs("acc")
	if err != nil {
		t.Fatal(err)
	}
	// nil cells are absent from the column extent.
	if len(pairs) != 3 {
		t.Errorf("ColumnPairs = %d pairs, want 3", len(pairs))
	}
}

func TestSelectProject(t *testing.T) {
	tbl := sampleTable(t)
	sel := tbl.Select(func(row []any) bool { return row[3] == true })
	if len(sel) != 2 {
		t.Errorf("Select = %d rows", len(sel))
	}
	proj, err := tbl.Project("acc", "mass")
	if err != nil {
		t.Fatal(err)
	}
	if len(proj) != 3 || proj[0][0] != "P1" || proj[0][1] != 100.5 {
		t.Errorf("Project = %v", proj)
	}
	if _, err := tbl.Project("nope"); err == nil {
		t.Error("Project of missing column succeeded")
	}
}

func TestJoin(t *testing.T) {
	db := NewDB("test")
	a := db.MustCreateTable("a", []Column{{Name: "id", Type: Int}, {Name: "ref", Type: Int}}, "id")
	b := db.MustCreateTable("b", []Column{{Name: "id", Type: Int}, {Name: "v", Type: String}}, "id")
	a.MustInsert(int64(1), int64(10))
	a.MustInsert(int64(2), int64(20))
	a.MustInsert(int64(3), nil)
	b.MustInsert(int64(10), "x")
	b.MustInsert(int64(20), "y")
	rows, err := Join(a, b, "ref", "id")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || len(rows[0]) != 4 {
		t.Fatalf("Join = %v", rows)
	}
	if _, err := Join(a, b, "nope", "id"); err == nil {
		t.Error("Join on missing column succeeded")
	}
}

func TestForeignKeys(t *testing.T) {
	db := NewDB("test")
	parent := db.MustCreateTable("parent", []Column{{Name: "id", Type: Int}}, "id")
	child := db.MustCreateTable("child", []Column{{Name: "id", Type: Int}, {Name: "pid", Type: Int}}, "id")
	parent.MustInsert(int64(1))
	child.MustInsert(int64(10), int64(1))
	if err := db.AddForeignKey("child", "pid", "parent"); err != nil {
		t.Fatal(err)
	}
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
	child.MustInsert(int64(11), int64(99)) // dangling
	if err := db.Validate(); err == nil {
		t.Error("dangling fk passed Validate")
	}
	if err := db.AddForeignKey("child", "pid", "missing"); err == nil {
		t.Error("fk to missing table accepted")
	}
	if err := db.AddForeignKey("missing", "pid", "parent"); err == nil {
		t.Error("fk on missing table accepted")
	}
}

func TestDBBasics(t *testing.T) {
	db := NewDB("d")
	db.MustCreateTable("t1", []Column{{Name: "id", Type: Int}}, "")
	if _, err := db.CreateTable("t1", []Column{{Name: "id", Type: Int}}, ""); err == nil {
		t.Error("duplicate table accepted")
	}
	db.MustCreateTable("t2", []Column{{Name: "id", Type: Int}}, "")
	if got := db.TableNames(); len(got) != 2 || got[0] != "t1" {
		t.Errorf("TableNames = %v", got)
	}
	if len(db.Stats()) != 2 {
		t.Errorf("Stats = %v", db.Stats())
	}
}

func TestCSVRoundTrip(t *testing.T) {
	db := NewDB("round")
	tbl := db.MustCreateTable("mixed", []Column{
		{Name: "k", Type: String},
		{Name: "i", Type: Int},
		{Name: "f", Type: Float},
		{Name: "b", Type: Bool},
	}, "k")
	tbl.MustInsert("a", int64(1), 1.5, true)
	tbl.MustInsert("b", int64(-2), 0.25, false)
	tbl.MustInsert("c", nil, nil, nil)
	// Values with CSV-hostile content.
	tbl.MustInsert("quote\"and,comma", int64(3), 3.0, true)

	dir := t.TempDir()
	if err := WriteCSVDir(db, dir); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCSVDir("round", dir)
	if err != nil {
		t.Fatal(err)
	}
	bt, ok := back.Table("mixed")
	if !ok {
		t.Fatal("table lost")
	}
	if bt.Len() != tbl.Len() {
		t.Fatalf("rows = %d, want %d", bt.Len(), tbl.Len())
	}
	if bt.PrimaryKey() != "k" {
		t.Errorf("pk lost: %q", bt.PrimaryKey())
	}
	for i := range tbl.Rows() {
		if !reflect.DeepEqual(tbl.Row(i), bt.Row(i)) {
			t.Errorf("row %d: %v != %v", i, tbl.Row(i), bt.Row(i))
		}
	}
	// Types preserved.
	ty, _ := bt.ColumnType("f")
	if ty != Float {
		t.Errorf("column type lost: %v", ty)
	}
}

// genRow generates a random typed row for the CSV round-trip property.
type genRows struct {
	rows [][]any
}

func (genRows) Generate(r *rand.Rand, size int) reflect.Value {
	n := 1 + r.Intn(20)
	rows := make([][]any, n)
	for i := range rows {
		rows[i] = []any{
			// Unique string key without problematic characters is not
			// required — CSV must quote anything.
			string(rune('a'+i%26)) + string(rune('0'+i/26%10)) + string(rune('0'+i/260)),
			int64(r.Intn(2000) - 1000),
			float64(r.Intn(1000)) / 8,
			r.Intn(2) == 0,
		}
	}
	return reflect.ValueOf(genRows{rows: rows})
}

func TestCSVRoundTripProperty(t *testing.T) {
	dir := t.TempDir()
	i := 0
	f := func(g genRows) bool {
		i++
		db := NewDB("p")
		tbl := db.MustCreateTable("t", []Column{
			{Name: "k", Type: String},
			{Name: "i", Type: Int},
			{Name: "f", Type: Float},
			{Name: "b", Type: Bool},
		}, "k")
		for _, row := range g.rows {
			if err := tbl.Insert(row...); err != nil {
				return true // duplicate key: skip case
			}
		}
		sub := filepath.Join(dir, string(rune('a'+i%26))+string(rune('a'+i/26%26)))
		var buf bytes.Buffer
		if err := WriteCSV(tbl, &buf); err != nil {
			return false
		}
		back := NewDB("q")
		if err := ReadCSV(back, "t", &buf); err != nil {
			return false
		}
		bt, _ := back.Table("t")
		if bt.Len() != tbl.Len() {
			return false
		}
		for j := range tbl.Rows() {
			if !reflect.DeepEqual(tbl.Row(j), bt.Row(j)) {
				return false
			}
		}
		_ = sub
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestTypeParseRoundTrip(t *testing.T) {
	for _, ty := range []Type{String, Int, Float, Bool} {
		rt, err := ParseType(ty.String())
		if err != nil || rt != ty {
			t.Errorf("type %v round trip failed", ty)
		}
	}
	if _, err := ParseType("decimal"); err == nil {
		t.Error("ParseType(decimal) succeeded")
	}
}
