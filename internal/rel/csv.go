package rel

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// CSV import/export. A database maps to a directory of <table>.csv
// files. The header row encodes column names and types as "name:type";
// the first header cell may carry a "!pk" suffix marker when the primary
// key is not the first column.

// WriteCSVDir writes every table of db into dir (created if needed) as
// <table>.csv.
func WriteCSVDir(db *DB, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("rel: %w", err)
	}
	for _, t := range db.Tables() {
		f, err := os.Create(filepath.Join(dir, t.Name()+".csv"))
		if err != nil {
			return fmt.Errorf("rel: %w", err)
		}
		err = WriteCSV(t, f)
		cerr := f.Close()
		if err != nil {
			return err
		}
		if cerr != nil {
			return fmt.Errorf("rel: %w", cerr)
		}
	}
	return nil
}

// WriteCSV writes one table in the typed-header CSV format.
func WriteCSV(t *Table, w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, len(t.cols))
	for i, c := range t.cols {
		h := c.Name + ":" + c.Type.String()
		if c.Name == t.pk {
			h += "!pk"
		}
		header[i] = h
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("rel: %w", err)
	}
	for _, row := range t.rows {
		rec := make([]string, len(row))
		for i, v := range row {
			rec[i] = formatCell(v)
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("rel: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

func formatCell(v any) string {
	switch x := v.(type) {
	case nil:
		return ""
	case string:
		return x
	case int64:
		return strconv.FormatInt(x, 10)
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	case bool:
		return strconv.FormatBool(x)
	}
	return fmt.Sprintf("%v", v)
}

// LoadCSVDir reads every *.csv file in dir into a new database named
// name. Files load in sorted order for determinism.
func LoadCSVDir(name, dir string) (*DB, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("rel: %w", err)
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".csv") {
			files = append(files, e.Name())
		}
	}
	sort.Strings(files)
	db := NewDB(name)
	for _, fn := range files {
		f, err := os.Open(filepath.Join(dir, fn))
		if err != nil {
			return nil, fmt.Errorf("rel: %w", err)
		}
		table := strings.TrimSuffix(fn, ".csv")
		err = loadCSVInto(db, table, f)
		cerr := f.Close()
		if err != nil {
			return nil, fmt.Errorf("rel: %s: %w", fn, err)
		}
		if cerr != nil {
			return nil, fmt.Errorf("rel: %w", cerr)
		}
	}
	return db, nil
}

// ReadCSV reads one table in the typed-header format.
func ReadCSV(db *DB, table string, r io.Reader) error {
	return loadCSVInto(db, table, r)
}

func loadCSVInto(db *DB, table string, r io.Reader) error {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return fmt.Errorf("reading header: %w", err)
	}
	cols := make([]Column, len(header))
	pk := ""
	for i, h := range header {
		isPK := strings.HasSuffix(h, "!pk")
		h = strings.TrimSuffix(h, "!pk")
		name, typ := h, "string"
		if j := strings.LastIndex(h, ":"); j >= 0 {
			name, typ = h[:j], h[j+1:]
		}
		ty, err := ParseType(typ)
		if err != nil {
			return fmt.Errorf("column %q: %w", h, err)
		}
		cols[i] = Column{Name: name, Type: ty}
		if isPK {
			pk = name
		}
	}
	t, err := db.CreateTable(table, cols, pk)
	if err != nil {
		return err
	}
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("reading rows: %w", err)
		}
		if len(rec) != len(cols) {
			return fmt.Errorf("row has %d cells, want %d", len(rec), len(cols))
		}
		vals := make([]any, len(rec))
		for i, cell := range rec {
			v, err := parseCell(cols[i], cell)
			if err != nil {
				return err
			}
			vals[i] = v
		}
		if err := t.Insert(vals...); err != nil {
			return err
		}
	}
}

func parseCell(c Column, cell string) (any, error) {
	if cell == "" && c.Type != String {
		return nil, nil
	}
	switch c.Type {
	case String:
		return cell, nil
	case Int:
		i, err := strconv.ParseInt(cell, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("column %q: bad int %q", c.Name, cell)
		}
		return i, nil
	case Float:
		f, err := strconv.ParseFloat(cell, 64)
		if err != nil {
			return nil, fmt.Errorf("column %q: bad float %q", c.Name, cell)
		}
		return f, nil
	case Bool:
		b, err := strconv.ParseBool(cell)
		if err != nil {
			return nil, fmt.Errorf("column %q: bad bool %q", c.Name, cell)
		}
		return b, nil
	}
	return nil, fmt.Errorf("column %q: unknown type", c.Name)
}
