// Package rel implements a small in-memory relational engine that serves
// as the data-source substrate for the integration experiments: the
// paper's case study integrates three relational proteomics databases
// (Pedro, gpmDB, PepSeeker), which this package simulates.
//
// The engine supports typed columns, primary and foreign keys, row
// insertion with validation, scans, selection/projection/join helpers
// and CSV import/export. It is intentionally not a SQL engine: sources
// are accessed through AutoMed-style wrappers (package wrapper), which
// only need key and column extents.
package rel

import (
	"fmt"
	"sort"
	"strconv"
)

// Type is a column type.
type Type int

// Column types.
const (
	String Type = iota
	Int
	Float
	Bool
)

// String names the type (used in CSV headers).
func (t Type) String() string {
	switch t {
	case String:
		return "string"
	case Int:
		return "int"
	case Float:
		return "float"
	case Bool:
		return "bool"
	}
	return fmt.Sprintf("Type(%d)", int(t))
}

// ParseType converts a type name back to a Type.
func ParseType(s string) (Type, error) {
	switch s {
	case "string":
		return String, nil
	case "int":
		return Int, nil
	case "float":
		return Float, nil
	case "bool":
		return Bool, nil
	}
	return 0, fmt.Errorf("rel: unknown type %q", s)
}

// Column describes a table column.
type Column struct {
	Name string
	Type Type
}

// ForeignKey declares that values of Column reference the primary key of
// RefTable.
type ForeignKey struct {
	Column   string
	RefTable string
}

// Table is a relation with a mandatory single-column primary key (the
// first declared column by convention, unless overridden).
type Table struct {
	name    string
	cols    []Column
	colIdx  map[string]int
	pk      string
	fks     []ForeignKey
	rows    [][]any
	pkIndex map[string]int // primary-key value key → row index
}

// NewTable creates a table. pk must name one of cols; if pk is empty the
// first column is the primary key.
func NewTable(name string, cols []Column, pk string) (*Table, error) {
	if name == "" {
		return nil, fmt.Errorf("rel: empty table name")
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("rel: table %q needs at least one column", name)
	}
	t := &Table{
		name:    name,
		cols:    append([]Column(nil), cols...),
		colIdx:  make(map[string]int, len(cols)),
		pkIndex: make(map[string]int),
	}
	for i, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("rel: table %q: column %d has empty name", name, i)
		}
		if _, dup := t.colIdx[c.Name]; dup {
			return nil, fmt.Errorf("rel: table %q: duplicate column %q", name, c.Name)
		}
		t.colIdx[c.Name] = i
	}
	if pk == "" {
		pk = cols[0].Name
	}
	if _, ok := t.colIdx[pk]; !ok {
		return nil, fmt.Errorf("rel: table %q: primary key %q is not a column", name, pk)
	}
	t.pk = pk
	return t, nil
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Columns returns a copy of the column descriptors.
func (t *Table) Columns() []Column { return append([]Column(nil), t.cols...) }

// ColumnNames returns the column names in declaration order.
func (t *Table) ColumnNames() []string {
	out := make([]string, len(t.cols))
	for i, c := range t.cols {
		out[i] = c.Name
	}
	return out
}

// HasColumn reports whether the table has the named column.
func (t *Table) HasColumn(name string) bool { _, ok := t.colIdx[name]; return ok }

// ColumnType returns the named column's type.
func (t *Table) ColumnType(name string) (Type, error) {
	i, ok := t.colIdx[name]
	if !ok {
		return 0, fmt.Errorf("rel: table %q has no column %q", t.name, name)
	}
	return t.cols[i].Type, nil
}

// PrimaryKey returns the primary key column name.
func (t *Table) PrimaryKey() string { return t.pk }

// ForeignKeys returns the declared foreign keys.
func (t *Table) ForeignKeys() []ForeignKey { return append([]ForeignKey(nil), t.fks...) }

// Len returns the number of rows.
func (t *Table) Len() int { return len(t.rows) }

// valueKey canonicalises a cell value for keying.
func valueKey(v any) string {
	switch x := v.(type) {
	case nil:
		return "∅"
	case string:
		return "s" + x
	case int64:
		return "i" + strconv.FormatInt(x, 10)
	case float64:
		return "f" + strconv.FormatFloat(x, 'g', -1, 64)
	case bool:
		if x {
			return "b1"
		}
		return "b0"
	}
	return fmt.Sprintf("?%v", v)
}

// checkType verifies that a cell value matches a column type; nil is
// allowed in non-key columns.
func checkType(c Column, v any) error {
	if v == nil {
		return nil
	}
	ok := false
	switch c.Type {
	case String:
		_, ok = v.(string)
	case Int:
		_, ok = v.(int64)
	case Float:
		_, ok = v.(float64)
	case Bool:
		_, ok = v.(bool)
	}
	if !ok {
		return fmt.Errorf("rel: column %q expects %s, got %T", c.Name, c.Type, v)
	}
	return nil
}

// Insert appends a row given in column declaration order. Integer
// values must be int64 and floats float64. The primary key must be
// non-nil and unique.
func (t *Table) Insert(vals ...any) error {
	if len(vals) != len(t.cols) {
		return fmt.Errorf("rel: table %q expects %d values, got %d", t.name, len(t.cols), len(vals))
	}
	for i, v := range vals {
		if err := checkType(t.cols[i], v); err != nil {
			return fmt.Errorf("rel: table %q: %w", t.name, err)
		}
	}
	pkv := vals[t.colIdx[t.pk]]
	if pkv == nil {
		return fmt.Errorf("rel: table %q: nil primary key", t.name)
	}
	k := valueKey(pkv)
	if _, dup := t.pkIndex[k]; dup {
		return fmt.Errorf("rel: table %q: duplicate primary key %v", t.name, pkv)
	}
	row := append([]any(nil), vals...)
	t.pkIndex[k] = len(t.rows)
	t.rows = append(t.rows, row)
	return nil
}

// MustInsert is Insert that panics on error; for generators and tests.
func (t *Table) MustInsert(vals ...any) {
	if err := t.Insert(vals...); err != nil {
		panic(err)
	}
}

// Row returns the i-th row (shared slice; callers must not mutate).
func (t *Table) Row(i int) []any { return t.rows[i] }

// Rows returns all rows (shared; callers must not mutate).
func (t *Table) Rows() [][]any { return t.rows }

// Lookup finds the row with the given primary key value.
func (t *Table) Lookup(pk any) ([]any, bool) {
	i, ok := t.pkIndex[valueKey(pk)]
	if !ok {
		return nil, false
	}
	return t.rows[i], true
}

// Value returns the named column's value in the row with the given
// primary key.
func (t *Table) Value(pk any, col string) (any, error) {
	row, ok := t.Lookup(pk)
	if !ok {
		return nil, fmt.Errorf("rel: table %q has no row with key %v", t.name, pk)
	}
	i, ok := t.colIdx[col]
	if !ok {
		return nil, fmt.Errorf("rel: table %q has no column %q", t.name, col)
	}
	return row[i], nil
}

// Keys returns the primary key values of every row, in insertion order.
func (t *Table) Keys() []any {
	out := make([]any, len(t.rows))
	pi := t.colIdx[t.pk]
	for i, r := range t.rows {
		out[i] = r[pi]
	}
	return out
}

// ColumnPairs returns {key, value} pairs for the named column across all
// rows whose value is non-nil, in insertion order. This is the AutoMed
// extent of a column construct.
func (t *Table) ColumnPairs(col string) ([][2]any, error) {
	ci, ok := t.colIdx[col]
	if !ok {
		return nil, fmt.Errorf("rel: table %q has no column %q", t.name, col)
	}
	pi := t.colIdx[t.pk]
	out := make([][2]any, 0, len(t.rows))
	for _, r := range t.rows {
		if r[ci] == nil {
			continue
		}
		out = append(out, [2]any{r[pi], r[ci]})
	}
	return out, nil
}

// Select returns the rows satisfying pred.
func (t *Table) Select(pred func(row []any) bool) [][]any {
	var out [][]any
	for _, r := range t.rows {
		if pred(r) {
			out = append(out, r)
		}
	}
	return out
}

// Project returns the named columns of every row.
func (t *Table) Project(cols ...string) ([][]any, error) {
	idx := make([]int, len(cols))
	for i, c := range cols {
		j, ok := t.colIdx[c]
		if !ok {
			return nil, fmt.Errorf("rel: table %q has no column %q", t.name, c)
		}
		idx[i] = j
	}
	out := make([][]any, len(t.rows))
	for i, r := range t.rows {
		row := make([]any, len(idx))
		for j, k := range idx {
			row[j] = r[k]
		}
		out[i] = row
	}
	return out, nil
}

// ColIndex exposes the index of a column within rows, for join helpers.
func (t *Table) ColIndex(name string) (int, bool) {
	i, ok := t.colIdx[name]
	return i, ok
}

// DB is a named collection of tables.
type DB struct {
	name   string
	tables map[string]*Table
	order  []string
}

// NewDB returns an empty database.
func NewDB(name string) *DB {
	return &DB{name: name, tables: make(map[string]*Table)}
}

// Name returns the database name.
func (db *DB) Name() string { return db.name }

// CreateTable adds a table; duplicate names are an error.
func (db *DB) CreateTable(name string, cols []Column, pk string) (*Table, error) {
	if _, dup := db.tables[name]; dup {
		return nil, fmt.Errorf("rel: db %q already has table %q", db.name, name)
	}
	t, err := NewTable(name, cols, pk)
	if err != nil {
		return nil, err
	}
	db.tables[name] = t
	db.order = append(db.order, name)
	return t, nil
}

// MustCreateTable is CreateTable that panics on error.
func (db *DB) MustCreateTable(name string, cols []Column, pk string) *Table {
	t, err := db.CreateTable(name, cols, pk)
	if err != nil {
		panic(err)
	}
	return t
}

// Table returns the named table.
func (db *DB) Table(name string) (*Table, bool) {
	t, ok := db.tables[name]
	return t, ok
}

// Tables returns tables in creation order.
func (db *DB) Tables() []*Table {
	out := make([]*Table, 0, len(db.order))
	for _, n := range db.order {
		out = append(out, db.tables[n])
	}
	return out
}

// TableNames returns table names in creation order.
func (db *DB) TableNames() []string { return append([]string(nil), db.order...) }

// AddForeignKey declares and immediately validates a foreign key.
func (db *DB) AddForeignKey(table, column, refTable string) error {
	t, ok := db.tables[table]
	if !ok {
		return fmt.Errorf("rel: db %q has no table %q", db.name, table)
	}
	if !t.HasColumn(column) {
		return fmt.Errorf("rel: table %q has no column %q", table, column)
	}
	ref, ok := db.tables[refTable]
	if !ok {
		return fmt.Errorf("rel: db %q has no table %q", db.name, refTable)
	}
	ci, _ := t.ColIndex(column)
	for _, r := range t.rows {
		if r[ci] == nil {
			continue
		}
		if _, ok := ref.Lookup(r[ci]); !ok {
			return fmt.Errorf("rel: fk %s.%s -> %s: dangling value %v", table, column, refTable, r[ci])
		}
	}
	t.fks = append(t.fks, ForeignKey{Column: column, RefTable: refTable})
	return nil
}

// Validate re-checks all declared foreign keys (e.g. after bulk loads).
func (db *DB) Validate() error {
	for _, t := range db.Tables() {
		for _, fk := range t.fks {
			ref, ok := db.tables[fk.RefTable]
			if !ok {
				return fmt.Errorf("rel: fk %s.%s: missing table %q", t.name, fk.Column, fk.RefTable)
			}
			ci, _ := t.ColIndex(fk.Column)
			for _, r := range t.rows {
				if r[ci] == nil {
					continue
				}
				if _, ok := ref.Lookup(r[ci]); !ok {
					return fmt.Errorf("rel: fk %s.%s -> %s: dangling value %v",
						t.name, fk.Column, fk.RefTable, r[ci])
				}
			}
		}
	}
	return nil
}

// Stats summarises row counts per table, sorted by table name.
func (db *DB) Stats() []string {
	names := append([]string(nil), db.order...)
	sort.Strings(names)
	out := make([]string, 0, len(names))
	for _, n := range names {
		out = append(out, fmt.Sprintf("%s: %d rows", n, db.tables[n].Len()))
	}
	return out
}

// Join performs an equi-join of two tables on leftCol = rightCol and
// returns concatenated rows (left columns then right columns). A hash
// join over the right side keeps it roughly linear.
func Join(left, right *Table, leftCol, rightCol string) ([][]any, error) {
	li, ok := left.ColIndex(leftCol)
	if !ok {
		return nil, fmt.Errorf("rel: table %q has no column %q", left.Name(), leftCol)
	}
	ri, ok := right.ColIndex(rightCol)
	if !ok {
		return nil, fmt.Errorf("rel: table %q has no column %q", right.Name(), rightCol)
	}
	index := make(map[string][]int)
	for i, r := range right.rows {
		if r[ri] == nil {
			continue
		}
		k := valueKey(r[ri])
		index[k] = append(index[k], i)
	}
	var out [][]any
	for _, lr := range left.rows {
		if lr[li] == nil {
			continue
		}
		for _, j := range index[valueKey(lr[li])] {
			row := make([]any, 0, len(lr)+len(right.rows[j]))
			row = append(row, lr...)
			row = append(row, right.rows[j]...)
			out = append(out, row)
		}
	}
	return out, nil
}
