package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"github.com/dataspace/automed/internal/cache"
	"github.com/dataspace/automed/internal/obs"
	"github.com/dataspace/automed/internal/query"
)

// Config tunes the dataspace server.
type Config struct {
	// PlanCacheSize bounds the shared cache of parsed IQL plans;
	// <= 0 disables plan caching.
	PlanCacheSize int
	// ResultCacheSize bounds each session's query-result cache;
	// <= 0 disables result caching.
	ResultCacheSize int
	// CacheBytes is the byte budget applied to each size-aware cache
	// layer per session (query results, extent memo, source extents);
	// LRU entries are evicted beyond it. <= 0 means unbounded.
	CacheBytes int64
	// QueryTimeout is the default per-query evaluation deadline;
	// requests may shorten it via timeout_ms. 0 means no deadline.
	QueryTimeout time.Duration
	// MaxSteps bounds IQL evaluation steps per query (a defence
	// against runaway comprehensions); 0 means unlimited.
	MaxSteps int
	// EvalParallelism is the worker count for data-parallel sharded
	// comprehension evaluation: 0 picks GOMAXPROCS, 1 forces serial
	// evaluation, larger values set the pool width explicitly.
	EvalParallelism int
	// PrefetchWorkers and PrefetchMaxTasks tune the concurrent extent
	// prefetcher per session (0 = defaults: 8 workers, 64 tasks).
	PrefetchWorkers  int
	PrefetchMaxTasks int
	// ScanBuffer is the streaming extent pipeline's row window per
	// session: source extents above it stream through a bounded buffer
	// of this many rows instead of materialising. 0 picks the package
	// default (4096 rows); negative disables streaming.
	ScanBuffer int
	// FetchPageRows is the LIMIT/OFFSET page size SQL sources created
	// through /sources fetch with; 0 picks the wrapper default (4096
	// rows), negative disables paging for those sources.
	FetchPageRows int
	// SlowQuery, when > 0, traces every query and retains those at or
	// above the threshold in the /debug/traces ring even when the
	// client did not ask for a trace.
	SlowQuery time.Duration
	// MaxInflight bounds how many admitted requests (queries and
	// integration steps) may execute concurrently; excess requests park
	// in a per-session fair queue. <= 0 disables admission control
	// (every request is admitted immediately).
	MaxInflight int
	// MaxQueue bounds the fair queue; requests arriving beyond it are
	// rejected with 429 + Retry-After. Ignored when MaxInflight <= 0.
	MaxQueue int
	// SessionWeight, when set, gives some sessions more than one grant
	// per fair-queue round-robin turn; nil weights every session 1.
	SessionWeight func(session string) int
	// TraceRingSize bounds the /debug/traces ring of recent query
	// traces; <= 0 means the default (256).
	TraceRingSize int
	// Breaker configures per-source circuit breakers and stale-extent
	// fallback on every session's query processor; the zero value
	// disables the fault-tolerance layer.
	Breaker query.BreakerConfig
	// RequireFresh makes every degraded answer (one evaluated over
	// stale fallback extents because a source was unreachable) an error
	// instead of a warning, server-wide. Individual requests opt in
	// with require_fresh / the X-Require-Fresh header.
	RequireFresh bool
	// MinFederatedSources, when > 0, lets /federate proceed with the
	// reachable subset of a session's sources as long as at least this
	// many answer a liveness probe; skipped sources are backfilled by
	// later probes. 0 requires every source (strict federation).
	MinFederatedSources int
	// ProbeInterval rate-limits the background recovery probe (open
	// breakers, skipped federation sources) that health checks trigger;
	// <= 0 means the default (5s).
	ProbeInterval time.Duration
	// Logger receives structured access and error logs; nil discards
	// them (library embedding and tests stay quiet).
	Logger *slog.Logger
}

// sessionSettings projects the per-session knobs out of the config.
func (cfg Config) sessionSettings() SessionSettings {
	return SessionSettings{
		ResultCapacity:      cfg.ResultCacheSize,
		CacheBytes:          cfg.CacheBytes,
		MaxSteps:            cfg.MaxSteps,
		EvalParallelism:     cfg.EvalParallelism,
		PrefetchWorkers:     cfg.PrefetchWorkers,
		PrefetchMaxTasks:    cfg.PrefetchMaxTasks,
		ScanBuffer:          cfg.ScanBuffer,
		Breaker:             cfg.Breaker,
		MinFederatedSources: cfg.MinFederatedSources,
	}
}

// defaultProbeInterval rate-limits health-check-triggered recovery
// probes when the config does not.
const defaultProbeInterval = 5 * time.Second

// defaultTraceRingSize bounds /debug/traces when the config does not.
const defaultTraceRingSize = 256

// DefaultConfig returns production-shaped defaults.
func DefaultConfig() Config {
	return Config{
		PlanCacheSize:   512,
		ResultCacheSize: 4096,
		CacheBytes:      256 << 20,
		QueryTimeout:    30 * time.Second,
		TraceRingSize:   defaultTraceRingSize,
		Breaker: query.BreakerConfig{
			Enabled:       true,
			SourceTimeout: 10 * time.Second,
		},
		ProbeInterval: defaultProbeInterval,
	}
}

// Server is the HTTP/JSON dataspace service: a registry of integration
// sessions, a shared plan cache, per-session result caches, and
// metrics. Obtain the routed handler with Handler.
type Server struct {
	cfg     Config
	reg     *Registry
	plans   *cache.Store[plan]
	metrics *Metrics
	traces  *obs.Ring
	adm     *admission
	log     *slog.Logger
	mux     *http.ServeMux
	// persistMu serialises all access to the store — opening it,
	// export+save, and load+replace — so that a snapshot of older
	// state can never be renamed over a newer one, and a freshly
	// restored session cannot be clobbered by the autosave of the
	// in-memory session it replaced. Saves happen only on mutating
	// endpoints, so one server-wide mutex is not a throughput concern.
	persistMu sync.Mutex
	// store, when non-nil, makes sessions durable: every mutating
	// endpoint autosaves, and the snapshot/restore endpoints are live.
	// Guarded by persistMu.
	store *Store
	// probeWG tracks in-flight background recovery probes so Drain can
	// wait for them; probeGate (unix nanos of the last probe) rate-limits
	// their launch to one per ProbeInterval.
	probeWG   sync.WaitGroup
	probeGate atomic.Int64
}

// New builds a server.
func New(cfg Config) *Server {
	ring := cfg.TraceRingSize
	if ring <= 0 {
		ring = defaultTraceRingSize
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	s := &Server{
		cfg: cfg,
		reg: NewRegistry(cfg.sessionSettings()),
		plans: cache.New[plan](cache.Options{
			MaxEntries: cfg.PlanCacheSize,
			MaxBytes:   cfg.CacheBytes,
			Disabled:   cfg.PlanCacheSize <= 0,
		}),
		metrics: NewMetrics(),
		traces:  obs.NewRing(ring),
		adm:     newAdmission(cfg.MaxInflight, cfg.MaxQueue, cfg.SessionWeight),
		log:     logger,
		mux:     http.NewServeMux(),
	}
	s.routes()
	return s
}

func (s *Server) routes() {
	s.mux.HandleFunc("POST /sources", s.handleSources)
	s.mux.HandleFunc("POST /federate", s.handleFederate)
	s.mux.HandleFunc("POST /intersect", s.handleIntersect)
	s.mux.HandleFunc("POST /refine", s.handleRefine)
	s.mux.HandleFunc("GET /schemas", s.handleSchemas)
	s.mux.HandleFunc("POST /query", s.handleQuery)
	s.mux.HandleFunc("GET /report", s.handleReport)
	s.mux.HandleFunc("POST /suggest", s.handleSuggest)
	s.mux.HandleFunc("GET /sessions", s.handleSessions)
	s.mux.HandleFunc("POST /sessions/{name}/snapshot", s.handleSnapshot)
	s.mux.HandleFunc("POST /sessions/{name}/restore", s.handleRestore)
	s.mux.HandleFunc("POST /sessions/{name}/invalidate", s.handleInvalidate)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /debug/traces", s.handleTraces)
}

// Handler returns the routed HTTP handler wrapped in the observability
// middleware: request accounting, a per-request ID (inbound
// X-Request-ID or generated) echoed in the X-Request-ID response
// header and error bodies, the per-source metrics registry on the
// context, panic recovery (a handler panic is logged with its stack,
// counted, and answered with a 500 JSON error instead of a dropped
// connection), and a structured access log.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.metrics.Request()
		rid := r.Header.Get("X-Request-ID")
		if rid == "" {
			rid = newRequestID()
		}
		w.Header().Set("X-Request-ID", rid)
		ctx := withRequestID(r.Context(), rid)
		ctx = obs.WithSources(ctx, s.metrics.Sources())
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		defer func() {
			rec := recover()
			if rec != nil {
				if rec == http.ErrAbortHandler {
					// The deliberate connection-abort sentinel; let
					// net/http handle it.
					panic(rec)
				}
				s.metrics.Panic()
				s.log.Error("panic in handler",
					"method", r.Method,
					"path", r.URL.Path,
					"request_id", rid,
					"panic", fmt.Sprint(rec),
					"stack", string(debug.Stack()),
				)
				if !sw.wrote {
					sw.Header().Set("Content-Type", "application/json")
					sw.WriteHeader(http.StatusInternalServerError)
					json.NewEncoder(sw).Encode(apiError{
						Error:     "internal server error",
						RequestID: rid,
					})
				}
			}
			s.log.Info("request",
				"method", r.Method,
				"path", r.URL.Path,
				"status", sw.status,
				"dur_ms", float64(time.Since(start).Microseconds())/1000,
				"request_id", rid,
			)
		}()
		s.mux.ServeHTTP(sw, r.WithContext(ctx))
	})
}

// statusWriter captures the response status for the access log and
// whether anything was written yet (so panic recovery knows if a 500
// can still be sent).
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.wrote = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(p)
}

// maybeProbe launches one background recovery probe — open breakers
// get a probe fetch, federation-skipped sources are backfilled — if
// none ran in the last ProbeInterval. Health checks call it, so any
// monitoring loop doubles as the recovery driver without a dedicated
// timer goroutine; Drain waits for in-flight probes via probeWG.
func (s *Server) maybeProbe() {
	interval := s.cfg.ProbeInterval
	if interval <= 0 {
		interval = defaultProbeInterval
	}
	now := time.Now().UnixNano()
	last := s.probeGate.Load()
	if now-last < int64(interval) || !s.probeGate.CompareAndSwap(last, now) {
		return
	}
	sessions := s.reg.All()
	s.probeWG.Add(1)
	go func() {
		defer s.probeWG.Done()
		ctx, cancel := context.WithTimeout(context.Background(), interval)
		defer cancel()
		for _, sess := range sessions {
			if n := sess.Probe(ctx); n > 0 {
				s.log.Info("sources recovered", "session", sess.Name(), "count", n)
			}
		}
	}()
}

// newRequestID returns a 16-hex-char random request identifier.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "unknown"
	}
	return hex.EncodeToString(b[:])
}

// OpenStore enables durable sessions: snapshots are written to dir
// (created if needed), every mutating endpoint autosaves its session,
// and the explicit snapshot/restore endpoints become available.
func (s *Server) OpenStore(dir string) error {
	st, err := NewStore(dir)
	if err != nil {
		return err
	}
	s.persistMu.Lock()
	s.store = st
	s.persistMu.Unlock()
	return nil
}

// Store returns the open session store, or nil when persistence is
// disabled.
func (s *Server) Store() *Store {
	s.persistMu.Lock()
	defer s.persistMu.Unlock()
	return s.store
}

// RestoreSessions loads every session snapshot in the store into the
// registry (replacing same-named sessions) and returns how many were
// restored. Call it once at startup, after OpenStore.
func (s *Server) RestoreSessions() (int, error) {
	s.persistMu.Lock()
	defer s.persistMu.Unlock()
	if s.store == nil {
		return 0, errStoreClosed
	}
	states, err := s.store.LoadAll()
	if err != nil {
		return 0, err
	}
	for _, state := range states {
		sess, err := sessionFromState(state, s.cfg.sessionSettings())
		if err != nil {
			return 0, err
		}
		s.reg.Put(sess)
		s.metrics.SessionRestore()
	}
	return len(states), nil
}

// SnapshotSession forces a durable snapshot of one named session,
// counting the outcome in metrics and returning the session it
// exported. It is the programmatic form of POST
// /sessions/{name}/snapshot.
func (s *Server) SnapshotSession(name string) (*Session, error) {
	s.persistMu.Lock()
	defer s.persistMu.Unlock()
	if s.store == nil {
		return nil, errStoreClosed
	}
	sess, err := s.reg.Get(name, false)
	if err != nil {
		return nil, err
	}
	state, err := sess.Export()
	if err == nil {
		err = s.store.Save(state)
	}
	if err != nil {
		s.metrics.SnapshotError()
		return nil, err
	}
	s.metrics.SnapshotWritten()
	return sess, nil
}

// restoreSession loads one session from the store and installs it in
// the registry, all under the persist lock so no concurrent autosave
// interleaves between the read and the swap.
func (s *Server) restoreSession(name string) (*Session, error) {
	s.persistMu.Lock()
	defer s.persistMu.Unlock()
	if s.store == nil {
		return nil, errStoreClosed
	}
	state, err := s.store.Load(name)
	if err != nil {
		return nil, err
	}
	if state.Name != name {
		return nil, fmt.Errorf("%w: %s is for session %q, not %q", errBadSnapshot, fileName(name), state.Name, name)
	}
	sess, err := sessionFromState(state, s.cfg.sessionSettings())
	if err != nil {
		return nil, err
	}
	s.reg.Put(sess)
	s.metrics.SessionRestore()
	return sess, nil
}

// errStoreClosed distinguishes "persistence disabled" from genuine
// store failures across the snapshot/restore paths.
var errStoreClosed = fmt.Errorf("server: persistence is not enabled (start with -data-dir)")

// persist autosaves one session if a store is open. The in-memory
// mutation has already succeeded by the time persist runs, so failures
// are not surfaced to the client; they are logged and counted in
// metrics (snapshot_errors), and the previous on-disk snapshot stays
// intact thanks to the atomic rename.
func (s *Server) persist(sess *Session) {
	s.persistMu.Lock()
	defer s.persistMu.Unlock()
	if s.store == nil {
		return
	}
	// Skip orphaned sessions: if a restore replaced this session after
	// its mutation, the name now belongs to the restored state and this
	// session's snapshot must not overwrite it.
	if cur, err := s.reg.Get(sess.Name(), false); err != nil || cur != sess {
		return
	}
	state, err := sess.Export()
	if err == nil {
		err = s.store.Save(state)
	}
	if err != nil {
		s.metrics.SnapshotError()
		s.log.Error("autosave failed", "session", sess.Name(), "error", err)
		return
	}
	s.metrics.SnapshotWritten()
}

// Metrics exposes the server's metrics (for embedding and tests).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Sessions exposes the session registry (for embedding and tests).
func (s *Server) Sessions() *Registry { return s.reg }

// PurgePlans empties the shared plan cache (used by benchmarks to
// measure cold-plan query cost).
func (s *Server) PurgePlans() { s.plans.Purge() }

// sourceHealth collects every session's per-source breaker state for
// the metrics endpoint, in stable (session, source) order.
func (s *Server) sourceHealth() []SessionSourceHealth {
	var out []SessionSourceHealth
	for _, name := range s.reg.Names() {
		sess, err := s.reg.Get(name, false)
		if err != nil {
			continue
		}
		for _, h := range sess.SourceHealth() {
			out = append(out, SessionSourceHealth{Session: name, SourceHealth: h})
		}
	}
	return out
}

// resultStats sums result-cache stats across all sessions.
func (s *Server) resultStats() CacheStats {
	var sum CacheStats
	for _, sess := range s.reg.All() {
		addStats(&sum, sess.ResultCacheStats())
	}
	return sum
}

// evalStats sums sharded-evaluation counters across all sessions and
// attaches the effective pool settings.
func (s *Server) evalStats() EvalSnapshot {
	eval := EvalSnapshot{
		Parallelism:      s.cfg.EvalParallelism,
		PrefetchWorkers:  s.cfg.PrefetchWorkers,
		PrefetchMaxTasks: s.cfg.PrefetchMaxTasks,
	}
	if eval.Parallelism <= 0 {
		eval.Parallelism = runtime.GOMAXPROCS(0)
	}
	if eval.PrefetchWorkers <= 0 {
		eval.PrefetchWorkers = query.DefaultPrefetchWorkers
	}
	if eval.PrefetchMaxTasks <= 0 {
		eval.PrefetchMaxTasks = query.DefaultPrefetchMaxTasks
	}
	for _, sess := range s.reg.All() {
		st := sess.ParallelStats()
		eval.ParallelEvals += st.ParallelEvals
		eval.SerialEvals += st.SerialEvals
		eval.Shards += st.Shards
	}
	return eval
}

// extentStats sums the query processors' extent-memo and source-extent
// cache stats across all sessions.
func (s *Server) extentStats() (memo, src CacheStats) {
	var m, sc CacheStats
	for _, sess := range s.reg.All() {
		mm, ss := sess.ExtentCacheStats()
		addStats(&m, mm)
		addStats(&sc, ss)
	}
	return m, sc
}

func addStats(dst *CacheStats, st CacheStats) {
	dst.Len += st.Len
	dst.Capacity += st.Capacity
	dst.Bytes += st.Bytes
	dst.MaxBytes += st.MaxBytes
	dst.Hits += st.Hits
	dst.Misses += st.Misses
	dst.Evictions += st.Evictions
	dst.Invalidations += st.Invalidations
	dst.Oversize += st.Oversize
	dst.Purges += st.Purges
}
