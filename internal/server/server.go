package server

import (
	"net/http"
	"time"
)

// Config tunes the dataspace server.
type Config struct {
	// PlanCacheSize bounds the shared cache of parsed IQL plans;
	// <= 0 disables plan caching.
	PlanCacheSize int
	// ResultCacheSize bounds each session's query-result cache;
	// <= 0 disables result caching.
	ResultCacheSize int
	// QueryTimeout is the default per-query evaluation deadline;
	// requests may shorten it via timeout_ms. 0 means no deadline.
	QueryTimeout time.Duration
	// MaxSteps bounds IQL evaluation steps per query (a defence
	// against runaway comprehensions); 0 means unlimited.
	MaxSteps int
}

// DefaultConfig returns production-shaped defaults.
func DefaultConfig() Config {
	return Config{
		PlanCacheSize:   512,
		ResultCacheSize: 4096,
		QueryTimeout:    30 * time.Second,
	}
}

// Server is the HTTP/JSON dataspace service: a registry of integration
// sessions, a shared plan cache, per-session result caches, and
// metrics. Obtain the routed handler with Handler.
type Server struct {
	cfg     Config
	reg     *Registry
	plans   *LRU[plan]
	metrics *Metrics
	mux     *http.ServeMux
}

// New builds a server.
func New(cfg Config) *Server {
	s := &Server{
		cfg:     cfg,
		reg:     NewRegistry(cfg.ResultCacheSize, cfg.MaxSteps),
		plans:   NewLRU[plan](cfg.PlanCacheSize),
		metrics: NewMetrics(),
		mux:     http.NewServeMux(),
	}
	s.routes()
	return s
}

func (s *Server) routes() {
	s.mux.HandleFunc("POST /sources", s.handleSources)
	s.mux.HandleFunc("POST /federate", s.handleFederate)
	s.mux.HandleFunc("POST /intersect", s.handleIntersect)
	s.mux.HandleFunc("POST /refine", s.handleRefine)
	s.mux.HandleFunc("GET /schemas", s.handleSchemas)
	s.mux.HandleFunc("POST /query", s.handleQuery)
	s.mux.HandleFunc("GET /report", s.handleReport)
	s.mux.HandleFunc("POST /suggest", s.handleSuggest)
	s.mux.HandleFunc("GET /sessions", s.handleSessions)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
}

// Handler returns the routed HTTP handler with request accounting.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.metrics.Request()
		s.mux.ServeHTTP(w, r)
	})
}

// Metrics exposes the server's metrics (for embedding and tests).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Sessions exposes the session registry (for embedding and tests).
func (s *Server) Sessions() *Registry { return s.reg }

// PurgePlans empties the shared plan cache (used by benchmarks to
// measure cold-plan query cost).
func (s *Server) PurgePlans() { s.plans.Purge() }

// resultStats sums result-cache stats across all sessions.
func (s *Server) resultStats() CacheStats {
	var sum CacheStats
	for _, sess := range s.reg.All() {
		st := sess.ResultCacheStats()
		sum.Len += st.Len
		sum.Capacity += st.Capacity
		sum.Hits += st.Hits
		sum.Misses += st.Misses
		sum.Evictions += st.Evictions
		sum.Purges += st.Purges
	}
	return sum
}
