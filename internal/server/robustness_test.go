package server

import (
	"context"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/dataspace/automed/internal/query"
	"github.com/dataspace/automed/internal/wrapper"
)

// robustCfg is a breaker-enabled config with deterministic knobs: the
// breaker opens on the first failure and stays open (no timed retry),
// and background probes never fire on their own.
func robustCfg() Config {
	cfg := DefaultConfig()
	cfg.Breaker = query.BreakerConfig{
		Enabled:       true,
		Consecutive:   1,
		OpenFor:       time.Hour,
		SourceTimeout: 5 * time.Second,
	}
	cfg.ProbeInterval = time.Hour
	return cfg
}

// registerFlakyPair registers a healthy inline source and a fault-wrapped
// one whose flap schedule serves exactly one healthy fetch (the warm-up
// query) and then fails indefinitely.
func registerFlakyPair(c *testClient) {
	c.must("POST", "/sources", map[string]any{
		"name": "Steady",
		"tables": []map[string]any{{
			"name":    "rows",
			"columns": []string{"id:int", "label"},
			"rows":    [][]any{{0, "a"}, {1, "b"}},
		}},
	}, http.StatusCreated)
	c.must("POST", "/sources", map[string]any{
		"name": "Flaky",
		"fault": map[string]any{
			"tables": []map[string]any{{
				"name":    "items",
				"columns": []string{"id:int", "label"},
				"rows":    [][]any{{0, "x"}, {1, "y"}},
			}},
			"config": map[string]any{"flap_up": 1, "flap_down": 1 << 20},
		},
	}, http.StatusCreated)
}

// setupDegraded federates Steady+Flaky, warms the Flaky extent cache
// through the fault wrapper's single healthy slot, then invalidates the
// session so the next fetch hits the now-failing source.
func setupDegraded(t *testing.T, cfg Config) (*Server, *testClient) {
	t.Helper()
	s, c := newTestClient(t, cfg)
	registerFlakyPair(c)
	c.must("POST", "/federate", map[string]any{"name": "F"}, http.StatusCreated)
	q := c.must("POST", "/query", map[string]any{"query": "count(<<flaky_items>>)"}, http.StatusOK)
	if q["value"].(float64) != 2 {
		t.Fatalf("warm count = %v, want 2", q["value"])
	}
	if q["degraded"] == true {
		t.Fatal("warm-up answer already degraded")
	}
	c.must("POST", "/sessions/default/invalidate", nil, http.StatusOK)
	return s, c
}

// TestPanicRecovery asserts the middleware converts a handler panic into
// a 500 JSON error carrying the request id, counts it, and leaves the
// server serving.
func TestPanicRecovery(t *testing.T) {
	s, c := newTestClient(t, DefaultConfig())
	s.mux.HandleFunc("GET /boom", func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	})

	status, out := c.do("GET", "/boom", nil)
	if status != http.StatusInternalServerError {
		t.Fatalf("panicking route = %d, want 500 (body: %v)", status, out)
	}
	msg, _ := out["error"].(string)
	if !strings.Contains(msg, "internal server error") {
		t.Errorf("panic error = %q, want it to mention an internal error", msg)
	}
	if rid, _ := out["request_id"].(string); rid == "" {
		t.Error("panic response is missing request_id")
	}

	// The server survived and counted the panic.
	c.must("GET", "/healthz", nil, http.StatusOK)
	m := c.must("GET", "/metrics?format=json", nil, http.StatusOK)
	if m["panics_total"].(float64) != 1 {
		t.Errorf("panics_total = %v, want 1", m["panics_total"])
	}
}

// TestStaleFallbackAndStrictMode drives the chaos drill over HTTP: a
// source goes hard-down after its extent was cached once. Queries keep
// answering from the stale extent with a degraded warning naming the
// source; strict requests refuse the degraded answer; health and
// metrics expose the open breaker.
func TestStaleFallbackAndStrictMode(t *testing.T) {
	_, c := setupDegraded(t, robustCfg())

	// Degraded answer: stale value, warning names the source.
	q := c.must("POST", "/query", map[string]any{"query": "count(<<flaky_items>>)"}, http.StatusOK)
	if q["value"].(float64) != 2 {
		t.Fatalf("degraded count = %v, want stale 2", q["value"])
	}
	if q["degraded"] != true {
		t.Fatalf("answer not marked degraded: %v", q)
	}
	warns, _ := q["warnings"].([]any)
	found := false
	for _, w := range warns {
		if s, _ := w.(string); query.IsDegraded(s) && strings.Contains(s, "Flaky") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no degraded warning naming Flaky in %v", warns)
	}

	// The healthy source is unaffected by its neighbour's outage.
	q = c.must("POST", "/query", map[string]any{"query": "count(<<steady_rows>>)"}, http.StatusOK)
	if q["degraded"] == true || q["value"].(float64) != 2 {
		t.Fatalf("healthy source answer = %v", q)
	}

	// Strict mode per request body and per header turns the degraded
	// answer into a 503.
	status, out := c.do("POST", "/query", map[string]any{
		"query": "count(<<flaky_items>>)", "require_fresh": true,
	})
	if status != http.StatusServiceUnavailable {
		t.Fatalf("require_fresh degraded query = %d, want 503 (%v)", status, out)
	}
	if msg, _ := out["error"].(string); !strings.Contains(msg, "degraded") {
		t.Errorf("strict error = %q, want it to mention degradation", msg)
	}
	req, err := http.NewRequest("POST", c.srv.URL+"/query",
		strings.NewReader(`{"query": "count(<<flaky_items>>)"}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Require-Fresh", "1")
	resp, err := c.srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("X-Require-Fresh degraded query = %d, want 503", resp.StatusCode)
	}

	// Health reports the open breaker and flips to degraded.
	h := c.must("GET", "/healthz", nil, http.StatusOK)
	if h["status"] != "degraded" {
		t.Fatalf("healthz status = %v, want degraded", h["status"])
	}
	sh, _ := h["source_health"].([]any)
	if len(sh) == 0 {
		t.Fatal("healthz has no source_health")
	}
	openSeen := false
	for _, e := range sh {
		sess := e.(map[string]any)
		for _, src := range sess["sources"].([]any) {
			m := src.(map[string]any)
			if m["source"] == "Flaky" && m["state"] == "open" {
				openSeen = true
			}
		}
	}
	if !openSeen {
		t.Fatalf("healthz does not report Flaky as open: %v", sh)
	}

	// Prometheus exposition carries the breaker and degraded families.
	presp, err := c.srv.Client().Get(c.srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(presp.Body)
	presp.Body.Close()
	text := string(body)
	if !strings.Contains(text, `automed_source_breaker_open{session="default",source="Flaky"} 1`) {
		t.Errorf("exposition missing open-breaker gauge:\n%s", text)
	}
	for _, fam := range []string{"automed_degraded_queries_total", "automed_source_fallbacks_total"} {
		if !strings.Contains(text, fam) {
			t.Errorf("exposition missing %s", fam)
		}
	}
}

// TestRequireFreshServerConfig proves the daemon-wide strict mode: with
// Config.RequireFresh set, a degraded answer is refused without any
// per-request opt-in.
func TestRequireFreshServerConfig(t *testing.T) {
	cfg := robustCfg()
	cfg.RequireFresh = true
	_, c := setupDegraded(t, cfg)
	status, out := c.do("POST", "/query", map[string]any{"query": "count(<<flaky_items>>)"})
	if status != http.StatusServiceUnavailable {
		t.Fatalf("degraded query under -require-fresh = %d, want 503 (%v)", status, out)
	}
}

// TestDegradedFederationAndBackfill federates past an unreachable
// source, then heals it and probes: the source backfills into the
// federated schema and its schemes become queryable.
func TestDegradedFederationAndBackfill(t *testing.T) {
	cfg := robustCfg()
	cfg.MinFederatedSources = 1
	s, c := newTestClient(t, cfg)

	c.must("POST", "/sources", map[string]any{
		"name": "Steady",
		"tables": []map[string]any{{
			"name":    "rows",
			"columns": []string{"id:int", "label"},
			"rows":    [][]any{{0, "a"}, {1, "b"}},
		}},
	}, http.StatusCreated)
	c.must("POST", "/sources", map[string]any{
		"name": "Flaky",
		"fault": map[string]any{
			"tables": []map[string]any{{
				"name":    "items",
				"columns": []string{"id:int", "label"},
				"rows":    [][]any{{0, "x"}, {1, "y"}},
			}},
			"config": map[string]any{"error_rate": 1},
		},
	}, http.StatusCreated)

	fed := c.must("POST", "/federate", map[string]any{"name": "F"}, http.StatusCreated)
	skipped, _ := fed["skipped_sources"].([]any)
	if len(skipped) != 1 || skipped[0] != "Flaky" {
		t.Fatalf("skipped_sources = %v, want [Flaky]", fed["skipped_sources"])
	}

	// The reachable subset answers; the skipped source's schemes are
	// absent until backfill.
	q := c.must("POST", "/query", map[string]any{"query": "count(<<steady_rows>>)"}, http.StatusOK)
	if q["value"].(float64) != 2 {
		t.Fatalf("count over reachable subset = %v, want 2", q["value"])
	}
	if status, _ := c.do("POST", "/query", map[string]any{"query": "count(<<flaky_items>>)"}); status == http.StatusOK {
		t.Fatal("skipped source's scheme answered before backfill")
	}
	h := c.must("GET", "/healthz", nil, http.StatusOK)
	if h["status"] != "degraded" {
		t.Fatalf("healthz status = %v, want degraded while a source is skipped", h["status"])
	}

	// Heal the source and probe: backfill merges it into the federation.
	sess, err := s.reg.Get("default", false)
	if err != nil {
		t.Fatal(err)
	}
	fw, ok := sess.Wrapper("Flaky")
	if !ok {
		t.Fatal("Flaky wrapper not registered")
	}
	fw.(*wrapper.Fault).Set(wrapper.FaultConfig{})
	if n := sess.Probe(context.Background()); n != 1 {
		t.Fatalf("Probe recovered %d sources, want 1", n)
	}

	q = c.must("POST", "/query", map[string]any{"query": "count(<<flaky_items>>)"}, http.StatusOK)
	if q["value"].(float64) != 2 {
		t.Fatalf("post-backfill count = %v, want 2", q["value"])
	}
	h = c.must("GET", "/healthz", nil, http.StatusOK)
	if h["status"] != "ok" {
		t.Fatalf("healthz status after backfill = %v, want ok", h["status"])
	}
}

// TestDrainWaitsForProbe races health-check-launched background probes
// against Drain; the race detector checks the shutdown path, and Drain
// must not return before in-flight probes finish.
func TestDrainWaitsForProbe(t *testing.T) {
	cfg := robustCfg()
	cfg.ProbeInterval = time.Nanosecond // every health check launches a probe
	s, c := newTestClient(t, cfg)
	registerFlakyPair(c)
	c.must("POST", "/federate", map[string]any{"name": "F"}, http.StatusCreated)
	c.must("POST", "/query", map[string]any{"query": "count(<<flaky_items>>)"}, http.StatusOK)

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				c.do("GET", "/healthz", nil)
			}
		}()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	wg.Wait()
	if !s.Draining() {
		t.Fatal("server not draining after Drain")
	}
}
