package server

import (
	"github.com/dataspace/automed/internal/obs"
)

// Prometheus renders the metrics in text exposition format 0.0.4 — the
// counterpart of Snapshot for scrape-based collection. Histogram
// buckets follow the cumulative `le` convention with bounds in seconds.
func (m *Metrics) Prometheus(plan, result, extent, src CacheStats, queue QueueStats, sessions int, eval EvalSnapshot, health []SessionSourceHealth) []byte {
	snap := m.Snapshot(plan, result, extent, src, queue, sessions, eval, health)
	w := obs.NewPromWriter()

	w.Gauge("automed_uptime_seconds", "Seconds since the server started.", snap.UptimeSeconds)
	w.Counter("automed_http_requests_total", "HTTP requests served.", float64(snap.RequestsTotal))
	w.Counter("automed_queries_total", "IQL queries evaluated.", float64(snap.QueriesTotal))
	w.Counter("automed_query_errors_total", "Queries that failed.", float64(snap.QueryErrors))
	w.Counter("automed_query_timeouts_total", "Queries cancelled by the per-query timeout.", float64(snap.QueryTimeouts))
	w.Counter("automed_integration_iterations_total", "Integration steps served (federate/intersect/refine).", float64(snap.Iterations))
	w.Counter("automed_session_snapshots_total", "Session snapshots written to the store.", float64(snap.Snapshots))
	w.Counter("automed_session_snapshot_errors_total", "Failed session snapshot writes.", float64(snap.SnapshotErrs))
	w.Counter("automed_sessions_restored_total", "Sessions restored from the store.", float64(snap.Restores))
	w.Gauge("automed_sessions", "Live sessions.", float64(snap.Sessions))

	w.Histogram("automed_query_duration_seconds", "End-to-end query latency.", m.lat.Snapshot())

	w.Counter("automed_eval_parallel_total", "Evaluations in which at least one generator scan ran sharded.", float64(snap.Eval.ParallelEvals))
	w.Counter("automed_eval_serial_total", "Evaluations that ran fully serial.", float64(snap.Eval.SerialEvals))
	w.Counter("automed_eval_shards_total", "Shards executed by data-parallel evaluation.", float64(snap.Eval.Shards))
	w.Gauge("automed_eval_parallelism", "Effective sharded-evaluation worker-pool width.", float64(snap.Eval.Parallelism))
	w.Gauge("automed_prefetch_workers", "Effective concurrent extent-prefetch pool width.", float64(snap.Eval.PrefetchWorkers))
	w.Gauge("automed_prefetch_max_tasks", "Per-query extent-prefetch task budget.", float64(snap.Eval.PrefetchMaxTasks))

	drain := 0.0
	if snap.Queue.Draining {
		drain = 1
	}
	w.Gauge("automed_queue_inflight", "Admitted requests currently executing.", float64(snap.Queue.Inflight))
	w.Gauge("automed_queue_depth", "Requests parked in the admission fair queue.", float64(snap.Queue.Depth))
	w.Gauge("automed_queue_limit", "Configured max in-flight admitted requests (0 = unlimited).", float64(snap.Queue.MaxInflight))
	w.Gauge("automed_queue_capacity", "Configured max queued requests before 429s.", float64(snap.Queue.MaxQueue))
	w.Gauge("automed_draining", "1 while the server is draining for shutdown.", drain)
	w.Counter("automed_queue_admitted_total", "Requests admitted through admission control.", float64(snap.Queue.Admitted))
	w.Counter("automed_queue_rejected_total", "Requests rejected by admission control.",
		float64(snap.Queue.Rejected), "reason", "capacity")
	w.Counter("automed_queue_rejected_total", "Requests rejected by admission control.",
		float64(snap.Queue.DrainRejected), "reason", "draining")
	w.Histogram("automed_queue_wait_seconds", "Time admitted requests spent parked in the fair queue.", m.queueWait.Snapshot())

	layers := []struct {
		layer string
		s     CacheStats
	}{
		{"plan", plan},
		{"result", result},
		{"extent", extent},
		{"source_extent", src},
	}
	for _, l := range layers {
		lbl := []string{"layer", l.layer}
		w.Gauge("automed_cache_entries", "Entries held per cache layer.", float64(l.s.Len), lbl...)
		w.Gauge("automed_cache_bytes", "Bytes held per cache layer.", float64(l.s.Bytes), lbl...)
		w.Counter("automed_cache_hits_total", "Cache hits per layer.", float64(l.s.Hits), lbl...)
		w.Counter("automed_cache_misses_total", "Cache misses per layer.", float64(l.s.Misses), lbl...)
		w.Counter("automed_cache_evictions_total", "Cache evictions per layer.", float64(l.s.Evictions), lbl...)
		w.Counter("automed_cache_invalidations_total", "Cache invalidations per layer.", float64(l.s.Invalidations), lbl...)
	}

	for _, s := range m.sources.Snapshot() {
		lbl := []string{"source", s.Source, "kind", s.Kind}
		w.Counter("automed_source_fetches_total", "Wrapper fetches per data source.", float64(s.Fetches), lbl...)
		w.Counter("automed_source_fetch_errors_total", "Failed wrapper fetches per data source.", float64(s.Errors), lbl...)
		w.Counter("automed_source_fetch_retries_total", "Wrapper fetch retries per data source.", float64(s.Retries), lbl...)
		w.Counter("automed_source_rows_total", "Extent rows fetched per data source.", float64(s.Rows), lbl...)
		w.Counter("automed_source_bytes_total", "Bytes fetched per data source.", float64(s.Bytes), lbl...)
		w.Histogram("automed_source_fetch_duration_seconds", "Wrapper fetch latency per data source.", s.Latency, lbl...)
	}

	w.Counter("automed_panics_total", "Handler panics recovered by the middleware.", float64(snap.Panics))
	w.Counter("automed_degraded_queries_total", "Answers evaluated over stale fallback extents.", float64(snap.DegradedQueries))
	for _, h := range snap.SourceHealth {
		lbl := []string{"session", h.Session, "source", h.Source}
		open := 0.0
		if h.State == "open" {
			open = 1
		}
		w.Gauge("automed_source_breaker_open", "1 while the source's circuit breaker is open.", open, lbl...)
		w.Counter("automed_source_breaker_opens_total", "Times the source's circuit breaker opened.", float64(h.Opens), lbl...)
		w.Counter("automed_source_breaker_probes_total", "Half-open probe fetches admitted for the source.", float64(h.Probes), lbl...)
		w.Counter("automed_source_fallbacks_total", "Stale extents served for the source while unreachable.", float64(h.Fallbacks), lbl...)
	}

	return w.Bytes()
}
