package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/dataspace/automed/internal/rel"
	"github.com/dataspace/automed/internal/sqlmem"
)

// remoteSQLDB registers the Library catalogue behind the sqlmem
// driver, reachable over database/sql like any wire-protocol database.
func remoteSQLDB(dsn string) {
	db := rel.NewDB("Library")
	books := db.MustCreateTable("books", []rel.Column{
		{Name: "id", Type: rel.Int},
		{Name: "isbn", Type: rel.String},
		{Name: "title", Type: rel.String},
	}, "id")
	books.MustInsert(int64(1), "978-1", "Dataspaces")
	books.MustInsert(int64(2), "978-2", "Schema Matching")
	books.MustInsert(int64(3), "978-3", "AutoMed")
	sqlmem.Register(dsn, db)
}

// remoteRESTBackend serves the Shop inventory as a JSON API.
func remoteRESTBackend(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/items" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, `[
			{"id": "S1", "barcode": "978-1", "price": 10.5},
			{"id": "S2", "barcode": "978-2", "price": 42.0},
			{"id": "S3", "barcode": "978-9", "price": 7.0}
		]`)
	}))
	t.Cleanup(srv.Close)
	return srv
}

// registerRemoteSources drives the POST /sources body variants for a
// SQL and a REST backend.
func registerRemoteSources(c *testClient, dsn, endpoint string) {
	c.must("POST", "/sources", map[string]any{
		"name": "Library",
		"sql":  map[string]any{"driver": sqlmem.DriverName, "dsn": dsn},
	}, http.StatusCreated)
	c.must("POST", "/sources", map[string]any{
		"name": "Shop",
		"rest": map[string]any{
			"endpoint": endpoint,
			"collections": []map[string]any{
				{"name": "items", "fields": []string{"barcode", "id", "price"}},
			},
		},
	}, http.StatusCreated)
}

var remoteUBookMappings = []map[string]any{
	{
		"target": "<<UBook>>",
		"forward": []map[string]any{
			{"source": "Library", "query": "[{'LIB', k} | k <- <<books>>]"},
			{"source": "Shop", "query": "[{'SHOP', k} | k <- <<items>>]"},
		},
	},
	{
		"target": "<<UBook, ref>>",
		"forward": []map[string]any{
			{"source": "Library", "query": "[{'LIB', k, x} | {k, x} <- <<books, isbn>>]"},
			{"source": "Shop", "query": "[{'SHOP', k, x} | {k, x} <- <<items, barcode>>]"},
		},
	},
}

var remoteWorkload = []map[string]any{
	{"query": "count(<<library_books>>)", "version": 0},
	{"query": "[x | {k, x} <- <<shop_items, price>>; x > 10.0]", "version": 0},
	{"query": "count(<<UBook>>)", "version": 1},
	{"query": "[x | {s, k, x} <- <<UBook, ref>>]", "version": 1},
	{"query": "count(<<UBook>>)"}, // latest
}

// TestRemoteSourcesCrashRecovery is the acceptance path for remote
// participants: a full pay-as-you-go session over one SQL source and
// one REST source — register, federate, intersect, query — survives a
// daemon crash, rebuilt from -data-dir alone, with byte-identical
// answers for every published schema version (the backends stay up; a
// restored session reattaches to them live).
func TestRemoteSourcesCrashRecovery(t *testing.T) {
	const dsn = "server-remote-library"
	remoteSQLDB(dsn)
	shop := remoteRESTBackend(t)
	dir := t.TempDir()

	s1, c1 := newDurableClient(t, dir)
	registerRemoteSources(c1, dsn, shop.URL)
	c1.must("POST", "/federate", map[string]any{"name": "F"}, http.StatusCreated)
	c1.must("POST", "/intersect", map[string]any{"name": "I1", "mappings": remoteUBookMappings}, http.StatusCreated)

	before := make([]string, len(remoteWorkload))
	for i, q := range remoteWorkload {
		before[i] = canonicalAnswer(t, c1.must("POST", "/query", q, http.StatusOK))
	}
	// Both backends actually contribute: the ref extent carries the
	// SQL-only and the REST-only identifiers.
	if !strings.Contains(before[3], "978-3") || !strings.Contains(before[3], "978-9") {
		t.Fatalf("integrated ref extent is missing backend data: %s", before[3])
	}

	// Crash: abandon the first server; a new one rebuilds from disk and
	// reattaches to the still-running backends.
	s2, c2 := newDurableClient(t, dir)
	if n := s2.Sessions().Len(); n != 1 {
		t.Fatalf("restored %d sessions, want 1", n)
	}
	_ = s1
	for i, q := range remoteWorkload {
		after := canonicalAnswer(t, c2.must("POST", "/query", q, http.StatusOK))
		if after != before[i] {
			t.Errorf("query %v differs after crash recovery:\nbefore %s\nafter  %s", q, before[i], after)
		}
	}

	// The restored session keeps integrating across both backends.
	c2.must("POST", "/refine", map[string]any{
		"name": "prices",
		"mapping": map[string]any{
			"target": "<<UBook, price>>",
			"forward": []map[string]any{
				{"source": "Shop", "query": "[{'SHOP', k, x} | {k, x} <- <<items, price>>]"},
			},
		},
	}, http.StatusCreated)
	q := c2.must("POST", "/query", map[string]any{"query": "count(<<UBook, price>>)"}, http.StatusOK)
	if q["value"].(float64) != 3 {
		t.Fatalf("post-recovery price count = %v, want 3", q["value"])
	}
}

// TestRemoteSourcesOutageFallback: after a snapshot, a session whose
// backends vanished restores and still answers from the materialised
// snapshot extents.
func TestRemoteSourcesOutageFallback(t *testing.T) {
	const dsn = "server-outage-library"
	remoteSQLDB(dsn)
	shop := remoteRESTBackend(t)
	dir := t.TempDir()

	_, c1 := newDurableClient(t, dir)
	registerRemoteSources(c1, dsn, shop.URL)
	c1.must("POST", "/federate", map[string]any{"name": "F"}, http.StatusCreated)
	want := canonicalAnswer(t, c1.must("POST", "/query",
		map[string]any{"query": "count(<<library_books>>) + count(<<shop_items>>)"}, http.StatusOK))

	// Both backends die before the restart.
	sqlmem.Unregister(dsn)
	shop.Close()

	_, c2 := newDurableClient(t, dir)
	got := canonicalAnswer(t, c2.must("POST", "/query",
		map[string]any{"query": "count(<<library_books>>) + count(<<shop_items>>)"}, http.StatusOK))
	if got != want {
		t.Errorf("fallback answer differs:\nbefore outage %s\nafter restore %s", want, got)
	}
}

// TestSourcesVariantValidation: the endpoint requires exactly one
// backend variant per registration.
func TestSourcesVariantValidation(t *testing.T) {
	_, c := newTestClient(t, DefaultConfig())
	status, body := c.do("POST", "/sources", map[string]any{
		"name":    "X",
		"csv_dir": "/nowhere",
		"sql":     map[string]any{"driver": "d", "dsn": "x"},
	})
	if status != http.StatusBadRequest {
		t.Fatalf("two variants accepted: %d %v", status, body)
	}
	status, _ = c.do("POST", "/sources", map[string]any{"name": "X"})
	if status != http.StatusBadRequest {
		t.Fatal("zero variants accepted")
	}
	// A REST registration against a dead endpoint fails cleanly.
	status, body = c.do("POST", "/sources", map[string]any{
		"name": "R",
		"rest": map[string]any{"endpoint": "http://127.0.0.1:9/api"},
	})
	if status != http.StatusBadRequest {
		t.Fatalf("dead endpoint accepted: %d %v", status, body)
	}
}
