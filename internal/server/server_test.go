package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// testClient wraps an httptest server with JSON helpers.
type testClient struct {
	t   *testing.T
	srv *httptest.Server
}

func newTestClient(t *testing.T, cfg Config) (*Server, *testClient) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, &testClient{t: t, srv: ts}
}

func (c *testClient) do(method, path string, body any) (int, map[string]any) {
	c.t.Helper()
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			c.t.Fatal(err)
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, c.srv.URL+path, rd)
	if err != nil {
		c.t.Fatal(err)
	}
	// The helpers decode JSON; /metrics content-negotiates on Accept.
	req.Header.Set("Accept", "application/json")
	resp, err := c.srv.Client().Do(req)
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil && err != io.EOF {
		c.t.Fatalf("%s %s: decoding response: %v", method, path, err)
	}
	return resp.StatusCode, out
}

func (c *testClient) must(method, path string, body any, wantStatus int) map[string]any {
	c.t.Helper()
	status, out := c.do(method, path, body)
	if status != wantStatus {
		c.t.Fatalf("%s %s = %d, want %d (body: %v)", method, path, status, wantStatus, out)
	}
	return out
}

// registerBookstore registers the Library and Shop sources used by the
// paper-style toy workflow, with rows scaled by n.
func registerBookstore(c *testClient, session string, n int) {
	libRows := make([][]any, n)
	shopRows := make([][]any, n)
	for i := 0; i < n; i++ {
		libRows[i] = []any{i, fmt.Sprintf("978-%d", i), fmt.Sprintf("Book %d", i)}
		shopRows[i] = []any{fmt.Sprintf("S%d", i), fmt.Sprintf("978-%d", i), float64(i) + 0.5}
	}
	c.must("POST", "/sources", map[string]any{
		"session": session,
		"name":    "Library",
		"tables": []map[string]any{{
			"name":    "books",
			"columns": []string{"id:int", "isbn", "title"},
			"rows":    libRows,
		}},
	}, http.StatusCreated)
	c.must("POST", "/sources", map[string]any{
		"session": session,
		"name":    "Shop",
		"tables": []map[string]any{{
			"name":    "items",
			"columns": []string{"sku", "barcode", "price:float"},
			"rows":    shopRows,
		}},
	}, http.StatusCreated)
}

var ubookMappings = []map[string]any{
	{
		"target": "<<UBook>>",
		"forward": []map[string]any{
			{"source": "Library", "query": "[{'LIB', k} | k <- <<books>>]"},
			{"source": "Shop", "query": "[{'SHOP', k} | k <- <<items>>]"},
		},
	},
	{
		"target": "<<UBook, isbn>>",
		"forward": []map[string]any{
			{"source": "Library", "query": "[{'LIB', k, x} | {k, x} <- <<books, isbn>>]"},
			{"source": "Shop", "query": "[{'SHOP', k, x} | {k, x} <- <<items, barcode>>]"},
		},
	},
}

// TestEndToEnd drives the full paper workflow over HTTP: wrap →
// federate → query → intersect → query → refine → query, checking
// schema versioning, provenance explain, the effort report, matcher
// suggestions, and metrics along the way.
func TestEndToEnd(t *testing.T) {
	_, c := newTestClient(t, DefaultConfig())
	registerBookstore(c, "", 2)

	// Step 2: federate — immediately queryable, zero integration effort.
	fed := c.must("POST", "/federate", map[string]any{"name": "F"}, http.StatusCreated)
	if fed["version"].(float64) != 0 {
		t.Fatalf("federated version = %v, want 0", fed["version"])
	}
	q := c.must("POST", "/query", map[string]any{"query": "count(<<library_books>>)"}, http.StatusOK)
	if q["value"].(float64) != 2 {
		t.Fatalf("count(<<library_books>>) = %v, want 2", q["value"])
	}

	// Steps 3-5: first intersection iteration.
	in := c.must("POST", "/intersect", map[string]any{
		"name":     "I1",
		"mappings": ubookMappings,
		"enables":  []string{"Q1"},
	}, http.StatusCreated)
	if in["version"].(float64) != 1 {
		t.Fatalf("post-intersect version = %v, want 1", in["version"])
	}

	// Step 6: query the integrated concept.
	q = c.must("POST", "/query", map[string]any{"query": "count(<<UBook>>)", "explain": true}, http.StatusOK)
	if q["value"].(float64) != 4 {
		t.Fatalf("count(<<UBook>>) = %v, want 4", q["value"])
	}
	if q["version"].(float64) != 1 {
		t.Fatalf("query version = %v, want 1", q["version"])
	}
	explain, ok := q["explain"].(map[string]any)
	if !ok || len(explain) == 0 {
		t.Fatalf("explain missing: %v", q["explain"])
	}

	// Pinned queries against the federated version keep working, and
	// the new concept is invisible there.
	q = c.must("POST", "/query", map[string]any{"query": "count(<<shop_items>>)", "version": 0}, http.StatusOK)
	if q["value"].(float64) != 2 {
		t.Fatalf("pinned count = %v, want 2", q["value"])
	}
	status, _ := c.do("POST", "/query", map[string]any{"query": "count(<<UBook>>)", "version": 0})
	if status != http.StatusBadRequest {
		t.Fatalf("version-0 query for <<UBook>> = %d, want 400", status)
	}

	// Another iteration: refinement adds a Library-only title attribute.
	c.must("POST", "/refine", map[string]any{
		"name": "titles",
		"mapping": map[string]any{
			"target": "<<UBook, title>>",
			"forward": []map[string]any{
				{"source": "Library", "query": "[{'LIB', k, x} | {k, x} <- <<books, title>>]"},
			},
		},
	}, http.StatusCreated)
	q = c.must("POST", "/query", map[string]any{"query": "count(<<UBook, title>>)"}, http.StatusOK)
	if q["value"].(float64) != 2 {
		t.Fatalf("count(<<UBook, title>>) = %v, want 2", q["value"])
	}
	if q["version"].(float64) != 2 {
		t.Fatalf("post-refine version = %v, want 2", q["version"])
	}

	// Schema version registry.
	schemas := c.must("GET", "/schemas?session=default", nil, http.StatusOK)
	if schemas["current_version"].(float64) != 2 {
		t.Fatalf("current_version = %v, want 2", schemas["current_version"])
	}
	if n := len(schemas["versions"].([]any)); n != 3 {
		t.Fatalf("len(versions) = %d, want 3", n)
	}

	// Effort report mirrors the paper's manual/auto accounting.
	rep := c.must("GET", "/report?session=default", nil, http.StatusOK)
	if rep["total_manual"].(float64) == 0 {
		t.Fatal("report shows zero manual steps")
	}

	// Matcher suggestions (workflow step 4 seeding).
	sug := c.must("POST", "/suggest", map[string]any{
		"source_a": "Library", "source_b": "Shop", "min_score": 0.1,
	}, http.StatusOK)
	if sug["correspondences"] == nil {
		t.Fatal("no matcher correspondences")
	}

	// Liveness + metrics.
	c.must("GET", "/healthz", nil, http.StatusOK)
	m := c.must("GET", "/metrics", nil, http.StatusOK)
	if m["queries_total"].(float64) < 5 {
		t.Fatalf("queries_total = %v, want >= 5", m["queries_total"])
	}
	if m["integration_iterations"].(float64) != 3 {
		t.Fatalf("integration_iterations = %v, want 3", m["integration_iterations"])
	}
}

// TestCacheInvalidationOnIteration verifies the tentpole cache
// contract: repeated queries hit the result cache, and a new
// integration iteration invalidates it so clients see the new global
// schema's answers, not stale ones.
func TestCacheInvalidationOnIteration(t *testing.T) {
	_, c := newTestClient(t, DefaultConfig())
	registerBookstore(c, "", 3)
	c.must("POST", "/federate", map[string]any{}, http.StatusCreated)
	c.must("POST", "/intersect", map[string]any{"name": "I1", "mappings": ubookMappings}, http.StatusCreated)

	const query = "count(<<UBook, isbn>>)"
	first := c.must("POST", "/query", map[string]any{"query": query}, http.StatusOK)
	if first["result_cached"].(bool) {
		t.Fatal("first query unexpectedly result-cached")
	}
	if first["value"].(float64) != 6 {
		t.Fatalf("first answer = %v, want 6", first["value"])
	}

	second := c.must("POST", "/query", map[string]any{"query": query}, http.StatusOK)
	if !second["result_cached"].(bool) {
		t.Fatal("repeat query missed the result cache")
	}
	if !second["plan_cached"].(bool) {
		t.Fatal("repeat query missed the plan cache")
	}
	// A new iteration (Shop-only price refinement) publishes
	// version 2 and must invalidate the cache.
	c.must("POST", "/refine", map[string]any{
		"name": "prices",
		"mapping": map[string]any{
			"target": "<<UBook, price>>",
			"forward": []map[string]any{
				{"source": "Shop", "query": "[{'SHOP', k, x} | {k, x} <- <<items, price>>]"},
			},
		},
	}, http.StatusCreated)

	third := c.must("POST", "/query", map[string]any{"query": query}, http.StatusOK)
	if third["result_cached"].(bool) {
		t.Fatal("query after new iteration still served from the result cache")
	}
	if third["version"].(float64) != 2 {
		t.Fatalf("post-iteration version = %v, want 2", third["version"])
	}
	// The same canonical query under whitespace variation hits the
	// result cache thanks to normalisation.
	fourth := c.must("POST", "/query", map[string]any{"query": "count(<<UBook,   isbn>>)"}, http.StatusOK)
	if !fourth["result_cached"].(bool) {
		t.Fatal("normalised query variant missed the result cache")
	}
}

// TestConcurrentClients hammers the server from many goroutines while
// an integration iteration lands mid-flight; run under -race this
// exercises the whole locking stack (registry, session, integrator,
// processor, caches).
func TestConcurrentClients(t *testing.T) {
	_, c := newTestClient(t, DefaultConfig())
	registerBookstore(c, "", 20)
	c.must("POST", "/federate", map[string]any{}, http.StatusCreated)
	c.must("POST", "/intersect", map[string]any{"name": "I1", "mappings": ubookMappings}, http.StatusCreated)

	const clients = 8
	const perClient = 25
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				body := map[string]any{"query": "count(<<UBook>>)"}
				if i%3 == 1 {
					body["version"] = 0
					body["query"] = "count(<<library_books>>)"
				}
				if i%5 == 0 {
					body["no_cache"] = true
				}
				status, out := c.do("POST", "/query", body)
				if status != http.StatusOK {
					errs <- fmt.Errorf("client %d query %d: status %d (%v)", g, i, status, out)
					return
				}
			}
		}(g)
	}
	// Land a refinement while clients are querying.
	time.Sleep(5 * time.Millisecond)
	c.must("POST", "/refine", map[string]any{
		"name": "titles",
		"mapping": map[string]any{
			"target": "<<UBook, title>>",
			"forward": []map[string]any{
				{"source": "Library", "query": "[{'LIB', k, x} | {k, x} <- <<books, title>>]"},
			},
		},
	}, http.StatusCreated)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	m := c.must("GET", "/metrics", nil, http.StatusOK)
	if m["query_errors"].(float64) != 0 {
		t.Fatalf("query_errors = %v, want 0", m["query_errors"])
	}
	rc := m["result_cache"].(map[string]any)
	if rc["hits"].(float64) == 0 {
		t.Fatal("no result-cache hits under concurrent repeat queries")
	}
}

// TestQueryTimeout verifies per-request deadlines abort long
// evaluations with 504.
func TestQueryTimeout(t *testing.T) {
	_, c := newTestClient(t, DefaultConfig())
	registerBookstore(c, "", 300)
	c.must("POST", "/federate", map[string]any{}, http.StatusCreated)
	// A 4-way cross join over 300-element extents: ~8.1e9 bindings,
	// far beyond anything a 50ms deadline allows.
	status, out := c.do("POST", "/query", map[string]any{
		"query":      "count([1 | a <- <<library_books>>; b <- <<library_books>>; c <- <<library_books>>; d <- <<library_books>>])",
		"timeout_ms": 50,
	})
	if status != http.StatusGatewayTimeout {
		t.Fatalf("timeout query status = %d (%v), want 504", status, out)
	}
	m := c.must("GET", "/metrics", nil, http.StatusOK)
	if m["query_timeouts"].(float64) != 1 {
		t.Fatalf("query_timeouts = %v, want 1", m["query_timeouts"])
	}
}

// TestWorkflowErrors verifies the API's failure modes.
func TestWorkflowErrors(t *testing.T) {
	_, c := newTestClient(t, DefaultConfig())

	// Query / federate before any session exists.
	status, _ := c.do("POST", "/query", map[string]any{"query": "1 + 1"})
	if status != http.StatusNotFound {
		t.Fatalf("query without session = %d, want 404", status)
	}
	status, _ = c.do("POST", "/federate", map[string]any{})
	if status != http.StatusNotFound {
		t.Fatalf("federate without session = %d, want 404", status)
	}

	registerBookstore(c, "", 2)

	// Query before federate.
	status, _ = c.do("POST", "/query", map[string]any{"query": "count(<<books>>)"})
	if status != http.StatusBadRequest {
		t.Fatalf("query before federate = %d, want 400", status)
	}
	c.must("POST", "/federate", map[string]any{}, http.StatusCreated)

	// Double federate conflicts; late source registration conflicts.
	status, _ = c.do("POST", "/federate", map[string]any{})
	if status != http.StatusConflict {
		t.Fatalf("double federate = %d, want 409", status)
	}
	status, _ = c.do("POST", "/sources", map[string]any{
		"name":   "Late",
		"tables": []map[string]any{{"name": "t", "columns": []string{"id:int"}}},
	})
	if status != http.StatusConflict {
		t.Fatalf("late source = %d, want 409", status)
	}

	// Malformed IQL and unknown objects.
	status, _ = c.do("POST", "/query", map[string]any{"query": "count(<<"})
	if status != http.StatusBadRequest {
		t.Fatalf("bad IQL = %d, want 400", status)
	}
	status, _ = c.do("POST", "/query", map[string]any{"query": "count(<<nope>>)"})
	if status != http.StatusBadRequest {
		t.Fatalf("unknown object = %d, want 400", status)
	}

	// Unknown schema version.
	status, _ = c.do("POST", "/query", map[string]any{"query": "count(<<library_books>>)", "version": 99})
	if status != http.StatusBadRequest {
		t.Fatalf("unknown version = %d, want 400", status)
	}

	// Bad inline rows: fractional value for an int column.
	status, _ = c.do("POST", "/sources", map[string]any{
		"session": "other",
		"name":    "Bad",
		"tables": []map[string]any{{
			"name": "t", "columns": []string{"id:int"}, "rows": [][]any{{1.5}},
		}},
	})
	if status != http.StatusBadRequest {
		t.Fatalf("fractional int cell = %d, want 400", status)
	}
}

// TestSessionsAreIsolated verifies two sessions integrate and cache
// independently.
func TestSessionsAreIsolated(t *testing.T) {
	_, c := newTestClient(t, DefaultConfig())
	registerBookstore(c, "a", 2)
	registerBookstore(c, "b", 5)
	c.must("POST", "/federate", map[string]any{"session": "a"}, http.StatusCreated)
	c.must("POST", "/federate", map[string]any{"session": "b"}, http.StatusCreated)

	qa := c.must("POST", "/query", map[string]any{"session": "a", "query": "count(<<library_books>>)"}, http.StatusOK)
	qb := c.must("POST", "/query", map[string]any{"session": "b", "query": "count(<<library_books>>)"}, http.StatusOK)
	if qa["value"].(float64) != 2 || qb["value"].(float64) != 5 {
		t.Fatalf("session isolation broken: a=%v b=%v", qa["value"], qb["value"])
	}

	sessions := c.must("GET", "/sessions", nil, http.StatusOK)
	if n := len(sessions["sessions"].([]any)); n != 2 {
		t.Fatalf("len(sessions) = %d, want 2", n)
	}
}
