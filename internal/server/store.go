package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/dataspace/automed/internal/core"
	"github.com/dataspace/automed/internal/fsatomic"
	"github.com/dataspace/automed/internal/wrapper"
)

// sessionState is the durable form of one server session: either a
// pre-federation source list or — once federated — the integrator's
// full snapshot (which carries the sources itself). One JSON file per
// session.
type sessionState struct {
	Format int    `json:"format"`
	Name   string `json:"name"`
	// Sources holds registered-but-not-yet-federated sources; once the
	// session federates they move inside Integrator.
	Sources []*wrapper.Snapshot `json:"sources,omitempty"`
	// Integrator is the full core snapshot; nil before Federate.
	Integrator *core.Snapshot `json:"integrator,omitempty"`
}

// storeFormat is the session-file format version.
const storeFormat = 1

// errBadSnapshot marks a snapshot file that exists but cannot be used
// (malformed JSON, wrong format version, missing or mismatched name) —
// a client/operational condition, distinct from I/O failures.
var errBadSnapshot = errors.New("server: unusable session snapshot")

// Store persists sessions as one JSON file per session in a directory.
//
// Durability contract: each save writes a temporary file in the same
// directory, fsyncs it, and renames it over the destination. A crash
// mid-write therefore never truncates or corrupts an existing snapshot
// — the worst case is serving the previous one. The directory entry
// itself is not fsync'd, so an operating-system crash (as opposed to a
// process crash) may lose the very latest rename.
type Store struct {
	dir string
}

// NewStore opens (creating if needed) a session store directory.
func NewStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("server: store directory is required")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("server: opening store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's directory.
func (st *Store) Dir() string { return st.dir }

// fileName encodes a session name into a safe, collision-free file
// name: percent-encoding is injective and leaves no path separators,
// and the "s-" prefix keeps every snapshot distinguishable from the
// store's dot-prefixed temp files whatever the session is called.
func fileName(session string) string {
	return "s-" + url.PathEscape(session) + ".json"
}

// Path returns the file a session is stored at.
func (st *Store) Path(session string) string {
	return filepath.Join(st.dir, fileName(session))
}

// Save atomically writes one session's state.
func (st *Store) Save(state *sessionState) error {
	if state == nil || state.Name == "" {
		return fmt.Errorf("server: invalid session state")
	}
	data, err := json.MarshalIndent(state, "", "  ")
	if err != nil {
		return fmt.Errorf("server: encoding session %q: %w", state.Name, err)
	}
	data = append(data, '\n')
	err = fsatomic.WriteFile(st.Path(state.Name), func(w io.Writer) error {
		_, werr := w.Write(data)
		return werr
	})
	if err != nil {
		return fmt.Errorf("server: saving session %q: %w", state.Name, err)
	}
	return nil
}

// Load reads one session's state by name.
func (st *Store) Load(session string) (*sessionState, error) {
	return st.loadFile(st.Path(session))
}

func (st *Store) loadFile(path string) (*sessionState, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("server: loading session snapshot: %w", err)
	}
	// UseNumber keeps relational int64 row cells exact instead of
	// routing them through float64.
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	var state sessionState
	if err := dec.Decode(&state); err != nil {
		return nil, fmt.Errorf("%w: decoding %s: %v", errBadSnapshot, filepath.Base(path), err)
	}
	if state.Format != storeFormat {
		return nil, fmt.Errorf("%w: %s has format %d (want %d)",
			errBadSnapshot, filepath.Base(path), state.Format, storeFormat)
	}
	if state.Name == "" {
		return nil, fmt.Errorf("%w: %s has no session name", errBadSnapshot, filepath.Base(path))
	}
	return &state, nil
}

// LoadAll reads every session snapshot in the store, sorted by file
// name. In-progress temp files are skipped; any unreadable snapshot is
// an error, so a daemon never silently starts without part of its
// state.
func (st *Store) LoadAll() ([]*sessionState, error) {
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return nil, fmt.Errorf("server: reading store: %w", err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasPrefix(e.Name(), "s-") || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	out := make([]*sessionState, 0, len(names))
	for _, n := range names {
		state, err := st.loadFile(filepath.Join(st.dir, n))
		if err != nil {
			return nil, err
		}
		out = append(out, state)
	}
	return out, nil
}
