package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// acquireNow admits immediately or fails the test.
func acquireNow(t *testing.T, a *admission, session string) func() {
	t.Helper()
	release, _, err := a.acquire(context.Background(), session)
	if err != nil {
		t.Fatalf("acquire(%q): %v", session, err)
	}
	return release
}

func TestAdmissionLimitAndQueueBound(t *testing.T) {
	a := newAdmission(1, 1, nil)
	release := acquireNow(t, a, "s1")

	// The second request parks; the third finds the queue full.
	type res struct {
		release func()
		wait    time.Duration
		err     error
	}
	second := make(chan res, 1)
	go func() {
		r, w, err := a.acquire(context.Background(), "s1")
		second <- res{r, w, err}
	}()
	waitForDepth(t, a, 1)
	if _, _, err := a.acquire(context.Background(), "s2"); err != errOverCapacity {
		t.Fatalf("acquire beyond the queue bound = %v, want errOverCapacity", err)
	}

	release()
	got := <-second
	if got.err != nil {
		t.Fatalf("queued acquire failed: %v", got.err)
	}
	if got.wait <= 0 {
		t.Error("queued acquire reports zero wait")
	}
	got.release()
	if st := a.stats(); st.Inflight != 0 || st.Depth != 0 {
		t.Errorf("stats after release = %+v, want idle", st)
	}
}

// TestAdmissionFairQueue pins the deficit-round-robin guarantee: a hot
// session with a deep backlog cannot starve a session that queued one
// request.
func TestAdmissionFairQueue(t *testing.T) {
	a := newAdmission(1, 64, nil)
	release := acquireNow(t, a, "seed")

	var mu sync.Mutex
	var order []string
	var wg sync.WaitGroup

	// Eight hog requests first, then one from the small session; each
	// parks before the next enqueues so FIFO order is deterministic.
	for i := 0; i < 8; i++ {
		enqueueOne(t, a, "hog", &wg, &mu, &order)
	}
	enqueueOne(t, a, "small", &wg, &mu, &order)
	waitForDepth(t, a, 9)

	release()
	wg.Wait()

	pos := -1
	for i, s := range order {
		if s == "small" {
			pos = i
		}
	}
	if pos < 0 {
		t.Fatal("small session's request never ran")
	}
	// Round-robin with weight 1 alternates sessions, so the small
	// session is served by the second grant — long before the hog
	// backlog empties.
	if pos > 2 {
		t.Errorf("small session served at position %d of %d; hog starved it", pos, len(order))
	}
}

// enqueueOne parks one waiter for session and records its completion.
func enqueueOne(t *testing.T, a *admission, session string, wg *sync.WaitGroup, mu *sync.Mutex, order *[]string) {
	t.Helper()
	before := queueDepth(a)
	wg.Add(1)
	go func() {
		defer wg.Done()
		r, _, err := a.acquire(context.Background(), session)
		if err != nil {
			t.Errorf("acquire(%q): %v", session, err)
			return
		}
		mu.Lock()
		*order = append(*order, session)
		mu.Unlock()
		r()
	}()
	waitForDepth(t, a, before+1)
}

func queueDepth(a *admission) int { return a.stats().Depth }

// waitForDepth polls until the queue holds exactly want waiters.
func waitForDepth(t *testing.T, a *admission, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if queueDepth(a) == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("queue depth never reached %d (at %d)", want, queueDepth(a))
}

// TestAdmissionNoGoroutineLeak drives parked waiters through the three
// ways a queued request can exit — grant, context cancellation, and
// drain — and checks every waiter goroutine unwinds. A leaked waiter
// would pin its request context (and, under load, the admission mutex
// wait chain) for the life of the process.
func TestAdmissionNoGoroutineLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	a := newAdmission(1, 32, nil)
	release := acquireNow(t, a, "held")

	// Batch 1 exits by cancellation.
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if r, _, err := a.acquire(ctx, "cancelled"); err == nil {
				r()
			}
		}()
	}
	waitForDepth(t, a, 8)
	cancel()
	wg.Wait()

	// Batch 2 is granted one by one as each holder releases.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, _, err := a.acquire(context.Background(), "granted")
			if err != nil {
				t.Errorf("granted batch: %v", err)
				return
			}
			r()
		}()
	}
	waitForDepth(t, a, 4)
	release()
	wg.Wait()

	// Batch 3 exits when the server begins draining.
	release = acquireNow(t, a, "held")
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := a.acquire(context.Background(), "drained"); err != errDraining {
				t.Errorf("drained waiter = %v, want errDraining", err)
			}
		}()
	}
	waitForDepth(t, a, 8)
	a.beginDrain()
	wg.Wait()
	release()
	if err := a.waitIdle(context.Background()); err != nil {
		t.Fatalf("waitIdle: %v", err)
	}

	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > base+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked through the admission queue: %d at start, %d after",
				base, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestAdmissionCancelWhileQueued(t *testing.T) {
	a := newAdmission(1, 8, nil)
	release := acquireNow(t, a, "s1")
	defer release()

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, _, err := a.acquire(ctx, "s1")
		errc <- err
	}()
	waitForDepth(t, a, 1)
	cancel()
	if err := <-errc; err != context.Canceled {
		t.Fatalf("cancelled acquire = %v, want context.Canceled", err)
	}
	if st := a.stats(); st.Depth != 0 {
		t.Errorf("cancelled waiter still counted: %+v", st)
	}
}

func TestAdmissionDrainWakesWaiters(t *testing.T) {
	a := newAdmission(1, 8, nil)
	release := acquireNow(t, a, "s1")

	errc := make(chan error, 1)
	go func() {
		_, _, err := a.acquire(context.Background(), "s1")
		errc <- err
	}()
	waitForDepth(t, a, 1)
	a.beginDrain()
	if err := <-errc; err != errDraining {
		t.Fatalf("drained waiter = %v, want errDraining", err)
	}
	if _, _, err := a.acquire(context.Background(), "s2"); err != errDraining {
		t.Fatalf("acquire while draining = %v, want errDraining", err)
	}
	// The in-flight request still finishes and idle unblocks.
	done := make(chan error, 1)
	go func() { done <- a.waitIdle(context.Background()) }()
	release()
	if err := <-done; err != nil {
		t.Fatalf("waitIdle: %v", err)
	}
}

// TestServerOverloadReturns429 drives the HTTP surface: with the single
// slot held and no queue, a query is rejected with 429 + Retry-After
// instead of piling up, and the rejection is visible in /metrics.
func TestServerOverloadReturns429(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxInflight = 1
	cfg.MaxQueue = 0
	s, c := newTestClient(t, cfg)
	registerBookstore(c, "", 1)
	c.must("POST", "/federate", map[string]any{"name": "F"}, http.StatusCreated)

	release, _, err := s.adm.acquire(context.Background(), "default")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(c.srv.URL+"/query", "application/json",
		strings.NewReader(`{"query": "count(<<library_books>>)"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("query at capacity = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 has no Retry-After header")
	}
	var body apiError
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decoding 429 body: %v", err)
	}
	if body.Error == "" {
		t.Error("429 body has no error message")
	}
	release()

	// Capacity freed: the same query succeeds, and the metrics recorded
	// the rejection.
	c.must("POST", "/query", map[string]any{"query": "count(<<library_books>>)"}, http.StatusOK)
	m := c.must("GET", "/metrics", nil, http.StatusOK)
	queue := m["queue"].(map[string]any)
	if queue["rejected_total"].(float64) < 1 {
		t.Errorf("queue.rejected_total = %v, want >= 1", queue["rejected_total"])
	}
	if queue["max_inflight"].(float64) != 1 {
		t.Errorf("queue.max_inflight = %v, want 1", queue["max_inflight"])
	}
}

// TestServerFairQueueAcrossSessions holds the only slot, backlogs one
// session over HTTP with deliberately slow queries, then checks a
// second session's single query is served long before the backlog
// empties. Slow queries (a sleeping REST backend, cache bypassed) make
// the serialized grant order dominate scheduling noise.
func TestServerFairQueueAcrossSessions(t *testing.T) {
	const step = 60 * time.Millisecond
	const hogs = 6
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/books") {
			time.Sleep(step)
		}
		fmt.Fprint(w, `[{"id": 1}]`)
	}))
	defer slow.Close()

	// Every query targets its own collection so each one pays the slow
	// fetch (per-session extent caches would otherwise absorb all but
	// the first and let scheduling noise decide the finishing order).
	collections := make([]map[string]any, hogs)
	for i := range collections {
		collections[i] = map[string]any{"name": fmt.Sprintf("books%d", i), "fields": []string{"id"}}
	}
	cfg := DefaultConfig()
	cfg.MaxInflight = 1
	cfg.MaxQueue = 32
	s, c := newTestClient(t, cfg)
	for _, sess := range []string{"hog", "small"} {
		c.must("POST", "/sources", map[string]any{
			"session": sess,
			"name":    "R",
			"rest": map[string]any{
				"endpoint":    slow.URL,
				"collections": collections,
			},
		}, http.StatusCreated)
		c.must("POST", "/federate", map[string]any{"session": sess, "name": "F"}, http.StatusCreated)
	}

	release, _, err := s.adm.acquire(context.Background(), "seed")
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	done := make(map[string][]time.Time)
	var wg sync.WaitGroup
	post := func(session string, coll int) {
		defer wg.Done()
		status, _ := c.do("POST", "/query", map[string]any{
			"session":  session,
			"query":    fmt.Sprintf("count(<<r_books%d>>)", coll),
			"no_cache": true,
		})
		if status != http.StatusOK {
			t.Errorf("session %q query = %d, want 200", session, status)
			return
		}
		mu.Lock()
		done[session] = append(done[session], time.Now())
		mu.Unlock()
	}
	for i := 0; i < hogs; i++ {
		wg.Add(1)
		go post("hog", i)
		waitForDepth(t, s.adm, i+1)
	}
	wg.Add(1)
	go post("small", 0)
	waitForDepth(t, s.adm, hogs+1)

	release()
	wg.Wait()

	if len(done["small"]) != 1 || len(done["hog"]) != hogs {
		t.Fatalf("completions: small=%d hog=%d", len(done["small"]), len(done["hog"]))
	}
	// Round-robin grants the small session's lone query second; with
	// every query costing ~step it must beat at least half the hog
	// backlog. FIFO (the bug this guards against) would finish it last.
	smallAt := done["small"][0]
	beaten := 0
	for _, h := range done["hog"] {
		if smallAt.Before(h) {
			beaten++
		}
	}
	if beaten < hogs/2 {
		t.Errorf("small session's query beat only %d of %d hog queries; the hot session starved it", beaten, hogs)
	}
}

// TestDrainRejectsNewWork pins the draining responses on a live
// handler: queries 503 with Retry-After and /healthz goes unready so
// load balancers stop routing here.
func TestDrainRejectsNewWork(t *testing.T) {
	s, c := newTestClient(t, DefaultConfig())
	registerBookstore(c, "", 1)
	c.must("POST", "/federate", map[string]any{"name": "F"}, http.StatusCreated)

	s.BeginDrain()
	resp, err := http.Post(c.srv.URL+"/query", "application/json",
		strings.NewReader(`{"query": "count(<<library_books>>)"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("query while draining = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("draining 503 has no Retry-After header")
	}

	hresp, err := http.Get(c.srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("GET /healthz while draining = %d, want 503", hresp.StatusCode)
	}
	var health map[string]any
	if err := json.NewDecoder(hresp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health["status"] != "draining" {
		t.Errorf(`healthz status = %v, want "draining"`, health["status"])
	}
	if m := c.must("GET", "/metrics", nil, http.StatusOK); m["queue"].(map[string]any)["draining"] != true {
		t.Error("metrics do not report draining")
	}
}

// TestServeGracefulDrain covers the SIGTERM path end to end: a slow
// in-flight query keeps running across the signal and completes, new
// work is rejected with 503, /healthz goes unready, sessions are
// flushed to the store, and ServeGraceful returns nil (no request
// dropped).
func TestServeGracefulDrain(t *testing.T) {
	// A REST backend whose extent fetch is slow pins the in-flight
	// query across the SIGTERM.
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/books" {
			time.Sleep(400 * time.Millisecond)
		}
		fmt.Fprint(w, `[{"id": 1, "title": "A"}]`)
	}))
	defer slow.Close()

	dir := t.TempDir()
	s := New(DefaultConfig())
	if err := s.OpenStore(dir); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + ln.Addr().String()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM)
	defer stop()
	served := make(chan error, 1)
	go func() { served <- s.ServeGraceful(ctx, ln, 5*time.Second) }()

	postJSON := func(path, body string) (int, []byte) {
		t.Helper()
		resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		var buf [4096]byte
		n, _ := resp.Body.Read(buf[:])
		return resp.StatusCode, buf[:n]
	}
	if code, body := postJSON("/sources", fmt.Sprintf(
		`{"name": "R", "rest": {"endpoint": %q, "collections": [{"name": "books", "fields": ["id", "title"]}]}}`,
		slow.URL)); code != http.StatusCreated {
		t.Fatalf("POST /sources = %d: %s", code, body)
	}
	if code, body := postJSON("/federate", `{"name": "F"}`); code != http.StatusCreated {
		t.Fatalf("POST /federate = %d: %s", code, body)
	}

	// Launch the slow query, wait until it is admitted, then SIGTERM.
	// (Draining responses to new work are covered by
	// TestDrainRejectsNewWork — after the signal the listener is closing,
	// so new connections here would race it.)
	inflight := make(chan int, 1)
	go func() {
		code, _ := postJSON("/query", `{"query": "count(<<r_books>>)", "no_cache": true}`)
		inflight <- code
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.QueueStats().Inflight == 0 {
		if time.Now().After(deadline) {
			t.Fatal("slow query never became in-flight")
		}
		time.Sleep(time.Millisecond)
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	// The in-flight query completes; the server exits cleanly; the
	// session snapshot reached the store.
	if code := <-inflight; code != http.StatusOK {
		t.Errorf("in-flight query across SIGTERM = %d, want 200", code)
	}
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("ServeGraceful = %v, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("ServeGraceful never returned")
	}
	snap := filepath.Join(dir, fileName("default"))
	if _, err := os.Stat(snap); err != nil {
		t.Errorf("drain did not flush the session snapshot: %v", err)
	}
}
