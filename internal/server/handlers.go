package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/dataspace/automed/internal/core"
	"github.com/dataspace/automed/internal/hdm"
	"github.com/dataspace/automed/internal/iql"
	"github.com/dataspace/automed/internal/match"
	"github.com/dataspace/automed/internal/obs"
	"github.com/dataspace/automed/internal/query"
	"github.com/dataspace/automed/internal/rel"
	"github.com/dataspace/automed/internal/wrapper"
)

// ---- JSON plumbing ----

type apiError struct {
	Error     string `json:"error"`
	RequestID string `json:"request_id,omitempty"`
}

// ridKey carries the request ID through handler contexts.
type ridKeyType struct{}

var ridKey ridKeyType

func withRequestID(ctx context.Context, rid string) context.Context {
	return context.WithValue(ctx, ridKey, rid)
}

// requestID returns the request's generated (or propagated) ID.
func requestID(r *http.Request) string {
	rid, _ := r.Context().Value(ridKey).(string)
	return rid
}

// respBufPool recycles response-encoding buffers across requests.
var respBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

func writeJSON(w http.ResponseWriter, status int, v any) {
	// Encode before committing the status so an unencodable value
	// (e.g. a NaN float loaded from source data) becomes a 500, not a
	// 200 with a truncated body.
	buf := respBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	defer respBufPool.Put(buf)
	enc := json.NewEncoder(buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		if _, isErr := v.(apiError); !isErr {
			writeJSON(w, http.StatusInternalServerError,
				apiError{Error: fmt.Sprintf("server: encoding response: %v", err)})
			return
		}
		http.Error(w, `{"error":"server: encoding response failed"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(buf.Bytes())
}

func writeErr(w http.ResponseWriter, r *http.Request, status int, err error) {
	writeJSON(w, status, apiError{Error: err.Error(), RequestID: requestID(r)})
}

// admit gates one unit of work (a query or an integration step) through
// the admission controller, parking it in the per-session fair queue at
// capacity. On rejection it writes the whole response — 429 at the
// queue bound, 503 while draining or when the caller's deadline expired
// in the queue, both with a Retry-After estimate — and returns ok
// false. On admission the returned release must be called when the work
// finishes. The wait (if any) is recorded as a queue span on the
// context's trace and in the automed_queue_wait_seconds histogram.
func (s *Server) admit(ctx context.Context, w http.ResponseWriter, r *http.Request, session string) (release func(), ok bool) {
	if session == "" {
		session = "default"
	}
	sp, _ := obs.StartSpan(ctx, obs.StageQueue, session)
	release, waited, err := s.adm.acquire(ctx, session)
	if err == nil {
		s.metrics.QueueAdmitted(waited)
		sp.End(nil)
		return release, true
	}
	sp.End(err)
	w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
	switch {
	case errors.Is(err, errOverCapacity):
		s.metrics.QueueRejected()
		writeErr(w, r, http.StatusTooManyRequests, err)
	case errors.Is(err, errDraining):
		s.metrics.QueueDrainRejected()
		writeErr(w, r, http.StatusServiceUnavailable, err)
	default:
		// The caller's context expired while parked in the queue.
		writeErr(w, r, http.StatusServiceUnavailable,
			fmt.Errorf("server: request expired in the admission queue: %w", err))
	}
	return nil, false
}

// errStatus maps workflow errors onto HTTP statuses.
func errStatus(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	}
	msg := err.Error()
	switch {
	case strings.Contains(msg, "no session"):
		return http.StatusNotFound
	case strings.Contains(msg, "already"):
		return http.StatusConflict
	default:
		return http.StatusBadRequest
	}
}

func decode(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("server: invalid request body: %w", err)
	}
	return nil
}

// ---- Value rendering ----

// valueJSON converts an IQL value into a JSON-encodable shape: scalars
// map to JSON scalars, tuples to {"tuple": [...]}, bags to
// {"bag": [...]} with elements in canonical order (bags are multisets,
// so a deterministic order is free to choose and keeps responses
// stable), Void/Any to {"const": ...}.
func valueJSON(v iql.Value) any {
	switch v.Kind {
	case iql.KindNull:
		return nil
	case iql.KindBool:
		return v.B
	case iql.KindInt:
		return v.I
	case iql.KindFloat:
		return v.F
	case iql.KindString:
		return v.S
	case iql.KindTuple:
		items := make([]any, len(v.Items))
		for i, it := range v.Items {
			items[i] = valueJSON(it)
		}
		return map[string]any{"tuple": items}
	case iql.KindBag:
		sorted, err := iql.SortBag(v)
		if err != nil {
			sorted = v
		}
		items := make([]any, len(sorted.Items))
		for i, it := range sorted.Items {
			items[i] = valueJSON(it)
		}
		return map[string]any{"bag": items}
	case iql.KindVoid:
		return map[string]any{"const": "Void"}
	case iql.KindAny:
		return map[string]any{"const": "Any"}
	}
	return v.String()
}

// ---- POST /sources ----

type fkSpec struct {
	Column   string `json:"column"`
	RefTable string `json:"ref_table"`
}

type tableSpec struct {
	Name string `json:"name"`
	// Columns are "name:type" specs (type one of string, int, float,
	// bool, default string); the first column is the primary key
	// unless one carries a "!pk" suffix.
	Columns     []string `json:"columns"`
	Rows        [][]any  `json:"rows"`
	ForeignKeys []fkSpec `json:"foreign_keys,omitempty"`
}

// sqlSpec registers a live SQL backend reached through database/sql;
// the daemon binary must have the named driver compiled in.
type sqlSpec struct {
	Driver string `json:"driver"`
	DSN    string `json:"dsn"`
	// Dialect selects introspection: "sqlite" (default) or
	// "information_schema".
	Dialect string `json:"dialect,omitempty"`
	// TimeoutMs bounds each introspection query and extent fetch.
	TimeoutMs int `json:"timeout_ms,omitempty"`
}

type restCollectionSpec struct {
	Name   string   `json:"name"`
	Key    string   `json:"key,omitempty"`
	Path   string   `json:"path,omitempty"`
	Fields []string `json:"fields,omitempty"`
}

// restSpec registers a JSON/REST endpoint; collections are discovered
// from the endpoint root when none are declared.
type restSpec struct {
	Endpoint    string               `json:"endpoint"`
	Collections []restCollectionSpec `json:"collections,omitempty"`
	// TimeoutMs bounds each fetch; MaxBytes bounds each response body.
	TimeoutMs int   `json:"timeout_ms,omitempty"`
	MaxBytes  int64 `json:"max_bytes,omitempty"`
}

// faultSpec registers a fault-injection wrapper around an inline
// relational source: the tables behave like an ordinary Tables source
// until the fault configuration makes them misbehave. It exists for
// chaos drills and the chaos-smoke gate — a way to point the daemon's
// fault-tolerance machinery at a source that fails on demand.
type faultSpec struct {
	Tables []tableSpec         `json:"tables"`
	Config wrapper.FaultConfig `json:"config"`
}

type sourcesReq struct {
	Session string `json:"session,omitempty"`
	// Name is the data source schema name.
	Name string `json:"name"`
	// Exactly one of CSVDir, Tables, SQL, REST or Fault selects the
	// backend. CSVDir loads a directory of typed-header CSV files.
	CSVDir string      `json:"csv_dir,omitempty"`
	Tables []tableSpec `json:"tables,omitempty"`
	SQL    *sqlSpec    `json:"sql,omitempty"`
	REST   *restSpec   `json:"rest,omitempty"`
	Fault  *faultSpec  `json:"fault,omitempty"`
}

type sourcesResp struct {
	Session string   `json:"session"`
	Source  string   `json:"source"`
	Objects []string `json:"objects"`
	Sources []string `json:"sources"`
}

func (s *Server) handleSources(w http.ResponseWriter, r *http.Request) {
	var req sourcesReq
	if err := decode(r, &req); err != nil {
		writeErr(w, r, http.StatusBadRequest, err)
		return
	}
	if req.Name == "" {
		writeErr(w, r, http.StatusBadRequest, fmt.Errorf("server: source name is required"))
		return
	}
	variants := 0
	for _, set := range []bool{req.CSVDir != "", len(req.Tables) > 0, req.SQL != nil, req.REST != nil, req.Fault != nil} {
		if set {
			variants++
		}
	}
	if variants != 1 {
		writeErr(w, r, http.StatusBadRequest, fmt.Errorf("server: provide exactly one of csv_dir, tables, sql, rest or fault"))
		return
	}
	release, ok := s.admit(r.Context(), w, r, req.Session)
	if !ok {
		return
	}
	defer release()
	var (
		wrap wrapper.Wrapper
		err  error
	)
	// Remote-backend construction (SQL introspection, REST discovery)
	// runs under the request context: a client that disconnects — or a
	// dead endpoint — no longer pins the handler for the full wrapper
	// timeout.
	switch {
	case req.CSVDir != "":
		wrap, err = wrapper.NewCSVDir(req.Name, req.CSVDir)
	case req.SQL != nil:
		wrap, err = wrapper.NewSQLContext(r.Context(), req.Name, wrapper.SQLConfig{
			Driver:        req.SQL.Driver,
			DSN:           req.SQL.DSN,
			Dialect:       req.SQL.Dialect,
			Timeout:       time.Duration(req.SQL.TimeoutMs) * time.Millisecond,
			FetchPageRows: s.cfg.FetchPageRows,
		})
	case req.REST != nil:
		cfg := wrapper.RESTConfig{
			Endpoint: req.REST.Endpoint,
			Timeout:  time.Duration(req.REST.TimeoutMs) * time.Millisecond,
			MaxBytes: req.REST.MaxBytes,
		}
		for _, c := range req.REST.Collections {
			cfg.Collections = append(cfg.Collections, wrapper.RESTCollection{
				Name: c.Name, Key: c.Key, Path: c.Path, Fields: c.Fields,
			})
		}
		wrap, err = wrapper.NewRESTContext(r.Context(), req.Name, cfg)
	case req.Fault != nil:
		var inner wrapper.Wrapper
		inner, err = buildInlineSource(req.Name, req.Fault.Tables)
		if err == nil {
			wrap, err = wrapper.NewFault(inner, req.Fault.Config)
		}
	default:
		wrap, err = buildInlineSource(req.Name, req.Tables)
	}
	if err != nil {
		writeErr(w, r, http.StatusBadRequest, err)
		return
	}
	sess, err := s.reg.Get(req.Session, true)
	if err != nil {
		writeErr(w, r, errStatus(err), err)
		return
	}
	if err := sess.AddSource(wrap); err != nil {
		writeErr(w, r, errStatus(err), err)
		return
	}
	s.persist(sess)
	writeJSON(w, http.StatusCreated, sourcesResp{
		Session: sess.Name(),
		Source:  req.Name,
		Objects: schemeStrings(wrap.Schema()),
		Sources: sess.SourceNames(),
	})
}

// buildInlineSource assembles a relational source from inline table
// specs, mirroring the library's SourceBuilder conventions.
func buildInlineSource(name string, tables []tableSpec) (wrapper.Wrapper, error) {
	db := rel.NewDB(name)
	for _, ts := range tables {
		if ts.Name == "" {
			return nil, fmt.Errorf("server: source %q: table name is required", name)
		}
		cols := make([]rel.Column, len(ts.Columns))
		types := make([]rel.Type, len(ts.Columns))
		pk := ""
		for i, spec := range ts.Columns {
			isPK := strings.HasSuffix(spec, "!pk")
			spec = strings.TrimSuffix(spec, "!pk")
			cname, ctype := spec, "string"
			if j := strings.LastIndex(spec, ":"); j >= 0 {
				cname, ctype = spec[:j], spec[j+1:]
			}
			ty, err := rel.ParseType(ctype)
			if err != nil {
				return nil, fmt.Errorf("server: source %q table %q: %w", name, ts.Name, err)
			}
			cols[i] = rel.Column{Name: cname, Type: ty}
			types[i] = ty
			if isPK {
				pk = cname
			}
		}
		t, err := db.CreateTable(ts.Name, cols, pk)
		if err != nil {
			return nil, fmt.Errorf("server: source %q: %w", name, err)
		}
		for rn, row := range ts.Rows {
			if len(row) != len(cols) {
				return nil, fmt.Errorf("server: source %q table %q row %d: %d cells for %d columns",
					name, ts.Name, rn, len(row), len(cols))
			}
			vals := make([]any, len(row))
			for i, cell := range row {
				v, err := coerceCell(cell, types[i])
				if err != nil {
					return nil, fmt.Errorf("server: source %q table %q row %d column %q: %w",
						name, ts.Name, rn, cols[i].Name, err)
				}
				vals[i] = v
			}
			if err := t.Insert(vals...); err != nil {
				return nil, fmt.Errorf("server: source %q table %q row %d: %w", name, ts.Name, rn, err)
			}
		}
		for _, fk := range ts.ForeignKeys {
			if err := db.AddForeignKey(ts.Name, fk.Column, fk.RefTable); err != nil {
				return nil, fmt.Errorf("server: source %q: %w", name, err)
			}
		}
	}
	return wrapper.NewRelational(name, db)
}

// coerceCell maps JSON-decoded cells onto the relational cell types
// (JSON numbers arrive as float64; int columns require integral ones).
func coerceCell(cell any, ty rel.Type) (any, error) {
	if cell == nil {
		return nil, nil
	}
	switch ty {
	case rel.Int:
		f, ok := cell.(float64)
		if !ok {
			return nil, fmt.Errorf("expected number, got %T", cell)
		}
		if f != math.Trunc(f) {
			return nil, fmt.Errorf("expected integer, got %v", f)
		}
		return int64(f), nil
	case rel.Float:
		f, ok := cell.(float64)
		if !ok {
			return nil, fmt.Errorf("expected number, got %T", cell)
		}
		return f, nil
	case rel.Bool:
		b, ok := cell.(bool)
		if !ok {
			return nil, fmt.Errorf("expected boolean, got %T", cell)
		}
		return b, nil
	default:
		s, ok := cell.(string)
		if !ok {
			return nil, fmt.Errorf("expected string, got %T", cell)
		}
		return s, nil
	}
}

func schemeStrings(s *hdm.Schema) []string {
	objs := s.Objects()
	out := make([]string, len(objs))
	for i, o := range objs {
		out[i] = o.Scheme.String()
	}
	return out
}

// ---- POST /federate ----

type federateReq struct {
	Session  string `json:"session,omitempty"`
	Name     string `json:"name,omitempty"`
	AutoDrop bool   `json:"auto_drop,omitempty"`
}

type federateResp struct {
	Session string   `json:"session"`
	Schema  string   `json:"schema"`
	Version int      `json:"version"`
	Objects []string `json:"objects"`
	// Skipped lists sources federation proceeded without (degraded
	// federation: unreachable at probe time, backfilled later).
	Skipped []string `json:"skipped_sources,omitempty"`
}

func (s *Server) handleFederate(w http.ResponseWriter, r *http.Request) {
	var req federateReq
	if err := decode(r, &req); err != nil {
		writeErr(w, r, http.StatusBadRequest, err)
		return
	}
	sess, err := s.reg.Get(req.Session, false)
	if err != nil {
		writeErr(w, r, errStatus(err), err)
		return
	}
	release, ok := s.admit(r.Context(), w, r, sess.Name())
	if !ok {
		return
	}
	defer release()
	ig, err := sess.Federate(r.Context(), req.Name, req.AutoDrop)
	if err != nil {
		writeErr(w, r, errStatus(err), err)
		return
	}
	s.metrics.Iteration()
	s.persist(sess)
	fed := ig.Federated()
	writeJSON(w, http.StatusCreated, federateResp{
		Session: sess.Name(),
		Schema:  fed.Name(),
		Version: ig.GlobalVersion(),
		Objects: schemeStrings(fed),
		Skipped: ig.Skipped(),
	})
}

// ---- POST /intersect and POST /refine ----

type forwardSpec struct {
	// Source names the contributing extensional schema; empty marks a
	// derived concept over already-integrated objects.
	Source string `json:"source,omitempty"`
	Query  string `json:"query"`
}

type reverseSpec struct {
	Source string `json:"source"`
	Object string `json:"object"`
	Query  string `json:"query"`
}

type mappingSpec struct {
	Target  string        `json:"target"`
	Forward []forwardSpec `json:"forward"`
	Reverse []reverseSpec `json:"reverse,omitempty"`
}

func (m mappingSpec) toCore() core.Mapping {
	out := core.Mapping{Target: m.Target}
	for _, f := range m.Forward {
		out.Forward = append(out.Forward, core.SourceQuery{Source: f.Source, Query: f.Query})
	}
	for _, r := range m.Reverse {
		out.Reverse = append(out.Reverse, core.ReverseQuery{Source: r.Source, Object: r.Object, Query: r.Query})
	}
	return out
}

type intersectReq struct {
	Session  string        `json:"session,omitempty"`
	Name     string        `json:"name,omitempty"`
	Mappings []mappingSpec `json:"mappings"`
	Enables  []string      `json:"enables,omitempty"`
}

type countsResp struct {
	Manual int `json:"manual"`
	Auto   int `json:"auto"`
}

type intersectResp struct {
	Session      string     `json:"session"`
	Intersection string     `json:"intersection"`
	Sources      []string   `json:"sources"`
	Targets      []string   `json:"targets"`
	Counts       countsResp `json:"counts"`
	GlobalSchema string     `json:"global_schema"`
	Version      int        `json:"version"`
}

func (s *Server) handleIntersect(w http.ResponseWriter, r *http.Request) {
	var req intersectReq
	if err := decode(r, &req); err != nil {
		writeErr(w, r, http.StatusBadRequest, err)
		return
	}
	sess, err := s.reg.Get(req.Session, false)
	if err != nil {
		writeErr(w, r, errStatus(err), err)
		return
	}
	release, ok := s.admit(r.Context(), w, r, sess.Name())
	if !ok {
		return
	}
	defer release()
	mappings := make([]core.Mapping, len(req.Mappings))
	for i, m := range req.Mappings {
		mappings[i] = m.toCore()
	}
	in, err := sess.Intersect(req.Name, mappings, req.Enables...)
	if err != nil {
		writeErr(w, r, errStatus(err), err)
		return
	}
	s.metrics.Iteration()
	s.persist(sess)
	ig, _ := sess.integrator()
	targets := make([]string, len(in.Targets))
	for i, t := range in.Targets {
		targets[i] = t.String()
	}
	writeJSON(w, http.StatusCreated, intersectResp{
		Session:      sess.Name(),
		Intersection: in.Name,
		Sources:      in.Sources,
		Targets:      targets,
		Counts:       countsResp{Manual: in.Counts.Manual(), Auto: in.Counts.Auto()},
		GlobalSchema: ig.Global().Name(),
		Version:      ig.GlobalVersion(),
	})
}

type refineReq struct {
	Session string      `json:"session,omitempty"`
	Name    string      `json:"name"`
	Mapping mappingSpec `json:"mapping"`
	Enables []string    `json:"enables,omitempty"`
}

type refineResp struct {
	Session      string `json:"session"`
	Refinement   string `json:"refinement"`
	GlobalSchema string `json:"global_schema"`
	Version      int    `json:"version"`
}

func (s *Server) handleRefine(w http.ResponseWriter, r *http.Request) {
	var req refineReq
	if err := decode(r, &req); err != nil {
		writeErr(w, r, http.StatusBadRequest, err)
		return
	}
	sess, err := s.reg.Get(req.Session, false)
	if err != nil {
		writeErr(w, r, errStatus(err), err)
		return
	}
	release, ok := s.admit(r.Context(), w, r, sess.Name())
	if !ok {
		return
	}
	defer release()
	if err := sess.Refine(req.Name, req.Mapping.toCore(), req.Enables...); err != nil {
		writeErr(w, r, errStatus(err), err)
		return
	}
	s.metrics.Iteration()
	s.persist(sess)
	ig, _ := sess.integrator()
	writeJSON(w, http.StatusCreated, refineResp{
		Session:      sess.Name(),
		Refinement:   req.Name,
		GlobalSchema: ig.Global().Name(),
		Version:      ig.GlobalVersion(),
	})
}

// ---- GET /schemas ----

type schemaVersionResp struct {
	Version int      `json:"version"`
	Name    string   `json:"name"`
	Objects []string `json:"objects"`
}

type schemasResp struct {
	Session        string              `json:"session"`
	Sources        []string            `json:"sources"`
	CurrentVersion int                 `json:"current_version"`
	Versions       []schemaVersionResp `json:"versions"`
}

func (s *Server) handleSchemas(w http.ResponseWriter, r *http.Request) {
	sess, err := s.reg.Get(r.URL.Query().Get("session"), false)
	if err != nil {
		writeErr(w, r, errStatus(err), err)
		return
	}
	resp := schemasResp{
		Session:        sess.Name(),
		Sources:        sess.SourceNames(),
		CurrentVersion: -1,
	}
	if ig, err := sess.integrator(); err == nil {
		resp.CurrentVersion = ig.GlobalVersion()
		for _, sv := range ig.Versions() {
			resp.Versions = append(resp.Versions, schemaVersionResp{
				Version: sv.Version,
				Name:    sv.Schema.Name(),
				Objects: schemeStrings(sv.Schema),
			})
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// ---- POST /query ----

type queryReq struct {
	Session string `json:"session,omitempty"`
	Query   string `json:"query"`
	// Version pins the query to a published global schema version;
	// omitted or null means the latest.
	Version *int `json:"version,omitempty"`
	// Explain adds the derivation tree of every referenced object.
	Explain bool `json:"explain,omitempty"`
	// NoCache bypasses the result cache (the plan cache still
	// applies).
	NoCache bool `json:"no_cache,omitempty"`
	// TimeoutMs shortens the server's query deadline for this request.
	TimeoutMs int `json:"timeout_ms,omitempty"`
	// RequireFresh rejects degraded answers (ones evaluated over stale
	// fallback extents) with 503 instead of returning them with a
	// warning. The X-Require-Fresh: 1 header is equivalent.
	RequireFresh bool `json:"require_fresh,omitempty"`
}

type queryResp struct {
	Session      string   `json:"session"`
	Value        any      `json:"value"`
	Rendered     string   `json:"rendered"`
	Warnings     []string `json:"warnings,omitempty"`
	Version      int      `json:"version"`
	Schema       string   `json:"schema"`
	PlanCached   bool     `json:"plan_cached"`
	ResultCached bool     `json:"result_cached"`
	// Degraded marks an answer evaluated over stale fallback extents
	// because one or more sources were unreachable; the matching
	// warnings name the sources.
	Degraded  bool              `json:"degraded,omitempty"`
	ElapsedUs int64             `json:"elapsed_us"`
	Explain   map[string]string `json:"explain,omitempty"`
	// Trace is the per-stage span tree, present when the request set
	// the X-Automed-Trace: 1 header.
	Trace *obs.TraceJSON `json:"trace,omitempty"`
}

// traceRequested reports whether the client asked for an inline trace.
func traceRequested(r *http.Request) bool {
	return r.Header.Get("X-Automed-Trace") == "1"
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryReq
	if err := decode(r, &req); err != nil {
		writeErr(w, r, http.StatusBadRequest, err)
		return
	}
	if strings.TrimSpace(req.Query) == "" {
		writeErr(w, r, http.StatusBadRequest, fmt.Errorf("server: query is required"))
		return
	}
	sess, err := s.reg.Get(req.Session, false)
	if err != nil {
		writeErr(w, r, errStatus(err), err)
		return
	}
	version := core.CurrentVersion
	if req.Version != nil {
		version = *req.Version
	}

	ctx := r.Context()
	timeout := s.cfg.QueryTimeout
	if req.TimeoutMs > 0 {
		rt := time.Duration(req.TimeoutMs) * time.Millisecond
		if timeout == 0 || rt < timeout {
			timeout = rt
		}
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	// Trace when the client asked for one, and when a slow-query
	// threshold is armed (every query is then traced; only those at or
	// above the threshold are retained in the /debug/traces ring).
	wantTrace := traceRequested(r)
	var tr *obs.Trace
	if wantTrace || s.cfg.SlowQuery > 0 {
		tr = obs.NewTrace(requestID(r), sess.Name(), req.Query)
		ctx = obs.WithTrace(ctx, tr)
	}

	// Admission control: the evaluation below runs only once the fair
	// queue grants a slot. The wait counts against the query deadline
	// (ctx carries it) but not against the query latency histogram —
	// queue time has its own. Rejections (429/503 + Retry-After) have
	// already been written when ok is false.
	release, ok := s.admit(ctx, w, r, sess.Name())
	if !ok {
		return
	}
	defer release()

	start := time.Now()
	res, outcome, err := sess.Query(ctx, s.plans, req.Query, version, req.NoCache)
	elapsed := time.Since(start)
	s.metrics.Query(elapsed, err, errors.Is(err, context.DeadlineExceeded))

	var tj *obs.TraceJSON
	if tr != nil {
		t := tr.Finish(elapsed)
		tj = &t
		if wantTrace || (s.cfg.SlowQuery > 0 && elapsed >= s.cfg.SlowQuery) {
			s.traces.Add(t)
		}
	}
	if err != nil {
		writeErr(w, r, errStatus(err), err)
		return
	}

	degraded := false
	for _, warn := range res.Warnings {
		if query.IsDegraded(warn) {
			degraded = true
			break
		}
	}
	if degraded {
		s.metrics.DegradedQuery()
		if req.RequireFresh || r.Header.Get("X-Require-Fresh") == "1" || s.cfg.RequireFresh {
			writeErr(w, r, http.StatusServiceUnavailable,
				fmt.Errorf("server: answer is degraded and the request requires fresh data: %s",
					strings.Join(res.Warnings, "; ")))
			return
		}
	}

	resp := queryResp{
		Session:      sess.Name(),
		Value:        res.JSONValue,
		Rendered:     res.Rendered,
		Warnings:     res.Warnings,
		Version:      res.Version,
		Schema:       res.Schema,
		PlanCached:   outcome.PlanCached,
		ResultCached: outcome.ResultCached,
		Degraded:     degraded,
		ElapsedUs:    elapsed.Microseconds(),
	}
	if wantTrace {
		resp.Trace = tj
	}
	if req.Explain {
		resp.Explain = s.explain(sess, req.Query, res.Version)
	}
	writeJSON(w, http.StatusOK, resp)
}

// explain renders the derivation tree (provenance) of every schema
// object the query references, resolved against the answered version.
func (s *Server) explain(sess *Session, src string, version int) map[string]string {
	ig, err := sess.integrator()
	if err != nil {
		return nil
	}
	e, err := iql.Parse(src)
	if err != nil {
		return nil
	}
	schema, ok := ig.SchemaAt(version)
	if !ok {
		return nil
	}
	out := make(map[string]string)
	for _, parts := range iql.UniqueSchemeRefs(e) {
		obj, err := schema.Resolve(parts)
		if err != nil {
			continue
		}
		out[obj.Scheme.String()] = ig.Processor().Explain(obj.Scheme)
	}
	return out
}

// ---- GET /report ----

type iterationResp struct {
	Name             string   `json:"name"`
	Kind             string   `json:"kind"`
	Manual           int      `json:"manual"`
	Auto             int      `json:"auto"`
	CumulativeManual int      `json:"cumulative_manual"`
	Enables          []string `json:"enables,omitempty"`
	GlobalSchema     string   `json:"global_schema"`
}

type reportResp struct {
	Session     string          `json:"session"`
	Iterations  []iterationResp `json:"iterations"`
	TotalManual int             `json:"total_manual"`
	TotalAuto   int             `json:"total_auto"`
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	sess, err := s.reg.Get(r.URL.Query().Get("session"), false)
	if err != nil {
		writeErr(w, r, errStatus(err), err)
		return
	}
	ig, err := sess.integrator()
	if err != nil {
		writeErr(w, r, errStatus(err), err)
		return
	}
	rep := ig.Report()
	resp := reportResp{Session: sess.Name()}
	cum := 0
	for _, it := range rep.Iterations {
		cum += it.Counts.Manual()
		resp.Iterations = append(resp.Iterations, iterationResp{
			Name:             it.Name,
			Kind:             it.Kind,
			Manual:           it.Counts.Manual(),
			Auto:             it.Counts.Auto(),
			CumulativeManual: cum,
			Enables:          it.Enables,
			GlobalSchema:     it.GlobalSchema,
		})
	}
	t := rep.Totals()
	resp.TotalManual, resp.TotalAuto = t.Manual(), t.Auto()
	writeJSON(w, http.StatusOK, resp)
}

// ---- POST /suggest ----

type suggestReq struct {
	Session  string  `json:"session,omitempty"`
	SourceA  string  `json:"source_a"`
	SourceB  string  `json:"source_b"`
	MinScore float64 `json:"min_score,omitempty"`
}

type correspondenceResp struct {
	Left     string             `json:"left"`
	Right    string             `json:"right"`
	Score    float64            `json:"score"`
	Evidence map[string]float64 `json:"evidence,omitempty"`
}

type suggestResp struct {
	Session         string               `json:"session"`
	Correspondences []correspondenceResp `json:"correspondences"`
}

func (s *Server) handleSuggest(w http.ResponseWriter, r *http.Request) {
	var req suggestReq
	if err := decode(r, &req); err != nil {
		writeErr(w, r, http.StatusBadRequest, err)
		return
	}
	sess, err := s.reg.Get(req.Session, false)
	if err != nil {
		writeErr(w, r, errStatus(err), err)
		return
	}
	wa, okA := sess.Wrapper(req.SourceA)
	wb, okB := sess.Wrapper(req.SourceB)
	if !okA || !okB {
		writeErr(w, r, http.StatusNotFound,
			fmt.Errorf("server: session %q does not have both sources %q and %q", sess.Name(), req.SourceA, req.SourceB))
		return
	}
	release, ok := s.admit(r.Context(), w, r, sess.Name())
	if !ok {
		return
	}
	defer release()
	m := match.New(match.DefaultConfig())
	best := m.Best(wa.Schema(), wb.Schema(), wa, wb, req.MinScore)
	resp := suggestResp{Session: sess.Name(), Correspondences: []correspondenceResp{}}
	for _, c := range best {
		resp.Correspondences = append(resp.Correspondences, correspondenceResp{
			Left:     c.Left.String(),
			Right:    c.Right.String(),
			Score:    c.Score,
			Evidence: c.Evidence,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// ---- GET /sessions, /healthz, /metrics ----

type sessionInfo struct {
	Name      string   `json:"name"`
	Sources   []string `json:"sources"`
	Federated bool     `json:"federated"`
	Version   int      `json:"version"`
}

func (s *Server) handleSessions(w http.ResponseWriter, r *http.Request) {
	out := make([]sessionInfo, 0)
	for _, name := range s.reg.Names() {
		sess, err := s.reg.Get(name, false)
		if err != nil {
			continue
		}
		info := sessionInfo{Name: name, Sources: sess.SourceNames(), Version: -1}
		if ig, err := sess.integrator(); err == nil {
			info.Federated = true
			info.Version = ig.GlobalVersion()
		}
		out = append(out, info)
	}
	writeJSON(w, http.StatusOK, map[string]any{"sessions": out})
}

// ---- POST /sessions/{name}/snapshot and /sessions/{name}/restore ----

type snapshotResp struct {
	Session string `json:"session"`
	File    string `json:"file"`
	// Version is the session's current global schema version (-1
	// before federation).
	Version int `json:"version"`
}

// handleSnapshot forces a durable snapshot of one session, regardless
// of autosave. Useful after out-of-band mutations and as a consistency
// point before operational work on the data directory.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	sess, err := s.SnapshotSession(r.PathValue("name"))
	if err != nil {
		status := http.StatusInternalServerError
		switch {
		case errors.Is(err, errStoreClosed):
			status = http.StatusConflict
		case errStatus(err) == http.StatusNotFound:
			status = http.StatusNotFound
		}
		writeErr(w, r, status, err)
		return
	}
	version := -1
	if ig, err := sess.integrator(); err == nil {
		version = ig.GlobalVersion()
	}
	writeJSON(w, http.StatusOK, snapshotResp{
		Session: sess.Name(),
		File:    fileName(sess.Name()),
		Version: version,
	})
}

type restoreResp struct {
	Session   string   `json:"session"`
	Federated bool     `json:"federated"`
	Version   int      `json:"version"`
	Sources   []string `json:"sources"`
}

// handleRestore replaces one session's in-memory state with its latest
// on-disk snapshot. The session need not exist in memory — restore is
// how a snapshot taken by another process (or a pre-crash incarnation)
// is brought live without restarting the daemon.
func (s *Server) handleRestore(w http.ResponseWriter, r *http.Request) {
	sess, err := s.restoreSession(r.PathValue("name"))
	if err != nil {
		status := http.StatusInternalServerError
		switch {
		case errors.Is(err, errStoreClosed):
			status = http.StatusConflict
		case errors.Is(err, os.ErrNotExist):
			status = http.StatusNotFound
		case errors.Is(err, errBadSnapshot):
			status = http.StatusBadRequest
		}
		writeErr(w, r, status, err)
		return
	}
	resp := restoreResp{Session: sess.Name(), Version: -1, Sources: sess.SourceNames()}
	if ig, err := sess.integrator(); err == nil {
		resp.Federated = true
		resp.Version = ig.GlobalVersion()
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleInvalidate drops one session's cached extents and answers, so
// the next queries re-fetch from the sources. This is the ops lever for
// fault drills and for forcing a freshness check: warm caches otherwise
// shield a downed source from queries indefinitely.
func (s *Server) handleInvalidate(w http.ResponseWriter, r *http.Request) {
	sess, err := s.reg.Get(r.PathValue("name"), false)
	if err != nil {
		writeErr(w, r, errStatus(err), err)
		return
	}
	sess.InvalidateExtents()
	writeJSON(w, http.StatusOK, map[string]any{
		"session":     sess.Name(),
		"invalidated": true,
	})
}

// sessionHealth is one session's fault-tolerance state in /healthz.
type sessionHealth struct {
	Session string               `json:"session"`
	Sources []query.SourceHealth `json:"sources"`
	// Skipped lists federation-skipped sources awaiting backfill.
	Skipped []string `json:"skipped_sources,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	// During drain the health check goes unready so load balancers pull
	// this instance out of rotation while in-flight work finishes.
	if s.Draining() {
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status":   "draining",
			"sessions": s.reg.Len(),
		})
		return
	}
	// Health checks double as the recovery driver: each one may launch
	// a rate-limited background probe of open breakers and skipped
	// sources, so a monitored daemon heals without a dedicated timer.
	s.maybeProbe()
	status := "ok"
	var health []sessionHealth
	for _, name := range s.reg.Names() {
		sess, err := s.reg.Get(name, false)
		if err != nil {
			continue
		}
		hs := sess.SourceHealth()
		skipped := sess.Skipped()
		if len(hs) == 0 && len(skipped) == 0 {
			continue
		}
		for _, h := range hs {
			if h.State != "closed" {
				status = "degraded"
			}
		}
		if len(skipped) > 0 {
			status = "degraded"
		}
		health = append(health, sessionHealth{Session: name, Sources: hs, Skipped: skipped})
	}
	resp := map[string]any{
		"status":   status,
		"sessions": s.reg.Len(),
	}
	if health != nil {
		resp["source_health"] = health
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleMetrics serves Prometheus text exposition by default; the JSON
// snapshot remains available via ?format=json or an Accept header
// naming application/json.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	memo, src := s.extentStats()
	health := s.sourceHealth()
	if wantsJSONMetrics(r) {
		writeJSON(w, http.StatusOK, s.metrics.Snapshot(s.plans.Stats(), s.resultStats(), memo, src, s.QueueStats(), s.reg.Len(), s.evalStats(), health))
		return
	}
	body := s.metrics.Prometheus(s.plans.Stats(), s.resultStats(), memo, src, s.QueueStats(), s.reg.Len(), s.evalStats(), health)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

func wantsJSONMetrics(r *http.Request) bool {
	if f := r.URL.Query().Get("format"); f != "" {
		return strings.EqualFold(f, "json")
	}
	return strings.Contains(r.Header.Get("Accept"), "application/json")
}

// handleTraces serves the bounded ring of recent query traces (those
// explicitly requested via X-Automed-Trace plus slow queries when a
// threshold is armed), newest first.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"traces": s.traces.Snapshot()})
}
