package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Admission-control errors, mapped onto HTTP statuses by the handlers:
// over-capacity rejections become 429 + Retry-After, drain rejections
// become 503 + Retry-After.
var (
	errOverCapacity = errors.New("server: admission queue is full; retry later")
	errDraining     = errors.New("server: draining; not accepting new work")
)

// waiter is one request parked in the admission queue. ch is closed
// exactly once — by a grant (slot transferred) or by a drain wake-up
// (err set first). granted/err are written under the admission lock
// before the close, so the waiter may read them lock-free after <-ch.
type waiter struct {
	ch      chan struct{}
	granted bool
	err     error
}

// sessQueue is one session's FIFO of parked requests plus its remaining
// round-robin credit (grants it may receive before the scheduler moves
// to the next session).
type sessQueue struct {
	waiters []*waiter
	credit  int
}

// admission is the traffic front door: a bounded count of in-flight
// admitted requests with a per-session weighted-FIFO overflow queue.
//
// Scheduling is deficit round-robin across sessions: each session in
// the ring gets `weight` consecutive grants (FIFO within the session)
// before the cursor advances, so a hot session enqueueing thousands of
// requests cannot starve a session that enqueued one. With
// maxInflight <= 0 admission is unlimited (requests never queue) but
// in-flight work is still counted, so graceful drain can wait for idle
// regardless of configuration.
type admission struct {
	maxInflight int
	maxQueue    int
	weight      func(session string) int // nil = 1 for every session

	mu       sync.Mutex
	inflight int
	queued   int
	draining bool
	sessions map[string]*sessQueue
	ring     []string      // sessions with waiters, round-robin order
	next     int           // ring cursor
	idle     chan struct{} // non-nil while a drainer waits for inflight==0
}

func newAdmission(maxInflight, maxQueue int, weight func(string) int) *admission {
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &admission{
		maxInflight: maxInflight,
		maxQueue:    maxQueue,
		weight:      weight,
		sessions:    make(map[string]*sessQueue),
	}
}

// acquire admits one unit of work for the session, blocking in the fair
// queue while the server is at capacity. It returns a release function
// that must be called exactly once when the work finishes, plus how
// long the request waited in the queue (0 when admitted immediately).
// Errors: errOverCapacity when the queue is full, errDraining when the
// server is draining, or the context's error if it expired while
// queued.
func (a *admission) acquire(ctx context.Context, session string) (release func(), wait time.Duration, err error) {
	a.mu.Lock()
	if a.draining {
		a.mu.Unlock()
		return nil, 0, errDraining
	}
	if a.maxInflight <= 0 || a.inflight < a.maxInflight {
		a.inflight++
		a.mu.Unlock()
		return a.releaseOnce(), 0, nil
	}
	if a.queued >= a.maxQueue {
		a.mu.Unlock()
		return nil, 0, errOverCapacity
	}
	w := &waiter{ch: make(chan struct{})}
	sq := a.sessions[session]
	if sq == nil {
		sq = &sessQueue{}
		a.sessions[session] = sq
		a.ring = append(a.ring, session)
	}
	sq.waiters = append(sq.waiters, w)
	a.queued++
	a.mu.Unlock()

	start := time.Now()
	select {
	case <-w.ch:
		// Woken: either granted a transferred slot or rejected by drain.
		if w.err != nil {
			return nil, time.Since(start), w.err
		}
		return a.releaseOnce(), time.Since(start), nil
	case <-ctx.Done():
		a.mu.Lock()
		if w.granted {
			// A grant raced our cancellation and transferred a slot to
			// us; pass it on rather than leak it.
			a.mu.Unlock()
			a.release()
			return nil, time.Since(start), ctx.Err()
		}
		a.dropWaiter(session, w)
		a.mu.Unlock()
		return nil, time.Since(start), ctx.Err()
	}
}

// releaseOnce wraps release so a double call by a confused handler
// cannot corrupt the in-flight count.
func (a *admission) releaseOnce() func() {
	var once sync.Once
	return func() { once.Do(a.release) }
}

// release finishes one admitted unit of work: the freed slot is handed
// to the next queued waiter (deficit round-robin across sessions, FIFO
// within one) or, when the queue is empty, returned to the pool.
func (a *admission) release() {
	a.mu.Lock()
	defer a.mu.Unlock()
	for len(a.ring) > 0 {
		if a.next >= len(a.ring) {
			a.next = 0
		}
		name := a.ring[a.next]
		sq := a.sessions[name]
		if sq == nil || len(sq.waiters) == 0 {
			// Session drained its queue (or its waiters all cancelled);
			// drop it from the ring without consuming the turn.
			a.dropSession(name)
			continue
		}
		if sq.credit <= 0 {
			sq.credit = a.sessionWeight(name)
		}
		w := sq.waiters[0]
		sq.waiters = sq.waiters[1:]
		a.queued--
		sq.credit--
		if len(sq.waiters) == 0 {
			a.dropSession(name)
		} else if sq.credit <= 0 {
			a.next++
		}
		// The slot transfers: inflight is unchanged.
		w.granted = true
		close(w.ch)
		return
	}
	a.inflight--
	if a.inflight == 0 && a.idle != nil {
		close(a.idle)
		a.idle = nil
	}
}

func (a *admission) sessionWeight(name string) int {
	if a.weight == nil {
		return 1
	}
	if w := a.weight(name); w > 0 {
		return w
	}
	return 1
}

// dropSession removes a session from the scheduler ring (caller holds
// the lock). The cursor stays on the element that slid into this slot.
func (a *admission) dropSession(name string) {
	delete(a.sessions, name)
	for i, n := range a.ring {
		if n == name {
			a.ring = append(a.ring[:i], a.ring[i+1:]...)
			if a.next > i {
				a.next--
			}
			return
		}
	}
}

// dropWaiter removes a cancelled waiter from its session queue (caller
// holds the lock). The waiter may already be gone if a drain cleared
// the queues; that is fine.
func (a *admission) dropWaiter(session string, w *waiter) {
	sq := a.sessions[session]
	if sq == nil {
		return
	}
	for i, have := range sq.waiters {
		if have == w {
			sq.waiters = append(sq.waiters[:i], sq.waiters[i+1:]...)
			a.queued--
			break
		}
	}
	if len(sq.waiters) == 0 {
		a.dropSession(session)
	}
}

// beginDrain flips the controller into draining mode: every parked
// waiter is woken with errDraining and all future acquires are
// rejected. In-flight work is unaffected. Idempotent.
func (a *admission) beginDrain() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.draining {
		return
	}
	a.draining = true
	for _, sq := range a.sessions {
		for _, w := range sq.waiters {
			w.err = errDraining
			close(w.ch)
		}
	}
	a.sessions = make(map[string]*sessQueue)
	a.ring = nil
	a.next = 0
	a.queued = 0
}

// isDraining reports whether beginDrain has been called.
func (a *admission) isDraining() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.draining
}

// waitIdle blocks until every admitted request has released (in-flight
// reaches zero) or the context expires, reporting how many were still
// running on timeout.
func (a *admission) waitIdle(ctx context.Context) error {
	a.mu.Lock()
	if a.inflight == 0 {
		a.mu.Unlock()
		return nil
	}
	if a.idle == nil {
		a.idle = make(chan struct{})
	}
	ch := a.idle
	a.mu.Unlock()
	select {
	case <-ch:
		return nil
	case <-ctx.Done():
		a.mu.Lock()
		n := a.inflight
		a.mu.Unlock()
		return fmt.Errorf("server: drain deadline passed with %d request(s) still in flight: %w", n, ctx.Err())
	}
}

// QueueStats is a point-in-time view of the admission controller, fed
// into the /metrics gauges.
type QueueStats struct {
	// Inflight is the number of admitted requests currently running.
	Inflight int `json:"inflight"`
	// Depth is the number of requests parked in the fair queue.
	Depth int `json:"depth"`
	// MaxInflight is the configured concurrency limit (0 = unlimited).
	MaxInflight int `json:"max_inflight"`
	// MaxQueue bounds Depth; requests beyond it are rejected with 429.
	MaxQueue int `json:"max_queue"`
	// Draining reports whether the server is shutting down gracefully.
	Draining bool `json:"draining"`
}

func (a *admission) stats() QueueStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return QueueStats{
		Inflight:    a.inflight,
		Depth:       a.queued,
		MaxInflight: a.maxInflight,
		MaxQueue:    a.maxQueue,
		Draining:    a.draining,
	}
}
