package server

import (
	"net/http"
	"testing"
)

// TestSelectiveResultInvalidation verifies the serving-layer half of
// the cache tentpole: a warm answer for a scheme an iteration did not
// touch stays live in the result cache across the new schema version,
// while a warm answer for a touched scheme is evicted and recomputed
// with the new derivations.
func TestSelectiveResultInvalidation(t *testing.T) {
	_, c := newTestClient(t, DefaultConfig())
	registerBookstore(c, "", 3)
	c.must("POST", "/federate", map[string]any{}, http.StatusCreated)
	c.must("POST", "/intersect", map[string]any{"name": "I1", "mappings": ubookMappings}, http.StatusCreated)

	// Pin both probes to version 1 so the cache key is version-stable
	// across later iterations.
	isbn := map[string]any{"query": "count(<<UBook, isbn>>)", "version": 1}
	entity := map[string]any{"query": "count(<<UBook>>)", "version": 1}

	if r := c.must("POST", "/query", isbn, http.StatusOK); r["result_cached"].(bool) {
		t.Fatal("first isbn query unexpectedly cached")
	}
	if r := c.must("POST", "/query", isbn, http.StatusOK); !r["result_cached"].(bool) {
		t.Fatal("repeat isbn query missed the result cache")
	}
	first := c.must("POST", "/query", entity, http.StatusOK)
	if first["value"].(float64) != 6 {
		t.Fatalf("count(UBook) = %v, want 6", first["value"])
	}
	c.must("POST", "/query", entity, http.StatusOK)

	// An iteration that touches only <<UBook>>: a new Library-side
	// derivation for the entity. <<UBook, isbn>> is untouched.
	c.must("POST", "/refine", map[string]any{
		"name": "ubook2",
		"mapping": map[string]any{
			"target": "<<UBook>>",
			"forward": []map[string]any{
				{"source": "Library", "query": "[{'LIB2', k} | k <- <<books>>]"},
			},
		},
	}, http.StatusCreated)

	// Untouched scheme: the warm answer survived the iteration.
	surv := c.must("POST", "/query", isbn, http.StatusOK)
	if !surv["result_cached"].(bool) {
		t.Fatal("warm answer for untouched scheme was evicted by an unrelated iteration")
	}
	// Touched scheme: the stale answer was evicted; the recomputation
	// sees the new derivation (3 more books), even at the pinned
	// version (derivations are global; versions pin schema membership).
	rec := c.must("POST", "/query", entity, http.StatusOK)
	if rec["result_cached"].(bool) {
		t.Fatal("stale answer for touched scheme served from the result cache")
	}
	if rec["value"].(float64) != 9 {
		t.Fatalf("count(UBook) after refine = %v, want 9", rec["value"])
	}

	// The metrics surface the new cache layers and invalidation work.
	m := c.must("GET", "/metrics", nil, http.StatusOK)
	rc := m["result_cache"].(map[string]any)
	if rc["invalidations"].(float64) < 1 {
		t.Fatalf("result cache invalidations = %v, want >= 1", rc["invalidations"])
	}
	for _, layer := range []string{"extent_cache", "source_extent_cache"} {
		lc, ok := m[layer].(map[string]any)
		if !ok {
			t.Fatalf("/metrics lacks %s", layer)
		}
		if lc["bytes"].(float64) <= 0 {
			t.Fatalf("%s bytes = %v, want > 0", layer, lc["bytes"])
		}
	}
	if m["cache_bytes_total"].(float64) <= 0 {
		t.Fatalf("cache_bytes_total = %v, want > 0", m["cache_bytes_total"])
	}
}

// TestResultCacheByteBudget verifies the -cache-bytes budget reaches
// the per-session result cache: a tiny budget forces evictions instead
// of unbounded growth.
func TestResultCacheByteBudget(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CacheBytes = 2 << 10 // 2 KiB: a handful of small answers
	srv, c := newTestClient(t, cfg)
	registerBookstore(c, "", 50)
	c.must("POST", "/federate", map[string]any{}, http.StatusCreated)
	c.must("POST", "/intersect", map[string]any{"name": "I1", "mappings": ubookMappings}, http.StatusCreated)

	// Distinct large-ish answers until the budget must evict.
	for _, q := range []string{
		"<<UBook, isbn>>", "<<UBook>>", "[x | {k, x} <- <<UBook, isbn>>]",
		"<<library_books, title>>", "<<shop_items, barcode>>",
	} {
		c.must("POST", "/query", map[string]any{"query": q}, http.StatusOK)
	}
	sess, err := srv.Sessions().Get("default", false)
	if err != nil {
		t.Fatal(err)
	}
	st := sess.ResultCacheStats()
	if st.Bytes > cfg.CacheBytes {
		t.Fatalf("result cache bytes %d exceed budget %d", st.Bytes, cfg.CacheBytes)
	}
	if st.Evictions+st.Oversize == 0 {
		t.Fatalf("no evictions under a %d-byte budget: %+v", cfg.CacheBytes, st)
	}
}
