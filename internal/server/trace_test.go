package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/dataspace/automed/internal/sqlmem"
)

// tracedQuery POSTs /query with the X-Automed-Trace header set and
// returns the decoded response plus the X-Request-ID response header.
func tracedQuery(c *testClient, body map[string]any) (map[string]any, string) {
	c.t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		c.t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, c.srv.URL+"/query", bytes.NewReader(buf))
	if err != nil {
		c.t.Fatal(err)
	}
	req.Header.Set("Accept", "application/json")
	req.Header.Set("X-Automed-Trace", "1")
	resp, err := c.srv.Client().Do(req)
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		c.t.Fatalf("decoding traced query response: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		c.t.Fatalf("traced query = %d (%v)", resp.StatusCode, out)
	}
	return out, resp.Header.Get("X-Request-ID")
}

// traceSpans extracts the span list from a traced query response.
func traceSpans(t *testing.T, resp map[string]any) []map[string]any {
	t.Helper()
	tr, ok := resp["trace"].(map[string]any)
	if !ok {
		t.Fatalf("response carries no trace: %v", resp)
	}
	raw, _ := tr["spans"].([]any)
	spans := make([]map[string]any, len(raw))
	for i, s := range raw {
		spans[i] = s.(map[string]any)
	}
	return spans
}

// spansWhere filters spans by stage and cache disposition ("" matches
// any disposition).
func spansWhere(spans []map[string]any, stage, cache string) []map[string]any {
	var out []map[string]any
	for _, s := range spans {
		if s["stage"] != stage {
			continue
		}
		disp, _ := s["cache"].(string)
		if cache != "" && disp != cache {
			continue
		}
		out = append(out, s)
	}
	return out
}

// slowRESTBackend serves the Shop inventory with an artificial latency,
// so wrapper fetch spans have measurable, overlappable durations.
func slowRESTBackend(t *testing.T, delay time.Duration) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/items" {
			http.NotFound(w, r)
			return
		}
		time.Sleep(delay)
		fmt.Fprint(w, `[
			{"id": "S1", "barcode": "978-1", "price": 10.5},
			{"id": "S2", "barcode": "978-2", "price": 42.0}
		]`)
	}))
	t.Cleanup(srv.Close)
	return srv
}

// TestQueryTraceEndToEnd runs a traced query over one SQL backend and
// one REST backend and checks the span tree end to end: one cache-miss
// fetch span per source under a prefetch span, with overlapping
// intervals (the fetches ran concurrently); warm repeats degrade to
// fetch cache-hit spans, then to a single result-cache hit span; and
// the traces land in the /debug/traces ring newest first.
func TestQueryTraceEndToEnd(t *testing.T) {
	const dsn = "server-trace-library"
	const delay = 40 * time.Millisecond
	remoteSQLDB(dsn)
	shop := slowRESTBackend(t, delay)
	_, c := newTestClient(t, DefaultConfig())
	registerRemoteSources(c, dsn, shop.URL)
	c.must("POST", "/federate", map[string]any{"name": "F"}, http.StatusCreated)
	// Delay only queries issued after registration: source registration
	// introspects the backend, and only extent fetches should be slow.
	sqlmem.SetDelay(dsn, delay)
	t.Cleanup(func() { sqlmem.SetDelay(dsn, 0) })

	const query = "count(<<library_books>>) + count(<<shop_items>>)"

	// Cold: both extents are fetched, concurrently, under prefetch.
	resp, rid := tracedQuery(c, map[string]any{"query": query})
	if rid == "" {
		t.Error("response lacks an X-Request-ID header")
	}
	if resp["value"].(float64) != 5 {
		t.Fatalf("query value = %v, want 5", resp["value"])
	}
	spans := traceSpans(t, resp)
	for _, stage := range []string{"parse", "result-cache", "prefetch", "eval", "render"} {
		if len(spansWhere(spans, stage, "")) == 0 {
			t.Errorf("cold trace lacks a %q span: %v", stage, spans)
		}
	}
	misses := spansWhere(spans, "fetch", "miss")
	if len(misses) != 2 {
		t.Fatalf("cold trace has %d cache-miss fetch spans, want 2: %v", len(misses), spans)
	}
	names := map[string]bool{}
	for _, m := range misses {
		names[m["name"].(string)] = true
		if d := m["dur_us"].(float64); d < float64(delay.Microseconds())/2 {
			t.Errorf("fetch span %v lasted %vus, want >= %vus (backend delay %v)",
				m["name"], d, delay.Microseconds()/2, delay)
		}
	}
	if !names["Library"] || !names["Shop"] {
		t.Errorf("miss fetch spans cover %v, want Library and Shop", names)
	}
	// Both fetches are children of the prefetch span and their intervals
	// overlap: the sources were fetched in parallel, not back to back.
	prefetch := spansWhere(spans, "prefetch", "")[0]
	for _, m := range misses {
		if m["parent"] != prefetch["id"] {
			t.Errorf("fetch span %v has parent %v, want prefetch span %v", m["name"], m["parent"], prefetch["id"])
		}
	}
	a, b := misses[0], misses[1]
	aStart, aEnd := a["start_us"].(float64), a["start_us"].(float64)+a["dur_us"].(float64)
	bStart, bEnd := b["start_us"].(float64), b["start_us"].(float64)+b["dur_us"].(float64)
	if aStart >= bEnd || bStart >= aEnd {
		t.Errorf("fetch spans do not overlap: [%v, %v] vs [%v, %v]", aStart, aEnd, bStart, bEnd)
	}
	// The REST fetch reports wire bytes from the wrapper.
	for _, m := range misses {
		if m["name"] == "Shop" {
			if by, _ := m["bytes"].(float64); by <= 0 {
				t.Errorf("REST fetch span reports %v bytes, want > 0", m["bytes"])
			}
		}
	}

	// Warm extents, cold result: the memoised extents answer with hit
	// spans and zero wrapper fetches.
	resp, _ = tracedQuery(c, map[string]any{"query": query, "no_cache": true})
	spans = traceSpans(t, resp)
	if n := len(spansWhere(spans, "fetch", "")); n != 0 {
		t.Errorf("warm-extent trace has %d fetch spans, want 0: %v", n, spans)
	}
	hitNames := map[string]bool{}
	for _, h := range spansWhere(spans, "extent", "hit") {
		hitNames[h["name"].(string)] = true
	}
	if !hitNames["library_books"] || !hitNames["shop_items"] {
		t.Errorf("warm-extent hit spans cover %v, want library_books and shop_items", hitNames)
	}

	// Fully warm: the result cache answers; no fetch spans at all.
	resp, _ = tracedQuery(c, map[string]any{"query": query})
	if !resp["result_cached"].(bool) {
		t.Error("third run not result-cached")
	}
	spans = traceSpans(t, resp)
	if n := len(spansWhere(spans, "fetch", "")); n != 0 {
		t.Errorf("result-cached trace has %d fetch spans, want 0: %v", n, spans)
	}
	if len(spansWhere(spans, "result-cache", "hit")) != 1 {
		t.Errorf("result-cached trace lacks a result-cache hit span: %v", spans)
	}

	// All three traces were retained, newest first, labelled with the
	// query and the request ID.
	ring := c.must("GET", "/debug/traces", nil, http.StatusOK)
	traces, _ := ring["traces"].([]any)
	if len(traces) != 3 {
		t.Fatalf("/debug/traces holds %d traces, want 3", len(traces))
	}
	newest := traces[0].(map[string]any)
	if newest["query"] != query {
		t.Errorf("newest trace query = %v, want %q", newest["query"], query)
	}
	oldest := traces[2].(map[string]any)
	if oldest["id"] != rid {
		t.Errorf("oldest trace id = %v, want first request's ID %q", oldest["id"], rid)
	}

	// The per-source metrics saw exactly one fetch per backend, with
	// the wrapper kind attached and REST wire bytes accounted.
	snap := c.must("GET", "/metrics", nil, http.StatusOK)
	srcs, _ := snap["sources"].([]any)
	byName := map[string]map[string]any{}
	for _, s := range srcs {
		sm := s.(map[string]any)
		byName[sm["source"].(string)] = sm
	}
	lib, shopM := byName["Library"], byName["Shop"]
	if lib == nil || shopM == nil {
		t.Fatalf("metrics sources = %v, want Library and Shop", byName)
	}
	if lib["kind"] != "sql" || lib["fetches"].(float64) != 1 {
		t.Errorf("Library source metrics = %v, want kind sql with 1 fetch", lib)
	}
	if shopM["kind"] != "rest" || shopM["fetches"].(float64) != 1 || shopM["bytes"].(float64) <= 0 {
		t.Errorf("Shop source metrics = %v, want kind rest, 1 fetch, bytes > 0", shopM)
	}
}

// TestUntracedQueryHasNoTrace: without the header the response carries
// no trace and nothing lands in the ring.
func TestUntracedQueryHasNoTrace(t *testing.T) {
	_, c := newTestClient(t, DefaultConfig())
	registerBookstore(c, "", 2)
	c.must("POST", "/federate", map[string]any{}, http.StatusCreated)
	resp := c.must("POST", "/query", map[string]any{"query": "count(<<library_books>>)"}, http.StatusOK)
	if _, ok := resp["trace"]; ok {
		t.Errorf("untraced query response carries a trace: %v", resp["trace"])
	}
	ring := c.must("GET", "/debug/traces", nil, http.StatusOK)
	if traces, _ := ring["traces"].([]any); len(traces) != 0 {
		t.Errorf("/debug/traces holds %d traces, want 0", len(traces))
	}
}

// TestSlowQueryTracing: with a slow-query threshold armed, queries at
// or above it are traced into the ring without any client opt-in — and
// the response stays clean (no inline trace the client didn't ask for).
func TestSlowQueryTracing(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SlowQuery = time.Nanosecond // everything is slow
	_, c := newTestClient(t, cfg)
	registerBookstore(c, "", 2)
	c.must("POST", "/federate", map[string]any{}, http.StatusCreated)

	resp := c.must("POST", "/query", map[string]any{"query": "count(<<library_books>>)"}, http.StatusOK)
	if _, ok := resp["trace"]; ok {
		t.Errorf("slow-query tracing leaked an inline trace: %v", resp["trace"])
	}
	ring := c.must("GET", "/debug/traces", nil, http.StatusOK)
	traces, _ := ring["traces"].([]any)
	if len(traces) != 1 {
		t.Fatalf("/debug/traces holds %d traces, want 1", len(traces))
	}
	tr := traces[0].(map[string]any)
	if tr["query"] != "count(<<library_books>>)" {
		t.Errorf("retained trace query = %v", tr["query"])
	}
	if spans, _ := tr["spans"].([]any); len(spans) == 0 {
		t.Error("retained trace has no spans")
	}

	// A threshold no query reaches retains nothing.
	cfg.SlowQuery = time.Hour
	_, c2 := newTestClient(t, cfg)
	registerBookstore(c2, "", 2)
	c2.must("POST", "/federate", map[string]any{}, http.StatusCreated)
	c2.must("POST", "/query", map[string]any{"query": "count(<<library_books>>)"}, http.StatusOK)
	ring = c2.must("GET", "/debug/traces", nil, http.StatusOK)
	if traces, _ := ring["traces"].([]any); len(traces) != 0 {
		t.Errorf("fast query retained a trace under a 1h threshold: %d", len(traces))
	}
}

// TestRequestIDPropagation: a client-supplied X-Request-ID is echoed on
// the response and stamped into error bodies; absent one, the server
// generates an ID.
func TestRequestIDPropagation(t *testing.T) {
	_, c := newTestClient(t, DefaultConfig())

	req, err := http.NewRequest(http.MethodPost, c.srv.URL+"/query", bytes.NewReader([]byte(`{"query":""}`)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", "rid-from-client")
	resp, err := c.srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "rid-from-client" {
		t.Errorf("X-Request-ID = %q, want the inbound rid-from-client", got)
	}
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty query = %d, want 400", resp.StatusCode)
	}
	if body["request_id"] != "rid-from-client" {
		t.Errorf("error body request_id = %v, want rid-from-client", body["request_id"])
	}

	resp2, err := c.srv.Client().Get(c.srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.Header.Get("X-Request-ID") == "" {
		t.Error("server did not generate an X-Request-ID")
	}
}
