package server

import (
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/dataspace/automed/internal/obs"
	"github.com/dataspace/automed/internal/query"
)

// scrape fetches a path without the JSON Accept header the testClient
// helpers set, so GET /metrics content-negotiates to the Prometheus
// text exposition. It returns the body and the Content-Type.
func scrape(t *testing.T, c *testClient, path, accept string) ([]byte, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, c.srv.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := c.srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d (%s)", path, resp.StatusCode, body)
	}
	return body, resp.Header.Get("Content-Type")
}

// TestMetricsPrometheusExposition drives a small workload and checks
// that the default GET /metrics response is valid Prometheus text
// exposition (HELP/TYPE headers, monotone cumulative le buckets ending
// in +Inf, consistent _sum/_count) carrying the expected families with
// the expected counts.
func TestMetricsPrometheusExposition(t *testing.T) {
	_, c := newTestClient(t, DefaultConfig())
	registerBookstore(c, "", 3)
	c.must("POST", "/federate", map[string]any{}, http.StatusCreated)
	for i := 0; i < 3; i++ {
		c.must("POST", "/query", map[string]any{"query": "count(<<library_books>>)"}, http.StatusOK)
	}
	// One failing query: errors must show up as their own counter.
	if status, _ := c.do("POST", "/query", map[string]any{"query": "count(<<nosuch>>)"}); status != http.StatusBadRequest {
		t.Fatalf("bad query = %d, want 400", status)
	}

	body, ct := scrape(t, c, "/metrics", "")
	if !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type = %q, want text/plain; version=0.0.4", ct)
	}
	if err := obs.ValidateExposition(body); err != nil {
		t.Fatalf("invalid exposition: %v\n%s", err, body)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE automed_queries_total counter",
		"# TYPE automed_query_duration_seconds histogram",
		"automed_queries_total 4",
		"automed_query_errors_total 1",
		"automed_query_timeouts_total 0",
		`automed_query_duration_seconds_bucket{le="+Inf"} 4`,
		"automed_query_duration_seconds_count 4",
		"automed_http_requests_total",
		"automed_integration_iterations_total 1",
		"automed_sessions 1",
		"# TYPE automed_eval_parallel_total counter",
		"automed_eval_shards_total",
		"automed_eval_parallelism",
		"automed_prefetch_workers",
		"automed_prefetch_max_tasks",
		`automed_cache_hits_total{layer="plan"} 2`,
		`automed_cache_entries{layer="result"}`,
		`automed_cache_misses_total{layer="source_extent"}`,
		`automed_source_fetches_total{source="Library",kind="relational"} 1`,
		`automed_source_rows_total{source="Library",kind="relational"} 3`,
		`automed_source_fetch_duration_seconds_count{source="Library",kind="relational"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition lacks %q", want)
		}
	}
	if t.Failed() {
		t.Logf("exposition:\n%s", text)
	}
}

// TestMetricsContentNegotiation: the JSON snapshot stays reachable via
// ?format=json and via an Accept header, and the format parameter wins
// over Accept.
func TestMetricsContentNegotiation(t *testing.T) {
	_, c := newTestClient(t, DefaultConfig())
	if _, ct := scrape(t, c, "/metrics?format=json", ""); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("?format=json content type = %q", ct)
	}
	if _, ct := scrape(t, c, "/metrics", "application/json"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("Accept: application/json content type = %q", ct)
	}
	if body, ct := scrape(t, c, "/metrics?format=prometheus", "application/json"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("format param should win over Accept: content type = %q", ct)
	} else if err := obs.ValidateExposition(body); err != nil {
		t.Errorf("invalid exposition: %v", err)
	}
}

// TestMetricsScrapeUnderLoad hammers GET /metrics (both negotiations)
// concurrently with queries and integration steps. Every scrape must
// be internally consistent exposition; the real assertion is the race
// detector over the lock-free recording paths.
func TestMetricsScrapeUnderLoad(t *testing.T) {
	_, c := newTestClient(t, DefaultConfig())
	registerBookstore(c, "", 10)
	c.must("POST", "/federate", map[string]any{}, http.StatusCreated)

	const (
		queryWorkers  = 4
		scrapeWorkers = 3
		iterations    = 25
	)
	var wg sync.WaitGroup
	errs := make(chan error, queryWorkers+scrapeWorkers)
	for g := 0; g < queryWorkers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				q := "count(<<library_books>>)"
				if i%2 == g%2 {
					q = "count(<<shop_items>>)"
				}
				status, out := c.do("POST", "/query", map[string]any{"query": q, "no_cache": i%3 == 0})
				if status != http.StatusOK {
					errs <- fmt.Errorf("query = %d (%v)", status, out)
					return
				}
			}
		}(g)
	}
	for g := 0; g < scrapeWorkers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				if (i+g)%2 == 0 {
					body, _ := scrape(t, c, "/metrics", "")
					if err := obs.ValidateExposition(body); err != nil {
						errs <- fmt.Errorf("scrape %d: %v", i, err)
						return
					}
				} else {
					c.must("GET", "/metrics", nil, http.StatusOK)
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// The final scrape accounts for every query exactly once.
	snap := c.must("GET", "/metrics", nil, http.StatusOK)
	if n := snap["queries_total"].(float64); n != queryWorkers*iterations {
		t.Errorf("queries_total = %v, want %d", n, queryWorkers*iterations)
	}
}

// TestMetricsEvalBlock: the JSON snapshot's eval block reports the
// effective evaluation-pool settings — the configured flags when set,
// the documented defaults (GOMAXPROCS parallelism, default prefetch
// pool) otherwise.
func TestMetricsEvalBlock(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EvalParallelism = 3
	cfg.PrefetchWorkers = 5
	cfg.PrefetchMaxTasks = 9
	_, c := newTestClient(t, cfg)
	eval := c.must("GET", "/metrics", nil, http.StatusOK)["eval"].(map[string]any)
	if got := eval["parallelism"].(float64); got != 3 {
		t.Errorf("eval.parallelism = %v, want 3", got)
	}
	if got := eval["prefetch_workers"].(float64); got != 5 {
		t.Errorf("eval.prefetch_workers = %v, want 5", got)
	}
	if got := eval["prefetch_max_tasks"].(float64); got != 9 {
		t.Errorf("eval.prefetch_max_tasks = %v, want 9", got)
	}

	_, c = newTestClient(t, DefaultConfig())
	eval = c.must("GET", "/metrics", nil, http.StatusOK)["eval"].(map[string]any)
	if got := eval["parallelism"].(float64); got != float64(runtime.GOMAXPROCS(0)) {
		t.Errorf("default eval.parallelism = %v, want GOMAXPROCS = %d", got, runtime.GOMAXPROCS(0))
	}
	if got := eval["prefetch_workers"].(float64); got != query.DefaultPrefetchWorkers {
		t.Errorf("default eval.prefetch_workers = %v, want %d", got, query.DefaultPrefetchWorkers)
	}
	if got := eval["prefetch_max_tasks"].(float64); got != query.DefaultPrefetchMaxTasks {
		t.Errorf("default eval.prefetch_max_tasks = %v, want %d", got, query.DefaultPrefetchMaxTasks)
	}
}

// BenchmarkMetricsQueryParallel measures the query hot path's metric
// recording under contention: every sample takes the same lock-free
// route (atomic counters plus the atomic latency histogram) the server
// takes per query.
func BenchmarkMetricsQueryParallel(b *testing.B) {
	m := NewMetrics()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		d := 37 * time.Microsecond
		for pb.Next() {
			m.Query(d, nil, false)
			d += 311 * time.Microsecond // sweep across buckets
			if d > 20*time.Millisecond {
				d = 37 * time.Microsecond
			}
		}
	})
}
