package server

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/dataspace/automed/internal/core"
)

// newDurableClient builds a server with an open store over dir and
// restores whatever the dir already holds — the daemon startup path.
func newDurableClient(t *testing.T, dir string) (*Server, *testClient) {
	t.Helper()
	s, c := newTestClient(t, DefaultConfig())
	if err := s.OpenStore(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RestoreSessions(); err != nil {
		t.Fatal(err)
	}
	return s, c
}

// upricedMappings is a second intersection iteration: both sources
// contribute the entity but only Shop prices it, so Library's image
// extends <<UPriced, price>> with Range Void Any and queries over it
// raise incompleteness warnings — the cached-warning replay path.
var upricedMappings = []map[string]any{
	{
		"target": "<<UPriced>>",
		"forward": []map[string]any{
			{"source": "Library", "query": "[{'LIB', k} | k <- <<books>>]"},
			{"source": "Shop", "query": "[{'SHOP', k} | k <- <<items>>]"},
		},
	},
	{
		"target": "<<UPriced, price>>",
		"forward": []map[string]any{
			{"source": "Shop", "query": "[{'SHOP', k, x} | {k, x} <- <<items, price>>]"},
		},
	},
}

// versionedWorkload pins one query per published schema version plus
// the warning-raising one.
var versionedWorkload = []map[string]any{
	{"query": "count(<<library_books>>)", "version": 0},
	{"query": "[x | {k, x} <- <<shop_items, barcode>>]", "version": 0},
	{"query": "count(<<UBook>>)", "version": 1},
	{"query": "[x | {k, x} <- <<UBook, isbn>>]", "version": 1},
	{"query": "count(<<UPriced>>)", "version": 2},
	{"query": "[x | {k, x} <- <<UPriced, price>>]", "version": 2},
	{"query": "count(<<UBook>>)"}, // latest
}

// canonicalAnswer strips the volatile response fields (timing and
// cache outcomes legitimately differ across runs) and re-marshals;
// encoding/json sorts map keys, so equal answers yield equal bytes.
func canonicalAnswer(t *testing.T, resp map[string]any) string {
	t.Helper()
	delete(resp, "elapsed_us")
	delete(resp, "plan_cached")
	delete(resp, "result_cached")
	buf, err := json.Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	return string(buf)
}

// TestCrashRecovery is the acceptance test: drive federate + two
// intersect iterations with autosave on, kill the server, rebuild a
// fresh one from the data dir alone, and require byte-identical /query
// answers (values, versions, schema names, warnings) for every
// previously published schema version — including warning replay
// through the result cache.
func TestCrashRecovery(t *testing.T) {
	dir := t.TempDir()

	s1, c1 := newDurableClient(t, dir)
	registerBookstore(c1, "", 3)
	c1.must("POST", "/federate", map[string]any{"name": "F"}, http.StatusCreated)
	c1.must("POST", "/intersect", map[string]any{"name": "I1", "mappings": ubookMappings}, http.StatusCreated)
	c1.must("POST", "/intersect", map[string]any{"name": "I2", "mappings": upricedMappings}, http.StatusCreated)

	before := make([]string, len(versionedWorkload))
	for i, q := range versionedWorkload {
		before[i] = canonicalAnswer(t, c1.must("POST", "/query", q, http.StatusOK))
	}
	if m := c1.must("GET", "/metrics", nil, http.StatusOK); m["snapshots_total"].(float64) < 5 {
		t.Fatalf("snapshots_total = %v, want >= 5 (autosave after every mutation)", m["snapshots_total"])
	}

	// "Crash": the old server is simply abandoned; nothing is flushed.
	// A new server rebuilds exclusively from the data dir.
	s2, c2 := newDurableClient(t, dir)
	if n := s2.Sessions().Len(); n != 1 {
		t.Fatalf("restored %d sessions, want 1", n)
	}
	_ = s1

	for i, q := range versionedWorkload {
		after := canonicalAnswer(t, c2.must("POST", "/query", q, http.StatusOK))
		if after != before[i] {
			t.Errorf("query %v differs after crash recovery:\nbefore %s\nafter  %s", q, before[i], after)
		}
	}

	// Cached-warning replay: the warning-raising query answered twice,
	// the second time from the result cache, keeps its warnings.
	warnQ := map[string]any{"query": "[x | {k, x} <- <<UPriced, price>>]", "version": 2}
	first := c2.must("POST", "/query", warnQ, http.StatusOK)
	if w, ok := first["warnings"].([]any); !ok || len(w) == 0 {
		t.Fatalf("restored warning query lost its warnings: %v", first)
	}
	second := c2.must("POST", "/query", warnQ, http.StatusOK)
	if !second["result_cached"].(bool) {
		t.Fatal("repeat warning query missed the result cache")
	}
	if canonicalAnswer(t, first) != canonicalAnswer(t, second) {
		t.Fatal("result-cache hit changed the answer or dropped warnings")
	}

	// The restored session keeps integrating, and the new iteration
	// autosaves over the snapshot.
	c2.must("POST", "/refine", map[string]any{
		"name": "titles",
		"mapping": map[string]any{
			"target": "<<UBook, title2>>",
			"forward": []map[string]any{
				{"source": "Library", "query": "[{'LIB', k, x} | {k, x} <- <<books, title>>]"},
			},
		},
	}, http.StatusCreated)
	q := c2.must("POST", "/query", map[string]any{"query": "count(<<UBook, title2>>)"}, http.StatusOK)
	if q["version"].(float64) != 3 {
		t.Fatalf("post-recovery refine published version %v, want 3", q["version"])
	}
}

// TestCrashRecoveryPreFederation: a session that only registered
// sources survives a restart too (the pre-integrator shape).
func TestCrashRecoveryPreFederation(t *testing.T) {
	dir := t.TempDir()
	_, c1 := newDurableClient(t, dir)
	registerBookstore(c1, "staging", 2)

	_, c2 := newDurableClient(t, dir)
	c2.must("POST", "/federate", map[string]any{"session": "staging"}, http.StatusCreated)
	q := c2.must("POST", "/query", map[string]any{"session": "staging", "query": "count(<<library_books>>)"}, http.StatusOK)
	if q["value"].(float64) != 2 {
		t.Fatalf("restored pre-federation session answered %v, want 2", q["value"])
	}
}

// TestSnapshotRestoreEndpoints exercises the explicit endpoints: a
// snapshot written by one server is brought live on another via
// POST /sessions/{name}/restore without a restart, and a server whose
// store opened after the mutations can still snapshot on demand.
func TestSnapshotRestoreEndpoints(t *testing.T) {
	dir := t.TempDir()

	// Server A: store open only now, after the workflow ran in memory.
	sA, cA := newTestClient(t, DefaultConfig())
	registerBookstore(cA, "", 2)
	cA.must("POST", "/federate", map[string]any{}, http.StatusCreated)
	cA.must("POST", "/intersect", map[string]any{"name": "I1", "mappings": ubookMappings}, http.StatusCreated)
	if err := sA.OpenStore(dir); err != nil {
		t.Fatal(err)
	}
	snap := cA.must("POST", "/sessions/default/snapshot", nil, http.StatusOK)
	if snap["version"].(float64) != 1 {
		t.Fatalf("snapshot version = %v, want 1", snap["version"])
	}
	if _, err := os.Stat(filepath.Join(dir, snap["file"].(string))); err != nil {
		t.Fatalf("snapshot file missing: %v", err)
	}

	// Server B: same store, nothing restored at startup — the restore
	// endpoint pulls the session in.
	sB, cB := newTestClient(t, DefaultConfig())
	if err := sB.OpenStore(dir); err != nil {
		t.Fatal(err)
	}
	status, _ := cB.do("POST", "/query", map[string]any{"query": "count(<<UBook>>)"})
	if status != http.StatusNotFound {
		t.Fatalf("query before restore = %d, want 404", status)
	}
	res := cB.must("POST", "/sessions/default/restore", nil, http.StatusOK)
	if !res["federated"].(bool) || res["version"].(float64) != 1 {
		t.Fatalf("restore response = %v", res)
	}
	q := cB.must("POST", "/query", map[string]any{"query": "count(<<UBook>>)"}, http.StatusOK)
	if q["value"].(float64) != 4 {
		t.Fatalf("restored session answered %v, want 4", q["value"])
	}
}

// TestSnapshotRestoreErrors covers the failure surface of the new
// endpoints.
func TestSnapshotRestoreErrors(t *testing.T) {
	// Without a store both endpoints refuse.
	_, c := newTestClient(t, DefaultConfig())
	registerBookstore(c, "", 2)
	status, _ := c.do("POST", "/sessions/default/snapshot", nil)
	if status != http.StatusConflict {
		t.Fatalf("snapshot without store = %d, want 409", status)
	}
	status, _ = c.do("POST", "/sessions/default/restore", nil)
	if status != http.StatusConflict {
		t.Fatalf("restore without store = %d, want 409", status)
	}

	dir := t.TempDir()
	s2, c2 := newDurableClient(t, dir)
	status, _ = c2.do("POST", "/sessions/ghost/snapshot", nil)
	if status != http.StatusNotFound {
		t.Fatalf("snapshot of unknown session = %d, want 404", status)
	}
	status, _ = c2.do("POST", "/sessions/ghost/restore", nil)
	if status != http.StatusNotFound {
		t.Fatalf("restore of absent snapshot = %d, want 404", status)
	}

	// A corrupt snapshot fails restore with a clear error, and
	// RestoreSessions refuses to half-start.
	if err := os.WriteFile(s2.Store().Path("broken"), []byte(`{"format":1,"name":"broken","integrator":{"format":7}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	status, body := c2.do("POST", "/sessions/broken/restore", nil)
	if status != http.StatusInternalServerError {
		t.Fatalf("restore of corrupt snapshot = %d (%v), want 500", status, body)
	}
	if _, err := s2.RestoreSessions(); err == nil {
		t.Fatal("RestoreSessions loaded a corrupt snapshot without error")
	}

	// A snapshot whose embedded name disagrees with its file is
	// rejected rather than hijacking another session's slot.
	if err := os.WriteFile(s2.Store().Path("alias"), []byte(`{"format":1,"name":"other"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	status, _ = c2.do("POST", "/sessions/alias/restore", nil)
	if status != http.StatusBadRequest {
		t.Fatalf("restore of mis-named snapshot = %d, want 400", status)
	}
}

// TestStoreFileNames checks session names that are hostile as file
// names (path separators, dots) stay confined to the store directory.
func TestStoreFileNames(t *testing.T) {
	dir := t.TempDir()
	st, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"../escape", "a/b", "..", "x%2Fy", ".tmp-sneaky", "plain"} {
		p := st.Path(name)
		rel, err := filepath.Rel(dir, p)
		if err != nil || strings.Contains(rel, string(filepath.Separator)) || strings.HasPrefix(rel, ".") {
			t.Errorf("session %q maps outside the store: %s", name, p)
		}
	}
	// Distinct hostile names must not collide on disk.
	if st.Path("a/b") == st.Path("a%2Fb") {
		t.Error("distinct session names share a snapshot file")
	}
}

// TestOrphanedSessionDoesNotAutosave: once a restore has replaced a
// session in the registry, the replaced (orphaned) session's autosave
// must not overwrite the restored snapshot on disk.
func TestOrphanedSessionDoesNotAutosave(t *testing.T) {
	dir := t.TempDir()
	s, c := newDurableClient(t, dir)
	registerBookstore(c, "", 2)
	c.must("POST", "/federate", map[string]any{}, http.StatusCreated)

	orphan, err := s.Sessions().Get("default", false)
	if err != nil {
		t.Fatal(err)
	}
	// A restore swaps in a fresh session object under the same name,
	// as handleRestore does mid-flight of another request.
	if _, err := s.restoreSession("default"); err != nil {
		t.Fatal(err)
	}
	stateBefore, err := s.Store().Load("default")
	if err != nil {
		t.Fatal(err)
	}

	// The orphaned session mutates (the in-flight request completing)
	// and tries to autosave; the snapshot on disk must not change.
	if err := orphan.Refine("late", core.Mapping{
		Target:  "<<UBook, late>>",
		Forward: []core.SourceQuery{{Source: "Library", Query: "[{'LIB', k, x} | {k, x} <- <<books, title>>]"}},
	}); err != nil {
		t.Fatal(err)
	}
	s.persist(orphan)
	stateAfter, err := s.Store().Load("default")
	if err != nil {
		t.Fatal(err)
	}
	if stateAfter.Integrator.GlobalVersion != stateBefore.Integrator.GlobalVersion {
		t.Fatalf("orphaned session's autosave overwrote the restored snapshot (version %d -> %d)",
			stateBefore.Integrator.GlobalVersion, stateAfter.Integrator.GlobalVersion)
	}
	// The registered session still autosaves normally.
	cur, err := s.Sessions().Get("default", false)
	if err != nil {
		t.Fatal(err)
	}
	s.persist(cur)
	if m := s.Metrics().Snapshot(CacheStats{}, CacheStats{}, CacheStats{}, CacheStats{}, QueueStats{}, 0, EvalSnapshot{}, nil); m.SnapshotErrs != 0 {
		t.Fatalf("snapshot errors: %d", m.SnapshotErrs)
	}
}

// TestAutosaveAfterEveryMutation verifies each mutating endpoint
// leaves a loadable snapshot reflecting the mutation.
func TestAutosaveAfterEveryMutation(t *testing.T) {
	dir := t.TempDir()
	s, c := newDurableClient(t, dir)

	registerBookstore(c, "", 2)
	state, err := s.Store().Load("default")
	if err != nil {
		t.Fatal(err)
	}
	if state.Integrator != nil || len(state.Sources) != 2 {
		t.Fatalf("post-sources snapshot: integrator=%v sources=%d", state.Integrator != nil, len(state.Sources))
	}

	c.must("POST", "/federate", map[string]any{}, http.StatusCreated)
	if state, err = s.Store().Load("default"); err != nil || state.Integrator == nil || state.Integrator.GlobalVersion != 0 {
		t.Fatalf("post-federate snapshot: %+v (%v)", state, err)
	}

	c.must("POST", "/intersect", map[string]any{"name": "I1", "mappings": ubookMappings}, http.StatusCreated)
	if state, err = s.Store().Load("default"); err != nil || state.Integrator.GlobalVersion != 1 {
		t.Fatalf("post-intersect snapshot: %+v (%v)", state, err)
	}

	c.must("POST", "/refine", map[string]any{
		"name": "prices",
		"mapping": map[string]any{
			"target": "<<UBook, price>>",
			"forward": []map[string]any{
				{"source": "Shop", "query": "[{'SHOP', k, x} | {k, x} <- <<items, price>>]"},
			},
		},
	}, http.StatusCreated)
	if state, err = s.Store().Load("default"); err != nil || state.Integrator.GlobalVersion != 2 {
		t.Fatalf("post-refine snapshot: %+v (%v)", state, err)
	}
}
