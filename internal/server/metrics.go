package server

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Metrics aggregates server-wide counters: request and query volumes,
// error counts, query latency, and (via the caches' own stats) plan and
// result cache hit rates. All methods are safe for concurrent use.
type Metrics struct {
	start time.Time

	requestsTotal atomic.Uint64
	queriesTotal  atomic.Uint64
	queryErrors   atomic.Uint64
	queryTimeouts atomic.Uint64
	iterations    atomic.Uint64 // integration steps served (federate/intersect/refine)

	snapshots       atomic.Uint64 // session snapshots written (autosave + explicit)
	snapshotErrors  atomic.Uint64 // failed snapshot writes
	sessionRestores atomic.Uint64 // sessions restored from the store

	mu         sync.Mutex
	latCount   uint64
	latSumNs   int64
	latMaxNs   int64
	latBuckets [len(latencyBoundsMs)]uint64
}

// latencyBoundsMs are the upper bounds (milliseconds) of the query
// latency histogram; the last bucket is unbounded.
var latencyBoundsMs = [...]float64{1, 5, 25, 100, 500, 2500}

// NewMetrics returns zeroed metrics anchored at now.
func NewMetrics() *Metrics { return &Metrics{start: time.Now()} }

// Request counts one HTTP request.
func (m *Metrics) Request() { m.requestsTotal.Add(1) }

// Iteration counts one served integration step.
func (m *Metrics) Iteration() { m.iterations.Add(1) }

// SnapshotWritten counts one session snapshot written to the store.
func (m *Metrics) SnapshotWritten() { m.snapshots.Add(1) }

// SnapshotError counts one failed snapshot write.
func (m *Metrics) SnapshotError() { m.snapshotErrors.Add(1) }

// SessionRestore counts one session restored from the store.
func (m *Metrics) SessionRestore() { m.sessionRestores.Add(1) }

// Query records one query's outcome and latency.
func (m *Metrics) Query(d time.Duration, err error, timedOut bool) {
	m.queriesTotal.Add(1)
	if err != nil {
		m.queryErrors.Add(1)
		if timedOut {
			m.queryTimeouts.Add(1)
		}
	}
	ns := d.Nanoseconds()
	ms := float64(ns) / 1e6
	m.mu.Lock()
	m.latCount++
	m.latSumNs += ns
	if ns > m.latMaxNs {
		m.latMaxNs = ns
	}
	idx := len(latencyBoundsMs) - 1
	for i, b := range latencyBoundsMs {
		if ms <= b {
			idx = i
			break
		}
	}
	m.latBuckets[idx]++
	m.mu.Unlock()
}

// LatencySnapshot summarises observed query latencies.
type LatencySnapshot struct {
	Count   uint64            `json:"count"`
	MeanMs  float64           `json:"mean_ms"`
	MaxMs   float64           `json:"max_ms"`
	Buckets map[string]uint64 `json:"buckets"`
}

// MetricsSnapshot is the JSON shape served by GET /metrics.
type MetricsSnapshot struct {
	UptimeSeconds float64         `json:"uptime_seconds"`
	RequestsTotal uint64          `json:"requests_total"`
	QueriesTotal  uint64          `json:"queries_total"`
	QueryErrors   uint64          `json:"query_errors"`
	QueryTimeouts uint64          `json:"query_timeouts"`
	Iterations    uint64          `json:"integration_iterations"`
	Snapshots     uint64          `json:"snapshots_total"`
	SnapshotErrs  uint64          `json:"snapshot_errors"`
	Restores      uint64          `json:"sessions_restored"`
	Latency       LatencySnapshot `json:"query_latency"`
	PlanCache     CacheSnapshot   `json:"plan_cache"`
	ResultCache   CacheSnapshot   `json:"result_cache"`
	ExtentCache   CacheSnapshot   `json:"extent_cache"`
	SourceCache   CacheSnapshot   `json:"source_extent_cache"`
	// CacheBytes / CacheEvictions / CacheInvalidations aggregate the
	// four cache layers above.
	CacheBytes         int64  `json:"cache_bytes_total"`
	CacheEvictions     uint64 `json:"cache_evictions_total"`
	CacheInvalidations uint64 `json:"cache_invalidations_total"`
	Sessions           int    `json:"sessions"`
}

// CacheSnapshot extends CacheStats with the derived hit rate.
type CacheSnapshot struct {
	CacheStats
	HitRate float64 `json:"hit_rate"`
}

func snapshotCache(s CacheStats) CacheSnapshot {
	return CacheSnapshot{CacheStats: s, HitRate: s.HitRate()}
}

// Snapshot gathers the current counter values; cache stats are summed
// across the given per-session caches (plan = shared parsed plans,
// result = per-session answers, extent = virtual-extent memos, src =
// source extents).
func (m *Metrics) Snapshot(plan, result, extent, src CacheStats, sessions int) MetricsSnapshot {
	m.mu.Lock()
	lat := LatencySnapshot{
		Count:   m.latCount,
		MaxMs:   float64(m.latMaxNs) / 1e6,
		Buckets: make(map[string]uint64, len(latencyBoundsMs)),
	}
	if m.latCount > 0 {
		lat.MeanMs = float64(m.latSumNs) / float64(m.latCount) / 1e6
	}
	for i, b := range latencyBoundsMs {
		lat.Buckets[bucketLabel(b, i == len(latencyBoundsMs)-1)] = m.latBuckets[i]
	}
	m.mu.Unlock()

	return MetricsSnapshot{
		UptimeSeconds:      time.Since(m.start).Seconds(),
		RequestsTotal:      m.requestsTotal.Load(),
		QueriesTotal:       m.queriesTotal.Load(),
		QueryErrors:        m.queryErrors.Load(),
		QueryTimeouts:      m.queryTimeouts.Load(),
		Iterations:         m.iterations.Load(),
		Snapshots:          m.snapshots.Load(),
		SnapshotErrs:       m.snapshotErrors.Load(),
		Restores:           m.sessionRestores.Load(),
		Latency:            lat,
		PlanCache:          snapshotCache(plan),
		ResultCache:        snapshotCache(result),
		ExtentCache:        snapshotCache(extent),
		SourceCache:        snapshotCache(src),
		CacheBytes:         plan.Bytes + result.Bytes + extent.Bytes + src.Bytes,
		CacheEvictions:     plan.Evictions + result.Evictions + extent.Evictions + src.Evictions,
		CacheInvalidations: plan.Invalidations + result.Invalidations + extent.Invalidations + src.Invalidations,
		Sessions:           sessions,
	}
}

func bucketLabel(boundMs float64, last bool) string {
	if last {
		return "le_inf"
	}
	return "le_" + strconv.Itoa(int(boundMs)) + "ms"
}
